// Package repro is the root of an open-source reproduction of
//
//	E. Testa, M. Soeken, L. Amarù, G. De Micheli:
//	"Reducing the Multiplicative Complexity in Logic Networks for
//	Cryptography and Security Applications", DAC 2019.
//
// See README.md for the architecture, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for the reproduced tables. The
// benchmarks in bench_test.go regenerate every table and figure.
package repro
