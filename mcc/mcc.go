// Package mcc is the public entry point of this repository: multiplicative-
// complexity optimization of XOR-AND graphs by cut rewriting, as in
// "Reducing the Multiplicative Complexity in Logic Networks for Cryptography
// and Security Applications" (DAC 2019).
//
// The package is a thin facade over the internal engine with a stable,
// option-based surface:
//
//	net, _ := mcc.ReadBristol(f)
//	res := mcc.Optimize(ctx, net,
//		mcc.WithWorkers(8),
//		mcc.WithVerify(true),
//	)
//	fmt.Println(res.Final().And, "AND gates")
//
// Networks are built with NewNetwork (see the Network methods: AddPI, And,
// Xor, Not, AddPO, ...) or parsed from Bristol format with ReadBristol.
// Optimize never modifies its input; the optimized circuit is
// Result.Network. For repeated calls that should share one synthesis
// database, pass Result.DB of an earlier run back in via WithDB.
package mcc

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mcdb"
	"repro/internal/metrics"
	"repro/internal/xag"
)

// Core graph types, re-exported so callers never import internal packages.
type (
	// Network is an XOR-AND graph.
	Network = xag.Network
	// Lit is a (possibly complemented) node literal.
	Lit = xag.Lit
	// Counts reports gate counts of a network; Counts.And is the
	// multiplicative complexity.
	Counts = xag.Counts
)

// Optimization result types, re-exported from the engine.
type (
	// Result is the outcome of Optimize; see Result.Network, Result.Rounds,
	// Result.Degraded, Result.Err.
	Result = core.Result
	// RoundStats reports one rewriting round.
	RoundStats = core.RoundStats
	// Degradation counts faults contained during a run.
	Degradation = core.Degradation
	// VerifyError reports a rolled-back round; Result.Err wraps one when
	// verification fails.
	VerifyError = core.VerifyError
	// DB is the classification and synthesis database shared across runs.
	DB = mcdb.DB
	// MetricsRegistry is a process-wide metrics registry (counters, gauges,
	// histograms) rendered in Prometheus text format; see NewMetricsRegistry
	// and WithMetrics.
	MetricsRegistry = metrics.Registry
)

// Cost is a pluggable cost model: the objective Optimize minimizes. Obtain
// one from MC, Size, or Depth (or implement cost.Model for a custom
// objective) and pass it via WithCost.
type Cost = core.Cost

// MC returns the multiplicative-complexity model: minimize AND gates (the
// paper's objective, and the default).
func MC() Cost { return cost.MC() }

// Size returns the size model: AND and XOR gates count alike, the classical
// baseline the paper compares against.
func Size() Cost { return cost.Size() }

// Depth returns the multiplicative-depth model: minimize the longest chain
// of AND gates from inputs to outputs, with AND count as tiebreak — the
// objective that dominates FHE noise growth and T-depth.
func Depth() Cost { return cost.Depth() }

// NewNetwork returns an empty XOR-AND graph.
func NewNetwork() *Network { return xag.New() }

// NewDB returns an empty classification and synthesis database, for sharing
// across Optimize calls via WithDB before any run has produced a Result.DB.
func NewDB() *DB { return mcdb.New(mcdb.Options{}) }

// ReadBristol parses a network in Bristol format.
func ReadBristol(r io.Reader) (*Network, error) { return xag.ReadBristol(r) }

// An Option configures Optimize.
type Option func(*core.Options)

// WithWorkers bounds the worker pool of the parallel enumeration,
// classification, and commit-prediction stages (0 = GOMAXPROCS,
// 1 = sequential). The result is bit-identical for every value.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// WithSequentialCommit forces the commit stage onto its single-threaded
// reference pass even with multiple workers. The result is byte-identical
// either way; the switch exists for bisecting suspected determinism bugs
// and for measuring the parallel commit's contribution.
func WithSequentialCommit(on bool) Option {
	return func(o *core.Options) { o.SequentialCommit = on }
}

// WithVerify toggles the end-of-round equivalence miter against a snapshot
// of the input. A failing round is rolled back and reported through
// Result.Err as a *VerifyError. Per-replacement truth-table checking is
// always on regardless.
func WithVerify(on bool) Option {
	return func(o *core.Options) { o.Verify = on }
}

// WithMaxRounds bounds the number of rewriting rounds (0 = run until
// convergence).
func WithMaxRounds(n int) Option {
	return func(o *core.Options) { o.MaxRounds = n }
}

// WithCost selects the gain metric (CostMC by default).
func WithCost(c Cost) Option {
	return func(o *core.Options) { o.Cost = c }
}

// WithLogger directs one line per degradation event (rejected rewrite,
// invalid database entry, recovered panic, rolled-back round) to logf.
// Safe with WithWorkers: calls are serialized.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(o *core.Options) { o.Logf = logf }
}

// WithDB optimizes against an existing database (for example Result.DB of
// a previous run), reusing its classification cache and synthesized
// circuits. The database may be shared by concurrent Optimize calls.
func WithDB(db *DB) Option {
	return func(o *core.Options) { o.DB = db }
}

// NewMetricsRegistry returns an empty metrics registry for WithMetrics;
// serve it over HTTP with MetricsRegistry.Handler (Prometheus text format).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetrics publishes the run's live counters on r: rewriting activity
// under mcc_* (runs, rounds, rewrites, AND gates removed, every degradation
// class) and database activity under mcdb_* (classifications, cache hit
// rate, synthesis outcomes). Registration is get-or-create, so any number
// of concurrent Optimize calls may share one registry — this is how the
// mcserved daemon exposes one observable surface for all requests.
func WithMetrics(r *MetricsRegistry) Option {
	return func(o *core.Options) { o.Metrics = r }
}

// WithCutSize sets the maximum cut size K (2..6, default 6).
func WithCutSize(k int) Option {
	return func(o *core.Options) { o.CutSize = k }
}

// WithIncremental toggles cross-round incremental reuse (on by default):
// later rounds re-enumerate and re-classify only the region dirtied by the
// previous round's rewrites, and repeated cut functions replay a memoized
// classification instead of querying the database again. Purely a
// performance feature — the optimized network is bit-identical with reuse
// on or off, for every cost model and worker count. Turn it off to force
// every round through the full pipeline (for example when benchmarking the
// baseline, or to rule incremental state out while debugging).
func WithIncremental(on bool) Option {
	return func(o *core.Options) { o.NoIncremental = !on }
}

// WithZeroGain also applies replacements that do not change the cost —
// useful to shake a network out of a local minimum.
func WithZeroGain(on bool) Option {
	return func(o *core.Options) { o.AllowZeroGain = on }
}

// Optimize runs rewriting rounds on net until convergence (or the bound
// set by WithMaxRounds), honoring ctx for cancellation at round, node,
// cut-enumeration, and synthesis granularity. The input network is not
// modified; a canceled run still returns a valid, partially optimized
// network with Result.Interrupted set.
func Optimize(ctx context.Context, net *Network, opts ...Option) Result {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.MinimizeMCContext(ctx, net, o)
}
