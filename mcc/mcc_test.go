package mcc_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/mcc"
)

// fullAdder builds the paper's Fig. 1 full adder: 3 ANDs naively, 1 AND
// after optimization (cout is majority, an affine relative of AND).
func fullAdder() *mcc.Network {
	n := mcc.NewNetwork()
	a, b, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(a, b)
	n.AddPO(n.Xor(ab, cin), "sum")
	n.AddPO(n.Or(n.And(a, b), n.And(cin, ab)), "cout")
	return n
}

func TestOptimizeFullAdder(t *testing.T) {
	res := mcc.Optimize(context.Background(), fullAdder())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	if got := res.Final().And; got != 1 {
		t.Fatalf("full adder optimized to %d ANDs, want 1", got)
	}
}

func TestOptionsApply(t *testing.T) {
	var lines int
	res := mcc.Optimize(context.Background(), fullAdder(),
		mcc.WithWorkers(4),
		mcc.WithVerify(true),
		mcc.WithMaxRounds(1),
		mcc.WithCost(mcc.Size()),
		mcc.WithLogger(func(string, ...any) { lines++ }),
	)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("WithMaxRounds(1) ran %d rounds", len(res.Rounds))
	}
	_ = lines // the logger only fires on degradation; none expected here
}

func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := mcc.Optimize(ctx, fullAdder())
	if !res.Interrupted || res.Err == nil {
		t.Fatalf("canceled run: Interrupted=%v Err=%v", res.Interrupted, res.Err)
	}
	if res.Network == nil {
		t.Fatalf("canceled run returned no network")
	}
}

func TestWithDBReusesCache(t *testing.T) {
	first := mcc.Optimize(context.Background(), fullAdder())
	if first.DB == nil {
		t.Fatalf("no database on result")
	}
	classified := first.DB.Stats().Classified
	second := mcc.Optimize(context.Background(), fullAdder(), mcc.WithDB(first.DB))
	if second.DB != first.DB {
		t.Fatalf("WithDB ignored")
	}
	if got := first.DB.Stats().Classified; got != classified {
		t.Fatalf("warm database re-classified %d functions", got-classified)
	}
}

func TestBristolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	res := mcc.Optimize(context.Background(), fullAdder())
	if err := res.Network.WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mcc.ReadBristol(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.CountGates().And; got != 1 {
		t.Fatalf("round-tripped network has %d ANDs, want 1", got)
	}
}

// TestDepthModelOnAdder64 is the ISSUE acceptance criterion at the public
// surface: optimizing a 64-bit adder under the Depth model strictly reduces
// the multiplicative depth, does not grow the AND count by more than 10%,
// and passes the end-of-round miter (WithVerify) throughout.
func TestDepthModelOnAdder64(t *testing.T) {
	n := bench.Adder(64)
	before := n.CountGates()
	res := mcc.Optimize(context.Background(), n,
		mcc.WithCost(mcc.Depth()),
		mcc.WithVerify(true),
	)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	after := res.Final()
	if after.AndDepth >= before.AndDepth {
		t.Fatalf("AND depth not reduced: %d -> %d", before.AndDepth, after.AndDepth)
	}
	if limit := before.And + before.And/10; after.And > limit {
		t.Fatalf("AND count grew past 10%%: %d -> %d", before.And, after.And)
	}
	t.Logf("adder-64 depth run: ANDs %d -> %d, AND depth %d -> %d",
		before.And, after.And, before.AndDepth, after.AndDepth)
}

// TestCostConstructors: the three built-in models are selectable by name.
func TestCostConstructors(t *testing.T) {
	if mcc.MC().Name() != "mc" || mcc.Size().Name() != "size" || mcc.Depth().Name() != "depth" {
		t.Fatalf("model names: %s/%s/%s", mcc.MC().Name(), mcc.Size().Name(), mcc.Depth().Name())
	}
	res := mcc.Optimize(context.Background(), fullAdder(), mcc.WithCost(mcc.Depth()))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Final().AndDepth; got > 2 {
		t.Fatalf("full adder AND depth %d after depth run", got)
	}
}

func TestWorkersAreDeterministic(t *testing.T) {
	seq := mcc.Optimize(context.Background(), fullAdder(), mcc.WithWorkers(1))
	par := mcc.Optimize(context.Background(), fullAdder(), mcc.WithWorkers(8))
	var a, b bytes.Buffer
	if err := seq.Network.WriteBristol(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.Network.WriteBristol(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parallel result differs from sequential")
	}
}

// TestWithIncrementalIdentical: incremental reuse (the default) and the
// full pipeline commit byte-identical networks, and the incremental run's
// later rounds actually reuse work (fewer gates enumerated than exist).
func TestWithIncrementalIdentical(t *testing.T) {
	build := func() *mcc.Network { return bench.Adder(32) }
	serialize := func(res mcc.Result) []byte {
		var buf bytes.Buffer
		if err := res.Network.WriteBristol(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	inc := mcc.Optimize(context.Background(), build(), mcc.WithIncremental(true))
	full := mcc.Optimize(context.Background(), build(), mcc.WithIncremental(false))
	if inc.Err != nil || full.Err != nil {
		t.Fatalf("errs: inc=%v full=%v", inc.Err, full.Err)
	}
	if !bytes.Equal(serialize(inc), serialize(full)) {
		t.Fatal("WithIncremental changed the optimized circuit")
	}
	reused := false
	for i, r := range inc.Rounds {
		if i > 0 && r.Enumerated < r.Gates {
			reused = true
		}
	}
	if !reused {
		t.Fatal("incremental run never reused enumeration work")
	}
	for i, r := range full.Rounds {
		if r.Enumerated != r.Gates || r.Classified != r.Gates {
			t.Fatalf("full round %d: enumerated=%d classified=%d gates=%d",
				i+1, r.Enumerated, r.Classified, r.Gates)
		}
	}
}
