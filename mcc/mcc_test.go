package mcc_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/mcc"
)

// fullAdder builds the paper's Fig. 1 full adder: 3 ANDs naively, 1 AND
// after optimization (cout is majority, an affine relative of AND).
func fullAdder() *mcc.Network {
	n := mcc.NewNetwork()
	a, b, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(a, b)
	n.AddPO(n.Xor(ab, cin), "sum")
	n.AddPO(n.Or(n.And(a, b), n.And(cin, ab)), "cout")
	return n
}

func TestOptimizeFullAdder(t *testing.T) {
	res := mcc.Optimize(context.Background(), fullAdder())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	if got := res.Final().And; got != 1 {
		t.Fatalf("full adder optimized to %d ANDs, want 1", got)
	}
}

func TestOptionsApply(t *testing.T) {
	var lines int
	res := mcc.Optimize(context.Background(), fullAdder(),
		mcc.WithWorkers(4),
		mcc.WithVerify(true),
		mcc.WithMaxRounds(1),
		mcc.WithCost(mcc.CostSize),
		mcc.WithLogger(func(string, ...any) { lines++ }),
	)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("WithMaxRounds(1) ran %d rounds", len(res.Rounds))
	}
	_ = lines // the logger only fires on degradation; none expected here
}

func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := mcc.Optimize(ctx, fullAdder())
	if !res.Interrupted || res.Err == nil {
		t.Fatalf("canceled run: Interrupted=%v Err=%v", res.Interrupted, res.Err)
	}
	if res.Network == nil {
		t.Fatalf("canceled run returned no network")
	}
}

func TestWithDBReusesCache(t *testing.T) {
	first := mcc.Optimize(context.Background(), fullAdder())
	if first.DB == nil {
		t.Fatalf("no database on result")
	}
	classified := first.DB.Stats().Classified
	second := mcc.Optimize(context.Background(), fullAdder(), mcc.WithDB(first.DB))
	if second.DB != first.DB {
		t.Fatalf("WithDB ignored")
	}
	if got := first.DB.Stats().Classified; got != classified {
		t.Fatalf("warm database re-classified %d functions", got-classified)
	}
}

func TestBristolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	res := mcc.Optimize(context.Background(), fullAdder())
	if err := res.Network.WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := mcc.ReadBristol(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.CountGates().And; got != 1 {
		t.Fatalf("round-tripped network has %d ANDs, want 1", got)
	}
}

func TestWorkersAreDeterministic(t *testing.T) {
	seq := mcc.Optimize(context.Background(), fullAdder(), mcc.WithWorkers(1))
	par := mcc.Optimize(context.Background(), fullAdder(), mcc.WithWorkers(8))
	var a, b bytes.Buffer
	if err := seq.Network.WriteBristol(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.Network.WriteBristol(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("parallel result differs from sequential")
	}
}
