package spectral

import (
	"testing"

	"repro/internal/tt"
)

// FuzzClassifyReconstruct checks the package's central contract on
// arbitrary functions: whatever representative and transform come back —
// complete or iteration-limited — applying the transform to the
// representative must reproduce the input function exactly.
func FuzzClassifyReconstruct(f *testing.F) {
	f.Add(uint64(0xe8), uint8(3))
	f.Add(uint64(0x8000), uint8(4))
	f.Add(uint64(0x6996), uint8(4))
	f.Add(^uint64(0), uint8(6))
	f.Add(uint64(0x123456789abcdef0), uint8(6))
	f.Fuzz(func(t *testing.T, bits uint64, nRaw uint8) {
		n := 1 + int(nRaw)%6
		fn := tt.New(bits, n)
		res := Classify(fn, 1<<14)
		if got := res.Tr.Apply(res.Repr); got != fn {
			t.Fatalf("n=%d f=%s: reconstruction gives %s (repr %s, complete=%v)",
				n, fn, got, res.Repr, res.Complete)
		}
	})
}
