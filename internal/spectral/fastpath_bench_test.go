package spectral

// Microbenchmarks of the classification fast path on its real workload: the
// distinct shrunk cut functions a cold database classifies when optimizing
// adder-64 and sha-256-round. BenchmarkClassify runs the shipping pooled
// canonizer, BenchmarkClassifyReference the frozen pre-optimization search
// (fastpath_test.go) on the same functions — the ratio of their classify/s
// metrics is the fast path's cold-DB speedup, demonstrated on exactly the
// workload the acceptance criterion names. The recorded BENCH_classify.json
// rows come from the repo-root BenchmarkClassify suite, which drives the
// same workloads through the mcdb cache layers.

import (
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/cut"
	"repro/internal/tt"
)

// classifyWorkload returns the distinct shrunk cut functions of a named
// benchmark circuit, in first-appearance order — the stream a cold DB
// actually classifies.
func classifyWorkload(tb testing.TB, name string) []tt.T {
	tb.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		tb.Fatalf("unknown benchmark %s", name)
	}
	net := bm.Build()
	cuts := cut.Enumerate(net, cut.Params{})
	seen := make(map[tt.T]bool)
	var fns []tt.T
	for id := 0; id < net.NumNodes(); id++ {
		if !net.IsGate(id) {
			continue
		}
		for _, c := range cuts.For(id) {
			if c.Size() < 2 {
				continue
			}
			sh, _ := c.Table.Shrink()
			if sh.N == 0 || seen[sh] {
				continue
			}
			seen[sh] = true
			fns = append(fns, sh)
		}
	}
	return fns
}

func benchClassify(b *testing.B, classify func(tt.T) Result) {
	for _, name := range []string{"adder-64", "sha-256-round"} {
		fns := classifyWorkload(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = 0
				for _, f := range fns {
					steps += classify(f).Steps
				}
			}
			b.ReportMetric(float64(len(fns))*float64(b.N)/b.Elapsed().Seconds(), "classify/s")
			b.ReportMetric(float64(steps)/float64(len(fns)), "steps/op")
		})
		// Per-n breakdown rows for the same workload.
		byN := map[int][]tt.T{}
		for _, f := range fns {
			byN[f.N] = append(byN[f.N], f)
		}
		var ns []int
		for n := range byN {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			sub := byN[n]
			b.Run(name+"/n="+string(rune('0'+n)), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, f := range sub {
						classify(f)
					}
				}
				b.ReportMetric(float64(len(sub))*float64(b.N)/b.Elapsed().Seconds(), "classify/s")
			})
		}
	}
}

// BenchmarkClassify measures the shipping fast path (pooled canonizer,
// counting sort, multiset bound) cold — every call runs the full search.
func BenchmarkClassify(b *testing.B) {
	benchClassify(b, func(f tt.T) Result { return Classify(f, 0) })
}

// BenchmarkClassifyReference measures the frozen pre-optimization search on
// the identical workload (n ≤ 4 goes through the same exact tables in both).
func BenchmarkClassifyReference(b *testing.B) {
	benchClassify(b, func(f tt.T) Result {
		if f.N <= 4 {
			return classifyExact(f)
		}
		return refClassifySpectral(f, 0)
	})
}
