//go:build !race

package spectral

// raceEnabled reports whether the race detector is compiled in. The
// exhaustive fast-path cross-validation skips under -race: it pins step
// accounting, not memory safety, and instrumented DFS runs are an order of
// magnitude slower (TestClassifyConcurrent covers the concurrency story).
const raceEnabled = false
