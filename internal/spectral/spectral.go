// Package spectral implements affine classification of Boolean functions via
// the Rademacher-Walsh spectrum, following the approach of Miller and Soeken
// used by the paper.
//
// The spectrum of f over n variables is s_w = Σ_x (-1)^{f(x) ⊕ ⟨w,x⟩}. The
// five affine operations of the paper act on the spectrum as signed index
// permutations:
//
//	(1) swapping variables x_i ↔ x_j    — permutes index bits i and j
//	(2) complementing a variable x_i    — negates coefficients with w_i = 1
//	(3) complementing the function      — negates all coefficients
//	(4) translation x_i ← x_i ⊕ x_j     — transvection on indices (w_j ← w_j⊕w_i)
//	(5) disjoint translation f ← f ⊕ x_i — translates indices by e_i
//
// Operations (1) and (4) generate the full linear group GL(n,2) acting on
// indices, (5) generates all index translations, and (2)/(3) contribute sign
// patterns, so the reachable spectra of f are exactly
//
//	s'_w = ε · (-1)^{⟨c,w⟩} · s_{B·w ⊕ m},   B ∈ GL(n,2), m,c ∈ F₂ⁿ, ε = ±1.
//
// Classify searches this group for the lexicographically maximal spectrum
// (the canonical representative of the affine class) with a DFS over the
// columns of B, pruned against the best sequence found so far and bounded by
// an iteration limit exactly like the classification routine used in the
// paper (which caches results and omits functions whose classification
// exceeds the limit).
//
// The search is hot — profiling shows classification dominating rewriting
// wall-clock — so its state lives in a sync.Pool of preallocated canonizers
// (steady-state classification performs no heap allocation; see
// TestClassifyAllocFree), the span of the chosen columns is a uint64 bitmask
// passed down the DFS by value (backtracking restores it for free, and
// candidate enumeration walks the clear bits), and each level is bounded by
// the magnitude multiset: the best candidate value any continuation can
// produce is the largest spectrum magnitude not yet consumed by the prefix,
// which lets a doomed level be abandoned with exactly the same step
// accounting as the sorted-candidate scan it replaces. Step counts are
// observable (they decide Result.Complete under the iteration limit), so
// every shortcut here must be — and is — step-exact, keeping classification
// verdicts byte-identical.
package spectral

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/tt"
)

// Spectrum computes the Rademacher-Walsh spectrum of t as a vector of 2^n
// coefficients indexed by w.
func Spectrum(t tt.T) []int32 {
	return spectrumInto(t, make([]int32, t.Size()))
}

// spectrumInto computes the spectrum into the provided buffer (len ≥ 2^n) and
// returns it resliced to 2^n.
func spectrumInto(t tt.T, s []int32) []int32 {
	size := t.Size()
	s = s[:size]
	for x := 0; x < size; x++ {
		if t.Get(x) {
			s[x] = -1
		} else {
			s[x] = 1
		}
	}
	// In-place Walsh-Hadamard butterfly.
	for step := 1; step < size; step <<= 1 {
		for i := 0; i < size; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := s[j], s[j+step]
				s[j], s[j+step] = a+b, a-b
			}
		}
	}
	return s
}

// FromSpectrum inverts Spectrum, recovering the truth table.
func FromSpectrum(s []int32, n int) (tt.T, error) {
	return fromSpectrumInto(s, n, make([]int32, len(s)))
}

// fromSpectrumInto is FromSpectrum with a caller-provided scratch buffer
// (len ≥ 2^n); s is left untouched.
func fromSpectrumInto(s []int32, n int, buf []int32) (tt.T, error) {
	size := 1 << uint(n)
	if len(s) != size {
		return tt.T{}, fmt.Errorf("spectral: spectrum length %d does not match n=%d", len(s), n)
	}
	buf = buf[:size]
	copy(buf, s)
	for step := 1; step < size; step <<= 1 {
		for i := 0; i < size; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := buf[j], buf[j+step]
				buf[j], buf[j+step] = a+b, a-b
			}
		}
	}
	out := tt.Const0(n)
	for x := 0; x < size; x++ {
		switch buf[x] {
		case int32(size):
			// (-1)^f(x) = +1
		case -int32(size):
			out = out.Set(x, true)
		default:
			return tt.T{}, fmt.Errorf("spectral: vector is not a valid spectrum (entry %d = %d)", x, buf[x])
		}
	}
	return out, nil
}

// Transform records how to rebuild the classified function f from its class
// representative r:
//
//	f(y) = r(z₀,…,z_{n−1}) ⊕ ⟨OutputMask, y⟩ ⊕ OutputCompl
//	z_i  = ⟨InputMask[i], y⟩ ⊕ InputCompl[i]
//
// All of these are XORs, inversions and renamings — AND-free, so f inherits
// the representative's multiplicative complexity.
//
// Transform is a pure value (fixed-size arrays, no heap backing): results can
// be copied, cached and returned without allocation. Only the first N entries
// of the arrays are meaningful.
type Transform struct {
	N           int
	InputMask   [tt.MaxVars]uint // InputMask[i] = v_i, the i-th column of B
	InputCompl  [tt.MaxVars]bool
	OutputMask  uint
	OutputCompl bool
}

// Apply reconstructs the truth table of f from the representative's table.
// The input substitution z = M·y ⊕ c (rows of M = InputMask) is executed by
// the word-parallel tt.ApplyLinear machinery rather than a per-minterm bit
// loop.
func (tr Transform) Apply(repr tt.T) tt.T {
	if repr.N != tr.N {
		panic("spectral: transform/representative variable count mismatch")
	}
	n := tr.N
	// ApplyLinear wants the columns of the matrix; InputMask holds its rows.
	var col [tt.MaxVars]uint
	for j := 0; j < n; j++ {
		var cj uint
		for i := 0; i < n; i++ {
			cj |= (tr.InputMask[i] >> uint(j) & 1) << uint(i)
		}
		col[j] = cj
	}
	var b uint
	for i := 0; i < n; i++ {
		if tr.InputCompl[i] {
			b |= 1 << uint(i)
		}
	}
	out := repr.ApplyLinear(col[:n], b)
	if tr.OutputMask != 0 {
		out = out.Xor(tt.Linear(tr.OutputMask, n))
	}
	if tr.OutputCompl {
		out = out.Not()
	}
	return out
}

// XorCost returns the number of 2-input XOR gates needed to realize the
// transform around the representative circuit (inversions are free).
func (tr Transform) XorCost() int {
	cost := 0
	for _, m := range tr.InputMask[:tr.N] {
		if c := bits.OnesCount(m); c > 1 {
			cost += c - 1
		}
	}
	if c := bits.OnesCount(tr.OutputMask); c > 0 {
		cost += c // OutputMask XORs stack on top of r's output
	}
	return cost
}

// Result is the outcome of a classification.
type Result struct {
	Repr     tt.T      // representative truth table of the affine class
	Tr       Transform // rebuilds the input function from Repr
	Complete bool      // false if the iteration limit was hit (Repr is then
	// still a valid equivalent representative, but possibly not the canonical one)
	Steps int // search steps consumed
}

// DefaultLimit matches the iteration limit used in the paper's experiments.
const DefaultLimit = 100000

// Classify computes the affine class representative of t and the transform
// that rebuilds t from it.
//
// Functions of up to four variables are classified exactly through a
// precomputed orbit table (see table.go). Larger functions use the spectral
// canonization search bounded by limit steps; when the limit is exceeded the
// best representative found so far is returned with Complete=false — still a
// valid member-to-representative transform, only possibly not the canonical
// one, mirroring the iteration-limited classification of the paper.
//
// Classify is reentrant: search state is borrowed from a sync.Pool for the
// duration of the call, and the only package-level data (the exact orbit
// tables in table.go) is built once under sync.Once and read-only afterwards.
// The parallel rewriting engine relies on this to classify cut functions from
// many workers concurrently. In steady state (pool warm) a call performs no
// heap allocation.
func Classify(t tt.T, limit int) Result {
	if t.N <= 4 {
		return classifyExact(t)
	}
	return ClassifySpectral(t, limit)
}

// epsSigns is the fixed ε iteration order of the outer search loop. A
// package-level array (not a slice literal in the loop) so the hot path does
// not allocate.
var epsSigns = [2]int32{1, -1}

// ClassifySpectral runs the spectral canonization search directly,
// regardless of variable count. Exported for cross-validation against the
// exact tables; Classify is the entry point normal clients should use.
func ClassifySpectral(t tt.T, limit int) Result {
	if limit <= 0 {
		limit = DefaultLimit
	}
	n := t.N
	size := 1 << uint(n)

	// Affine functions form a single class with representative 0; handle
	// them directly — the DFS would otherwise drown in ties (every
	// non-maximal coefficient is zero).
	if mask, compl, ok := t.IsAffine(); ok {
		tr := Transform{
			N:           n,
			OutputMask:  mask,
			OutputCompl: compl,
		}
		for i := 0; i < n; i++ {
			tr.InputMask[i] = 1 << uint(i)
		}
		return Result{Repr: tt.Const0(n), Tr: tr, Complete: true}
	}

	c := canonPool.Get().(*canonizer)
	c.reset(n, size, limit)
	spectrumInto(t, c.s)

	// Order the spectrum offsets by descending magnitude (counting sort over
	// |s| ∈ [0, 2^n]); maxAvail scans this order past prefix-consumed offsets
	// to bound each DFS level. The order does not depend on m or ε — those
	// only permute and flip signs — so one pass serves every search start.
	cnt := c.sortCnt[:size+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for i, v := range c.s {
		a := abs32(v)
		c.mags[i] = a
		c.sneg[i] = -v
		cnt[a]++
	}
	pos := int32(0)
	for a := size; a >= 0; a-- {
		n := cnt[a]
		cnt[a] = pos
		pos += n
	}
	for i := range c.s {
		a := c.mags[i]
		c.order[cnt[a]] = int32(i)
		cnt[a]++
	}
	maxAbs := c.mags[c.order[0]]

	for m := 0; m < size; m++ {
		if abs32(c.s[m]) != maxAbs {
			continue
		}
		for _, eps := range epsSigns {
			if eps*c.s[m] < 0 {
				continue // s'_0 must equal +maxAbs
			}
			if maxAbs == 0 {
				// Impossible: Parseval gives Σ s_w² = 4^n > 0.
				continue
			}
			c.search(m, eps)
		}
	}

	repr, err := fromSpectrumInto(c.best, n, c.inv)
	if err != nil {
		// Cannot happen: best is a signed permutation of a valid spectrum.
		panic("spectral: internal error: " + err.Error())
	}

	tr := Transform{
		N:           n,
		OutputMask:  uint(c.bestM),
		OutputCompl: c.bestEps < 0,
	}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = uint(c.bestV[i])
		tr.InputCompl[i] = c.bestSigma[i] < 0
	}
	res := Result{Repr: repr, Tr: tr, Complete: !c.exhausted, Steps: c.steps}
	canonPool.Put(c)
	return res
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// maxSize is the largest spectrum a canonizer must hold.
const maxSize = 1 << tt.MaxVars

// canonPool recycles fully-grown canonizers across classifications. All
// buffers are allocated once at tt.MaxVars capacity and resliced per call, so
// a warm pool makes ClassifySpectral allocation-free.
var canonPool = sync.Pool{New: func() interface{} { return newCanonizer() }}

func newCanonizer() *canonizer {
	c := &canonizer{
		s:         make([]int32, maxSize),
		inv:       make([]int32, maxSize),
		bw:        make([]int, maxSize),
		sg:        make([]int32, maxSize),
		cur:       make([]int32, maxSize),
		v:         make([]int, tt.MaxVars),
		sig:       make([]int32, tt.MaxVars),
		best:      make([]int32, maxSize),
		bestPk:    make([]uint64, maxSize/2),
		bestV:     make([]int, tt.MaxVars),
		bestSigma: make([]int32, tt.MaxVars),
		order:     make([]int32, maxSize),
		mags:      make([]int32, maxSize),
		sneg:      make([]int32, maxSize),
	}
	for i := 0; i < tt.MaxVars; i++ {
		c.candBuf[i] = make([]cand, 0, 2*maxSize)
	}
	return c
}

// canonizer carries the DFS state for the lexicographic maximization of
//
//	s'_w = ε · sign(w) · s[B·w ⊕ m]
//
// over B ∈ GL(n,2) (chosen column by column), sign bits σ_i, index
// translation m and global sign ε.
type canonizer struct {
	n, size   int
	s         []int32
	limit     int
	steps     int
	exhausted bool

	// current branch state
	bw  []int   // bw[w] = B·w ⊕ m for all w below the frontier
	sg  []int32 // sg[w] = ∏_{i ∈ w} σ_i
	cur []int32 // candidate canonical sequence
	v   []int   // chosen columns of B
	sig []int32 // chosen σ_i

	// per-level candidate buffers, reused across branches
	candBuf [tt.MaxVars][]cand

	// magnitude multiset bound: order lists the spectrum offsets by
	// descending |s|, mags caches |s| per offset, and availMask has one bit
	// per spectrum offset. maxAvail() walks order past the offsets the DFS
	// prefix has consumed — the first free one is the best candidate value
	// any continuation can produce. See dfs.
	order     []int32
	mags      []int32
	availMask uint64

	// es points at s (ε = +1) or sneg (ε = −1) for the current search, so the
	// hot fill loop computes ε·sg·s with a single multiply.
	es   []int32
	sneg []int32

	// counting-sort scratch (values span [-maxSize, maxSize])
	sortCnt [2*maxSize + 1]int32

	// scratch for the final spectrum inversion
	inv []int32

	// best complete sequence so far and the transform that produced it.
	// bestPk mirrors best with two coefficients packed per word so commit's
	// tie-breaking compare scans at double width.
	hasBest   bool
	best      []int32
	bestPk    []uint64
	bestM     int
	bestEps   int32
	bestV     []int
	bestSigma []int32
}

// reset prepares a pooled canonizer for a fresh classification, reslicing
// every buffer to the call's spectrum size.
func (c *canonizer) reset(n, size, limit int) {
	c.n, c.size, c.limit = n, size, limit
	c.steps = 0
	c.exhausted = false
	c.hasBest = false
	c.s = c.s[:size]
	c.inv = c.inv[:size]
	c.bw = c.bw[:size]
	c.sg = c.sg[:size]
	c.cur = c.cur[:size]
	c.best = c.best[:size]
	c.bestPk = c.bestPk[:size/2]
	c.order = c.order[:size]
	c.mags = c.mags[:size]
	c.sneg = c.sneg[:size]
	c.availMask = ^uint64(0) >> uint(64-size)
}

func (c *canonizer) search(m int, eps int32) {
	if eps > 0 {
		c.es = c.s
	} else {
		c.es = c.sneg
	}
	c.bw[0] = m
	c.sg[0] = 1
	c.cur[0] = c.es[m]
	better := !c.hasBest
	if !better {
		if c.cur[0] < c.best[0] {
			return
		}
		if c.cur[0] > c.best[0] {
			better = true
		}
	}
	// Position 0 consumes spectrum offset m; as a span bitmask over offsets
	// relative to m that is bit 0.
	c.dfs(0, m, eps, better, 1)
}

// maxAvail returns the largest spectrum magnitude not yet consumed by the
// current DFS prefix. Because the prefix positions map to distinct spectrum
// offsets (B is invertible), the remaining positions draw from exactly the
// unconsumed multiset, and any candidate at the current level has value at
// most maxAvail (both signs of every unconsumed coefficient are candidates).
// The prefix owns offset idx iff span has bit idx⊕m set, so the scan skips
// at most 2^i entries of the precomputed descending order.
func (c *canonizer) maxAvail(span uint64, m int) int32 {
	um := uint(m)
	for _, idx := range c.order {
		if span>>(uint(idx)^um)&1 == 0 {
			return c.mags[idx]
		}
	}
	return 0
}

// xorImage returns the image of a spectrum-offset bitmask under the index map
// x ↦ x ⊕ v: a butterfly permutation of the 64 mask bits, one masked swap per
// set bit of v.
func xorImage(set uint64, v int) uint64 {
	if v&1 != 0 {
		set = (set&0x5555555555555555)<<1 | (set>>1)&0x5555555555555555
	}
	if v&2 != 0 {
		set = (set&0x3333333333333333)<<2 | (set>>2)&0x3333333333333333
	}
	if v&4 != 0 {
		set = (set&0x0f0f0f0f0f0f0f0f)<<4 | (set>>4)&0x0f0f0f0f0f0f0f0f
	}
	if v&8 != 0 {
		set = (set&0x00ff00ff00ff00ff)<<8 | (set>>8)&0x00ff00ff00ff00ff
	}
	if v&16 != 0 {
		set = (set&0x0000ffff0000ffff)<<16 | (set>>16)&0x0000ffff0000ffff
	}
	if v&32 != 0 {
		set = set<<32 | set>>32
	}
	return set
}

// dfs chooses column i of B. better indicates the current prefix already
// strictly beats the best sequence (so no further comparisons can prune).
// span is the bitmask of spectrum offsets (relative to m) the prefix has
// consumed: {bw[w] ⊕ m : w < 2^i}, which is exactly span(v_0..v_{i-1}).
// Passing it by value makes backtracking free.
func (c *canonizer) dfs(i, m int, eps int32, better bool, span uint64) {
	if c.overLimit() {
		return
	}
	if i == c.n {
		if better {
			c.commit(m, eps)
		}
		return
	}
	lo := 1 << uint(i) // position of basis vector e_i in index order

	if !better && c.maxAvail(span, m) < c.best[lo] {
		// Multiset bound: no remaining coefficient can match best at this
		// position, so the sorted candidate scan below would break on its
		// very first entry. Mirror that exactly — one step, one limit check
		// — so step accounting (and with it Complete under the limit) stays
		// byte-identical to the unpruned search.
		c.steps++
		c.overLimit()
		return
	}

	// Candidate columns: any vector outside span(v_0..v_{i-1}) — the clear
	// bits of span — tried high values first so the best sequence is found
	// early and prunes the rest.
	cands := c.collectCands(c.candBuf[i], span, m)

	es := c.es
	bw, sg, cur, best := c.bw, c.sg, c.cur, c.best
	last := i+1 == c.n // the block's bw/sg are never read below the last level
	for _, cd := range cands {
		c.steps++
		if c.overLimit() {
			return
		}
		branchBetter := better
		if !branchBetter {
			if cd.val < best[lo] {
				// Candidates are sorted descending; all remaining are worse.
				break
			}
			if cd.val > best[lo] {
				branchBetter = true
			}
		}
		// Fill positions lo..2·lo−1 and compare. B·w = B·(w−lo) ⊕ v for
		// w in that range, so bw[w] = bw[w−lo] ⊕ v (the m offsets cancel).
		c.v[i], c.sig[i] = cd.v, cd.sig
		ok := true
		c.steps += lo // account the fill work against the limit
		if last {
			for w := lo; w < lo<<1; w++ {
				cv := sg[w-lo] * cd.sig * es[bw[w-lo]^cd.v]
				cur[w] = cv
				if !branchBetter {
					if cv < best[w] {
						ok = false
						break
					}
					if cv > best[w] {
						branchBetter = true
					}
				}
			}
		} else {
			for w := lo; w < lo<<1; w++ {
				b := bw[w-lo] ^ cd.v
				g := sg[w-lo] * cd.sig
				cv := g * es[b]
				bw[w], sg[w], cur[w] = b, g, cv
				if !branchBetter {
					if cv < best[w] {
						ok = false
						break
					}
					if cv > best[w] {
						branchBetter = true
					}
				}
			}
		}
		if !ok {
			continue
		}
		if last {
			// Inlined leaf: dfs(n, …) is exactly a limit check and a commit.
			// The second check mirrors the caller's post-recursion one — it
			// matters, because commit can flip hasBest and with it whether
			// the exhausted flag is raised here.
			if c.overLimit() {
				return
			}
			if branchBetter {
				c.commit(m, eps)
			}
			if c.overLimit() {
				return
			}
			continue
		}
		// The child prefix owns the ⊕v image of every current offset too.
		c.dfs(i+1, m, eps, branchBetter, span|xorImage(span, cd.v))
		if c.overLimit() {
			return
		}
	}
}

// overLimit reports whether the step budget is exhausted. The very first
// descent is always allowed to complete so that a valid representative
// exists even under tiny limits.
func (c *canonizer) overLimit() bool {
	if c.steps >= c.limit && c.hasBest {
		c.exhausted = true
		return true
	}
	return false
}

func (c *canonizer) commit(m int, eps int32) {
	cur := c.cur
	if !c.hasBest {
		c.hasBest = true
	} else {
		// The better-prefix flag that led here may be stale: best can have
		// been replaced by a deeper commit after the flag was computed.
		// Compare in full before overwriting (ties replace, like the scan
		// below them would). The equality scan runs against the packed
		// mirror, two coefficients and one predictable branch per word.
		best, pk := c.best, c.bestPk
		w := 0
		for ; w < c.size; w += 2 {
			p := uint64(uint32(cur[w])) | uint64(uint32(cur[w+1]))<<32
			if p != pk[w>>1] {
				if cur[w] != best[w] {
					if cur[w] < best[w] {
						return
					}
				} else if cur[w+1] < best[w+1] {
					return
				}
				break
			}
		}
		if w >= c.size {
			// Full tie: the stored sequence is already byte-identical, so
			// the replacement only changes the recorded transform.
			c.bestM = m
			c.bestEps = eps
			copy(c.bestV, c.v)
			copy(c.bestSigma, c.sig)
			return
		}
	}
	copy(c.best, cur)
	for w := 0; w < c.size; w += 2 {
		c.bestPk[w>>1] = uint64(uint32(cur[w])) | uint64(uint32(cur[w+1]))<<32
	}
	c.bestM = m
	c.bestEps = eps
	copy(c.bestV, c.v)
	copy(c.bestSigma, c.sig)
}

// collectCands generates a DFS level's candidates — both signs of every
// column outside the prefix span — already sorted by value descending via a
// stable counting sort fused with the generation pass: values are spectrum
// coefficients in [-2^n, 2^n], so two walks over the free columns and 2·2^n+1
// buckets replace the former generate-then-O(k²)-insertion-sort while
// preserving the exact order (equal values keep their generation order, +σ
// before −σ, v ascending) the DFS step accounting is pinned to.
func (c *canonizer) collectCands(buf []cand, span uint64, m int) []cand {
	es := c.es
	top := int32(c.size)
	cnt := c.sortCnt[:2*c.size+1]
	for i := range cnt {
		cnt[i] = 0
	}
	avail := ^span & c.availMask
	k := 0
	for a := avail; a != 0; a &= a - 1 {
		sv := es[bits.TrailingZeros64(a)^m]
		cnt[top-sv]++ // bucket 0 = highest value
		cnt[top+sv]++
		k += 2
	}
	pos := int32(0)
	for i := range cnt {
		n := cnt[i]
		cnt[i] = pos
		pos += n
	}
	buf = buf[:k]
	for a := avail; a != 0; a &= a - 1 {
		v := bits.TrailingZeros64(a)
		sv := es[v^m]
		i := top - sv
		buf[cnt[i]] = cand{v, 1, sv}
		cnt[i]++
		i = top + sv
		buf[cnt[i]] = cand{v, -1, -sv}
		cnt[i]++
	}
	return buf
}

type cand struct {
	v   int
	sig int32
	val int32
}
