// Package spectral implements affine classification of Boolean functions via
// the Rademacher-Walsh spectrum, following the approach of Miller and Soeken
// used by the paper.
//
// The spectrum of f over n variables is s_w = Σ_x (-1)^{f(x) ⊕ ⟨w,x⟩}. The
// five affine operations of the paper act on the spectrum as signed index
// permutations:
//
//	(1) swapping variables x_i ↔ x_j    — permutes index bits i and j
//	(2) complementing a variable x_i    — negates coefficients with w_i = 1
//	(3) complementing the function      — negates all coefficients
//	(4) translation x_i ← x_i ⊕ x_j     — transvection on indices (w_j ← w_j⊕w_i)
//	(5) disjoint translation f ← f ⊕ x_i — translates indices by e_i
//
// Operations (1) and (4) generate the full linear group GL(n,2) acting on
// indices, (5) generates all index translations, and (2)/(3) contribute sign
// patterns, so the reachable spectra of f are exactly
//
//	s'_w = ε · (-1)^{⟨c,w⟩} · s_{B·w ⊕ m},   B ∈ GL(n,2), m,c ∈ F₂ⁿ, ε = ±1.
//
// Classify searches this group for the lexicographically maximal spectrum
// (the canonical representative of the affine class) with a DFS over the
// columns of B, pruned against the best sequence found so far and bounded by
// an iteration limit exactly like the classification routine used in the
// paper (which caches results and omits functions whose classification
// exceeds the limit).
package spectral

import (
	"fmt"

	"repro/internal/tt"
)

// Spectrum computes the Rademacher-Walsh spectrum of t as a vector of 2^n
// coefficients indexed by w.
func Spectrum(t tt.T) []int32 {
	size := t.Size()
	s := make([]int32, size)
	for x := 0; x < size; x++ {
		if t.Get(x) {
			s[x] = -1
		} else {
			s[x] = 1
		}
	}
	// In-place Walsh-Hadamard butterfly.
	for step := 1; step < size; step <<= 1 {
		for i := 0; i < size; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := s[j], s[j+step]
				s[j], s[j+step] = a+b, a-b
			}
		}
	}
	return s
}

// FromSpectrum inverts Spectrum, recovering the truth table.
func FromSpectrum(s []int32, n int) (tt.T, error) {
	size := 1 << uint(n)
	if len(s) != size {
		return tt.T{}, fmt.Errorf("spectral: spectrum length %d does not match n=%d", len(s), n)
	}
	buf := make([]int32, size)
	copy(buf, s)
	for step := 1; step < size; step <<= 1 {
		for i := 0; i < size; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := buf[j], buf[j+step]
				buf[j], buf[j+step] = a+b, a-b
			}
		}
	}
	out := tt.Const0(n)
	for x := 0; x < size; x++ {
		switch buf[x] {
		case int32(size):
			// (-1)^f(x) = +1
		case -int32(size):
			out = out.Set(x, true)
		default:
			return tt.T{}, fmt.Errorf("spectral: vector is not a valid spectrum (entry %d = %d)", x, buf[x])
		}
	}
	return out, nil
}

// Transform records how to rebuild the classified function f from its class
// representative r:
//
//	f(y) = r(z₀,…,z_{n−1}) ⊕ ⟨OutputMask, y⟩ ⊕ OutputCompl
//	z_i  = ⟨InputMask[i], y⟩ ⊕ InputCompl[i]
//
// All of these are XORs, inversions and renamings — AND-free, so f inherits
// the representative's multiplicative complexity.
type Transform struct {
	N           int
	InputMask   []uint // InputMask[i] = v_i, the i-th column of B
	InputCompl  []bool
	OutputMask  uint
	OutputCompl bool
}

// Apply reconstructs the truth table of f from the representative's table.
func (tr Transform) Apply(repr tt.T) tt.T {
	if repr.N != tr.N {
		panic("spectral: transform/representative variable count mismatch")
	}
	n := tr.N
	out := tt.Const0(n)
	for y := 0; y < 1<<uint(n); y++ {
		var z uint
		for i := 0; i < n; i++ {
			v := parity(tr.InputMask[i] & uint(y))
			if tr.InputCompl[i] {
				v = !v
			}
			if v {
				z |= 1 << uint(i)
			}
		}
		val := repr.Eval(z)
		if parity(tr.OutputMask & uint(y)) {
			val = !val
		}
		if tr.OutputCompl {
			val = !val
		}
		out = out.Set(y, val)
	}
	return out
}

// XorCost returns the number of 2-input XOR gates needed to realize the
// transform around the representative circuit (inversions are free).
func (tr Transform) XorCost() int {
	cost := 0
	for _, m := range tr.InputMask {
		if c := popcount(m); c > 1 {
			cost += c - 1
		}
	}
	if c := popcount(tr.OutputMask); c > 0 {
		cost += c // OutputMask XORs stack on top of r's output
	}
	return cost
}

func parity(v uint) bool {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 1
}

func popcount(v uint) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}

// Result is the outcome of a classification.
type Result struct {
	Repr     tt.T      // representative truth table of the affine class
	Tr       Transform // rebuilds the input function from Repr
	Complete bool      // false if the iteration limit was hit (Repr is then
	// still a valid equivalent representative, but possibly not the canonical one)
	Steps int // search steps consumed
}

// DefaultLimit matches the iteration limit used in the paper's experiments.
const DefaultLimit = 100000

// Classify computes the affine class representative of t and the transform
// that rebuilds t from it.
//
// Functions of up to four variables are classified exactly through a
// precomputed orbit table (see table.go). Larger functions use the spectral
// canonization search bounded by limit steps; when the limit is exceeded the
// best representative found so far is returned with Complete=false — still a
// valid member-to-representative transform, only possibly not the canonical
// one, mirroring the iteration-limited classification of the paper.
//
// Classify is reentrant: every call allocates its own search state, and the
// only package-level data (the exact orbit tables in table.go) is built
// once under sync.Once and read-only afterwards. The parallel rewriting
// engine relies on this to classify cut functions from many workers
// concurrently.
func Classify(t tt.T, limit int) Result {
	if t.N <= 4 {
		return classifyExact(t)
	}
	return ClassifySpectral(t, limit)
}

// ClassifySpectral runs the spectral canonization search directly,
// regardless of variable count. Exported for cross-validation against the
// exact tables; Classify is the entry point normal clients should use.
func ClassifySpectral(t tt.T, limit int) Result {
	if limit <= 0 {
		limit = DefaultLimit
	}
	n := t.N
	size := 1 << uint(n)

	// Affine functions form a single class with representative 0; handle
	// them directly — the DFS would otherwise drown in ties (every
	// non-maximal coefficient is zero).
	if mask, compl, ok := t.IsAffine(); ok {
		tr := Transform{
			N:           n,
			InputMask:   make([]uint, n),
			InputCompl:  make([]bool, n),
			OutputMask:  mask,
			OutputCompl: compl,
		}
		for i := 0; i < n; i++ {
			tr.InputMask[i] = 1 << uint(i)
		}
		return Result{Repr: tt.Const0(n), Tr: tr, Complete: true}
	}

	s := Spectrum(t)

	// Locate the maximal absolute coefficient: the canonical s'_0.
	var maxAbs int32
	for _, v := range s {
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}

	c := &canonizer{n: n, size: size, s: s, limit: limit}
	for m := 0; m < size; m++ {
		if abs32(s[m]) != maxAbs {
			continue
		}
		for _, eps := range []int32{1, -1} {
			if eps*s[m] < 0 {
				continue // s'_0 must equal +maxAbs
			}
			if maxAbs == 0 {
				// Impossible: Parseval gives Σ s_w² = 4^n > 0.
				continue
			}
			c.search(m, eps)
		}
	}

	repr, err := FromSpectrum(c.best, n)
	if err != nil {
		// Cannot happen: best is a signed permutation of a valid spectrum.
		panic("spectral: internal error: " + err.Error())
	}

	tr := Transform{
		N:           n,
		InputMask:   make([]uint, n),
		InputCompl:  make([]bool, n),
		OutputMask:  uint(c.bestM),
		OutputCompl: c.bestEps < 0,
	}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = uint(c.bestV[i])
		tr.InputCompl[i] = c.bestSigma[i] < 0
	}
	return Result{Repr: repr, Tr: tr, Complete: !c.exhausted, Steps: c.steps}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// canonizer carries the DFS state for the lexicographic maximization of
//
//	s'_w = ε · sign(w) · s[B·w ⊕ m]
//
// over B ∈ GL(n,2) (chosen column by column), sign bits σ_i, index
// translation m and global sign ε.
type canonizer struct {
	n, size   int
	s         []int32
	limit     int
	steps     int
	exhausted bool

	// current branch state
	bw  []int   // bw[w] = B·w ⊕ m for all w below the frontier
	sg  []int32 // sg[w] = ∏_{i ∈ w} σ_i
	cur []int32 // candidate canonical sequence
	v   []int   // chosen columns of B
	sig []int32 // chosen σ_i

	// per-level scratch buffers, reused across branches
	spanBuf [][]bool
	candBuf [][]cand

	// best complete sequence so far and the transform that produced it
	best      []int32
	bestM     int
	bestEps   int32
	bestV     []int
	bestSigma []int32
}

func (c *canonizer) search(m int, eps int32) {
	if c.bw == nil {
		c.bw = make([]int, c.size)
		c.sg = make([]int32, c.size)
		c.cur = make([]int32, c.size)
		c.v = make([]int, c.n)
		c.sig = make([]int32, c.n)
		c.spanBuf = make([][]bool, c.n)
		c.candBuf = make([][]cand, c.n)
		for i := 0; i < c.n; i++ {
			c.spanBuf[i] = make([]bool, c.size)
			c.candBuf[i] = make([]cand, 0, 2*c.size)
		}
	}
	c.bw[0] = m
	c.sg[0] = 1
	c.cur[0] = eps * c.s[m]
	better := c.best == nil
	if !better {
		if c.cur[0] < c.best[0] {
			return
		}
		if c.cur[0] > c.best[0] {
			better = true
		}
	}
	c.dfs(0, m, eps, better)
}

// dfs chooses column i of B. better indicates the current prefix already
// strictly beats the best sequence (so no further comparisons can prune).
func (c *canonizer) dfs(i, m int, eps int32, better bool) {
	if c.overLimit() {
		return
	}
	if i == c.n {
		if better {
			c.commit(m, eps)
		}
		return
	}
	lo := 1 << uint(i) // position of basis vector e_i in index order

	// Candidate columns: any vector outside span(v_0..v_{i-1}). Since
	// bw[w] = B·w ⊕ m for all w < lo, the span is {bw[w] ⊕ m : w < lo}.
	inSpan := c.spanBuf[i]
	for w := range inSpan {
		inSpan[w] = false
	}
	for w := 0; w < lo; w++ {
		inSpan[c.bw[w]^m] = true
	}

	cands := c.candBuf[i][:0]
	for v := 1; v < c.size; v++ {
		if inSpan[v] {
			continue
		}
		sv := c.s[v^m]
		cands = append(cands, cand{v, 1, eps * sv}, cand{v, -1, -eps * sv})
	}
	// Try high values first so the best sequence is found early and prunes
	// the rest.
	sortCands(cands)

	for _, cd := range cands {
		c.steps++
		if c.overLimit() {
			return
		}
		branchBetter := better
		if !branchBetter {
			if cd.val < c.best[lo] {
				// Candidates are sorted descending; all remaining are worse.
				break
			}
			if cd.val > c.best[lo] {
				branchBetter = true
			}
		}
		// Fill positions lo..2·lo−1 and compare. B·w = B·(w−lo) ⊕ v for
		// w in that range, so bw[w] = bw[w−lo] ⊕ v (the m offsets cancel).
		c.v[i], c.sig[i] = cd.v, cd.sig
		ok := true
		c.steps += lo // account the fill work against the limit
		for w := lo; w < lo<<1; w++ {
			c.bw[w] = c.bw[w-lo] ^ cd.v
			c.sg[w] = c.sg[w-lo] * cd.sig
			c.cur[w] = eps * c.sg[w] * c.s[c.bw[w]]
			if !branchBetter {
				if c.cur[w] < c.best[w] {
					ok = false
					break
				}
				if c.cur[w] > c.best[w] {
					branchBetter = true
				}
			}
		}
		if !ok {
			continue
		}
		c.dfs(i+1, m, eps, branchBetter)
		if c.overLimit() {
			return
		}
	}
}

// overLimit reports whether the step budget is exhausted. The very first
// descent is always allowed to complete so that a valid representative
// exists even under tiny limits.
func (c *canonizer) overLimit() bool {
	if c.steps >= c.limit && c.best != nil {
		c.exhausted = true
		return true
	}
	return false
}

func (c *canonizer) commit(m int, eps int32) {
	if c.best == nil {
		c.best = make([]int32, c.size)
		c.bestV = make([]int, c.n)
		c.bestSigma = make([]int32, c.n)
	} else {
		// The better-prefix flag that led here may be stale: best can have
		// been replaced by a deeper commit after the flag was computed.
		// Compare in full before overwriting.
		for w := 0; w < c.size; w++ {
			if c.cur[w] > c.best[w] {
				break
			}
			if c.cur[w] < c.best[w] {
				return
			}
		}
	}
	copy(c.best, c.cur)
	c.bestM = m
	c.bestEps = eps
	copy(c.bestV, c.v)
	copy(c.bestSigma, c.sig)
}

// sortCands sorts candidates by value descending (insertion sort: the list
// is tiny, at most 2·2^n entries).
func sortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].val > cs[j-1].val; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

type cand struct {
	v   int
	sig int32
	val int32
}
