package spectral

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestTableReconstructionExhaustive(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
			f := tt.New(bits, n)
			res := classifyExact(f)
			if got := res.Tr.Apply(res.Repr); got != f {
				t.Fatalf("n=%d f=%s: table transform rebuilds %s (repr %s)", n, f, got, res.Repr)
			}
		}
	}
}

func TestTableReconstructionN4(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3000; trial++ {
		f := tt.New(rng.Uint64(), 4)
		res := classifyExact(f)
		if got := res.Tr.Apply(res.Repr); got != f {
			t.Fatalf("f=%s: table transform rebuilds %s (repr %s)", f, got, res.Repr)
		}
	}
}

func TestTableRepresentativesAreFixpoints(t *testing.T) {
	// Classifying a representative must return itself with (near-)identity
	// transform semantics: Apply(identity-ish) == repr.
	for n := 1; n <= 4; n++ {
		ct := exactTable(n)
		seen := map[uint16]bool{}
		for idx := range ct.repr {
			r := ct.repr[idx]
			if seen[r] {
				continue
			}
			seen[r] = true
			res := classifyExact(tt.New(uint64(r), n))
			if res.Repr.Bits != uint64(r) {
				t.Fatalf("n=%d: repr %04x classifies to %s", n, r, res.Repr)
			}
		}
	}
}

func TestTableInvarianceUnderOps(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(3)
		f := tt.New(rng.Uint64(), n)
		g := applyRandomOps(rng, f)
		if classifyExact(f).Repr != classifyExact(g).Repr {
			t.Fatalf("n=%d: equivalent functions %s and %s classify apart", n, f, g)
		}
	}
}

// TestSpectralAgreesWithTable cross-validates the DFS canonizer against the
// exact orbit tables: when the spectral search completes, its representative
// must lie in the same orbit as the input.
func TestSpectralAgreesWithTable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(2)
		f := tt.New(rng.Uint64(), n)
		res := ClassifySpectral(f, 1<<22)
		if !res.Complete {
			continue
		}
		checked++
		if classifyExact(res.Repr).Repr != classifyExact(f).Repr {
			t.Fatalf("n=%d f=%s: spectral repr %s is not in f's orbit", n, f, res.Repr)
		}
		// Two equivalent inputs must reach the same spectral canonical form.
		g := applyRandomOps(rng, f)
		resG := ClassifySpectral(g, 1<<22)
		if resG.Complete && resG.Repr != res.Repr {
			t.Fatalf("n=%d: spectral canonical forms differ for equivalent %s / %s: %s vs %s",
				n, f, g, res.Repr, resG.Repr)
		}
	}
	if checked < 50 {
		t.Fatalf("too few complete spectral classifications (%d) to cross-validate", checked)
	}
}

func TestTableClassSizesSumToAll(t *testing.T) {
	for n := 1; n <= 4; n++ {
		ct := exactTable(n)
		counts := map[uint16]int{}
		for idx := range ct.repr {
			counts[ct.repr[idx]]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != 1<<(1<<uint(n)) {
			t.Fatalf("n=%d: orbit sizes sum to %d", n, total)
		}
		// Orbit sizes must divide the affine group order times 2^{n+1}
		// (output transformations); at minimum they must be even for n ≥ 1
		// except... just sanity-check the class count here.
		wantClasses := []int{0, 1, 2, 3, 8}[n]
		if len(counts) != wantClasses {
			t.Fatalf("n=%d: %d classes, want %d", n, len(counts), wantClasses)
		}
	}
}

// cutLikeFunction builds a 5-variable function the way the rewriter meets
// them: as the output of a small random XAG over the five variables. Such
// functions have structured (sparse) spectra, unlike uniform random truth
// tables whose flat spectra drive the canonizer into its iteration limit —
// the same behaviour the paper reports for its classification routine.
func cutLikeFunction(rng *rand.Rand) tt.T {
	sigs := []tt.T{
		tt.Var(0, 5), tt.Var(1, 5), tt.Var(2, 5), tt.Var(3, 5), tt.Var(4, 5),
	}
	for g := 0; g < 6; g++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			sigs = append(sigs, a.And(b))
		} else {
			sigs = append(sigs, a.Xor(b))
		}
	}
	return sigs[len(sigs)-1]
}

// TestFiveVariableClassesSampled: the literature (quoted in the paper's
// Section 2.2) gives 48 affine classes of 5-variable functions. The
// canonicity *proof* rarely finishes within a practical limit at n = 5 —
// the same inefficiency the paper reports for its classification routine,
// which is why the rewriter omits incomplete cuts — but two properties must
// hold regardless: complete classifications never exceed 48 distinct
// canonical forms, and every result (complete or not) reconstructs its
// input exactly.
func TestFiveVariableClassesSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	reprs := map[uint64]bool{}
	for trial := 0; trial < 150; trial++ {
		f := cutLikeFunction(rng)
		res := ClassifySpectral(f, 1<<18)
		if got := res.Tr.Apply(res.Repr); got != f {
			t.Fatalf("trial %d: reconstruction failed (complete=%v)", trial, res.Complete)
		}
		if res.Complete {
			reprs[res.Repr.Bits] = true
		}
	}
	if len(reprs) > 48 {
		t.Fatalf("%d distinct canonical forms exceed the 48 affine classes of n=5", len(reprs))
	}
}
