package spectral

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func BenchmarkSpectrum6(b *testing.B) {
	f := tt.New(0x123456789abcdef0, 6)
	for i := 0; i < b.N; i++ {
		Spectrum(f)
	}
}

func BenchmarkClassifyExact4(b *testing.B) {
	exactTable(4) // build outside the loop
	rng := rand.New(rand.NewSource(1))
	fs := make([]tt.T, 256)
	for i := range fs {
		fs[i] = tt.New(rng.Uint64(), 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(fs[i%len(fs)], 0)
	}
}

func BenchmarkClassifySpectral5(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	fs := make([]tt.T, 64)
	for i := range fs {
		fs[i] = tt.New(rng.Uint64(), 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifySpectral(fs[i%len(fs)], DefaultLimit)
	}
}

func BenchmarkClassifySpectral6(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	fs := make([]tt.T, 64)
	for i := range fs {
		fs[i] = tt.New(rng.Uint64(), 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifySpectral(fs[i%len(fs)], DefaultLimit)
	}
}

func BenchmarkBuildTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildTable(4)
	}
}
