package spectral

// Cross-validation of the pooled, multiset-bounded canonizer against (a) the
// exact orbit tables for every function of up to four variables and (b) a
// frozen copy of the pre-optimization search (refClassifySpectral below) for
// larger functions. The reference is the verbatim pre-fast-path algorithm —
// per-bit loops, insertion sort, no pooling, no multiset bound — and the
// comparison is on the FULL Result including Steps, so any step-accounting
// drift in the fast path fails loudly here before it can flip a
// Complete-under-limit verdict in the golden suite.

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/tt"
)

// --- frozen reference implementation (pre-optimization search) ---

type refCanonizer struct {
	n, size   int
	s         []int32
	limit     int
	steps     int
	exhausted bool

	bw  []int
	sg  []int32
	cur []int32
	v   []int
	sig []int32

	spanBuf [][]bool
	candBuf [][]cand

	best      []int32
	bestM     int
	bestEps   int32
	bestV     []int
	bestSigma []int32
}

func refClassifySpectral(t tt.T, limit int) Result {
	if limit <= 0 {
		limit = DefaultLimit
	}
	n := t.N
	size := 1 << uint(n)

	if mask, compl, ok := t.IsAffine(); ok {
		tr := Transform{N: n, OutputMask: mask, OutputCompl: compl}
		for i := 0; i < n; i++ {
			tr.InputMask[i] = 1 << uint(i)
		}
		return Result{Repr: tt.Const0(n), Tr: tr, Complete: true}
	}

	s := Spectrum(t)
	var maxAbs int32
	for _, v := range s {
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}

	c := &refCanonizer{n: n, size: size, s: s, limit: limit}
	for m := 0; m < size; m++ {
		if abs32(s[m]) != maxAbs {
			continue
		}
		for _, eps := range []int32{1, -1} {
			if eps*s[m] < 0 {
				continue
			}
			if maxAbs == 0 {
				continue
			}
			c.search(m, eps)
		}
	}

	repr, err := FromSpectrum(c.best, n)
	if err != nil {
		panic("spectral: internal error: " + err.Error())
	}

	tr := Transform{N: n, OutputMask: uint(c.bestM), OutputCompl: c.bestEps < 0}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = uint(c.bestV[i])
		tr.InputCompl[i] = c.bestSigma[i] < 0
	}
	return Result{Repr: repr, Tr: tr, Complete: !c.exhausted, Steps: c.steps}
}

func (c *refCanonizer) search(m int, eps int32) {
	if c.bw == nil {
		c.bw = make([]int, c.size)
		c.sg = make([]int32, c.size)
		c.cur = make([]int32, c.size)
		c.v = make([]int, c.n)
		c.sig = make([]int32, c.n)
		c.spanBuf = make([][]bool, c.n)
		c.candBuf = make([][]cand, c.n)
		for i := 0; i < c.n; i++ {
			c.spanBuf[i] = make([]bool, c.size)
			c.candBuf[i] = make([]cand, 0, 2*c.size)
		}
	}
	c.bw[0] = m
	c.sg[0] = 1
	c.cur[0] = eps * c.s[m]
	better := c.best == nil
	if !better {
		if c.cur[0] < c.best[0] {
			return
		}
		if c.cur[0] > c.best[0] {
			better = true
		}
	}
	c.dfs(0, m, eps, better)
}

func (c *refCanonizer) dfs(i, m int, eps int32, better bool) {
	if c.overLimit() {
		return
	}
	if i == c.n {
		if better {
			c.commit(m, eps)
		}
		return
	}
	lo := 1 << uint(i)

	inSpan := c.spanBuf[i]
	for w := range inSpan {
		inSpan[w] = false
	}
	for w := 0; w < lo; w++ {
		inSpan[c.bw[w]^m] = true
	}

	cands := c.candBuf[i][:0]
	for v := 1; v < c.size; v++ {
		if inSpan[v] {
			continue
		}
		sv := c.s[v^m]
		cands = append(cands, cand{v, 1, eps * sv}, cand{v, -1, -eps * sv})
	}
	refSortCands(cands)

	for _, cd := range cands {
		c.steps++
		if c.overLimit() {
			return
		}
		branchBetter := better
		if !branchBetter {
			if cd.val < c.best[lo] {
				break
			}
			if cd.val > c.best[lo] {
				branchBetter = true
			}
		}
		c.v[i], c.sig[i] = cd.v, cd.sig
		ok := true
		c.steps += lo
		for w := lo; w < lo<<1; w++ {
			c.bw[w] = c.bw[w-lo] ^ cd.v
			c.sg[w] = c.sg[w-lo] * cd.sig
			c.cur[w] = eps * c.sg[w] * c.s[c.bw[w]]
			if !branchBetter {
				if c.cur[w] < c.best[w] {
					ok = false
					break
				}
				if c.cur[w] > c.best[w] {
					branchBetter = true
				}
			}
		}
		if !ok {
			continue
		}
		c.dfs(i+1, m, eps, branchBetter)
		if c.overLimit() {
			return
		}
	}
}

func (c *refCanonizer) overLimit() bool {
	if c.steps >= c.limit && c.best != nil {
		c.exhausted = true
		return true
	}
	return false
}

func (c *refCanonizer) commit(m int, eps int32) {
	if c.best == nil {
		c.best = make([]int32, c.size)
		c.bestV = make([]int, c.n)
		c.bestSigma = make([]int32, c.n)
	} else {
		for w := 0; w < c.size; w++ {
			if c.cur[w] > c.best[w] {
				break
			}
			if c.cur[w] < c.best[w] {
				return
			}
		}
	}
	copy(c.best, c.cur)
	c.bestM = m
	c.bestEps = eps
	copy(c.bestV, c.v)
	copy(c.bestSigma, c.sig)
}

// refSortCands is the original O(k²) insertion sort (stable, descending).
func refSortCands(cs []cand) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].val > cs[j-1].val; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// --- cross-validation tests ---

func resultsEqual(a, b Result) bool {
	return a.Repr == b.Repr && a.Tr == b.Tr && a.Complete == b.Complete && a.Steps == b.Steps
}

// TestFastPathExhaustiveSmall classifies every function of up to four
// variables with the optimized spectral search and checks it against both the
// frozen reference (full Result equality) and the exact orbit tables
// (class-partition agreement: two functions share an exact representative iff
// their complete spectral searches agree on the spectral representative).
func TestFastPathExhaustiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-validation skipped in -short")
	}
	if raceEnabled {
		t.Skip("exhaustive cross-validation skipped under -race: it pins step accounting, not memory safety")
	}
	for n := 0; n <= 4; n++ {
		size := 1 << (1 << uint(n))
		// Tie-heavy functions (bent and near-bent spectra) make an unbounded
		// n=4 search explode, so the exhaustive sweep runs under a bounded
		// limit: full-Result equality (including Steps and Complete) is
		// checked for every function, the exact-table partition check for
		// the complete ones. 20k keeps the sweep to a few seconds while
		// still driving plenty of searches into the limit-bound regime where
		// step accounting is observable.
		limit := 20000
		if n <= 3 {
			limit = 1 << 30 // cheap enough to run to completion
		}
		// spectral repr → exact repr; the partitions must be refinements of
		// each other (i.e. identical).
		classOf := make(map[tt.T]tt.T)
		for bitsv := 0; bitsv < size; bitsv++ {
			f := tt.New(uint64(bitsv), n)
			got := ClassifySpectral(f, limit)
			want := refClassifySpectral(f, limit)
			if !resultsEqual(got, want) {
				t.Fatalf("n=%d f=%#x: fast path diverges from reference:\n got %+v\nwant %+v",
					n, f.Bits, got, want)
			}
			if back := got.Tr.Apply(got.Repr); back != f {
				t.Fatalf("n=%d f=%#x: transform does not reconstruct f (got %#x)", n, f.Bits, back.Bits)
			}
			if n <= 3 && !got.Complete {
				t.Fatalf("n=%d f=%#x: unexpectedly incomplete under huge limit", n, f.Bits)
			}
			if !got.Complete {
				continue
			}
			exact := classifyExact(f)
			if prev, seen := classOf[got.Repr]; seen {
				if prev != exact.Repr {
					t.Fatalf("n=%d f=%#x: spectral class %v maps to exact reprs %v and %v",
						n, f.Bits, got.Repr, prev, exact.Repr)
				}
			} else {
				classOf[got.Repr] = exact.Repr
			}
		}
	}
}

// TestFastPathRandomLarge pins the optimized search to the frozen reference
// on random 5- and 6-variable functions, across limits that exercise both
// complete and limit-bound searches (the incomplete case is where step
// accounting becomes observable).
func TestFastPathRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 150
	if testing.Short() {
		trials = 25
	}
	for _, n := range []int{5, 6} {
		for _, limit := range []int{0, 50, 5000, DefaultLimit} {
			for trial := 0; trial < trials; trial++ {
				f := tt.New(rng.Uint64(), n)
				got := ClassifySpectral(f, limit)
				want := refClassifySpectral(f, limit)
				if !resultsEqual(got, want) {
					t.Fatalf("n=%d limit=%d f=%#x: fast path diverges:\n got %+v\nwant %+v",
						n, limit, f.Bits, got, want)
				}
				if back := got.Tr.Apply(got.Repr); back != f {
					t.Fatalf("n=%d f=%#x: transform does not reconstruct f", n, f.Bits)
				}
			}
		}
	}
}

// TestSortCandsMatchesInsertion pins the fused generate-and-counting-sort
// candidate pass to the original generate-then-insertion-sort bit-for-bit,
// including the relative order of equal values — the DFS candidate order
// (and with it the pinned step accounting) depends on it.
func TestSortCandsMatchesInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := newCanonizer()
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(tt.MaxVars)
		size := 1 << uint(n)
		c.reset(n, size, 1)
		// Duplicate-heavy spectrum values in the legal coefficient range.
		for i := 0; i < size; i++ {
			c.s[i] = int32(rng.Intn(2*size/8+1)*8 - size)
			c.sneg[i] = -c.s[i]
		}
		eps := int32(1 - 2*rng.Intn(2))
		if eps > 0 {
			c.es = c.s
		} else {
			c.es = c.sneg
		}
		m := rng.Intn(size)
		// A random span bitmask containing offset 0 (the prefix always owns
		// bw[0] ⊕ m = 0), leaving at least one column free.
		span := (rng.Uint64() & rng.Uint64() & (uint64(1)<<uint(size) - 1)) | 1
		if bits.OnesCount64(span) == size {
			span &^= uint64(1) << uint(size-1)
		}

		got := c.collectCands(c.candBuf[0], span, m)

		// Reference: generate in ascending column order, then stable O(k²)
		// insertion sort (the original pre-optimization pipeline).
		var want []cand
		for v := 1; v < size; v++ {
			if span>>uint(v)&1 != 0 {
				continue
			}
			sv := eps * c.s[v^m]
			want = append(want, cand{v, 1, sv}, cand{v, -1, -sv})
		}
		refSortCands(want)

		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestClassifyAllocFree pins the zero-allocation steady state of the pooled
// classifier for every variable count, both the exact-table and spectral
// paths.
func TestClassifyAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 1; n <= tt.MaxVars; n++ {
		fns := make([]tt.T, 32)
		for i := range fns {
			fns[i] = tt.New(rng.Uint64(), n)
		}
		// Warm the pool (and the exact tables for n ≤ 4).
		for _, f := range fns {
			Classify(f, 0)
		}
		i := 0
		avg := testing.AllocsPerRun(64, func() {
			Classify(fns[i%len(fns)], 0)
			i++
		})
		if avg != 0 {
			t.Fatalf("n=%d: Classify allocates %.1f times per run in steady state, want 0", n, avg)
		}
	}
}

// TestComposeRenaming checks that composing a semi-canonical classification
// with its recorded renaming yields a valid classification of the original
// function: same representative, and the composed transform reconstructs it.
func TestComposeRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for n := 1; n <= tt.MaxVars; n++ {
		for trial := 0; trial < 300; trial++ {
			f := tt.New(rng.Uint64(), n)
			canon, perm, inCompl, outCompl, ok := f.SemiCanonical()
			if !ok {
				continue
			}
			res := Classify(canon, 0)
			composed := ComposeRenaming(res, perm, inCompl, outCompl)
			if composed.Repr != res.Repr {
				t.Fatalf("n=%d f=%#x: composition changed the representative", n, f.Bits)
			}
			if back := composed.Tr.Apply(composed.Repr); back != f {
				t.Fatalf("n=%d f=%#x canon=%#x: composed transform rebuilds %#x, want f",
					n, f.Bits, canon.Bits, back.Bits)
			}
			if composed.Complete != res.Complete || composed.Steps != res.Steps {
				t.Fatalf("n=%d f=%#x: composition must carry Complete/Steps through", n, f.Bits)
			}
		}
	}
}
