//go:build race

package spectral

const raceEnabled = true
