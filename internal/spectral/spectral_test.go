package spectral

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tt"
)

func TestSpectrumBasics(t *testing.T) {
	// Constant 0: s_0 = 2^n, rest 0.
	for n := 0; n <= 6; n++ {
		s := Spectrum(tt.Const0(n))
		if s[0] != int32(1<<uint(n)) {
			t.Fatalf("n=%d: s_0 = %d", n, s[0])
		}
		for w := 1; w < len(s); w++ {
			if s[w] != 0 {
				t.Fatalf("n=%d: s_%d = %d", n, w, s[w])
			}
		}
	}
	// Pure linear function ⟨m,x⟩: single coefficient 2^n at index m.
	for n := 1; n <= 4; n++ {
		for m := uint(0); m < 1<<uint(n); m++ {
			s := Spectrum(tt.Linear(m, n))
			for w := range s {
				want := int32(0)
				if uint(w) == m {
					want = int32(1 << uint(n))
				}
				if s[w] != want {
					t.Fatalf("linear %b: s_%d = %d, want %d", m, w, s[w], want)
				}
			}
		}
	}
}

func TestSpectrumRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(7)
		f := tt.New(rng.Uint64(), n)
		g, err := FromSpectrum(Spectrum(f), n)
		if err != nil {
			t.Fatalf("round trip error: %v", err)
		}
		if g != f {
			t.Fatalf("round trip %s -> %s (n=%d)", f, g, n)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(7)
		s := Spectrum(tt.New(rng.Uint64(), n))
		var sum int64
		for _, v := range s {
			sum += int64(v) * int64(v)
		}
		if sum != int64(1)<<(2*uint(n)) {
			t.Fatalf("Parseval: Σs² = %d, want %d", sum, int64(1)<<(2*uint(n)))
		}
	}
}

func TestClassifyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(6)
		f := tt.New(rng.Uint64(), n)
		res := Classify(f, DefaultLimit)
		if got := res.Tr.Apply(res.Repr); got != f {
			t.Fatalf("n=%d f=%s: transform applied to repr gives %s (repr %s, complete=%v)",
				n, f, got, res.Repr, res.Complete)
		}
	}
}

func TestClassifyReconstructionUnderTinyLimit(t *testing.T) {
	// Even when the iteration limit aborts the search, the returned
	// representative and transform must still reconstruct f exactly.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		f := tt.New(rng.Uint64(), n)
		res := Classify(f, 50)
		if got := res.Tr.Apply(res.Repr); got != f {
			t.Fatalf("n=%d f=%s: tiny-limit reconstruction failed (repr %s)", n, f, res.Repr)
		}
	}
}

func TestAffineFunctionsClassifyToConstZero(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for m := uint(0); m < 1<<uint(n); m++ {
			for c := 0; c < 2; c++ {
				f := tt.Linear(m, n)
				if c == 1 {
					f = f.Not()
				}
				res := Classify(f, 1<<20)
				if !res.Repr.IsConst0() {
					t.Fatalf("affine %s (n=%d) has repr %s, want const0", f, n, res.Repr)
				}
				if !res.Complete {
					t.Fatalf("affine classification incomplete")
				}
			}
		}
	}
}

// TestMajAndSameClass reproduces the paper's Example 2.3: MAJ(x1,x2,x3)
// (0xe8) and x1∧x2 viewed as a 3-variable function (0x88) are
// affine-equivalent.
func TestMajAndSameClass(t *testing.T) {
	maj := tt.New(0xe8, 3)
	and := tt.New(0x88, 3)
	r1 := Classify(maj, 1<<20)
	r2 := Classify(and, 1<<20)
	if !r1.Complete || !r2.Complete {
		t.Fatalf("classification incomplete")
	}
	if r1.Repr != r2.Repr {
		t.Fatalf("maj repr %s != and repr %s", r1.Repr, r2.Repr)
	}
}

func classCount(t *testing.T, n int, limit int) int {
	t.Helper()
	reprs := make(map[tt.T]bool)
	for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
		f := tt.New(bits, n)
		res := Classify(f, limit)
		if !res.Complete {
			t.Fatalf("n=%d f=%s: classification incomplete at limit %d (steps %d)",
				n, f, limit, res.Steps)
		}
		if got := res.Tr.Apply(res.Repr); got != f {
			t.Fatalf("n=%d f=%s: reconstruction failed", n, f)
		}
		reprs[res.Repr] = true
	}
	return len(reprs)
}

func TestClassCountN1(t *testing.T) {
	if got := classCount(t, 1, 1<<20); got != 1 {
		t.Fatalf("n=1: %d classes, want 1", got)
	}
}

func TestClassCountN2(t *testing.T) {
	if got := classCount(t, 2, 1<<20); got != 2 {
		t.Fatalf("n=2: %d classes, want 2", got)
	}
}

func TestClassCountN3(t *testing.T) {
	if got := classCount(t, 3, 1<<20); got != 3 {
		t.Fatalf("n=3: %d classes, want 3", got)
	}
}

func TestClassCountN4(t *testing.T) {
	if got := classCount(t, 4, 1<<20); got != 8 {
		t.Fatalf("n=4: %d classes, want 8", got)
	}
}

// applyRandomOps applies a random sequence of the five affine operations of
// Definition 2.1 to f, yielding an affine-equivalent function.
func applyRandomOps(rng *rand.Rand, f tt.T) tt.T {
	n := f.N
	for k := 0; k < 8; k++ {
		switch rng.Intn(5) {
		case 0: // swap two variables
			if n >= 2 {
				i, j := rng.Intn(n), rng.Intn(n)
				f = f.SwapVars(i, j)
			}
		case 1: // complement a variable
			f = f.FlipVar(rng.Intn(n))
		case 2: // complement the function
			f = f.Not()
		case 3: // translation x_i ← x_i ⊕ x_j
			if n >= 2 {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j {
					f = f.TranslateVar(i, j)
				}
			}
		case 4: // disjoint translation f ← f ⊕ x_i
			f = f.XorVar(rng.Intn(n))
		}
	}
	return f
}

// TestClassificationInvariance is the central property: affine-equivalent
// functions must classify to the same representative.
func TestClassificationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trials := 120
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(4) // up to 5 variables; 6 can hit the limit on bent functions
		f := tt.New(rng.Uint64(), n)
		g := applyRandomOps(rng, f)
		rf := Classify(f, 1<<22)
		rg := Classify(g, 1<<22)
		if !rf.Complete || !rg.Complete {
			// Incomplete searches are allowed to disagree; skip.
			continue
		}
		if rf.Repr != rg.Repr {
			t.Fatalf("n=%d: f=%s g=%s equivalent but reprs differ: %s vs %s",
				n, f, g, rf.Repr, rg.Repr)
		}
	}
}

func TestXorCost(t *testing.T) {
	tr := Transform{
		N:          3,
		InputMask:  [tt.MaxVars]uint{0b001, 0b011, 0b111},
		InputCompl: [tt.MaxVars]bool{false, true, false},
		OutputMask: 0b101,
	}
	// inputs: 0 + 1 + 2 XORs; output: 2 XORs.
	if got := tr.XorCost(); got != 5 {
		t.Fatalf("XorCost = %d, want 5", got)
	}
}

// TestClassifyConcurrent checks reentrancy (run under -race in CI): many
// goroutines classifying an overlapping function set — including n ≤ 4
// functions that race to build the exact orbit tables — must agree on the
// representative and produce valid transforms.
func TestClassifyConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fns := make([]tt.T, 48)
	for i := range fns {
		fns[i] = tt.New(rng.Uint64(), 1+rng.Intn(6))
	}
	repr := make([]tt.T, len(fns))
	for i, f := range fns {
		repr[i] = Classify(f, 0).Repr
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for i := 0; i < 40; i++ {
				j := rng.Intn(len(fns))
				res := Classify(fns[j], 0)
				if got := res.Tr.Apply(res.Repr); got != fns[j] {
					t.Errorf("g%d: transform does not rebuild %s", g, fns[j])
					return
				}
				if res.Repr != repr[j] {
					t.Errorf("g%d: representative of %s changed under concurrency", g, fns[j])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
