package spectral

import (
	"sync"

	"repro/internal/tt"
)

// For functions of up to four variables the affine classification is
// precomputed exactly: a breadth-first orbit enumeration over all 2^(2^n)
// truth tables applies the five elementary operations of Definition 2.1 and
// composes their affine transforms along the BFS tree. The representative of
// each orbit is the numerically smallest truth table in it, and every
// function gets a single compact Transform back to its representative. This
// sidesteps the tie explosion the spectral DFS suffers on small, highly
// symmetric functions and is what guarantees the published class counts
// 1, 2, 3, 8 for n = 1..4.

// affTr is an affine transform in row form, specialized to ≤ 8 variables:
//
//	f(y) = r(M·y ⊕ c) ⊕ ⟨m, y⟩ ⊕ δ,  z_i = ⟨M_i, y⟩ with M_i = row i.
type affTr struct {
	rows  [4]uint8 // rows of M (only the first n used)
	c, m  uint8
	delta bool
}

func identityTr(n int) affTr {
	var t affTr
	for i := 0; i < n; i++ {
		t.rows[i] = 1 << uint(i)
	}
	return t
}

// compose returns the transform expressing f in terms of r given
// f = outer(g) and g = inner(r):
//
//	M = M_inner·M_outer, c = M_inner·c_outer ⊕ c_inner,
//	m = m_outer ⊕ M_outerᵀ·m_inner, δ = δ_outer ⊕ δ_inner ⊕ ⟨m_inner, c_outer⟩.
func compose(outer, inner affTr, n int) affTr {
	var out affTr
	for i := 0; i < n; i++ {
		// row_i(M_inner·M_outer) = XOR of rows of M_outer selected by the
		// bits of row_i(M_inner).
		out.rows[i] = rowCombine(inner.rows[i], &outer, n)
	}
	out.c = matVec(&inner, outer.c, n) ^ inner.c
	out.m = outer.m ^ rowCombine(inner.m, &outer, n) // M_outerᵀ·m_inner ⊕ m_outer
	out.delta = outer.delta != inner.delta != parity8(inner.m&outer.c)
	return out
}

// matVec computes M·v for the row-form matrix of t.
func matVec(t *affTr, v uint8, n int) uint8 {
	var out uint8
	for i := 0; i < n; i++ {
		if parity8(t.rows[i] & v) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// rowCombine computes sel·M (equivalently Mᵀ·sel): the XOR of t's rows
// selected by the bits of sel.
func rowCombine(sel uint8, t *affTr, n int) uint8 {
	var out uint8
	for j := 0; j < n; j++ {
		if sel>>uint(j)&1 == 1 {
			out ^= t.rows[j]
		}
	}
	return out
}

func parity8(v uint8) bool {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 1
}

func (t affTr) toTransform(n int) Transform {
	tr := Transform{
		N:           n,
		OutputMask:  uint(t.m),
		OutputCompl: t.delta,
	}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = uint(t.rows[i])
		tr.InputCompl[i] = t.c>>uint(i)&1 == 1
	}
	return tr
}

// classTable is the exact classification of all n-variable functions.
type classTable struct {
	n    int
	repr []uint16 // representative truth table per function
	tr   []affTr  // transform back to the representative per function
}

var (
	tableOnce [5]sync.Once
	tables    [5]*classTable
)

// exactTable returns the exact classification table for n ≤ 4, building it
// on first use.
func exactTable(n int) *classTable {
	tableOnce[n].Do(func() { tables[n] = buildTable(n) })
	return tables[n]
}

// generator is one elementary affine operation: a truth-table action and the
// transform expressing f = op(g) in terms of g.
type generator struct {
	apply func(tt.T) tt.T
	tr    affTr
}

func generators(n int) []generator {
	var gens []generator
	id := identityTr(n)
	// (1) variable swaps
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t := id
			t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
			i, j := i, j
			gens = append(gens, generator{func(f tt.T) tt.T { return f.SwapVars(i, j) }, t})
		}
	}
	// (2) variable complements: f(y) = g(y ⊕ e_i)
	for i := 0; i < n; i++ {
		t := id
		t.c = 1 << uint(i)
		i := i
		gens = append(gens, generator{func(f tt.T) tt.T { return f.FlipVar(i) }, t})
	}
	// (3) function complement
	{
		t := id
		t.delta = true
		gens = append(gens, generator{func(f tt.T) tt.T { return f.Not() }, t})
	}
	// (4) translations x_i ← x_i ⊕ x_j: row i gains bit j
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			t := id
			t.rows[i] |= 1 << uint(j)
			i, j := i, j
			gens = append(gens, generator{func(f tt.T) tt.T { return f.TranslateVar(i, j) }, t})
		}
	}
	// (5) disjoint translations f ← f ⊕ x_i
	for i := 0; i < n; i++ {
		t := id
		t.m = 1 << uint(i)
		i := i
		gens = append(gens, generator{func(f tt.T) tt.T { return f.XorVar(i) }, t})
	}
	return gens
}

func buildTable(n int) *classTable {
	size := 1 << (1 << uint(n))
	ct := &classTable{
		n:    n,
		repr: make([]uint16, size),
		tr:   make([]affTr, size),
	}
	gens := generators(n)
	seen := make([]bool, size)
	queue := make([]uint16, 0, size)
	for f0 := 0; f0 < size; f0++ {
		if seen[f0] {
			continue
		}
		// f0 is the smallest table of a new orbit: its representative.
		seen[f0] = true
		ct.repr[f0] = uint16(f0)
		ct.tr[f0] = identityTr(n)
		queue = queue[:0]
		queue = append(queue, uint16(f0))
		for len(queue) > 0 {
			g := queue[0]
			queue = queue[1:]
			gt := tt.New(uint64(g), n)
			for gi := range gens {
				f := gens[gi].apply(gt)
				fb := uint16(f.Bits)
				if seen[fb] {
					continue
				}
				seen[fb] = true
				ct.repr[fb] = uint16(f0)
				ct.tr[fb] = compose(gens[gi].tr, ct.tr[g], n)
				queue = append(queue, fb)
			}
		}
	}
	return ct
}

// classifyExact returns the exact classification of a function with at most
// four variables.
func classifyExact(t tt.T) Result {
	ct := exactTable(t.N)
	idx := uint16(t.Bits)
	return Result{
		Repr:     tt.New(uint64(ct.repr[idx]), t.N),
		Tr:       ct.tr[idx].toTransform(t.N),
		Complete: true,
	}
}
