package spectral

import (
	"math/bits"

	"repro/internal/tt"
)

// ComposeRenaming converts a classification Result for the semi-canonical
// form of a function into the Result for the function itself.
//
// Given canon = tt.SemiCanonical(f), i.e.
//
//	canon(x) = f(σ(x) ⊕ a) ⊕ d,  σ(x)_{perm[i]} = x_i,
//
// and res classifying canon (canon = Tr applied to Repr), the returned Result
// classifies f: same Repr (renamings are affine, so f and canon share a
// class), with the permutation/complementation folded into the transform.
//
// Derivation: substituting y = σ(x) ⊕ a gives f(y) = canon(σ⁻¹(y ⊕ a)) ⊕ d
// with σ⁻¹(u)_i = u_{perm[i]}. Pushing that input relabeling through
// canon(x) = r(z) ⊕ ⟨OM,x⟩ ⊕ OC, z_i = ⟨IM_i,x⟩ ⊕ IC_i yields, with
// ap_j = a_{perm[j]}:
//
//	IM'_i = permBits(IM_i)   (bit j of IM_i becomes bit perm[j])
//	IC'_i = IC_i ⊕ ⟨IM_i, ap⟩
//	OM'   = permBits(OM)
//	OC'   = OC ⊕ d ⊕ ⟨OM, ap⟩
//
// Because the composition is pure bit arithmetic on the stored transform, a
// cache hit on the semi-canonical key costs O(n²) word operations instead of
// a spectral search. Complete and Steps are carried over from res: the DFS
// that produced them ran on canon, which is the cached cost of this class.
func ComposeRenaming(res Result, perm [tt.MaxVars]int, inCompl uint, outCompl bool) Result {
	n := res.Tr.N

	// ap_j = a_{perm[j]}: the input complement vector seen through σ⁻¹.
	var ap uint
	for j := 0; j < n; j++ {
		ap |= (inCompl >> uint(perm[j]) & 1) << uint(j)
	}
	permBits := func(m uint) uint {
		var out uint
		for j := 0; j < n; j++ {
			out |= (m >> uint(j) & 1) << uint(perm[j])
		}
		return out
	}

	tr := Transform{
		N:           n,
		OutputMask:  permBits(res.Tr.OutputMask),
		OutputCompl: res.Tr.OutputCompl != outCompl != (bits.OnesCount(res.Tr.OutputMask&ap)&1 == 1),
	}
	for i := 0; i < n; i++ {
		im := res.Tr.InputMask[i]
		tr.InputMask[i] = permBits(im)
		tr.InputCompl[i] = res.Tr.InputCompl[i] != (bits.OnesCount(im&ap)&1 == 1)
	}
	return Result{Repr: res.Repr, Tr: tr, Complete: res.Complete, Steps: res.Steps}
}
