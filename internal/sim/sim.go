// Package sim provides combinational equivalence checking between XAGs:
// exhaustive for small inputs, bit-parallel random simulation for large
// ones. The optimizer's correctness tests and the table harness use it to
// guarantee that no rewriting result is ever reported without a functional
// check against the original network.
package sim

import (
	"fmt"

	"repro/internal/xag"
)

// Counterexample describes a mismatch found between two networks.
type Counterexample struct {
	Inputs []bool
	PO     int
}

func (c *Counterexample) Error() string {
	return fmt.Sprintf("sim: networks differ at PO %d (inputs %v)", c.PO, c.Inputs)
}

// checkInterface verifies both networks have the same PI/PO counts.
func checkInterface(a, b *xag.Network) error {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return fmt.Errorf("sim: interface mismatch: %d/%d PIs, %d/%d POs",
			a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
	}
	return nil
}

// ExhaustiveEqual checks equivalence over all input assignments. It is
// limited to 20 primary inputs (2^20 patterns, packed 64 per word).
func ExhaustiveEqual(a, b *xag.Network) error {
	if err := checkInterface(a, b); err != nil {
		return err
	}
	n := a.NumPIs()
	if n > 20 {
		return fmt.Errorf("sim: %d inputs too many for exhaustive check", n)
	}
	total := 1 << uint(n)
	batch := 64
	if total < batch {
		batch = total
	}
	in := make([]uint64, n)
	for base := 0; base < total; base += batch {
		for i := range in {
			in[i] = 0
		}
		for k := 0; k < batch && base+k < total; k++ {
			m := base + k
			for i := 0; i < n; i++ {
				if m>>uint(i)&1 == 1 {
					in[i] |= 1 << uint(k)
				}
			}
		}
		wa, wb := a.Simulate(in), b.Simulate(in)
		for po := range wa {
			if diff := wa[po] ^ wb[po]; diff != 0 {
				k := 0
				for diff>>uint(k)&1 == 0 {
					k++
				}
				m := base + k
				inputs := make([]bool, n)
				for i := range inputs {
					inputs[i] = m>>uint(i)&1 == 1
				}
				return &Counterexample{Inputs: inputs, PO: po}
			}
		}
	}
	return nil
}

// RandomEqual checks equivalence on rounds×64 random patterns with a
// deterministic xorshift generator. It can only ever prove inequivalence;
// use it as a strong smoke test for circuits too wide for ExhaustiveEqual.
func RandomEqual(a, b *xag.Network, rounds int, seed uint64) error {
	if err := checkInterface(a, b); err != nil {
		return err
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	n := a.NumPIs()
	in := make([]uint64, n)
	for r := 0; r < rounds; r++ {
		for i := range in {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			in[i] = seed
		}
		wa, wb := a.Simulate(in), b.Simulate(in)
		for po := range wa {
			if diff := wa[po] ^ wb[po]; diff != 0 {
				k := 0
				for diff>>uint(k)&1 == 0 {
					k++
				}
				inputs := make([]bool, n)
				for i := range inputs {
					inputs[i] = in[i]>>uint(k)&1 == 1
				}
				return &Counterexample{Inputs: inputs, PO: po}
			}
		}
	}
	return nil
}

// Equal picks the strongest affordable check: exhaustive when the input
// count permits, otherwise random simulation.
func Equal(a, b *xag.Network, randomRounds int, seed uint64) error {
	if a.NumPIs() <= 16 {
		return ExhaustiveEqual(a, b)
	}
	return RandomEqual(a, b, randomRounds, seed)
}
