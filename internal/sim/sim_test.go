package sim

import (
	"math/rand"
	"testing"

	"repro/internal/xag"
)

func pair(mutate bool) (*xag.Network, *xag.Network) {
	build := func(buggy bool) *xag.Network {
		n := xag.New()
		a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
		maj := n.Maj(a, b, c)
		if buggy {
			maj = n.Mux(a, b, c) // different function
		}
		n.AddPO(maj, "y")
		n.AddPO(n.Xor(n.Xor(a, b), c), "p")
		return n
	}
	return build(false), build(mutate)
}

func TestExhaustiveEqual(t *testing.T) {
	a, b := pair(false)
	if err := ExhaustiveEqual(a, b); err != nil {
		t.Fatalf("equivalent networks reported different: %v", err)
	}
	a, b = pair(true)
	err := ExhaustiveEqual(a, b)
	if err == nil {
		t.Fatalf("different networks reported equal")
	}
	ce, ok := err.(*Counterexample)
	if !ok {
		t.Fatalf("want counterexample, got %v", err)
	}
	// The counterexample must actually witness the difference.
	if a.EvalBools(ce.Inputs)[ce.PO] == b.EvalBools(ce.Inputs)[ce.PO] {
		t.Fatalf("counterexample does not differentiate the networks")
	}
}

func TestRandomEqual(t *testing.T) {
	a, b := pair(false)
	if err := RandomEqual(a, b, 8, 1); err != nil {
		t.Fatalf("equivalent networks reported different: %v", err)
	}
	a, b = pair(true)
	if err := RandomEqual(a, b, 8, 1); err == nil {
		t.Fatalf("different 3-input networks evaded 512 random patterns")
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a, _ := pair(false)
	c := xag.New()
	c.AddPO(c.AddPI("x"), "y")
	if err := ExhaustiveEqual(a, c); err == nil {
		t.Fatalf("interface mismatch not detected")
	}
}

func TestEqualDispatch(t *testing.T) {
	// Wide circuits take the random path; narrow ones the exhaustive path.
	rng := rand.New(rand.NewSource(3))
	n := xag.New()
	var acc xag.Lit = xag.Const0
	for i := 0; i < 30; i++ {
		acc = n.Xor(acc, n.AddPI(""))
	}
	n.AddPO(acc, "p")
	m := n.Cleanup()
	if err := Equal(n, m, 4, 7); err != nil {
		t.Fatalf("parity clone mismatch: %v", err)
	}
	_ = rng
}

func TestExhaustiveTooWide(t *testing.T) {
	n := xag.New()
	var acc xag.Lit = xag.Const0
	for i := 0; i < 21; i++ {
		acc = n.Xor(acc, n.AddPI(""))
	}
	n.AddPO(acc, "p")
	if err := ExhaustiveEqual(n, n.Cleanup()); err == nil {
		t.Fatalf("expected width refusal for 21 inputs")
	}
}

func TestSingleBitDifferenceFound(t *testing.T) {
	// Networks equal everywhere except one minterm of a 10-input function.
	build := func(poison bool) *xag.Network {
		n := xag.New()
		ins := make([]xag.Lit, 10)
		for i := range ins {
			ins[i] = n.AddPI("")
		}
		acc := xag.Const0
		for _, l := range ins {
			acc = n.Xor(acc, l)
		}
		if poison {
			// Flip the output on the all-ones minterm.
			all := xag.Const1
			for _, l := range ins {
				all = n.And(all, l)
			}
			acc = n.Xor(acc, all)
		}
		n.AddPO(acc, "y")
		return n
	}
	err := ExhaustiveEqual(build(false), build(true))
	ce, ok := err.(*Counterexample)
	if !ok {
		t.Fatalf("single-minterm difference missed: %v", err)
	}
	for _, v := range ce.Inputs {
		if !v {
			t.Fatalf("counterexample should be the all-ones assignment, got %v", ce.Inputs)
		}
	}
}
