// Package sat implements a small self-contained CDCL satisfiability solver:
// two-watched-literal propagation, first-UIP conflict analysis with
// backjumping, VSIDS-style activity branching, phase saving, geometric
// restarts, and learnt-clause reduction. It exists so that mcdb's offline
// refiner can run exact-synthesis queries ("is there an SLP with r AND
// steps computing f?") with a hard conflict budget and context
// cancellation, without pulling in an external solver dependency.
//
// The solver is deliberately minimal: clauses are added once, up front, and
// Solve is called once per instance. There is no incremental interface, no
// assumptions mechanism, and no preprocessing beyond level-0 simplification
// in AddClause — the refiner builds a fresh Solver per (function, step
// count) query, which keeps the state machine simple enough to audit.
package sat

import "context"

// Lit is a literal: variable index shifted left once, low bit set for
// negation. The zero value is the positive literal of variable 0; use
// Pos/Neg to construct literals and Var/Sign to destructure them.
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negated literal of variable v.
func Neg(v int) Lit { return Lit(v<<1 | 1) }

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 != 0 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is the outcome of a Solve call.
type Status uint8

const (
	// Unknown means the conflict budget or context expired first.
	Unknown Status = iota
	// Sat means a satisfying assignment was found; Model returns it.
	Sat
	// Unsat means the instance was proven unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// lbool is a three-valued assignment: +1 true, -1 false, 0 unassigned.
type lbool int8

const (
	lTrue  lbool = 1
	lFalse lbool = -1
	lUndef lbool = 0
)

type clause struct {
	lits   []Lit
	act    float32
	learnt bool
}

// watcher pairs a watched clause with a blocker literal: if the blocker is
// already true the clause is satisfied and need not be inspected.
type watcher struct {
	c       *clause
	blocker Lit
}

// Stats carries cumulative search counters for observability.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnts      int64
}

// Solver holds one CNF instance. The zero value is not usable; call New.
type Solver struct {
	watches  [][]watcher // indexed by Lit; clauses to inspect when that literal becomes true
	assigns  []lbool     // per variable
	level    []int32     // decision level of each assigned variable
	reason   []*clause   // implying clause of each assigned variable (nil for decisions)
	trail    []Lit
	trailLim []int // trail length at each decision level
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	polarity []bool // saved phase: value to try first on decision

	clauses []*clause
	learnts []*clause
	claInc  float32

	seen    []byte // scratch for analyze
	minimal []Lit  // scratch for learnt clause
	toClear []int  // variables whose seen marks need clearing after analyze

	unsat bool // top-level contradiction discovered in AddClause
	model []bool

	stats Stats
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses retained
// after level-0 simplification.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns cumulative search counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause to the instance. Literals over unallocated
// variables cause a panic (an encoding bug, not an input condition). The
// clause is simplified against the current level-0 assignment: satisfied
// clauses are dropped, false literals removed. Returns false once the
// instance is known unsatisfiable at level 0; further calls are no-ops.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Sort-free simplification: drop duplicate and false literals, detect
	// tautologies and satisfied clauses. Quadratic in clause length, but
	// refiner clauses are short (≤ a few dozen literals).
	out := make([]Lit, 0, len(lits))
outer:
	for _, l := range lits {
		if l.Var() >= len(s.assigns) || l < 0 {
			panic("sat: literal over unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue // false at level 0: drop the literal
		}
		for _, o := range out {
			if o == l {
				continue outer // duplicate
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c, c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation to fixpoint. It returns the conflicting
// clause, or nil if the assignment is consistent.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching ¬p must react
		s.qhead++
		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			notP := p.Not()
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Invariant: c.lits[1] == notP (false). If the other watch is
			// true the clause is satisfied.
			if first := c.lits[0]; s.value(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, c.lits[0]})
					moved = true
					break
				}
			}
			if moved {
				continue // clause left this watch list
			}
			// Unit or conflicting.
			ws[j] = watcher{c, c.lits[0]}
			j++
			if s.value(c.lits[0]) == lFalse {
				// Conflict: keep the remaining watchers and bail out.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.stats.Propagations++
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze derives a first-UIP learnt clause from the conflict and returns
// it together with the backjump level. learnt[0] is the asserting literal.
func (s *Solver) analyze(confl *clause) (learnt []Lit, backLevel int) {
	learnt = append(s.minimal[:0], 0) // slot 0 reserved for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := int32(s.decisionLevel())

	// seen marks stay set for every variable touched during resolution and
	// are cleared in one sweep over toClear at the end — the minimization
	// step below depends on resolved-away variables still being marked.
	s.toClear = s.toClear[:0]
	c := confl
	for {
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p >= 0 {
			start = 1 // lits[0] of a reason clause is the implied literal p
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.toClear = append(s.toClear, v)
			s.bumpVar(v)
			if s.level[v] >= curLevel {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		pathC--
		if pathC == 0 {
			break
		}
		// seen[p.Var()] stays set: later reason clauses containing p must
		// not re-count it, and the trail walk's index only moves down.
		c = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Cheap self-subsumption: drop literals whose reason clause is fully
	// contained in the seen set (single-level check, no recursion). Sound
	// because antecedents are assigned strictly earlier than the literal
	// they imply, so drop justifications cannot be circular.
	jj := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r == nil || !s.redundant(r) {
			learnt[jj] = learnt[i]
			jj++
		}
	}
	learnt = learnt[:jj]

	backLevel = 0
	if len(learnt) > 1 {
		// Move the highest-level literal (other than the asserting one)
		// into slot 1 so the watches stay valid after backjumping.
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		backLevel = int(s.level[learnt[1].Var()])
	}
	for _, v := range s.toClear {
		s.seen[v] = 0
	}
	s.minimal = learnt[:0]
	out := make([]Lit, len(learnt))
	copy(out, learnt)
	return out, backLevel
}

// redundant reports whether every body literal of reason clause r is either
// assigned at level 0 or already part of the resolution's seen set, making
// the literal r implies redundant in the learnt clause.
func (s *Solver) redundant(r *clause) bool {
	for _, q := range r.lits[1:] {
		if s.level[q.Var()] != 0 && s.seen[q.Var()] == 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.polarity[v] = !l.Sign()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.heap.pushIfAbsent(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// pickBranch returns the unassigned variable with the highest activity, or
// -1 if every variable is assigned.
func (s *Solver) pickBranch() int {
	for !s.heap.empty() {
		v := s.heap.pop(s.activity)
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// record attaches a learnt clause and enqueues its asserting literal.
func (s *Solver) record(lits []Lit) {
	s.stats.Learnts++
	if len(lits) == 1 {
		s.uncheckedEnqueue(lits[0], nil)
		return
	}
	c := &clause{lits: lits, learnt: true, act: s.claInc}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.uncheckedEnqueue(lits[0], c)
}

// reduceDB drops the less active half of the learnt clauses. Clauses that
// currently act as reasons and binary clauses are kept.
func (s *Solver) reduceDB() {
	// Partial selection sort would do; learnt DBs here are small enough
	// that a full sort is noise. Sort ascending by activity.
	ls := s.learnts
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].act < ls[j-1].act; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	keep := ls[:0]
	limit := len(ls) / 2
	for i, c := range ls {
		if len(c.lits) == 2 || s.isReason(c) || i >= limit {
			keep = append(keep, c)
			continue
		}
		s.detach(c)
	}
	s.learnts = keep
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assigns[v] != lUndef && s.reason[v] == c
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve runs the CDCL loop. budget caps the number of conflicts explored
// (≤0 means unlimited); ctx is polled every few hundred conflicts. When
// either expires, Solve backtracks to level 0 and returns Unknown — the
// solver may be handed to another Solve call with a fresh budget.
func (s *Solver) Solve(ctx context.Context, budget int64) Status {
	if s.unsat {
		return Unsat
	}
	if s.propagate() != nil {
		s.unsat = true
		return Unsat
	}
	start := s.stats.Conflicts
	nextRestart := start + 100
	restartGap := int64(100)
	maxLearnts := int64(len(s.clauses))/2 + 2000
	for {
		if confl := s.propagate(); confl != nil {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			s.record(learnt)
			s.varInc /= 0.95
			s.claInc /= 0.999
			n := s.stats.Conflicts
			if budget > 0 && n-start >= budget {
				s.cancelUntil(0)
				return Unknown
			}
			if ctx != nil && n%256 == 0 {
				select {
				case <-ctx.Done():
					s.cancelUntil(0)
					return Unknown
				default:
				}
			}
			if n >= nextRestart {
				s.stats.Restarts++
				restartGap = restartGap * 3 / 2
				nextRestart = n + restartGap
				s.cancelUntil(0)
			}
			continue
		}
		if int64(len(s.learnts)) > maxLearnts+int64(len(s.trail)) {
			s.reduceDB()
		}
		v := s.pickBranch()
		if v < 0 {
			s.storeModel()
			s.cancelUntil(0)
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		if s.polarity[v] {
			s.uncheckedEnqueue(Pos(v), nil)
		} else {
			s.uncheckedEnqueue(Neg(v), nil)
		}
	}
}

func (s *Solver) storeModel() {
	if cap(s.model) < len(s.assigns) {
		s.model = make([]bool, len(s.assigns))
	}
	s.model = s.model[:len(s.assigns)]
	for v, a := range s.assigns {
		s.model[v] = a == lTrue
	}
}

// Model returns the satisfying assignment found by the last Sat result,
// indexed by variable. The slice is owned by the solver; callers that keep
// it across further Solve calls must copy it. It returns nil if no model
// has been found.
func (s *Solver) Model() []bool { return s.model }

// varHeap is a binary max-heap of variables ordered by activity, with a
// position index for decrease/increase-key updates.
type varHeap struct {
	heap []int
	pos  []int // var → index in heap, -1 when absent
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v int, act []float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v], act)
}

func (h *varHeap) pushIfAbsent(v int, act []float64) { h.push(v, act) }

func (h *varHeap) pop(act []float64) int {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return top
}

func (h *varHeap) update(v int, act []float64) {
	if len(h.pos) <= v || h.pos[v] < 0 {
		return
	}
	h.up(h.pos[v], act)
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
