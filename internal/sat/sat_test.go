package sat

import (
	"context"
	"math/rand"
	"testing"
)

// mustStatus solves and checks the outcome.
func mustStatus(t *testing.T, s *Solver, want Status) {
	t.Helper()
	got := s.Solve(context.Background(), 0)
	if got != want {
		t.Fatalf("Solve = %v, want %v", got, want)
	}
}

// checkModel verifies that the model satisfies every clause that was added.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	m := s.Model()
	if len(m) != s.NumVars() {
		t.Fatalf("model length %d, want %d", len(m), s.NumVars())
	}
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if m[l.Var()] != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model does not satisfy clause %v", c)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	p, n := Pos(7), Neg(7)
	if p.Var() != 7 || n.Var() != 7 {
		t.Fatalf("Var: got %d/%d", p.Var(), n.Var())
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("Sign: got %v/%v", p.Sign(), n.Sign())
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not roundtrip failed")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	cls := [][]Lit{{Pos(a), Pos(b)}, {Neg(a), Pos(b)}, {Pos(a), Neg(b)}}
	for _, c := range cls {
		s.AddClause(c...)
	}
	mustStatus(t, s, Sat)
	checkModel(t, s, cls)
	if m := s.Model(); !m[a] || !m[b] {
		t.Fatalf("expected a=b=true, got a=%v b=%v", m[a], m[b])
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Pos(a))
	s.AddClause(Neg(a))
	mustStatus(t, s, Unsat)
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should report false")
	}
	mustStatus(t, s, Unsat)
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Neg(a), Pos(b)) // tautology: dropped
	s.AddClause(Pos(b), Pos(b), Pos(b)) // collapses to unit b
	mustStatus(t, s, Sat)
	if !s.Model()[b] {
		t.Fatal("unit clause should force b=true")
	}
	_ = a
}

func TestEmptyInstanceSat(t *testing.T) {
	s := New()
	s.NewVar()
	s.NewVar()
	mustStatus(t, s, Sat)
}

// TestXorChain encodes a parity chain x0 ⊕ x1 ⊕ ... ⊕ xk = 1 via Tseitin
// variables and checks a model exists and respects parity.
func TestXorChain(t *testing.T) {
	const k = 12
	s := New()
	xs := make([]int, k)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	cur := Pos(xs[0])
	for i := 1; i < k; i++ {
		nv := s.NewVar()
		x := Pos(nv)
		a, b := cur, Pos(xs[i])
		s.AddClause(x.Not(), a, b)
		s.AddClause(x.Not(), a.Not(), b.Not())
		s.AddClause(x, a.Not(), b)
		s.AddClause(x, a, b.Not())
		cur = x
	}
	s.AddClause(cur)
	mustStatus(t, s, Sat)
	m := s.Model()
	parity := false
	for _, v := range xs {
		if m[v] {
			parity = !parity
		}
	}
	if !parity {
		t.Fatal("model violates the forced odd parity")
	}
}

// TestPigeonhole proves PHP(n+1, n) unsatisfiable — a classic resolution
// stress test that exercises conflict analysis and learning.
func TestPigeonhole(t *testing.T) {
	const holes = 5
	const pigeons = holes + 1
	s := New()
	// v[p][h]: pigeon p sits in hole h.
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Pos(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(v[p1][h]), Neg(v[p2][h]))
			}
		}
	}
	mustStatus(t, s, Unsat)
	if s.Stats().Conflicts == 0 {
		t.Fatal("expected a non-trivial refutation")
	}
}

// TestRandom3SAT cross-checks the solver against brute force on many small
// random instances, both satisfiable and unsatisfiable.
func TestRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		nVars := 4 + rng.Intn(7) // 4..10
		nCls := 2 + rng.Intn(5*nVars)
		cls := make([][]Lit, 0, nCls)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for i := 0; i < nCls; i++ {
			c := make([]Lit, 3)
			for j := range c {
				v := rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			cls = append(cls, c)
			s.AddClause(c...)
		}
		want := bruteForceSat(nVars, cls)
		got := s.Solve(context.Background(), 0)
		if (got == Sat) != want {
			t.Fatalf("iter %d: Solve=%v, brute force says sat=%v (vars=%d clauses=%v)",
				iter, got, want, nVars, cls)
		}
		if got == Sat {
			checkModel(t, s, cls)
		}
	}
}

func bruteForceSat(nVars int, cls [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range cls {
			sat := false
			for _, l := range c {
				val := m>>l.Var()&1 == 1
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestConflictBudget checks that a hard instance returns Unknown under a
// tiny budget and that the same solver can then finish with more budget.
func TestConflictBudget(t *testing.T) {
	const holes = 7
	const pigeons = holes + 1
	s := New()
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Pos(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(v[p1][h]), Neg(v[p2][h]))
			}
		}
	}
	if got := s.Solve(context.Background(), 10); got != Unknown {
		t.Fatalf("tiny budget: Solve=%v, want Unknown", got)
	}
	// Resume with no budget: learnt clauses persist, result must be exact.
	if got := s.Solve(context.Background(), 0); got != Unsat {
		t.Fatalf("resumed solve=%v, want Unsat", got)
	}
}

// TestContextCancel checks that an already-cancelled context aborts the
// search with Unknown instead of running to completion.
func TestContextCancel(t *testing.T) {
	const holes = 8
	const pigeons = holes + 1
	s := New()
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Pos(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(v[p1][h]), Neg(v[p2][h]))
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := s.Solve(ctx, 0); got != Unknown {
		t.Fatalf("cancelled ctx: Solve=%v, want Unknown", got)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatalf("Status strings wrong: %v %v %v", Sat, Unsat, Unknown)
	}
}
