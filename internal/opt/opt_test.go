package opt

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/xag"
)

func TestSizeOptimizeReducesNaiveMuxes(t *testing.T) {
	// A chain of and-or muxes: the unit-cost rewriter should find the
	// 1-AND mux form since it is also smaller in total gates.
	n := xag.New()
	s := n.AddPI("s")
	cur := n.AddPI("x0")
	for i := 0; i < 16; i++ {
		x := n.AddPI("")
		cur = n.Or(n.And(s, x), n.And(s.Not(), cur))
	}
	n.AddPO(cur, "y")
	before := n.CountGates()

	o := SizeOptimize(n, Options{})
	after := o.CountGates()
	if after.And+after.Xor >= before.And+before.Xor {
		t.Fatalf("size not reduced: %d -> %d", before.And+before.Xor, after.And+after.Xor)
	}
	if err := sim.RandomEqual(n, o, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOptimizePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 8, 100)
		o := SizeOptimize(n, Options{MaxRounds: 3})
		if err := sim.Equal(n, o, 4, uint64(trial+1)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSizeBaselineDoesNotChaseANDs(t *testing.T) {
	// The defining property of the baseline: it will not trade one AND for
	// many XORs. The majority cone costs 5 gates in and-or form and 4 in
	// the 1-AND form — small enough that the baseline takes it — but on a
	// function where the MC form needs a large XOR dressing, unit cost
	// refuses. Here we just assert total size never grows.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		n := randomNetwork(rng, 6, 60)
		o := SizeOptimize(n, Options{})
		bo, ao := n.CountGates(), o.CountGates()
		if ao.And+ao.Xor > bo.And+bo.Xor {
			t.Fatalf("trial %d: total size grew %d -> %d",
				trial, bo.And+bo.Xor, ao.And+ao.Xor)
		}
	}
}

func randomNetwork(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 4 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}
