// Package opt provides the generic size optimization baseline the paper
// compares against (its Table 1/2 "Initial" columns are produced by an ABC
// script that minimizes total gate count under a unit cost model). Here the
// baseline is the same cut-rewriting engine as the core optimizer, but with
// a unit cost for AND and XOR gates, plus structural-hash sweeping — a size
// optimizer that, like the paper's baseline, has no reason to prefer XOR
// over AND gates.
package opt

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/xag"
)

// Options configures the baseline optimizer.
type Options struct {
	CutSize   int // default 4: small cuts, as in classic size rewriting
	CutLimit  int // default 12
	MaxRounds int // default 4
}

// SizeOptimize returns a size-optimized copy of the network: unit-cost cut
// rewriting iterated to a fixed point (or MaxRounds), with dead logic swept.
func SizeOptimize(n *xag.Network, opts Options) *xag.Network {
	if opts.CutSize == 0 {
		opts.CutSize = 4
	}
	if opts.CutLimit == 0 {
		opts.CutLimit = 12
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 4
	}
	res := core.MinimizeMC(n, core.Options{
		Cost:      cost.Size(),
		CutSize:   opts.CutSize,
		CutLimit:  opts.CutLimit,
		MaxRounds: opts.MaxRounds,
	})
	return res.Network
}
