package cut

import (
	"math/rand"
	"testing"

	"repro/internal/xag"
)

func randomNet(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 4 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}

func sameCuts(a, b []Cut) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConstantRankKeepsDefaultOrder pins the compatibility contract of
// Params.Rank: a constant rank yields bit-identical cut lists to an
// unranked enumeration, so models that do not rank cuts cannot perturb the
// engine's behaviour.
func TestConstantRankKeepsDefaultOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 4; trial++ {
		n := randomNet(rng, 7, 120)
		plain := Enumerate(n, Params{})
		ranked := Enumerate(n, Params{Rank: func([]int) int { return 0 }})
		for id := 0; id < n.NumNodes(); id++ {
			if !sameCuts(plain.For(id), ranked.For(id)) {
				t.Fatalf("trial %d: constant rank changed the cuts of node %d", trial, id)
			}
		}
	}
}

// TestRankReordersKeptCuts: with a tight budget, a model rank decides which
// cuts survive pruning.
func TestRankReordersKeptCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := randomNet(rng, 7, 120)
	n.EnsureDepths()
	// Rank by maximum leaf AND depth — the depth model's cut preference.
	byDepth := func(leaves []int) int {
		r := 0
		for _, id := range leaves {
			if d := n.AndDepth(id); d > r {
				r = d
			}
		}
		return r
	}
	plain := Enumerate(n, Params{Limit: 2})
	ranked := Enumerate(n, Params{Limit: 2, Rank: byDepth})
	changed := false
	for id := 0; id < n.NumNodes() && !changed; id++ {
		changed = !sameCuts(plain.For(id), ranked.For(id))
	}
	if !changed {
		t.Skip("rank did not change any pruned cut list on this seed (budget never exceeded)")
	}
	// Ranked cut lists must still be valid: every kept cut's first-ranked
	// entry has max leaf depth no worse than the best the plain order kept.
	for id := 0; id < n.NumNodes(); id++ {
		r, p := ranked.For(id), plain.For(id)
		if len(r) == 0 || len(p) == 0 {
			continue
		}
		if byDepth(r[0].Leaves()) > byDepth(p[0].Leaves()) {
			t.Fatalf("node %d: ranked enumeration kept a deeper best cut", id)
		}
	}
}
