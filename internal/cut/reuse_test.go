package cut

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/xag"
)

func randomReuseNet(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 4; i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	n.AddPO(lits[0], "pi0")
	return n.Cleanup()
}

func sameSets(t *testing.T, n *xag.Network, got, want *Set, label string) {
	t.Helper()
	for _, id := range n.LiveNodes() {
		g, w := got.For(id), want.For(id)
		if len(g) != len(w) {
			t.Fatalf("%s: node %d has %d cuts, want %d", label, id, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: node %d cut %d = %+v, want %+v", label, id, i, g[i], w[i])
			}
		}
	}
}

// A nil seed must reproduce the plain enumeration exactly, for any worker
// count.
func TestEnumerateReuseNilSeedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := randomReuseNet(rng, 6, 60)
		want := Enumerate(n, Params{})
		for _, workers := range []int{1, 2, 8} {
			got, computed, err := EnumerateReuse(context.Background(), n, Params{}, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			gates := 0
			for _, id := range n.LiveNodes() {
				if n.IsGate(id) {
					gates++
				}
			}
			if computed != gates {
				t.Fatalf("workers=%d: computed %d gates, want %d", workers, computed, gates)
			}
			sameSets(t, n, got, want, "nil seed")
		}
	}
}

// Seeding slots with their true cut lists must change nothing — and the
// seeded gates must not be re-enumerated.
func TestEnumerateReuseSeededMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := randomReuseNet(rng, 6, 60)
		want := Enumerate(n, Params{})
		// Seed a random subset of gate slots (with their fanins' slots, the
		// contract EnumerateReuse's caller maintains — here trivially valid
		// since seeds are the exact full-enumeration lists).
		seedSlots := make([][]Cut, n.NumNodes())
		seeded := 0
		for _, id := range n.LiveNodes() {
			if n.IsGate(id) && rng.Intn(2) == 0 {
				seedSlots[id] = want.For(id)
				seeded++
			}
		}
		for _, workers := range []int{1, 4} {
			got, computed, err := EnumerateReuse(context.Background(), n, Params{}, workers, NewSetFrom(seedSlots))
			if err != nil {
				t.Fatal(err)
			}
			gates := 0
			for _, id := range n.LiveNodes() {
				if n.IsGate(id) {
					gates++
				}
			}
			if computed != gates-seeded {
				t.Fatalf("workers=%d: computed %d, want %d (gates %d, seeded %d)",
					workers, computed, gates-seeded, gates, seeded)
			}
			sameSets(t, n, got, want, "seeded")
		}
	}
}

func TestAppendLeaves(t *testing.T) {
	n := randomReuseNet(rand.New(rand.NewSource(1)), 5, 20)
	s := Enumerate(n, Params{})
	for _, id := range n.LiveNodes() {
		for _, c := range s.For(id) {
			buf := c.AppendLeaves(nil)
			want := c.Leaves()
			if len(buf) != len(want) {
				t.Fatalf("AppendLeaves len %d, want %d", len(buf), len(want))
			}
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("AppendLeaves[%d] = %d, want %d", i, buf[i], want[i])
				}
			}
			// Appending must extend, not overwrite.
			pre := []int{-7}
			ext := c.AppendLeaves(pre)
			if ext[0] != -7 || len(ext) != len(want)+1 {
				t.Fatalf("AppendLeaves did not append: %v", ext)
			}
		}
	}
}

func TestAppendLeavesAllocs(t *testing.T) {
	c := trivial(5)
	buf := make([]int, 0, MaxK)
	allocs := testing.AllocsPerRun(100, func() {
		buf = c.AppendLeaves(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendLeaves allocates %.1f times per call, want 0", allocs)
	}
}

// RenumberLeaves through a strictly monotone map must be exactly a fresh
// enumeration of the isomorphic renumbered network.
func TestRenumberLeavesMatchesFreshEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := randomReuseNet(rng, 6, 40)
	s := Enumerate(n, Params{})
	// Cleanup of a compact network renumbers identically (ids are already in
	// rebuild order), so shift everything instead: a strictly monotone map.
	shift := func(id int) int { return id + 3 }
	for _, id := range n.LiveNodes() {
		cs := append([]Cut(nil), s.For(id)...)
		RenumberLeaves(cs, shift)
		for i, c := range cs {
			orig := s.For(id)[i]
			if c.Table != orig.Table || c.Size() != orig.Size() {
				t.Fatalf("node %d cut %d: table/size changed", id, i)
			}
			for j := 0; j < c.Size(); j++ {
				if c.Leaf(j) != orig.Leaf(j)+3 {
					t.Fatalf("node %d cut %d leaf %d = %d, want %d", id, i, j, c.Leaf(j), orig.Leaf(j)+3)
				}
			}
			if c.sig != sigOfLeaves(&c) {
				t.Fatalf("node %d cut %d: stale signature", id, i)
			}
		}
	}
}

func sigOfLeaves(c *Cut) uint64 {
	var sig uint64
	for i := 0; i < c.Size(); i++ {
		sig |= sigOf(int32(c.Leaf(i)))
	}
	return sig
}

// Steady-state enumeration allocations stay bounded: roughly one allocation
// per node (the kept list) once the scratch pool is warm.
func TestEnumerateAllocsBounded(t *testing.T) {
	n := randomReuseNet(rand.New(rand.NewSource(31)), 8, 120)
	Enumerate(n, Params{}) // warm the pool
	live := len(n.LiveNodes())
	allocs := testing.AllocsPerRun(5, func() {
		Enumerate(n, Params{})
	})
	if limit := float64(live*2 + 16); allocs > limit {
		t.Fatalf("Enumerate allocates %.0f times per run on %d live nodes, want <= %.0f",
			allocs, live, limit)
	}
}

// TransformLeaves with complemented images must rewrite each table so that
// the cut still describes the image node's function over the image leaves:
// flipping leaf j's polarity composes FlipVar(j), flipping the root
// composes Not. The identity transform must be a no-op, and two flips must
// cancel.
func TestTransformLeavesPolarity(t *testing.T) {
	n := randomReuseNet(rand.New(rand.NewSource(47)), 6, 50)
	s := Enumerate(n, Params{})
	for _, id := range n.LiveNodes() {
		orig := append([]Cut(nil), s.For(id)...)

		// Identity: same ids, no complements — tables unchanged.
		same := append([]Cut(nil), orig...)
		TransformLeaves(same, func(l int) (int, bool) { return l, false }, false)
		for i := range same {
			if same[i].Table != orig[i].Table || same[i].sig != orig[i].sig {
				t.Fatalf("node %d cut %d: identity transform changed the cut", id, i)
			}
		}

		// Complement every leaf and the root: each table must equal the
		// manual composition of FlipVar over all vars plus Not.
		flip := append([]Cut(nil), orig...)
		TransformLeaves(flip, func(l int) (int, bool) { return l, true }, true)
		for i := range flip {
			want := orig[i].Table
			for j := 0; j < orig[i].Size(); j++ {
				want = want.FlipVar(j)
			}
			want = want.Not()
			if flip[i].Table != want {
				t.Fatalf("node %d cut %d: flipped table %s, want %s", id, i, flip[i].Table, want)
			}
		}

		// Applying the same complement pattern twice restores the original.
		TransformLeaves(flip, func(l int) (int, bool) { return l, true }, true)
		for i := range flip {
			if flip[i].Table != orig[i].Table {
				t.Fatalf("node %d cut %d: double flip is not the identity", id, i)
			}
		}
	}
}
