package cut

import (
	"math/rand"
	"testing"
)

func BenchmarkEnumerateK6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := randomNetwork(rng, 10, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(n, Params{K: 6, Limit: 12})
	}
}

func BenchmarkEnumerateK4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := randomNetwork(rng, 10, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(n, Params{K: 4, Limit: 12})
	}
}
