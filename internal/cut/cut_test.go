package cut

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tt"
	"repro/internal/xag"
)

func buildFullAdder() (*xag.Network, [3]xag.Lit, xag.Lit, xag.Lit) {
	n := xag.New()
	a, b, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(a, b)
	sum := n.Xor(ab, cin)
	cout := n.Or(n.And(a, b), n.And(cin, ab))
	n.AddPO(sum, "sum")
	n.AddPO(cout, "cout")
	return n, [3]xag.Lit{a, b, cin}, sum, cout
}

func TestFullAdderCoutCutIsMajority(t *testing.T) {
	n, pis, _, cout := buildFullAdder()
	s := Enumerate(n, Params{K: 6, Limit: 12})
	cuts := s.For(cout.Node())
	if len(cuts) == 0 {
		t.Fatalf("no cuts for cout")
	}
	want := map[int]bool{pis[0].Node(): true, pis[1].Node(): true, pis[2].Node(): true}
	found := false
	for i := range cuts {
		c := &cuts[i]
		if c.Size() != 3 {
			continue
		}
		ok := true
		for j := 0; j < 3; j++ {
			if !want[c.Leaf(j)] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		found = true
		// The paper: the cout cut over {a,b,cin} implements MAJ = 0xe8,
		// possibly complemented on the root literal — here the root node is
		// the OR realized as complemented AND, so the node function is the
		// complement ¬MAJ = 0x17.
		got := c.Table
		if cout.Compl() {
			got = got.Not()
		}
		if got != tt.New(0xe8, 3) {
			t.Fatalf("cout cut table = %s, want e8 (maj)", got)
		}
	}
	if !found {
		t.Fatalf("cut {a,b,cin} not enumerated for cout")
	}
}

func TestTrivialCutsOnPIs(t *testing.T) {
	n, pis, _, _ := buildFullAdder()
	s := Enumerate(n, Params{})
	for _, pi := range pis {
		cuts := s.For(pi.Node())
		if len(cuts) != 1 || cuts[0].Size() != 1 || cuts[0].Leaf(0) != pi.Node() {
			t.Fatalf("PI cut set wrong: %+v", cuts)
		}
	}
}

// randomNetwork builds a random XAG over nPIs inputs with nGates gates.
func randomNetwork(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		var g xag.Lit
		if rng.Intn(2) == 0 {
			g = n.And(a, b)
		} else {
			g = n.Xor(a, b)
		}
		lits = append(lits, g)
	}
	// Use the last few literals as outputs so most of the graph is live.
	for i := 0; i < 4 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}

// TestCutTablesMatchSimulation checks, on random networks, that every
// enumerated cut's truth table agrees with bit-parallel simulation: for
// every pattern, root value == Table(leaf values).
func TestCutTablesMatchSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(rng, 6, 80)
		s := Enumerate(n, Params{K: 6, Limit: 12})
		in := make([]uint64, n.NumPIs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		vals := n.SimulateNodes(in)
		for _, id := range n.LiveNodes() {
			for ci := range s.For(id) {
				c := &s.For(id)[ci]
				for bit := 0; bit < 64; bit++ {
					var m uint
					for li := 0; li < c.Size(); li++ {
						m |= uint(vals[c.Leaf(li)]>>uint(bit)&1) << uint(li)
					}
					want := vals[id]>>uint(bit)&1 == 1
					if c.Table.Eval(m) != want {
						t.Fatalf("trial %d node %d cut %d: table %s disagrees with simulation",
							trial, id, ci, c.Table)
					}
				}
			}
		}
	}
}

func TestCutSizeRespectsK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := randomNetwork(rng, 10, 150)
	for _, k := range []int{2, 3, 4, 5, 6} {
		s := Enumerate(n, Params{K: k, Limit: 12})
		for id, cuts := range s.byID {
			for i := range cuts {
				if cuts[i].Size() > k {
					t.Fatalf("K=%d: node %d has cut of size %d", k, id, cuts[i].Size())
				}
			}
		}
	}
}

func TestCutLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := randomNetwork(rng, 10, 150)
	for _, limit := range []int{1, 4, 12} {
		s := Enumerate(n, Params{K: 6, Limit: limit})
		for id, cuts := range s.byID {
			if len(cuts) > limit+1 { // +1 for the trivial cut
				t.Fatalf("limit %d: node %d has %d cuts", limit, id, len(cuts))
			}
		}
	}
}

func TestNoDominatedCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := randomNetwork(rng, 8, 100)
	s := Enumerate(n, Params{K: 5, Limit: 12})
	for id, cuts := range s.byID {
		if len(cuts) == 0 {
			continue // dead node slot
		}
		// Exclude the trailing trivial cut from the check: it is kept for
		// merging even when dominated.
		nt := cuts[:len(cuts)-1]
		for i := range nt {
			for j := range nt {
				if i != j && nt[i].dominates(&nt[j]) {
					t.Fatalf("node %d: cut %v dominates kept cut %v",
						id, nt[i].Leaves(), nt[j].Leaves())
				}
			}
		}
	}
}

func TestLeavesSortedAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n := randomNetwork(rng, 8, 100)
	s := Enumerate(n, Params{})
	for id, cuts := range s.byID {
		for ci := range cuts {
			c := &cuts[ci]
			for i := 1; i < c.Size(); i++ {
				if c.Leaf(i-1) >= c.Leaf(i) {
					t.Fatalf("node %d cut %d: leaves not strictly sorted: %v",
						id, ci, c.Leaves())
				}
			}
		}
	}
}

func TestMergeOverflow(t *testing.T) {
	var a, b Cut
	for i := 0; i < 4; i++ {
		a.leaves[a.n] = int32(i)
		a.n++
		a.sig |= sigOf(int32(i))
		b.leaves[b.n] = int32(10 + i)
		b.n++
		b.sig |= sigOf(int32(10 + i))
	}
	if _, ok := merge(&a, &b, 6); ok {
		t.Fatalf("merge should overflow K=6 with 8 distinct leaves")
	}
	m, ok := merge(&a, &a, 6)
	if !ok || m.Size() != 4 {
		t.Fatalf("self-merge failed: %v %d", ok, m.Size())
	}
}

// TestEnumerateParallelMatchesSequential checks that the level-parallel
// enumeration produces exactly the same cut sets (same order, same tables)
// as the sequential one, for several worker counts.
func TestEnumerateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 8, 200)
		seq := Enumerate(n, Params{K: 6, Limit: 12})
		for _, workers := range []int{2, 3, 8} {
			par, err := EnumerateParallel(context.Background(), n, Params{K: 6, Limit: 12}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.byID) != len(seq.byID) {
				t.Fatalf("workers=%d: %d slots, want %d", workers, len(par.byID), len(seq.byID))
			}
			for id := range seq.byID {
				if !reflect.DeepEqual(par.byID[id], seq.byID[id]) {
					t.Fatalf("trial %d workers=%d: node %d cuts differ", trial, workers, id)
				}
			}
		}
	}
}

func TestEnumerateParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	n := randomNetwork(rng, 8, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if s, err := EnumerateParallel(ctx, n, Params{}, 4); err == nil || s != nil {
		t.Fatalf("canceled enumeration returned s=%v err=%v", s, err)
	}
}
