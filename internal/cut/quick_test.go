package cut

import (
	"sort"
	"testing"
	"testing/quick"
)

// mkCut builds a cut from arbitrary leaf candidates.
func mkCut(raw []int32) Cut {
	uniq := map[int32]bool{}
	var leaves []int32
	for _, v := range raw {
		if v < 0 {
			v = -v
		}
		v %= 1000
		if !uniq[v] {
			uniq[v] = true
			leaves = append(leaves, v)
		}
		if len(leaves) == MaxK {
			break
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	var c Cut
	for _, v := range leaves {
		c.leaves[c.n] = v
		c.n++
		c.sig |= sigOf(v)
	}
	return c
}

func TestQuickMergeIsUnion(t *testing.T) {
	f := func(a, b []int32) bool {
		ca, cb := mkCut(a), mkCut(b)
		m, ok := merge(&ca, &cb, MaxK)
		want := map[int32]bool{}
		for i := 0; i < ca.Size(); i++ {
			want[ca.leaves[i]] = true
		}
		for i := 0; i < cb.Size(); i++ {
			want[cb.leaves[i]] = true
		}
		if len(want) > MaxK {
			return !ok
		}
		if !ok {
			return false
		}
		if m.Size() != len(want) {
			return false
		}
		for i := 0; i < m.Size(); i++ {
			if !want[m.leaves[i]] {
				return false
			}
			if i > 0 && m.leaves[i-1] >= m.leaves[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDominatesIsSubset(t *testing.T) {
	f := func(a, b []int32) bool {
		ca, cb := mkCut(a), mkCut(b)
		set := map[int32]bool{}
		for i := 0; i < cb.Size(); i++ {
			set[cb.leaves[i]] = true
		}
		subset := true
		for i := 0; i < ca.Size(); i++ {
			if !set[ca.leaves[i]] {
				subset = false
				break
			}
		}
		return ca.dominates(&cb) == subset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeIdempotentAndCommutative(t *testing.T) {
	f := func(a, b []int32) bool {
		ca, cb := mkCut(a), mkCut(b)
		m1, ok1 := merge(&ca, &cb, MaxK)
		m2, ok2 := merge(&cb, &ca, MaxK)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		if m1.n != m2.n || m1.sig != m2.sig {
			return false
		}
		self, ok := merge(&ca, &ca, MaxK)
		if !ok || self.n != ca.n {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
