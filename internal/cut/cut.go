// Package cut implements k-feasible cut enumeration on XAGs with priority
// cuts, as used by the rewriting algorithm of the paper (cut size K ≤ 6,
// bounded number of cuts per node, dominated cuts filtered). Each cut
// carries the truth table of its root expressed over the cut leaves.
package cut

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tt"
	"repro/internal/xag"
)

// MaxK is the largest supported cut size; functions of up to MaxK leaves fit
// in a single-word truth table.
const MaxK = tt.MaxVars

// Cut is a set of at most MaxK leaves together with the root function.
type Cut struct {
	leaves [MaxK]int32
	n      int8
	sig    uint64 // bloom signature of the leaf set
	Table  tt.T   // root function over leaves (leaf i ↦ variable i)
}

// Size returns the number of leaves.
func (c *Cut) Size() int { return int(c.n) }

// Leaf returns the node id of the i-th leaf (ascending order).
func (c *Cut) Leaf(i int) int { return int(c.leaves[i]) }

// Leaves returns the leaf node ids as a fresh slice.
func (c *Cut) Leaves() []int {
	out := make([]int, c.n)
	for i := range out {
		out[i] = int(c.leaves[i])
	}
	return out
}

// LeafSet returns the leaves as a set, for MFFC queries.
func (c *Cut) LeafSet() map[int]bool {
	m := make(map[int]bool, c.n)
	for i := 0; i < int(c.n); i++ {
		m[int(c.leaves[i])] = true
	}
	return m
}

func sigOf(id int32) uint64 { return 1 << uint(id%64) }

// dominates reports whether c's leaves are a subset of d's.
func (c *Cut) dominates(d *Cut) bool {
	if c.n > d.n || c.sig&^d.sig != 0 {
		return false
	}
	j := 0
	for i := 0; i < int(c.n); i++ {
		for j < int(d.n) && d.leaves[j] < c.leaves[i] {
			j++
		}
		if j == int(d.n) || d.leaves[j] != c.leaves[i] {
			return false
		}
	}
	return true
}

// merge unions two cuts if the result has at most k leaves.
func merge(a, b *Cut, k int) (Cut, bool) {
	var out Cut
	i, j := 0, 0
	for i < int(a.n) || j < int(b.n) {
		var next int32
		switch {
		case i == int(a.n):
			next = b.leaves[j]
			j++
		case j == int(b.n):
			next = a.leaves[i]
			i++
		case a.leaves[i] < b.leaves[j]:
			next = a.leaves[i]
			i++
		case a.leaves[i] > b.leaves[j]:
			next = b.leaves[j]
			j++
		default:
			next = a.leaves[i]
			i++
			j++
		}
		if int(out.n) == k {
			return Cut{}, false
		}
		out.leaves[out.n] = next
		out.n++
		out.sig |= sigOf(next)
	}
	return out, true
}

// position returns the index of leaf id in the cut, or -1.
func (c *Cut) position(id int32) int {
	for i := 0; i < int(c.n); i++ {
		if c.leaves[i] == id {
			return i
		}
	}
	return -1
}

// Params configures the enumeration.
type Params struct {
	K     int // maximum cut size, 2..MaxK (default 6)
	Limit int // maximum number of non-trivial cuts kept per node (default 12)

	// Rank, when set, ranks candidate cuts under the active cost model
	// before the per-node budget is applied: cuts with lower rank are kept
	// preferentially, with the default (size, leaf-order) ordering breaking
	// rank ties. A nil Rank keeps the default ordering exactly — the
	// priority-cut lists are bit-identical to an unranked enumeration.
	// Rank must be a pure function of the leaf set; it is called from
	// enumeration workers.
	Rank func(leaves []int) int
}

func (p Params) withDefaults() Params {
	if p.K == 0 {
		p.K = 6
	}
	if p.K < 2 || p.K > MaxK {
		panic("cut: K out of range")
	}
	if p.Limit == 0 {
		p.Limit = 12
	}
	return p
}

// Set holds the enumerated cuts of one network, indexed by node id. Slots
// of dead or never-enumerated nodes are nil. A Set is immutable after
// enumeration and safe for concurrent readers.
type Set struct {
	byID [][]Cut // node id → cuts (trivial cut last)
}

// For returns the cuts of a node (nil for dead or unknown nodes).
func (s *Set) For(id int) []Cut {
	if id < 0 || id >= len(s.byID) {
		return nil
	}
	return s.byID[id]
}

// Enumerate computes priority cuts for every live node of a network. The
// network must be compact (no pending substitutions), which holds for
// freshly built or Cleanup'ed networks.
func Enumerate(n *xag.Network, p Params) *Set {
	s, _ := EnumerateContext(context.Background(), n, p)
	return s
}

// ctxCheckStride bounds how many nodes are processed between cancellation
// checks; the per-node merge work dominates, so checking every few nodes
// keeps the cancellation latency small without measurable overhead.
const ctxCheckStride = 64

// nodeCuts computes the pruned cut list of one gate from the cut lists of
// its fanins. It only reads the (compact) network and the fanin slots of
// byID, so disjoint nodes can be processed concurrently.
func nodeCuts(n *xag.Network, id int, byID [][]Cut, p Params) []Cut {
	f0, f1 := n.Fanins(id)
	c0s := byID[f0.Node()]
	c1s := byID[f1.Node()]
	isAnd := n.Kind(id) == xag.KindAnd
	var cand []Cut
	for i := range c0s {
		for j := range c1s {
			m, ok := merge(&c0s[i], &c1s[j], p.K)
			if !ok {
				continue
			}
			m.Table = mergedTable(&m, &c0s[i], &c1s[j], f0.Compl(), f1.Compl(), isAnd)
			cand = append(cand, m)
		}
	}
	return prune(cand, p, id)
}

// EnumerateContext is Enumerate with cancellation: it checks ctx
// periodically and returns ctx's error (and a nil set) if the deadline
// expires or the context is canceled mid-enumeration.
func EnumerateContext(ctx context.Context, n *xag.Network, p Params) (*Set, error) {
	p = p.withDefaults()
	res := &Set{byID: make([][]Cut, n.NumNodes())}
	for step, id := range n.LiveNodes() {
		if step%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !n.IsGate(id) {
			res.byID[id] = []Cut{trivial(id)}
			continue
		}
		res.byID[id] = nodeCuts(n, id, res.byID, p)
	}
	return res, nil
}

// EnumerateParallel enumerates cuts with a bounded worker pool. Nodes are
// processed level by level (a gate's level is one past its deepest fanin),
// so every worker only reads cut lists of strictly lower levels — finished
// before its level started — and writes its own node's slot. The result is
// identical to EnumerateContext for any worker count: each node's cut list
// is a pure function of its fanin cut lists.
func EnumerateParallel(ctx context.Context, n *xag.Network, p Params, workers int) (*Set, error) {
	if workers <= 1 {
		return EnumerateContext(ctx, n, p)
	}
	p = p.withDefaults()
	res := &Set{byID: make([][]Cut, n.NumNodes())}

	// Group gates by level; PIs (and other non-gates) get their trivial cut
	// immediately and anchor level 0.
	level := make([]int, n.NumNodes())
	var byLevel [][]int
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			res.byID[id] = []Cut{trivial(id)}
			continue
		}
		f0, f1 := n.Fanins(id)
		l := max(level[f0.Node()], level[f1.Node()]) + 1
		level[id] = l
		for len(byLevel) < l {
			byLevel = append(byLevel, nil)
		}
		byLevel[l-1] = append(byLevel[l-1], id)
	}

	for _, nodes := range byLevel {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := workers
		if w > len(nodes) {
			w = len(nodes)
		}
		if w <= 1 {
			for _, id := range nodes {
				res.byID[id] = nodeCuts(n, id, res.byID, p)
			}
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nodes) {
						return
					}
					if i%ctxCheckStride == 0 && ctx.Err() != nil {
						return
					}
					id := nodes[i]
					res.byID[id] = nodeCuts(n, id, res.byID, p)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func trivial(id int) Cut {
	var c Cut
	c.leaves[0] = int32(id)
	c.n = 1
	c.sig = sigOf(int32(id))
	c.Table = tt.Var(0, 1)
	return c
}

// mergedTable computes the root function of the merged cut from the child
// cut tables.
func mergedTable(m, c0, c1 *Cut, compl0, compl1, isAnd bool) tt.T {
	n := int(m.n)
	pos0 := make([]int, c0.n)
	for i := range pos0 {
		pos0[i] = m.position(c0.leaves[i])
	}
	pos1 := make([]int, c1.n)
	for i := range pos1 {
		pos1[i] = m.position(c1.leaves[i])
	}
	t0 := c0.Table.RemapExpand(pos0, n)
	t1 := c1.Table.RemapExpand(pos1, n)
	if compl0 {
		t0 = t0.Not()
	}
	if compl1 {
		t1 = t1.Not()
	}
	if isAnd {
		return t0.And(t1)
	}
	return t0.Xor(t1)
}

// prune removes duplicate and dominated cuts, keeps the limit best by
// (model rank, size, leaf order), and appends the trivial cut. Without a
// Params.Rank all ranks are zero and the ordering is exactly the classic
// (size, leaf order) one.
func prune(cand []Cut, p Params, id int) []Cut {
	var ranks []int
	if p.Rank != nil {
		ranks = make([]int, len(cand))
		for i := range cand {
			ranks[i] = p.Rank(cand[i].Leaves())
		}
	}
	// Sort an index permutation so the rank slice stays aligned with the
	// candidates while sorting.
	idx := make([]int, len(cand))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if ranks != nil && ranks[i] != ranks[j] {
			return ranks[i] < ranks[j]
		}
		if cand[i].n != cand[j].n {
			return cand[i].n < cand[j].n
		}
		for k := 0; k < int(cand[i].n); k++ {
			if cand[i].leaves[k] != cand[j].leaves[k] {
				return cand[i].leaves[k] < cand[j].leaves[k]
			}
		}
		return false
	})
	var kept []Cut
	for _, i := range idx {
		c := &cand[i]
		dup := false
		for j := range kept {
			if kept[j].dominates(c) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		kept = append(kept, *c)
		if len(kept) == p.Limit {
			break
		}
	}
	return append(kept, trivial(id))
}
