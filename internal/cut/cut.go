// Package cut implements k-feasible cut enumeration on XAGs with priority
// cuts, as used by the rewriting algorithm of the paper (cut size K ≤ 6,
// bounded number of cuts per node, dominated cuts filtered). Each cut
// carries the truth table of its root expressed over the cut leaves.
package cut

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tt"
	"repro/internal/xag"
)

// MaxK is the largest supported cut size; functions of up to MaxK leaves fit
// in a single-word truth table.
const MaxK = tt.MaxVars

// Cut is a set of at most MaxK leaves together with the root function.
type Cut struct {
	leaves [MaxK]int32
	n      int8
	sig    uint64 // bloom signature of the leaf set
	Table  tt.T   // root function over leaves (leaf i ↦ variable i)
}

// Size returns the number of leaves.
func (c *Cut) Size() int { return int(c.n) }

// Leaf returns the node id of the i-th leaf (ascending order).
func (c *Cut) Leaf(i int) int { return int(c.leaves[i]) }

// Leaves returns the leaf node ids as a fresh slice. Hot paths should
// prefer AppendLeaves, which reuses the caller's buffer.
func (c *Cut) Leaves() []int {
	return c.AppendLeaves(make([]int, 0, c.n))
}

// AppendLeaves appends the leaf node ids (ascending) to dst and returns the
// extended slice, allocating only when dst lacks capacity.
func (c *Cut) AppendLeaves(dst []int) []int {
	for i := 0; i < int(c.n); i++ {
		dst = append(dst, int(c.leaves[i]))
	}
	return dst
}

// LeafSet returns the leaves as a set, for MFFC queries.
func (c *Cut) LeafSet() map[int]bool {
	m := make(map[int]bool, c.n)
	for i := 0; i < int(c.n); i++ {
		m[int(c.leaves[i])] = true
	}
	return m
}

func sigOf(id int32) uint64 { return 1 << uint(id%64) }

// dominates reports whether c's leaves are a subset of d's.
func (c *Cut) dominates(d *Cut) bool {
	if c.n > d.n || c.sig&^d.sig != 0 {
		return false
	}
	j := 0
	for i := 0; i < int(c.n); i++ {
		for j < int(d.n) && d.leaves[j] < c.leaves[i] {
			j++
		}
		if j == int(d.n) || d.leaves[j] != c.leaves[i] {
			return false
		}
	}
	return true
}

// merge unions two cuts if the result has at most k leaves.
func merge(a, b *Cut, k int) (Cut, bool) {
	var out Cut
	i, j := 0, 0
	for i < int(a.n) || j < int(b.n) {
		var next int32
		switch {
		case i == int(a.n):
			next = b.leaves[j]
			j++
		case j == int(b.n):
			next = a.leaves[i]
			i++
		case a.leaves[i] < b.leaves[j]:
			next = a.leaves[i]
			i++
		case a.leaves[i] > b.leaves[j]:
			next = b.leaves[j]
			j++
		default:
			next = a.leaves[i]
			i++
			j++
		}
		if int(out.n) == k {
			return Cut{}, false
		}
		out.leaves[out.n] = next
		out.n++
		out.sig |= sigOf(next)
	}
	return out, true
}

// position returns the index of leaf id in the cut, or -1.
func (c *Cut) position(id int32) int {
	for i := 0; i < int(c.n); i++ {
		if c.leaves[i] == id {
			return i
		}
	}
	return -1
}

// Params configures the enumeration.
type Params struct {
	K     int // maximum cut size, 2..MaxK (default 6)
	Limit int // maximum number of non-trivial cuts kept per node (default 12)

	// Rank, when set, ranks candidate cuts under the active cost model
	// before the per-node budget is applied: cuts with lower rank are kept
	// preferentially, with the default (size, leaf-order) ordering breaking
	// rank ties. A nil Rank keeps the default ordering exactly — the
	// priority-cut lists are bit-identical to an unranked enumeration.
	// Rank must be a pure function of the leaf set; it is called from
	// enumeration workers.
	Rank func(leaves []int) int
}

func (p Params) withDefaults() Params {
	if p.K == 0 {
		p.K = 6
	}
	if p.K < 2 || p.K > MaxK {
		panic("cut: K out of range")
	}
	if p.Limit == 0 {
		p.Limit = 12
	}
	return p
}

// Set holds the enumerated cuts of one network, indexed by node id. Slots
// of dead or never-enumerated nodes are nil. A Set is immutable after
// enumeration and safe for concurrent readers.
type Set struct {
	byID [][]Cut // node id → cuts (trivial cut last)
}

// For returns the cuts of a node (nil for dead or unknown nodes).
func (s *Set) For(id int) []Cut {
	if id < 0 || id >= len(s.byID) {
		return nil
	}
	return s.byID[id]
}

// NewSetFrom wraps slots (node id → cut list) in a Set without copying. It
// is the constructor of the incremental engine's seed sets; the caller must
// not mutate slots while the Set is in use.
func NewSetFrom(slots [][]Cut) *Set { return &Set{byID: slots} }

// RenumberLeaves remaps the leaf ids of every cut in cs in place through
// newID and recomputes the bloom signatures. newID must be strictly
// monotone on the ids present: leaf order — and with it the meaning of each
// truth-table variable — is preserved, so the tables need no rewriting.
func RenumberLeaves(cs []Cut, newID func(int) int) {
	TransformLeaves(cs, func(id int) (int, bool) { return newID(id), false }, false)
}

// TransformLeaves is RenumberLeaves with polarity: img maps a leaf id to its
// new id plus whether the new node computes the leaf's complement, and
// rootCompl reports the same for the cut root. Tables are rewritten to stay
// correct over the new leaves: variable j is flipped when leaf j's image is
// complemented, and the whole table is complemented when rootCompl — so each
// transformed table is the new root's function over the new leaves. (For a
// trivial cut the two flips cancel, keeping it canonical.) As with
// RenumberLeaves, img must be strictly monotone on the ids present for the
// lists to stay sorted.
func TransformLeaves(cs []Cut, img func(int) (int, bool), rootCompl bool) {
	for i := range cs {
		c := &cs[i]
		c.sig = 0
		for j := 0; j < int(c.n); j++ {
			v, compl := img(int(c.leaves[j]))
			c.leaves[j] = int32(v)
			c.sig |= sigOf(int32(v))
			if compl {
				c.Table = c.Table.FlipVar(j)
			}
		}
		if rootCompl {
			c.Table = c.Table.Not()
		}
	}
}

// Enumerate computes priority cuts for every live node of a network. The
// network must be compact (no pending substitutions), which holds for
// freshly built or Cleanup'ed networks.
func Enumerate(n *xag.Network, p Params) *Set {
	s, _ := EnumerateContext(context.Background(), n, p)
	return s
}

// ctxCheckStride bounds how many nodes are processed between cancellation
// checks; the per-node merge work dominates, so checking every few nodes
// keeps the cancellation latency small without measurable overhead.
const ctxCheckStride = 64

// scratch holds the per-worker buffers of enumeration: candidate cuts and
// the index/rank slices of prune. Pooled so steady-state enumeration does
// one allocation per node (the kept cut list) instead of one per candidate
// batch.
type scratch struct {
	cand   []Cut
	ranks  []int
	keep   []int
	leaves []int
	sorter pruneSorter
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// pruneSorter sorts an index permutation by (rank, size, leaf order). A
// plain sort.Interface implementation (instead of sort.Slice) keeps the
// sort allocation-free: the value lives in the pooled scratch and only a
// pointer crosses the interface.
type pruneSorter struct {
	idx     []int
	cand    []Cut
	ranks   []int
	hasRank bool
}

func (s *pruneSorter) Len() int      { return len(s.idx) }
func (s *pruneSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *pruneSorter) Less(a, b int) bool {
	i, j := s.idx[a], s.idx[b]
	if s.hasRank && s.ranks[i] != s.ranks[j] {
		return s.ranks[i] < s.ranks[j]
	}
	ci, cj := &s.cand[i], &s.cand[j]
	if ci.n != cj.n {
		return ci.n < cj.n
	}
	for k := 0; k < int(ci.n); k++ {
		if ci.leaves[k] != cj.leaves[k] {
			return ci.leaves[k] < cj.leaves[k]
		}
	}
	return false
}

// nodeCuts computes the pruned cut list of one gate from the cut lists of
// its fanins. It only reads the (compact) network and the fanin slots of
// byID, so disjoint nodes can be processed concurrently.
func nodeCuts(n *xag.Network, id int, byID [][]Cut, p Params, sc *scratch) []Cut {
	f0, f1 := n.Fanins(id)
	c0s := byID[f0.Node()]
	c1s := byID[f1.Node()]
	isAnd := n.Kind(id) == xag.KindAnd
	cand := sc.cand[:0]
	for i := range c0s {
		for j := range c1s {
			m, ok := merge(&c0s[i], &c1s[j], p.K)
			if !ok {
				continue
			}
			m.Table = mergedTable(&m, &c0s[i], &c1s[j], f0.Compl(), f1.Compl(), isAnd)
			cand = append(cand, m)
		}
	}
	sc.cand = cand
	return prune(cand, p, id, sc)
}

// EnumerateContext is Enumerate with cancellation: it checks ctx
// periodically and returns ctx's error (and a nil set) if the deadline
// expires or the context is canceled mid-enumeration.
func EnumerateContext(ctx context.Context, n *xag.Network, p Params) (*Set, error) {
	s, _, err := EnumerateReuse(ctx, n, p, 1, nil)
	return s, err
}

// EnumerateParallel enumerates cuts with a bounded worker pool. Nodes are
// processed level by level (a gate's level is one past its deepest fanin),
// so every worker only reads cut lists of strictly lower levels — finished
// before its level started — and writes its own node's slot. The result is
// identical to EnumerateContext for any worker count: each node's cut list
// is a pure function of its fanin cut lists.
func EnumerateParallel(ctx context.Context, n *xag.Network, p Params, workers int) (*Set, error) {
	s, _, err := EnumerateReuse(ctx, n, p, workers, nil)
	return s, err
}

// EnumerateReuse is EnumerateParallel with trusted cross-round reuse:
// non-nil slots of seed are adopted verbatim and only the remaining live
// nodes are enumerated. The caller guarantees every seeded slot equals what
// a fresh enumeration would compute for that node — under that contract the
// result is bit-identical to a full enumeration for any worker count. The
// second result is the number of gates actually enumerated. A nil seed
// enumerates everything. Callers that cannot prove their seeds valid should
// use EnumerateIncremental, which validates them.
func EnumerateReuse(ctx context.Context, n *xag.Network, p Params, workers int, seed *Set) (*Set, int, error) {
	var seedSlots [][]Cut
	if seed != nil {
		seedSlots = seed.byID
	}
	res, _, computed, err := enumerateSeeded(ctx, n, p, workers, seedSlots, nil, true)
	return res, computed, err
}

// Seed is the input of EnumerateIncremental: the previous round's cut lists
// renumbered into the current network's node ids, plus the per-node leaf
// validity computed by the caller.
type Seed struct {
	// Cuts holds the candidate seed lists by current node id (nil slot = no
	// seed for that node). Lists must already be renumbered: leaf ids are
	// current-network ids.
	Cuts *Set
	// LeafOK[id] reports that id is safe to appear as a leaf inside a
	// reused list: its renumbering since the seed round is order-preserving
	// against every other potential leaf, and — for ranked enumerations —
	// its Params.Rank contribution (e.g. its depth) is unchanged.
	LeafOK []bool
}

// EnumerateIncremental enumerates cuts with validated cross-round reuse and
// change-propagation early termination. A gate adopts its seed list without
// re-merging when that is provably identical to recomputing it: neither
// fanin's list changed this round and every candidate leaf (every leaf of
// both fanin lists) passes seed.LeafOK — fanin lists equal plus
// order-preserved tie-breaks and unchanged ranks force prune to reproduce
// the seed exactly. Other gates are re-merged and compared against their
// seed, so an unchanged result still stops the invalidation wave here
// instead of sweeping the whole fanout cone.
//
// Returns the cut set, a per-node changed flag (true when the node's final
// list is not known to equal its seed — always true for unseeded gates), and
// the number of gates actually re-merged. The set is bit-identical to a full
// enumeration for any worker count and any seed contents: invalid seeds cost
// recomputation, never wrong cuts.
func EnumerateIncremental(ctx context.Context, n *xag.Network, p Params, workers int, seed *Seed) (*Set, []bool, int, error) {
	var seedSlots [][]Cut
	var leafOK []bool
	if seed != nil {
		if seed.Cuts != nil {
			seedSlots = seed.Cuts.byID
		}
		leafOK = seed.LeafOK
	}
	return enumerateSeeded(ctx, n, p, workers, seedSlots, leafOK, false)
}

// equalCuts reports whether two cut lists are identical (same cuts, same
// order, same tables).
func equalCuts(a, b []Cut) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedReusable decides the no-recompute path of EnumerateIncremental for
// one gate: both fanin lists unchanged and every leaf of both lists (the
// superset of all candidate leaves the merge can produce) valid per leafOK.
func seedReusable(res *Set, changed, leafOK []bool, f0, f1 int) bool {
	if changed[f0] || changed[f1] {
		return false
	}
	for _, f := range [2]int{f0, f1} {
		for ci := range res.byID[f] {
			c := &res.byID[f][ci]
			for k := 0; k < int(c.n); k++ {
				l := int(c.leaves[k])
				if l >= len(leafOK) || !leafOK[l] {
					return false
				}
			}
		}
	}
	return true
}

// enumerateSeeded is the shared engine of EnumerateReuse (trust=true: adopt
// seeds verbatim) and EnumerateIncremental (trust=false: validate seeds,
// track changes). The returned changed slice is nil in trusted mode.
func enumerateSeeded(ctx context.Context, n *xag.Network, p Params, workers int, seedSlots [][]Cut, leafOK []bool, trust bool) (*Set, []bool, int, error) {
	p = p.withDefaults()
	numNodes := n.NumNodes()
	res := &Set{byID: make([][]Cut, numNodes)}
	seedFor := func(id int) []Cut {
		if id < len(seedSlots) {
			return seedSlots[id]
		}
		return nil
	}
	var changed []bool
	if !trust {
		changed = make([]bool, numNodes)
	}
	var computed int64

	// visit handles one gate: adopt the seed when allowed, else re-merge
	// (and, in incremental mode, compare against the seed so an unchanged
	// list does not invalidate its fanouts).
	visit := func(id int, sc *scratch) {
		s := seedFor(id)
		if s != nil {
			if trust {
				res.byID[id] = s
				return
			}
			f0, f1 := n.Fanins(id)
			if seedReusable(res, changed, leafOK, f0.Node(), f1.Node()) {
				res.byID[id] = s
				return
			}
		}
		cs := nodeCuts(n, id, res.byID, p, sc)
		res.byID[id] = cs
		atomic.AddInt64(&computed, 1)
		if !trust {
			changed[id] = !equalCuts(cs, s)
		}
	}

	if workers <= 1 {
		sc := scratchPool.Get().(*scratch)
		defer scratchPool.Put(sc)
		for step, id := range n.LiveNodes() {
			if step%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, nil, 0, err
				}
			}
			if !n.IsGate(id) {
				if trust && res.byID[id] == nil && seedFor(id) != nil {
					res.byID[id] = seedFor(id)
					continue
				}
				res.byID[id] = []Cut{trivial(id)}
				continue
			}
			visit(id, sc)
		}
		return res, changed, int(computed), nil
	}

	// Group the gates to process by level; PIs (and other non-gates) get
	// their trivial cut immediately and anchor level 0. In trusted mode
	// seeded gates carry a level — their fanouts' levels depend on it — but
	// no work item; in incremental mode every gate is visited (the reuse
	// decision needs its fanins' changed flags, final once their level is
	// done).
	level := make([]int, numNodes)
	var byLevel [][]int
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			if trust && seedFor(id) != nil {
				res.byID[id] = seedFor(id)
			} else {
				res.byID[id] = []Cut{trivial(id)}
			}
			continue
		}
		f0, f1 := n.Fanins(id)
		l := max(level[f0.Node()], level[f1.Node()]) + 1
		level[id] = l
		if trust && seedFor(id) != nil {
			res.byID[id] = seedFor(id)
			continue
		}
		for len(byLevel) < l {
			byLevel = append(byLevel, nil)
		}
		byLevel[l-1] = append(byLevel[l-1], id)
	}

	for _, nodes := range byLevel {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		w := workers
		if w > len(nodes) {
			w = len(nodes)
		}
		if w <= 1 {
			sc := scratchPool.Get().(*scratch)
			for _, id := range nodes {
				visit(id, sc)
			}
			scratchPool.Put(sc)
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := scratchPool.Get().(*scratch)
				defer scratchPool.Put(sc)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nodes) {
						return
					}
					if i%ctxCheckStride == 0 && ctx.Err() != nil {
						return
					}
					visit(nodes[i], sc)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	return res, changed, int(computed), nil
}

func trivial(id int) Cut {
	var c Cut
	c.leaves[0] = int32(id)
	c.n = 1
	c.sig = sigOf(int32(id))
	c.Table = tt.Var(0, 1)
	return c
}

// mergedTable computes the root function of the merged cut from the child
// cut tables.
func mergedTable(m, c0, c1 *Cut, compl0, compl1, isAnd bool) tt.T {
	n := int(m.n)
	// Positions live in fixed-size stack arrays: child leaves are sorted
	// sublists of the merged leaves, so the positions are strictly
	// increasing and RemapExpand takes its allocation-free swap-chain path.
	var pos0a, pos1a [MaxK]int
	pos0 := pos0a[:c0.n]
	for i := range pos0 {
		pos0[i] = m.position(c0.leaves[i])
	}
	pos1 := pos1a[:c1.n]
	for i := range pos1 {
		pos1[i] = m.position(c1.leaves[i])
	}
	t0 := c0.Table.RemapExpand(pos0, n)
	t1 := c1.Table.RemapExpand(pos1, n)
	if compl0 {
		t0 = t0.Not()
	}
	if compl1 {
		t1 = t1.Not()
	}
	if isAnd {
		return t0.And(t1)
	}
	return t0.Xor(t1)
}

// prune removes duplicate and dominated cuts, keeps the limit best by
// (model rank, size, leaf order), and appends the trivial cut. Without a
// Params.Rank all ranks are zero and the ordering is exactly the classic
// (size, leaf order) one. Only the returned kept list is freshly allocated;
// all intermediates live in the scratch.
func prune(cand []Cut, p Params, id int, sc *scratch) []Cut {
	hasRank := p.Rank != nil
	ranks := sc.ranks[:0]
	if hasRank {
		for i := range cand {
			sc.leaves = cand[i].AppendLeaves(sc.leaves[:0])
			ranks = append(ranks, p.Rank(sc.leaves))
		}
		sc.ranks = ranks
	}
	// Sort an index permutation so the rank slice stays aligned with the
	// candidates while sorting.
	st := &sc.sorter
	idx := st.idx[:0]
	for i := range cand {
		idx = append(idx, i)
	}
	st.idx, st.cand, st.ranks, st.hasRank = idx, cand, ranks, hasRank
	sort.Sort(st)
	st.cand, st.ranks = nil, nil // do not retain past this call
	keep := sc.keep[:0]
	for _, i := range idx {
		c := &cand[i]
		dup := false
		for _, j := range keep {
			if cand[j].dominates(c) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		keep = append(keep, i)
		if len(keep) == p.Limit {
			break
		}
	}
	sc.keep = keep
	out := make([]Cut, len(keep)+1)
	for oi, i := range keep {
		out[oi] = cand[i]
	}
	out[len(keep)] = trivial(id)
	return out
}
