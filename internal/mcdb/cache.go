package mcdb

import (
	"sync"

	"repro/internal/spectral"
)

// The classification cache is the concurrency backbone of the parallel
// rewriting engine: every worker classifies its cut functions against it,
// and the cache persists for the lifetime of the database, so later rounds
// (and later benchmarks sharing the DB) turn classification — the dominant
// cost of a round — into a map hit.
//
// The cache is sharded and mutex-striped: a key hashes to one of
// classShardCount shards, each guarded by its own RWMutex, so concurrent
// workers only contend when their functions land in the same shard. Two
// workers racing to classify the same function both compute it (the result
// is deterministic, so either copy is valid); the first insert wins and the
// loser adopts the winner's value, which keeps every reader of a given key
// observing one canonical Result.

// classShardCount is the number of mutex stripes. 64 keeps contention
// negligible for any plausible worker count while costing only a few kB.
const classShardCount = 64

type classShard struct {
	mu sync.RWMutex
	m  map[key]spectral.Result
}

type classCache struct {
	shards [classShardCount]classShard
}

func newClassCache() *classCache {
	c := &classCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[key]spectral.Result)
	}
	return c
}

// shardOf mixes the truth-table bits so consecutive functions spread across
// stripes (Fibonacci hashing on the raw bits plus the variable count).
func (c *classCache) shardOf(k key) *classShard {
	h := (k.bits ^ uint64(k.n)<<57) * 0x9e3779b97f4a7c15
	return &c.shards[h>>58&(classShardCount-1)]
}

func (c *classCache) get(k key) (spectral.Result, bool) {
	s := c.shardOf(k)
	s.mu.RLock()
	res, ok := s.m[k]
	s.mu.RUnlock()
	return res, ok
}

// put inserts res under k unless another goroutine got there first, and
// returns the canonical value plus whether this call was the one that
// inserted it.
func (c *classCache) put(k key, res spectral.Result) (spectral.Result, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[k]; ok {
		return prev, false
	}
	s.m[k] = res
	return res, true
}

func (c *classCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
