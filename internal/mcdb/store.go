package mcdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Store binds a DB to a directory and keeps it durable: a checksummed
// snapshot (SnapshotName) holds the state at the last checkpoint, and
// numbered write-ahead journals (mcdb.wal.NNNNNNNN) hold every entry
// admitted since, fsynced per append. OpenStore recovers by loading the
// snapshot and replaying the journals under the quarantine policy, so a
// crash at any instant — mid-snapshot, mid-append, mid-rename — loses
// nothing that was ever journaled and never admits a corrupt record.
//
// Snapshot rotates the journal *before* copying the entry set, so every
// entry is always covered by the snapshot being written or by a journal that
// survives it; journals retired by a snapshot are deleted only after the
// snapshot has durably replaced its predecessor (deleting them late is
// harmless: replay is idempotent).
type Store struct {
	dir string
	db  *DB

	// snapMu serializes snapshots. walMu guards the journal writer and its
	// generation number; the entry hook takes it while holding db.mu, so
	// nothing may acquire db.mu while holding walMu.
	snapMu sync.Mutex
	walMu  sync.Mutex
	wal    *journalWriter
	walGen int

	snapshots     atomic.Int64
	appends       atomic.Int64
	appendErrs    atomic.Int64
	lastAppendErr atomic.Pointer[string]
	lastSnapshot  atomic.Int64 // unix nanos, 0 = none this process
	snapEntries   atomic.Int64 // entries in the last snapshot written
}

// SnapshotName is the snapshot's filename inside a store directory.
const SnapshotName = "mcdb.snap"

const walPrefix = "mcdb.wal."

func walName(gen int) string { return fmt.Sprintf("%s%08d", walPrefix, gen) }

// RecoveryReport describes what OpenStore reconstructed.
type RecoveryReport struct {
	Snapshot LoadReport // from the snapshot file, zero if none existed
	Journal  LoadReport // merged across all replayed journal generations
	Journals int        // journal files replayed
}

// Clean reports whether recovery admitted everything without quarantine.
func (r RecoveryReport) Clean() bool { return r.Snapshot.Clean() && r.Journal.Clean() }

// OpenStore opens (creating if necessary) the durable store in dir, recovers
// the database from the snapshot/journal pair, and starts journaling every
// entry the database admits from now on. The returned report says what was
// recovered and what was quarantined; only an unreadable directory or an
// I/O failure is an error. Close the store to stop journaling.
func OpenStore(dir string, db *DB) (*Store, RecoveryReport, error) {
	var rec RecoveryReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, err
	}
	// Stale temp files are debris from snapshots interrupted before their
	// rename; the previous snapshot is still authoritative.
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}

	gens, lastValid, lastRecords, err := recoverDir(dir, db, &rec)
	if err != nil {
		return nil, rec, err
	}
	s := &Store{dir: dir, db: db}

	// Reuse the newest journal when its header is sound (truncating any torn
	// tail); otherwise start a fresh generation.
	if n := len(gens); n > 0 && lastValid >= walHeaderLen {
		s.walGen = gens[n-1]
		s.wal, err = openJournalForAppend(filepath.Join(dir, walName(s.walGen)), lastValid, lastRecords)
	} else {
		s.walGen = 1
		if n := len(gens); n > 0 {
			s.walGen = gens[n-1] + 1
		}
		s.wal, err = createJournal(filepath.Join(dir, walName(s.walGen)))
		if err == nil {
			err = syncDir(dir)
		}
	}
	if err != nil {
		return nil, rec, err
	}

	db.SetEntryHook(s.append)
	return s, rec, nil
}

// recoverDir loads the snapshot and replays every journal generation in dir
// into db, merging the results into rec. It returns the generation list plus
// the newest journal's valid-prefix length and record count, which OpenStore
// needs to resume appending. Purely read-only.
func recoverDir(dir string, db *DB, rec *RecoveryReport) (gens []int, lastValid int64, lastRecords int, err error) {
	snapPath := filepath.Join(dir, SnapshotName)
	if f, err := os.Open(snapPath); err == nil {
		rep, lerr := db.LoadSnapshot(f)
		f.Close()
		if lerr != nil {
			// An unreadable snapshot quarantines wholesale, but the journals
			// may still hold replayable entries; keep going.
			rep.Truncated = true
			rep.problem("snapshot unreadable: %v", lerr)
		}
		rec.Snapshot = rep
	} else if !os.IsNotExist(err) {
		return nil, 0, 0, err
	}

	gens, err = walGenerations(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, gen := range gens {
		f, err := os.Open(filepath.Join(dir, walName(gen)))
		if err != nil {
			return nil, 0, 0, err
		}
		rep, valid, _ := replayJournal(f, db)
		f.Close()
		rec.Journals++
		mergeReports(&rec.Journal, rep)
		lastValid, lastRecords = valid, rep.Loaded+rep.Quarantined
	}
	return gens, lastValid, lastRecords, nil
}

// CheckStore recovers the store in dir into db under the same quarantine
// policy as OpenStore, but strictly read-only: nothing is created, truncated,
// or deleted, and no journaling starts. Every admitted entry has passed its
// checksum, structural validation, and functional verification, so a clean
// report means the store recovers losslessly. This is the engine behind
// `mcdb verify`. The error is non-nil only when the directory or one of its
// files cannot be read at all.
func CheckStore(dir string, db *DB) (RecoveryReport, error) {
	var rec RecoveryReport
	if _, err := os.Stat(dir); err != nil {
		return rec, err
	}
	_, _, _, err := recoverDir(dir, db, &rec)
	return rec, err
}

// walGenerations lists the journal generation numbers present in dir,
// ascending.
func walGenerations(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"))
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, p := range names {
		suffix := strings.TrimPrefix(filepath.Base(p), walPrefix)
		if gen, err := strconv.Atoi(suffix); err == nil && gen > 0 {
			gens = append(gens, gen)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

func mergeReports(dst *LoadReport, src LoadReport) {
	dst.Loaded += src.Loaded
	dst.Quarantined += src.Quarantined
	dst.Truncated = dst.Truncated || src.Truncated
	for _, p := range src.Problems {
		if len(dst.Problems) < maxProblems {
			dst.Problems = append(dst.Problems, p)
		}
	}
}

// append journals one newly admitted entry. It runs under db.mu via the
// entry hook, so it must not call back into the DB. An append failure cannot
// be returned to the synthesis path that triggered it; it is counted and
// surfaced through Info and the store metrics instead — the entry stays
// usable in memory and will be covered by the next snapshot.
func (s *Store) append(e *Entry) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return // closed
	}
	if err := s.wal.Append(e); err != nil {
		s.appendErrs.Add(1)
		msg := err.Error()
		s.lastAppendErr.Store(&msg)
		return
	}
	s.appends.Add(1)
}

// SnapshotInfo describes one completed snapshot.
type SnapshotInfo struct {
	Path     string
	Entries  int
	Retired  int // journal files deleted because the snapshot covers them
	Duration time.Duration
}

// Snapshot checkpoints the database: rotate to a fresh journal generation,
// write every current entry to a new snapshot file with atomic replace, then
// delete the journal generations the snapshot covers. Safe to call while
// the database serves lookups; concurrent snapshots serialize.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	start := time.Now()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Rotate first: every entry admitted after this instant lands in the new
	// generation, so the entry-set copy below covers everything in the
	// retired generations.
	s.walMu.Lock()
	if s.wal == nil {
		s.walMu.Unlock()
		return SnapshotInfo{}, fmt.Errorf("mcdb: store is closed")
	}
	oldWal := s.wal
	retired, err := walGenerations(s.dir)
	if err == nil {
		s.walGen++
		s.wal, err = createJournal(filepath.Join(s.dir, walName(s.walGen)))
		if err == nil {
			err = syncDir(s.dir)
		} else {
			s.wal = oldWal // keep journaling into the old generation
			s.walGen--
		}
	}
	s.walMu.Unlock()
	if err != nil {
		return SnapshotInfo{}, err
	}
	oldWal.Close()

	path := filepath.Join(s.dir, SnapshotName)
	n, err := s.db.SaveFile(path)
	if err != nil {
		// The failed snapshot retired nothing: the old generations are still
		// on disk and still replay over the previous snapshot.
		return SnapshotInfo{}, err
	}
	deleted := 0
	for _, gen := range retired {
		if gen < s.currentGen() {
			if os.Remove(filepath.Join(s.dir, walName(gen))) == nil {
				deleted++
			}
		}
	}
	s.snapshots.Add(1)
	s.lastSnapshot.Store(time.Now().UnixNano())
	s.snapEntries.Store(int64(n))
	return SnapshotInfo{Path: path, Entries: n, Retired: deleted, Duration: time.Since(start)}, nil
}

// Dir returns the data directory the store persists into. Sibling
// persistence layers (the result cache) co-locate their files there so one
// -data-dir flag governs everything that survives a restart.
func (s *Store) Dir() string { return s.dir }

func (s *Store) currentGen() int {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.walGen
}

// Close stops journaling and closes the journal file. The database remains
// usable; new entries simply stop being journaled.
func (s *Store) Close() error {
	s.db.SetEntryHook(nil)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Info is a point-in-time view of the store for dashboards and the
// /admin/dbinfo endpoint.
type Info struct {
	Dir             string    `json:"dir"`
	JournalGen      int       `json:"journal_generation"`
	JournalRecords  int       `json:"journal_records"` // in the current generation
	Appends         int64     `json:"appends_total"`
	AppendErrors    int64     `json:"append_errors_total"`
	LastAppendError string    `json:"last_append_error,omitempty"`
	Snapshots       int64     `json:"snapshots_total"`
	LastSnapshot    time.Time `json:"last_snapshot,omitzero"`
	SnapshotEntries int64     `json:"snapshot_entries"`
}

// Info returns current store statistics.
func (s *Store) Info() Info {
	s.walMu.Lock()
	gen, records := s.walGen, 0
	if s.wal != nil {
		records = s.wal.records
	}
	s.walMu.Unlock()
	info := Info{
		Dir:             s.dir,
		JournalGen:      gen,
		JournalRecords:  records,
		Appends:         s.appends.Load(),
		AppendErrors:    s.appendErrs.Load(),
		Snapshots:       s.snapshots.Load(),
		SnapshotEntries: s.snapEntries.Load(),
	}
	if p := s.lastAppendErr.Load(); p != nil {
		info.LastAppendError = *p
	}
	if ns := s.lastSnapshot.Load(); ns != 0 {
		info.LastSnapshot = time.Unix(0, ns)
	}
	return info
}

// RegisterMetrics exposes the store's counters on r. Like
// DB.RegisterMetrics, registration is idempotent per registry.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("mcdb_journal_appends_total",
		"Entries durably appended to the write-ahead journal.",
		func() float64 { return float64(s.appends.Load()) })
	r.CounterFunc("mcdb_journal_append_errors_total",
		"Journal appends that failed (entry stays in memory until the next snapshot).",
		func() float64 { return float64(s.appendErrs.Load()) })
	r.CounterFunc("mcdb_snapshots_total",
		"Snapshots completed (written and durably renamed).",
		func() float64 { return float64(s.snapshots.Load()) })
	r.GaugeFunc("mcdb_snapshot_entries",
		"Entries in the most recent completed snapshot.",
		func() float64 { return float64(s.snapEntries.Load()) })
}
