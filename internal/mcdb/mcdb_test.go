package mcdb

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
	"repro/internal/xag"
)

func TestExactSearchKnownFunctions(t *testing.T) {
	cases := []struct {
		name string
		f    tt.T
		mc   int
	}{
		{"const0", tt.Const0(3), 0},
		{"x0", tt.Var(0, 3), 0},
		{"parity3", tt.Var(0, 3).Xor(tt.Var(1, 3)).Xor(tt.Var(2, 3)), 0},
		{"and2", tt.Var(0, 2).And(tt.Var(1, 2)), 1},
		{"or2", tt.Var(0, 2).Or(tt.Var(1, 2)), 1},
		{"maj3", tt.New(0xe8, 3), 1},
		{"mux3", tt.New(0xd8, 3), 1}, // s ? a : b
		{"and3", tt.New(0x80, 3), 2},
		{"and4", tt.New(0x8000, 4), 3},
		{"fulladd-sum", tt.New(0x96, 3), 0}, // parity, affine
	}
	for _, c := range cases {
		e, exact, aborted := ExactSearch(c.f, 3, 10_000_000)
		if e == nil {
			t.Fatalf("%s: no circuit found (aborted=%v)", c.name, aborted)
		}
		if !exact {
			t.Fatalf("%s: result not proven exact", c.name)
		}
		if e.MC() != c.mc {
			t.Fatalf("%s: MC = %d, want %d", c.name, e.MC(), c.mc)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestExactSearchProvesLowerBounds(t *testing.T) {
	// and3 = x0x1x2 has MC exactly 2: the k=1 search must exhaust.
	e, _, aborted := ExactSearch(tt.New(0x80, 3), 1, 10_000_000)
	if e != nil {
		t.Fatalf("and3 realized with 1 AND: impossible")
	}
	if aborted {
		t.Fatalf("k≤1 search should exhaust without budget abort")
	}
}

func TestExactSearchRandom4Var(t *testing.T) {
	// Every 4-variable function has MC ≤ 3 (Turan & Peralta); the exact
	// search must find a proven-optimal circuit for each.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		f := tt.New(rng.Uint64(), 4)
		e, exact, _ := ExactSearch(f, 3, 50_000_000)
		if e == nil {
			t.Fatalf("f=%s: no circuit within 3 ANDs", f)
		}
		if !exact {
			t.Fatalf("f=%s: not proven exact", f)
		}
		if e.MC() > 3 {
			t.Fatalf("f=%s: MC %d > 3", f, e.MC())
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("f=%s: %v", f, err)
		}
	}
}

func TestDBLookupFullAdderCout(t *testing.T) {
	db := New(Options{})
	maj := tt.New(0xe8, 3)
	e, res := db.Lookup(maj)
	if e.MC() != 1 {
		t.Fatalf("majority lookup MC = %d, want 1 (paper Fig. 2)", e.MC())
	}
	if got := res.Tr.Apply(res.Repr); got != maj {
		t.Fatalf("transform does not rebuild majority")
	}
}

func TestDBAndCost5AndChain(t *testing.T) {
	db := New(Options{})
	// x0·x1·x2·x3·x4 has MC 4 = n−1 (tight for the AND chain).
	f := tt.Const1(5)
	for i := 0; i < 5; i++ {
		f = f.And(tt.Var(i, 5))
	}
	if got := db.AndCost(f); got != 4 {
		t.Fatalf("AndCost(and5) = %d, want 4", got)
	}
	e := db.EntryFor(f)
	if e.MC() != 4 {
		t.Fatalf("EntryFor(and5) MC = %d, want 4", e.MC())
	}
}

func TestDBEntriesVerify(t *testing.T) {
	db := New(Options{SearchBudget: 200_000})
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(5)
		f := tt.New(rng.Uint64(), n)
		e := db.EntryFor(f)
		if err := e.Verify(); err != nil {
			t.Fatalf("n=%d f=%s: %v", n, f, err)
		}
	}
}

func TestRealizeEquivalence(t *testing.T) {
	db := New(Options{SearchBudget: 500_000})
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(5)
		f := tt.New(rng.Uint64(), n)
		entry, res := db.Lookup(f)

		net := xag.New()
		leaves := make([]xag.Lit, n)
		for i := range leaves {
			leaves[i] = net.AddPI("")
		}
		out := Realize(net, entry, res.Tr, leaves)
		net.AddPO(out, "f")

		for m := 0; m < 1<<uint(n); m++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			if net.EvalBools(in)[0] != f.Get(m) {
				t.Fatalf("n=%d f=%s: realized circuit differs at minterm %d", n, f, m)
			}
		}
		if got := net.NumAnds(); got > entry.MC() {
			t.Fatalf("n=%d f=%s: realization uses %d ANDs > entry MC %d",
				n, f, got, entry.MC())
		}
	}
}

func TestRealizeMajorityUsesOneAnd(t *testing.T) {
	// The paper's headline example: MAJ realized via its representative
	// needs a single AND plus XOR/inverter dressing.
	db := New(Options{})
	entry, res := db.Lookup(tt.New(0xe8, 3))
	net := xag.New()
	leaves := []xag.Lit{net.AddPI("a"), net.AddPI("b"), net.AddPI("cin")}
	out := Realize(net, entry, res.Tr, leaves)
	net.AddPO(out, "cout")
	if got := net.NumAnds(); got != 1 {
		t.Fatalf("realized majority uses %d ANDs, want 1", got)
	}
}

func TestDBCostMonotonicity(t *testing.T) {
	// AndCost of a function never exceeds support size − 1 + cost of the
	// shrunken core... sanity bound: MC ≤ 2^n/2-ish; use the trivial Davio
	// bound MC(f) ≤ n·2^(n-1) and a concrete small bound for n ≤ 4: MC ≤ 3.
	db := New(Options{})
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 200; trial++ {
		f := tt.New(rng.Uint64(), 4)
		if c := db.AndCost(f); c > 3 {
			t.Fatalf("4-var AndCost %d > 3 for %s", c, f)
		}
	}
}

func TestEntryXorCost(t *testing.T) {
	e := &Entry{
		N:     3,
		Steps: []Step{{L: 0b0110, M: 0b1001}}, // (x0⊕x1) ∧ (1⊕x2)
		Out:   0b10110,                        // a0 ⊕ x0 ⊕ x1
	}
	// L: 2 terms → 1 XOR; M: const+1 var → 0; Out: 3 terms → 2 XORs.
	if got := e.XorCost(); got != 3 {
		t.Fatalf("XorCost = %d, want 3", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := New(Options{})
	f := tt.New(0xe8, 3)
	db.Lookup(f)
	db.Lookup(f)
	if db.Stats().ClassCacheHits == 0 {
		t.Fatalf("second lookup should hit the classification cache")
	}
	if got := db.Stats().Classified; got != 1 {
		t.Fatalf("Classified = %d, want 1", got)
	}
}
