package mcdb

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/sat"
	"repro/internal/tt"
)

// This file implements the SAT-based exact-synthesis refiner (ROADMAP item
// 1, after Soeken's "Determining the Multiplicative Complexity of Boolean
// Functions using SAT"). The exhaustive search in search.go proves
// optimality only up to MaxExactK AND gates within its operand budget;
// harder classes fall back to Davio decomposition and silently cap every
// downstream AND count. The refiner revisits those entries offline: it
// encodes "∃ an SLP with exactly r AND steps computing f" as CNF, walks r
// downward from the stored MC, decodes each satisfying model into a circuit
// that must pass the same entryFromPersisted validation gate as any on-disk
// record, and hot-swaps improvements into the warm DB. When r−1 comes back
// UNSAT within the conflict budget — or the degree lower bound
// MC(f) ≥ deg(f)−1 closes the gap — the entry is stamped proven-optimal
// (Exact) and marked Refined so the proof survives snapshot/journal cycles.

// DefaultRefineBudget is the per-SAT-query conflict budget used when
// RefineOptions.Budget is unset. It is enough to prove optimality for every
// class of up to four variables and for most five-variable classes, while
// keeping a single query well under a second.
const DefaultRefineBudget = 20000

// maxRefineSteps bounds the CNF size: entries with more AND steps than this
// are skipped (the encoding grows with r·2ⁿ and such entries are far from
// provable within any reasonable budget anyway).
const maxRefineSteps = 12

// RefineOptions configures one DB.Refine pass.
type RefineOptions struct {
	// Budget is the conflict budget per SAT query (≤0: DefaultRefineBudget).
	Budget int64
	// WorstN, when positive, refines only the N candidates with the widest
	// optimality gap (stored MC minus the degree lower bound).
	WorstN int
	// Reprove includes entries already stamped Exact, re-deriving their
	// optimality proof with the SAT backend. The differential tests use it
	// to cross-check the two synthesis backends against each other: any
	// "improvement" the solver finds below an exhaustive-search proof is an
	// inconsistency and shows up as Improved > 0.
	Reprove bool
	// MaxSteps skips entries with more AND steps (≤0: maxRefineSteps).
	MaxSteps int
}

// RefineReport summarizes one DB.Refine pass.
type RefineReport struct {
	Candidates int `json:"candidates"` // entries eligible for refinement
	Attempted  int `json:"attempted"`  // entries actually worked on
	Improved   int `json:"improved"`   // entries replaced by a smaller circuit
	Proven     int `json:"proven"`     // entries stamped proven-optimal
	Unknown    int `json:"unknown"`    // entries left unproven (budget or ctx expired)
	Rejected   int `json:"rejected"`   // decoded models the validation gate refused
	AndsSaved  int `json:"ands_saved"` // total AND gates removed
}

// Refine runs one SAT-based refinement pass over the warm database. It
// never holds db.mu while solving, so lookups and synthesis proceed
// concurrently; improved circuits are re-verified and merged through the
// same Pareto-front insertion as every other entry. The pass stops early
// when ctx is cancelled.
func (db *DB) Refine(ctx context.Context, opts RefineOptions) RefineReport {
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultRefineBudget
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 || maxSteps > maxRefineSteps {
		maxSteps = maxRefineSteps
	}
	cands := db.refineCandidates(opts.Reprove, maxSteps, opts.WorstN)
	rep := RefineReport{Candidates: len(cands)}
	for _, e := range cands {
		if ctx.Err() != nil {
			break
		}
		rep.Attempted++
		db.stats.refineAttempts.Add(1)
		out := db.refineOne(ctx, e, budget)
		if out.improved {
			rep.Improved++
			rep.AndsSaved += out.saved
			db.stats.refineImproved.Add(1)
			db.stats.refineAndsSaved.Add(int64(out.saved))
		}
		if out.proven {
			rep.Proven++
			db.stats.refineProven.Add(1)
		}
		if out.unknown {
			rep.Unknown++
			db.stats.refineUnknown.Add(1)
		}
		if out.rejected {
			rep.Rejected++
			db.stats.refineRejected.Add(1)
		}
	}
	return rep
}

// refineCandidates snapshots the refinable front heads: non-affine entries
// within the step bound, excluding proven ones unless reprove is set. The
// order is deterministic — widest optimality gap first (those stand to gain
// the most), then fewer variables (cheaper queries), then function bits.
func (db *DB) refineCandidates(reprove bool, maxSteps, worstN int) []*Entry {
	db.mu.Lock()
	var out []*Entry
	for _, list := range db.entries {
		e := list[0]
		if e.MC() == 0 || e.MC() > maxSteps {
			continue // affine entries are optimal by construction
		}
		if e.Exact && !reprove {
			continue
		}
		out = append(out, e)
	}
	db.mu.Unlock()
	gap := func(e *Entry) int { return e.MC() - degreeBound(e.F) }
	sort.Slice(out, func(i, j int) bool {
		if g1, g2 := gap(out[i]), gap(out[j]); g1 != g2 {
			return g1 > g2
		}
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].F.Bits < out[j].F.Bits
	})
	if worstN > 0 && len(out) > worstN {
		out = out[:worstN]
	}
	return out
}

// degreeBound returns the multiplicative-complexity lower bound
// MC(f) ≥ deg(f)−1 (Schnorr; Boyar–Peralta), clamped at zero.
func degreeBound(f tt.T) int {
	if lb := f.Degree() - 1; lb > 0 {
		return lb
	}
	return 0
}

type refineOutcome struct {
	improved bool
	proven   bool
	unknown  bool
	rejected bool
	saved    int
}

// refineOne walks one entry's AND count downward. Every SAT model is
// decoded and re-verified through the entryFromPersisted gate before it can
// replace the current circuit; an UNSAT answer at r−1 (or reaching the
// degree bound) proves optimality. Unknown answers stop the walk without a
// proof — whatever improvement was found so far is still kept.
func (db *DB) refineOne(ctx context.Context, e *Entry, budget int64) refineOutcome {
	var out refineOutcome
	f := e.F
	lb := degreeBound(f)
	cur := e
	for cur.MC() > lb {
		enc := newSLPEncoder(f, cur.MC()-1)
		switch enc.s.Solve(ctx, budget) {
		case sat.Sat:
			model := append([]bool(nil), enc.s.Model()...)
			// Fault-injection point: tests corrupt the decoded model here to
			// prove the validation gate quarantines bad circuits.
			faultinject.Inject(faultinject.PointRefineModel, model)
			ne, err := enc.decode(model)
			if err != nil {
				out.rejected = true
				return out
			}
			ne.Refined = true
			out.saved += cur.MC() - ne.MC()
			out.improved = true
			cur = ne
			continue
		case sat.Unsat:
			out.proven = true
		case sat.Unknown:
			out.unknown = true
		}
		break
	}
	if cur.MC() == lb {
		// The degree bound meets the circuit: optimal without a SAT proof.
		out.proven, out.unknown = true, false
	}
	if out.improved {
		cur.Exact = out.proven
		if !db.adoptRefined(cur) {
			// Lost a race against a concurrent insert of an equal-or-better
			// circuit; nothing to record.
			out.improved = false
			out.saved = 0
		}
	} else if out.proven && (!e.Exact || !e.Refined) {
		// Same circuit, stronger provenance: re-admit a copy carrying the
		// proof bits so the stamp reaches the journal and the next snapshot.
		cp := *e
		cp.Exact = true
		cp.Refined = true
		db.adoptRefined(&cp)
	}
	return out
}

// adoptRefined re-verifies a refined circuit and merges it into its
// function's Pareto front under db.mu, making it visible to concurrent
// lookups and to the Store's journal hook.
func (db *DB) adoptRefined(e *Entry) bool {
	if err := e.Verify(); err != nil {
		// Unreachable if the decode gate did its job; never store it.
		return false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.addEntryLocked(e)
}

// slpEncoder builds the CNF for "∃ an SLP with exactly r AND steps
// computing f" over the basis [1, x_0..x_{n-1}, a_0..a_{r-1}] of slp.go.
//
// Variables: selL[t][i] / selM[t][i] select basis element i into the left /
// right operand mask of step t (the growing prefix of the basis visible to
// that step); selOut[i] selects into the affine output mask. For every
// minterm m, auxiliary variables carry each step's output value through a
// Tseitin XOR chain per operand and one AND gadget per step, and a unit
// clause pins the output parity to f(m).
//
// Symmetry breaking (all satisfiability-preserving per step count, see
// DESIGN.md §16): operand masks are non-empty, every step output is used by
// a later operand or the output mask, and operand masks are lexicographically
// ordered L ≤ M.
type slpEncoder struct {
	n, r   int
	f      tt.T
	s      *sat.Solver
	selL   [][]int // [t][i], i over the 1+n+t basis elements visible to step t
	selM   [][]int
	selOut []int // [i] over the full 1+n+r basis
}

// newSLPEncoder encodes f with exactly r steps. r must keep the basis mask
// within 32 bits (guaranteed by maxRefineSteps ≤ 31−n for n ≤ tt.MaxVars).
func newSLPEncoder(f tt.T, r int) *slpEncoder {
	n := f.N
	e := &slpEncoder{n: n, r: r, f: f, s: sat.New()}
	newVars := func(k int) []int {
		vs := make([]int, k)
		for i := range vs {
			vs[i] = e.s.NewVar()
		}
		return vs
	}
	e.selL = make([][]int, r)
	e.selM = make([][]int, r)
	for t := 0; t < r; t++ {
		e.selL[t] = newVars(1 + n + t)
		e.selM[t] = newVars(1 + n + t)
	}
	e.selOut = newVars(1 + n + r)

	for t := 0; t < r; t++ {
		e.addNonEmpty(e.selL[t])
		e.addNonEmpty(e.selM[t])
		e.addLiveness(t)
		e.addLexOrder(e.selL[t], e.selM[t])
	}

	// Semantics: one value ladder per minterm.
	av := make([][]sat.Lit, r)
	for t := range av {
		av[t] = make([]sat.Lit, 1<<uint(n))
	}
	for m := 0; m < 1<<uint(n); m++ {
		for t := 0; t < r; t++ {
			lv := e.operandParity(e.selL[t], av, m)
			mv := e.operandParity(e.selM[t], av, m)
			av[t][m] = e.and(lv, mv)
		}
		ov := e.operandParity(e.selOut, av, m)
		if f.Bits>>uint(m)&1 == 1 {
			e.s.AddClause(ov)
		} else {
			e.s.AddClause(ov.Not())
		}
	}
	return e
}

// addNonEmpty forbids the all-zero operand mask (a zero operand makes the
// step constant 0; any such circuit rewrites to one with non-empty masks at
// the same step count).
func (e *slpEncoder) addNonEmpty(sel []int) {
	lits := make([]sat.Lit, len(sel))
	for i, v := range sel {
		lits[i] = sat.Pos(v)
	}
	e.s.AddClause(lits...)
}

// addLiveness requires step t's output to be selected by a later operand or
// by the output mask. Dead steps can always be re-packed into live padding
// (gᵢ₊₁ = gᵢ ∧ 1 chains absorbed by the output mask), so this preserves
// satisfiability at every step count while pruning heavily.
func (e *slpEncoder) addLiveness(t int) {
	idx := 1 + e.n + t
	var lits []sat.Lit
	for u := t + 1; u < e.r; u++ {
		lits = append(lits, sat.Pos(e.selL[u][idx]), sat.Pos(e.selM[u][idx]))
	}
	lits = append(lits, sat.Pos(e.selOut[idx]))
	e.s.AddClause(lits...)
}

// addLexOrder enforces L ≤ M comparing selector bits from the highest basis
// index down, via an equal-prefix chain. AND is commutative, so one of the
// two operand orders always survives.
func (e *slpEncoder) addLexOrder(selL, selM []int) {
	s := e.s
	eqAbove := sat.Pos(s.NewVar())
	s.AddClause(eqAbove) // vacuously equal above the top bit
	for k := len(selL) - 1; k >= 0; k-- {
		l, m := sat.Pos(selL[k]), sat.Pos(selM[k])
		// While the prefix is equal, L may not have a 1 where M has a 0.
		s.AddClause(eqAbove.Not(), l.Not(), m)
		if k == 0 {
			break
		}
		eq := sat.Pos(s.NewVar())
		// Prefix stays equal when this bit matches (either polarity).
		s.AddClause(eq, eqAbove.Not(), l, m)
		s.AddClause(eq, eqAbove.Not(), l.Not(), m.Not())
		eqAbove = eq
	}
}

// operandParity returns a literal equal to the GF(2) sum that the selector
// set sel contributes on minterm m: the constant basis element is 1 on every
// minterm, input x_i contributes on minterms with bit i set, and step
// outputs contribute their (selector ∧ value) product. The constant term
// makes the chain non-empty for every operand.
func (e *slpEncoder) operandParity(sel []int, av [][]sat.Lit, m int) sat.Lit {
	cur := sat.Pos(sel[0]) // basis element 0: the constant 1
	for i := 1; i < len(sel); i++ {
		var term sat.Lit
		if i <= e.n {
			if m>>uint(i-1)&1 == 0 {
				continue // x_{i-1} is 0 on this minterm: no contribution
			}
			term = sat.Pos(sel[i])
		} else {
			term = e.and(sat.Pos(sel[i]), av[i-1-e.n][m])
		}
		cur = e.xor(cur, term)
	}
	return cur
}

// and returns a fresh literal constrained to a ∧ b.
func (e *slpEncoder) and(a, b sat.Lit) sat.Lit {
	x := sat.Pos(e.s.NewVar())
	e.s.AddClause(x.Not(), a)
	e.s.AddClause(x.Not(), b)
	e.s.AddClause(x, a.Not(), b.Not())
	return x
}

// xor returns a fresh literal constrained to a ⊕ b.
func (e *slpEncoder) xor(a, b sat.Lit) sat.Lit {
	x := sat.Pos(e.s.NewVar())
	e.s.AddClause(x.Not(), a, b)
	e.s.AddClause(x.Not(), a.Not(), b.Not())
	e.s.AddClause(x, a.Not(), b)
	e.s.AddClause(x, a, b.Not())
	return x
}

// decode turns a satisfying model into a verified entry. It is the refiner's
// admission gate: selector assignments become basis masks, and the resulting
// circuit goes through entryFromPersisted — the same bounds/Validate/Verify
// gate every on-disk record passes — so a wrong model (or a corrupted one;
// see PointRefineModel) is rejected, never admitted. decode never panics,
// whatever the model contents or length.
func (e *slpEncoder) decode(model []bool) (*Entry, error) {
	bit := func(v int) uint32 {
		if v < len(model) && model[v] {
			return 1
		}
		return 0
	}
	mask := func(sel []int) uint32 {
		var out uint32
		for i, v := range sel {
			out |= bit(v) << uint(i)
		}
		return out
	}
	steps := make([]Step, e.r)
	for t := 0; t < e.r; t++ {
		steps[t] = Step{L: mask(e.selL[t]), M: mask(e.selM[t])}
	}
	pe := persistedEntry{N: e.n, FBits: e.f.Bits, Steps: steps, Out: mask(e.selOut)}
	ne, err := entryFromPersisted(pe)
	if err != nil {
		return nil, fmt.Errorf("refine: model decode: %v", err)
	}
	return ne, nil
}
