package mcdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// The snapshot format is the durable on-disk form of the database: a
// whole-file header followed by independently checksummed entry records, so
// one flipped bit quarantines one entry instead of discarding the file.
//
//	header (24 bytes, little-endian):
//	    magic    [8]byte  "MCDBSNP1"
//	    version  uint32   snapshotVersion
//	    count    uint32   number of entry records that follow
//	    reserved uint32   zero
//	    crc      uint32   CRC32C of the preceding 20 bytes
//	record (8-byte frame + payload):
//	    length   uint32   payload bytes (20 + 8·steps)
//	    crc      uint32   CRC32C of the payload
//	    payload:
//	        n        uint8
//	        flags    uint8   bit 0: AND count proven minimal
//	                         bit 1: touched by the SAT refiner (version ≥ 2)
//	        steps    uint16
//	        fbits    uint64  truth table of the computed function
//	        out      uint32  affine output mask
//	        anddepth uint32  declared multiplicative depth (0 = unset)
//	        step[i]  uint32 L, uint32 M
//
// Snapshots are written atomically (temp file → fsync → rename → directory
// fsync, see SaveFile), so a reader only ever observes the previous complete
// snapshot or the new complete snapshot, never a torn one.

var snapMagic = [8]byte{'M', 'C', 'D', 'B', 'S', 'N', 'P', '1'}

const (
	// snapshotVersion 2 added the Refined provenance flag (payload flags
	// bit 1). Version-1 files load unchanged — the bit was reserved-zero —
	// so loaders accept every version from minSnapshotVersion up.
	snapshotVersion    = 2
	minSnapshotVersion = 1
	snapHeaderLen      = 24
	recordFrameLen     = 8
	entryFixedLen      = 20
	// maxRecordLen bounds the framed payload length far above any legal
	// entry (≤ 31 steps fits the 32-bit basis masks) but low enough that a
	// corrupted length field cannot trigger a huge allocation.
	maxRecordLen = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrUnreadable marks a file damaged beyond per-entry recovery: a missing or
// corrupt snapshot header. Per-entry damage is never reported through an
// error — it quarantines the affected entries in a LoadReport instead.
var ErrUnreadable = errors.New("mcdb: unreadable snapshot")

// LoadReport summarizes one quarantining load: how many entries were
// admitted, how many were quarantined (bad checksum, failed validation, or
// wrong declared depth), and whether the record stream ended before the
// declared count (a torn file). Problems holds one human-readable line per
// quarantined or truncated record, capped at maxProblems.
type LoadReport struct {
	Loaded      int
	Quarantined int
	Truncated   bool
	Problems    []string
}

const maxProblems = 32

func (r *LoadReport) problem(format string, args ...any) {
	if len(r.Problems) < maxProblems {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// Clean reports whether the load admitted every record it was promised.
func (r LoadReport) Clean() bool { return r.Quarantined == 0 && !r.Truncated }

// encodeEntryPayload renders one entry in the snapshot/journal record
// payload encoding.
func encodeEntryPayload(pe persistedEntry) []byte {
	b := make([]byte, entryFixedLen+8*len(pe.Steps))
	b[0] = uint8(pe.N)
	if pe.Exact {
		b[1] |= 1
	}
	if pe.Refined {
		b[1] |= 2
	}
	binary.LittleEndian.PutUint16(b[2:], uint16(len(pe.Steps)))
	binary.LittleEndian.PutUint64(b[4:], pe.FBits)
	binary.LittleEndian.PutUint32(b[12:], pe.Out)
	binary.LittleEndian.PutUint32(b[16:], uint32(pe.AndDepth))
	for i, st := range pe.Steps {
		binary.LittleEndian.PutUint32(b[entryFixedLen+8*i:], st.L)
		binary.LittleEndian.PutUint32(b[entryFixedLen+8*i+4:], st.M)
	}
	return b
}

// decodeEntryPayload parses a record payload. It only checks framing
// consistency; semantic validation happens in entryFromPersisted.
func decodeEntryPayload(b []byte) (persistedEntry, error) {
	if len(b) < entryFixedLen {
		return persistedEntry{}, fmt.Errorf("payload of %d bytes is shorter than the fixed header", len(b))
	}
	nsteps := int(binary.LittleEndian.Uint16(b[2:]))
	if len(b) != entryFixedLen+8*nsteps {
		return persistedEntry{}, fmt.Errorf("payload of %d bytes does not match %d declared steps", len(b), nsteps)
	}
	pe := persistedEntry{
		N:        int(b[0]),
		Exact:    b[1]&1 == 1,
		Refined:  b[1]&2 == 2,
		FBits:    binary.LittleEndian.Uint64(b[4:]),
		Out:      binary.LittleEndian.Uint32(b[12:]),
		AndDepth: int(binary.LittleEndian.Uint32(b[16:])),
		Steps:    make([]Step, nsteps),
	}
	for i := range pe.Steps {
		pe.Steps[i].L = binary.LittleEndian.Uint32(b[entryFixedLen+8*i:])
		pe.Steps[i].M = binary.LittleEndian.Uint32(b[entryFixedLen+8*i+4:])
	}
	return pe, nil
}

// writeRecord frames and writes one payload: length, CRC32C, payload bytes.
func writeRecord(w io.Writer, payload []byte) error {
	var frame [recordFrameLen]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRecord reads one framed record. A clean EOF at the frame boundary
// returns io.EOF; a frame that cannot be completed (torn tail, insane
// length) returns io.ErrUnexpectedEOF; a completed frame whose checksum or
// payload structure is wrong returns the record with recErr set, so callers
// can quarantine it and keep reading.
func readRecord(r io.Reader) (payload []byte, recErr error, err error) {
	return readRecordMax(r, maxRecordLen)
}

func readRecordMax(r io.Reader, maxLen uint32) (payload []byte, recErr error, err error) {
	var frame [recordFrameLen]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(frame[0:])
	wantCRC := binary.LittleEndian.Uint32(frame[4:])
	if length > maxLen {
		// The length field itself is garbage: resynchronization is
		// impossible, treat the rest of the stream as torn.
		return nil, nil, io.ErrUnexpectedEOF
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, io.ErrUnexpectedEOF
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return payload, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got), nil
	}
	return payload, nil, nil
}

// WriteRecord frames and writes one payload in the snapshot record format:
// 4-byte length, 4-byte CRC32C, payload bytes. Exported for sibling
// packages (the result cache) that persist their own record streams with
// the same integrity guarantees.
func WriteRecord(w io.Writer, payload []byte) error {
	return writeRecord(w, payload)
}

// ReadRecord reads one record framed by WriteRecord, bounding the payload
// at maxLen bytes. Error semantics match the snapshot loader: io.EOF at a
// clean frame boundary, io.ErrUnexpectedEOF for a torn or unframeable tail,
// and a non-nil recErr (with the payload) for a completed frame that fails
// its checksum — so callers can quarantine the record and keep reading.
func ReadRecord(r io.Reader, maxLen uint32) (payload []byte, recErr error, err error) {
	return readRecordMax(r, maxLen)
}

// WriteFileAtomic writes a file through the snapshot layer's atomic-replace
// protocol: temp file in the same directory, fsync, rename over path, fsync
// the directory. Either the old bytes or the complete new bytes survive a
// crash, never a mix.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return writeFileAtomic(path, write)
}

// WriteSnapshot writes every entry of every Pareto front to w in the
// checksummed snapshot format and returns the entry count. The entry set is
// copied up front, so concurrent lookups proceed while the bytes stream out.
func (db *DB) WriteSnapshot(w io.Writer) (int, error) {
	return writeSnapshotEntries(w, db.snapshotEntries())
}

func writeSnapshotEntries(w io.Writer, entries []*Entry) (int, error) {
	var hdr [snapHeaderLen]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	for i, e := range entries {
		if err := writeRecord(w, encodeEntryPayload(persistedOf(e))); err != nil {
			return 0, err
		}
		// Crash point: a process killed here leaves a torn partial file; the
		// atomic-replace protocol must keep the previous snapshot authoritative.
		faultinject.Inject(faultinject.PointSnapshotWrite, i)
	}
	return len(entries), nil
}

// LoadSnapshot merges a checksummed snapshot into the database under the
// quarantine policy: a record whose checksum, structure, validation, or
// functional verification fails is counted and skipped — never admitted,
// never fatal — and a stream that ends early is reported as truncated. Only
// a damaged header makes the whole file unreadable (ErrUnreadable). The
// class of a quarantined entry simply loses its cached circuit; the next
// lookup resynthesizes it through the exact-search/affine-Davio pipeline.
func (db *DB) LoadSnapshot(r io.Reader) (LoadReport, error) {
	var rep LoadReport
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return rep, fmt.Errorf("%w: short header: %v", ErrUnreadable, err)
	}
	if !bytes.Equal(hdr[:8], snapMagic[:]) {
		return rep, fmt.Errorf("%w: bad magic %q", ErrUnreadable, hdr[:8])
	}
	if got, want := crc32.Checksum(hdr[:20], crcTable), binary.LittleEndian.Uint32(hdr[20:]); got != want {
		return rep, fmt.Errorf("%w: header checksum mismatch (stored %08x, computed %08x)", ErrUnreadable, want, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v < minSnapshotVersion || v > snapshotVersion {
		return rep, fmt.Errorf("%w: unsupported snapshot version %d", ErrUnreadable, v)
	}
	count := int(binary.LittleEndian.Uint32(hdr[12:]))

	for i := 0; i < count; i++ {
		payload, recErr, err := readRecord(r)
		if err != nil {
			rep.Truncated = true
			rep.problem("record %d/%d: stream ends mid-record", i+1, count)
			db.stats.quarantined.Add(int64(count - i))
			rep.Quarantined += count - i
			break
		}
		db.admitQuarantining(&rep, payload, recErr, fmt.Sprintf("record %d/%d", i+1, count))
	}
	return rep, nil
}

// admitQuarantining runs one record through decode → validate → admit,
// folding any failure into the report as a quarantined entry.
func (db *DB) admitQuarantining(rep *LoadReport, payload []byte, recErr error, where string) {
	quarantine := func(err error) {
		rep.Quarantined++
		db.stats.quarantined.Add(1)
		rep.problem("%s: %v", where, err)
	}
	if recErr != nil {
		quarantine(recErr)
		return
	}
	pe, err := decodeEntryPayload(payload)
	if err != nil {
		quarantine(err)
		return
	}
	e, err := entryFromPersisted(pe)
	if err != nil {
		quarantine(err)
		return
	}
	db.mu.Lock()
	db.addEntryLocked(e)
	db.mu.Unlock()
	rep.Loaded++
	db.stats.recovered.Add(1)
}

// SaveFile writes a snapshot of the database to path atomically: the bytes
// go to a temp file in the same directory, the temp file is fsynced, renamed
// over path, and the directory is fsynced. A crash at any instant leaves
// either the old file or the new one — never a torn mix — so Ctrl-C during a
// save can no longer destroy a database.
func (db *DB) SaveFile(path string) (int, error) {
	entries := db.snapshotEntries()
	n := 0
	err := writeFileAtomic(path, func(w io.Writer) error {
		var err error
		n, err = writeSnapshotEntries(w, entries)
		return err
	})
	return n, err
}

// writeFileAtomic writes via temp file → fsync → rename → directory fsync.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	// Crash point: the temp file is complete and durable but the rename has
	// not happened; recovery must still see the previous file.
	faultinject.Inject(faultinject.PointSnapshotRename, path)
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives a power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile loads a database file, sniffing the format: a snapshot-magic file
// goes through the quarantining snapshot loader, anything else through the
// strict legacy gob loader (whose all-or-nothing failure becomes an
// ErrUnreadable-wrapped error so callers can treat both formats uniformly).
func (db *DB) LoadFile(path string) (LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return LoadReport{}, err
	}
	defer f.Close()
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return LoadReport{}, err
	}
	if n == len(magic) && bytes.Equal(magic[:], snapMagic[:]) {
		return db.LoadSnapshot(f)
	}
	loaded, err := db.Load(f)
	if err != nil {
		return LoadReport{Loaded: loaded}, fmt.Errorf("%w: %v", ErrUnreadable, err)
	}
	db.stats.recovered.Add(int64(loaded))
	return LoadReport{Loaded: loaded}, nil
}
