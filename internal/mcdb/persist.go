package mcdb

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tt"
)

// The paper's XAG_DB is "created once and can be reused for several
// rewriting calls", shipped as a 12 MB file. Save and Load provide the same
// workflow here: a database warmed up on one run (all synthesized class
// entries) can be persisted and reloaded, skipping re-synthesis. The
// classification cache is intentionally not persisted — classifications are
// cheap compared to synthesis and keying the cache by raw function would
// bloat the file.

// persistedEntry is the on-disk form of an Entry. AndDepth is declared
// metadata (version ≥ 2): zero means "unset" (version-1 files and affine
// circuits), any other value must match the depth recomputed from the steps.
type persistedEntry struct {
	N        int
	FBits    uint64
	Steps    []Step
	Out      uint32
	Exact    bool
	AndDepth int
	Refined  bool // version ≥ 3; gob leaves it false for older files
}

type persistedDB struct {
	Version int
	Entries []persistedEntry
}

// persistVersion 2 added the AndDepth field and multiple entries per
// function (the Pareto front); version 3 added the Refined provenance bit
// stamped by the SAT refiner. Older files load fine: gob leaves the missing
// AndDepth at zero (treated as unset) and Refined at false.
const persistVersion = 3

// persistedOf converts a stored entry to its on-disk form.
func persistedOf(e *Entry) persistedEntry {
	return persistedEntry{
		N: e.N, FBits: e.F.Bits, Steps: e.Steps, Out: e.Out, Exact: e.Exact,
		AndDepth: e.AndDepth(), Refined: e.Refined,
	}
}

// snapshotEntries copies the current entry set — every circuit of every
// Pareto front — so encoders can work without holding db.mu. Entries are
// immutable once stored, so the shallow copy is safe to read concurrently.
func (db *DB) snapshotEntries() []*Entry {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []*Entry
	for _, list := range db.entries {
		out = append(out, list...)
	}
	return out
}

// Save writes all synthesized circuit entries — every circuit of every
// Pareto front — to w in the legacy gob format. New code should prefer
// WriteSnapshot (checksummed records, quarantining loader) or SaveFile
// (atomic replace); Save remains for streams and compatibility.
func (db *DB) Save(w io.Writer) error {
	p := persistedDB{Version: persistVersion}
	for _, e := range db.snapshotEntries() {
		p.Entries = append(p.Entries, persistedOf(e))
	}
	return gob.NewEncoder(w).Encode(p)
}

// Load merges previously saved entries into the database. Every entry is
// re-verified against its declared function before being accepted, so a
// corrupted or hand-edited file cannot inject a wrong circuit.
func (db *DB) Load(r io.Reader) (int, error) {
	var p persistedDB
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return 0, fmt.Errorf("mcdb: load: %v", err)
	}
	if p.Version < 1 || p.Version > persistVersion {
		return 0, fmt.Errorf("mcdb: load: unsupported version %d", p.Version)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, pe := range p.Entries {
		e, err := entryFromPersisted(pe)
		if err != nil {
			return n, fmt.Errorf("mcdb: load: %v", err)
		}
		if db.addEntryLocked(e) {
			n++
		}
	}
	return n, nil
}

// entryFromPersisted rebuilds and fully checks one on-disk entry: bounds on
// the variable count, structural invariants (Validate, so a corrupted record
// can never panic downstream), the functional check (Verify, so a corrupted
// record can never inject a wrong circuit), and the declared-depth
// cross-check. Every loader — legacy gob, snapshot, and journal replay —
// admits entries through this one gate.
func entryFromPersisted(pe persistedEntry) (*Entry, error) {
	if pe.N < 0 || pe.N > tt.MaxVars {
		return nil, fmt.Errorf("entry with %d variables", pe.N)
	}
	e := &Entry{
		N:       pe.N,
		F:       tt.New(pe.FBits, pe.N),
		Steps:   pe.Steps,
		Out:     pe.Out,
		Exact:   pe.Exact,
		Refined: pe.Refined,
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("rejected entry for %s: %v", e.F, err)
	}
	if err := e.Verify(); err != nil {
		return nil, fmt.Errorf("rejected entry for %s: %v", e.F, err)
	}
	// The declared AndDepth is redundant metadata: zero means unset
	// (version-1 files, affine circuits), anything else must match the
	// depth recomputed from the steps or the record is corrupted.
	if pe.AndDepth != 0 && pe.AndDepth != e.AndDepth() {
		return nil, fmt.Errorf("rejected entry for %s: declared AND depth %d, circuit has %d",
			e.F, pe.AndDepth, e.AndDepth())
	}
	return e, nil
}

// NumEntries returns the number of cached circuit entries across all Pareto
// fronts (at least one per synthesized function, more when alternates with
// distinct (MC, AndDepth) trade-offs are stored).
func (db *DB) NumEntries() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, list := range db.entries {
		n += len(list)
	}
	return n
}
