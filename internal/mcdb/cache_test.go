package mcdb

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/spectral"
	"repro/internal/tt"
)

// TestClassCacheConcurrentLookups hammers one database from many goroutines
// with overlapping function sets (run under -race in CI). Every goroutine
// must observe the same entry for the same function, and the totals must
// balance: each distinct class-cache key is classified exactly once.
func TestClassCacheConcurrentLookups(t *testing.T) {
	db := New(Options{SearchBudget: 200_000})
	const goroutines = 8
	const perG = 60

	// A shared pool of functions, so goroutines race on the same keys.
	rng := rand.New(rand.NewSource(61))
	fns := make([]tt.T, 40)
	for i := range fns {
		fns[i] = tt.New(rng.Uint64(), 1+rng.Intn(5))
	}

	type obs struct {
		f  tt.T
		mc int
	}
	results := make([][]obs, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perG; i++ {
				f := fns[rng.Intn(len(fns))]
				e, res := db.Lookup(f)
				if !res.Complete {
					continue
				}
				if got := res.Tr.Apply(res.Repr); got != f {
					t.Errorf("g%d: transform does not rebuild %s", g, f)
					return
				}
				results[g] = append(results[g], obs{f, e.MC()})
			}
		}(g)
	}
	wg.Wait()

	mcOf := map[tt.T]int{}
	for g := range results {
		for _, o := range results[g] {
			if prev, ok := mcOf[o.f]; ok && prev != o.mc {
				t.Fatalf("function %s observed with MC %d and %d", o.f, prev, o.mc)
			}
			mcOf[o.f] = o.mc
		}
	}

	s := db.Stats()
	// Synthesis classifies internally too (Davio recursion), so the exact
	// call count is not observable from the outside; the invariants are that
	// a lost insertion race still counts as classified (never below the
	// number of cached keys) and that overlapping lookups hit the cache.
	if s.Classified < db.classes.len() {
		t.Fatalf("Classified = %d < %d cached keys", s.Classified, db.classes.len())
	}
	if s.ClassCacheHits == 0 {
		t.Fatalf("no cache hits across %d overlapping lookups", goroutines*perG)
	}
}

// TestClassCacheFirstInsertWins: when two goroutines race to classify the
// same function, the loser adopts the winner's result, so later readers see
// a single stable value.
func TestClassCacheFirstInsertWins(t *testing.T) {
	c := newClassCache()
	k := key{bits: 0xe8, n: 3}
	a := spectral.Result{Complete: true}
	b := spectral.Result{Complete: false}
	if got, inserted := c.put(k, a); !inserted || got.Complete != a.Complete {
		t.Fatalf("first put rejected: %+v %v", got, inserted)
	}
	if got, inserted := c.put(k, b); inserted || got.Complete != a.Complete {
		t.Fatalf("second put displaced the first: %+v %v", got, inserted)
	}
	if got, ok := c.get(k); !ok || got.Complete != a.Complete {
		t.Fatalf("get after racing puts: %+v %v", got, ok)
	}
}

// TestClassCacheSharding: keys spread across shards (no degenerate
// single-shard hashing), and len sums all shards.
func TestClassCacheSharding(t *testing.T) {
	c := newClassCache()
	rng := rand.New(rand.NewSource(62))
	const n = 4096
	for i := 0; i < n; i++ {
		c.put(key{bits: rng.Uint64(), n: int8(1 + rng.Intn(6))}, spectral.Result{})
	}
	if got := c.len(); got != n {
		// Collisions of random 64-bit keys are negligible at this scale.
		t.Fatalf("len = %d, want %d", got, n)
	}
	used := 0
	for i := range c.shards {
		if len(c.shards[i].m) > 0 {
			used++
		}
	}
	if used < classShardCount/2 {
		t.Fatalf("only %d/%d shards used — bad shard hash", used, classShardCount)
	}
}

// TestConcurrentSaveDuringLookups: persistence can run while lookups are in
// flight (both take db.mu; the race detector checks the schedule).
func TestConcurrentSaveDuringLookups(t *testing.T) {
	db := New(Options{SearchBudget: 100_000})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 30; i++ {
				db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var sink discard
			if err := db.Save(&sink); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			db.NumEntries()
		}
	}()
	wg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
