package mcdb

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/tt"
)

// TestQuickEchelonSpanInvariant: after inserting arbitrary vectors, a
// vector reports as contained iff it equals the XOR of the rows its mask
// selects, and insertion order never affects membership.
func TestQuickEchelonSpanInvariant(t *testing.T) {
	f := func(vecs []uint64, probe uint64) bool {
		if len(vecs) > 12 {
			vecs = vecs[:12]
		}
		var e echelon
		basis := []uint64{}
		for i, v := range vecs {
			if e.insert(v, 1<<uint(i)) {
				basis = append(basis, 0)
			}
			basis = basis[:0]
			_ = basis
		}
		mask, ok := e.contains(probe)
		if !ok {
			return true // nothing to cross-check
		}
		// The reported mask must reproduce probe as a XOR of the original
		// generator vectors.
		var re uint64
		for mask != 0 {
			i := bits.TrailingZeros32(mask)
			mask &= mask - 1
			if i >= len(vecs) {
				return false
			}
			re ^= vecs[i]
		}
		return re == probe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEchelonRollback: inserting then rolling back restores exactly
// the previous span.
func TestQuickEchelonRollback(t *testing.T) {
	f := func(base []uint64, extra []uint64, probe uint64) bool {
		if len(base) > 8 {
			base = base[:8]
		}
		if len(extra) > 6 {
			extra = extra[:6]
		}
		var e echelon
		for i, v := range base {
			e.insert(v, 1<<uint(i))
		}
		_, before := e.contains(probe)
		mark := e.snapshot()
		for i, v := range extra {
			e.insert(v, 1<<uint(16+i))
		}
		e.rollback(mark)
		_, after := e.contains(probe)
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEntryAndCostBound: the database's circuit for any function never
// beats the degree lower bound and always verifies.
func TestQuickEntryAndCostBound(t *testing.T) {
	db := New(Options{SearchBudget: 100_000})
	f := func(bitsArg uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%5
		fn := tt.New(bitsArg, n)
		e := db.EntryFor(fn)
		if err := e.Verify(); err != nil {
			return false
		}
		lb := fn.Degree() - 1
		if lb < 0 {
			lb = 0
		}
		return e.MC() >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
