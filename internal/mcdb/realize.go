package mcdb

import (
	"repro/internal/spectral"
	"repro/internal/xag"
)

// Realize instantiates, in net, a circuit computing the function that was
// classified into (entry, tr), over the given leaf literals. This is step 9
// of the paper's Algorithm 1: the representative circuit plus the AND-free
// gates corresponding to the recorded affine operations.
//
// The number of AND gates created is at most entry.MC() (structural hashing
// may reuse existing gates).
func Realize(net *xag.Network, entry *Entry, tr spectral.Transform, leaves []xag.Lit) xag.Lit {
	if len(leaves) != tr.N || entry.N != tr.N {
		panic("mcdb: Realize arity mismatch")
	}
	inputs := make([]xag.Lit, tr.N)
	for i := 0; i < tr.N; i++ {
		z := xag.Const0
		for j := 0; j < tr.N; j++ {
			if tr.InputMask[i]>>uint(j)&1 == 1 {
				z = net.Xor(z, leaves[j])
			}
		}
		inputs[i] = z.NotIf(tr.InputCompl[i])
	}
	out := entry.Materialize(net, inputs)
	for j := 0; j < tr.N; j++ {
		if tr.OutputMask>>uint(j)&1 == 1 {
			out = net.Xor(out, leaves[j])
		}
	}
	return out.NotIf(tr.OutputCompl)
}
