package mcdb

import (
	"repro/internal/spectral"
	"repro/internal/xag"
)

// Realize instantiates, in net, a circuit computing the function that was
// classified into (entry, tr), over the given leaf literals. This is step 9
// of the paper's Algorithm 1: the representative circuit plus the AND-free
// gates corresponding to the recorded affine operations.
//
// The number of AND gates created is at most entry.MC() (structural hashing
// may reuse existing gates).
func Realize(net *xag.Network, entry *Entry, tr spectral.Transform, leaves []xag.Lit) xag.Lit {
	if len(leaves) != tr.N || entry.N != tr.N {
		panic("mcdb: Realize arity mismatch")
	}
	inputs := make([]xag.Lit, tr.N)
	for i := 0; i < tr.N; i++ {
		z := xag.Const0
		for j := 0; j < tr.N; j++ {
			if tr.InputMask[i]>>uint(j)&1 == 1 {
				z = net.Xor(z, leaves[j])
			}
		}
		inputs[i] = z.NotIf(tr.InputCompl[i])
	}
	out := entry.Materialize(net, inputs)
	for j := 0; j < tr.N; j++ {
		if tr.OutputMask>>uint(j)&1 == 1 {
			out = net.Xor(out, leaves[j])
		}
	}
	return out.NotIf(tr.OutputCompl)
}

// RealizedAndDepth returns the multiplicative depth at the root literal that
// Realize(net, entry, tr, leaves) produces, given the AND depths of the leaf
// literals. The affine transform adds no AND gates, so entry input i inherits
// the deepest leaf selected by tr.InputMask[i], each SLP step adds one level,
// and the output combination takes the maximum over the selected steps and
// the leaves XOR-ed in by tr.OutputMask.
//
// The value is an upper bound on the depth of the structurally hashed result:
// strashing may reuse existing, shallower gates.
func RealizedAndDepth(entry *Entry, tr spectral.Transform, leafDepths []int) int {
	if len(leafDepths) != tr.N || entry.N != tr.N {
		panic("mcdb: RealizedAndDepth arity mismatch")
	}
	inputDepths := make([]int, tr.N)
	for i := 0; i < tr.N; i++ {
		m := 0
		for j := 0; j < tr.N; j++ {
			if tr.InputMask[i]>>uint(j)&1 == 1 && leafDepths[j] > m {
				m = leafDepths[j]
			}
		}
		inputDepths[i] = m
	}
	out := maskDepth(entry.basisDepths(inputDepths), entry.Out)
	for j := 0; j < tr.N; j++ {
		if tr.OutputMask>>uint(j)&1 == 1 && leafDepths[j] > out {
			out = leafDepths[j]
		}
	}
	return out
}
