package mcdb

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/tt"
	"repro/internal/xag"
)

// materializedAndDepth builds the entry in a fresh network over PIs held at
// known depths (simulated by chains of AND gates) and recounts — the
// structural reference Entry.AndDepth and RealizedAndDepth must bound.
func entryDepthByMaterialize(t *testing.T, e *Entry) int {
	t.Helper()
	net := xag.New()
	inputs := make([]xag.Lit, e.N)
	for i := range inputs {
		inputs[i] = net.AddPI("")
	}
	out := e.Materialize(net, inputs)
	net.AddPO(out, "f")
	return net.AndDepth(out.Node())
}

func TestEntryAndDepth(t *testing.T) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 60; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		e := db.EntryFor(f)
		got := e.AndDepth()
		// Materialization may come out shallower than the mask-level count
		// when strashing merges gates, never deeper.
		if built := entryDepthByMaterialize(t, e); built > got {
			t.Fatalf("%s: AndDepth()=%d but materialized depth %d", f, got, built)
		}
		if got > e.MC() {
			t.Fatalf("%s: AndDepth %d exceeds MC %d", f, got, e.MC())
		}
		if got == 0 && e.MC() != 0 {
			t.Fatalf("%s: zero depth with %d AND steps", f, e.MC())
		}
	}
}

func TestRealizedAndDepthBoundsConstruction(t *testing.T) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(4)
		f := tt.New(rng.Uint64(), n)
		if _, _, ok := f.IsAffine(); ok {
			continue
		}
		e, res := db.Lookup(f)

		// Leaves at random depths, built as AND chains off real PIs.
		net := xag.New()
		leaves := make([]xag.Lit, n)
		leafDepths := make([]int, n)
		for j := range leaves {
			l := net.AddPI("")
			d := rng.Intn(4)
			for k := 0; k < d; k++ {
				l = net.And(l, net.AddPI(""))
			}
			leaves[j] = l
			leafDepths[j] = net.AndDepth(l.Node())
			if leafDepths[j] != d {
				t.Fatalf("leaf chain depth %d, want %d", leafDepths[j], d)
			}
		}
		predicted := RealizedAndDepth(e, res.Tr, leafDepths)
		out := Realize(net, e, res.Tr, leaves)
		net.AddPO(out, "f")
		if actual := net.AndDepth(out.Node()); actual > predicted {
			t.Fatalf("%s: realized depth %d exceeds prediction %d", f, actual, predicted)
		}
	}
}

func TestRealizedAndDepthIdentityTransform(t *testing.T) {
	db := New(Options{})
	e := db.EntryFor(tt.New(0x80, 3)) // x0 ∧ x1 ∧ x2
	tr := identityTransform(3)
	if d := RealizedAndDepth(e, tr, []int{0, 0, 0}); d != e.AndDepth() {
		t.Fatalf("identity transform at depth zero: %d != AndDepth %d", d, e.AndDepth())
	}
	// The deepest leaf feeds through at least one AND step.
	if d := RealizedAndDepth(e, tr, []int{5, 0, 0}); d < 6 {
		t.Fatalf("deep leaf ignored: realized depth %d", d)
	}
}

func TestParetoFrontAndLookupModel(t *testing.T) {
	// f = x0∧x1∧x2∧x3 over 4 vars: minterm 15 of 16.
	f := tt.New(1<<15, 4)
	db := New(Options{})
	head := db.EntryFor(f)
	if head.MC() != 3 {
		t.Fatalf("AND-4 synthesized with MC %d, want 3", head.MC())
	}

	// A serial depth-3 circuit: a0 = x0∧x1, a1 = a0∧x2, a2 = a1∧x3.
	serial := &Entry{
		N: 4, F: f,
		Steps: []Step{
			{L: 1 << 1, M: 1 << 2},
			{L: 1 << 5, M: 1 << 3},
			{L: 1 << 6, M: 1 << 4},
		},
		Out: 1 << 7,
	}
	if err := serial.Verify(); err != nil {
		t.Fatal(err)
	}
	// A balanced depth-2 circuit: a0 = x0∧x1, a1 = x2∧x3, a2 = a0∧a1.
	balanced := &Entry{
		N: 4, F: f,
		Steps: []Step{
			{L: 1 << 1, M: 1 << 2},
			{L: 1 << 3, M: 1 << 4},
			{L: 1 << 5, M: 1 << 6},
		},
		Out: 1 << 7,
	}
	if err := balanced.Verify(); err != nil {
		t.Fatal(err)
	}

	headDepth := head.AndDepth()
	switch headDepth {
	case 2:
		// Head is already balanced: the serial alternate is dominated.
		if added, err := db.AddAlternate(serial); err != nil || added {
			t.Fatalf("dominated serial alternate accepted (added=%v, err=%v)", added, err)
		}
	case 3:
		// Head is serial: the balanced alternate must join the front and win
		// depth-model selection while MC selection keeps the head.
		if added, err := db.AddAlternate(balanced); err != nil || !added {
			t.Fatalf("balanced alternate rejected (added=%v, err=%v)", added, err)
		}
	default:
		t.Fatalf("AND-4 head has depth %d, want 2 or 3", headDepth)
	}

	// Whatever the synthesis produced, after the exchange above the front
	// must answer: MC model → MC 3, depth model → depth 2 with MC 3.
	eMC, _ := db.LookupModel(f, cost.MC())
	if eMC.MC() != 3 {
		t.Fatalf("MC-model selection returned MC %d", eMC.MC())
	}
	eD, _ := db.LookupModel(f, cost.Depth())
	if eD.AndDepth() != 2 || eD.MC() != 3 {
		t.Fatalf("depth-model selection returned (MC %d, depth %d), want (3, 2)",
			eD.MC(), eD.AndDepth())
	}
	// Lookup (MC default) agrees with LookupModel(MC).
	eDefault, _ := db.Lookup(f)
	if eDefault.MC() != eMC.MC() || eDefault.AndDepth() != eMC.AndDepth() {
		t.Fatalf("Lookup disagrees with LookupModel(MC)")
	}

	// The front survives persistence: both circuits round-trip.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(Options{})
	if _, err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	eD2, _ := fresh.LookupModel(f, cost.Depth())
	if eD2.AndDepth() != eD.AndDepth() || eD2.MC() != eD.MC() {
		t.Fatalf("depth selection changed across save/load: (%d,%d) -> (%d,%d)",
			eD.MC(), eD.AndDepth(), eD2.MC(), eD2.AndDepth())
	}
}

func TestAddAlternateRejectsWrongCircuit(t *testing.T) {
	db := New(Options{})
	wrong := &Entry{
		N: 2, F: tt.New(0x6, 2), // XOR, but the circuit computes AND
		Steps: []Step{{L: 1 << 1, M: 1 << 2}},
		Out:   1 << 3,
	}
	if added, err := db.AddAlternate(wrong); err == nil || added {
		t.Fatalf("wrong alternate accepted (added=%v, err=%v)", added, err)
	}
}

func TestLoadRejectsWrongDeclaredDepth(t *testing.T) {
	and2 := persistedEntry{
		N: 2, FBits: 0x8, Steps: []Step{{L: 1 << 1, M: 1 << 2}}, Out: 1 << 3,
		AndDepth: 3, // the circuit's depth is 1
	}
	fresh := New(Options{})
	if n, err := fresh.Load(bytes.NewReader(saveEntries(t, and2))); err == nil {
		t.Fatalf("mismatched declared AND depth accepted (%d entries)", n)
	}
	// Zero means unset (version-1 files) and is always accepted.
	and2.AndDepth = 0
	if n, err := fresh.Load(bytes.NewReader(saveEntries(t, and2))); err != nil || n != 1 {
		t.Fatalf("unset AND depth rejected: n=%d err=%v", n, err)
	}
}
