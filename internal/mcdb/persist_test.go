package mcdb

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(41))
	var fns []tt.T
	for i := 0; i < 40; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		fns = append(fns, f)
		db.Lookup(f)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{})
	loaded, err := fresh.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != db.NumEntries() {
		t.Fatalf("loaded %d entries, want %d", loaded, db.NumEntries())
	}
	// Lookups in the fresh DB must now hit the cache (no re-synthesis) and
	// agree on MC.
	for _, f := range fns {
		eOld, _ := db.Lookup(f)
		bs := fresh.Stats()
		before := bs.ExactSyntheses + bs.DavioFallbacks + bs.BoundedExact
		eNew, _ := fresh.Lookup(f)
		as := fresh.Stats()
		after := as.ExactSyntheses + as.DavioFallbacks + as.BoundedExact
		if after != before {
			t.Fatalf("lookup of %s re-synthesized after load", f)
		}
		if eNew.MC() != eOld.MC() {
			t.Fatalf("MC changed across save/load: %d vs %d", eNew.MC(), eOld.MC())
		}
	}
}

func TestLoadRejectsCorruptedEntry(t *testing.T) {
	db := New(Options{})
	db.Lookup(tt.New(0xe8, 3))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload region until verification fails or the
	// decode errors; either way Load must not accept a wrong circuit.
	raw := buf.Bytes()
	fresh := New(Options{})
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)-2] ^= 0xff
	if n, err := fresh.Load(bytes.NewReader(corrupted)); err == nil && n > 0 {
		// If it loaded anyway, every accepted entry must still verify.
		for _, list := range fresh.entries {
			for _, e := range list {
				if verr := e.Verify(); verr != nil {
					t.Fatalf("corrupted entry accepted: %v", verr)
				}
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	db := New(Options{})
	if _, err := db.Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestLoadTruncatedFiles(t *testing.T) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 20; i++ {
		db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every proper prefix must be rejected or yield only verified entries —
	// and never panic.
	for _, frac := range []int{0, 1, 2, 5, 10, 25, 50, 75, 90, 99} {
		cut := len(raw) * frac / 100
		fresh := New(Options{})
		n, err := fresh.Load(bytes.NewReader(raw[:cut]))
		if err == nil && cut < len(raw) {
			t.Fatalf("truncation at %d%% accepted silently (%d entries)", frac, n)
		}
		for _, list := range fresh.entries {
			for _, e := range list {
				if verr := e.Verify(); verr != nil {
					t.Fatalf("truncation at %d%% let a broken entry in: %v", frac, verr)
				}
			}
		}
	}
}

// saveEntries writes a persistedDB containing exactly the given entries,
// bypassing the synthesis pipeline so tests can craft invalid circuits.
func saveEntries(t *testing.T, entries ...persistedEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(persistedDB{Version: persistVersion, Entries: entries}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadValidatesEntryInvariants(t *testing.T) {
	and2 := persistedEntry{ // x0 ∧ x1: the well-formed baseline
		N: 2, FBits: 0x8, Steps: []Step{{L: 1 << 1, M: 1 << 2}}, Out: 1 << 3,
	}
	if n, err := New(Options{}).Load(bytes.NewReader(saveEntries(t, and2))); err != nil || n != 1 {
		t.Fatalf("baseline entry rejected: n=%d err=%v", n, err)
	}
	cases := []struct {
		name string
		e    persistedEntry
	}{
		{"variable count above MaxVars", persistedEntry{N: 7, FBits: 0x8}},
		{"negative variable count", persistedEntry{N: -1, FBits: 0}},
		{"step references itself", persistedEntry{
			N: 2, FBits: 0x8, Steps: []Step{{L: 1 << 3, M: 1 << 2}}, Out: 1 << 3,
		}},
		{"step references later step", persistedEntry{
			N: 2, FBits: 0x8, Steps: []Step{{L: 1 << 4, M: 1 << 2}, {L: 1 << 1, M: 1 << 2}}, Out: 1 << 3,
		}},
		{"output references undefined element", persistedEntry{
			N: 2, FBits: 0x8, Steps: []Step{{L: 1 << 1, M: 1 << 2}}, Out: 1 << 4,
		}},
		{"too many steps for the mask width", persistedEntry{
			N: 6, FBits: 0x8, Steps: make([]Step, 26), Out: 1,
		}},
		{"wrong function", persistedEntry{
			N: 2, FBits: 0x6, Steps: []Step{{L: 1 << 1, M: 1 << 2}}, Out: 1 << 3,
		}},
	}
	for _, tc := range cases {
		fresh := New(Options{})
		n, err := fresh.Load(bytes.NewReader(saveEntries(t, tc.e)))
		if err == nil {
			t.Errorf("%s: accepted (%d entries)", tc.name, n)
		}
		if len(fresh.entries) != 0 {
			t.Errorf("%s: invalid entry left in the database", tc.name)
		}
	}
}

func TestLoadKeepsBetterCircuit(t *testing.T) {
	// A valid but wasteful circuit for x0 ∧ x1 (two redundant AND steps)
	// must not displace the cached optimal one.
	db := New(Options{})
	e, _ := db.Lookup(tt.New(0x8, 2))
	optMC := e.MC()
	wasteful := persistedEntry{
		N: 2, FBits: 0x8,
		Steps: []Step{{L: 1 << 1, M: 1 << 2}, {L: 1 << 3, M: 1 << 3}},
		Out:   1 << 4,
	}
	if _, err := db.Load(bytes.NewReader(saveEntries(t, wasteful))); err != nil {
		t.Fatal(err)
	}
	e2, _ := db.Lookup(tt.New(0x8, 2))
	if e2.MC() != optMC {
		t.Fatalf("wasteful loaded entry displaced the optimal one: MC %d -> %d", optMC, e2.MC())
	}
}
