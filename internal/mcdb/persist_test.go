package mcdb

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(41))
	var fns []tt.T
	for i := 0; i < 40; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		fns = append(fns, f)
		db.Lookup(f)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{})
	loaded, err := fresh.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != db.NumEntries() {
		t.Fatalf("loaded %d entries, want %d", loaded, db.NumEntries())
	}
	// Lookups in the fresh DB must now hit the cache (no re-synthesis) and
	// agree on MC.
	for _, f := range fns {
		eOld, _ := db.Lookup(f)
		before := fresh.Stats.ExactSyntheses + fresh.Stats.DavioFallbacks + fresh.Stats.BoundedExact
		eNew, _ := fresh.Lookup(f)
		after := fresh.Stats.ExactSyntheses + fresh.Stats.DavioFallbacks + fresh.Stats.BoundedExact
		if after != before {
			t.Fatalf("lookup of %s re-synthesized after load", f)
		}
		if eNew.MC() != eOld.MC() {
			t.Fatalf("MC changed across save/load: %d vs %d", eNew.MC(), eOld.MC())
		}
	}
}

func TestLoadRejectsCorruptedEntry(t *testing.T) {
	db := New(Options{})
	db.Lookup(tt.New(0xe8, 3))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload region until verification fails or the
	// decode errors; either way Load must not accept a wrong circuit.
	raw := buf.Bytes()
	fresh := New(Options{})
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)-2] ^= 0xff
	if n, err := fresh.Load(bytes.NewReader(corrupted)); err == nil && n > 0 {
		// If it loaded anyway, every accepted entry must still verify.
		for _, e := range fresh.entries {
			if verr := e.Verify(); verr != nil {
				t.Fatalf("corrupted entry accepted: %v", verr)
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	db := New(Options{})
	if _, err := db.Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatalf("garbage accepted")
	}
}
