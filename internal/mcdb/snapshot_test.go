package mcdb

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tt"
)

// warmDB synthesizes a spread of entries and returns the DB plus the looked
// up functions.
func warmDB(t testing.TB, seed int64, n int) (*DB, []tt.T) {
	t.Helper()
	db := New(Options{})
	rng := rand.New(rand.NewSource(seed))
	var fns []tt.T
	for i := 0; i < n; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		fns = append(fns, f)
		db.Lookup(f)
	}
	return db, fns
}

// verifyAllEntries fails the test if any stored entry does not compute its
// declared function.
func verifyAllEntries(t *testing.T, db *DB) {
	t.Helper()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, list := range db.entries {
		for _, e := range list {
			if err := e.Verify(); err != nil {
				t.Fatalf("stored entry does not verify: %v", err)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db, fns := warmDB(t, 51, 40)
	var buf bytes.Buffer
	n, err := db.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != db.NumEntries() {
		t.Fatalf("wrote %d entries, DB has %d", n, db.NumEntries())
	}

	fresh := New(Options{})
	rep, err := fresh.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Loaded != n {
		t.Fatalf("load not clean: %+v", rep)
	}
	if got := fresh.Stats().Recovered; got != n {
		t.Fatalf("Recovered stat = %d, want %d", got, n)
	}
	for _, f := range fns {
		eOld, _ := db.Lookup(f)
		before := fresh.Stats()
		eNew, _ := fresh.Lookup(f)
		after := fresh.Stats()
		if synth := func(s Stats) int { return s.ExactSyntheses + s.DavioFallbacks + s.BoundedExact }; synth(after) != synth(before) {
			t.Fatalf("lookup of %s re-synthesized after snapshot load", f)
		}
		if eNew.MC() != eOld.MC() || eNew.AndDepth() != eOld.AndDepth() {
			t.Fatalf("entry for %s changed across snapshot: MC %d->%d depth %d->%d",
				f, eOld.MC(), eNew.MC(), eOld.AndDepth(), eNew.AndDepth())
		}
	}
}

func TestSnapshotHeaderDamageIsUnreadable(t *testing.T) {
	db, _ := warmDB(t, 52, 10)
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte)
	}{
		{"magic", func(b []byte) { b[0] ^= 0xff }},
		{"version", func(b []byte) { b[8] ^= 0xff }},
		{"count", func(b []byte) { b[12] ^= 0xff }},
		{"crc", func(b []byte) { b[20] ^= 0xff }},
	} {
		raw := append([]byte(nil), buf.Bytes()...)
		tc.mut(raw)
		fresh := New(Options{})
		_, err := fresh.LoadSnapshot(bytes.NewReader(raw))
		if err == nil {
			t.Errorf("%s damage: load accepted", tc.name)
		}
		if fresh.NumEntries() != 0 {
			t.Errorf("%s damage: %d entries admitted from unreadable file", tc.name, fresh.NumEntries())
		}
	}
}

func TestSnapshotQuarantinesCorruptRecord(t *testing.T) {
	db, _ := warmDB(t, 53, 25)
	var buf bytes.Buffer
	n, err := db.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the record region: exactly the records
	// it hits quarantine, everything else loads.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[snapHeaderLen+(len(raw)-snapHeaderLen)/2] ^= 0x40
	fresh := New(Options{})
	rep, err := fresh.LoadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("per-record damage must not fail the load: %v", err)
	}
	if rep.Quarantined == 0 {
		t.Fatalf("corruption not detected: %+v", rep)
	}
	if rep.Loaded+rep.Quarantined != n {
		t.Fatalf("loaded %d + quarantined %d != written %d", rep.Loaded, rep.Quarantined, n)
	}
	if rep.Loaded == 0 {
		t.Fatalf("one flipped byte quarantined every record")
	}
	if got := fresh.Stats().Quarantined; got != rep.Quarantined {
		t.Fatalf("Quarantined stat = %d, want %d", got, rep.Quarantined)
	}
	if len(rep.Problems) == 0 {
		t.Fatalf("quarantine left no problem description")
	}
	verifyAllEntries(t, fresh)
}

func TestSnapshotTruncationRecoversPrefix(t *testing.T) {
	db, _ := warmDB(t, 54, 25)
	var buf bytes.Buffer
	n, err := db.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, frac := range []int{0, 1, 5, 25, 50, 75, 90, 99} {
		cut := snapHeaderLen + (len(raw)-snapHeaderLen)*frac/100
		fresh := New(Options{})
		rep, err := fresh.LoadSnapshot(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("truncation at %d%%: %v", frac, err)
		}
		if frac < 100 && !rep.Truncated {
			t.Fatalf("truncation at %d%% not reported: %+v", frac, rep)
		}
		if rep.Loaded+rep.Quarantined != n {
			t.Fatalf("truncation at %d%%: loaded %d + quarantined %d != %d", frac, rep.Loaded, rep.Quarantined, n)
		}
		verifyAllEntries(t, fresh)
	}
}

func TestSaveFileIsAtomicAndLoadFileSniffs(t *testing.T) {
	dir := t.TempDir()
	db, fns := warmDB(t, 55, 15)
	path := filepath.Join(dir, "mc.snap")
	n, err := db.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(stale) != 0 {
		t.Fatalf("temp files left behind: %v", stale)
	}

	// Snapshot format loads through the sniffing entry point.
	fresh := New(Options{})
	rep, err := fresh.LoadFile(path)
	if err != nil || rep.Loaded != n {
		t.Fatalf("LoadFile(snapshot) = %+v, %v", rep, err)
	}

	// Legacy gob files load through the same entry point.
	legacy := filepath.Join(dir, "legacy.db")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fresh2 := New(Options{})
	rep2, err := fresh2.LoadFile(legacy)
	if err != nil || rep2.Loaded != n {
		t.Fatalf("LoadFile(legacy gob) = %+v, %v", rep2, err)
	}
	for _, fn := range fns {
		if e, _ := fresh2.Lookup(fn); e == nil {
			t.Fatalf("entry for %s missing after legacy load", fn)
		}
	}

	// Garbage is unreadable, not a panic.
	junk := filepath.Join(dir, "junk")
	os.WriteFile(junk, []byte("not a database"), 0o644)
	if _, err := New(Options{}).LoadFile(junk); err == nil {
		t.Fatal("garbage file accepted")
	}
}

// FuzzLoadSnapshot feeds mutated snapshots to the loader. Whatever the
// damage — truncation, bit flips, garbage — the loader must never panic and
// must never admit an entry whose checksum or validation fails (every
// admitted entry verifies against its declared function).
func FuzzLoadSnapshot(f *testing.F) {
	db, _ := warmDB(f, 56, 12)
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:snapHeaderLen])
	flipped := append([]byte(nil), valid...)
	flipped[snapHeaderLen+9] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("MCDBSNP1 but not really"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := New(Options{})
		rep, err := fresh.LoadSnapshot(bytes.NewReader(data))
		if err != nil && rep.Loaded != 0 {
			t.Fatalf("unreadable file admitted %d entries", rep.Loaded)
		}
		fresh.mu.Lock()
		defer fresh.mu.Unlock()
		for _, list := range fresh.entries {
			for _, e := range list {
				if verr := e.Verify(); verr != nil {
					t.Fatalf("admitted entry does not verify: %v", verr)
				}
			}
		}
	})
}
