package mcdb

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tt"
)

// The kill-9 e2e tests re-exec this test binary as a helper process that
// opens a store, synthesizes entries, and dies by SIGKILL at a registered
// crash point (armed via FAULTINJECT_CRASH). The parent then reopens the
// store and asserts the recovery invariant: every entry whose journal append
// completed before the kill — recorded in a manifest the helper fsyncs as it
// goes — is recovered without resynthesis, and nothing corrupt is admitted.

const (
	crashHelperEnv = "MCDB_CRASH_HELPER"
	crashDirEnv    = "MCDB_CRASH_DIR"
	crashModeEnv   = "MCDB_CRASH_MODE"
)

// TestCrashHelperProcess is not a test: it is the victim body, active only
// when re-exec'd with MCDB_CRASH_HELPER=1. It never returns normally when a
// crash point is armed.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("helper process body; run via the TestKill9* tests")
	}
	if _, err := faultinject.InstallCrashFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}
	dir := os.Getenv(crashDirEnv)
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}
	manifest, err := os.Create(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}

	rng := rand.New(rand.NewSource(97))
	synthesize := func(count int) {
		for i := 0; i < count; i++ {
			f := tt.New(rng.Uint64(), 3+rng.Intn(3))
			db.Lookup(f)
			// The lookup returned, so every entry it admitted has been
			// fsynced to the journal; only now does the function enter the
			// durable manifest the parent will check against.
			fmt.Fprintf(manifest, "%x %d\n", f.Bits, f.N)
			manifest.Sync()
		}
	}

	switch os.Getenv(crashModeEnv) {
	case "journal":
		// Dies mid-append at the armed firing, torn record on disk.
		synthesize(200)
	case "snapshot":
		// Populate, then die inside the snapshot temp-file write (or just
		// before the rename, depending on the armed point).
		synthesize(25)
		store.Snapshot()
	}
	// A crash was armed; reaching here means it never fired.
	fmt.Fprintln(os.Stderr, "helper survived: crash point never fired")
	os.Exit(4)
}

// runCrashHelper re-execs the test binary as a victim and asserts it died by
// SIGKILL, then returns the manifest of durably journaled functions.
func runCrashHelper(t *testing.T, dir, mode, crashSpec string) []tt.T {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"=1",
		crashDirEnv+"="+dir,
		crashModeEnv+"="+mode,
		faultinject.CrashEnv+"="+crashSpec,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly; expected SIGKILL at %s\n%s", crashSpec, out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("helper failed to run: %v\n%s", err, out)
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
		if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("helper died with %v, want SIGKILL\n%s", ee, out)
		}
	}

	f, err := os.Open(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		t.Fatalf("helper died before writing any manifest: %v", err)
	}
	defer f.Close()
	var fns []tt.T
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue // torn final line: that lookup's durability is not claimed
		}
		bits, err1 := strconv.ParseUint(fields[0], 16, 64)
		n, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			continue
		}
		fns = append(fns, tt.New(bits, n))
	}
	return fns
}

// assertRecoveredWithoutResynthesis reopens the store and checks the
// recovery invariant for the manifested functions.
func assertRecoveredWithoutResynthesis(t *testing.T, dir string, fns []tt.T) {
	t.Helper()
	db := New(Options{})
	store, rec, err := OpenStore(dir, db)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer store.Close()
	if rec.Snapshot.Quarantined != 0 || rec.Journal.Quarantined != 0 {
		t.Fatalf("kill -9 produced quarantinable corruption, not just a torn tail: %+v", rec)
	}
	verifyAllEntries(t, db)
	for _, f := range fns {
		before := db.Stats()
		e, _ := db.Lookup(f)
		after := db.Stats()
		synth := func(s Stats) int { return s.ExactSyntheses + s.DavioFallbacks + s.BoundedExact }
		if synth(after) != synth(before) {
			t.Fatalf("journaled entry for %s lost: lookup resynthesized", f)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("recovered entry for %s is wrong: %v", f, err)
		}
	}
	if len(fns) == 0 {
		t.Fatal("manifest empty: the crash fired before any entry was journaled, proving nothing")
	}
}

func TestKill9MidJournalAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	// The 20th append dies mid-record: a healthy run of appends first, then
	// a genuine torn tail. (The workload produces ~36 appends total.)
	fns := runCrashHelper(t, dir, "journal", faultinject.PointJournalAppend+":20")
	assertRecoveredWithoutResynthesis(t, dir, fns)
}

func TestKill9MidSnapshotWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	fns := runCrashHelper(t, dir, "snapshot", faultinject.PointSnapshotWrite+":10")
	assertRecoveredWithoutResynthesis(t, dir, fns)
}

func TestKill9BeforeSnapshotRename(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	fns := runCrashHelper(t, dir, "snapshot", faultinject.PointSnapshotRename+":1")
	assertRecoveredWithoutResynthesis(t, dir, fns)
}
