package mcdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/spectral"
	"repro/internal/tt"
)

// randomRenaming applies a random input permutation and input/output
// complementation — the subgroup the semi-canonical key quotients out.
func randomRenaming(rng *rand.Rand, f tt.T) tt.T {
	out := f.Permute(rng.Perm(f.N))
	for i := 0; i < f.N; i++ {
		if rng.Intn(2) == 1 {
			out = out.FlipVar(i)
		}
	}
	if rng.Intn(2) == 1 {
		out = out.Not()
	}
	return out
}

// TestTwoLevelClassifyCorrectAndCacheIndependent checks the two invariants
// the semi-canonical cache must hold: every returned transform rebuilds the
// queried function from its representative, and the result for a function is
// identical whether the semi-canonical class was cached or not (classifyMiss
// composes on hits and misses alike).
func TestTwoLevelClassifyCorrectAndCacheIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var fns []tt.T
	for i := 0; i < 40; i++ {
		f := tt.New(rng.Uint64(), 5+rng.Intn(2))
		fns = append(fns, f, randomRenaming(rng, f), randomRenaming(rng, f))
	}

	warm := New(Options{TwoLevelClassify: true})
	got := make([]spectral.Result, len(fns))
	for i, f := range fns {
		got[i] = warm.Classify(f)
		if back := got[i].Tr.Apply(got[i].Repr); back != f {
			t.Fatalf("f=%v: transform rebuilds %v, want f", f, back)
		}
	}
	if s := warm.Stats(); s.SemiCanonHits == 0 {
		t.Fatalf("renamed variants produced no semi-canonical hits: %+v", s)
	}

	// Fresh DB, reversed order: different cache history, same results.
	cold := New(Options{TwoLevelClassify: true})
	for i := len(fns) - 1; i >= 0; i-- {
		if res := cold.Classify(fns[i]); res != got[i] {
			t.Fatalf("f=%v: result depends on cache state:\n warm %+v\n cold %+v",
				fns[i], got[i], res)
		}
	}
}

// TestTwoLevelDisabledByDefault pins the compatibility contract: without the
// option the second-level cache must not exist, and classification must go
// through the plain single-level path (zero semi-canonical activity).
func TestTwoLevelDisabledByDefault(t *testing.T) {
	db := New(Options{})
	if db.semi != nil {
		t.Fatal("semi-canonical cache allocated without TwoLevelClassify")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		f := tt.New(rng.Uint64(), 6)
		res := db.Classify(f)
		if want := spectral.Classify(f, db.opts.ClassifyLimit); res != want {
			t.Fatalf("default path diverges from spectral.Classify for %v", f)
		}
	}
	if s := db.Stats(); s.SemiCanonHits != 0 || s.SemiCanonMisses != 0 {
		t.Fatalf("semi-canonical counters moved while disabled: %+v", s)
	}
}

// TestClassifyFastPathMetricsExposition scrapes the registry after classify
// traffic and checks the fast-path instruments render in exposition format
// with live values.
func TestClassifyFastPathMetricsExposition(t *testing.T) {
	db := New(Options{TwoLevelClassify: true})
	reg := metrics.NewRegistry()
	db.RegisterMetrics(reg)

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 12; i++ {
		f := tt.New(rng.Uint64(), 6)
		db.Classify(f)
		db.Classify(randomRenaming(rng, f))
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE mcc_classify_steps histogram",
		"mcc_classify_steps_count",
		"mcc_classify_steps_bucket",
		"mcc_classify_incomplete_total",
		"mcdb_semicanon_hits_total",
		"mcdb_semicanon_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}

	s := db.Stats()
	if s.SemiCanonHits == 0 || s.SemiCanonMisses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", s)
	}
	for name, want := range map[string]float64{
		"mcdb_semicanon_hits_total":   float64(s.SemiCanonHits),
		"mcdb_semicanon_misses_total": float64(s.SemiCanonMisses),
		"mcc_classify_steps_count":    float64(s.Classified),
	} {
		found := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") {
				found = true
				var v float64
				if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				if v != want {
					t.Fatalf("%s = %g, want %g", name, v, want)
				}
			}
		}
		if !found {
			t.Fatalf("sample %s not found in exposition", name)
		}
	}
}
