// Package mcdb maintains the database mapping affine class representatives
// to XAG implementations with minimal (or best-known) multiplicative
// complexity, standing in for the precomputed NIST circuit database the
// paper loads from disk (XAG_DB).
//
// Circuits are stored as straight-line programs (SLPs) over GF(2): a
// sequence of AND steps whose operands are affine combinations of the
// inputs and of earlier step outputs, plus an affine output combination.
// This is exactly the {AND, XOR, NOT} basis of the paper: the number of
// steps is the multiplicative complexity of the circuit.
//
// Entries are synthesized on demand and cached: a bounded exhaustive search
// proves optimality for small AND counts (all functions with MC ≤ 3,
// covering every class of up to four variables), and an affine Davio
// decomposition provides best-known circuits beyond that. The substitution
// is documented in DESIGN.md.
package mcdb

import (
	"fmt"
	"math/bits"

	"repro/internal/tt"
	"repro/internal/xag"
)

// Step is one AND gate of an SLP. Its operands are masks over the basis
// [1, x_0, …, x_{n-1}, a_0, …, a_{t-1}]: bit 0 selects the constant one,
// bit 1+i selects input x_i, and bit 1+n+j selects the output of step j.
type Step struct {
	L, M uint32
}

// Entry is a stored circuit for one class representative.
type Entry struct {
	N     int    // number of input variables
	F     tt.T   // the function computed (class representative)
	Steps []Step // AND gates in dependency order
	Out   uint32 // affine output combination over the full basis
	Exact bool   // true if the AND count is proven minimal
	// Refined marks entries touched by the SAT refiner (refine.go): either
	// a circuit decoded from a SAT model or an existing circuit whose
	// optimality the solver (re-)proved. The bit is provenance for
	// observability and persists through snapshots and the journal; the
	// optimality claim itself is carried by Exact.
	Refined bool
}

// MC returns the multiplicative complexity of the stored circuit.
func (e *Entry) MC() int { return len(e.Steps) }

// basisDepths returns the multiplicative depth of every basis element
// [1, x_0..x_{n-1}, a_0..a_{t-1}] given the depths of the inputs: the
// constant sits at depth zero, affine combinations take the maximum over
// their terms, and each AND step adds one on top of its deepest operand.
func (e *Entry) basisDepths(inputDepths []int) []int {
	d := make([]int, 1+e.N+len(e.Steps))
	copy(d[1:], inputDepths)
	for j, st := range e.Steps {
		m := 0
		for mask := st.L | st.M; mask != 0; {
			i := bits.TrailingZeros32(mask)
			mask &= mask - 1
			if d[i] > m {
				m = d[i]
			}
		}
		d[1+e.N+j] = m + 1
	}
	return d
}

func maskDepth(d []int, mask uint32) int {
	out := 0
	for mask != 0 {
		i := bits.TrailingZeros32(mask)
		mask &= mask - 1
		if d[i] > out {
			out = d[i]
		}
	}
	return out
}

// AndDepth returns the multiplicative depth of the stored circuit with all
// inputs at depth zero: the length of the longest chain of AND steps feeding
// the output combination. An affine entry has depth zero.
func (e *Entry) AndDepth() int {
	return maskDepth(e.basisDepths(make([]int, e.N)), e.Out)
}

// basisTables returns the truth tables of the basis elements
// [1, x_0..x_{n-1}, a_0..a_{t-1}] for this entry.
func (e *Entry) basisTables() []tt.T {
	basis := make([]tt.T, 0, 1+e.N+len(e.Steps))
	basis = append(basis, tt.Const1(e.N))
	for i := 0; i < e.N; i++ {
		basis = append(basis, tt.Var(i, e.N))
	}
	for _, st := range e.Steps {
		l := combineTT(basis, st.L, e.N)
		m := combineTT(basis, st.M, e.N)
		basis = append(basis, l.And(m))
	}
	return basis
}

func combineTT(basis []tt.T, mask uint32, n int) tt.T {
	out := tt.Const0(n)
	for mask != 0 {
		i := bits.TrailingZeros32(mask)
		mask &= mask - 1
		out = out.Xor(basis[i])
	}
	return out
}

// Validate checks the structural invariants of the SLP without evaluating
// it: the variable count is within the truth-table width, the AND count
// fits the 32-bit basis masks, and every operand mask references only the
// constant, the inputs, and strictly earlier steps. A valid entry can be
// evaluated and materialized without panicking; use Verify to additionally
// check that it computes F.
func (e *Entry) Validate() error {
	if e.N < 0 || e.N > tt.MaxVars {
		return fmt.Errorf("mcdb: entry with %d variables (max %d)", e.N, tt.MaxVars)
	}
	if e.F.N != e.N {
		return fmt.Errorf("mcdb: entry function width %d does not match N=%d", e.F.N, e.N)
	}
	if len(e.Steps) > 31-e.N {
		return fmt.Errorf("mcdb: entry with %d AND steps does not fit a %d-variable basis mask",
			len(e.Steps), e.N)
	}
	for i, st := range e.Steps {
		limit := uint64(1) << uint(1+e.N+i)
		if uint64(st.L) >= limit || uint64(st.M) >= limit {
			return fmt.Errorf("mcdb: step %d references a later basis element", i)
		}
	}
	if limit := uint64(1) << uint(1+e.N+len(e.Steps)); uint64(e.Out) >= limit {
		return fmt.Errorf("mcdb: output mask references an undefined basis element")
	}
	return nil
}

// Verify recomputes the SLP's function and checks it equals F. Structural
// invariants are validated first, so Verify never panics on a corrupted
// entry.
func (e *Entry) Verify() error {
	if err := e.Validate(); err != nil {
		return err
	}
	basis := e.basisTables()
	got := combineTT(basis, e.Out, e.N)
	if got != e.F {
		return fmt.Errorf("mcdb: SLP computes %s, want %s", got, e.F)
	}
	return nil
}

// Materialize instantiates the SLP in a network over the given input
// literals (one per variable) and returns the output literal. Only
// len(inputs) == N literals are accepted.
func (e *Entry) Materialize(net *xag.Network, inputs []xag.Lit) xag.Lit {
	if len(inputs) != e.N {
		panic("mcdb: Materialize input count mismatch")
	}
	basis := make([]xag.Lit, 0, 1+e.N+len(e.Steps))
	basis = append(basis, xag.Const1)
	basis = append(basis, inputs...)
	for _, st := range e.Steps {
		l := combineLit(net, basis, st.L)
		m := combineLit(net, basis, st.M)
		basis = append(basis, net.And(l, m))
	}
	return combineLit(net, basis, e.Out)
}

func combineLit(net *xag.Network, basis []xag.Lit, mask uint32) xag.Lit {
	out := xag.Const0
	for mask != 0 {
		i := bits.TrailingZeros32(mask)
		mask &= mask - 1
		out = net.Xor(out, basis[i])
	}
	return out
}

// XorCost returns the number of XOR gates a literal-level materialization of
// the SLP needs at most (inversions via the constant bit are free).
func (e *Entry) XorCost() int {
	cost := 0
	add := func(mask uint32) {
		c := bits.OnesCount32(mask &^ 1) // constant bit is a free inversion
		if c > 1 {
			cost += c - 1
		}
	}
	for _, st := range e.Steps {
		add(st.L)
		add(st.M)
	}
	add(e.Out)
	return cost
}
