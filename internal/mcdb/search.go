package mcdb

import (
	"context"
	"math/bits"

	"repro/internal/tt"
)

// The exact synthesizer looks for an SLP with k AND steps by depth-first
// search: each step's operands range over the affine span of the basis
// elements chosen so far, and a function is realizable the moment it falls
// into that span. Two ingredients keep the search tractable:
//
//   - span membership is tested against a Gaussian echelon form of the basis
//     (a handful of XORs per test instead of set lookups), and
//   - the last AND gate is never branched on: f needs one more gate iff
//     f ⊕ (l ∧ m) lies in the current span for some operand pair, which is a
//     single quadratic scan ("coset trick").
//
// The search is budgeted; an exhausted budget aborts with "unknown", in
// which case the database falls back to a Davio decomposition. A search that
// completes without finding a circuit proves MC(f) > k.

// echelon maintains a reduced basis of truth tables together with the basis
// masks that generate them. Rows are append-only — each has a unique leading
// bit tracked in byLead — so backtracking is a plain truncation.
type echelon struct {
	rows   []uint64  // reduced vectors, each with a unique leading (highest) bit
	masks  []uint32  // generating mask over the SLP basis for each row
	byLead [65]int32 // index+1 of the row with the given bits.Len, 0 = none
}

// reduce returns the residual of v after elimination and the accumulated
// generator mask.
func (e *echelon) reduce(v uint64) (uint64, uint32) {
	var mask uint32
	for v != 0 {
		i := e.byLead[bits.Len64(v)]
		if i == 0 {
			break
		}
		v ^= e.rows[i-1]
		mask ^= e.masks[i-1]
	}
	return v, mask
}

// reduceRes is reduce without the generator-mask bookkeeping, for the hot
// membership scans.
func (e *echelon) reduceRes(v uint64) uint64 {
	for v != 0 {
		i := e.byLead[bits.Len64(v)]
		if i == 0 {
			break
		}
		v ^= e.rows[i-1]
	}
	return v
}

// insert adds v (with its generator mask) to the span if independent.
// It reports whether the rank grew.
func (e *echelon) insert(v uint64, mask uint32) bool {
	res, acc := e.reduce(v)
	if res == 0 {
		return false
	}
	e.rows = append(e.rows, res)
	e.masks = append(e.masks, mask^acc)
	e.byLead[bits.Len64(res)] = int32(len(e.rows))
	return true
}

// contains reports span membership and, if contained, the generating mask.
func (e *echelon) contains(v uint64) (uint32, bool) {
	res, mask := e.reduce(v)
	return mask, res == 0
}

func (e *echelon) snapshot() int { return len(e.rows) }

func (e *echelon) rollback(n int) {
	for i := n; i < len(e.rows); i++ {
		e.byLead[bits.Len64(e.rows[i])] = 0
	}
	e.rows = e.rows[:n]
	e.masks = e.masks[:n]
}

type searcher struct {
	n      int
	f      uint64 // target truth table bits
	budget int    // remaining operand-pair evaluations
	abort  bool

	ctx  context.Context // optional cancellation; nil = never canceled
	tick int             // operand evaluations since the last ctx poll

	basis []uint64 // SLP basis element tables: 1, x_i…, a_j…
	span  []uint64 // all XOR combinations of basis, in mask order
	ech   echelon
	steps []Step

	outMask uint32
	found   bool
}

func newSearcher(f tt.T, budget int) *searcher {
	s := &searcher{n: f.N, f: f.Bits, budget: budget}
	s.basis = append(s.basis, tt.Const1(f.N).Bits)
	for i := 0; i < f.N; i++ {
		s.basis = append(s.basis, tt.Var(i, f.N).Bits)
	}
	for i, b := range s.basis {
		s.ech.insert(b, 1<<uint(i))
	}
	s.rebuildSpan()
	return s
}

// rebuildSpan recomputes the explicit span array (index = basis mask).
func (s *searcher) rebuildSpan() {
	dim := len(s.basis)
	span := make([]uint64, 1<<uint(dim))
	for m := 1; m < len(span); m++ {
		i := bits.TrailingZeros32(uint32(m))
		span[m] = span[m&(m-1)] ^ s.basis[i]
	}
	s.span = span
}

// run tries to realize f with at most k AND steps. It returns found; when it
// returns false with s.abort unset, MC(f) > k is proven.
func (s *searcher) run(k int) bool {
	if mask, ok := s.ech.contains(s.f); ok {
		s.outMask = mask
		s.found = true
		return true
	}
	if k == 0 {
		return false
	}
	return s.dfs(k)
}

// spend consumes one operand-pair evaluation and reports whether the search
// must abort (budget exhausted or context canceled). The context is polled
// every few thousand evaluations so cancellation stays prompt without
// slowing down the hot scan.
func (s *searcher) spend() bool {
	s.budget--
	if s.budget <= 0 {
		s.abort = true
		return true
	}
	if s.ctx != nil {
		if s.tick++; s.tick >= 4096 {
			s.tick = 0
			if s.ctx.Err() != nil {
				s.abort = true
				return true
			}
		}
	}
	return false
}

func (s *searcher) dfs(remaining int) bool {
	if remaining == 1 {
		return s.lastGate()
	}
	// Enumerate distinct, span-independent products as the next gate.
	seen := make(map[uint64]bool)
	for i := 1; i < len(s.span); i++ {
		for j := i + 1; j < len(s.span); j++ {
			if s.spend() {
				return false
			}
			v := s.span[i] & s.span[j]
			if seen[v] {
				continue
			}
			seen[v] = true
			if _, in := s.ech.contains(v); in {
				// A gate whose output is already affine-reachable can be
				// removed from any circuit, so optimal circuits never use
				// one.
				continue
			}
			if s.tryGate(v, uint32(i), uint32(j), remaining) {
				return true
			}
			if s.abort {
				return false
			}
		}
	}
	return false
}

// tryGate pushes gate v = span[i] ∧ span[j], recurses, and pops on failure.
func (s *searcher) tryGate(v uint64, li, mj uint32, remaining int) bool {
	gateBit := uint32(1) << uint(len(s.basis))
	s.steps = append(s.steps, Step{L: li, M: mj})
	s.basis = append(s.basis, v)
	mark := s.ech.snapshot()
	s.ech.insert(v, gateBit)
	oldSpan := s.span
	s.rebuildSpan()

	if mask, ok := s.ech.contains(s.f); ok {
		s.outMask = mask
		s.found = true
		return true
	}
	if s.dfs(remaining - 1) {
		return true
	}

	s.span = oldSpan
	s.ech.rollback(mark)
	s.basis = s.basis[:len(s.basis)-1]
	s.steps = s.steps[:len(s.steps)-1]
	return false
}

// lastGate applies the coset trick: f is one AND away iff
// f ⊕ (span[i] ∧ span[j]) is in the span for some pair. Because reduction is
// linear, that is equivalent to residual(v) == residual(f), with residual(f)
// computed once.
func (s *searcher) lastGate() bool {
	gateBit := uint32(1) << uint(len(s.basis))
	rf := s.ech.reduceRes(s.f)
	for i := 1; i < len(s.span); i++ {
		si := s.span[i]
		for j := i + 1; j < len(s.span); j++ {
			if s.spend() {
				return false
			}
			v := si & s.span[j]
			if s.ech.reduceRes(v) != rf {
				continue
			}
			mask, ok := s.ech.contains(s.f ^ v)
			if !ok {
				continue // cannot happen; kept as a safety net
			}
			s.steps = append(s.steps, Step{L: uint32(i), M: uint32(j)})
			s.outMask = mask | gateBit
			s.found = true
			return true
		}
	}
	return false
}

// ExactSearch synthesizes an SLP for f with at most maxK AND steps. It
// returns the entry (nil if none found within maxK), whether the result is
// proven minimal, and whether the budget aborted the search.
//
// The search starts at the degree lower bound MC(f) ≥ deg(f) − 1 (Boyar,
// Peralta & Pochuev): levels below it cannot succeed, and a circuit found
// exactly at the bound is proven minimal without exhausting smaller levels.
// Random cut functions of five or six variables almost always have full
// degree, which makes this bound the difference between an instant answer
// and a budget-devouring exhaustive proof.
func ExactSearch(f tt.T, maxK, budget int) (entry *Entry, exact, aborted bool) {
	return ExactSearchContext(context.Background(), f, maxK, budget)
}

// ExactSearchContext is ExactSearch with cancellation: when ctx is canceled
// the search aborts (as if the budget were exhausted), so callers fall back
// to the cheap Davio construction and return promptly.
func ExactSearchContext(ctx context.Context, f tt.T, maxK, budget int) (entry *Entry, exact, aborted bool) {
	lb := f.Degree() - 1
	if lb < 0 {
		lb = 0
	}
	if lb > maxK {
		return nil, false, false // cannot succeed within maxK; nothing aborted
	}
	cleanBelow := true // all levels ≥ lb exhausted without budget aborts
	for k := lb; k <= maxK; k++ {
		s := newSearcher(f, budget)
		s.ctx = ctx
		if s.run(k) {
			e := &Entry{
				N:     f.N,
				F:     f,
				Steps: append([]Step(nil), s.steps...),
				Out:   s.outMask,
				Exact: cleanBelow,
			}
			return e, cleanBelow, false
		}
		if s.abort {
			cleanBelow = false
			return nil, false, true
		}
	}
	return nil, false, !cleanBelow
}
