package mcdb

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tt"
)

func TestStoreJournalsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, rec, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot.Loaded != 0 || rec.Journal.Loaded != 0 {
		t.Fatalf("fresh store recovered entries: %+v", rec)
	}

	rng := rand.New(rand.NewSource(61))
	var fns []tt.T
	for i := 0; i < 20; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		fns = append(fns, f)
		db.Lookup(f)
	}
	want := db.NumEntries()
	if info := store.Info(); info.Appends != int64(want) || info.AppendErrors != 0 {
		t.Fatalf("journaled %d appends (%d errors), DB has %d entries", info.Appends, info.AppendErrors, want)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with no snapshot ever taken: the journal alone must restore
	// every entry.
	db2 := New(Options{})
	store2, rec2, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rec2.Journal.Loaded != want || !rec2.Clean() {
		t.Fatalf("journal replay recovered %+v, want %d clean", rec2.Journal, want)
	}
	if db2.NumEntries() != want {
		t.Fatalf("recovered DB has %d entries, want %d", db2.NumEntries(), want)
	}
	for _, f := range fns {
		before := db2.Stats()
		db2.Lookup(f)
		after := db2.Stats()
		if synth := func(s Stats) int { return s.ExactSyntheses + s.DavioFallbacks + s.BoundedExact }; synth(after) != synth(before) {
			t.Fatalf("lookup of %s re-synthesized after journal recovery", f)
		}
	}
}

func TestStoreSnapshotRetiresJournals(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 15; i++ {
		db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
	}
	want := db.NumEntries()
	info, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != want {
		t.Fatalf("snapshot holds %d entries, want %d", info.Entries, want)
	}
	if info.Retired == 0 {
		t.Fatalf("snapshot retired no journal generations")
	}
	// After the snapshot the new journal is empty; recovery must come from
	// the snapshot file.
	store.Close()
	db2 := New(Options{})
	store2, rec, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rec.Snapshot.Loaded != want || rec.Journal.Loaded != 0 {
		t.Fatalf("recovery after snapshot: %+v, want %d from snapshot", rec, want)
	}
}

// TestStoreSnapshotDuringTraffic exercises the rotate-then-copy protocol:
// entries admitted concurrently with a snapshot must end up in the snapshot
// or in a surviving journal, never lost.
func TestStoreSnapshotDuringTraffic(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	var fns []tt.T
	for i := 0; i < 30; i++ {
		f := tt.New(rng.Uint64(), 1+rng.Intn(5))
		fns = append(fns, f)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range fns {
			db.Lookup(f)
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := store.Snapshot(); err != nil {
			t.Error(err)
		}
	}
	<-done
	want := db.NumEntries()
	store.Close()

	db2 := New(Options{})
	store2, _, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if db2.NumEntries() != want {
		t.Fatalf("lost entries across concurrent snapshots: %d, want %d", db2.NumEntries(), want)
	}
}

// crashCut simulates a kill at a faultinject crash point by panicking there
// and discarding the store without Close — the files are left exactly as a
// SIGKILL at that instant would leave them (modulo the OS page cache, which
// the separate kill-9 e2e test covers).
func crashCut(t *testing.T, point string, fn func()) {
	t.Helper()
	faultinject.Set(point, faultinject.PanicHook("crash:"+point))
	defer faultinject.Clear(point)
	defer func() {
		if recover() == nil {
			t.Fatalf("crash point %s never fired", point)
		}
	}()
	fn()
}

func TestStoreCrashMidSnapshotKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 12; i++ {
		db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
	}
	want := db.NumEntries()

	// Crash mid-snapshot-write: the temp file is torn, the rename never
	// happened, the journals are intact.
	crashCut(t, faultinject.PointSnapshotWrite, func() { store.Snapshot() })
	db2 := New(Options{})
	store2, rec, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumEntries() != want {
		t.Fatalf("crash mid-snapshot lost entries: %d, want %d (report %+v)", db2.NumEntries(), want, rec)
	}

	// Crash right before the rename: same guarantee.
	crashCut(t, faultinject.PointSnapshotRename, func() { store2.Snapshot() })
	db3 := New(Options{})
	store3, _, err := OpenStore(dir, db3)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if db3.NumEntries() != want {
		t.Fatalf("crash before rename lost entries: %d, want %d", db3.NumEntries(), want)
	}
}

func TestStoreCrashMidJournalAppendKeepsPriorEntries(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	_, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(65))
	for i := 0; i < 8; i++ {
		db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(4)))
	}
	want := db.NumEntries()

	// The next appended entry tears mid-record. Entries journaled before it
	// must all survive; the torn one is allowed to be lost (its synthesis
	// never returned to a caller being durable).
	crashCut(t, faultinject.PointJournalAppend, func() {
		for i := 0; i < 100; i++ {
			db.Lookup(tt.New(rng.Uint64(), 6))
		}
	})

	db2 := New(Options{})
	store2, rec, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rec.Journal.Quarantined != 0 {
		t.Fatalf("torn tail quarantined entries instead of stopping: %+v", rec.Journal)
	}
	if db2.NumEntries() < want {
		t.Fatalf("crash mid-append lost pre-crash entries: %d, want >= %d", db2.NumEntries(), want)
	}
	// The reopened journal accepts appends again (torn tail truncated).
	pre := db2.NumEntries()
	db2.Lookup(tt.New(0xe8, 3))
	if db2.NumEntries() <= pre {
		// 0xe8 may already be cached; force a distinct function.
		db2.Lookup(tt.New(0x16, 3))
	}
	if info := store2.Info(); info.AppendErrors != 0 {
		t.Fatalf("appends after tail truncation fail: %+v", info)
	}
}

func TestStoreQuarantinedSnapshotEntryResynthesizes(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	f := tt.New(0x1668, 4)
	e, _ := db.Lookup(f)
	repr := db.Classify(f).Repr
	wantMC := e.MC()
	if _, err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Corrupt the snapshot record region, then recover: damaged entries are
	// quarantined, and a later lookup of the class falls back to fresh
	// synthesis (exact search / affine Davio), not a crash and not a wrong
	// circuit.
	snap := filepath.Join(dir, SnapshotName)
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := snapHeaderLen; i < len(raw); i += 7 {
		raw[i] ^= 0xa5
	}
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := New(Options{})
	store2, rec, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rec.Snapshot.Quarantined == 0 {
		t.Fatalf("wholesale corruption quarantined nothing: %+v", rec)
	}
	e2, _ := db2.Lookup(f)
	if err := e2.Verify(); err != nil {
		t.Fatalf("resynthesized entry wrong: %v", err)
	}
	if e2.MC() != wantMC {
		t.Fatalf("resynthesized MC %d, want %d (repr %s)", e2.MC(), wantMC, repr)
	}
}

func TestStoreRecoveryStopsJournalingReplayedEntries(t *testing.T) {
	dir := t.TempDir()
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 10; i++ {
		db.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
	}
	store.Close()

	// Recovery replays the journal; those entries must not be re-journaled
	// (the journal would grow without bound across restarts).
	db2 := New(Options{})
	store2, rec, err := OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := store2.Info().Appends; got != 0 {
		t.Fatalf("recovery re-journaled %d entries (replayed %d)", got, rec.Journal.Loaded)
	}
}

func TestOpenStoreCleansStaleTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, SnapshotName+".tmp-123")
	if err := os.WriteFile(stale, []byte("torn snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := New(Options{})
	store, _, err := OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived open: %v", err)
	}
}
