package mcdb

import (
	"context"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/spectral"
	"repro/internal/tt"
)

// Options configures a database.
type Options struct {
	// ClassifyLimit bounds the spectral classification search
	// (default: spectral.DefaultLimit, the paper's 100000).
	ClassifyLimit int
	// MaxExactK bounds the exhaustive synthesis depth; circuits with up to
	// this many AND gates are found optimally (default 3).
	MaxExactK int
	// SearchBudget bounds each exhaustive synthesis run in operand-pair
	// evaluations (default 50e6). Exhausted budgets fall back to Davio
	// decomposition.
	SearchBudget int
	// TwoLevelClassify enables the semi-canonical second-level
	// classification cache: on a class-cache miss the function is first
	// reduced to its semi-canonical form under input permutation and
	// input/output complementation (tt.SemiCanonical, an O(2ⁿ·n)
	// word-parallel computation), the spectral search runs on that form
	// once per semi-canonical class, and the stored result is composed with
	// the recorded renaming (spectral.ComposeRenaming) — so the many
	// permuted/complemented variants of the same cut function that
	// arithmetic networks produce skip the DFS entirely.
	//
	// Off by default to preserve bit-exact reproducibility with the
	// single-level pipeline: ~94% of 6-input classifications hit the
	// iteration limit, and a limit-bound search started from the
	// semi-canonical form is a *different* truncated search than one
	// started from the member function — both results are valid
	// (transform-correct and deterministic for a given setting), but the
	// chosen representatives, and through them golden XOR counts, can
	// differ. Deployments that prioritize throughput over golden-pin
	// compatibility should enable it; every composed result is still
	// deterministic and independent of cache state, because misses and hits
	// go through the identical compose step.
	TwoLevelClassify bool
}

func (o Options) withDefaults() Options {
	if o.ClassifyLimit == 0 {
		o.ClassifyLimit = spectral.DefaultLimit
	}
	if o.MaxExactK == 0 {
		o.MaxExactK = 3
	}
	if o.SearchBudget == 0 {
		o.SearchBudget = 50_000_000
	}
	return o
}

// Stats is a point-in-time snapshot of database activity; see DB.Stats.
type Stats struct {
	Classified     int // classification calls that missed the cache
	ClassCacheHits int
	Incomplete     int // classifications that hit the iteration limit
	EntryCacheHits int
	ExactSyntheses int // entries proven MC-optimal
	BoundedExact   int // entries found by exact search below an aborted proof
	DavioFallbacks int // entries built by Davio decomposition
	Recovered      int // entries admitted from snapshots and journal replay
	Quarantined    int // persisted records rejected by checksum or validation

	// Two-level classification cache activity (zero unless
	// Options.TwoLevelClassify is enabled).
	SemiCanonHits   int // class-cache misses answered by the semi-canonical cache
	SemiCanonMisses int // class-cache misses that ran the spectral search

	// SAT refiner activity (refine.go); all zero until a Refine pass runs.
	RefineAttempts  int // entries the refiner worked on
	RefineImproved  int // entries replaced by a smaller circuit
	RefineProven    int // entries stamped proven-optimal
	RefineUnknown   int // entries left unproven within the conflict budget
	RefineRejected  int // decoded models the validation gate refused
	RefineAndsSaved int // total AND gates removed by refinement
}

// ClassHitRate returns the fraction of classification calls answered from
// the cache (0 when nothing has been classified yet).
func (s Stats) ClassHitRate() float64 {
	total := s.Classified + s.ClassCacheHits
	if total == 0 {
		return 0
	}
	return float64(s.ClassCacheHits) / float64(total)
}

// dbStats is the live, concurrency-safe counter set behind Stats.
type dbStats struct {
	classified     atomic.Int64
	classCacheHits atomic.Int64
	incomplete     atomic.Int64
	entryCacheHits atomic.Int64
	exactSyntheses atomic.Int64
	boundedExact   atomic.Int64
	davioFallbacks atomic.Int64
	recovered      atomic.Int64
	quarantined    atomic.Int64
	semiHits       atomic.Int64
	semiMisses     atomic.Int64

	refineAttempts  atomic.Int64
	refineImproved  atomic.Int64
	refineProven    atomic.Int64
	refineUnknown   atomic.Int64
	refineRejected  atomic.Int64
	refineAndsSaved atomic.Int64
}

type key struct {
	n    int8
	bits uint64
}

// DB caches affine classifications and representative circuits. It plays
// the role of the paper's XAG_DB plus its classification cache. Synthesis is
// fully on demand: looking up a function classifies it, reuses or builds the
// circuit of its class representative, and re-applies the recorded affine
// operations.
//
// A DB is safe for concurrent use. Classification — the hot path shared by
// all workers of the parallel rewriting engine — goes through a sharded,
// mutex-striped cache (see cache.go) and scales with the worker count.
// Circuit synthesis is serialized behind a single mutex: it is recursive,
// shares the in-progress set across the recursion, and runs orders of
// magnitude less often than classification once the entry cache is warm.
type DB struct {
	opts    Options
	classes *classCache

	// mu guards entries and building. Synthesis recursion stays inside one
	// lock acquisition: the exported accessors lock, the *Locked variants
	// recurse freely.
	//
	// Each function maps to a small Pareto front of mutually non-dominated
	// circuits under (MC, AndDepth), sorted by ascending MC (AndDepth and
	// XorCost breaking ties). The head of the list is the MC-best circuit —
	// the single entry the pre-Pareto database stored — so MC-model lookups
	// are unchanged; other models select from the front via LookupModel.
	mu       sync.Mutex
	entries  map[key][]*Entry
	building map[key]bool // representatives whose synthesis is in progress

	// onNew, when set, observes every entry newly admitted to the database
	// (synthesized, loaded, or merged). It runs while db.mu is held, so the
	// durable Store can journal the entry before any later lookup depends on
	// it; implementations must not call back into the DB.
	onNew func(*Entry)

	// semi is the semi-canonical second-level classification cache, active
	// only when opts.TwoLevelClassify is set; see Options.TwoLevelClassify.
	semi *classCache

	// classifySteps, when non-nil, observes the DFS step count of every
	// classification that missed the caches (installed by RegisterMetrics).
	classifySteps atomic.Pointer[metrics.Histogram]

	ctx   atomic.Pointer[context.Context]
	stats dbStats
}

// SetEntryHook installs (or, with nil, removes) the new-entry observer. The
// Store uses it to journal every admitted entry; see the field comment for
// the reentrancy contract.
func (db *DB) SetEntryHook(fn func(*Entry)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.onNew = fn
}

// SetContext installs a cancellation context consulted by the expensive
// synthesis searches; a canceled context makes in-flight exact searches
// abort to the cheap Davio fallback so lookups stay correct but return
// promptly. Passing nil restores the default (never canceled).
func (db *DB) SetContext(ctx context.Context) {
	if ctx == nil {
		db.ctx.Store(nil)
		return
	}
	db.ctx.Store(&ctx)
}

func (db *DB) context() context.Context {
	if p := db.ctx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// New returns an empty database.
func New(opts Options) *DB {
	db := &DB{
		opts:     opts.withDefaults(),
		classes:  newClassCache(),
		entries:  make(map[key][]*Entry),
		building: make(map[key]bool),
	}
	if db.opts.TwoLevelClassify {
		db.semi = newClassCache()
	}
	return db
}

func keyOf(f tt.T) key { return key{int8(f.N), f.Bits} }

// Stats returns a snapshot of the activity counters. Safe to call while
// other goroutines use the database.
func (db *DB) Stats() Stats {
	return Stats{
		Classified:     int(db.stats.classified.Load()),
		ClassCacheHits: int(db.stats.classCacheHits.Load()),
		Incomplete:     int(db.stats.incomplete.Load()),
		EntryCacheHits: int(db.stats.entryCacheHits.Load()),
		ExactSyntheses: int(db.stats.exactSyntheses.Load()),
		BoundedExact:   int(db.stats.boundedExact.Load()),
		DavioFallbacks: int(db.stats.davioFallbacks.Load()),
		Recovered:      int(db.stats.recovered.Load()),
		Quarantined:    int(db.stats.quarantined.Load()),

		SemiCanonHits:   int(db.stats.semiHits.Load()),
		SemiCanonMisses: int(db.stats.semiMisses.Load()),

		RefineAttempts:  int(db.stats.refineAttempts.Load()),
		RefineImproved:  int(db.stats.refineImproved.Load()),
		RefineProven:    int(db.stats.refineProven.Load()),
		RefineUnknown:   int(db.stats.refineUnknown.Load()),
		RefineRejected:  int(db.stats.refineRejected.Load()),
		RefineAndsSaved: int(db.stats.refineAndsSaved.Load()),
	}
}

// NumClasses returns the number of cached classifications.
func (db *DB) NumClasses() int { return db.classes.len() }

// Classify returns the (cached) affine classification of f. Concurrent
// callers classifying the same function may duplicate the computation, but
// all of them observe the same canonical Result (first insert wins).
func (db *DB) Classify(f tt.T) spectral.Result {
	k := keyOf(f)
	if res, ok := db.classes.get(k); ok {
		db.stats.classCacheHits.Add(1)
		return res
	}
	res := db.classifyMiss(f)
	if h := db.classifySteps.Load(); h != nil {
		h.Observe(float64(res.Steps))
	}
	res, inserted := db.classes.put(k, res)
	db.stats.classified.Add(1)
	if inserted && !res.Complete {
		db.stats.incomplete.Add(1)
	}
	return res
}

// classifyMiss computes the classification of f after a first-level cache
// miss. With TwoLevelClassify enabled, functions that admit a bounded
// semi-canonical key share one spectral search per semi-canonical class: the
// search runs on (and is cached for) the semi-canonical form, and the result
// is composed with the renaming recorded by the key. The compose step runs on
// hits and misses alike, so the returned Result for a given function is
// identical regardless of cache state or request order.
func (db *DB) classifyMiss(f tt.T) spectral.Result {
	if db.semi != nil && f.N > 4 {
		if canon, perm, inCompl, outCompl, ok := f.SemiCanonical(); ok {
			ck := keyOf(canon)
			cres, hit := db.semi.get(ck)
			if hit {
				db.stats.semiHits.Add(1)
			} else {
				db.stats.semiMisses.Add(1)
				cres = spectral.Classify(canon, db.opts.ClassifyLimit)
				cres, _ = db.semi.put(ck, cres)
			}
			return spectral.ComposeRenaming(cres, perm, inCompl, outCompl)
		}
		// Tie enumeration overflow: no usable key, classify directly.
		db.stats.semiMisses.Add(1)
	}
	return spectral.Classify(f, db.opts.ClassifyLimit)
}

// Lookup classifies f and returns the stored (or freshly synthesized)
// circuit of its class representative together with the classification. The
// recorded transform is AND-free, so Entry.MC() AND gates suffice to
// implement f. Lookup always returns the MC-best circuit; use LookupModel to
// select under a different cost model.
func (db *DB) Lookup(f tt.T) (*Entry, spectral.Result) {
	res := db.Classify(f)
	e := db.EntryFor(res.Repr)
	// Fault-injection point: tests corrupt the returned entry here to prove
	// that the rewriter's per-replacement verification rejects it.
	faultinject.Inject(faultinject.PointDBEntry, e)
	return e, res
}

// implOf summarizes a stored entry for model-driven selection.
func implOf(e *Entry) cost.Impl {
	return cost.Impl{Ands: e.MC(), Xors: e.XorCost(), Depth: e.AndDepth()}
}

// LookupModel is Lookup with model-driven entry selection: when the class
// representative's Pareto front holds several circuits (say, an MC-optimal
// one and a shallower one with an extra AND), the model's Better ordering
// picks the preferred implementation. For the MC model this returns exactly
// what Lookup returns.
func (db *DB) LookupModel(f tt.T, m cost.Model) (*Entry, spectral.Result) {
	res := db.Classify(f)
	best := func() *Entry {
		// The unlock must be deferred: a panic during synthesis (e.g. a
		// corrupted entry failing verification) is recovered by the engine's
		// per-node containment, and a mutex left locked would deadlock every
		// later lookup.
		db.mu.Lock()
		defer db.mu.Unlock()
		best := db.entryForLocked(res.Repr) // synthesizes the front head on a miss
		for _, e := range db.entries[keyOf(res.Repr)][1:] {
			if m.Better(implOf(e), implOf(best)) {
				best = e
			}
		}
		return best
	}()
	// Same fault-injection point as Lookup: the selected entry, whatever the
	// model, must pass the rewriter's per-replacement verification.
	faultinject.Inject(faultinject.PointDBEntry, best)
	return best, res
}

// AddAlternate offers an extra verified circuit for e.F's Pareto front, e.g.
// a depth-oriented implementation found out of band. It is kept only if no
// stored circuit dominates it under (MC, AndDepth); dominated incumbents are
// evicted. Returns true if the entry was stored.
func (db *DB) AddAlternate(e *Entry) (bool, error) {
	if err := e.Verify(); err != nil {
		return false, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Materialize the front head first so the MC-best head invariant cannot
	// be broken by an alternate arriving before the representative circuit.
	db.entryForLocked(e.F)
	return db.addEntryLocked(e), nil
}

// addEntryLocked inserts e into its function's Pareto front under
// (MC, AndDepth). Ties with an incumbent keep the incumbent — so repeated
// loads are idempotent and the head stays the first MC-best circuit seen —
// unless e carries strictly stronger proof bits (Exact, then Refined), in
// which case the proof-carrying circuit replaces the tied incumbent. That
// upgrade is what lets the refiner stamp an existing circuit proven-optimal
// and what keeps the stamp across journal replay, where the unproven
// circuit is always admitted first.
// Callers must hold db.mu, and e must already be verified.
func (db *DB) addEntryLocked(e *Entry) bool {
	k := keyOf(e.F)
	list := db.entries[k]
	eMC, eAD := e.MC(), e.AndDepth()
	for i, old := range list {
		if old.MC() <= eMC && old.AndDepth() <= eAD {
			if old.MC() == eMC && old.AndDepth() == eAD && strongerProof(e, old) {
				list[i] = e // same Pareto point, stronger proof: swap in place
				if db.onNew != nil {
					db.onNew(e)
				}
				return true
			}
			return false // dominated by (or tied with) a stored circuit
		}
	}
	kept := list[:0:0]
	for _, old := range list {
		if eMC <= old.MC() && eAD <= old.AndDepth() {
			continue // strictly dominated by e (ties returned above)
		}
		kept = append(kept, old)
	}
	kept = append(kept, e)
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].MC() != kept[j].MC() {
			return kept[i].MC() < kept[j].MC()
		}
		if kept[i].AndDepth() != kept[j].AndDepth() {
			return kept[i].AndDepth() < kept[j].AndDepth()
		}
		return kept[i].XorCost() < kept[j].XorCost()
	})
	db.entries[k] = kept
	if db.onNew != nil {
		db.onNew(e)
	}
	return true
}

// strongerProof reports whether e's proof bits strictly dominate old's:
// an optimality proof (Exact) outranks everything, the Refined provenance
// mark breaks ties among equally-proven circuits.
func strongerProof(e, old *Entry) bool {
	if e.Exact != old.Exact {
		return e.Exact
	}
	return e.Refined && !old.Refined
}

// EntryFor returns a circuit computing exactly f (no classification of f
// itself; subfunctions encountered during synthesis are classified and
// cached by class). Entries are immutable once returned.
func (db *DB) EntryFor(f tt.T) *Entry {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.entryForLocked(f)
}

func (db *DB) entryForLocked(f tt.T) *Entry {
	k := keyOf(f)
	if list, ok := db.entries[k]; ok {
		db.stats.entryCacheHits.Add(1)
		return list[0]
	}
	db.building[k] = true
	e := db.synthesize(f)
	delete(db.building, k)
	if err := e.Verify(); err != nil {
		panic(err) // internal invariant: every stored entry computes F
	}
	db.entries[k] = []*Entry{e}
	if db.onNew != nil {
		db.onNew(e)
	}
	return e
}

// AndCost returns the AND count of the best circuit the database can build
// for f.
func (db *DB) AndCost(f tt.T) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.andCostLocked(f)
}

func (db *DB) andCostLocked(f tt.T) int {
	if _, _, ok := f.IsAffine(); ok {
		return 0
	}
	sh, _ := f.Shrink()
	res := db.Classify(sh)
	if db.building[keyOf(res.Repr)] {
		// Cycle through an in-flight representative: fall back to a direct
		// Davio estimate, which strictly reduces the support.
		best := 1 << 20
		for i := 0; i < sh.N; i++ {
			if !sh.DependsOn(i) {
				continue
			}
			f0 := sh.Cofactor(i, false)
			g := f0.Xor(sh.Cofactor(i, true))
			if c := db.andCostLocked(f0) + db.andCostLocked(g) + 1; c < best {
				best = c
			}
		}
		return best
	}
	return db.entryForLocked(res.Repr).MC()
}

// synthesize builds the best circuit the database can find for f.
// Callers must hold db.mu.
func (db *DB) synthesize(f tt.T) *Entry {
	b := &builder{n: f.N, exact: true}
	out := db.emitDirect(b, f)
	return &Entry{
		N:     f.N,
		F:     f,
		Steps: b.steps,
		Out:   out,
		Exact: b.exact,
	}
}

// builder assembles an SLP; the emit functions return basis masks.
type builder struct {
	n     int
	steps []Step
	exact bool // true while the whole construction is proven optimal
}

func (b *builder) and(l, m uint32) uint32 {
	b.steps = append(b.steps, Step{L: l, M: m})
	return 1 << uint(1+b.n+len(b.steps)-1)
}

func affineMask(mask uint, compl bool, varBit func(int) uint32, n int) uint32 {
	var out uint32
	for i := 0; i < n; i++ {
		if mask>>uint(i)&1 == 1 {
			out ^= varBit(i)
		}
	}
	if compl {
		out ^= 1
	}
	return out
}

// emit appends gates computing f to the builder and returns the output
// mask. Subfunctions are classified so that circuits are shared per affine
// class. Callers must hold db.mu.
func (db *DB) emit(b *builder, f tt.T) uint32 {
	if mask, compl, ok := f.IsAffine(); ok {
		return affineMask(mask, compl, func(i int) uint32 { return 1 << uint(1+i) }, f.N)
	}
	sh, from := f.Shrink()
	res := db.Classify(sh)
	if db.building[keyOf(res.Repr)] {
		return db.emitDirect(b, f)
	}
	e := db.entryForLocked(res.Repr)
	if !e.Exact {
		b.exact = false
	}
	return inlineTransformed(b, e, res.Tr, from)
}

// emitDirect synthesizes f without classifying f itself: exhaustive search
// first, then Davio decomposition whose subfunctions go back through emit.
// Callers must hold db.mu.
func (db *DB) emitDirect(b *builder, f tt.T) uint32 {
	if mask, compl, ok := f.IsAffine(); ok {
		return affineMask(mask, compl, func(i int) uint32 { return 1 << uint(1+i) }, f.N)
	}

	// Shrink to the support and search there: the exhaustive search cost
	// grows with 4^(basis size). The budget shrinks with the support so
	// that wide functions whose optimality proof is out of reach abort to
	// the Davio fallback quickly; up to four variables the full budget
	// always suffices for a proven-optimal circuit.
	sh, from := f.Shrink()
	budget := db.opts.SearchBudget
	for n := sh.N; n > 4; n-- {
		budget /= 16
	}
	e, exact, _ := ExactSearchContext(db.context(), sh, db.opts.MaxExactK, budget)
	if e != nil {
		if exact {
			db.stats.exactSyntheses.Add(1)
		} else {
			db.stats.boundedExact.Add(1)
			b.exact = false
		}
		return inlineTransformed(b, e, identityTransform(sh.N), from)
	}
	b.exact = false
	db.stats.davioFallbacks.Add(1)

	// Affine Davio decomposition on the cheapest support variable:
	// f = f0 ⊕ x_i ∧ (f0 ⊕ f1).
	bestI, bestCost := -1, 1<<21
	for i := 0; i < f.N; i++ {
		if !f.DependsOn(i) {
			continue
		}
		f0 := f.Cofactor(i, false)
		g := f0.Xor(f.Cofactor(i, true))
		if c := db.andCostLocked(f0) + db.andCostLocked(g) + 1; c < bestCost {
			bestI, bestCost = i, c
		}
	}
	f0 := f.Cofactor(bestI, false)
	g := f0.Xor(f.Cofactor(bestI, true))
	out0 := db.emit(b, f0)
	outG := db.emit(b, g)
	a := b.and(1<<uint(1+bestI), outG)
	return out0 ^ a
}

func identityTransform(n int) spectral.Transform {
	tr := spectral.Transform{N: n}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = 1 << uint(i)
	}
	return tr
}

// inlineTransformed copies entry e (over shrunk variables) into the builder,
// wrapping it in the affine transform tr and renaming shrunk variable j to
// builder variable from[j]. The transform and renaming are XOR/complement
// only, so no AND gates are added beyond e's steps.
func inlineTransformed(b *builder, e *Entry, tr spectral.Transform, from []int) uint32 {
	varBit := func(j int) uint32 { return 1 << uint(1+from[j]) }
	// val[i] is the builder-basis mask of entry basis element i.
	val := make([]uint32, 1+e.N+len(e.Steps))
	val[0] = 1
	for i := 0; i < e.N; i++ {
		val[1+i] = affineMask(tr.InputMask[i], tr.InputCompl[i], varBit, e.N)
	}
	translate := func(mask uint32) uint32 {
		var out uint32
		for mask != 0 {
			i := bits.TrailingZeros32(mask)
			mask &= mask - 1
			out ^= val[i]
		}
		return out
	}
	for si, st := range e.Steps {
		a := b.and(translate(st.L), translate(st.M))
		val[1+e.N+si] = a
	}
	out := translate(e.Out)
	out ^= affineMask(tr.OutputMask, tr.OutputCompl, varBit, e.N)
	return out
}
