package mcdb

import (
	"context"
	"math/bits"

	"repro/internal/faultinject"
	"repro/internal/spectral"
	"repro/internal/tt"
)

// Options configures a database.
type Options struct {
	// ClassifyLimit bounds the spectral classification search
	// (default: spectral.DefaultLimit, the paper's 100000).
	ClassifyLimit int
	// MaxExactK bounds the exhaustive synthesis depth; circuits with up to
	// this many AND gates are found optimally (default 3).
	MaxExactK int
	// SearchBudget bounds each exhaustive synthesis run in operand-pair
	// evaluations (default 50e6). Exhausted budgets fall back to Davio
	// decomposition.
	SearchBudget int
}

func (o Options) withDefaults() Options {
	if o.ClassifyLimit == 0 {
		o.ClassifyLimit = spectral.DefaultLimit
	}
	if o.MaxExactK == 0 {
		o.MaxExactK = 3
	}
	if o.SearchBudget == 0 {
		o.SearchBudget = 50_000_000
	}
	return o
}

// Stats counts database activity.
type Stats struct {
	Classified     int // classification calls that missed the cache
	ClassCacheHits int
	Incomplete     int // classifications that hit the iteration limit
	EntryCacheHits int
	ExactSyntheses int // entries proven MC-optimal
	BoundedExact   int // entries found by exact search below an aborted proof
	DavioFallbacks int // entries built by Davio decomposition
}

type key struct {
	n    int8
	bits uint64
}

// DB caches affine classifications and representative circuits. It plays
// the role of the paper's XAG_DB plus its classification cache. Synthesis is
// fully on demand: looking up a function classifies it, reuses or builds the
// circuit of its class representative, and re-applies the recorded affine
// operations. Not safe for concurrent use.
type DB struct {
	opts     Options
	classes  map[key]spectral.Result
	entries  map[key]*Entry
	building map[key]bool // representatives whose synthesis is in progress
	ctx      context.Context
	Stats    Stats
}

// SetContext installs a cancellation context consulted by the expensive
// synthesis searches; a canceled context makes in-flight exact searches
// abort to the cheap Davio fallback so lookups stay correct but return
// promptly. Passing nil restores the default (never canceled).
func (db *DB) SetContext(ctx context.Context) { db.ctx = ctx }

func (db *DB) context() context.Context {
	if db.ctx == nil {
		return context.Background()
	}
	return db.ctx
}

// New returns an empty database.
func New(opts Options) *DB {
	return &DB{
		opts:     opts.withDefaults(),
		classes:  make(map[key]spectral.Result),
		entries:  make(map[key]*Entry),
		building: make(map[key]bool),
	}
}

func keyOf(f tt.T) key { return key{int8(f.N), f.Bits} }

// Classify returns the (cached) affine classification of f.
func (db *DB) Classify(f tt.T) spectral.Result {
	k := keyOf(f)
	if res, ok := db.classes[k]; ok {
		db.Stats.ClassCacheHits++
		return res
	}
	res := spectral.Classify(f, db.opts.ClassifyLimit)
	db.Stats.Classified++
	if !res.Complete {
		db.Stats.Incomplete++
	}
	db.classes[k] = res
	return res
}

// Lookup classifies f and returns the stored (or freshly synthesized)
// circuit of its class representative together with the classification. The
// recorded transform is AND-free, so Entry.MC() AND gates suffice to
// implement f.
func (db *DB) Lookup(f tt.T) (*Entry, spectral.Result) {
	res := db.Classify(f)
	e := db.EntryFor(res.Repr)
	// Fault-injection point: tests corrupt the returned entry here to prove
	// that the rewriter's per-replacement verification rejects it.
	faultinject.Inject(faultinject.PointDBEntry, e)
	return e, res
}

// EntryFor returns a circuit computing exactly f (no classification of f
// itself; subfunctions encountered during synthesis are classified and
// cached by class).
func (db *DB) EntryFor(f tt.T) *Entry {
	k := keyOf(f)
	if e, ok := db.entries[k]; ok {
		db.Stats.EntryCacheHits++
		return e
	}
	db.building[k] = true
	e := db.synthesize(f)
	delete(db.building, k)
	if err := e.Verify(); err != nil {
		panic(err) // internal invariant: every stored entry computes F
	}
	db.entries[k] = e
	return e
}

// AndCost returns the AND count of the best circuit the database can build
// for f.
func (db *DB) AndCost(f tt.T) int {
	if _, _, ok := f.IsAffine(); ok {
		return 0
	}
	sh, _ := f.Shrink()
	res := db.Classify(sh)
	if db.building[keyOf(res.Repr)] {
		// Cycle through an in-flight representative: fall back to a direct
		// Davio estimate, which strictly reduces the support.
		best := 1 << 20
		for i := 0; i < sh.N; i++ {
			if !sh.DependsOn(i) {
				continue
			}
			f0 := sh.Cofactor(i, false)
			g := f0.Xor(sh.Cofactor(i, true))
			if c := db.AndCost(f0) + db.AndCost(g) + 1; c < best {
				best = c
			}
		}
		return best
	}
	return db.EntryFor(res.Repr).MC()
}

// synthesize builds the best circuit the database can find for f.
func (db *DB) synthesize(f tt.T) *Entry {
	b := &builder{n: f.N, exact: true}
	out := db.emitDirect(b, f)
	return &Entry{
		N:     f.N,
		F:     f,
		Steps: b.steps,
		Out:   out,
		Exact: b.exact,
	}
}

// builder assembles an SLP; the emit functions return basis masks.
type builder struct {
	n     int
	steps []Step
	exact bool // true while the whole construction is proven optimal
}

func (b *builder) and(l, m uint32) uint32 {
	b.steps = append(b.steps, Step{L: l, M: m})
	return 1 << uint(1+b.n+len(b.steps)-1)
}

func affineMask(mask uint, compl bool, varBit func(int) uint32, n int) uint32 {
	var out uint32
	for i := 0; i < n; i++ {
		if mask>>uint(i)&1 == 1 {
			out ^= varBit(i)
		}
	}
	if compl {
		out ^= 1
	}
	return out
}

// emit appends gates computing f to the builder and returns the output
// mask. Subfunctions are classified so that circuits are shared per affine
// class.
func (db *DB) emit(b *builder, f tt.T) uint32 {
	if mask, compl, ok := f.IsAffine(); ok {
		return affineMask(mask, compl, func(i int) uint32 { return 1 << uint(1+i) }, f.N)
	}
	sh, from := f.Shrink()
	res := db.Classify(sh)
	if db.building[keyOf(res.Repr)] {
		return db.emitDirect(b, f)
	}
	e := db.EntryFor(res.Repr)
	if !e.Exact {
		b.exact = false
	}
	return inlineTransformed(b, e, res.Tr, from)
}

// emitDirect synthesizes f without classifying f itself: exhaustive search
// first, then Davio decomposition whose subfunctions go back through emit.
func (db *DB) emitDirect(b *builder, f tt.T) uint32 {
	if mask, compl, ok := f.IsAffine(); ok {
		return affineMask(mask, compl, func(i int) uint32 { return 1 << uint(1+i) }, f.N)
	}

	// Shrink to the support and search there: the exhaustive search cost
	// grows with 4^(basis size). The budget shrinks with the support so
	// that wide functions whose optimality proof is out of reach abort to
	// the Davio fallback quickly; up to four variables the full budget
	// always suffices for a proven-optimal circuit.
	sh, from := f.Shrink()
	budget := db.opts.SearchBudget
	for n := sh.N; n > 4; n-- {
		budget /= 16
	}
	e, exact, _ := ExactSearchContext(db.context(), sh, db.opts.MaxExactK, budget)
	if e != nil {
		if exact {
			db.Stats.ExactSyntheses++
		} else {
			db.Stats.BoundedExact++
			b.exact = false
		}
		return inlineTransformed(b, e, identityTransform(sh.N), from)
	}
	b.exact = false
	db.Stats.DavioFallbacks++

	// Affine Davio decomposition on the cheapest support variable:
	// f = f0 ⊕ x_i ∧ (f0 ⊕ f1).
	bestI, bestCost := -1, 1<<21
	for i := 0; i < f.N; i++ {
		if !f.DependsOn(i) {
			continue
		}
		f0 := f.Cofactor(i, false)
		g := f0.Xor(f.Cofactor(i, true))
		if c := db.AndCost(f0) + db.AndCost(g) + 1; c < bestCost {
			bestI, bestCost = i, c
		}
	}
	f0 := f.Cofactor(bestI, false)
	g := f0.Xor(f.Cofactor(bestI, true))
	out0 := db.emit(b, f0)
	outG := db.emit(b, g)
	a := b.and(1<<uint(1+bestI), outG)
	return out0 ^ a
}

func identityTransform(n int) spectral.Transform {
	tr := spectral.Transform{
		N:          n,
		InputMask:  make([]uint, n),
		InputCompl: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		tr.InputMask[i] = 1 << uint(i)
	}
	return tr
}

// inlineTransformed copies entry e (over shrunk variables) into the builder,
// wrapping it in the affine transform tr and renaming shrunk variable j to
// builder variable from[j]. The transform and renaming are XOR/complement
// only, so no AND gates are added beyond e's steps.
func inlineTransformed(b *builder, e *Entry, tr spectral.Transform, from []int) uint32 {
	varBit := func(j int) uint32 { return 1 << uint(1+from[j]) }
	// val[i] is the builder-basis mask of entry basis element i.
	val := make([]uint32, 1+e.N+len(e.Steps))
	val[0] = 1
	for i := 0; i < e.N; i++ {
		val[1+i] = affineMask(tr.InputMask[i], tr.InputCompl[i], varBit, e.N)
	}
	translate := func(mask uint32) uint32 {
		var out uint32
		for mask != 0 {
			i := bits.TrailingZeros32(mask)
			mask &= mask - 1
			out ^= val[i]
		}
		return out
	}
	for si, st := range e.Steps {
		a := b.and(translate(st.L), translate(st.M))
		val[1+e.N+si] = a
	}
	out := translate(e.Out)
	out ^= affineMask(tr.OutputMask, tr.OutputCompl, varBit, e.N)
	return out
}
