package mcdb

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/sat"
	"repro/internal/tt"
	"repro/internal/xag"
)

// publishedMCDist is the class count per multiplicative complexity for n≤4
// inputs, as established in the exact-synthesis literature (Turán–Peralta:
// every function of at most four variables has MC ≤ 3; the eight affine
// classes of four variables split 1/1/3/3 over MC 0..3). The differential
// tests and `mcdb -selftest` cross-check both synthesis backends against it.
var publishedMCDist = map[int]map[int]int{
	1: {0: 1},
	2: {0: 1, 1: 1},
	3: {0: 1, 1: 1, 2: 1},
	4: {0: 1, 1: 1, 2: 3, 3: 3},
}

// realizeThrough realizes f's classified entry into a fresh network via
// realize.go and returns the Bristol bytes plus the simulated truth table.
func realizeThrough(t *testing.T, db *DB, f tt.T) ([]byte, tt.T) {
	t.Helper()
	e, res := db.Lookup(f)
	net := xag.New()
	leaves := make([]xag.Lit, f.N)
	for i := range leaves {
		leaves[i] = net.AddPI(fmt.Sprintf("x%d", i))
	}
	net.AddPO(Realize(net, e, res.Tr, leaves), "f")
	var buf bytes.Buffer
	if err := net.WriteBristol(&buf); err != nil {
		t.Fatalf("WriteBristol: %v", err)
	}
	ins := make([]uint64, f.N)
	for i := range ins {
		ins[i] = tt.Var(i, f.N).Bits
	}
	got := net.Simulate(ins)[0] & tt.Mask(f.N)
	return buf.Bytes(), tt.New(got, f.N)
}

// TestRefineDifferentialExhaustive pits the SAT backend against the
// exhaustive-search backend on every class of up to four variables: with
// Reprove set, the refiner re-derives each optimality proof from scratch.
// Any circuit the solver finds below an exhaustive proof (Improved > 0),
// any failed proof, and any drift in the realized circuits would expose an
// inconsistency between the two backends.
func TestRefineDifferentialExhaustive(t *testing.T) {
	for n := 1; n <= 4; n++ {
		db := New(Options{})
		var reps []tt.T
		seen := map[uint64]bool{}
		var sample []tt.T
		for bits := uint64(0); bits <= tt.Mask(n); bits++ {
			f := tt.New(bits, n)
			res := db.Classify(f)
			if !seen[res.Repr.Bits] {
				seen[res.Repr.Bits] = true
				reps = append(reps, res.Repr)
				db.EntryFor(res.Repr)
				sample = append(sample, f) // first member encountered per class
			}
		}

		priorMC := make(map[uint64]int)
		for _, r := range reps {
			priorMC[r.Bits] = db.EntryFor(r).MC()
		}
		priorBristol := make([][]byte, len(sample))
		for i, f := range sample {
			priorBristol[i], _ = realizeThrough(t, db, f)
		}

		rep := db.Refine(context.Background(), RefineOptions{Reprove: true})
		if rep.Improved != 0 || rep.AndsSaved != 0 {
			t.Fatalf("n=%d: SAT backend 'improved' %d exhaustively-proven entries (%d ANDs) — backend disagreement",
				n, rep.Improved, rep.AndsSaved)
		}
		if rep.Rejected != 0 {
			t.Fatalf("n=%d: %d decoded models rejected by the validation gate", n, rep.Rejected)
		}
		if rep.Unknown != 0 || rep.Proven != rep.Attempted {
			t.Fatalf("n=%d: not every class proven within the default budget: %+v", n, rep)
		}

		dist := map[int]int{}
		for _, r := range reps {
			e := db.EntryFor(r)
			if err := e.Verify(); err != nil {
				t.Fatalf("n=%d repr %s: refined entry does not verify: %v", n, r, err)
			}
			if !e.Exact {
				t.Fatalf("n=%d repr %s: not stamped proven-optimal after refinement", n, r)
			}
			if e.MC() != priorMC[r.Bits] {
				t.Fatalf("n=%d repr %s: MC changed %d -> %d across reproving",
					n, r, priorMC[r.Bits], e.MC())
			}
			dist[e.MC()]++
		}
		for mc, want := range publishedMCDist[n] {
			if dist[mc] != want {
				t.Fatalf("n=%d: %d classes at MC %d, published distribution has %d (got %v)",
					n, dist[mc], mc, want, dist)
			}
		}

		for i, f := range sample {
			b, sim := realizeThrough(t, db, f)
			if sim != f {
				t.Fatalf("n=%d member %s: realization simulates to %s", n, f, sim)
			}
			if !bytes.Equal(b, priorBristol[i]) {
				t.Fatalf("n=%d member %s: realization changed bytes across reproving", n, f)
			}
		}
	}
}

// TestRefineDifferentialRandom5 warms a database under a starved search
// budget (forcing suboptimal Davio circuits), refines it, and checks every
// refined entry simulates to its class representative, never reports an MC
// above the prior entry, and realizes deterministically byte-for-byte.
func TestRefineDifferentialRandom5(t *testing.T) {
	db := New(Options{SearchBudget: 2000, MaxExactK: 2})
	rng := rand.New(rand.NewSource(42))
	var members []tt.T
	reps := map[uint64]tt.T{}
	for i := 0; i < 8; i++ {
		f := tt.New(rng.Uint64()&tt.Mask(5), 5)
		members = append(members, f)
		res := db.Classify(f)
		reps[res.Repr.Bits] = res.Repr
		db.EntryFor(res.Repr)
	}
	priorMC := map[uint64]int{}
	for b, r := range reps {
		priorMC[b] = db.EntryFor(r).MC()
	}

	rep := db.Refine(context.Background(), RefineOptions{Budget: 2000})
	if rep.Rejected != 0 {
		t.Fatalf("validation gate rejected %d models from an honest run", rep.Rejected)
	}
	if rep.Improved == 0 {
		t.Fatal("expected the refiner to improve at least one budget-starved entry")
	}
	if got := db.Stats().RefineImproved; got != rep.Improved {
		t.Fatalf("stats disagree with report: %d vs %d", got, rep.Improved)
	}

	for b, r := range reps {
		e := db.EntryFor(r)
		if e.MC() > priorMC[b] {
			t.Fatalf("repr %s: MC rose %d -> %d", r, priorMC[b], e.MC())
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("repr %s: refined entry does not verify: %v", r, err)
		}
		if e.MC() < priorMC[b] && !e.Refined {
			t.Fatalf("repr %s: improved entry missing the Refined mark", r)
		}
	}
	for _, f := range members {
		b1, sim1 := realizeThrough(t, db, f)
		b2, sim2 := realizeThrough(t, db, f)
		if sim1 != f || sim2 != f {
			t.Fatalf("member %s: realization simulates to %s / %s", f, sim1, sim2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("member %s: realization is not byte-deterministic", f)
		}
	}
}

// bent4 returns x0x1 ⊕ x2x3: degree 2 but MC 2, so its optimality proof
// must come from an actual UNSAT answer at r=1, not the degree bound.
func bent4() tt.T {
	return tt.Var(0, 4).And(tt.Var(1, 4)).Xor(tt.Var(2, 4).And(tt.Var(3, 4)))
}

// TestRefineEncoderUnsatAtMinusOne checks the encoding itself on a function
// whose degree bound is slack: SAT at the known MC (with a decodable,
// verifying model) and UNSAT one step below.
func TestRefineEncoderUnsatAtMinusOne(t *testing.T) {
	f := bent4()
	enc := newSLPEncoder(f, 2)
	if st := enc.s.Solve(context.Background(), 0); st != sat.Sat {
		t.Fatalf("r=2: %v, want SAT", st)
	}
	e, err := enc.decode(enc.s.Model())
	if err != nil {
		t.Fatalf("decode of honest model: %v", err)
	}
	if e.MC() != 2 || e.F != f {
		t.Fatalf("decoded entry: MC=%d F=%s", e.MC(), e.F)
	}
	low := newSLPEncoder(f, 1)
	if st := low.s.Solve(context.Background(), 0); st != sat.Unsat {
		t.Fatalf("r=1: %v, want UNSAT", st)
	}
}

// TestRefineNegativeControl corrupts a genuine SAT model and asserts the
// decode gate quarantines the resulting circuit instead of admitting it.
func TestRefineNegativeControl(t *testing.T) {
	f := bent4()
	enc := newSLPEncoder(f, 2)
	if st := enc.s.Solve(context.Background(), 0); st != sat.Sat {
		t.Fatalf("solve: %v, want SAT", st)
	}
	model := append([]bool(nil), enc.s.Model()...)

	// Flipping the constant bit of the output mask complements the computed
	// function, so the circuit cannot verify against f.
	corrupt := append([]bool(nil), model...)
	corrupt[enc.selOut[0]] = !corrupt[enc.selOut[0]]
	if _, err := enc.decode(corrupt); err == nil {
		t.Fatal("gate admitted a circuit computing the complement of f")
	}

	// A truncated model decodes to empty masks: never a panic, never a
	// wrong admission.
	if _, err := enc.decode(model[:3]); err == nil {
		t.Fatal("gate admitted a circuit decoded from a truncated model")
	}
	if _, err := enc.decode(nil); err == nil {
		t.Fatal("gate admitted a circuit decoded from an empty model")
	}
}

// TestRefineFaultInjection corrupts models end-to-end through the
// PointRefineModel hook: the refiner must count each rejection, leave the
// stored entries untouched, and keep running. The database is the same
// budget-starved n=5 setup as TestRefineDifferentialRandom5, which that
// test proves yields genuinely improvable entries — so the solver does
// find models here, and every one of them arrives corrupted.
func TestRefineFaultInjection(t *testing.T) {
	db := New(Options{SearchBudget: 2000, MaxExactK: 2})
	rng := rand.New(rand.NewSource(42))
	reps := map[uint64]tt.T{}
	for i := 0; i < 8; i++ {
		f := tt.New(rng.Uint64()&tt.Mask(5), 5)
		res := db.Classify(f)
		reps[res.Repr.Bits] = res.Repr
		db.EntryFor(res.Repr)
	}
	priorMC := map[uint64]int{}
	for b, r := range reps {
		priorMC[b] = db.EntryFor(r).MC()
	}

	// The refiner re-encodes per (function, step count); the instance's
	// variable count is a function of (n, r) alone, so a NumVars → selOut[0]
	// map lets the hook find the output mask's constant selector in any
	// model the solver produces and flip it (complementing the circuit).
	// Candidates include entries synthesized internally for subfunction
	// classes, not just the looked-up representatives, so the map is built
	// from the refiner's own candidate list.
	selOutConst := map[int]int{}
	for _, e := range db.refineCandidates(false, maxRefineSteps, 0) {
		for k := 1; k < e.MC(); k++ {
			enc := newSLPEncoder(e.F, k)
			if prev, ok := selOutConst[enc.s.NumVars()]; ok && prev != enc.selOut[0] {
				t.Fatalf("ambiguous variable count %d: selOut[0] %d vs %d",
					enc.s.NumVars(), prev, enc.selOut[0])
			}
			selOutConst[enc.s.NumVars()] = enc.selOut[0]
		}
	}
	faultinject.Set(faultinject.PointRefineModel, func(payload any) {
		m := payload.([]bool)
		idx, ok := selOutConst[len(m)]
		if !ok {
			t.Errorf("model with unexpected variable count %d", len(m))
			return
		}
		m[idx] = !m[idx]
	})
	defer faultinject.Clear(faultinject.PointRefineModel)

	rep := db.Refine(context.Background(), RefineOptions{Budget: 2000})
	if rep.Rejected == 0 {
		t.Fatalf("corrupted models were not rejected: %+v", rep)
	}
	if rep.Improved != 0 {
		t.Fatalf("a corrupted model was admitted as an improvement: %+v", rep)
	}
	if got := db.Stats().RefineRejected; got != rep.Rejected {
		t.Fatalf("RefineRejected stat = %d, want %d", got, rep.Rejected)
	}
	for b, r := range reps {
		if after := db.EntryFor(r); after.MC() != priorMC[b] {
			t.Fatalf("repr %s changed under corrupted models: MC %d -> %d",
				r, priorMC[b], after.MC())
		}
	}
	verifyAllEntries(t, db)
}

// TestRefinedBitPersists pushes a refined, proven entry through all three
// persistence paths — record payload, snapshot, legacy gob — and checks the
// proof bits survive each round trip.
func TestRefinedBitPersists(t *testing.T) {
	db := New(Options{SearchBudget: 2000, MaxExactK: 2})
	f := bent4()
	res := db.Classify(f)
	db.EntryFor(res.Repr)
	db.Refine(context.Background(), RefineOptions{Reprove: true})
	e := db.EntryFor(res.Repr)
	if !e.Exact || !e.Refined {
		t.Fatalf("refined head not stamped: Exact=%v Refined=%v", e.Exact, e.Refined)
	}

	pe, err := decodeEntryPayload(encodeEntryPayload(persistedOf(e)))
	if err != nil {
		t.Fatalf("payload round trip: %v", err)
	}
	if !pe.Exact || !pe.Refined {
		t.Fatalf("payload dropped proof bits: %+v", pe)
	}

	var snap bytes.Buffer
	if _, err := db.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	fresh := New(Options{})
	if rep, err := fresh.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil || !rep.Clean() {
		t.Fatalf("snapshot load: %v %+v", err, rep)
	}
	if got := fresh.EntryFor(res.Repr); !got.Exact || !got.Refined {
		t.Fatalf("snapshot dropped proof bits: Exact=%v Refined=%v", got.Exact, got.Refined)
	}

	var gobBuf bytes.Buffer
	if err := db.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	fresh2 := New(Options{})
	if _, err := fresh2.Load(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if got := fresh2.EntryFor(res.Repr); !got.Exact || !got.Refined {
		t.Fatalf("gob dropped proof bits: Exact=%v Refined=%v", got.Exact, got.Refined)
	}
}

// patchHeaderCRC recomputes a snapshot header's checksum after a test
// mutated the version field.
func patchHeaderCRC(raw []byte) {
	binary.LittleEndian.PutUint32(raw[20:], crc32.Checksum(raw[:20], crcTable))
}

// TestSnapshotVersion1Accepted patches a fresh (version 2) snapshot down to
// a version-1 header and checks the loader still admits it — old snapshots
// keep loading after the Refined-flag version bump.
func TestSnapshotVersion1Accepted(t *testing.T) {
	db, _ := warmDB(t, 99, 10)
	var buf bytes.Buffer
	n, err := db.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 1 // version field, little-endian low byte
	// Recompute the header checksum over the first 20 bytes.
	patchHeaderCRC(raw)

	fresh := New(Options{})
	rep, err := fresh.LoadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("version-1 snapshot refused: %v", err)
	}
	if !rep.Clean() || rep.Loaded != n {
		t.Fatalf("version-1 snapshot load not clean: %+v", rep)
	}

	// Versions outside [min, current] stay unreadable.
	raw[8] = 3
	patchHeaderCRC(raw)
	if _, err := New(Options{}).LoadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("future snapshot version admitted")
	}
}

// TestProofBitTieUpgrade checks the Pareto tie rule: an identical circuit
// with stronger proof bits replaces the incumbent (so journal replay
// preserves refiner stamps), while equal-or-weaker duplicates stay no-ops.
func TestProofBitTieUpgrade(t *testing.T) {
	db := New(Options{})
	f := tt.Var(0, 2).And(tt.Var(1, 2))
	plain := &Entry{N: 2, F: f, Steps: []Step{{L: 1 << 1, M: 1 << 2}}, Out: 1 << 3}
	if err := plain.Verify(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	if !db.addEntryLocked(plain) {
		t.Fatal("first insert refused")
	}
	if db.addEntryLocked(plain) {
		t.Fatal("identical re-insert accepted")
	}
	stamped := &Entry{N: 2, F: f, Steps: plain.Steps, Out: plain.Out, Exact: true, Refined: true}
	if !db.addEntryLocked(stamped) {
		t.Fatal("proof-bit upgrade refused")
	}
	head := db.entries[keyOf(f)][0]
	db.mu.Unlock()
	if !head.Exact || !head.Refined {
		t.Fatalf("head not upgraded: Exact=%v Refined=%v", head.Exact, head.Refined)
	}
	// Replaying the weaker record must not downgrade.
	db.mu.Lock()
	if db.addEntryLocked(plain) {
		t.Fatal("weaker duplicate replaced the proven entry")
	}
	head = db.entries[keyOf(f)][0]
	db.mu.Unlock()
	if !head.Exact || !head.Refined {
		t.Fatal("proof bits lost after replaying the weaker record")
	}
}

// FuzzRefineModel is the decoder mirror of FuzzLoadSnapshot: arbitrary
// model bytes against arbitrary small instances must never panic and never
// admit a circuit that does not verify as exactly (f, r steps).
func FuzzRefineModel(fz *testing.F) {
	// Seed with the honest model of a solvable instance plus mutations.
	f := tt.Var(0, 2).And(tt.Var(1, 2))
	enc := newSLPEncoder(f, 1)
	if st := enc.s.Solve(context.Background(), 0); st != sat.Sat {
		fz.Fatalf("seed instance: %v", st)
	}
	seed := make([]byte, len(enc.s.Model()))
	for i, b := range enc.s.Model() {
		if b {
			seed[i] = 1
		}
	}
	fz.Add(uint8(2), uint8(1), f.Bits, seed)
	fz.Add(uint8(2), uint8(1), f.Bits, seed[:2])
	fz.Add(uint8(1), uint8(0), uint64(0b01), []byte{})
	fz.Add(uint8(3), uint8(3), uint64(0x96), bytes.Repeat([]byte{1}, 64))

	fz.Fuzz(func(t *testing.T, nRaw, rRaw uint8, fbits uint64, modelRaw []byte) {
		n := 1 + int(nRaw)%3 // 1..3 keeps the per-iteration encoding cheap
		r := int(rRaw) % 4   // 0..3
		ft := tt.New(fbits&tt.Mask(n), n)
		e := newSLPEncoder(ft, r)
		model := make([]bool, len(modelRaw))
		for i, b := range modelRaw {
			model[i] = b&1 == 1
		}
		ent, err := e.decode(model)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		if verr := ent.Verify(); verr != nil {
			t.Fatalf("admitted entry does not verify: %v", verr)
		}
		if ent.F != ft || ent.MC() != r || ent.N != n {
			t.Fatalf("admitted entry mismatches the instance: F=%s MC=%d N=%d want F=%s MC=%d N=%d",
				ent.F, ent.MC(), ent.N, ft, r, n)
		}
	})
}
