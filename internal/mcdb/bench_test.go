package mcdb

import (
	"math/rand"
	"testing"

	"repro/internal/tt"
)

func BenchmarkExactSearchMaj(b *testing.B) {
	f := tt.New(0xe8, 3)
	for i := 0; i < b.N; i++ {
		ExactSearch(f, 3, 1_000_000)
	}
}

func BenchmarkExactSearchRandom4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fs := make([]tt.T, 64)
	for i := range fs {
		fs[i] = tt.New(rng.Uint64(), 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactSearch(fs[i%len(fs)], 3, 50_000_000)
	}
}

func BenchmarkLookupCached(b *testing.B) {
	db := New(Options{})
	rng := rand.New(rand.NewSource(2))
	fs := make([]tt.T, 48)
	for i := range fs {
		fs[i] = tt.New(rng.Uint64(), 5)
		db.Lookup(fs[i]) // warm the caches
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(fs[i%len(fs)])
	}
}

func BenchmarkSynthesize6VarCold(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		db := New(Options{})
		db.EntryFor(tt.New(rng.Uint64(), 6))
	}
}
