package mcdb

import "repro/internal/metrics"

// RegisterMetrics exposes the database's live activity counters on r under
// the mcdb_* names, read at scrape time from the same atomics that back
// Stats — no double bookkeeping, no sampling loop. Registration is
// idempotent per registry (the first binding wins), so a database shared by
// many engines can be registered by each of them; registering a *different*
// database on the same registry is also a no-op, keeping the first one,
// which matches the one-warm-DB-per-process deployment of mcserved.
func (db *DB) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("mcdb_classifications_total",
		"Affine classifications computed (class cache misses).",
		func() float64 { return float64(db.stats.classified.Load()) })
	r.CounterFunc("mcdb_class_cache_hits_total",
		"Classification calls answered from the class cache.",
		func() float64 { return float64(db.stats.classCacheHits.Load()) })
	r.GaugeFunc("mcdb_class_cache_hit_rate",
		"Fraction of classification calls answered from the cache.",
		func() float64 { return db.Stats().ClassHitRate() })
	r.CounterFunc("mcdb_incomplete_classifications_total",
		"Classifications that hit the spectral iteration limit.",
		func() float64 { return float64(db.stats.incomplete.Load()) })
	r.CounterFunc("mcdb_entry_cache_hits_total",
		"Representative-circuit lookups answered from the entry cache.",
		func() float64 { return float64(db.stats.entryCacheHits.Load()) })
	r.CounterFunc("mcdb_exact_syntheses_total",
		"Entries proven MC-optimal by exhaustive search.",
		func() float64 { return float64(db.stats.exactSyntheses.Load()) })
	r.CounterFunc("mcdb_bounded_exact_syntheses_total",
		"Entries found by exact search below an aborted optimality proof.",
		func() float64 { return float64(db.stats.boundedExact.Load()) })
	r.CounterFunc("mcdb_davio_fallbacks_total",
		"Entries built by Davio decomposition after exact search gave up.",
		func() float64 { return float64(db.stats.davioFallbacks.Load()) })
	r.CounterFunc("mcdb_recovered_entries_total",
		"Entries admitted from snapshots and journal replay.",
		func() float64 { return float64(db.stats.recovered.Load()) })
	r.CounterFunc("mcdb_quarantined_entries_total",
		"Persisted records rejected by checksum or validation and skipped.",
		func() float64 { return float64(db.stats.quarantined.Load()) })
	r.GaugeFunc("mcdb_classes",
		"Distinct cut functions in the classification cache.",
		func() float64 { return float64(db.NumClasses()) })
	r.GaugeFunc("mcdb_entries",
		"Synthesized representative circuits in the database.",
		func() float64 { return float64(db.NumEntries()) })

	// SAT refiner activity (refine.go, DESIGN.md §16). Counters move only
	// while a Refine pass runs — offline via `mcdb refine` or in mcserved's
	// background refiner goroutine.
	r.CounterFunc("mcdb_refine_attempts_total",
		"Entries the SAT refiner worked on.",
		func() float64 { return float64(db.stats.refineAttempts.Load()) })
	r.CounterFunc("mcdb_refine_improved_total",
		"Entries replaced by a smaller SAT-synthesized circuit.",
		func() float64 { return float64(db.stats.refineImproved.Load()) })
	r.CounterFunc("mcdb_refine_proven_total",
		"Entries stamped proven-optimal (UNSAT at MC−1 or degree bound).",
		func() float64 { return float64(db.stats.refineProven.Load()) })
	r.CounterFunc("mcdb_refine_unknown_total",
		"Refinement attempts abandoned within the conflict budget.",
		func() float64 { return float64(db.stats.refineUnknown.Load()) })
	r.CounterFunc("mcdb_refine_rejected_total",
		"Decoded SAT models refused by the validation gate.",
		func() float64 { return float64(db.stats.refineRejected.Load()) })
	r.CounterFunc("mcdb_refine_ands_saved_total",
		"AND gates removed from stored circuits by refinement.",
		func() float64 { return float64(db.stats.refineAndsSaved.Load()) })

	// Classification fast-path observability (DESIGN.md §15). The step
	// histogram ranges from trivial searches to the iteration limit; the
	// incomplete counter mirrors mcdb_incomplete_classifications_total under
	// the engine-facing mcc_* name the classify dashboards use.
	db.classifySteps.Store(r.Histogram("mcc_classify_steps",
		"DFS steps consumed per classification that missed the caches.",
		metrics.ExpBuckets(100, 4, 6)))
	r.CounterFunc("mcc_classify_incomplete_total",
		"Classifications that hit the spectral iteration limit.",
		func() float64 { return float64(db.stats.incomplete.Load()) })
	r.CounterFunc("mcdb_semicanon_hits_total",
		"Class-cache misses answered by the semi-canonical second-level cache.",
		func() float64 { return float64(db.stats.semiHits.Load()) })
	r.CounterFunc("mcdb_semicanon_misses_total",
		"Class-cache misses that ran the full spectral search (or lacked a semi-canonical key).",
		func() float64 { return float64(db.stats.semiMisses.Load()) })
}
