package mcdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultinject"
)

// The write-ahead journal holds every entry admitted to the database since
// the last snapshot, one checksummed record per entry, fsynced on append.
// Synthesis is orders of magnitude more expensive than an fsync, so the
// durability cost disappears into the work it protects. A crash can tear at
// most the record being appended; replay tolerates exactly that (a torn
// tail stops replay, a corrupt record in the middle is quarantined and
// skipped) so nothing admitted before the crash is ever lost.
//
//	header (16 bytes, little-endian):
//	    magic   [8]byte  "MCDBWAL1"
//	    version uint32   journalVersion
//	    crc     uint32   CRC32C of the preceding 12 bytes
//	records: identical framing and payload encoding to snapshot records.

var walMagic = [8]byte{'M', 'C', 'D', 'B', 'W', 'A', 'L', '1'}

const (
	// journalVersion 2 records the Refined provenance flag in its entry
	// payloads (same encoding as snapshot records). Version-1 journals
	// replay unchanged, so recovery accepts both.
	journalVersion    = 2
	minJournalVersion = 1
	walHeaderLen      = 16
)

// journalWriter appends checksummed entry records to an open journal file.
// It is not safe for concurrent use; the Store serializes access.
type journalWriter struct {
	f       *os.File
	records int
}

// createJournal writes a fresh journal file with a durable header. The
// header write is fsynced before any record can follow, so replay never sees
// records behind a torn header unless the crash hit header creation itself —
// in which case the file holds no records to lose.
func createJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], journalVersion)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(hdr[:12], crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &journalWriter{f: f}, nil
}

// openJournalForAppend reopens an existing journal whose valid prefix length
// is known from replay, truncating any torn tail first so new records start
// at a clean boundary.
func openJournalForAppend(path string, validBytes int64, records int) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &journalWriter{f: f, records: records}, nil
}

// Append journals one entry durably: the record is written and fsynced
// before Append returns, so a crash after Append can never lose the entry.
// The write is deliberately split around the journal-append crash point so a
// fault-injected kill produces a genuinely torn record.
func (j *journalWriter) Append(e *Entry) error {
	payload := encodeEntryPayload(persistedOf(e))
	var buf bytes.Buffer
	if err := writeRecord(&buf, payload); err != nil {
		return err
	}
	rec := buf.Bytes()
	half := len(rec) / 2
	if _, err := j.f.Write(rec[:half]); err != nil {
		return err
	}
	// Crash point: half a record is on disk; replay must stop cleanly at the
	// previous record and the reopened journal must truncate the torn tail.
	faultinject.Inject(faultinject.PointJournalAppend, half)
	if _, err := j.f.Write(rec[half:]); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.records++
	return nil
}

func (j *journalWriter) Close() error { return j.f.Close() }

// replayJournal merges a journal's records into the database under the same
// quarantine policy as LoadSnapshot and returns the report plus the length
// of the valid prefix (header + every whole record read), which the caller
// uses to truncate a torn tail before appending again. A file shorter than
// its header — a crash during journal creation — replays as empty. A header
// that is present but corrupt quarantines the whole file: its records cannot
// be trusted, but the snapshot beside it still loads.
func replayJournal(r io.Reader, db *DB) (LoadReport, int64, error) {
	var rep LoadReport
	br := bufio.NewReader(r)
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return rep, 0, nil // torn header: an empty journal
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); !bytes.Equal(hdr[:8], walMagic[:]) ||
		crc32.Checksum(hdr[:12], crcTable) != binary.LittleEndian.Uint32(hdr[12:]) ||
		v < minJournalVersion || v > journalVersion {
		rep.Truncated = true
		rep.problem("journal header corrupt; discarding the journal's records")
		return rep, 0, nil
	}
	valid := int64(walHeaderLen)
	for i := 0; ; i++ {
		payload, recErr, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: the record being appended when the process died.
			rep.Truncated = true
			rep.problem("record %d: torn tail, stopping replay", i+1)
			break
		}
		db.admitQuarantining(&rep, payload, recErr, fmt.Sprintf("journal record %d", i+1))
		valid += int64(recordFrameLen + len(payload))
	}
	return rep, valid, nil
}
