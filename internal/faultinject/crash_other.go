//go:build !unix

package faultinject

import "os"

// crashNow approximates SIGKILL on platforms without it: exit immediately
// with the conventional 128+9 status, skipping deferred functions and
// flushes.
func crashNow() { os.Exit(137) }
