//go:build unix

package faultinject

import (
	"os"
	"syscall"
)

// crashNow terminates the process the way a power cut would: SIGKILL to
// self, so no deferred functions run and no buffers flush. The os.Exit
// fallback only runs if the kernel refuses the signal, which it does not for
// a process signalling itself.
func crashNow() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}
