// Package faultinject provides a process-wide fault-injection registry used
// to test the optimizer's resilience guarantees. Production code declares
// named injection points (Inject calls with a mutable payload); tests
// install hooks that corrupt the payload, panic, or delay at those points,
// and then assert that the pipeline either rejects the faulty result or
// reports a structured error — never a functionally wrong network.
//
// With no hooks installed, Inject is a single atomic load and adds no
// measurable overhead, so the instrumentation stays in release builds.
//
// The registry is safe for concurrent Set/Clear/Inject. Hooks run under the
// registry lock, so a hook installed from a test needs no synchronization of
// its own even when the instrumented pipeline fires it from multiple worker
// goroutines (the parallel rewriting engine does exactly that). A hook is
// still allowed to panic by design: the lock is released on the way out of
// the panic.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Injection points instrumented in the pipeline. Payload types are
// documented per point; hooks may mutate the payload in place.
const (
	// PointCutFunction fires in core for every cut function about to be
	// classified and rewritten. Payload: *tt.T — flipping bits simulates a
	// truth-table computation bug (caught only by the end-of-round miter,
	// because the rewrite is internally consistent with the corrupted table).
	PointCutFunction = "core/cut-function"

	// PointDBEntry fires in mcdb.Lookup for every entry returned to the
	// rewriter. Payload: *mcdb.Entry (as any) — corrupting steps or output
	// mask simulates database corruption (caught by the per-rewrite
	// truth-table check).
	PointDBEntry = "mcdb/lookup-entry"

	// PointNode fires in core once per node considered for rewriting.
	// Payload: int node id — panicking or delaying here exercises the
	// per-node recovery and cancellation paths.
	PointNode = "core/node"
)

var (
	mu     sync.Mutex
	hooks  = make(map[string]func(any))
	fired  = make(map[string]int)
	active atomic.Int32
)

// Set installs hook at the given injection point, replacing any previous
// hook there.
func Set(point string, hook func(payload any)) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; !ok {
		active.Add(1)
	}
	hooks[point] = hook
}

// Clear removes the hook at the given point, if any.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; ok {
		delete(hooks, point)
		active.Add(-1)
	}
}

// Reset removes all hooks and zeroes the fired counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = make(map[string]func(any))
	fired = make(map[string]int)
	active.Store(0)
}

// Fired reports how many times a hook ran at the given point since the last
// Reset.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[point]
}

// Inject runs the hook installed at point, if any, passing it the payload.
// Instrumented code calls this at interesting places; with no hooks
// installed it returns after one atomic load.
func Inject(point string, payload any) {
	if active.Load() == 0 {
		return
	}
	mu.Lock()
	defer mu.Unlock() // released even when the hook panics by design
	h := hooks[point]
	if h == nil {
		return
	}
	fired[point]++
	// Under the lock: concurrent injection sites (the parallel engine's
	// workers) must not race on a test hook's captured state. Hooks must not
	// call back into the registry.
	h(payload)
}

// PanicHook returns a hook that panics with v.
func PanicHook(v any) func(any) {
	return func(any) { panic(v) }
}

// DelayHook returns a hook that sleeps for d.
func DelayHook(d time.Duration) func(any) {
	return func(any) { time.Sleep(d) }
}

// Once wraps a hook so that only its first invocation runs. Hooks execute
// under the registry lock, so the wrapper needs no synchronization of its
// own even on concurrent pipelines.
func Once(h func(any)) func(any) {
	done := false
	return func(p any) {
		if !done {
			done = true
			h(p)
		}
	}
}
