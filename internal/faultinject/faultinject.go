// Package faultinject provides a process-wide fault-injection registry used
// to test the optimizer's resilience guarantees. Production code declares
// named injection points (Inject calls with a mutable payload); tests
// install hooks that corrupt the payload, panic, or delay at those points,
// and then assert that the pipeline either rejects the faulty result or
// reports a structured error — never a functionally wrong network.
//
// With no hooks installed, Inject is a single atomic load and adds no
// measurable overhead, so the instrumentation stays in release builds.
//
// The registry is safe for concurrent Set/Clear/Inject, but a hook itself
// runs outside the registry lock (a hook is allowed to panic by design) and
// should be internally synchronized if the instrumented code is concurrent.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Injection points instrumented in the pipeline. Payload types are
// documented per point; hooks may mutate the payload in place.
const (
	// PointCutFunction fires in core for every cut function about to be
	// classified and rewritten. Payload: *tt.T — flipping bits simulates a
	// truth-table computation bug (caught only by the end-of-round miter,
	// because the rewrite is internally consistent with the corrupted table).
	PointCutFunction = "core/cut-function"

	// PointDBEntry fires in mcdb.Lookup for every entry returned to the
	// rewriter. Payload: *mcdb.Entry (as any) — corrupting steps or output
	// mask simulates database corruption (caught by the per-rewrite
	// truth-table check).
	PointDBEntry = "mcdb/lookup-entry"

	// PointNode fires in core once per node considered for rewriting.
	// Payload: int node id — panicking or delaying here exercises the
	// per-node recovery and cancellation paths.
	PointNode = "core/node"
)

var (
	mu     sync.Mutex
	hooks  = make(map[string]func(any))
	fired  = make(map[string]int)
	active atomic.Int32
)

// Set installs hook at the given injection point, replacing any previous
// hook there.
func Set(point string, hook func(payload any)) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; !ok {
		active.Add(1)
	}
	hooks[point] = hook
}

// Clear removes the hook at the given point, if any.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; ok {
		delete(hooks, point)
		active.Add(-1)
	}
}

// Reset removes all hooks and zeroes the fired counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = make(map[string]func(any))
	fired = make(map[string]int)
	active.Store(0)
}

// Fired reports how many times a hook ran at the given point since the last
// Reset.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[point]
}

// Inject runs the hook installed at point, if any, passing it the payload.
// Instrumented code calls this at interesting places; with no hooks
// installed it returns after one atomic load.
func Inject(point string, payload any) {
	if active.Load() == 0 {
		return
	}
	mu.Lock()
	h := hooks[point]
	if h != nil {
		fired[point]++
	}
	mu.Unlock()
	if h != nil {
		h(payload) // outside the lock: hooks may panic by design
	}
}

// PanicHook returns a hook that panics with v.
func PanicHook(v any) func(any) {
	return func(any) { panic(v) }
}

// DelayHook returns a hook that sleeps for d.
func DelayHook(d time.Duration) func(any) {
	return func(any) { time.Sleep(d) }
}

// Once wraps a hook so that only its first invocation runs. The wrapper is
// not internally synchronized; use it on single-threaded pipelines only.
func Once(h func(any)) func(any) {
	done := false
	return func(p any) {
		if !done {
			done = true
			h(p)
		}
	}
}
