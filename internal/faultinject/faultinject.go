// Package faultinject provides a process-wide fault-injection registry used
// to test the optimizer's resilience guarantees. Production code declares
// named injection points (Inject calls with a mutable payload); tests
// install hooks that corrupt the payload, panic, or delay at those points,
// and then assert that the pipeline either rejects the faulty result or
// reports a structured error — never a functionally wrong network.
//
// With no hooks installed, Inject is a single atomic load and adds no
// measurable overhead, so the instrumentation stays in release builds.
//
// The registry is safe for concurrent Set/Clear/Inject. Hooks run under the
// registry lock, so a hook installed from a test needs no synchronization of
// its own even when the instrumented pipeline fires it from multiple worker
// goroutines (the parallel rewriting engine does exactly that). A hook is
// still allowed to panic by design: the lock is released on the way out of
// the panic.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection points instrumented in the pipeline. Payload types are
// documented per point; hooks may mutate the payload in place.
const (
	// PointCutFunction fires in core for every cut function about to be
	// classified and rewritten. Payload: *tt.T — flipping bits simulates a
	// truth-table computation bug (caught only by the end-of-round miter,
	// because the rewrite is internally consistent with the corrupted table).
	PointCutFunction = "core/cut-function"

	// PointDBEntry fires in mcdb.Lookup for every entry returned to the
	// rewriter. Payload: *mcdb.Entry (as any) — corrupting steps or output
	// mask simulates database corruption (caught by the per-rewrite
	// truth-table check).
	PointDBEntry = "mcdb/lookup-entry"

	// PointNode fires in core once per node considered for rewriting.
	// Payload: int node id — panicking or delaying here exercises the
	// per-node recovery and cancellation paths.
	PointNode = "core/node"

	// PointSnapshotWrite fires in mcdb once per entry record written to a
	// snapshot temp file, after the record's bytes hit the file. Payload:
	// int record index — crashing here leaves a torn temp file that the
	// recovery path must ignore.
	PointSnapshotWrite = "mcdb/snapshot-write"

	// PointSnapshotRename fires in mcdb after the snapshot temp file is
	// fsynced and immediately before the atomic rename. Payload: string
	// target path — crashing here proves the old snapshot + journal pair
	// stays authoritative until the rename lands.
	PointSnapshotRename = "mcdb/snapshot-rename"

	// PointJournalAppend fires in mcdb midway through writing one journal
	// record (after the first half of the record's bytes). Payload: int
	// bytes written so far — crashing here produces exactly the torn tail
	// the journal replay must tolerate.
	PointJournalAppend = "mcdb/journal-append"

	// PointServerRequest fires in the mcserved worker once per optimize
	// request, after slot acquisition and before the engine starts.
	// Payload: nil — panicking here exercises the per-request isolation
	// (the request gets a 500, the daemon keeps serving).
	PointServerRequest = "server/request"

	// PointRefineModel fires in the SAT refiner for every satisfying model
	// about to be decoded into a circuit. Payload: []bool, the model —
	// mutating it corrupts the decoded circuit and proves the refiner's
	// validation gate quarantines it instead of admitting it.
	PointRefineModel = "mcdb/refine-model"
)

var (
	mu     sync.Mutex
	hooks  = make(map[string]func(any))
	fired  = make(map[string]int)
	active atomic.Int32
)

// Set installs hook at the given injection point, replacing any previous
// hook there.
func Set(point string, hook func(payload any)) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; !ok {
		active.Add(1)
	}
	hooks[point] = hook
}

// Clear removes the hook at the given point, if any.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[point]; ok {
		delete(hooks, point)
		active.Add(-1)
	}
}

// Reset removes all hooks and zeroes the fired counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = make(map[string]func(any))
	fired = make(map[string]int)
	active.Store(0)
}

// Armed reports whether a hook is currently installed at the given point.
// Pipeline code may consult it to keep fault-injection semantics exact: the
// parallel commit falls back to the sequential pass when PointNode is armed,
// so hooks fire once per considered node in deterministic order, exactly as
// the resilience tests expect. With no hooks anywhere this is a single
// atomic load.
func Armed(point string) bool {
	if active.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return hooks[point] != nil
}

// Fired reports how many times a hook ran at the given point since the last
// Reset.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[point]
}

// Inject runs the hook installed at point, if any, passing it the payload.
// Instrumented code calls this at interesting places; with no hooks
// installed it returns after one atomic load.
func Inject(point string, payload any) {
	if active.Load() == 0 {
		return
	}
	mu.Lock()
	defer mu.Unlock() // released even when the hook panics by design
	h := hooks[point]
	if h == nil {
		return
	}
	fired[point]++
	// Under the lock: concurrent injection sites (the parallel engine's
	// workers) must not race on a test hook's captured state. Hooks must not
	// call back into the registry.
	h(payload)
}

// PanicHook returns a hook that panics with v.
func PanicHook(v any) func(any) {
	return func(any) { panic(v) }
}

// DelayHook returns a hook that sleeps for d.
func DelayHook(d time.Duration) func(any) {
	return func(any) { time.Sleep(d) }
}

// Once wraps a hook so that only its first invocation runs. Hooks execute
// under the registry lock, so the wrapper needs no synchronization of its
// own even on concurrent pipelines.
func Once(h func(any)) func(any) {
	done := false
	return func(p any) {
		if !done {
			done = true
			h(p)
		}
	}
}

// OnNth wraps a hook so that only its nth invocation (1-based) runs. Like
// Once, the counter needs no synchronization because hooks execute under the
// registry lock.
func OnNth(n int, h func(any)) func(any) {
	count := 0
	return func(p any) {
		count++
		if count == n {
			h(p)
		}
	}
}

// CrashEnv is the environment variable InstallCrashFromEnv reads. Its value
// is "point" or "point:n": at the nth firing of the named injection point
// (default 1) the process SIGKILLs itself — no deferred functions, no
// flushes, exactly the state a power cut or `kill -9` leaves behind.
const CrashEnv = "FAULTINJECT_CRASH"

// InstallCrashFromEnv arms the crash point described by the FAULTINJECT_CRASH
// environment variable, if set. It returns the armed point name (empty when
// the variable is unset) so callers can log what will kill them. A malformed
// value is an error rather than a silently unarmed crash, because a crash
// test that never crashes reports false confidence.
func InstallCrashFromEnv() (string, error) {
	v := os.Getenv(CrashEnv)
	if v == "" {
		return "", nil
	}
	point, n := v, 1
	if i := strings.LastIndexByte(v, ':'); i >= 0 {
		point = v[:i]
		parsed, err := strconv.Atoi(v[i+1:])
		if err != nil || parsed < 1 {
			return "", fmt.Errorf("faultinject: %s=%q: firing count must be a positive integer", CrashEnv, v)
		}
		n = parsed
	}
	if point == "" {
		return "", fmt.Errorf("faultinject: %s=%q: empty point name", CrashEnv, v)
	}
	Set(point, OnNth(n, func(any) { crashNow() }))
	return point, nil
}
