package faultinject

import (
	"testing"
	"time"
)

func TestInjectWithoutHooksIsNoop(t *testing.T) {
	t.Cleanup(Reset)
	Inject("nonexistent", nil) // must not panic or count
	if Fired("nonexistent") != 0 {
		t.Fatal("fired counter advanced without a hook")
	}
}

func TestSetInjectClear(t *testing.T) {
	t.Cleanup(Reset)
	got := 0
	Set("p", func(payload any) { got = payload.(int) })
	Inject("p", 42)
	if got != 42 {
		t.Fatalf("hook saw %d, want 42", got)
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
	Clear("p")
	Inject("p", 7)
	if got != 42 || Fired("p") != 1 {
		t.Fatal("hook ran after Clear")
	}
	Clear("p") // double clear is fine
}

func TestHooksAreIndependentPerPoint(t *testing.T) {
	t.Cleanup(Reset)
	var a, b int
	Set("a", func(any) { a++ })
	Set("b", func(any) { b++ })
	Inject("a", nil)
	Inject("a", nil)
	Inject("b", nil)
	if a != 2 || b != 1 {
		t.Fatalf("a=%d b=%d, want 2 and 1", a, b)
	}
	Clear("a")
	Inject("a", nil)
	Inject("b", nil)
	if a != 2 || b != 2 {
		t.Fatal("clearing one point affected the other")
	}
}

func TestPayloadMutation(t *testing.T) {
	t.Cleanup(Reset)
	Set("mut", func(p any) { *p.(*int) ^= 1 })
	v := 6
	Inject("mut", &v)
	if v != 7 {
		t.Fatalf("payload not mutated: %d", v)
	}
}

func TestReset(t *testing.T) {
	Set("x", func(any) {})
	Inject("x", nil)
	Reset()
	if Fired("x") != 0 {
		t.Fatal("Reset kept fired counters")
	}
	ran := false
	func() {
		defer func() { _ = recover() }()
		Inject("x", nil)
		ran = true
	}()
	if !ran || Fired("x") != 0 {
		t.Fatal("Reset kept hooks")
	}
}

func TestPanicHook(t *testing.T) {
	t.Cleanup(Reset)
	Set("boom", PanicHook("kaput"))
	defer func() {
		if r := recover(); r != "kaput" {
			t.Fatalf("recovered %v, want kaput", r)
		}
	}()
	Inject("boom", nil)
	t.Fatal("PanicHook did not panic")
}

func TestDelayHook(t *testing.T) {
	t.Cleanup(Reset)
	Set("slow", DelayHook(10*time.Millisecond))
	start := time.Now()
	Inject("slow", nil)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("DelayHook returned after %v", d)
	}
}

func TestOnce(t *testing.T) {
	t.Cleanup(Reset)
	n := 0
	Set("once", Once(func(any) { n++ }))
	Inject("once", nil)
	Inject("once", nil)
	Inject("once", nil)
	if n != 1 {
		t.Fatalf("Once hook ran %d times", n)
	}
	if Fired("once") != 3 {
		t.Fatalf("Fired = %d, want 3 (wrapper still invoked)", Fired("once"))
	}
}
