package xag

import "testing"

func TestRegionStampBasics(t *testing.T) {
	var rs RegionStamp
	rs.Reset(8)
	if rs.Has(3) {
		t.Fatal("fresh stamp reports membership")
	}
	if !rs.Add(3) || rs.Add(3) {
		t.Fatal("Add must report first insertion only")
	}
	if !rs.Has(3) || rs.Has(4) {
		t.Fatal("membership after Add is wrong")
	}
	rs.Reset(8)
	if rs.Has(3) {
		t.Fatal("Reset did not empty the set")
	}
	// Growing reset keeps earlier ids addressable.
	rs.Add(7)
	rs.Reset(16)
	if rs.Has(7) {
		t.Fatal("growing Reset leaked membership")
	}
	if !rs.Add(15) {
		t.Fatal("grown stamp rejects new id")
	}
}

func TestRegionStampEpochWrap(t *testing.T) {
	var rs RegionStamp
	rs.Reset(4)
	rs.Add(1)
	rs.epoch = ^uint32(0) // next Reset wraps to 0 and must clear
	rs.Reset(4)
	for id := 0; id < 4; id++ {
		if rs.Has(id) {
			t.Fatalf("id %d survives an epoch wrap", id)
		}
	}
	if !rs.Add(2) || !rs.Has(2) {
		t.Fatal("stamp unusable after epoch wrap")
	}
}

// TestMFFCRegionScratchMatchesMFFC: the region variant must compute the
// same cone costs as MFFCScratch and report every id the walk consulted —
// which always includes the MFFC's interior gates.
func TestMFFCRegionScratchMatchesMFFC(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	ab := n.And(a, b)     // interior of root's MFFC (single fanout)
	abc := n.And(ab, c)   // root
	shared := n.Xor(a, b) // outside the cone
	n.AddPO(abc, "f")
	n.AddPO(shared, "g")

	leaves := []int{a.Node(), b.Node(), c.Node()}
	var s ConeScratch
	wantAnds, wantXors := n.MFFCScratch(abc.Node(), leaves, &s)
	ands, xors, region := n.MFFCRegionScratch(abc.Node(), leaves, &s, nil)
	if ands != wantAnds || xors != wantXors {
		t.Fatalf("region walk cost (%d,%d) != MFFCScratch (%d,%d)", ands, xors, wantAnds, wantXors)
	}
	has := func(id int) bool {
		for _, r := range region {
			if int(r) == id {
				return true
			}
		}
		return false
	}
	if !has(ab.Node()) {
		t.Fatalf("region %v misses MFFC interior gate %d", region, ab.Node())
	}
	if has(shared.Node()) {
		t.Fatalf("region %v contains node %d outside the walk", region, shared.Node())
	}
	// Scratch must be fully released: an immediate second query agrees.
	ands2, _, _ := n.MFFCRegionScratch(abc.Node(), leaves, &s, nil)
	if ands2 != ands {
		t.Fatalf("second region walk disagrees: %d != %d", ands2, ands)
	}
}

// TestWriteCapture: every refs/repl mutation of a pre-existing node —
// substitution target, replacement root, recursively dereferenced fanins,
// fanins of newly created gates, new PO targets — lands in the armed
// stamp, while nodes created after arming stay out.
func TestWriteCapture(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	d := n.AddPI("d") // untouched until the AddPO leg
	ab := n.And(a, b)
	root := n.And(ab, c)
	n.AddPO(root, "f")

	var ws RegionStamp
	ws.Reset(n.NumNodes() + 16)
	n.BeginWriteCapture(&ws)
	defer n.EndWriteCapture()

	// Creating a gate over pre-existing fanins stamps the fanins (their
	// refs grow) but not the new gate itself.
	ac := n.And(a, c)
	if !ws.Has(a.Node()) || !ws.Has(c.Node()) {
		t.Fatal("lookupOrCreate did not capture fanin ref bumps")
	}
	if ws.Has(ac.Node()) {
		t.Fatal("captured a node created after arming")
	}

	// Substituting the root stamps it, the replacement, and the fanins its
	// death dereferences (ab dies with the root: single fanout).
	n.Substitute(root.Node(), ac)
	for _, id := range []int{root.Node(), ab.Node(), b.Node()} {
		if !ws.Has(id) {
			t.Fatalf("substitution did not capture node %d", id)
		}
	}

	// The replacement root ac was created after arming and stays out even
	// though Substitute wrote its reference count.
	if ws.Has(ac.Node()) {
		t.Fatal("captured the post-arming replacement root — watermark broken")
	}

	// AddPO stamps the target of the new output reference.
	if ws.Has(d.Node()) {
		t.Fatal("untouched PI already stamped")
	}
	n.AddPO(d, "g")
	if !ws.Has(d.Node()) {
		t.Fatal("AddPO did not capture its target")
	}

	// Disarmed, mutations go unrecorded.
	n.EndWriteCapture()
	n.Substitute(ac.Node(), d)
	if ws.Has(ac.Node()) {
		t.Fatal("capture still armed after EndWriteCapture")
	}
}

// TestWriteCaptureCloneIndependent: capture state is transient and must not
// leak into clones.
func TestWriteCaptureCloneIndependent(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	n.AddPO(n.And(a, b), "f")
	var ws RegionStamp
	ws.Reset(n.NumNodes())
	n.BeginWriteCapture(&ws)
	clone := n.Clone()
	n.EndWriteCapture()
	if clone.wcap != nil {
		t.Fatal("Clone copied armed write capture")
	}
	clone.AddPO(a, "g") // must not touch ws
	if ws.Has(a.Node()) {
		t.Fatal("clone mutation leaked into the original's capture stamp")
	}
}
