package xag

// Counts summarizes the live gate content of a network.
type Counts struct {
	And, Xor int // live gate counts
	Level    int // circuit depth counting every gate
	AndDepth int // circuit depth counting only AND gates ("multiplicative depth")
}

// LiveNodes returns the ids of all nodes reachable from the primary outputs,
// in topological order (fanins before fanouts), excluding the constant node
// but including primary inputs.
func (n *Network) LiveNodes() []int {
	mark := make([]bool, len(n.nodes))
	order := make([]int, 0, len(n.nodes))
	var visit func(id int)
	visit = func(id int) {
		if mark[id] || id == 0 {
			return
		}
		mark[id] = true
		if n.IsGate(id) {
			f0, f1 := n.Fanins(id)
			visit(f0.Node())
			visit(f1.Node())
		}
		order = append(order, id)
	}
	for i := range n.pos {
		visit(n.PO(i).Node())
	}
	return order
}

// CountGates returns the live AND/XOR counts and depth statistics.
func (n *Network) CountGates() Counts {
	var c Counts
	level := make([]int, len(n.nodes))
	andDepth := make([]int, len(n.nodes))
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			continue
		}
		f0, f1 := n.Fanins(id)
		l := max(level[f0.Node()], level[f1.Node()]) + 1
		ad := max(andDepth[f0.Node()], andDepth[f1.Node()])
		switch n.Kind(id) {
		case KindAnd:
			c.And++
			ad++
		case KindXor:
			c.Xor++
		}
		level[id] = l
		andDepth[id] = ad
		c.Level = max(c.Level, l)
		c.AndDepth = max(c.AndDepth, ad)
	}
	return c
}

// NumAnds returns the number of live AND gates — the multiplicative
// complexity of the network as defined in the paper.
func (n *Network) NumAnds() int { return n.CountGates().And }

// NumXors returns the number of live XOR gates.
func (n *Network) NumXors() int { return n.CountGates().Xor }

// MFFC returns the number of AND and XOR gates in the maximum fanout-free
// cone of root, stopping at the given leaves: the gates that would become
// dead if root were replaced by an equivalent signal over those leaves.
func (n *Network) MFFC(root int, leaves map[int]bool) (ands, xors int) {
	if !n.IsGate(root) {
		return 0, 0
	}
	// Simulate dereferencing on a copy of the reference counts.
	local := make(map[int]int32)
	refOf := func(id int) int32 {
		if v, ok := local[id]; ok {
			return v
		}
		return n.refs[id]
	}
	var deref func(id int)
	deref = func(id int) {
		if !n.IsGate(id) {
			return
		}
		if n.Kind(id) == KindAnd {
			ands++
		} else {
			xors++
		}
		f0, f1 := n.Fanins(id)
		for _, f := range [2]Lit{f0, f1} {
			fid := f.Node()
			if leaves[fid] {
				continue
			}
			r := refOf(fid) - 1
			local[fid] = r
			if r == 0 {
				deref(fid)
			}
		}
	}
	deref(root)
	return ands, xors
}

// ConeScratch holds the reusable buffers of MFFCScratch, so the hot commit
// path of the rewriting engine can query MFFCs without per-call maps. The
// zero value is ready to use; a ConeScratch belongs to one goroutine.
type ConeScratch struct {
	ref     []int32 // simulated reference counts, valid where mark is set
	mark    []bool  // which ref entries are live this query
	leaf    []bool  // leaf membership this query
	touched []int   // ids with mark set, for O(touched) reset
}

func (s *ConeScratch) grow(n int) {
	if len(s.ref) >= n {
		return
	}
	s.ref = append(s.ref, make([]int32, n-len(s.ref))...)
	s.mark = append(s.mark, make([]bool, n-len(s.mark))...)
	s.leaf = append(s.leaf, make([]bool, n-len(s.leaf))...)
}

// MFFCScratch is MFFC with caller-provided scratch instead of per-call map
// allocations: leaves is the leaf id set as a slice (order irrelevant), and
// s is reset on return, ready for the next query. The result is identical to
// MFFC for the same root and leaf set.
func (n *Network) MFFCScratch(root int, leaves []int, s *ConeScratch) (ands, xors int) {
	if !n.IsGate(root) {
		return 0, 0
	}
	ands, xors = n.mffcWalk(root, leaves, s)
	s.release(leaves)
	return ands, xors
}

// MFFCRegionScratch is MFFCScratch that additionally appends to region the
// id of every node whose reference count the walk consulted: the MFFC
// interior plus its fanout boundary (everything in s.touched). Together with
// the root and the leaves — which the caller already holds — this is the
// complete set of nodes whose refs/repl state the cone computation read, so
// it is the read footprint the parallel commit's conflict analysis needs.
// The appended ids may repeat across calls; callers dedupe.
func (n *Network) MFFCRegionScratch(root int, leaves []int, s *ConeScratch, region []int32) (ands, xors int, out []int32) {
	if !n.IsGate(root) {
		return 0, 0, region
	}
	ands, xors = n.mffcWalk(root, leaves, s)
	for _, id := range s.touched {
		region = append(region, int32(id))
	}
	s.release(leaves)
	return ands, xors, region
}

// mffcWalk runs the simulated-deref cone walk, leaving s populated (mark,
// ref, leaf, touched) for the caller to inspect; s.release must be called
// before the next query. The root must be a gate.
func (n *Network) mffcWalk(root int, leaves []int, s *ConeScratch) (ands, xors int) {
	s.grow(len(n.nodes))
	for _, id := range leaves {
		s.leaf[id] = true
	}
	var deref func(id int)
	deref = func(id int) {
		if !n.IsGate(id) {
			return
		}
		if n.Kind(id) == KindAnd {
			ands++
		} else {
			xors++
		}
		f0, f1 := n.Fanins(id)
		for _, f := range [2]Lit{f0, f1} {
			fid := f.Node()
			if s.leaf[fid] {
				continue
			}
			if !s.mark[fid] {
				s.mark[fid] = true
				s.ref[fid] = n.refs[fid]
				s.touched = append(s.touched, fid)
			}
			s.ref[fid]--
			if s.ref[fid] == 0 {
				deref(fid)
			}
		}
	}
	deref(root)
	return ands, xors
}

// release clears the marks a mffcWalk left behind, readying s for the next
// query.
func (s *ConeScratch) release(leaves []int) {
	for _, id := range s.touched {
		s.mark[id] = false
	}
	s.touched = s.touched[:0]
	for _, id := range leaves {
		s.leaf[id] = false
	}
}

// MFFCAnds returns only the AND-gate count of the maximum fanout-free cone;
// see MFFC.
func (n *Network) MFFCAnds(root int, leaves map[int]bool) int {
	ands, _ := n.MFFC(root, leaves)
	return ands
}

// ConeNodes returns the gate nodes in the cone of root bounded by leaves, in
// topological order (root last). Leaves themselves are not included.
func (n *Network) ConeNodes(root int, leaves map[int]bool) []int {
	var order []int
	seen := make(map[int]bool)
	var visit func(id int)
	visit = func(id int) {
		if seen[id] || leaves[id] || !n.IsGate(id) {
			return
		}
		seen[id] = true
		f0, f1 := n.Fanins(id)
		visit(f0.Node())
		visit(f1.Node())
		order = append(order, id)
	}
	visit(root)
	return order
}

// Cleanup rebuilds the network without dead nodes and with all
// substitutions applied, returning the compact copy. PI order, PO order and
// names are preserved. The original network is not modified. Note that
// Cleanup compacts: surviving gates are renumbered, so node ids of the
// original are meaningless in the copy — use CleanupMap for the renumbering,
// or Clone for an id-preserving copy.
func (n *Network) Cleanup() *Network {
	out, _ := n.CleanupMap()
	return out
}

// NullLit marks the absence of a literal in CleanupMap's result.
const NullLit Lit = ^Lit(0)

// CleanupMap is Cleanup, additionally returning the renumbering: oldToNew is
// indexed by old node id and holds the literal of the compact copy computing
// that node's function (possibly complemented — the rebuild's normalization
// can fold a gate onto the complement of another). Entries of substituted,
// dead, or unreached nodes are NullLit.
func (n *Network) CleanupMap() (*Network, []Lit) {
	out := New()
	oldToNew := make([]Lit, len(n.nodes))
	for i := range oldToNew {
		oldToNew[i] = NullLit
	}
	done := make([]bool, len(n.nodes))
	oldToNew[0] = Const0
	done[0] = true
	for i, pi := range n.pis {
		oldToNew[pi] = out.AddPI(n.PIName(i))
		done[pi] = true
	}
	var build func(l Lit) Lit
	build = func(l Lit) Lit {
		l = n.Resolve(l)
		id := l.Node()
		if done[id] {
			return oldToNew[id].NotIf(l.Compl())
		}
		f0, f1 := n.Fanins(id)
		a, b := build(f0), build(f1)
		var v Lit
		if n.Kind(id) == KindAnd {
			v = out.And(a, b)
		} else {
			v = out.Xor(a, b)
		}
		oldToNew[id] = v
		done[id] = true
		return v.NotIf(l.Compl())
	}
	for i := range n.pos {
		out.AddPO(build(n.pos[i]), n.POName(i))
	}
	return out, oldToNew
}

// Clone returns a true deep copy of the network that preserves node ids:
// every node — including dead gates and pending substitutions — keeps its
// index, so literals and node ids held by the caller remain valid in the
// copy. (This is unlike Cleanup, which compacts and renumbers.) The copy
// shares no mutable state with the original.
func (n *Network) Clone() *Network {
	out := &Network{
		nodes:      append([]node(nil), n.nodes...),
		pis:        append([]int(nil), n.pis...),
		pos:        append([]Lit(nil), n.pos...),
		names:      make(map[int]string, len(n.names)),
		poName:     append([]string(nil), n.poName...),
		strash:     make(map[strashKey]int, len(n.strash)),
		repl:       append([]Lit(nil), n.repl...),
		refs:       append([]int32(nil), n.refs...),
		level:      append([]int32(nil), n.level...),
		andDepth:   append([]int32(nil), n.andDepth...),
		depthStamp: append([]uint32(nil), n.depthStamp...),
		depthEpoch: n.depthEpoch,
		dirty: dirtyState{
			epoch: n.dirty.epoch,
			base:  n.dirty.base,
			stamp: append([]uint32(nil), n.dirty.stamp...),
		},
	}
	for id, name := range n.names {
		out.names[id] = name
	}
	for k, id := range n.strash {
		out.strash[k] = id
	}
	return out
}
