// Package xag implements XOR-AND graphs (XAGs): combinational logic networks
// whose gates are 2-input ANDs and 2-input XORs connected by regular or
// complemented edges. XAGs are the circuit representation used throughout
// this repository; the number of AND gates of an XAG is its multiplicative
// complexity.
//
// Networks are built through the And, Xor and Not constructors, which apply
// constant folding, input normalization and structural hashing, so
// syntactically identical gates are created only once. Node 0 is the
// constant-false node; primary inputs follow, then gates in topological
// order. A substitution mechanism (Substitute) supports DAG-aware rewriting:
// replaced nodes are redirected through an internal forwarding table and
// physically removed by Cleanup.
package xag

import "fmt"

// Lit is an edge literal: a node index shifted left by one, with the low bit
// indicating complementation. Lit 0 is constant false, Lit 1 constant true.
type Lit uint32

// MakeLit builds a literal from a node index and a complement flag.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node index of the literal.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf returns the literal complemented when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

func (l Lit) String() string {
	if l.Compl() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Const0 and Const1 are the constant literals.
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// Kind distinguishes node types.
type Kind uint8

// Node kinds.
const (
	KindConst Kind = iota // node 0 only
	KindPI                // primary input
	KindAnd
	KindXor
)

func (k Kind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindPI:
		return "pi"
	case KindAnd:
		return "and"
	case KindXor:
		return "xor"
	}
	return "?"
}

type node struct {
	kind       Kind
	fan0, fan1 Lit
}

type strashKey struct {
	kind       Kind
	fan0, fan1 Lit
}

// Network is a mutable XAG.
type Network struct {
	nodes  []node
	pis    []int // node ids of primary inputs, in declaration order
	pos    []Lit
	names  map[int]string // optional PI names
	poName []string       // optional PO names, parallel to pos ("" if unset)

	strash map[strashKey]int
	repl   []Lit   // forwarding table for substituted nodes; repl[i] defaults to self
	refs   []int32 // fanout counts on the resolved graph, incl. PO refs

	// Incremental per-node depth tracking (see Level and AndDepth): cached
	// levels are validated by an epoch stamp, so a depth-changing
	// Substitute invalidates every cache in O(1) and stale nodes are
	// recomputed lazily on the next query.
	level      []int32  // gate depth counting every gate
	andDepth   []int32  // gate depth counting only AND gates
	depthStamp []uint32 // epoch at which level/andDepth were computed
	depthEpoch uint32   // current epoch; starts at 1 so the zero stamp is stale

	// Dirty-region tracking for incremental cross-round rewriting; see
	// dirty.go. Inactive (epoch 0) until BeginDirtyEpoch.
	dirty dirtyState

	// Write capture for the conflict-gated parallel commit; see region.go.
	// Inactive (nil) until BeginWriteCapture.
	wcap     *RegionStamp
	wcapBase int // nodes created at id >= wcapBase are not captured
}

// New returns an empty network containing only the constant node.
func New() *Network {
	n := &Network{
		strash:     make(map[strashKey]int),
		names:      make(map[int]string),
		depthEpoch: 1,
	}
	n.addNode(node{kind: KindConst})
	return n
}

func (n *Network) addNode(nd node) int {
	id := len(n.nodes)
	n.nodes = append(n.nodes, nd)
	n.repl = append(n.repl, MakeLit(id, false))
	n.refs = append(n.refs, 0)
	n.level = append(n.level, 0)
	n.andDepth = append(n.andDepth, 0)
	stamp := n.depthEpoch // constants and PIs are always at depth 0
	if nd.kind == KindAnd || nd.kind == KindXor {
		stamp = n.depthEpoch - 1 // stale until computed from the fanins
	}
	n.depthStamp = append(n.depthStamp, stamp)
	return id
}

// AddPI appends a primary input and returns its literal. The name may be
// empty.
func (n *Network) AddPI(name string) Lit {
	id := n.addNode(node{kind: KindPI})
	n.pis = append(n.pis, id)
	if name != "" {
		n.names[id] = name
	}
	return MakeLit(id, false)
}

// AddPO registers l as a primary output and returns its output index.
func (n *Network) AddPO(l Lit, name string) int {
	l = n.Resolve(l)
	n.pos = append(n.pos, l)
	n.poName = append(n.poName, name)
	n.captureWrite(l.Node())
	n.refs[l.Node()]++
	return len(n.pos) - 1
}

// NumPIs returns the number of primary inputs.
func (n *Network) NumPIs() int { return len(n.pis) }

// NumPOs returns the number of primary outputs.
func (n *Network) NumPOs() int { return len(n.pos) }

// NumNodes returns the total number of nodes ever allocated, including the
// constant, inputs, and dead gates awaiting Cleanup.
func (n *Network) NumNodes() int { return len(n.nodes) }

// PI returns the literal of the i-th primary input.
func (n *Network) PI(i int) Lit { return MakeLit(n.pis[i], false) }

// PIName returns the name of the i-th primary input ("" if unnamed).
func (n *Network) PIName(i int) string { return n.names[n.pis[i]] }

// PO returns the (resolved) literal driving the i-th primary output.
func (n *Network) PO(i int) Lit { return n.Resolve(n.pos[i]) }

// POName returns the name of the i-th primary output ("" if unnamed).
func (n *Network) POName(i int) string { return n.poName[i] }

// Kind returns the kind of a node.
func (n *Network) Kind(id int) Kind { return n.nodes[id].kind }

// IsGate reports whether the node is an AND or XOR gate.
func (n *Network) IsGate(id int) bool {
	k := n.nodes[id].kind
	return k == KindAnd || k == KindXor
}

// Fanins returns the two (resolved) fanin literals of a gate node.
func (n *Network) Fanins(id int) (Lit, Lit) {
	nd := n.nodes[id]
	if nd.kind != KindAnd && nd.kind != KindXor {
		panic(fmt.Sprintf("xag: node %d (%v) has no fanins", id, nd.kind))
	}
	return n.Resolve(nd.fan0), n.Resolve(nd.fan1)
}

// Resolve follows the substitution forwarding table, with path compression.
func (n *Network) Resolve(l Lit) Lit {
	id := l.Node()
	r := n.repl[id]
	if r.Node() == id {
		return l
	}
	final := n.Resolve(r)
	n.repl[id] = final
	return final.NotIf(l.Compl())
}

// Ref returns the current resolved-graph fanout count of a node (including
// primary output references).
func (n *Network) Ref(id int) int { return int(n.refs[id]) }

// And returns a literal computing a ∧ b, creating at most one node.
func (n *Network) And(a, b Lit) Lit {
	a, b = n.Resolve(a), n.Resolve(b)
	// Constant folding and trivial cases.
	switch {
	case a == Const0 || b == Const0:
		return Const0
	case a == Const1:
		return b
	case b == Const1:
		return a
	case a == b:
		return a
	case a == b.Not():
		return Const0
	}
	if a > b {
		a, b = b, a
	}
	return n.lookupOrCreate(KindAnd, a, b)
}

// Xor returns a literal computing a ⊕ b, creating at most one node.
// Complemented fanins are normalized out of the gate: the stored node always
// has two regular fanins, and the complement is carried on the output edge.
func (n *Network) Xor(a, b Lit) Lit {
	a, b = n.Resolve(a), n.Resolve(b)
	switch {
	case a == Const0:
		return b
	case a == Const1:
		return b.Not()
	case b == Const0:
		return a
	case b == Const1:
		return a.Not()
	case a == b:
		return Const0
	case a == b.Not():
		return Const1
	}
	out := a.Compl() != b.Compl()
	a, b = a&^1, b&^1
	if a > b {
		a, b = b, a
	}
	return n.lookupOrCreate(KindXor, a, b).NotIf(out)
}

// Not returns the complement of a.
func (n *Network) Not(a Lit) Lit { return a.Not() }

// Or returns a ∨ b built as ¬(¬a ∧ ¬b).
func (n *Network) Or(a, b Lit) Lit { return n.And(a.Not(), b.Not()).Not() }

// Mux returns s ? t : e built with one AND when possible:
// mux(s,t,e) = e ⊕ s∧(t⊕e).
func (n *Network) Mux(s, t, e Lit) Lit {
	return n.Xor(e, n.And(s, n.Xor(t, e)))
}

// Maj returns the majority of three literals with a single AND gate:
// ⟨abc⟩ = b ⊕ (a⊕b)∧(b⊕c).
func (n *Network) Maj(a, b, c Lit) Lit {
	return n.Xor(b, n.And(n.Xor(a, b), n.Xor(b, c)))
}

func (n *Network) lookupOrCreate(kind Kind, a, b Lit) Lit {
	key := strashKey{kind, a, b}
	if id, ok := n.strash[key]; ok {
		// A hash hit may return a node that has itself been substituted;
		// resolve to the current representative.
		return n.Resolve(MakeLit(id, false))
	}
	id := n.addNode(node{kind: kind, fan0: a, fan1: b})
	n.strash[key] = id
	n.captureWrite(a.Node())
	n.captureWrite(b.Node())
	n.refs[a.Node()]++
	n.refs[b.Node()]++
	// Eagerly stamp the new gate's depth when both fanins are current —
	// always the case on a freshly built network, so construction keeps
	// every node's Level/AndDepth valid at O(1) per gate.
	if f0, f1 := a.Node(), b.Node(); n.depthCurrent(f0) && n.depthCurrent(f1) {
		n.level[id] = max(n.level[f0], n.level[f1]) + 1
		ad := max(n.andDepth[f0], n.andDepth[f1])
		if kind == KindAnd {
			ad++
		}
		n.andDepth[id] = ad
		n.depthStamp[id] = n.depthEpoch
	}
	return MakeLit(id, false)
}

// depthCurrent reports whether id's cached depths are valid at the current
// epoch, refreshing constants and inputs (always depth 0) on the fly.
func (n *Network) depthCurrent(id int) bool {
	if n.depthStamp[id] == n.depthEpoch {
		return true
	}
	if !n.IsGate(id) {
		n.level[id], n.andDepth[id] = 0, 0
		n.depthStamp[id] = n.depthEpoch
		return true
	}
	return false
}

// computeDepth fills the level/andDepth caches of id (which must resolve to
// itself) by walking its resolved fanin cone, memoized per epoch.
func (n *Network) computeDepth(id int) {
	if n.depthCurrent(id) {
		return
	}
	f0, f1 := n.Fanins(id)
	a, b := f0.Node(), f1.Node()
	n.computeDepth(a)
	n.computeDepth(b)
	n.level[id] = max(n.level[a], n.level[b]) + 1
	ad := max(n.andDepth[a], n.andDepth[b])
	if n.nodes[id].kind == KindAnd {
		ad++
	}
	n.andDepth[id] = ad
	n.depthStamp[id] = n.depthEpoch
}

// Level returns the depth of the node counting every gate (inputs and
// constants are at level 0). Substituted nodes report the level of their
// replacement. Values are maintained incrementally: after a depth-changing
// Substitute the first query per node recomputes its cone, later queries
// are O(1).
func (n *Network) Level(id int) int {
	r := n.Resolve(MakeLit(id, false)).Node()
	n.computeDepth(r)
	return int(n.level[r])
}

// AndDepth returns the multiplicative depth of the node: the largest number
// of AND gates on any path from an input to it. Substituted nodes report
// the depth of their replacement. Maintained incrementally like Level.
func (n *Network) AndDepth(id int) int {
	r := n.Resolve(MakeLit(id, false)).Node()
	n.computeDepth(r)
	return int(n.andDepth[r])
}

// EnsureDepths validates the level/AndDepth caches of every live node. On a
// compact network, concurrent readers may afterwards call Level and
// AndDepth freely: with all stamps current the queries are pure reads.
func (n *Network) EnsureDepths() {
	for _, id := range n.LiveNodes() {
		n.computeDepth(id)
	}
}

// Substitute redirects every reference to node old to the literal repl.
// The caller must guarantee that old is not in the transitive fanin of repl
// (see InTFI). Reference counts are updated: the old node's fanout count is
// transferred to repl, and old's cone is dereferenced.
func (n *Network) Substitute(old int, replacement Lit) {
	replacement = n.Resolve(replacement)
	if replacement.Node() == old {
		return
	}
	// Depth bookkeeping: redirecting old onto the replacement changes the
	// depth of every transitive fanout unless the two provably coincide.
	// The caches are invalidated in O(1) by bumping the epoch; downstream
	// nodes recompute lazily on their next Level/AndDepth query.
	rid := replacement.Node()
	if !(n.depthCurrent(old) && n.depthCurrent(rid) &&
		n.level[old] == n.level[rid] && n.andDepth[old] == n.andDepth[rid]) {
		n.depthEpoch++
	}
	n.stampDirty(old)
	n.captureWrite(old)
	n.captureWrite(replacement.Node())
	wasLive := n.refs[old] > 0
	n.repl[old] = replacement
	n.refs[replacement.Node()] += n.refs[old]
	n.refs[old] = 0
	if wasLive {
		n.deref(old)
	}
}

// deref decrements the fanin references of a dead gate, recursively freeing
// its cone.
func (n *Network) deref(id int) {
	nd := n.nodes[id]
	if nd.kind != KindAnd && nd.kind != KindXor {
		return
	}
	for _, f := range [2]Lit{nd.fan0, nd.fan1} {
		fid := n.Resolve(f).Node()
		n.captureWrite(fid)
		n.refs[fid]--
		if n.refs[fid] == 0 {
			n.deref(fid)
		}
	}
}

// InTFI reports whether node target appears in the transitive fanin of l
// (including l's own node).
func (n *Network) InTFI(l Lit, target int) bool {
	var s TFIScratch
	return n.InTFIScratch(l, target, &s)
}

// TFIScratch holds the reusable buffers of InTFIScratch. The zero value is
// ready to use; a scratch belongs to one goroutine at a time.
type TFIScratch struct {
	stamp []int32 // stamp[id] == epoch: id already visited this query
	epoch int32
	stack []int32
}

// InTFIScratch is InTFI with caller-owned scratch: repeated queries reuse
// the visited stamps and traversal stack, so a query allocates only when the
// network outgrew the scratch. The commit loop of a rewriting round calls
// this once per applied replacement.
func (n *Network) InTFIScratch(l Lit, target int, s *TFIScratch) bool {
	if len(s.stamp) < len(n.nodes) {
		s.stamp = make([]int32, len(n.nodes)+len(n.nodes)/2)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stamps from 2^31 queries ago are stale
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.stack = append(s.stack[:0], int32(n.Resolve(l).Node()))
	for len(s.stack) > 0 {
		id := int(s.stack[len(s.stack)-1])
		s.stack = s.stack[:len(s.stack)-1]
		if id == target {
			return true
		}
		if s.stamp[id] == s.epoch || !n.IsGate(id) {
			continue
		}
		s.stamp[id] = s.epoch
		f0, f1 := n.Fanins(id)
		s.stack = append(s.stack, int32(f0.Node()), int32(f1.Node()))
	}
	return false
}
