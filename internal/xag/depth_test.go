package xag

import (
	"math/rand"
	"testing"
)

// naiveDepths recomputes per-node levels and AND depths from scratch, the
// reference the incremental tracker must match.
func naiveDepths(n *Network) (level, andDepth map[int]int) {
	level = map[int]int{}
	andDepth = map[int]int{}
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			continue
		}
		f0, f1 := n.Fanins(id)
		level[id] = max(level[f0.Node()], level[f1.Node()]) + 1
		ad := max(andDepth[f0.Node()], andDepth[f1.Node()])
		if n.Kind(id) == KindAnd {
			ad++
		}
		andDepth[id] = ad
	}
	return level, andDepth
}

func checkDepthsMatch(t *testing.T, n *Network, step string) {
	t.Helper()
	level, andDepth := naiveDepths(n)
	for _, id := range n.LiveNodes() {
		if got, want := n.Level(id), level[id]; got != want {
			t.Fatalf("%s: Level(%d) = %d, recount says %d", step, id, got, want)
		}
		if got, want := n.AndDepth(id), andDepth[id]; got != want {
			t.Fatalf("%s: AndDepth(%d) = %d, recount says %d", step, id, got, want)
		}
	}
	// The network-wide maxima must agree with CountGates' recount.
	c := n.CountGates()
	maxL, maxAD := 0, 0
	for _, id := range n.LiveNodes() {
		maxL = max(maxL, n.Level(id))
		maxAD = max(maxAD, n.AndDepth(id))
	}
	if maxL != c.Level || maxAD != c.AndDepth {
		t.Fatalf("%s: incremental maxima (%d, %d) != CountGates (%d, %d)",
			step, maxL, maxAD, c.Level, c.AndDepth)
	}
}

func randomDepthNetwork(rng *rand.Rand, nPIs, nGates int) *Network {
	n := New()
	lits := make([]Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 6 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n
}

// TestDepthsOnFreshNetwork: construction keeps every node's depth valid.
func TestDepthsOnFreshNetwork(t *testing.T) {
	n, sum, _, _ := buildFullAdder()
	_ = sum
	checkDepthsMatch(t, n, "full adder")
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		checkDepthsMatch(t, randomDepthNetwork(rng, 6, 80), "random")
	}
}

// TestIncrementalDepthProperty is the tracker's contract: after any
// randomized sequence of Substitute and Cleanup operations, incrementally
// maintained levels match a from-scratch recount on every live node.
func TestIncrementalDepthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		n := randomDepthNetwork(rng, 5+rng.Intn(4), 60+rng.Intn(80))
		for op := 0; op < 30; op++ {
			switch rng.Intn(4) {
			case 0: // Cleanup: compact into a fresh network
				n = n.Cleanup()
			default: // Substitute a random live gate by a random literal
				live := n.LiveNodes()
				gates := live[:0:0]
				for _, id := range live {
					if n.IsGate(id) {
						gates = append(gates, id)
					}
				}
				if len(gates) == 0 {
					continue
				}
				old := gates[rng.Intn(len(gates))]
				repl := MakeLit(live[rng.Intn(len(live))], rng.Intn(2) == 0)
				repl = n.Resolve(repl)
				if repl.Node() == old || n.InTFI(repl, old) {
					continue // would create a combinational cycle
				}
				n.Substitute(old, repl)
			}
			checkDepthsMatch(t, n, "after op")
		}
	}
}

// TestDepthEpochReuse: queries after an unrelated substitution still agree,
// and equal-depth substitutions do not invalidate the caches.
func TestDepthSubstituteConstant(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	g1 := n.And(a, b)
	g2 := n.And(g1, a)
	n.AddPO(g2, "out")
	if d := n.AndDepth(g2.Node()); d != 2 {
		t.Fatalf("AndDepth = %d, want 2", d)
	}
	n.Substitute(g1.Node(), Const1)
	// g2 = AND(1, a) still refers to the gate node; its depth over the
	// substituted graph is 1.
	if d := n.AndDepth(g2.Node()); d != 1 {
		t.Fatalf("after substitution AndDepth = %d, want 1", d)
	}
	checkDepthsMatch(t, n, "after constant substitution")
}

// TestCloneDeepCopyPreservesIDs pins the repaired Clone contract: node ids
// survive the copy, and the copy shares no mutable state.
func TestCloneDeepCopyPreservesIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := randomDepthNetwork(rng, 6, 60)
	// Introduce a pending substitution so Clone must carry forwarding
	// state, not just live logic.
	var gate int
	for _, id := range n.LiveNodes() {
		if n.IsGate(id) {
			gate = id
		}
	}
	n.Substitute(gate, Const0)

	c := n.Clone()
	if c.NumNodes() != n.NumNodes() {
		t.Fatalf("Clone changed node count: %d != %d", c.NumNodes(), n.NumNodes())
	}
	for id := 0; id < n.NumNodes(); id++ {
		if c.Kind(id) != n.Kind(id) {
			t.Fatalf("Clone changed kind of node %d", id)
		}
		if got, want := c.Resolve(MakeLit(id, false)), n.Resolve(MakeLit(id, false)); got != want {
			t.Fatalf("Clone changed resolution of node %d: %v != %v", id, got, want)
		}
		if c.Ref(id) != n.Ref(id) {
			t.Fatalf("Clone changed ref count of node %d", id)
		}
	}
	if c.NumPIs() != n.NumPIs() || c.NumPOs() != n.NumPOs() {
		t.Fatalf("Clone changed the interface")
	}
	for i := 0; i < n.NumPOs(); i++ {
		if c.PO(i) != n.PO(i) || c.POName(i) != n.POName(i) {
			t.Fatalf("Clone changed PO %d", i)
		}
	}

	// Mutating the clone must not leak into the original.
	before := n.CountGates()
	x, y := c.PI(0), c.PI(1)
	c.AddPO(c.And(x, y), "extra")
	var liveGate int
	for _, id := range c.LiveNodes() {
		if c.IsGate(id) {
			liveGate = id
		}
	}
	c.Substitute(liveGate, Const1)
	if after := n.CountGates(); after != before {
		t.Fatalf("mutating the clone changed the original: %+v != %+v", after, before)
	}
	if n.NumPOs() == c.NumPOs() {
		t.Fatalf("AddPO on the clone affected the original")
	}
}

// TestCloneEquivalent: the clone computes the same functions.
func TestCloneEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	n := randomDepthNetwork(rng, 6, 50)
	c := n.Clone()
	in := make([]uint64, n.NumPIs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	a, b := n.Simulate(in), c.Simulate(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone differs at PO %d", i)
		}
	}
}
