package xag

// This file is the region-analysis layer of the parallel commit (DESIGN.md
// §14). It provides two primitives:
//
//   - RegionStamp, an epoch-stamped integer set in the style of TFIScratch:
//     O(1) reset, O(1) insert/lookup, reusable across queries without
//     clearing. The commit predictor uses one to deduplicate read
//     footprints; the commit executor uses another to accumulate the ids
//     written by applied rewrites.
//
//   - write capture: between BeginWriteCapture and EndWriteCapture the
//     network records, into the caller's RegionStamp, the id of every
//     pre-existing node whose refs or repl entry is mutated. Nodes created
//     after arming are excluded by a watermark — a brand-new node cannot
//     appear in any footprint computed before it existed.
//
// A node's observable rewrite-relevant state is (kind, fanins, repl, refs).
// Kind and fanins are immutable after creation, so stamping every refs/repl
// write makes the captured set exactly the ids whose state changed. Resolve
// path compression rewrites repl entries too, but only for nodes that were
// substituted earlier (their repl already left identity), so those ids were
// stamped by the Substitute that redirected them; compression itself needs
// no stamp.

// RegionStamp is a reusable set of node ids with O(1) reset via epoch
// stamping. The zero value is ready to use; a RegionStamp belongs to one
// goroutine.
type RegionStamp struct {
	stamp []uint32
	epoch uint32
}

// Reset empties the set and sizes it for ids in [0, n).
func (r *RegionStamp) Reset(n int) {
	if len(r.stamp) < n {
		r.stamp = append(r.stamp, make([]uint32, n-len(r.stamp))...)
	}
	r.epoch++
	if r.epoch == 0 {
		// Epoch wrapped: every stale stamp would read as present.
		clear(r.stamp)
		r.epoch = 1
	}
}

// Add inserts id and reports whether it was absent.
func (r *RegionStamp) Add(id int) bool {
	if r.stamp[id] == r.epoch {
		return false
	}
	r.stamp[id] = r.epoch
	return true
}

// Has reports whether id is in the set.
func (r *RegionStamp) Has(id int) bool {
	return id < len(r.stamp) && r.stamp[id] == r.epoch
}

// BeginWriteCapture arms write capture: until EndWriteCapture, every
// mutation of the refs or repl entry of a node that already exists now is
// recorded in ws. The capture state is transient — it is not cloned by
// Clone and must not be armed across CleanupMap.
func (n *Network) BeginWriteCapture(ws *RegionStamp) {
	n.wcap = ws
	n.wcapBase = len(n.nodes)
}

// EndWriteCapture disarms write capture.
func (n *Network) EndWriteCapture() {
	n.wcap = nil
	n.wcapBase = 0
}

// captureWrite records a refs/repl mutation of node id while capture is
// armed. Nodes created after arming are outside every earlier-computed
// footprint and are skipped via the watermark.
func (n *Network) captureWrite(id int) {
	if n.wcap != nil && id < n.wcapBase {
		n.wcap.Add(id)
	}
}
