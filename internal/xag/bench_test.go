package xag

import (
	"math/rand"
	"testing"
)

func benchNetwork(gates int) *Network {
	rng := rand.New(rand.NewSource(1))
	n := New()
	lits := make([]Lit, 0, 16+gates)
	for i := 0; i < 16; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < gates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 8; i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}

func BenchmarkSimulate(b *testing.B) {
	n := benchNetwork(5000)
	in := make([]uint64, n.NumPIs())
	rng := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Simulate(in)
	}
}

func BenchmarkCleanup(b *testing.B) {
	n := benchNetwork(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Cleanup()
	}
}

func BenchmarkStrash(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		_ = rng
		benchNetwork(2000)
	}
}
