package xag

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Content addressing. CanonicalHash gives every network a 256-bit address
// that depends only on its structure as a function graph — not on node ids,
// dead gates, pending substitutions, or PI/PO names — so two requests
// carrying the same circuit hash to the same address no matter how their
// netlists were numbered. The mcserved result cache keys on it:
// byte-identical determinism (DESIGN.md §8/§10) makes a result computed for
// one copy of a circuit interchangeable with a fresh run on any other copy.

// Hash is the 256-bit content address of a network's canonical form.
type Hash [32]byte

// String returns the hash in lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// canonMagic domain-separates network hashes from any other SHA-256 use.
var canonMagic = [8]byte{'X', 'A', 'G', 'C', 'N', 'N', '0', '2'}

// CanonicalHash returns the content address of the network's canonical
// form. The network is first rebuilt the way Cleanup rebuilds it — dead
// gates dropped, pending substitutions resolved, constants folded, fanins
// normalized, structurally hashed so no two live gates compute the same
// (kind, fanins) pair — and every surviving node is then assigned a Merkle
// code over (kind, fanin codes + complement bits) with the fanin pair
// sorted bytewise, AND/XOR being commutative. Node ids never enter a code,
// so the address is invariant under arbitrary renumbering: building the
// same circuit in a different order, interleaving junk gates, Clone,
// Cleanup, and Substitute chains all preserve it.
//
// PI and PO names are deliberately excluded: they never affect the function
// or any response encoding. The interface shape does contribute — PI count,
// PO count, PO order, and each PO's polarity — so two networks with equal
// hashes have isomorphic canonical forms and compute the same outputs on
// every input (the FuzzCanonicalHash property).
func (n *Network) CanonicalHash() Hash {
	c := n.Cleanup()

	// codes[id] is the Merkle code of node id in the cleaned network,
	// computable in one id-order pass because the rebuild lays fanins out
	// before fanouts.
	codes := make([]Hash, len(c.nodes))
	var buf [1 + 2*(sha256.Size+1)]byte
	for id := 0; id < len(c.nodes); id++ {
		nd := c.nodes[id]
		switch nd.kind {
		case KindConst:
			codes[id] = sha256.Sum256([]byte{'C'})
		case KindPI:
			// PIs are distinguished by declaration order: the i-th input
			// of one network corresponds to the i-th of another.
			var pb [5]byte
			pb[0] = 'I'
			binary.LittleEndian.PutUint32(pb[1:], uint32(id-1))
			codes[id] = sha256.Sum256(pb[:])
		default:
			f0 := buf[1 : 1+sha256.Size+1]
			f1 := buf[1+sha256.Size+1:]
			copy(f0, codes[nd.fan0.Node()][:])
			f0[sha256.Size] = boolByte(nd.fan0.Compl())
			copy(f1, codes[nd.fan1.Node()][:])
			f1[sha256.Size] = boolByte(nd.fan1.Compl())
			if bytes.Compare(f0, f1) > 0 {
				for i := range f0 {
					f0[i], f1[i] = f1[i], f0[i]
				}
			}
			if nd.kind == KindAnd {
				buf[0] = 'A'
			} else {
				buf[0] = 'X'
			}
			codes[id] = sha256.Sum256(buf[:])
		}
	}

	h := sha256.New()
	var b [4]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		h.Write(b[:])
	}
	h.Write(canonMagic[:])
	writeU32(uint32(c.NumPIs()))
	writeU32(uint32(c.NumPOs()))
	for i := 0; i < c.NumPOs(); i++ {
		po := c.PO(i)
		h.Write(codes[po.Node()][:])
		h.Write([]byte{boolByte(po.Compl())})
	}

	var out Hash
	h.Sum(out[:0])
	return out
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
