package xag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Bristol-fashion circuit I/O. This is the netlist format used by the MPC
// community for the benchmark circuits the paper optimizes
// (https://nigelsmart.github.io/MPC-Circuits/): a gate-count header, input
// and output value declarations, and one XOR/AND/INV/EQW gate per line.
// Complemented edges are materialized as INV gates on write and folded back
// into edge complements on read.

// WriteBristol writes the network in Bristol fashion. Inputs are grouped as
// one value per primary input bit and outputs as one value (all PO bits);
// readers that care only about wire order are unaffected.
func (n *Network) WriteBristol(w io.Writer) error {
	bw := bufio.NewWriter(w)

	live := n.LiveNodes()
	// Wire numbering: PIs first (Bristol requires it), then gate outputs.
	wireOf := make(map[Lit]int)
	next := 0
	for i := range n.pis {
		wireOf[n.PI(i)] = next
		next++
	}

	type gateLine struct {
		op  string
		ins []int
		out int
	}
	var lines []gateLine
	newWire := func() int { next++; return next - 1 }

	// constWire lazily materializes constant wires (0 = x0 XOR x0 needs an
	// input; use EQ gates: "1 1 0 <out> EQ" sets a wire to constant 0/1).
	constWires := map[Lit]int{}
	constWire := func(l Lit) int {
		if wv, ok := constWires[l]; ok {
			return wv
		}
		out := newWire()
		bit := 0
		if l == Const1 {
			bit = 1
		}
		lines = append(lines, gateLine{op: "EQ", ins: []int{bit}, out: out})
		constWires[l] = out
		return out
	}

	litWire := func(l Lit) int {
		l = n.Resolve(l)
		if l.Node() == 0 {
			return constWire(l)
		}
		if wv, ok := wireOf[l]; ok {
			return wv
		}
		// Complemented edge: emit an INV of the regular wire.
		reg := l &^ 1
		rv, ok := wireOf[reg]
		if !ok {
			panic("xag: WriteBristol: fanin visited before definition")
		}
		out := newWire()
		lines = append(lines, gateLine{op: "INV", ins: []int{rv}, out: out})
		wireOf[l] = out
		return out
	}

	for _, id := range live {
		if !n.IsGate(id) {
			continue
		}
		f0, f1 := n.Fanins(id)
		a, b := litWire(f0), litWire(f1)
		out := newWire()
		op := "AND"
		if n.Kind(id) == KindXor {
			op = "XOR"
		}
		lines = append(lines, gateLine{op: op, ins: []int{a, b}, out: out})
		wireOf[MakeLit(id, false)] = out
	}

	// Outputs must be the final wires, in order. Materialize all source
	// wires (which may add INV/EQ lines) first, then emit one contiguous
	// block of EQW copies so the output wires really are the last ones.
	srcs := make([]int, len(n.pos))
	for i := range n.pos {
		srcs[i] = litWire(n.PO(i))
	}
	for _, src := range srcs {
		lines = append(lines, gateLine{op: "EQW", ins: []int{src}, out: newWire()})
	}

	fmt.Fprintf(bw, "%d %d\n", len(lines), next)
	fmt.Fprintf(bw, "%d", len(n.pis))
	for range n.pis {
		fmt.Fprint(bw, " 1")
	}
	fmt.Fprintln(bw)
	if len(n.pos) == 0 {
		fmt.Fprintf(bw, "0\n\n")
	} else {
		fmt.Fprintf(bw, "1 %d\n\n", len(n.pos))
	}
	for _, g := range lines {
		switch g.op {
		case "EQ":
			fmt.Fprintf(bw, "1 1 %d %d EQ\n", g.ins[0], g.out)
		case "EQW", "INV":
			fmt.Fprintf(bw, "1 1 %d %d %s\n", g.ins[0], g.out, g.op)
		default:
			fmt.Fprintf(bw, "2 1 %d %d %d %s\n", g.ins[0], g.ins[1], g.out, g.op)
		}
	}
	return bw.Flush()
}

// ReadBristol parses a Bristol-fashion circuit into a network. INV/NOT
// gates become complemented edges; EQ introduces constants; EQW copies
// wires; MAND (multi-AND) is expanded into 2-input ANDs.
func ReadBristol(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	fields := func() ([]string, error) {
		for sc.Scan() {
			f := strings.Fields(sc.Text())
			if len(f) > 0 {
				return f, nil
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}

	// parseInt is strict: the whole field must be a decimal integer.
	// fmt.Sscanf would silently accept "12abc" as 12 and "0x10" as 0, so a
	// malformed file could parse into a wrong (instead of rejected) circuit.
	parseInt := func(s, what string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("xag: bristol %s: bad integer %q", what, s)
		}
		return v, nil
	}

	head, err := fields()
	if err != nil {
		return nil, fmt.Errorf("xag: bristol header: %v", err)
	}
	if len(head) != 2 {
		return nil, fmt.Errorf("xag: bristol header needs 2 fields, got %d", len(head))
	}
	nGates, err := parseInt(head[0], "header")
	if err != nil {
		return nil, err
	}
	nWires, err := parseInt(head[1], "header")
	if err != nil {
		return nil, err
	}

	// sumHeader parses a "count w_1 … w_count" value header and returns the
	// total bit width.
	sumHeader := func(hdr []string, what string) (int, error) {
		nVals, err := parseInt(hdr[0], what+" header")
		if err != nil {
			return 0, err
		}
		if nVals < 0 || len(hdr) != nVals+1 {
			return 0, fmt.Errorf("xag: bristol %s header arity mismatch", what)
		}
		total := 0
		for _, f := range hdr[1:] {
			v, err := parseInt(f, what+" width")
			if err != nil {
				return 0, err
			}
			if v < 0 {
				return 0, fmt.Errorf("xag: bristol %s header: negative width %d", what, v)
			}
			total += v
		}
		return total, nil
	}

	inHdr, err := fields()
	if err != nil {
		return nil, fmt.Errorf("xag: bristol input header: %v", err)
	}
	totalIn, err := sumHeader(inHdr, "input")
	if err != nil {
		return nil, err
	}

	outHdr, err := fields()
	if err != nil {
		return nil, fmt.Errorf("xag: bristol output header: %v", err)
	}
	totalOut, err := sumHeader(outHdr, "output")
	if err != nil {
		return nil, err
	}

	const maxWires = 1 << 26
	if nGates < 0 || nWires <= 0 || nWires > maxWires {
		return nil, fmt.Errorf("xag: bristol header: implausible sizes (%d gates, %d wires)", nGates, nWires)
	}
	if totalIn > nWires || totalOut > nWires {
		return nil, fmt.Errorf("xag: bristol header: %d inputs / %d outputs exceed %d wires",
			totalIn, totalOut, nWires)
	}

	net := New()
	wires := make([]Lit, nWires)
	for i := range wires {
		wires[i] = Lit(^uint32(0)) // sentinel: undefined
	}
	for i := 0; i < totalIn; i++ {
		wires[i] = net.AddPI(fmt.Sprintf("w%d", i))
	}

	// defineWire is the single write path for gate outputs. Bristol wires are
	// single-assignment: a gate whose output index names a primary input (or
	// any already-driven wire) would silently overwrite that wire's value for
	// every later reader, turning a corrupted file into a wrong — instead of
	// rejected — circuit.
	defineWire := func(g, w int, l Lit) error {
		if wires[w] != Lit(^uint32(0)) {
			if w < totalIn {
				return fmt.Errorf("xag: bristol gate %d: output wire %d collides with primary input %d", g, w, w)
			}
			return fmt.Errorf("xag: bristol gate %d: output wire %d already defined", g, w)
		}
		wires[w] = l
		return nil
	}

	for g := 0; g < nGates; g++ {
		f, err := fields()
		if err != nil {
			return nil, fmt.Errorf("xag: bristol gate %d: %v", g, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("xag: bristol gate %d: too few fields", g)
		}
		nin, err := parseInt(f[0], fmt.Sprintf("gate %d arity", g))
		if err != nil {
			return nil, err
		}
		nout, err := parseInt(f[1], fmt.Sprintf("gate %d arity", g))
		if err != nil {
			return nil, err
		}
		if nin < 0 || nout < 0 || nin > nWires || nout > nWires || len(f) != 2+nin+nout+1 {
			return nil, fmt.Errorf("xag: bristol gate %d: field count", g)
		}
		op := f[len(f)-1]
		ins := make([]Lit, nin)
		for i := 0; i < nin; i++ {
			w, err := parseInt(f[2+i], fmt.Sprintf("gate %d input", g))
			if err != nil {
				return nil, err
			}
			if op != "EQ" { // EQ's "input" is a constant bit, not a wire
				if w < 0 || w >= nWires || wires[w] == Lit(^uint32(0)) {
					return nil, fmt.Errorf("xag: bristol gate %d: undefined wire %d", g, w)
				}
				ins[i] = wires[w]
			} else {
				if w != 0 && w != 1 {
					return nil, fmt.Errorf("xag: bristol gate %d: EQ constant must be 0 or 1", g)
				}
				ins[i] = Const0.NotIf(w == 1)
			}
		}
		outs := make([]int, nout)
		for i := 0; i < nout; i++ {
			w, err := parseInt(f[2+nin+i], fmt.Sprintf("gate %d output", g))
			if err != nil {
				return nil, err
			}
			outs[i] = w
		}
		checkArity := func(wantIn int) error {
			if nin != wantIn || nout != 1 {
				return fmt.Errorf("xag: bristol gate %d: %s needs %d input(s) and 1 output", g, op, wantIn)
			}
			if outs[0] < 0 || outs[0] >= nWires {
				return fmt.Errorf("xag: bristol gate %d: output wire %d out of range", g, outs[0])
			}
			return nil
		}
		switch op {
		case "XOR":
			if err := checkArity(2); err != nil {
				return nil, err
			}
			if err := defineWire(g, outs[0], net.Xor(ins[0], ins[1])); err != nil {
				return nil, err
			}
		case "AND":
			if err := checkArity(2); err != nil {
				return nil, err
			}
			if err := defineWire(g, outs[0], net.And(ins[0], ins[1])); err != nil {
				return nil, err
			}
		case "INV", "NOT":
			if err := checkArity(1); err != nil {
				return nil, err
			}
			if err := defineWire(g, outs[0], ins[0].Not()); err != nil {
				return nil, err
			}
		case "EQW", "EQ":
			if err := checkArity(1); err != nil {
				return nil, err
			}
			if err := defineWire(g, outs[0], ins[0]); err != nil {
				return nil, err
			}
		case "MAND":
			// Multi-AND: a batched list of pairwise ANDs:
			// in = a0..ak-1, b0..bk-1; out[i] = ai ∧ bi.
			k := nin / 2
			if nin != 2*k || nout != k || k == 0 {
				return nil, fmt.Errorf("xag: bristol gate %d: MAND arity mismatch", g)
			}
			for i := 0; i < k; i++ {
				if outs[i] < 0 || outs[i] >= nWires {
					return nil, fmt.Errorf("xag: bristol gate %d: output wire out of range", g)
				}
				if err := defineWire(g, outs[i], net.And(ins[i], ins[k+i])); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("xag: bristol gate %d: unknown op %q", g, op)
		}
	}

	// A file with more gate lines than the header declares is corrupted (or
	// its header is): reject it rather than silently dropping the tail.
	if extra, err := fields(); err == nil {
		return nil, fmt.Errorf("xag: bristol: trailing data %q after %d declared gates", strings.Join(extra, " "), nGates)
	} else if err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("xag: bristol: %v", err)
	}

	for i := 0; i < totalOut; i++ {
		w := nWires - totalOut + i
		if wires[w] == Lit(^uint32(0)) {
			return nil, fmt.Errorf("xag: bristol output wire %d undefined", w)
		}
		net.AddPO(wires[w], fmt.Sprintf("o%d", i))
	}
	return net, nil
}

// WriteDOT renders the live network in Graphviz format, AND gates as boxes,
// XOR gates as circles, dashed edges for complements.
func (n *Network) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph xag {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	for _, id := range n.LiveNodes() {
		switch {
		case n.Kind(id) == KindPI:
			name := n.names[id]
			if name == "" {
				name = fmt.Sprintf("x%d", id)
			}
			fmt.Fprintf(bw, "  n%d [label=%q shape=triangle];\n", id, name)
		case n.IsGate(id):
			shape, label := "circle", "⊕"
			if n.Kind(id) == KindAnd {
				shape, label = "box", "∧"
			}
			fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", id, label, shape)
			f0, f1 := n.Fanins(id)
			for _, f := range [2]Lit{f0, f1} {
				style := "solid"
				if f.Compl() {
					style = "dashed"
				}
				fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", f.Node(), id, style)
			}
		}
	}
	for i := range n.pos {
		l := n.PO(i)
		name := n.poName[i]
		if name == "" {
			name = fmt.Sprintf("po%d", i)
		}
		fmt.Fprintf(bw, "  o%d [label=%q shape=invtriangle];\n", i, name)
		style := "solid"
		if l.Compl() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  n%d -> o%d [style=%s];\n", l.Node(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
