package xag

import (
	"math/rand"
	"testing"
)

// TestCanonicalHashCloneAndCleanup: the hash is a pure function of the
// canonical structure — id-preserving copies and compacting rebuilds both
// leave it unchanged, and repeated calls agree.
func TestCanonicalHashCloneAndCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		n := randomDepthNetwork(rng, 4+rng.Intn(4), 40+rng.Intn(60))
		h := n.CanonicalHash()
		if h2 := n.CanonicalHash(); h2 != h {
			t.Fatalf("trial %d: hash not stable: %s vs %s", trial, h, h2)
		}
		if hc := n.Clone().CanonicalHash(); hc != h {
			t.Fatalf("trial %d: Clone changed the hash: %s vs %s", trial, h, hc)
		}
		if hc := n.Cleanup().CanonicalHash(); hc != h {
			t.Fatalf("trial %d: Cleanup changed the hash: %s vs %s", trial, h, hc)
		}
	}
}

// TestCanonicalHashRenumberingInvariance pins the property the result cache
// relies on: the same circuit built with entirely different node ids — here
// by interleaving dead junk gates during construction — hashes to the same
// address.
func TestCanonicalHashRenumberingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 8; trial++ {
		a := randomDepthNetwork(rng, 5, 50)

		// Rebuild a's live structure into b, shifting every node id by
		// inserting unreferenced junk gates between the real ones.
		b := New()
		junk := []Lit{}
		oldToNew := make(map[int]Lit)
		oldToNew[0] = Const0
		for i := 0; i < a.NumPIs(); i++ {
			oldToNew[a.PI(i).Node()] = b.AddPI("")
		}
		litOf := func(l Lit) Lit {
			l = a.Resolve(l)
			return oldToNew[l.Node()].NotIf(l.Compl())
		}
		for _, id := range a.LiveNodes() {
			if !a.IsGate(id) {
				continue
			}
			// Junk gate first: shifts all later ids relative to a. XOR of two
			// fresh-ish literals, never referenced by a PO.
			p0, p1 := b.PI(rng.Intn(b.NumPIs())), b.PI(rng.Intn(b.NumPIs()))
			junk = append(junk, b.And(p0.NotIf(rng.Intn(2) == 0), p1.Not()))
			f0, f1 := a.Fanins(id)
			if a.Kind(id) == KindAnd {
				oldToNew[id] = b.And(litOf(f0), litOf(f1))
			} else {
				oldToNew[id] = b.Xor(litOf(f0), litOf(f1))
			}
		}
		for i := 0; i < a.NumPOs(); i++ {
			b.AddPO(litOf(a.PO(i)), "")
		}
		_ = junk
		if ha, hb := a.CanonicalHash(), b.CanonicalHash(); ha != hb {
			t.Fatalf("trial %d: renumbered rebuild hashes differently: %s vs %s", trial, ha, hb)
		}
	}
}

// TestCanonicalHashAfterSubstitutions: pending substitutions are resolved by
// the canonical rebuild, so a mutated network and its compacted copy agree.
func TestCanonicalHashAfterSubstitutions(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 8; trial++ {
		n := randomDepthNetwork(rng, 5, 60)
		for op := 0; op < 10; op++ {
			live := n.LiveNodes()
			gates := live[:0:0]
			for _, id := range live {
				if n.IsGate(id) {
					gates = append(gates, id)
				}
			}
			if len(gates) == 0 {
				break
			}
			old := gates[rng.Intn(len(gates))]
			repl := n.Resolve(MakeLit(live[rng.Intn(len(live))], rng.Intn(2) == 0))
			if repl.Node() == old || n.InTFI(repl, old) {
				continue
			}
			n.Substitute(old, repl)
			if h, hc := n.CanonicalHash(), n.Cleanup().CanonicalHash(); h != hc {
				t.Fatalf("trial %d op %d: substituted network %s != cleaned %s", trial, op, h, hc)
			}
		}
	}
}

// TestCanonicalHashSensitivity: structurally different circuits — different
// gate kinds, output polarity, output order, or interface width — get
// different addresses.
func TestCanonicalHashSensitivity(t *testing.T) {
	build := func(f func(n *Network, a, b Lit)) Hash {
		n := New()
		a, b := n.AddPI(""), n.AddPI("")
		f(n, a, b)
		return n.CanonicalHash()
	}
	and := build(func(n *Network, a, b Lit) { n.AddPO(n.And(a, b), "") })
	xor := build(func(n *Network, a, b Lit) { n.AddPO(n.Xor(a, b), "") })
	nand := build(func(n *Network, a, b Lit) { n.AddPO(n.And(a, b).Not(), "") })
	twoPO := build(func(n *Network, a, b Lit) {
		n.AddPO(n.And(a, b), "")
		n.AddPO(n.Xor(a, b), "")
	})
	twoPOSwap := build(func(n *Network, a, b Lit) {
		n.AddPO(n.Xor(a, b), "")
		n.AddPO(n.And(a, b), "")
	})
	widePI := build(func(n *Network, a, b Lit) {
		n.AddPI("") // unused third input widens the interface
		n.AddPO(n.And(a, b), "")
	})
	seen := map[Hash]string{}
	for name, h := range map[string]Hash{
		"and": and, "xor": xor, "nand": nand,
		"two-po": twoPO, "two-po-swapped": twoPOSwap, "wide-pi": widePI,
	} {
		if prev, dup := seen[h]; dup {
			t.Errorf("%s and %s collide: %s", name, prev, h)
		}
		seen[h] = name
	}
}

// TestCanonicalHashIgnoresNames: names are presentation, not structure.
func TestCanonicalHashIgnoresNames(t *testing.T) {
	named := New()
	a, b := named.AddPI("x"), named.AddPI("y")
	named.AddPO(named.And(a, b), "out")
	anon := New()
	c, d := anon.AddPI(""), anon.AddPI("")
	anon.AddPO(anon.And(c, d), "")
	if h1, h2 := named.CanonicalHash(), anon.CanonicalHash(); h1 != h2 {
		t.Fatalf("names changed the hash: %s vs %s", h1, h2)
	}
}

// buildFuzzNetwork interprets data as a deterministic construction script:
// a few primary inputs, then AND/XOR gates over the literal pool, then a
// suffix of the pool as outputs. Every byte string yields a valid network.
func buildFuzzNetwork(data []byte) *Network {
	n := New()
	nPIs := 2
	if len(data) > 0 {
		nPIs += int(data[0] % 4)
	}
	pool := make([]Lit, 0, nPIs+len(data)/3+1)
	for i := 0; i < nPIs; i++ {
		pool = append(pool, n.AddPI(""))
	}
	for i := 1; i+2 < len(data); i += 3 {
		a := pool[int(data[i])%len(pool)].NotIf(data[i]&0x80 != 0)
		b := pool[int(data[i+1])%len(pool)].NotIf(data[i+1]&0x80 != 0)
		if data[i+2]%2 == 0 {
			pool = append(pool, n.And(a, b))
		} else {
			pool = append(pool, n.Xor(a, b))
		}
	}
	nPOs := 1
	if len(data) > 1 {
		nPOs += int(data[len(data)-1] % 3)
	}
	for i := 0; i < nPOs && i < len(pool); i++ {
		n.AddPO(pool[len(pool)-1-i], "")
	}
	return n
}

// FuzzCanonicalHash is the cache-soundness property: hash-equal networks are
// semantically equal under simulation. Each input derives two networks; when
// their addresses agree their simulated outputs must agree on every probed
// pattern — so a cache keyed on CanonicalHash can never serve a circuit for
// a function it was not computed from. Invariance under Clone and Cleanup
// renumbering is asserted along the way.
func FuzzCanonicalHash(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0, 4, 3, 1, 2})
	f.Add([]byte{0, 0x81, 2, 1, 5, 4, 0, 9, 9, 9, 2})
	f.Add([]byte("canonical-hash-seed"))
	f.Add([]byte{1, 7, 7, 0, 7, 7, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := buildFuzzNetwork(data)
		if a.NumPOs() == 0 {
			return
		}
		h := a.CanonicalHash()
		if hc := a.Clone().CanonicalHash(); hc != h {
			t.Fatalf("Clone changed the hash: %s vs %s", h, hc)
		}
		if hc := a.Cleanup().CanonicalHash(); hc != h {
			t.Fatalf("Cleanup changed the hash: %s vs %s", h, hc)
		}

		// A sibling network from a perturbed script: usually different, but
		// whenever the addresses collide the functions must match.
		sib := data
		if len(sib) > 1 {
			sib = sib[:len(sib)-1]
		}
		b := buildFuzzNetwork(sib)
		if b.NumPOs() == 0 || b.CanonicalHash() != h {
			return
		}
		if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
			t.Fatalf("hash-equal networks disagree on interface: %d/%d PIs, %d/%d POs",
				a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
		}
		in := make([]uint64, a.NumPIs())
		for i := range in {
			in[i] = 0x9E37_79B9_7F4A_7C15 * uint64(i+1)
		}
		wa, wb := a.Simulate(in), b.Simulate(in)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("hash-equal networks differ on PO %d: %016x vs %016x", i, wa[i], wb[i])
			}
		}
	})
}
