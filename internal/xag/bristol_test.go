package xag

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBristolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := New()
		lits := make([]Lit, 0, 40)
		for i := 0; i < 6; i++ {
			lits = append(lits, n.AddPI(""))
		}
		for i := 0; i < 40; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			if rng.Intn(2) == 0 {
				lits = append(lits, n.And(a, b))
			} else {
				lits = append(lits, n.Xor(a, b))
			}
		}
		for i := 0; i < 3; i++ {
			n.AddPO(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 0), "")
		}

		var buf bytes.Buffer
		if err := n.WriteBristol(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ReadBristol(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf.String())
		}
		if m.NumPIs() != n.NumPIs() || m.NumPOs() != n.NumPOs() {
			t.Fatalf("interface changed: %d/%d PIs, %d/%d POs",
				n.NumPIs(), m.NumPIs(), n.NumPOs(), m.NumPOs())
		}
		in := make([]uint64, n.NumPIs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		wa, wb := n.Simulate(in), m.Simulate(in)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("trial %d: PO %d differs after round trip", trial, i)
			}
		}
		// Gate counts must be preserved up to INV materialization.
		ca, cb := n.CountGates(), m.CountGates()
		if cb.And != ca.And {
			t.Fatalf("AND count changed across round trip: %d -> %d", ca.And, cb.And)
		}
	}
}

func TestBristolKnownCircuit(t *testing.T) {
	// A hand-written two-gate circuit: out = (a AND b) XOR c.
	src := `3 6
3 1 1 1
1 1

2 1 0 1 3 AND
2 1 3 2 4 XOR
1 1 4 5 EQW
`
	n, err := ReadBristol(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPIs() != 3 || n.NumPOs() != 1 {
		t.Fatalf("interface: %d PIs %d POs", n.NumPIs(), n.NumPOs())
	}
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		want := (in[0] && in[1]) != in[2]
		if got := n.EvalBools(in)[0]; got != want {
			t.Fatalf("eval(%03b) = %v, want %v", m, got, want)
		}
	}
}

func TestBristolInvAndConst(t *testing.T) {
	src := `5 7
2 1 1
1 2

1 1 0 2 INV
1 1 1 3 EQ
2 1 2 1 4 AND
2 1 4 3 5 XOR
1 1 0 6 EQW
`
	// wire2 = ¬a; wire3 = const1; wire4 = ¬a ∧ b; wire5 = wire4 ⊕ 1;
	// outputs: wire5, wire6 = a.
	n, err := ReadBristol(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		a, b := m&1 == 1, m&2 == 2
		out := n.EvalBools([]bool{a, b})
		want0 := !(!a && b)
		if out[0] != want0 || out[1] != a {
			t.Fatalf("eval(%02b) = %v", m, out)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	n.AddPO(n.And(a, b.Not()), "y")
	var buf bytes.Buffer
	if err := n.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph xag", "shape=box", "style=dashed", "invtriangle"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
}

// TestBristolMalformedInputs pins the hardened parser: every corrupted file
// must yield a descriptive error — never a panic, never a silently wrong
// circuit.
func TestBristolMalformedInputs(t *testing.T) {
	valid := "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"
	if _, err := ReadBristol(strings.NewReader(valid)); err != nil {
		t.Fatalf("baseline circuit rejected: %v", err)
	}
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"header one field", "3\n"},
		{"header non-integer", "x 5\n3 1 1 1\n1 1\n"},
		{"header hex wires", "2 0x5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"header trailing junk", "2 5abc\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"negative gate count", "-1 5\n3 1 1 1\n1 1\n"},
		{"zero wires", "0 0\n0\n0\n"},
		{"input count mismatch", "2 5\n3 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"input width non-integer", "2 5\n3 1 q 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"input width negative", "2 5\n3 1 -1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"inputs exceed wires", "2 5\n1 99\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"outputs exceed wires", "2 5\n3 1 1 1\n1 99\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"truncated after header", "2 5\n3 1 1 1\n1 1\n"},
		{"truncated mid gates", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n"},
		{"trailing extra gate", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n2 1 0 1 3 AND\n"},
		{"gate wire out of range", "2 5\n3 1 1 1\n1 1\n\n2 1 0 99 3 AND\n2 1 3 2 4 XOR\n"},
		{"gate output out of range", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 99 AND\n2 1 3 2 4 XOR\n"},
		{"gate reads undefined wire", "2 5\n3 1 1 1\n1 1\n\n2 1 0 4 3 AND\n2 1 3 2 4 XOR\n"},
		{"gate wire non-integer", "2 5\n3 1 1 1\n1 1\n\n2 1 0 one 3 AND\n2 1 3 2 4 XOR\n"},
		{"gate arity non-integer", "2 5\n3 1 1 1\n1 1\n\n2x 1 0 1 3 AND\n2 1 3 2 4 XOR\n"},
		{"gate field count", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 AND\n2 1 3 2 4 XOR\n"},
		{"unknown op", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 NAND\n2 1 3 2 4 XOR\n"},
		{"xor arity", "2 5\n3 1 1 1\n1 1\n\n1 1 0 3 AND\n2 1 3 2 4 XOR\n"},
		{"eq constant out of range", "1 2\n1 1\n1 1\n\n1 1 2 1 EQ\n"},
		{"mand arity mismatch", "1 3\n2 1 1\n1 1\n\n3 1 0 1 0 2 MAND\n"},
		{"output wire undefined", "1 9\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n"},
		{"gate output collides with primary input", "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 2 AND\n2 1 2 1 4 XOR\n"},
		{"gate output redefines gate wire", "3 5\n2 1 1\n1 1\n\n2 1 0 1 2 AND\n2 1 0 1 2 XOR\n2 1 2 1 4 XOR\n"},
		{"mand output collides with primary input", "1 4\n2 1 1\n1 1\n\n4 2 0 1 0 1 1 3 MAND\n"},
		{"eqw output collides with primary input", "2 4\n2 1 1\n1 1\n\n1 1 0 1 EQW\n2 1 1 0 3 AND\n"},
	}
	for _, tc := range cases {
		net, err := ReadBristol(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("%s: accepted malformed input (got %d nodes)", tc.name, net.NumNodes())
			continue
		}
		if err.Error() == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}
