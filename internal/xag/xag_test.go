package xag

import (
	"math/rand"
	"testing"
)

// buildFullAdder builds the full adder of the paper's Fig. 1 with exactly
// three ANDs and two XORs: sum = (a⊕b) ⊕ cin and
// cout = (a∧b) ∨ (cin ∧ (a⊕b)), the OR realized as an AND with complemented
// edges.
func buildFullAdder() (*Network, Lit, Lit, Lit) {
	n := New()
	a, b, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(a, b)
	sum := n.Xor(ab, cin)
	cout := n.Or(n.And(a, b), n.And(cin, ab))
	n.AddPO(sum, "sum")
	n.AddPO(cout, "cout")
	return n, a, b, cin
}

func TestFullAdderCounts(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	c := n.CountGates()
	if c.And != 3 {
		t.Fatalf("full adder ANDs = %d, want 3", c.And)
	}
	if c.Xor != 2 {
		t.Fatalf("full adder XORs = %d, want 2", c.Xor)
	}
	if c.AndDepth != 2 {
		t.Fatalf("full adder AND depth = %d, want 2", c.AndDepth)
	}
}

func TestFullAdderFunction(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		out := n.EvalBools(in)
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if out[0] != (ones%2 == 1) {
			t.Fatalf("sum(%03b) = %v", m, out[0])
		}
		if out[1] != (ones >= 2) {
			t.Fatalf("cout(%03b) = %v", m, out[1])
		}
	}
}

func TestConstantFolding(t *testing.T) {
	n := New()
	a := n.AddPI("a")
	cases := []struct {
		got, want Lit
		name      string
	}{
		{n.And(Const0, a), Const0, "0∧a"},
		{n.And(a, Const0), Const0, "a∧0"},
		{n.And(Const1, a), a, "1∧a"},
		{n.And(a, a), a, "a∧a"},
		{n.And(a, a.Not()), Const0, "a∧¬a"},
		{n.Xor(Const0, a), a, "0⊕a"},
		{n.Xor(Const1, a), a.Not(), "1⊕a"},
		{n.Xor(a, a), Const0, "a⊕a"},
		{n.Xor(a, a.Not()), Const1, "a⊕¬a"},
		{n.Or(a, Const1), Const1, "a∨1"},
		{n.Or(a, Const0), a, "a∨0"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if n.NumNodes() != 2 { // constant + a: no gate was created
		t.Fatalf("folding created nodes: %d", n.NumNodes())
	}
}

func TestStructuralHashing(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	g1 := n.And(a, b)
	g2 := n.And(b, a) // commuted
	if g1 != g2 {
		t.Fatalf("AND not commutatively hashed")
	}
	x1 := n.Xor(a, b)
	x2 := n.Xor(b.Not(), a) // complement must normalize to output
	if x2 != x1.Not() {
		t.Fatalf("XOR complement normalization failed: %v vs %v", x1, x2)
	}
	x3 := n.Xor(a.Not(), b.Not())
	if x3 != x1 {
		t.Fatalf("double complement should cancel: %v vs %v", x1, x3)
	}
	if got := n.NumNodes(); got != 5 { // const, a, b, and, xor
		t.Fatalf("NumNodes = %d, want 5", got)
	}
}

func TestMuxAndMajUseOneAnd(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	n.AddPO(n.Maj(a, b, c), "maj")
	if got := n.NumAnds(); got != 1 {
		t.Fatalf("maj uses %d ANDs, want 1", got)
	}
	m := New()
	s, x, y := m.AddPI("s"), m.AddPI("x"), m.AddPI("y")
	m.AddPO(m.Mux(s, x, y), "mux")
	if got := m.NumAnds(); got != 1 {
		t.Fatalf("mux uses %d ANDs, want 1", got)
	}
	// Verify functionality exhaustively.
	for mt := 0; mt < 8; mt++ {
		in := []bool{mt&1 == 1, mt&2 == 2, mt&4 == 4}
		maj := n.EvalBools(in)[0]
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if maj != (ones >= 2) {
			t.Fatalf("maj(%03b) = %v", mt, maj)
		}
		mux := m.EvalBools(in)[0]
		want := in[2]
		if in[0] {
			want = in[1]
		}
		if mux != want {
			t.Fatalf("mux(%03b) = %v, want %v", mt, mux, want)
		}
	}
}

func TestSubstituteAndCleanup(t *testing.T) {
	n, a, b, cin := buildFullAdder()
	// Replace cout's 3-AND majority cone by the 1-AND majority form.
	coutOld := n.PO(1)
	better := n.Maj(a, b, cin)
	if n.InTFI(better, coutOld.Node()) {
		t.Fatalf("unexpected TFI containment")
	}
	n.Substitute(coutOld.Node(), better.NotIf(coutOld.Compl()))
	clean := n.Cleanup()
	if got := clean.NumAnds(); got != 1 {
		t.Fatalf("after substitution ANDs = %d, want 1", got)
	}
	// Function must be preserved.
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		out := clean.EvalBools(in)
		if out[0] != (ones%2 == 1) || out[1] != (ones >= 2) {
			t.Fatalf("function changed at %03b", m)
		}
	}
}

func TestRefCounts(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	g := n.And(a, b)
	if n.Ref(g.Node()) != 0 {
		t.Fatalf("fresh gate ref = %d", n.Ref(g.Node()))
	}
	if n.Ref(a.Node()) != 1 || n.Ref(b.Node()) != 1 {
		t.Fatalf("fanin refs wrong: %d %d", n.Ref(a.Node()), n.Ref(b.Node()))
	}
	n.AddPO(g, "o")
	if n.Ref(g.Node()) != 1 {
		t.Fatalf("PO ref not counted")
	}
	h := n.Xor(g, a)
	n.AddPO(h, "p")
	if n.Ref(g.Node()) != 2 {
		t.Fatalf("gate fanout ref not counted")
	}
}

func TestMFFCAnds(t *testing.T) {
	n, a, b, cin := buildFullAdder()
	cout := n.PO(1)
	leaves := map[int]bool{a.Node(): true, b.Node(): true, cin.Node(): true}
	// cout's MFFC holds the three ANDs; the a⊕b XOR is shared with sum and
	// must stay out.
	if got := n.MFFCAnds(cout.Node(), leaves); got != 3 {
		t.Fatalf("MFFC ANDs = %d, want 3", got)
	}
	// The sum cone contains only XORs.
	sum := n.PO(0)
	if got := n.MFFCAnds(sum.Node(), leaves); got != 0 {
		t.Fatalf("sum MFFC ANDs = %d, want 0", got)
	}
}

func TestMFFCStopsAtSharedNodes(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	shared := n.And(a, b)
	top := n.And(shared, c)
	other := n.Xor(shared, c)
	n.AddPO(top, "t")
	n.AddPO(other, "o")
	leaves := map[int]bool{a.Node(): true, b.Node(): true, c.Node(): true}
	// shared has another fanout, so only top is in the MFFC.
	if got := n.MFFCAnds(top.Node(), leaves); got != 1 {
		t.Fatalf("MFFC ANDs = %d, want 1", got)
	}
}

func TestSimulateParallel(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	rng := rand.New(rand.NewSource(11))
	in := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
	out := n.Simulate(in)
	for bit := 0; bit < 64; bit++ {
		ones := 0
		for _, w := range in {
			if w>>uint(bit)&1 == 1 {
				ones++
			}
		}
		if out[0]>>uint(bit)&1 == 1 != (ones%2 == 1) {
			t.Fatalf("parallel sum wrong at bit %d", bit)
		}
		if out[1]>>uint(bit)&1 == 1 != (ones >= 2) {
			t.Fatalf("parallel cout wrong at bit %d", bit)
		}
	}
}

func TestCleanupPreservesInterface(t *testing.T) {
	n, _, _, _ := buildFullAdder()
	c := n.Cleanup()
	if c.NumPIs() != 3 || c.NumPOs() != 2 {
		t.Fatalf("interface changed: %d PIs %d POs", c.NumPIs(), c.NumPOs())
	}
	if c.PIName(0) != "a" || c.PIName(2) != "cin" {
		t.Fatalf("PI names lost")
	}
	if c.POName(1) != "cout" {
		t.Fatalf("PO names lost")
	}
}

func TestCleanupDropsDeadNodes(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	n.And(a, b) // dead gate
	keep := n.Xor(a, b)
	n.AddPO(keep, "o")
	c := n.Cleanup()
	if c.NumAnds() != 0 || c.NumXors() != 1 {
		t.Fatalf("cleanup kept dead gate: %+v", c.CountGates())
	}
	if c.NumNodes() != 4 { // const, a, b, xor
		t.Fatalf("NumNodes = %d, want 4", c.NumNodes())
	}
}

func TestRandomNetworkCleanupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := New()
		lits := make([]Lit, 0, 40)
		for i := 0; i < 8; i++ {
			lits = append(lits, n.AddPI(""))
		}
		for i := 0; i < 60; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			if rng.Intn(2) == 0 {
				lits = append(lits, n.And(a, b))
			} else {
				lits = append(lits, n.Xor(a, b))
			}
		}
		for i := 0; i < 4; i++ {
			n.AddPO(lits[len(lits)-1-i], "")
		}
		c := n.Cleanup()
		in := make([]uint64, 8)
		for i := range in {
			in[i] = rng.Uint64()
		}
		want, got := n.Simulate(in), c.Simulate(in)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("cleanup changed function at PO %d", i)
			}
		}
	}
}
