package xag

// Dirty-region tracking: the rewriting engine reuses per-node state (cut
// lists, classifications) across rounds, which is sound only for nodes whose
// entire fanin cone was untouched by the round's substitutions. The network
// records, per epoch, which nodes were created and which were substituted;
// CleanCones folds that into a per-node "cone is clean" bit. Tracking is off
// (zero cost beyond one branch in Substitute) until BeginDirtyEpoch is
// called.
//
// The invalidation invariant (DESIGN.md §10): a cached per-node fact is
// valid iff no leaf or interior node of the cone it was computed over is
// dirty — created this epoch, substituted this epoch, or fed through an edge
// whose stored target was substituted this epoch.

type dirtyState struct {
	epoch uint32   // 0 = tracking off
	base  int      // nodes with id >= base were created in the current epoch
	stamp []uint32 // node id → epoch of the node's last substitution
}

// BeginDirtyEpoch starts (or restarts) dirty tracking: every node existing
// now is initially clean, and subsequent node creations and Substitute calls
// are recorded until the next BeginDirtyEpoch. The network should be compact
// (no pending substitutions) when an epoch begins; CleanCones assumes it.
func (n *Network) BeginDirtyEpoch() {
	n.dirty.epoch++
	if n.dirty.epoch == 0 { // wrapped: restart, stale stamps must not match
		for i := range n.dirty.stamp {
			n.dirty.stamp[i] = 0
		}
		n.dirty.epoch = 1
	}
	n.dirty.base = len(n.nodes)
}

// DirtyCreatedBase returns the node-count watermark of the current epoch:
// nodes with id >= base were created since BeginDirtyEpoch.
func (n *Network) DirtyCreatedBase() int { return n.dirty.base }

// NodeDirty reports whether the node was created or substituted in the
// current epoch. Always false while tracking is off.
func (n *Network) NodeDirty(id int) bool {
	if n.dirty.epoch == 0 {
		return false
	}
	if id >= n.dirty.base {
		return true
	}
	return id < len(n.dirty.stamp) && n.dirty.stamp[id] == n.dirty.epoch
}

// stampDirty records a substitution of id in the current epoch (no-op while
// tracking is off).
func (n *Network) stampDirty(id int) {
	if n.dirty.epoch == 0 {
		return
	}
	if len(n.dirty.stamp) < len(n.nodes) {
		n.dirty.stamp = append(n.dirty.stamp, make([]uint32, len(n.nodes)-len(n.dirty.stamp))...)
	}
	n.dirty.stamp[id] = n.dirty.epoch
}

// CleanCones returns, indexed by node id, whether the node's resolved fanin
// cone — the node itself, every cone node, and every cone edge — was left
// untouched by the current epoch: no cone node created or substituted this
// epoch, and no cone edge redirected by a substitution. Dead and unreached
// nodes report false; constants and primary inputs report true. With
// tracking off (no BeginDirtyEpoch yet) everything reports false, the
// conservative answer.
//
// The network must have been compact when BeginDirtyEpoch was called, so
// that "this edge resolves away from its stored target" can only mean "the
// target was substituted this epoch".
func (n *Network) CleanCones() []bool {
	clean := make([]bool, len(n.nodes))
	if n.dirty.epoch == 0 {
		return clean
	}
	clean[0] = true
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			clean[id] = true
			continue
		}
		if n.NodeDirty(id) {
			continue
		}
		nd := n.nodes[id]
		// An edge is dirty when it no longer points at its stored target —
		// even if the replacement is itself an old, clean node, the cone
		// under this node changed.
		if n.Resolve(nd.fan0) != nd.fan0 || n.Resolve(nd.fan1) != nd.fan1 {
			continue
		}
		clean[id] = clean[nd.fan0.Node()] && clean[nd.fan1.Node()]
	}
	return clean
}
