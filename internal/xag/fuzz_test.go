package xag

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBristol exercises the parser on arbitrary input: it must never
// panic, and whenever it accepts a circuit, writing and re-reading it must
// preserve the function on a fixed stimulus.
func FuzzReadBristol(f *testing.F) {
	f.Add("3 6\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n1 1 4 5 EQW\n")
	f.Add("1 2\n1 1\n1 1\n\n1 1 0 1 INV\n")
	f.Add("1 3\n2 1 1\n1 1\n\n2 1 0 1 2 MAND\n")
	f.Add("2 4\n1 1\n1 2\n\n1 1 1 2 EQ\n1 1 0 3 EQW\n")
	f.Add("0 0\n0\n0\n")
	f.Add("garbage")
	// Seeds for the hardened paths: malformed integers, out-of-range wires,
	// gate-count mismatches, truncated and over-long files.
	f.Add("1 2\n1 0x10\n1 1\n\n1 1 0 1 INV\n")
	f.Add("1 2\n1 1\n1 1\n\n2 1 0 9 1 AND\n")
	f.Add("2 3\n1 1\n1 1\n\n1 1 0 1 INV\n")
	f.Add("1 3\n1 1\n1 1\n\n1 1 0 1 INV\n1 1 1 2 INV\n")
	f.Add("1 2\n1 -1\n1 1\n\n1 1 0 1 INV\n")
	f.Add("1 2\n1 1\n1 1\n\n1 1 0 1abc INV\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		n, err := ReadBristol(strings.NewReader(src))
		if err != nil {
			return
		}
		if n.NumPIs() == 0 || n.NumPOs() == 0 || n.NumPIs() > 64 || n.NumNodes() > 1<<16 {
			return // degenerate interfaces do not round-trip meaningfully
		}
		var buf bytes.Buffer
		if err := n.WriteBristol(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		m, err := ReadBristol(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, buf.String())
		}
		in := make([]uint64, n.NumPIs())
		for i := range in {
			in[i] = 0xdeadbeefcafef00d * uint64(i+1)
		}
		wa, wb := n.Simulate(in), m.Simulate(in)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("round trip changed PO %d", i)
			}
		}
	})
}
