package xag

// Simulate evaluates the network bit-parallel on 64 input patterns at once.
// inputs[i] holds the 64 stimulus bits for primary input i; the result has
// one word per primary output. Complemented edges are honored.
func (n *Network) Simulate(inputs []uint64) []uint64 {
	if len(inputs) != len(n.pis) {
		panic("xag: Simulate input count mismatch")
	}
	vals := make([]uint64, len(n.nodes))
	for i, pi := range n.pis {
		vals[pi] = inputs[i]
	}
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			continue
		}
		f0, f1 := n.Fanins(id)
		a := vals[f0.Node()]
		if f0.Compl() {
			a = ^a
		}
		b := vals[f1.Node()]
		if f1.Compl() {
			b = ^b
		}
		if n.Kind(id) == KindAnd {
			vals[id] = a & b
		} else {
			vals[id] = a ^ b
		}
	}
	out := make([]uint64, len(n.pos))
	for i := range n.pos {
		l := n.PO(i)
		v := vals[l.Node()]
		if l.Compl() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// EvalBools evaluates the network on a single Boolean input assignment.
func (n *Network) EvalBools(inputs []bool) []bool {
	words := make([]uint64, len(inputs))
	for i, v := range inputs {
		if v {
			words[i] = 1
		}
	}
	outWords := n.Simulate(words)
	out := make([]bool, len(outWords))
	for i, w := range outWords {
		out[i] = w&1 == 1
	}
	return out
}

// SimulateNodes evaluates the network bit-parallel like Simulate but returns
// the value word of every node (in regular polarity), indexed by node id.
// Dead nodes keep a zero word.
func (n *Network) SimulateNodes(inputs []uint64) []uint64 {
	if len(inputs) != len(n.pis) {
		panic("xag: SimulateNodes input count mismatch")
	}
	vals := make([]uint64, len(n.nodes))
	for i, pi := range n.pis {
		vals[pi] = inputs[i]
	}
	for _, id := range n.LiveNodes() {
		if !n.IsGate(id) {
			continue
		}
		f0, f1 := n.Fanins(id)
		a := vals[f0.Node()]
		if f0.Compl() {
			a = ^a
		}
		b := vals[f1.Node()]
		if f1.Compl() {
			b = ^b
		}
		if n.Kind(id) == KindAnd {
			vals[id] = a & b
		} else {
			vals[id] = a ^ b
		}
	}
	return vals
}
