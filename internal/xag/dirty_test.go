package xag

import (
	"math/rand"
	"testing"
)

// randomNet builds a random compact XAG over nPIs inputs with roughly
// nGates gates and a few POs.
func randomDirtyNet(rng *rand.Rand, nPIs, nGates int) *Network {
	n := New()
	lits := make([]Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		var v Lit
		if rng.Intn(2) == 0 {
			v = n.And(a, b)
		} else {
			v = n.Xor(a, b)
		}
		lits = append(lits, v)
	}
	for i := 0; i < 3; i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	n.AddPO(lits[0], "pi0") // keep at least one node live despite folding
	return n.Cleanup()
}

func TestDirtyTrackingBasics(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	g1 := n.And(a, b)
	g2 := n.Xor(g1, c)
	n.AddPO(g2, "o")

	if n.NodeDirty(g1.Node()) {
		t.Fatal("dirty before tracking started")
	}
	n.BeginDirtyEpoch()
	if base := n.DirtyCreatedBase(); base != n.NumNodes() {
		t.Fatalf("created base %d, want %d", base, n.NumNodes())
	}
	// New node and a substitution both become dirty.
	g3 := n.And(a, c)
	n.Substitute(g1.Node(), g3)
	if !n.NodeDirty(g3.Node()) {
		t.Error("created node not dirty")
	}
	if !n.NodeDirty(g1.Node()) {
		t.Error("substituted node not dirty")
	}
	if n.NodeDirty(g2.Node()) {
		t.Error("untouched node reported dirty")
	}
	// Next epoch: everything existing is clean again.
	n2 := n.Cleanup()
	n2.BeginDirtyEpoch()
	for id := 0; id < n2.NumNodes(); id++ {
		if n2.NodeDirty(id) {
			t.Fatalf("node %d dirty right after BeginDirtyEpoch", id)
		}
	}
}

// bruteClean recomputes CleanCones from first principles: a live node is
// clean iff its resolved cone contains no created/substituted node and no
// gate edge that resolves away from its stored target.
func bruteClean(n *Network) []bool {
	clean := make([]bool, n.NumNodes())
	var coneClean func(id int) bool
	memo := map[int]bool{}
	coneClean = func(id int) bool {
		if v, ok := memo[id]; ok {
			return v
		}
		memo[id] = false // guard (graphs are acyclic, but be safe)
		v := !n.NodeDirty(id)
		if v && n.IsGate(id) {
			nd := n.nodes[id]
			for _, f := range [2]Lit{nd.fan0, nd.fan1} {
				if n.Resolve(f) != f || !coneClean(n.Resolve(f).Node()) {
					v = false
					break
				}
			}
		}
		memo[id] = v
		return v
	}
	clean[0] = true
	for _, id := range n.LiveNodes() {
		clean[id] = coneClean(id)
	}
	return clean
}

func TestCleanConesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := randomDirtyNet(rng, 6, 40)
		n.BeginDirtyEpoch()
		// Random mutations: substitute gates with PI-derived literals (always
		// acyclic) and create some fresh gates.
		live := n.LiveNodes()
		for k := 0; k < 4; k++ {
			id := live[rng.Intn(len(live))]
			if !n.IsGate(id) || n.Resolve(MakeLit(id, false)).Node() != id {
				continue
			}
			pi := n.PI(rng.Intn(n.NumPIs()))
			switch rng.Intn(3) {
			case 0:
				n.Substitute(id, pi.NotIf(rng.Intn(2) == 0))
			case 1:
				n.Substitute(id, n.And(pi, n.PI(rng.Intn(n.NumPIs()))))
			case 2:
				n.Substitute(id, Const0)
			}
		}
		got := n.CleanCones()
		want := bruteClean(n)
		for id := range got {
			if got[id] != want[id] {
				t.Fatalf("trial %d: CleanCones[%d] = %v, want %v", trial, id, got[id], want[id])
			}
		}
	}
}

func TestCleanConesWithoutEpochAllFalse(t *testing.T) {
	n := New()
	a, b := n.AddPI("a"), n.AddPI("b")
	n.AddPO(n.And(a, b), "o")
	for id, c := range n.CleanCones() {
		if c {
			t.Fatalf("node %d clean without an epoch", id)
		}
	}
}

// evalNode evaluates one node of a network under a PI assignment (bit i of
// input = value of PI i).
func evalNode(n *Network, l Lit, input uint64) bool {
	l = n.Resolve(l)
	var eval func(id int) bool
	eval = func(id int) bool {
		switch n.Kind(id) {
		case KindConst:
			return false
		case KindPI:
			for i := 0; i < n.NumPIs(); i++ {
				if n.pis[i] == id {
					return input>>uint(i)&1 == 1
				}
			}
			panic("unknown PI")
		}
		f0, f1 := n.Fanins(id)
		a := eval(f0.Node()) != f0.Compl()
		b := eval(f1.Node()) != f1.Compl()
		if n.Kind(id) == KindAnd {
			return a && b
		}
		return a != b
	}
	return eval(l.Node()) != l.Compl()
}

func TestCleanupMapFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := randomDirtyNet(rng, 5, 25)
		// Mutate a little so the map is non-trivial.
		live := n.LiveNodes()
		for k := 0; k < 3; k++ {
			id := live[rng.Intn(len(live))]
			if n.IsGate(id) && n.Resolve(MakeLit(id, false)).Node() == id {
				n.Substitute(id, n.PI(rng.Intn(n.NumPIs())))
			}
		}
		out, m := n.CleanupMap()
		if len(m) != n.NumNodes() {
			t.Fatalf("map length %d, want %d", len(m), n.NumNodes())
		}
		for _, id := range n.LiveNodes() {
			if n.Resolve(MakeLit(id, false)).Node() != id {
				continue // substituted: no own entry
			}
			img := m[id]
			if img == NullLit {
				t.Fatalf("trial %d: live node %d has no image", trial, id)
			}
			for input := uint64(0); input < 1<<uint(n.NumPIs()); input++ {
				if evalNode(n, MakeLit(id, false), input) != evalNode(out, img, input) {
					t.Fatalf("trial %d: node %d and image %v disagree on input %b",
						trial, id, img, input)
				}
			}
		}
	}
}

func TestMFFCScratchMatchesMFFC(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s ConeScratch
	for trial := 0; trial < 40; trial++ {
		n := randomDirtyNet(rng, 6, 50)
		live := n.LiveNodes()
		for k := 0; k < 10; k++ {
			root := live[rng.Intn(len(live))]
			// A random leaf set: some PIs plus some random live nodes.
			leafSet := map[int]bool{}
			for i := 0; i < n.NumPIs(); i++ {
				leafSet[n.pis[i]] = true
			}
			for j := 0; j < 3; j++ {
				leafSet[live[rng.Intn(len(live))]] = true
			}
			delete(leafSet, root)
			var leaves []int
			for id := range leafSet {
				leaves = append(leaves, id)
			}
			wantA, wantX := n.MFFC(root, leafSet)
			gotA, gotX := n.MFFCScratch(root, leaves, &s)
			if gotA != wantA || gotX != wantX {
				t.Fatalf("trial %d root %d: MFFCScratch = (%d,%d), MFFC = (%d,%d)",
					trial, root, gotA, gotX, wantA, wantX)
			}
		}
	}
}

func TestMFFCScratchAllocs(t *testing.T) {
	n := New()
	a, b, c := n.AddPI("a"), n.AddPI("b"), n.AddPI("c")
	g := n.And(n.Xor(a, b), n.And(b, c))
	n.AddPO(g, "o")
	leaves := []int{a.Node(), b.Node(), c.Node()}
	var s ConeScratch
	n.MFFCScratch(g.Node(), leaves, &s) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		n.MFFCScratch(g.Node(), leaves, &s)
	})
	if allocs != 0 {
		t.Fatalf("MFFCScratch allocates %.1f times per call, want 0", allocs)
	}
}

// TestInTFIScratchMatchesInTFI: the scratch-based TFI query must agree with
// the allocating reference on random networks, and repeated queries through
// one scratch must not allocate once warmed.
func TestInTFIScratchMatchesInTFI(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := randomDirtyNet(rng, 6, 80)
	var s TFIScratch
	ids := n.LiveNodes()
	for trial := 0; trial < 300; trial++ {
		l := MakeLit(ids[rng.Intn(len(ids))], rng.Intn(2) == 1)
		target := ids[rng.Intn(len(ids))]
		want := func(l Lit, target int) bool {
			seen := map[int]bool{}
			var walk func(id int) bool
			walk = func(id int) bool {
				if id == target {
					return true
				}
				if seen[id] || !n.IsGate(id) {
					return false
				}
				seen[id] = true
				f0, f1 := n.Fanins(id)
				return walk(f0.Node()) || walk(f1.Node())
			}
			return walk(n.Resolve(l).Node())
		}(l, target)
		if got := n.InTFIScratch(l, target, &s); got != want {
			t.Fatalf("InTFIScratch(%v, %d) = %v, want %v", l, target, got, want)
		}
		if got := n.InTFI(l, target); got != want {
			t.Fatalf("InTFI(%v, %d) = %v, want %v", l, target, got, want)
		}
	}
	l := MakeLit(ids[len(ids)-1], false)
	n.InTFIScratch(l, 1, &s) // warm
	allocs := testing.AllocsPerRun(100, func() {
		n.InTFIScratch(l, 1, &s)
	})
	if allocs != 0 {
		t.Fatalf("warmed InTFIScratch allocates %.1f times per query, want 0", allocs)
	}
}
