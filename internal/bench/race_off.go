//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. The golden
// regression suite skips under -race: instrumented optimization runs are an
// order of magnitude slower, and the suite pins results, not memory safety.
const raceEnabled = false
