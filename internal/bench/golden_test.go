package bench

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"repro/mcc"
)

// The golden regression suite pins the optimizer's results — AND count, AND
// depth, and XOR count after optimization — for every benchmark under every
// cost model, at worker counts 1 and 4. Any engine change that shifts a
// result, improves it, regresses it, or makes it depend on parallelism shows
// up as a diff against testdata/golden.json.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/bench -run TestGolden -update
//	go test ./internal/bench -run TestGolden -update -golden.heavy
//
// The heavy benchmarks (ciphers and full hash blocks, minutes of runtime)
// stay pinned in the file but only execute with -golden.heavy.
var (
	updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json with current results")
	goldenHeavy  = flag.Bool("golden.heavy", false, "also run the heavy (multi-minute) golden benchmarks")
)

// goldenOptions fixes the engine configuration the pins are taken under.
// MaxRounds is bounded so the suite measures the rewriting the paper's flow
// performs without waiting for full convergence on every circuit.
const goldenMaxRounds = 2

// goldenEntry is one pinned result.
type goldenEntry struct {
	And      int `json:"and"`
	AndDepth int `json:"and_depth"`
	Xor      int `json:"xor"`
}

// goldenFile maps benchmark name -> cost model -> pinned result.
type goldenFile map[string]map[string]goldenEntry

const goldenPath = "testdata/golden.json"

// heavyBenchmarks exceed a few seconds of optimization time each; they run
// only under -golden.heavy so the tier-1 suite stays fast.
var heavyBenchmarks = map[string]bool{
	"des-like": true,
	"md5":      true,
	"sha-1":    true,
	"sha-256":  true,
	"sha-512":  true,
}

var goldenModels = []string{"mc", "size", "depth"}

func goldenCost(name string) mcc.Cost {
	switch name {
	case "mc":
		return mcc.MC()
	case "size":
		return mcc.Size()
	case "depth":
		return mcc.Depth()
	}
	panic("unknown cost model " + name)
}

// compareGolden reports how got deviates from the pin; nil means identical.
// Factored out so the suite's failure condition is itself testable.
func compareGolden(bench, model string, got, want goldenEntry) error {
	if got != want {
		return fmt.Errorf("%s/%s: result drifted: and %d->%d, and_depth %d->%d, xor %d->%d",
			bench, model,
			want.And, got.And, want.AndDepth, got.AndDepth, want.Xor, got.Xor)
	}
	return nil
}

func readGoldenFile(t *testing.T) goldenFile {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return g
}

func writeGoldenFile(t *testing.T, g goldenFile) {
	t.Helper()
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// optimizeGolden runs one benchmark under the golden configuration and
// returns its pinned numbers.
func optimizeGolden(t *testing.T, db *mcc.DB, b Benchmark, model string, workers int) goldenEntry {
	t.Helper()
	res := mcc.Optimize(context.Background(), b.Build(),
		mcc.WithDB(db),
		mcc.WithCost(goldenCost(model)),
		mcc.WithWorkers(workers),
		mcc.WithMaxRounds(goldenMaxRounds),
	)
	if res.Err != nil {
		t.Fatalf("%s/%s: %v", b.Name, model, res.Err)
	}
	c := res.Network.CountGates()
	return goldenEntry{And: c.And, AndDepth: c.AndDepth, Xor: c.Xor}
}

// TestGoldenResults is the regression gate. Every benchmark × cost model is
// optimized at workers=1 and workers=4 against one shared database; both runs
// must agree with each other (the determinism pin — results may not depend on
// parallelism or database warmth) and with testdata/golden.json.
func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("golden suite skipped under -race: it pins results, not memory safety")
	}

	all := append(append(EPFL(), MPC()...), Extended()...)
	var want goldenFile
	if !*updateGolden {
		want = readGoldenFile(t)
	}

	// One shared warm database across every subtest, exactly like the
	// long-running service: warmth must not influence any pinned result.
	db := mcc.NewDB()

	var mu sync.Mutex
	got := make(goldenFile)

	t.Run("suite", func(t *testing.T) {
		for _, b := range all {
			if heavyBenchmarks[b.Name] && !*goldenHeavy {
				continue
			}
			for _, model := range goldenModels {
				b, model := b, model
				t.Run(b.Name+"/"+model, func(t *testing.T) {
					t.Parallel()
					e1 := optimizeGolden(t, db, b, model, 1)
					e4 := optimizeGolden(t, db, b, model, 4)
					if e1 != e4 {
						t.Fatalf("nondeterministic across worker counts: w1=%+v w4=%+v", e1, e4)
					}
					mu.Lock()
					if got[b.Name] == nil {
						got[b.Name] = make(map[string]goldenEntry)
					}
					got[b.Name][model] = e1
					mu.Unlock()
					if !*updateGolden {
						pin, ok := want[b.Name][model]
						if !ok {
							t.Fatalf("no golden entry for %s/%s (regenerate with -update)", b.Name, model)
						}
						if err := compareGolden(b.Name, model, e1, pin); err != nil {
							t.Error(err)
						}
					}
				})
			}
		}
	})

	if *updateGolden {
		// Keep pins for benchmarks that were skipped this run (the heavy set
		// without -golden.heavy), so a fast -update never drops them.
		if prev, err := os.ReadFile(goldenPath); err == nil {
			var old goldenFile
			if json.Unmarshal(prev, &old) == nil {
				for name, models := range old {
					if _, ok := got[name]; !ok {
						got[name] = models
					}
				}
			}
		}
		writeGoldenFile(t, got)
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Logf("wrote %s with %d benchmarks: %v", goldenPath, len(names), names)
	}
}

// TestGoldenFileCoverage checks the pin file itself: every benchmark in every
// suite has an entry for every cost model, so a newly added benchmark cannot
// silently ship unpinned.
func TestGoldenFileCoverage(t *testing.T) {
	want := readGoldenFile(t)
	all := append(append(EPFL(), MPC()...), Extended()...)
	for _, b := range all {
		models, ok := want[b.Name]
		if !ok {
			t.Errorf("golden.json missing benchmark %s", b.Name)
			continue
		}
		for _, m := range goldenModels {
			if _, ok := models[m]; !ok {
				t.Errorf("golden.json missing %s/%s", b.Name, m)
			}
		}
	}
	for name := range want {
		if _, ok := ByName(name); !ok {
			t.Errorf("golden.json pins unknown benchmark %s", name)
		}
	}
}

// TestGoldenComparisonDetectsDrift is the suite's negative control: a
// perturbed result must fail the comparison. A compare function that shrugs
// at differences would make every pin above meaningless.
func TestGoldenComparisonDetectsDrift(t *testing.T) {
	base := goldenEntry{And: 100, AndDepth: 10, Xor: 250}
	if err := compareGolden("b", "mc", base, base); err != nil {
		t.Fatalf("identical entries compared unequal: %v", err)
	}
	perturbed := []goldenEntry{
		{And: 99, AndDepth: 10, Xor: 250},
		{And: 101, AndDepth: 10, Xor: 250}, // regressions and improvements both flag
		{And: 100, AndDepth: 11, Xor: 250},
		{And: 100, AndDepth: 10, Xor: 249},
	}
	for _, p := range perturbed {
		if err := compareGolden("b", "mc", p, base); err == nil {
			t.Errorf("drift %+v vs %+v not detected", p, base)
		}
	}
}
