package bench

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/mcc"
)

// TestCrashRecoveryPreservesResults is the durability acceptance gate: a
// database that has been through a crash (torn snapshot temp file, journal
// left behind) and recovered must drive the optimizer to byte-identical
// circuits — the same assertion the golden suite makes about warmth, extended
// to crash recovery. Any divergence would mean recovery admitted a wrong
// entry or silently lost one in a way that changed rewriting decisions.
func TestCrashRecoveryPreservesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery harness skipped in -short mode")
	}
	benches := []string{"decoder", "adder-32"}
	models := []string{"mc", "depth"}

	optimizeAll := func(t *testing.T, db *mcc.DB) map[string][]byte {
		t.Helper()
		out := make(map[string][]byte)
		for _, name := range benches {
			b, ok := ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			for _, model := range models {
				res := mcc.Optimize(context.Background(), b.Build(),
					mcc.WithDB(db),
					mcc.WithCost(goldenCost(model)),
					mcc.WithMaxRounds(goldenMaxRounds),
				)
				if res.Err != nil {
					t.Fatalf("%s/%s: %v", name, model, res.Err)
				}
				var buf bytes.Buffer
				if err := res.Network.WriteBristol(&buf); err != nil {
					t.Fatal(err)
				}
				out[name+"/"+model] = buf.Bytes()
			}
		}
		return out
	}

	// Reference run: a durable store populated through real optimizations.
	dir := t.TempDir()
	db := mcc.NewDB()
	store, _, err := mcdb.OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	want := optimizeAll(t, db)

	// Crash mid-snapshot: the snapshot temp file is torn, the journal holds
	// everything. The store is abandoned without Close, as a kill would
	// leave it.
	faultinject.Set(faultinject.PointSnapshotWrite, faultinject.PanicHook("crash mid-snapshot"))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("snapshot crash point never fired")
			}
		}()
		store.Snapshot()
	}()
	faultinject.Clear(faultinject.PointSnapshotWrite)

	// Recovery: a fresh process reopens the directory.
	db2 := mcc.NewDB()
	store2, rec, err := mcdb.OpenStore(dir, db2)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer store2.Close()
	if rec.Snapshot.Quarantined != 0 || rec.Journal.Quarantined != 0 {
		t.Fatalf("crash produced quarantinable corruption: %+v", rec)
	}
	if rec.Journal.Loaded == 0 {
		t.Fatalf("recovery replayed nothing; the harness proved nothing: %+v", rec)
	}

	got := optimizeAll(t, db2)
	for key, wantBytes := range want {
		if !bytes.Equal(got[key], wantBytes) {
			t.Errorf("%s: optimization result differs after crash recovery", key)
		}
	}

	// Control: a never-crashed cold database agrees too, pinning that the
	// recovered state matches what a fresh run computes, not merely itself.
	cold := optimizeAll(t, mcc.NewDB())
	for key, wantBytes := range want {
		if !bytes.Equal(cold[key], wantBytes) {
			t.Errorf("%s: warm/recovered result differs from cold run", key)
		}
	}
}
