// Package bench generates the benchmark circuits of the paper's evaluation:
// structural equivalents of the EPFL combinational suite (Table 1) and of
// the best-known MPC/FHE netlists (Table 2). Every generator produces a
// functionally verified circuit (see the package tests, which check the
// crypto circuits against the Go standard library implementations).
//
// The original netlists are not redistributable artifacts of this
// reproduction, so the generators rebuild the same functions structurally,
// deliberately using the naive (non-MC-optimized) idioms found in the
// public netlists: 3-AND full adders, and-or muxes, or-chains. Some widths
// are reduced relative to the EPFL suite to keep the full table
// reproduction in CI-scale time; DESIGN.md documents each substitution.
package bench

import "repro/internal/xag"

// Group labels benchmarks the way the paper's tables split them.
type Group string

// Benchmark groups.
const (
	GroupArith   Group = "arithmetic"     // Table 1, top half
	GroupControl Group = "random-control" // Table 1, bottom half
	GroupCipher  Group = "mpc-cipher"     // Table 2, block ciphers
	GroupHash    Group = "mpc-hash"       // Table 2, hash functions
	GroupMPC     Group = "mpc-arith"      // Table 2, arithmetic functions
)

// Benchmark is one generated circuit.
type Benchmark struct {
	Name  string
	Group Group
	Build func() *xag.Network
}

// EPFL returns the Table 1 benchmark set.
func EPFL() []Benchmark {
	return []Benchmark{
		{"adder", GroupArith, func() *xag.Network { return Adder(128) }},
		{"barrel-shifter", GroupArith, func() *xag.Network { return BarrelShifter(128) }},
		{"divisor", GroupArith, func() *xag.Network { return Divisor(24) }},
		{"log2", GroupArith, func() *xag.Network { return Log2(24) }},
		{"max", GroupArith, func() *xag.Network { return Max(32) }},
		{"multiplier", GroupArith, func() *xag.Network { return Multiplier(24) }},
		{"sine", GroupArith, func() *xag.Network { return Sine(16) }},
		{"square-root", GroupArith, func() *xag.Network { return SquareRoot(32) }},
		{"square", GroupArith, func() *xag.Network { return Square(24) }},

		{"round-robin-arbiter", GroupControl, func() *xag.Network { return Arbiter(32) }},
		{"alu-control-unit", GroupControl, func() *xag.Network { return ALUControl() }},
		{"coding-cavlc", GroupControl, func() *xag.Network { return ControlLogic("cavlc", 10, 11, 40) }},
		{"decoder", GroupControl, func() *xag.Network { return Decoder(8) }},
		{"i2c-controller", GroupControl, func() *xag.Network { return ControlLogic("i2c", 32, 30, 90) }},
		{"int-to-float", GroupControl, func() *xag.Network { return IntToFloat() }},
		{"memory-controller", GroupControl, func() *xag.Network { return ControlLogic("mem", 48, 40, 220) }},
		{"priority-encoder", GroupControl, func() *xag.Network { return PriorityEncoder(128) }},
		{"xy-router", GroupControl, func() *xag.Network { return Router(8) }},
		{"voter", GroupControl, func() *xag.Network { return Voter(251) }},
	}
}

// MPC returns the Table 2 benchmark set.
func MPC() []Benchmark {
	return []Benchmark{
		{"aes-128", GroupCipher, func() *xag.Network { return AES128(false) }},
		{"aes-128-expanded-key", GroupCipher, func() *xag.Network { return AES128(true) }},
		{"des-like", GroupCipher, func() *xag.Network { return DESLike(16) }},

		{"md5", GroupHash, func() *xag.Network { return MD5Block() }},
		{"sha-1", GroupHash, func() *xag.Network { return SHA1Block() }},
		{"sha-256", GroupHash, func() *xag.Network { return SHA256Block() }},

		{"adder-32", GroupMPC, func() *xag.Network { return Adder(32) }},
		{"adder-64", GroupMPC, func() *xag.Network { return Adder(64) }},
		{"mult-32x32", GroupMPC, func() *xag.Network { return Multiplier(32) }},
		{"cmp-32-signed-lteq", GroupMPC, func() *xag.Network { return Comparator(32, true, true) }},
		{"cmp-32-signed-lt", GroupMPC, func() *xag.Network { return Comparator(32, true, false) }},
		{"cmp-32-unsigned-lteq", GroupMPC, func() *xag.Network { return Comparator(32, false, true) }},
		{"cmp-32-unsigned-lt", GroupMPC, func() *xag.Network { return Comparator(32, false, false) }},
	}
}

// Extended returns benchmarks beyond the paper's tables: a single SHA-256
// compression round (the unit of depth optimization), SHA-512 (verified
// against crypto/sha512) and the Simon/Speck lightweight ciphers, which sit
// at the two extremes of AND structure (a single AND layer per round
// vs. adder-carry chains).
func Extended() []Benchmark {
	return []Benchmark{
		{"sha-256-round", GroupHash, func() *xag.Network { return SHA256Round() }},
		{"sha-512", GroupHash, func() *xag.Network { return SHA512Block() }},
		{"simon-64-96", GroupCipher, func() *xag.Network { return Simon64() }},
		{"speck-64-96", GroupCipher, func() *xag.Network { return Speck64() }},
	}
}

// ByName finds a benchmark across all suites.
func ByName(name string) (Benchmark, bool) {
	all := append(append(EPFL(), MPC()...), Extended()...)
	for _, b := range all {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
