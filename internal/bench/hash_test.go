package bench

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/xag"
)

// padBlock builds the single 512-bit padded block for a message of up to 55
// bytes, in the given endianness, and returns the 16 words.
func padBlock(msg []byte, bigEndian bool) [16]uint64 {
	if len(msg) > 55 {
		panic("message too long for one block")
	}
	var block [64]byte
	copy(block[:], msg)
	block[len(msg)] = 0x80
	bitLen := uint64(len(msg)) * 8
	if bigEndian {
		binary.BigEndian.PutUint64(block[56:], bitLen)
	} else {
		binary.LittleEndian.PutUint64(block[56:], bitLen)
	}
	var words [16]uint64
	for i := 0; i < 16; i++ {
		if bigEndian {
			words[i] = uint64(binary.BigEndian.Uint32(block[4*i:]))
		} else {
			words[i] = uint64(binary.LittleEndian.Uint32(block[4*i:]))
		}
	}
	return words
}

func randMessages(rng *rand.Rand, n int) [][]byte {
	msgs := make([][]byte, n)
	for i := range msgs {
		m := make([]byte, rng.Intn(56))
		rng.Read(m)
		msgs[i] = m
	}
	msgs[0] = nil           // empty message edge case
	msgs[1] = []byte("abc") // the classical test vector
	return msgs
}

// simulateWords packs per-vector word assignments (m00..m15) and returns
// the named 32-bit outputs per vector.
func simulateHash(t *testing.T, net *xag.Network, vectors [][16]uint64, outs int) [][]uint64 {
	t.Helper()
	in := make([]uint64, net.NumPIs())
	if net.NumPIs() != 16*32 {
		t.Fatalf("hash circuit has %d PIs, want 512", net.NumPIs())
	}
	for k, vec := range vectors {
		for wIdx := 0; wIdx < 16; wIdx++ {
			for bit := 0; bit < 32; bit++ {
				if vec[wIdx]>>uint(bit)&1 == 1 {
					in[wIdx*32+bit] |= 1 << uint(k)
				}
			}
		}
	}
	simOut := net.Simulate(in)
	if len(simOut) != outs*32 {
		t.Fatalf("hash circuit has %d POs, want %d", len(simOut), outs*32)
	}
	res := make([][]uint64, len(vectors))
	for k := range vectors {
		res[k] = make([]uint64, outs)
		for o := 0; o < outs; o++ {
			var v uint64
			for bit := 0; bit < 32; bit++ {
				if simOut[o*32+bit]>>uint(k)&1 == 1 {
					v |= 1 << uint(bit)
				}
			}
			res[k][o] = v
		}
	}
	return res
}

func TestMD5MatchesStdlib(t *testing.T) {
	net := MD5Block()
	rng := rand.New(rand.NewSource(101))
	msgs := randMessages(rng, 16)
	vecs := make([][16]uint64, len(msgs))
	for i, m := range msgs {
		vecs[i] = padBlock(m, false)
	}
	got := simulateHash(t, net, vecs, 4)
	for i, m := range msgs {
		want := md5.Sum(m)
		for o := 0; o < 4; o++ {
			w := uint64(binary.LittleEndian.Uint32(want[4*o:]))
			if got[i][o] != w {
				t.Fatalf("msg %d (%d bytes): h%d = %08x, want %08x", i, len(m), o, got[i][o], w)
			}
		}
	}
}

func TestSHA1MatchesStdlib(t *testing.T) {
	net := SHA1Block()
	rng := rand.New(rand.NewSource(102))
	msgs := randMessages(rng, 16)
	vecs := make([][16]uint64, len(msgs))
	for i, m := range msgs {
		vecs[i] = padBlock(m, true)
	}
	got := simulateHash(t, net, vecs, 5)
	for i, m := range msgs {
		want := sha1.Sum(m)
		for o := 0; o < 5; o++ {
			w := uint64(binary.BigEndian.Uint32(want[4*o:]))
			if got[i][o] != w {
				t.Fatalf("msg %d (%d bytes): h%d = %08x, want %08x", i, len(m), o, got[i][o], w)
			}
		}
	}
}

func TestSHA256MatchesStdlib(t *testing.T) {
	net := SHA256Block()
	rng := rand.New(rand.NewSource(103))
	msgs := randMessages(rng, 16)
	vecs := make([][16]uint64, len(msgs))
	for i, m := range msgs {
		vecs[i] = padBlock(m, true)
	}
	got := simulateHash(t, net, vecs, 8)
	for i, m := range msgs {
		want := sha256.Sum256(m)
		for o := 0; o < 8; o++ {
			w := uint64(binary.BigEndian.Uint32(want[4*o:]))
			if got[i][o] != w {
				t.Fatalf("msg %d (%d bytes): h%d = %08x, want %08x", i, len(m), o, got[i][o], w)
			}
		}
	}
}

// TestSHA256RoundMatchesReference checks the single-round circuit against a
// direct uint32 transcription of the FIPS 180-4 round function with K[0].
func TestSHA256RoundMatchesReference(t *testing.T) {
	net := SHA256Round()
	if net.NumPIs() != 9*32 {
		t.Fatalf("round circuit has %d PIs, want %d", net.NumPIs(), 9*32)
	}
	rng := rand.New(rand.NewSource(104))
	const vectors = 32
	words := make([][9]uint32, vectors)
	for i := range words {
		for j := range words[i] {
			words[i][j] = rng.Uint32()
		}
	}

	in := make([]uint64, net.NumPIs())
	for k, vec := range words {
		for wIdx, w := range vec {
			for bit := 0; bit < 32; bit++ {
				if w>>uint(bit)&1 == 1 {
					in[wIdx*32+bit] |= 1 << uint(k)
				}
			}
		}
	}
	simOut := net.Simulate(in)
	if len(simOut) != 8*32 {
		t.Fatalf("round circuit has %d POs, want %d", len(simOut), 8*32)
	}

	rotr := func(x uint32, r int) uint32 { return x>>uint(r) | x<<uint(32-r) }
	for k, vec := range words {
		a, b, c, d, e, f, g, h := vec[0], vec[1], vec[2], vec[3], vec[4], vec[5], vec[6], vec[7]
		w := vec[8]
		sig1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := e&f ^ ^e&g
		t1 := h + sig1 + ch + uint32(sha256K()[0]) + w
		sig0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := a&b ^ a&c ^ b&c
		t2 := sig0 + maj
		want := [8]uint32{t1 + t2, a, b, c, d + t1, e, f, g}
		for o := 0; o < 8; o++ {
			var got uint32
			for bit := 0; bit < 32; bit++ {
				if simOut[o*32+bit]>>uint(k)&1 == 1 {
					got |= 1 << uint(bit)
				}
			}
			if got != want[o] {
				t.Fatalf("vector %d: v%d = %08x, want %08x", k, o, got, want[o])
			}
		}
	}
}

func TestSHA256Constants(t *testing.T) {
	k := sha256K()
	// Spot-check the well-known first and last round constants.
	want := map[int]uint64{0: 0x428a2f98, 1: 0x71374491, 2: 0xb5c0fbcf, 3: 0xe9b5dba5, 63: 0xc67178f2}
	for i, w := range want {
		if k[i] != w {
			t.Fatalf("K[%d] = %08x, want %08x", i, k[i], w)
		}
	}
}

func TestHashCircuitSizes(t *testing.T) {
	// The naive circuits must be in the same size regime as the paper's
	// initial netlists (MD5 29084, SHA-1 37172, SHA-256 89478 ANDs; ours
	// differ structurally but must be the same order of magnitude).
	for _, c := range []struct {
		name     string
		net      *xag.Network
		min, max int
	}{
		{"md5", MD5Block(), 10000, 60000},
		{"sha1", SHA1Block(), 15000, 80000},
		{"sha256", SHA256Block(), 30000, 150000},
	} {
		ands := c.net.NumAnds()
		if ands < c.min || ands > c.max {
			t.Fatalf("%s: %d ANDs, want within [%d, %d]", c.name, ands, c.min, c.max)
		}
	}
}
