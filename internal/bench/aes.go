package bench

import (
	"fmt"
	"sync"

	"repro/internal/builder"
	"repro/internal/xag"
)

// AES-128 encryption circuit. The S-box is built as GF(2^8) inversion in
// the composite field GF(((2^2)^2)^2) (a Canright-style tower) sandwiched
// between linear basis-change matrices, costing 36 AND gates per S-box; all
// other AES steps (ShiftRows, MixColumns, AddRoundKey, key schedule XORs)
// are AND-free. Every constant — the tower parameters φ and λ, the
// isomorphism matrices, the affine output map — is derived programmatically
// below, and the package tests check the whole circuit against crypto/aes.
//
// Byte encoding in buses is little-endian: bus bit i is the coefficient of
// x^i of the field element.

// --- software GF arithmetic (generation-time only) ----------------------

// aesMul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func aesMul(a, b uint16) uint16 {
	var p uint16
	for b != 0 {
		if b&1 == 1 {
			p ^= a
		}
		a <<= 1
		if a&0x100 != 0 {
			a ^= 0x11b
		}
		b >>= 1
	}
	return p
}

func aesInv(a uint16) uint16 {
	if a == 0 {
		return 0
	}
	// a^254 by square-and-multiply.
	result := uint16(1)
	exp := 254
	base := a
	for exp > 0 {
		if exp&1 == 1 {
			result = aesMul(result, base)
		}
		base = aesMul(base, base)
		exp >>= 1
	}
	return result
}

// GF(2^2) with u² = u+1; elements are 2-bit values c1·u + c0.
func gf4Mul(a, b uint8) uint8 {
	a0, a1 := a&1, a>>1&1
	b0, b1 := b&1, b>>1&1
	p := a1 & b1
	q := a0 & b0
	r := (a1 ^ a0) & (b1 ^ b0)
	return (r^q)<<1 | (q ^ p)
}

// GF(2^4) = GF(2^2)[v]/(v²+v+φ) with φ = u (encoding 2); elements are
// 4-bit values b1·v + b0 with b0 in bits 0-1.
const gf4Phi = 2

func gf16Mul(a, b uint8) uint8 {
	a0, a1 := a&3, a>>2&3
	b0, b1 := b&3, b>>2&3
	p := gf4Mul(a1, b1)
	q := gf4Mul(a0, b0)
	r := gf4Mul(a1^a0, b1^b0)
	return (r^q)<<2 | (q ^ gf4Mul(p, gf4Phi))
}

// gf256TowerMul multiplies in GF(2^8) = GF(2^4)[w]/(w²+w+λ); elements are
// 8-bit values a1·w + a0 with a0 in bits 0-3.
func gf256TowerMul(lambda uint8, a, b uint16) uint16 {
	a0, a1 := uint8(a)&0xf, uint8(a>>4)&0xf
	b0, b1 := uint8(b)&0xf, uint8(b>>4)&0xf
	p := gf16Mul(a1, b1)
	q := gf16Mul(a0, b0)
	r := gf16Mul(a1^a0, b1^b0)
	return uint16(r^q)<<4 | uint16(q^gf16Mul(p, lambda))
}

// towerParams holds the derived constants of the S-box construction.
type towerParams struct {
	lambda   uint8     // GF(2^4) constant making w²+w+λ irreducible
	toTower  [8]uint8  // column i = tower representation of AES α^i
	fromComb [8]uint8  // combined (affine ∘ tower→AES) matrix columns
	sbox     [256]byte // software S-box for verification
}

var towerOnce sync.Once
var tower towerParams

func towerSetup() towerParams {
	towerOnce.Do(func() {
		// λ: smallest GF(2^4) element with x²+x ≠ λ for all x.
		squares := map[uint8]bool{}
		for x := uint8(0); x < 16; x++ {
			squares[gf16Mul(x, x)^x] = true
		}
		lambda := uint8(0)
		for l := uint8(1); l < 16; l++ {
			if !squares[l] {
				lambda = l
				break
			}
		}

		// γ: a root of the AES polynomial in the tower representation.
		pow := func(g uint16, e int) uint16 {
			r := uint16(1)
			for i := 0; i < e; i++ {
				r = gf256TowerMul(lambda, r, g)
			}
			return r
		}
		gamma := uint16(0)
		for g := uint16(2); g < 256; g++ {
			// x^8 + x^4 + x^3 + x + 1 = 0?
			if pow(g, 8)^pow(g, 4)^pow(g, 3)^g^1 == 0 {
				gamma = g
				break
			}
		}
		if gamma == 0 {
			panic("bench: no AES-polynomial root in tower field")
		}

		var p towerParams
		p.lambda = lambda
		for i := 0; i < 8; i++ {
			p.toTower[i] = uint8(pow(gamma, i))
		}

		// Invert the toTower matrix (8×8 over GF(2), columns as bytes).
		inv := invertBitMatrix(p.toTower)

		// S-box affine output map A·b ⊕ 0x63 with
		// A_i = b_i ⊕ b_{i+4} ⊕ b_{i+5} ⊕ b_{i+6} ⊕ b_{i+7} (indices mod 8).
		var affine [8]uint8
		for col := 0; col < 8; col++ {
			var colBits uint8
			for row := 0; row < 8; row++ {
				// A[row][col] = 1 iff col ∈ {row, row+4, row+5, row+6, row+7} mod 8
				d := (col - row + 8) % 8
				if d == 0 || d >= 4 {
					colBits |= 1 << uint(row)
				}
			}
			affine[col] = colBits
		}
		// Combined matrix: A · inv (apply tower→AES, then the affine matrix).
		for col := 0; col < 8; col++ {
			p.fromComb[col] = mulMatVec8(affine, inv[col])
		}

		// Software S-box table for verification and the key schedule
		// reference model.
		for b := 0; b < 256; b++ {
			iv := aesInv(uint16(b))
			p.sbox[b] = byte(mulMatVec8(affine, uint8(iv))) ^ 0x63
		}
		tower = p
	})
	return tower
}

// mulMatVec8 multiplies an 8×8 bit matrix (columns as bytes) by a vector.
func mulMatVec8(cols [8]uint8, v uint8) uint8 {
	var out uint8
	for i := 0; i < 8; i++ {
		if v>>uint(i)&1 == 1 {
			out ^= cols[i]
		}
	}
	return out
}

// invertBitMatrix inverts an 8×8 GF(2) matrix given as columns.
func invertBitMatrix(cols [8]uint8) [8]uint8 {
	// Gauss-Jordan on [M | I] with columns-of-M as rows of the transposed
	// layout; work in row form for clarity.
	var rows [8]uint16 // low 8 bits: M row, high 8 bits: identity row
	for r := 0; r < 8; r++ {
		var row uint16
		for c := 0; c < 8; c++ {
			if cols[c]>>uint(r)&1 == 1 {
				row |= 1 << uint(c)
			}
		}
		rows[r] = row | 1<<uint(8+r)
	}
	for col := 0; col < 8; col++ {
		pivot := -1
		for r := col; r < 8; r++ {
			if rows[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			panic("bench: singular basis-change matrix")
		}
		rows[col], rows[pivot] = rows[pivot], rows[col]
		for r := 0; r < 8; r++ {
			if r != col && rows[r]>>uint(col)&1 == 1 {
				rows[r] ^= rows[col]
			}
		}
	}
	var out [8]uint8
	for c := 0; c < 8; c++ {
		var colBits uint8
		for r := 0; r < 8; r++ {
			if rows[r]>>uint(8+c)&1 == 1 {
				colBits |= 1 << uint(r)
			}
		}
		out[c] = colBits
	}
	return out
}

// --- circuit-level field arithmetic --------------------------------------

type byteBus = builder.Bus // 8 bits

// applyMat applies a bit matrix (columns as bytes) to a byte bus: XOR-only.
func applyMat(b *builder.B, cols [8]uint8, in byteBus) byteBus {
	out := make(byteBus, 8)
	for r := 0; r < 8; r++ {
		acc := xag.Const0
		for c := 0; c < 8; c++ {
			if cols[c]>>uint(r)&1 == 1 {
				acc = b.Net.Xor(acc, in[c])
			}
		}
		out[r] = acc
	}
	return out
}

func xorConst(b *builder.B, in byteBus, k uint8) byteBus {
	out := make(byteBus, 8)
	for i := range out {
		out[i] = in[i].NotIf(k>>uint(i)&1 == 1)
	}
	return out
}

// gf4MulC multiplies two 2-bit GF(2^2) buses: 3 AND gates.
func gf4MulC(b *builder.B, a, c builder.Bus) builder.Bus {
	n := b.Net
	p := n.And(a[1], c[1])
	q := n.And(a[0], c[0])
	r := n.And(n.Xor(a[1], a[0]), n.Xor(c[1], c[0]))
	return builder.Bus{n.Xor(q, p), n.Xor(r, q)}
}

// gf4MulPhiC multiplies by the constant φ = u: linear.
func gf4MulPhiC(b *builder.B, a builder.Bus) builder.Bus {
	return builder.Bus{a[1], b.Net.Xor(a[1], a[0])}
}

// gf4SqC squares: linear.
func gf4SqC(b *builder.B, a builder.Bus) builder.Bus {
	return builder.Bus{b.Net.Xor(a[0], a[1]), a[1]}
}

// gf16MulC multiplies two 4-bit GF(2^4) buses: 9 AND gates.
func gf16MulC(b *builder.B, a, c builder.Bus) builder.Bus {
	a0, a1 := a[:2], a[2:]
	c0, c1 := c[:2], c[2:]
	p := gf4MulC(b, a1, c1)
	q := gf4MulC(b, a0, c0)
	r := gf4MulC(b, b.XorBus(a1, a0), b.XorBus(c1, c0))
	lo := b.XorBus(q, gf4MulPhiC(b, p))
	hi := b.XorBus(r, q)
	return append(lo, hi...)
}

// gf16SqC squares in GF(2^4): linear.
func gf16SqC(b *builder.B, a builder.Bus) builder.Bus {
	a0, a1 := a[:2], a[2:]
	s1 := gf4SqC(b, a1)
	s0 := gf4SqC(b, a0)
	lo := b.XorBus(s0, gf4MulPhiC(b, s1))
	return append(lo, s1...)
}

// gf16MulLambdaC multiplies by the constant λ: linear (4×4 matrix derived
// from the software model).
func gf16MulLambdaC(b *builder.B, a builder.Bus, lambda uint8) builder.Bus {
	out := make(builder.Bus, 4)
	for r := 0; r < 4; r++ {
		acc := xag.Const0
		for c := 0; c < 4; c++ {
			if gf16Mul(1<<uint(c), lambda)>>uint(r)&1 == 1 {
				acc = b.Net.Xor(acc, a[c])
			}
		}
		out[r] = acc
	}
	return out
}

// gf16InvC inverts in GF(2^4): 9 AND gates.
func gf16InvC(b *builder.B, a builder.Bus) builder.Bus {
	a0, a1 := a[:2], a[2:]
	delta := b.XorBus(b.XorBus(gf4MulPhiC(b, gf4SqC(b, a1)), gf4MulC(b, a1, a0)), gf4SqC(b, a0))
	deltaInv := gf4SqC(b, delta) // x⁻¹ = x² in GF(2^2)
	o1 := gf4MulC(b, deltaInv, a1)
	o0 := gf4MulC(b, deltaInv, b.XorBus(a0, a1))
	return append(o0, o1...)
}

// gf256InvC inverts in the tower GF(2^8): 36 AND gates.
func gf256InvC(b *builder.B, a builder.Bus, lambda uint8) builder.Bus {
	a0, a1 := a[:4], a[4:]
	delta := b.XorBus(
		b.XorBus(gf16MulLambdaC(b, gf16SqC(b, a1), lambda), gf16MulC(b, a1, a0)),
		gf16SqC(b, a0))
	deltaInv := gf16InvC(b, delta)
	o1 := gf16MulC(b, deltaInv, a1)
	o0 := gf16MulC(b, deltaInv, b.XorBus(a0, a1))
	return append(o0, o1...)
}

// SBox builds the AES S-box on a byte bus: 36 AND gates.
func SBox(b *builder.B, in byteBus) byteBus {
	p := towerSetup()
	t := applyMat(b, p.toTower, in)
	inv := gf256InvC(b, t, p.lambda)
	out := applyMat(b, p.fromComb, inv)
	return xorConst(b, out, 0x63)
}

// --- AES structure -------------------------------------------------------

// xtime multiplies a byte bus by x in the AES field: linear.
func xtime(b *builder.B, in byteBus) byteBus {
	out := make(byteBus, 8)
	// out = in<<1 ⊕ 0x1b·in7
	prev := append(byteBus{xag.Const0}, in[:7]...)
	for i := range out {
		if 0x1b>>uint(i)&1 == 1 {
			out[i] = b.Net.Xor(prev[i], in[7])
		} else {
			out[i] = prev[i]
		}
	}
	return out
}

func mixColumn(b *builder.B, col [4]byteBus) [4]byteBus {
	var out [4]byteBus
	for i := 0; i < 4; i++ {
		b0, b1, b2, b3 := col[i], col[(i+1)%4], col[(i+2)%4], col[(i+3)%4]
		two := xtime(b, b0)
		three := b.XorBus(xtime(b, b1), b1)
		out[i] = b.XorBus(b.XorBus(two, three), b.XorBus(b2, b3))
	}
	return out
}

// aesRcon returns the round constant bytes 1..10.
func aesRcon() [11]uint8 {
	var rc [11]uint8
	v := uint16(1)
	for i := 1; i <= 10; i++ {
		rc[i] = uint8(v)
		v = aesMul(v, 2)
	}
	return rc
}

// AES128 builds the AES-128 encryption circuit. With expandedKeys the
// eleven round keys are primary inputs (the paper's "Key Expansion" row,
// 1536 inputs); otherwise the 128-bit cipher key is an input and the key
// schedule is part of the circuit (the "No Key Expansion" row, 256 inputs).
func AES128(expandedKeys bool) *xag.Network {
	b := builder.New()
	pt := b.Input("pt", 128)
	state := make([]byteBus, 16) // state[4c+r] = row r, column c
	for i := range state {
		state[i] = byteBus(pt[8*i : 8*i+8])
	}

	var roundKeys [11][]byteBus
	if expandedKeys {
		for r := 0; r <= 10; r++ {
			rk := b.Input(fmt.Sprintf("rk%02d", r), 128)
			roundKeys[r] = make([]byteBus, 16)
			for i := range roundKeys[r] {
				roundKeys[r][i] = byteBus(rk[8*i : 8*i+8])
			}
		}
	} else {
		key := b.Input("key", 128)
		roundKeys = expandKey(b, key)
	}

	addRoundKey := func(rk []byteBus) {
		for i := range state {
			state[i] = b.XorBus(state[i], rk[i])
		}
	}

	addRoundKey(roundKeys[0])
	for round := 1; round <= 10; round++ {
		// SubBytes
		for i := range state {
			state[i] = SBox(b, state[i])
		}
		// ShiftRows: row r rotates left by r (state[4c+r]).
		shifted := make([]byteBus, 16)
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				shifted[4*c+r] = state[4*((c+r)%4)+r]
			}
		}
		state = shifted
		// MixColumns (skipped in the last round)
		if round != 10 {
			for c := 0; c < 4; c++ {
				col := [4]byteBus{state[4*c], state[4*c+1], state[4*c+2], state[4*c+3]}
				col = mixColumn(b, col)
				for r := 0; r < 4; r++ {
					state[4*c+r] = col[r]
				}
			}
		}
		addRoundKey(roundKeys[round])
	}

	var ct builder.Bus
	for i := range state {
		ct = append(ct, state[i]...)
	}
	b.Output("ct", ct)
	return b.Net
}

// expandKey builds the AES-128 key schedule in-circuit (40 extra S-boxes).
func expandKey(b *builder.B, key builder.Bus) [11][]byteBus {
	rcon := aesRcon()
	words := make([][4]byteBus, 44)
	for w := 0; w < 4; w++ {
		for i := 0; i < 4; i++ {
			words[w][i] = byteBus(key[32*w+8*i : 32*w+8*i+8])
		}
	}
	for w := 4; w < 44; w++ {
		prev := words[w-1]
		if w%4 == 0 {
			// RotWord + SubWord + Rcon.
			var t [4]byteBus
			for i := 0; i < 4; i++ {
				t[i] = SBox(b, prev[(i+1)%4])
			}
			t[0] = xorConst(b, t[0], rcon[w/4])
			prev = t
		}
		for i := 0; i < 4; i++ {
			words[w][i] = b.XorBus(words[w-4][i], prev[i])
		}
	}
	var rks [11][]byteBus
	for r := 0; r <= 10; r++ {
		rks[r] = make([]byteBus, 16)
		for c := 0; c < 4; c++ {
			for i := 0; i < 4; i++ {
				rks[r][4*c+i] = words[4*r+c][i]
			}
		}
	}
	return rks
}
