package bench

import (
	"math/rand"
	"testing"
)

func TestDESLikeMatchesModel(t *testing.T) {
	net := DESLike(16)
	if net.NumPIs() != 128 {
		t.Fatalf("DES-like has %d PIs, want 128", net.NumPIs())
	}
	rng := rand.New(rand.NewSource(301))
	const vectors = 32
	in := make([]uint64, net.NumPIs())
	blocks := make([]uint64, vectors)
	keys := make([]uint64, vectors)
	for v := 0; v < vectors; v++ {
		blocks[v], keys[v] = rng.Uint64(), rng.Uint64()
		for i := 0; i < 64; i++ {
			if blocks[v]>>uint(i)&1 == 1 {
				in[i] |= 1 << uint(v)
			}
			if keys[v]>>uint(i)&1 == 1 {
				in[64+i] |= 1 << uint(v)
			}
		}
	}
	out := net.Simulate(in)
	for v := 0; v < vectors; v++ {
		var got uint64
		for i := 0; i < 64; i++ {
			if out[i]>>uint(v)&1 == 1 {
				got |= 1 << uint(i)
			}
		}
		if want := desRef(blocks[v], keys[v]); got != want {
			t.Fatalf("vector %d: ct = %016x, want %016x", v, got, want)
		}
	}
}

func TestDESLikeDiffusion(t *testing.T) {
	// Sanity: flipping one plaintext bit should change many ciphertext bits
	// after 16 rounds.
	b0, k := uint64(0x0123456789abcdef), uint64(0xfedcba9876543210)
	c0 := desRef(b0, k)
	c1 := desRef(b0^1, k)
	diff := 0
	for x := c0 ^ c1; x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("poor diffusion: only %d bits differ", diff)
	}
}

func TestDESLikeSize(t *testing.T) {
	// Same order of magnitude as the paper's initial DES netlists
	// (18124 ANDs): 128 S-box instances of LUT logic plus key mixing.
	ands := DESLike(16).NumAnds()
	if ands < 3000 || ands > 40000 {
		t.Fatalf("DES-like has %d ANDs, expected thousands", ands)
	}
}
