package bench

import (
	"sync"

	"repro/internal/builder"
	"repro/internal/tt"
	"repro/internal/xag"
)

// DESLike builds a 16-round Feistel cipher with the structure of DES:
// 64-bit block, expansion of the 32-bit half to 48 bits, eight 6→4 S-boxes
// per round, a 32-bit permutation, and per-round 48-bit subkeys selected
// from a 64-bit key. The S-box tables are synthetic (seeded), because the
// genuine DES tables are not re-derivable offline — the LUT-logic circuit
// shape, which is what the optimizer sees, is preserved (see DESIGN.md).
// The package tests check the circuit against the software model below.

type desSpec struct {
	sboxes [8][64]uint8 // 6-bit input → 4-bit output
	expand [48]int      // E: source bit of R for each of the 48 bits
	perm   [32]int      // P: permutation of the 32 S-box output bits
	subkey [16][48]int  // per-round subkey bit selection from the 64-bit key
}

var desOnce sync.Once
var desSpecV desSpec

func theDESSpec() desSpec {
	desOnce.Do(func() {
		seed := uint64(0x123456789abcdef)
		next := func() uint64 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return seed
		}
		var s desSpec
		for b := range s.sboxes {
			for i := range s.sboxes[b] {
				s.sboxes[b][i] = uint8(next() & 0xf)
			}
		}
		// DES-style expansion: group g reads the 6 bits around its nibble.
		for g := 0; g < 8; g++ {
			for j := 0; j < 6; j++ {
				s.expand[6*g+j] = ((4*g - 1 + j) + 32) % 32
			}
		}
		// P: a seeded permutation of 0..31 (Fisher-Yates).
		for i := range s.perm {
			s.perm[i] = i
		}
		for i := 31; i > 0; i-- {
			j := int(next() % uint64(i+1))
			s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
		}
		// Subkeys: a seeded base selection, rotated per round.
		var base [48]int
		for i := range base {
			base[i] = int(next() % 64)
		}
		for r := 0; r < 16; r++ {
			for i := range base {
				s.subkey[r][i] = (base[i] + 5*r) % 64
			}
		}
		desSpecV = s
	})
	return desSpecV
}

// desRef is the software model of the cipher.
func desRef(block, key uint64) uint64 {
	s := theDESSpec()
	l := uint32(block)
	r := uint32(block >> 32)
	for round := 0; round < 16; round++ {
		var f uint32
		for g := 0; g < 8; g++ {
			var idx uint8
			for j := 0; j < 6; j++ {
				bit := r >> uint(s.expand[6*g+j]) & 1
				kbit := uint32(key>>uint(s.subkey[round][6*g+j])) & 1
				idx |= uint8(bit^kbit) << uint(j)
			}
			f |= uint32(s.sboxes[g][idx]) << uint(4*g)
		}
		var pf uint32
		for i := 0; i < 32; i++ {
			pf |= (f >> uint(s.perm[i]) & 1) << uint(i)
		}
		l, r = r, l^pf
	}
	// Final swap, as in DES.
	return uint64(r) | uint64(l)<<32
}

// lutNaive realizes a 6-input truth table the way un-optimized benchmark
// netlists do: Shannon decomposition on the two top variables into four
// 4-variable sum-of-products blocks. This deliberately leaves the
// optimizer the LUT-collapsing work the paper reports on DES.
func lutNaive(b *builder.B, f tt.T, in []xag.Lit) xag.Lit {
	sel := in[4:]
	leaves := make([]xag.Lit, 0, 4)
	for hi := 0; hi < 4; hi++ {
		sub := f.Cofactor(4, hi&1 == 1).Cofactor(5, hi&2 == 2)
		leaves = append(leaves, sopNaive(b, sub, in[:4]))
	}
	lo := b.MuxNaive(sel[0], leaves[1], leaves[0])
	hi := b.MuxNaive(sel[0], leaves[3], leaves[2])
	return b.MuxNaive(sel[1], hi, lo)
}

// sopNaive builds a 4-variable function as a flat sum of products over its
// ON-set minterms, merged pairwise where two minterms differ in one bit.
func sopNaive(b *builder.B, f tt.T, in []xag.Lit) xag.Lit {
	type cube struct{ care, val uint }
	var cubes []cube
	taken := make([]bool, 16)
	for m := uint(0); m < 16; m++ {
		if !f.Eval(m) || taken[m] {
			continue
		}
		merged := false
		for bit := uint(0); bit < 4 && !merged; bit++ {
			m2 := m ^ 1<<bit
			if m2 > m && f.Eval(m2) && !taken[m2] {
				taken[m], taken[m2] = true, true
				cubes = append(cubes, cube{care: 0xf &^ (1 << bit), val: m})
				merged = true
			}
		}
		if !merged {
			taken[m] = true
			cubes = append(cubes, cube{care: 0xf, val: m})
		}
	}
	acc := xag.Const0
	for _, c := range cubes {
		prod := xag.Const1
		for i := uint(0); i < 4; i++ {
			if c.care>>i&1 == 0 {
				continue
			}
			prod = b.Net.And(prod, in[i].NotIf(c.val>>i&1 == 0))
		}
		acc = b.Net.Or(acc, prod)
	}
	return acc
}

// DESLike builds the cipher circuit with the given number of rounds
// (16 for the Table 2 benchmark; fewer for faster tests).
func DESLike(rounds int) *xag.Network {
	s := theDESSpec()
	b := builder.New()
	block := b.Input("block", 64)
	key := b.Input("key", 64)

	l := builder.Bus(block[:32])
	r := builder.Bus(block[32:])

	// Precompute the 6-variable truth tables of each S-box output bit.
	var outTT [8][4]tt.T
	for g := 0; g < 8; g++ {
		for o := 0; o < 4; o++ {
			f := tt.Const0(6)
			for i := 0; i < 64; i++ {
				if s.sboxes[g][i]>>uint(o)&1 == 1 {
					f = f.Set(i, true)
				}
			}
			outTT[g][o] = f
		}
	}

	for round := 0; round < rounds; round++ {
		f := make(builder.Bus, 32)
		for g := 0; g < 8; g++ {
			in := make([]xag.Lit, 6)
			for j := 0; j < 6; j++ {
				in[j] = b.Net.Xor(r[s.expand[6*g+j]], key[s.subkey[round][6*g+j]])
			}
			for o := 0; o < 4; o++ {
				f[4*g+o] = lutNaive(b, outTT[g][o], in)
			}
		}
		pf := make(builder.Bus, 32)
		for i := 0; i < 32; i++ {
			pf[i] = f[s.perm[i]]
		}
		l, r = r, b.XorBus(l, pf)
	}

	out := append(append(builder.Bus{}, r...), l...)
	b.Output("ct", out)
	return b.Net
}
