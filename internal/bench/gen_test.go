package bench

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/xag"
)

// simVec runs one set of named input assignments per vector through a
// generated network whose PIs were declared via builder (names "bus[i]").
// It rebuilds the name→offset map from the PI names.
func simVec(t *testing.T, net *xag.Network, vectors []map[string]uint64) []map[string]uint64 {
	t.Helper()
	type loc struct{ start, width int }
	inputs := map[string]*loc{}
	for i := 0; i < net.NumPIs(); i++ {
		name := busName(net.PIName(i))
		if l, ok := inputs[name]; ok {
			l.width++
		} else {
			inputs[name] = &loc{start: i, width: 1}
		}
	}
	in := make([]uint64, net.NumPIs())
	for k, vec := range vectors {
		for name, val := range vec {
			l, ok := inputs[name]
			if !ok {
				t.Fatalf("unknown input bus %q", name)
			}
			for i := 0; i < l.width; i++ {
				if val>>uint(i)&1 == 1 {
					in[l.start+i] |= 1 << uint(k)
				}
			}
		}
	}
	simOut := net.Simulate(in)
	outputs := map[string]*loc{}
	for i := 0; i < net.NumPOs(); i++ {
		name := busName(net.POName(i))
		if l, ok := outputs[name]; ok {
			l.width++
		} else {
			outputs[name] = &loc{start: i, width: 1}
		}
	}
	res := make([]map[string]uint64, len(vectors))
	for k := range vectors {
		m := map[string]uint64{}
		for name, l := range outputs {
			var v uint64
			for i := 0; i < l.width; i++ {
				if simOut[l.start+i]>>uint(k)&1 == 1 {
					v |= 1 << uint(i)
				}
			}
			m[name] = v
		}
		res[k] = m
	}
	return res
}

func busName(pin string) string {
	for i := 0; i < len(pin); i++ {
		if pin[i] == '[' {
			return pin[:i]
		}
	}
	return pin
}

func TestAdderBench(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{32, 64} {
		net := Adder(w)
		mask := ^uint64(0) >> uint(64-w)
		var vecs []map[string]uint64
		for i := 0; i < 64; i++ {
			vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & mask, "y": rng.Uint64() & mask})
		}
		for k, got := range simVec(t, net, vecs) {
			x, y := vecs[k]["x"], vecs[k]["y"]
			if w < 64 {
				if got["sum"] != (x+y)&mask || got["cout"] != (x+y)>>uint(w) {
					t.Fatalf("w=%d: add(%x,%x) wrong", w, x, y)
				}
			} else {
				sum, carry := bits.Add64(x, y, 0)
				if got["sum"] != sum || got["cout"] != carry {
					t.Fatalf("w=64: add(%x,%x) wrong", x, y)
				}
			}
		}
	}
}

func TestBarrelShifterBench(t *testing.T) {
	net := BarrelShifter(32)
	rng := rand.New(rand.NewSource(2))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"data": rng.Uint64() & 0xffffffff, "amt": uint64(rng.Intn(32))})
	}
	for k, got := range simVec(t, net, vecs) {
		d, a := uint32(vecs[k]["data"]), int(vecs[k]["amt"])
		if got["out"] != uint64(bits.RotateLeft32(d, a)) {
			t.Fatalf("rotl(%x,%d) = %x", d, a, got["out"])
		}
	}
	// The EPFL-style structural invariant: naive muxes give 3·w·log2(w)
	// ANDs before optimization.
	if got := BarrelShifter(128).NumAnds(); got != 3*128*7 {
		t.Fatalf("barrel(128) = %d ANDs, want %d", got, 3*128*7)
	}
}

func TestDivisorBench(t *testing.T) {
	net := Divisor(16)
	rng := rand.New(rand.NewSource(3))
	var vecs []map[string]uint64
	for len(vecs) < 64 {
		d := rng.Uint64() & 0xffff
		if d == 0 {
			continue
		}
		vecs = append(vecs, map[string]uint64{"num": rng.Uint64() & 0xffff, "den": d})
	}
	for k, got := range simVec(t, net, vecs) {
		n, d := vecs[k]["num"], vecs[k]["den"]
		if got["quo"] != n/d || got["rem"] != n%d {
			t.Fatalf("div(%d,%d) = (%d,%d), want (%d,%d)", n, d, got["quo"], got["rem"], n/d, n%d)
		}
	}
}

// log2Ref mirrors the circuit's normalize-and-square recurrence exactly.
func log2Ref(x uint64, w int) uint64 {
	const frac = 6
	const mw = 8
	if x == 0 {
		return 0
	}
	msb := 63 - bits.LeadingZeros64(x)
	norm := x << uint(w-1-msb) // leading one at bit w−1
	mant := norm >> uint(w-mw) & 0xff
	var fbits uint64
	for k := 0; k < frac; k++ {
		sq := mant * mant // 16 bits, value in [2^14, 2^16)
		top := sq >> 15 & 1
		// The first computed bit is the most significant fraction bit.
		fbits = (fbits<<1 | top) & (1<<frac - 1)
		if top == 1 {
			mant = sq >> 8
		} else {
			mant = sq >> 7
		}
		mant &= 0xff
	}
	return fbits | uint64(msb)<<frac
}

func TestLog2Bench(t *testing.T) {
	const w = 24
	net := Log2(w)
	rng := rand.New(rand.NewSource(4))
	var vecs []map[string]uint64
	vecs = append(vecs, map[string]uint64{"x": 0}, map[string]uint64{"x": 1}, map[string]uint64{"x": 1 << (w - 1)})
	for len(vecs) < 64 {
		vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & (1<<w - 1)})
	}
	for k, got := range simVec(t, net, vecs) {
		x := vecs[k]["x"]
		if got["log2"] != log2Ref(x, w) {
			t.Fatalf("log2(%d) = %#x, want %#x", x, got["log2"], log2Ref(x, w))
		}
		// Numeric sanity: the fixed-point value approximates log2(x).
		if x > 1 {
			val := float64(got["log2"]) / 64.0
			if math.Abs(val-math.Log2(float64(x))) > 0.05 {
				t.Fatalf("log2(%d) ≈ %.4f, want %.4f", x, val, math.Log2(float64(x)))
			}
		}
	}
}

func TestMaxBench(t *testing.T) {
	net := Max(16)
	rng := rand.New(rand.NewSource(5))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{
			"a0": rng.Uint64() & 0xffff, "a1": rng.Uint64() & 0xffff,
			"a2": rng.Uint64() & 0xffff, "a3": rng.Uint64() & 0xffff,
		})
	}
	for k, got := range simVec(t, net, vecs) {
		vals := []uint64{vecs[k]["a0"], vecs[k]["a1"], vecs[k]["a2"], vecs[k]["a3"]}
		best, idx := vals[0], 0
		// Mirror the circuit's tie-breaking: strict less-than comparisons.
		m01, i01 := vals[0], 0
		if vals[0] < vals[1] {
			m01, i01 = vals[1], 1
		}
		m23, i23 := vals[2], 2
		if vals[2] < vals[3] {
			m23, i23 = vals[3], 3
		}
		best, idx = m01, i01
		if m01 < m23 {
			best, idx = m23, i23
		}
		if got["max"] != best || got["idx"] != uint64(idx) {
			t.Fatalf("max%v = (%d,%d), want (%d,%d)", vals, got["max"], got["idx"], best, idx)
		}
	}
}

func TestMultiplierAndSquareBench(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := Multiplier(16)
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & 0xffff, "y": rng.Uint64() & 0xffff})
	}
	for k, got := range simVec(t, net, vecs) {
		if got["p"] != vecs[k]["x"]*vecs[k]["y"] {
			t.Fatalf("mul(%d,%d) = %d", vecs[k]["x"], vecs[k]["y"], got["p"])
		}
	}
	sq := Square(16)
	sqVecs := make([]map[string]uint64, len(vecs))
	for i := range vecs {
		sqVecs[i] = map[string]uint64{"x": vecs[i]["x"]}
	}
	for k, got := range simVec(t, sq, sqVecs) {
		if got["sq"] != sqVecs[k]["x"]*sqVecs[k]["x"] {
			t.Fatalf("square(%d) = %d", sqVecs[k]["x"], got["sq"])
		}
	}
}

// sineRef mirrors the circuit's CORDIC pipeline exactly (ww-bit two's
// complement arithmetic).
func sineRef(angle uint64, w int) uint64 {
	ww := uint(w + 2)
	mask := uint64(1)<<ww - 1
	signBit := uint64(1) << (ww - 1)
	ashr := func(v uint64, k int) uint64 {
		// arithmetic shift right within ww bits
		s := v & signBit
		for i := 0; i < k; i++ {
			v = v >> 1
			if s != 0 {
				v |= signBit
			}
		}
		return v & mask
	}
	x := uint64(0.6072529350088813*float64(uint64(1)<<uint(w))) & mask
	y := uint64(0)
	z := angle & mask
	for i := 0; i < w; i++ {
		at := uint64(atan2i(i)*float64(uint64(1)<<uint(w))) & mask
		neg := z&signBit != 0
		xs, ys := ashr(x, i), ashr(y, i)
		if neg {
			x, y, z = (x+ys)&mask, (y-xs)&mask, (z+at)&mask
		} else {
			x, y, z = (x-ys)&mask, (y+xs)&mask, (z-at)&mask
		}
	}
	return y
}

func TestSineBench(t *testing.T) {
	const w = 16
	net := Sine(w)
	rng := rand.New(rand.NewSource(7))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"angle": rng.Uint64() & (1<<w - 1)})
	}
	for k, got := range simVec(t, net, vecs) {
		a := vecs[k]["angle"]
		if got["sin"] != sineRef(a, w) {
			t.Fatalf("sine(%d) = %#x, want %#x", a, got["sin"], sineRef(a, w))
		}
		// Numeric sanity against the true sine.
		angle := float64(a) / float64(uint64(1)<<w)
		val := float64(int64(got["sin"]<<(64-w-2))>>(64-w-2)) / float64(uint64(1)<<w)
		if math.Abs(val-math.Sin(angle)) > 0.01 {
			t.Fatalf("sine(%f) ≈ %f, want %f", angle, val, math.Sin(angle))
		}
	}
}

func TestSquareRootBench(t *testing.T) {
	net := SquareRoot(32)
	rng := rand.New(rand.NewSource(8))
	var vecs []map[string]uint64
	vecs = append(vecs, map[string]uint64{"x": 0}, map[string]uint64{"x": 1}, map[string]uint64{"x": 0xffffffff})
	for len(vecs) < 64 {
		vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & 0xffffffff})
	}
	for k, got := range simVec(t, net, vecs) {
		x := vecs[k]["x"]
		want := uint64(math.Sqrt(float64(x)))
		// Guard against float rounding at the boundary.
		for want*want > x {
			want--
		}
		for (want+1)*(want+1) <= x {
			want++
		}
		if got["root"] != want {
			t.Fatalf("isqrt(%d) = %d, want %d", x, got["root"], want)
		}
	}
}

func TestArbiterBench(t *testing.T) {
	net := Arbiter(16)
	rng := rand.New(rand.NewSource(9))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"req": rng.Uint64() & 0xffff, "ptr": uint64(rng.Intn(16))})
	}
	for k, got := range simVec(t, net, vecs) {
		req, ptr := vecs[k]["req"], int(vecs[k]["ptr"])
		var want uint64
		for i := 0; i < 16; i++ {
			if i >= ptr && req>>uint(i)&1 == 1 {
				want = 1 << uint(i)
				break
			}
		}
		if want == 0 {
			for i := 0; i < 16; i++ {
				if req>>uint(i)&1 == 1 {
					want = 1 << uint(i)
					break
				}
			}
		}
		if got["grant"] != want {
			t.Fatalf("arbiter(req=%04x, ptr=%d) = %04x, want %04x", req, ptr, got["grant"], want)
		}
		wantValid := uint64(0)
		if req != 0 {
			wantValid = 1
		}
		if got["valid"] != wantValid {
			t.Fatalf("arbiter valid wrong")
		}
	}
}

func TestControlLogicBench(t *testing.T) {
	spec := controlSpec("cavlc", 10, 11, 40)
	net := ControlLogic("cavlc", 10, 11, 40)
	rng := rand.New(rand.NewSource(10))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & 0x3ff})
	}
	for k, got := range simVec(t, net, vecs) {
		if want := evalControlSpec(spec, vecs[k]["x"]); got["y"] != want {
			t.Fatalf("control(%#x) = %#x, want %#x", vecs[k]["x"], got["y"], want)
		}
	}
}

func TestVoterBench(t *testing.T) {
	net := Voter(31)
	rng := rand.New(rand.NewSource(11))
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & 0x7fffffff})
	}
	for k, got := range simVec(t, net, vecs) {
		want := uint64(0)
		if bits.OnesCount64(vecs[k]["x"]) > 15 {
			want = 1
		}
		if got["maj"] != want {
			t.Fatalf("voter(%x) = %d, want %d", vecs[k]["x"], got["maj"], want)
		}
	}
}

func TestIntToFloatBench(t *testing.T) {
	net := IntToFloat()
	var vecs []map[string]uint64
	for _, x := range []uint64{0, 1, 2, 3, 7, 8, 100, 1023, 1024, 1025, 2047, 1030} {
		vecs = append(vecs, map[string]uint64{"x": x})
	}
	ref := func(x uint64) uint64 {
		v := int64(x<<53) >> 53 // sign-extend 11 bits
		sign := uint64(0)
		mag := uint64(v)
		if v < 0 {
			sign = 1
			mag = uint64(-v) & 0x7ff
		}
		if mag == 0 {
			return 0
		}
		msb := 63 - bits.LeadingZeros64(mag)
		var exp, mant uint64
		if msb < 3 {
			exp = 0
			mant = mag & 7
		} else {
			exp = uint64(msb-3) & 7
			mant = mag >> uint(msb-3) & 7
		}
		return mant | exp<<3 | sign<<6
	}
	for k, got := range simVec(t, net, vecs) {
		if want := ref(vecs[k]["x"]); got["f"] != want {
			t.Fatalf("int2float(%#x) = %#x, want %#x", vecs[k]["x"], got["f"], want)
		}
	}
}

func TestRouterBench(t *testing.T) {
	net := Router(4)
	rng := rand.New(rand.NewSource(12))
	dirRef := func(cx, cy, dx, dy uint64) uint64 {
		switch {
		case cx < dx:
			return 1 << 0 // E
		case cx > dx:
			return 1 << 1 // W
		case cy < dy:
			return 1 << 2 // N
		case cy > dy:
			return 1 << 3 // S
		default:
			return 1 << 4 // local
		}
	}
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{
			"cur_x": uint64(rng.Intn(16)), "cur_y": uint64(rng.Intn(16)),
			"dst_x": uint64(rng.Intn(16)), "dst_y": uint64(rng.Intn(16)),
		})
	}
	for k, got := range simVec(t, net, vecs) {
		cx, cy := vecs[k]["cur_x"], vecs[k]["cur_y"]
		dx, dy := vecs[k]["dst_x"], vecs[k]["dst_y"]
		if got["dir_now"] != dirRef(cx, cy, dx, dy) {
			t.Fatalf("router now(%d,%d→%d,%d) = %05b, want %05b",
				cx, cy, dx, dy, got["dir_now"], dirRef(cx, cy, dx, dy))
		}
		// One hop in the chosen direction, then re-evaluate.
		switch got["dir_now"] {
		case 1 << 0:
			cx++
		case 1 << 1:
			cx--
		case 1 << 2:
			cy++
		case 1 << 3:
			cy--
		}
		cx &= 0xf
		cy &= 0xf
		if got["dir_next"] != dirRef(cx, cy, dx, dy) {
			t.Fatalf("router next hop mismatch")
		}
	}
}

func TestComparatorBench(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range []struct {
		signed, orEqual bool
	}{{false, false}, {false, true}, {true, false}, {true, true}} {
		net := Comparator(32, c.signed, c.orEqual)
		var vecs []map[string]uint64
		for i := 0; i < 62; i++ {
			vecs = append(vecs, map[string]uint64{"x": rng.Uint64() & 0xffffffff, "y": rng.Uint64() & 0xffffffff})
		}
		vecs = append(vecs,
			map[string]uint64{"x": 5, "y": 5},
			map[string]uint64{"x": 0x80000000, "y": 1})
		for k, got := range simVec(t, net, vecs) {
			x, y := vecs[k]["x"], vecs[k]["y"]
			var want bool
			if c.signed {
				xs, ys := int32(x), int32(y)
				if c.orEqual {
					want = xs <= ys
				} else {
					want = xs < ys
				}
			} else {
				if c.orEqual {
					want = x <= y
				} else {
					want = x < y
				}
			}
			w := uint64(0)
			if want {
				w = 1
			}
			if got["cmp"] != w {
				t.Fatalf("cmp(signed=%v, eq=%v)(%x,%x) = %d, want %d", c.signed, c.orEqual, x, y, got["cmp"], w)
			}
		}
	}
}

func TestPriorityEncoderBench(t *testing.T) {
	net := PriorityEncoder(32)
	rng := rand.New(rand.NewSource(14))
	var vecs []map[string]uint64
	vecs = append(vecs, map[string]uint64{"req": 0})
	for len(vecs) < 64 {
		vecs = append(vecs, map[string]uint64{"req": rng.Uint64() & 0xffffffff})
	}
	for k, got := range simVec(t, net, vecs) {
		req := vecs[k]["req"]
		if req == 0 {
			if got["valid"] != 0 {
				t.Fatalf("valid for zero request")
			}
			continue
		}
		if got["valid"] != 1 || got["idx"] != uint64(bits.TrailingZeros64(req)) {
			t.Fatalf("prio(%08x) = (%d,%d)", req, got["idx"], got["valid"])
		}
	}
}

func TestDecoderBench(t *testing.T) {
	net := Decoder(6)
	var vecs []map[string]uint64
	for i := 0; i < 64; i++ {
		vecs = append(vecs, map[string]uint64{"sel": uint64(i)})
	}
	for k, got := range simVec(t, net, vecs) {
		if got["onehot"] != 1<<vecs[k]["sel"] {
			t.Fatalf("decode(%d) = %x", vecs[k]["sel"], got["onehot"])
		}
	}
}

func TestAllBenchmarksBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every benchmark")
	}
	for _, b := range append(EPFL(), MPC()...) {
		net := b.Build()
		if net.NumPIs() == 0 || net.NumPOs() == 0 {
			t.Fatalf("%s: degenerate interface", b.Name)
		}
		c := net.CountGates()
		t.Logf("%-24s %-14s PIs=%4d POs=%4d AND=%6d XOR=%6d", b.Name, b.Group, net.NumPIs(), net.NumPOs(), c.And, c.Xor)
	}
}
