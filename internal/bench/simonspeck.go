package bench

import (
	"math/bits"

	"repro/internal/builder"
	"repro/internal/xag"
)

// Simon and Speck (Beaulieu et al., NSA 2013) are the canonical
// "MPC-friendly by accident" lightweight ciphers: Simon's round function
// uses a single bitwise AND of rotated words (w ANDs per round, XOR
// otherwise), while Speck is add-rotate-xor (its ANDs all come from the
// modular adder's carry chain). They extend the paper's Table 2 with
// circuits at the two extremes of AND structure. Both circuits are checked
// against the software models below, which follow the published
// specification.

// Simon64/96: 32-bit words, 42 rounds, 96-bit key (3 words).
const (
	simonWordBits = 32
	simonRounds   = 42
	simonKeyWords = 3
)

// simonZ is the z2 constant sequence used by Simon64/96 (period 62).
var simonZ = [62]byte{
	1, 0, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 0, 1, 0, 0,
	1, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1,
	1, 0, 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1,
}

// simonExpandKey derives the round keys of the software model.
func simonExpandKey(key [simonKeyWords]uint32) [simonRounds]uint32 {
	var k [simonRounds]uint32
	copy(k[:], key[:])
	const c = 0xfffffffc
	for i := simonKeyWords; i < simonRounds; i++ {
		tmp := bits.RotateLeft32(k[i-1], -3)
		tmp ^= bits.RotateLeft32(tmp, -1)
		k[i] = ^k[i-simonKeyWords] ^ tmp ^ uint32(simonZ[(i-simonKeyWords)%62]) ^ 3
		_ = c
	}
	return k
}

// simonRef encrypts one 64-bit block with the software model.
func simonRef(x, y uint32, key [simonKeyWords]uint32) (uint32, uint32) {
	k := simonExpandKey(key)
	for i := 0; i < simonRounds; i++ {
		x, y = y^(bits.RotateLeft32(x, 1)&bits.RotateLeft32(x, 8))^bits.RotateLeft32(x, 2)^k[i], x
	}
	return x, y
}

// Simon64 builds the Simon64/96 encryption circuit: exactly
// simonRounds·simonWordBits AND gates before optimization — Simon's round
// AND is already a single layer, so the paper's optimizer should find
// little to improve (like AES).
func Simon64() *xag.Network {
	b := builder.New()
	x := b.Input("x", simonWordBits)
	y := b.Input("y", simonWordBits)
	var keyWords [simonKeyWords]builder.Bus
	for i := range keyWords {
		keyWords[i] = b.Input("k"+string(rune('0'+i)), simonWordBits)
	}

	// Key schedule in-circuit: XOR/rotate only, AND-free.
	rk := make([]builder.Bus, simonRounds)
	for i := 0; i < simonKeyWords; i++ {
		rk[i] = keyWords[i]
	}
	for i := simonKeyWords; i < simonRounds; i++ {
		tmp := b.RotateRightConst(rk[i-1], 3)
		tmp = b.XorBus(tmp, b.RotateRightConst(tmp, 1))
		cst := uint64(simonZ[(i-simonKeyWords)%62]) ^ 3 ^ 0xffffffff
		rk[i] = b.XorBus(b.XorBus(rk[i-simonKeyWords], tmp), b.Const(cst, simonWordBits))
	}

	for i := 0; i < simonRounds; i++ {
		f := b.AndBus(b.RotateLeftConst(x, 1), b.RotateLeftConst(x, 8))
		newX := b.XorBus(b.XorBus(b.XorBus(y, f), b.RotateLeftConst(x, 2)), rk[i])
		x, y = newX, x
	}
	b.Output("ctx", x)
	b.Output("cty", y)
	return b.Net
}

// Speck64/96: 32-bit words, 26 rounds, 96-bit key.
const (
	speckRounds   = 26
	speckKeyWords = 3
)

func speckRound(x, y, k uint32) (uint32, uint32) {
	x = bits.RotateLeft32(x, -8)
	x += y
	x ^= k
	y = bits.RotateLeft32(y, 3)
	y ^= x
	return x, y
}

// speckRef encrypts one 64-bit block with the software model.
func speckRef(x, y uint32, key [speckKeyWords]uint32) (uint32, uint32) {
	k := key[0]
	l := [speckRounds + speckKeyWords - 2]uint32{}
	copy(l[:], key[1:])
	for i := 0; i < speckRounds; i++ {
		x, y = speckRound(x, y, k)
		if i < speckRounds-1 {
			l[i+speckKeyWords-1], k = speckKeyRound(l[i], k, uint32(i))
		}
	}
	return x, y
}

func speckKeyRound(l, k, i uint32) (uint32, uint32) {
	l = bits.RotateLeft32(l, -8)
	l += k
	l ^= i
	k = bits.RotateLeft32(k, 3)
	k ^= l
	return l, k
}

// Speck64 builds the Speck64/96 encryption circuit with the key schedule
// in-circuit. All AND gates come from the modular adders; the optimizer
// should collapse each 3-AND-per-bit carry chain to the 1-AND optimum,
// approaching a third of the initial count, as for the Table 2 adders.
func Speck64() *xag.Network {
	b := builder.New()
	x := b.Input("x", 32)
	y := b.Input("y", 32)
	var keyWords [speckKeyWords]builder.Bus
	for i := range keyWords {
		keyWords[i] = b.Input("k"+string(rune('0'+i)), 32)
	}

	// One Speck round with an arbitrary mixed-in word (the round key during
	// encryption, the round counter in the key schedule).
	round := func(x, y, mix builder.Bus) (builder.Bus, builder.Bus) {
		x = b.RotateRightConst(x, 8)
		x = b.AddMod(x, y, builder.StyleNaive)
		x = b.XorBus(x, mix)
		y = b.RotateLeftConst(y, 3)
		y = b.XorBus(y, x)
		return x, y
	}

	k := keyWords[0]
	l := make([]builder.Bus, speckRounds+speckKeyWords-2)
	copy(l, keyWords[1:])
	for i := 0; i < speckRounds; i++ {
		x, y = round(x, y, k)
		if i < speckRounds-1 {
			nl, nk := round(l[i], k, b.Const(uint64(i), 32))
			l[i+speckKeyWords-1], k = nl, nk
		}
	}
	b.Output("ctx", x)
	b.Output("cty", y)
	return b.Net
}
