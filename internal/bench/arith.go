package bench

import (
	"repro/internal/builder"
	"repro/internal/xag"
)

// Adder builds a w-bit ripple-carry adder with carry-out using the naive
// 3-AND full adder (EPFL "adder"; also Table 2's 32/64-bit adders).
func Adder(w int) *xag.Network {
	b := builder.New()
	x := b.Input("x", w)
	y := b.Input("y", w)
	sum, carry := b.Add(x, y, builder.StyleNaive)
	b.Output("sum", sum)
	b.Output("cout", builder.Bus{carry})
	return b.Net
}

// BarrelShifter builds a w-bit rotate-left by a variable amount out of
// and-or muxes (EPFL "bar": its un-optimized netlist has exactly
// 3·w·log2(w) AND gates, which the optimizer reduces to w·log2(w)).
func BarrelShifter(w int) *xag.Network {
	b := builder.New()
	data := b.Input("data", w)
	logw := 0
	for 1<<uint(logw) < w {
		logw++
	}
	amt := b.Input("amt", logw)
	cur := data
	for s, bit := range amt {
		shifted := b.RotateLeftConst(cur, 1<<uint(s))
		cur = b.MuxBusNaive(bit, shifted, cur)
	}
	b.Output("out", cur)
	return b.Net
}

// Divisor builds a w-bit restoring divider producing quotient and remainder
// (EPFL "div", width-reduced).
func Divisor(w int) *xag.Network {
	b := builder.New()
	num := b.Input("num", w)
	den := b.Input("den", w)
	// Restoring division: shift the numerator in from the MSB side into a
	// remainder register, subtract, keep the difference when it does not
	// borrow.
	rem := b.Const(0, w+1)
	den1 := append(append(builder.Bus{}, den...), xag.Const0)
	quo := make(builder.Bus, w)
	for i := w - 1; i >= 0; i-- {
		// rem = rem<<1 | num[i]
		rem = append(builder.Bus{num[i]}, rem[:w]...)
		diff, noBorrow := b.Sub(rem, den1, builder.StyleNaive)
		quo[i] = noBorrow
		rem = b.MuxBusNaive(noBorrow, diff, rem)
	}
	b.Output("quo", quo)
	b.Output("rem", rem[:w])
	return b.Net
}

// Log2 builds a fixed-point base-2 logarithm of a w-bit integer: the
// integer part is the index of the leading one; frac fractional bits are
// produced by the classical normalize-and-square recurrence (EPFL "log2",
// width-reduced). Inputs equal to zero yield zero.
func Log2(w int) *xag.Network {
	const frac = 6
	b := builder.New()
	x := b.Input("x", w)

	// Find the leading one: msb = index of highest set bit.
	logw := 0
	for 1<<uint(logw) < w {
		logw++
	}
	msb := b.Const(0, logw)
	valid := xag.Const0
	for i := 0; i < w; i++ {
		msb = b.MuxBusNaive(x[i], b.Const(uint64(i), logw), msb)
		valid = b.Net.Or(valid, x[i])
	}
	// Normalize: shift left so the leading one lands at position w−1.
	inv := b.SubConst(uint64(w-1), msb)
	norm := b.Barrel(x, inv, false, false)

	// Fractional bits: repeatedly square the normalized mantissa
	// (interpreted as 1.ffff); each squaring's overflow bit is the next
	// fraction bit. Mantissa truncated to 8 bits to bound the multipliers.
	const mw = 8
	mant := norm[w-mw:]
	var fbits builder.Bus
	for k := 0; k < frac; k++ {
		sq := b.Mul(mant, mant, builder.StyleNaive) // 2·mw bits, value in [1,4)
		top := sq[len(sq)-1]                        // ≥ 2 ⇒ fraction bit 1
		fbits = append(builder.Bus{top}, fbits...)
		// If ≥ 2, renormalize by taking the top mw bits, else the next ones.
		hi := sq[len(sq)-mw:]
		lo := sq[len(sq)-mw-1 : len(sq)-1]
		mant = b.MuxBusNaive(top, hi, lo)
	}
	out := append(append(builder.Bus{}, fbits...), msb...)
	zero := b.Const(0, len(out))
	b.Output("log2", b.MuxBusNaive(valid, out, zero))
	return b.Net
}

// Max builds the maximum of four w-bit unsigned values plus the 2-bit index
// of the winner (EPFL "max" computes the maximum of packed values).
func Max(w int) *xag.Network {
	b := builder.New()
	in := make([]builder.Bus, 4)
	for i := range in {
		in[i] = b.Input([]string{"a0", "a1", "a2", "a3"}[i], w)
	}
	max01 := b.MuxBusNaive(b.LtU(in[0], in[1], builder.StyleNaive), in[1], in[0])
	idx01 := b.LtU(in[0], in[1], builder.StyleNaive)
	max23 := b.MuxBusNaive(b.LtU(in[2], in[3], builder.StyleNaive), in[3], in[2])
	idx23 := b.LtU(in[2], in[3], builder.StyleNaive)
	sel := b.LtU(max01, max23, builder.StyleNaive)
	b.Output("max", b.MuxBusNaive(sel, max23, max01))
	b.Output("idx", builder.Bus{b.Net.Mux(sel, idx23, idx01), sel})
	return b.Net
}

// Multiplier builds the full 2w-bit product of two w-bit inputs (EPFL
// "multiplier"; Table 2's 32×32 multiplier).
func Multiplier(w int) *xag.Network {
	b := builder.New()
	x := b.Input("x", w)
	y := b.Input("y", w)
	b.Output("p", b.Mul(x, y, builder.StyleNaive))
	return b.Net
}

// Sine approximates sin on a w-bit angle with a CORDIC rotation pipeline
// (EPFL "sine", width-reduced). The angle covers [0, π/2).
func Sine(w int) *xag.Network {
	b := builder.New()
	angle := b.Input("angle", w)

	// Fixed-point format: w+2 bits, w fractional. CORDIC gain compensated
	// in the initial x value.
	ww := w + 2
	ext := func(bus builder.Bus) builder.Bus {
		out := append(builder.Bus{}, bus...)
		for len(out) < ww {
			out = append(out, xag.Const0)
		}
		return out
	}
	// K = 0.607252935..., x0 = K in w fractional bits.
	k := uint64(0.6072529350088813 * float64(uint64(1)<<uint(w)))
	x := b.Const(k, ww)
	y := b.Const(0, ww)
	z := ext(angle)

	for i := 0; i < w; i++ {
		// atan(2^-i) in w fractional bits.
		at := uint64(atan2i(i) * float64(uint64(1)<<uint(w)))
		sign := z[ww-1] // rotate clockwise when z is negative
		xs := b.ShiftRightArith(x, i)
		ys := b.ShiftRightArith(y, i)
		xAdd := b.AddMod(x, ys, builder.StyleNaive)
		xSub, _ := b.Sub(x, ys, builder.StyleNaive)
		yAdd := b.AddMod(y, xs, builder.StyleNaive)
		ySub, _ := b.Sub(y, xs, builder.StyleNaive)
		zAdd := b.AddMod(z, b.Const(at, ww), builder.StyleNaive)
		zSub, _ := b.Sub(z, b.Const(at, ww), builder.StyleNaive)
		x = b.MuxBusNaive(sign, xAdd, xSub)
		y = b.MuxBusNaive(sign, ySub, yAdd)
		z = b.MuxBusNaive(sign, zAdd, zSub)
	}
	b.Output("sin", y)
	return b.Net
}

func atan2i(i int) float64 {
	// atan(2^-i) / 1 — enough precision from a tiny series-free table
	// computed at generation time.
	x := 1.0
	for k := 0; k < i; k++ {
		x /= 2
	}
	// arctangent via math-free Newton is overkill; use the Taylor series,
	// which converges fast for x ≤ 1.
	term := x
	sum := 0.0
	x2 := x * x
	for k := 0; k < 40; k++ {
		if k%2 == 0 {
			sum += term / float64(2*k+1)
		} else {
			sum -= term / float64(2*k+1)
		}
		term *= x2
	}
	return sum
}

// SquareRoot builds the integer square root of a w-bit input by restoring
// bit-by-bit extraction (EPFL "sqrt", width-reduced). w must be even.
func SquareRoot(w int) *xag.Network {
	b := builder.New()
	x := b.Input("x", w)
	hw := w / 2
	r := hw + 2 // remainder width: the invariant rem < 2·root + 2 keeps it here
	root := b.Const(0, hw)
	rem := b.Const(0, r)
	for i := hw - 1; i >= 0; i-- {
		// rem = rem<<2 | next two bits of x (MSB-first pairs).
		rem = append(builder.Bus{x[2*i], x[2*i+1]}, rem[:r-2]...)
		// Candidate subtrahend: root<<2 | 01.
		cand := append(builder.Bus{xag.Const1, xag.Const0}, root...)
		diff, noBorrow := b.Sub(rem, cand, builder.StyleNaive)
		rem = b.MuxBusNaive(noBorrow, diff, rem)
		// root = root<<1 | noBorrow.
		root = append(builder.Bus{noBorrow}, root[:hw-1]...)
	}
	b.Output("root", root)
	return b.Net
}

// Square builds x² (EPFL "square", width-reduced).
func Square(w int) *xag.Network {
	b := builder.New()
	x := b.Input("x", w)
	b.Output("sq", b.Mul(x, x, builder.StyleNaive))
	return b.Net
}
