package bench

import (
	"context"
	"sync"
	"testing"

	"repro/internal/mcdb"
	"repro/mcc"
)

// goldenRefineBudget bounds the per-query SAT effort of the refined golden
// leg, and goldenRefineWorstN caps how many entries one run revisits; the
// leg checks the no-regression invariant, not exhaustive optimality, so a
// bounded pass keeps the suite's runtime predictable.
const (
	goldenRefineBudget = 2000
	goldenRefineWorstN = 48
)

// TestGoldenRefinedNoRegression is the refined-database golden leg: warm one
// shared database by optimizing every fast benchmark under every cost model,
// run a bounded SAT refinement pass over it, then re-run everything and
// assert no benchmark's AND count exceeds its pin. Refinement only ever
// replaces stored circuits with smaller ones on the same Pareto front, so
// any AND-count increase means the hot-swap corrupted a lookup path.
func TestGoldenRefinedNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("refined golden leg skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("refined golden leg skipped under -race: it pins results, not memory safety")
	}
	want := readGoldenFile(t)

	var fast []Benchmark
	for _, b := range append(append(EPFL(), MPC()...), Extended()...) {
		if !heavyBenchmarks[b.Name] {
			fast = append(fast, b)
		}
	}

	// Warm sequentially: the refinement pass below must see every cut class
	// the suite exercises.
	db := mcc.NewDB()
	for _, b := range fast {
		for _, model := range goldenModels {
			optimizeGolden(t, db, b, model, 4)
		}
	}

	rep := db.Refine(context.Background(), mcdb.RefineOptions{
		Budget: goldenRefineBudget,
		WorstN: goldenRefineWorstN,
	})
	t.Logf("refine pass: %+v", rep)
	if rep.Rejected != 0 {
		t.Fatalf("the validation gate rejected %d models from an honest refinement run", rep.Rejected)
	}

	var mu sync.Mutex
	improved := 0
	t.Run("recheck", func(t *testing.T) {
		for _, b := range fast {
			for _, model := range goldenModels {
				b, model := b, model
				t.Run(b.Name+"/"+model, func(t *testing.T) {
					t.Parallel()
					pin, ok := want[b.Name][model]
					if !ok {
						t.Fatalf("no golden entry for %s/%s (regenerate with -update)", b.Name, model)
					}
					got := optimizeGolden(t, db, b, model, 4)
					if got.And > pin.And {
						t.Errorf("%s/%s: AND count regressed against the refined database: %d > pinned %d",
							b.Name, model, got.And, pin.And)
					}
					if got.And < pin.And {
						mu.Lock()
						improved++
						mu.Unlock()
					}
				})
			}
		}
	})
	t.Logf("refined database improved %d of %d benchmark results", improved, 3*len(fast))
}
