package bench

import (
	"repro/internal/builder"
	"repro/internal/xag"
)

// Arbiter builds a w-input round-robin arbiter: a pointer selects the
// highest-priority requester cyclically; grants are one-hot. Like the EPFL
// arbiter, the circuit is pure AND/OR priority logic, so the MC optimizer
// finds nothing to improve (0 % in Table 1).
func Arbiter(w int) *xag.Network {
	b := builder.New()
	req := b.Input("req", w)
	logw := 0
	for 1<<uint(logw) < w {
		logw++
	}
	ptr := b.Input("ptr", logw)

	// mask[i] = (i >= ptr): thermometer code from the one-hot decoder.
	onehot := b.Decoder(ptr)[:w]
	mask := make([]xag.Lit, w)
	run := xag.Const0
	for i := 0; i < w; i++ {
		run = b.Net.Or(run, onehot[i])
		mask[i] = run
	}

	fixedPriority := func(in []xag.Lit) ([]xag.Lit, xag.Lit) {
		grants := make([]xag.Lit, len(in))
		taken := xag.Const0
		for i := range in {
			grants[i] = b.Net.And(in[i], taken.Not())
			taken = b.Net.Or(taken, in[i])
		}
		return grants, taken
	}

	masked := make([]xag.Lit, w)
	for i := range masked {
		masked[i] = b.Net.And(req[i], mask[i])
	}
	gHi, anyHi := fixedPriority(masked)
	gLo, anyLo := fixedPriority(req)
	grants := make(builder.Bus, w)
	for i := range grants {
		grants[i] = b.MuxNaive(anyHi, gHi[i], gLo[i])
	}
	b.Output("grant", grants)
	b.Output("valid", builder.Bus{b.Net.Or(anyHi, anyLo)})
	return b.Net
}

// ALUControl builds a MIPS-style ALU control unit: a 2-bit ALU op and a
// 4-bit function code decode into a one-hot operation bundle plus derived
// control flags.
func ALUControl() *xag.Network {
	b := builder.New()
	aluop := b.Input("aluop", 2)
	funct := b.Input("funct", 4)
	flag := b.Input("flag", 1)

	n := b.Net
	dec := b.Decoder(funct) // 16 lines
	isR := n.And(aluop[1], aluop[0].Not())
	ops := make(builder.Bus, 0, 26)
	// One-hot op lines under R-type decode.
	for i := 0; i < 16; i++ {
		ops = append(ops, n.And(isR, dec[i]))
	}
	// Derived controls.
	addOp := n.And(aluop[0].Not(), aluop[1].Not())
	subOp := n.And(aluop[0], aluop[1].Not())
	ops = append(ops,
		addOp,
		subOp,
		n.Or(subOp, n.And(isR, dec[2])),       // subtract select
		n.And(isR, n.Or(dec[4], dec[5])),      // logic select
		n.And(flag[0], n.Or(addOp, subOp)),    // flag-qualified op
		n.Xor(aluop[0], aluop[1]),             // mode parity
		n.And(n.Xor(funct[0], funct[1]), isR), // funct parity low
		n.And(n.Xor(funct[2], funct[3]), isR), // funct parity high
		n.Or(n.And(isR, dec[10]), subOp),      // set-less-than
		n.And(aluop[1], aluop[0]),             // invalid op
	)
	b.Output("ctl", ops)
	return b.Net
}

// controlTerm is one product term of a seeded two-level control block: a
// set of input literals (index, polarity).
type controlTerm struct {
	vars []int
	pol  []bool
}

// controlSpec deterministically derives a two-level AND-OR specification
// from a name. Both the circuit generator and the software reference
// evaluate the same spec, standing in for the irregular control-logic
// benchmarks of the EPFL suite (cavlc, i2c, mem_ctrl) whose netlists are
// not re-derivable from first principles; see DESIGN.md.
func controlSpec(name string, in, out, terms int) [][]controlTerm {
	seed := uint64(0x9e3779b97f4a7c15)
	for _, c := range name {
		seed = (seed ^ uint64(c)) * 0xbf58476d1ce4e5b9
	}
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	spec := make([][]controlTerm, out)
	perOut := terms / out
	if perOut < 1 {
		perOut = 1
	}
	for o := range spec {
		nt := 1 + int(next()%uint64(perOut*2))
		for t := 0; t < nt; t++ {
			k := 2 + int(next()%3) // 2..4 literals per product
			term := controlTerm{}
			used := map[int]bool{}
			for len(term.vars) < k {
				v := int(next() % uint64(in))
				if used[v] {
					continue
				}
				used[v] = true
				term.vars = append(term.vars, v)
				term.pol = append(term.pol, next()&1 == 1)
			}
			spec[o] = append(spec[o], term)
		}
	}
	return spec
}

// evalControlSpec is the software reference for ControlLogic.
func evalControlSpec(spec [][]controlTerm, input uint64) uint64 {
	var out uint64
	for o, terms := range spec {
		for _, t := range terms {
			match := true
			for i, v := range t.vars {
				bit := input>>uint(v)&1 == 1
				if bit != t.pol[i] {
					match = false
					break
				}
			}
			if match {
				out |= 1 << uint(o)
				break
			}
		}
	}
	return out
}

// ControlLogic builds the seeded two-level control block named name.
func ControlLogic(name string, in, out, terms int) *xag.Network {
	b := builder.New()
	x := b.Input("x", in)
	spec := controlSpec(name, in, out, terms)
	res := make(builder.Bus, out)
	for o, ts := range spec {
		acc := xag.Const0
		for _, t := range ts {
			prod := xag.Const1
			for i, v := range t.vars {
				prod = b.Net.And(prod, x[v].NotIf(!t.pol[i]))
			}
			acc = b.Net.Or(acc, prod)
		}
		res[o] = acc
	}
	b.Output("y", res)
	return b.Net
}

// Decoder builds the w-to-2^w one-hot decoder (EPFL "dec"; pure AND logic,
// 0 % improvement expected).
func Decoder(w int) *xag.Network {
	b := builder.New()
	sel := b.Input("sel", w)
	b.Output("onehot", builder.Bus(b.Decoder(sel)))
	return b.Net
}

// IntToFloat converts an 11-bit two's-complement integer to a 7-bit float
// (1 sign, 3 exponent, 3 mantissa bits, truncating) — the EPFL "int2float"
// interface.
func IntToFloat() *xag.Network {
	const w = 11
	b := builder.New()
	x := b.Input("x", w)
	sign := x[w-1]
	mag := b.MuxBusNaive(sign, b.Neg(x, builder.StyleNaive), x)

	// Position of the leading one (0 when the magnitude is zero).
	logw := 4
	msb := b.Const(0, logw)
	nonzero := xag.Const0
	for i := 0; i < w; i++ {
		msb = b.MuxBusNaive(mag[i], b.Const(uint64(i), logw), msb)
		nonzero = b.Net.Or(nonzero, mag[i])
	}
	// exponent = clamp(msb − 3, 0..7); values below 3 are subnormal-ish and
	// map to exponent 0 with the raw low bits as mantissa.
	small := b.LtU(msb, b.Const(3, logw), builder.StyleNaive)
	expFull, _ := b.Sub(msb, b.Const(3, logw), builder.StyleNaive)
	exp := b.MuxBusNaive(small, b.Const(0, 3), expFull[:3])

	// mantissa: the three bits below the leading one, obtained by
	// normalizing left so the leading one lands at bit w−1.
	inv := b.SubConst(uint64(w-1), msb)
	norm := b.Barrel(mag, inv, false, false) // leading one at bit w−1
	mant := builder.Bus{norm[w-4], norm[w-3], norm[w-2]}
	mantSmall := builder.Bus{mag[0], mag[1], mag[2]}
	mant = b.MuxBusNaive(small, mantSmall, mant)

	out := append(append(builder.Bus{}, mant...), exp...)
	out = append(out, sign)
	zero := b.Const(0, 7)
	b.Output("f", b.MuxBusNaive(nonzero, out, zero))
	return b.Net
}

// PriorityEncoder builds the w-to-log(w) priority encoder (EPFL "priority").
func PriorityEncoder(w int) *xag.Network {
	b := builder.New()
	req := b.Input("req", w)
	idx, valid := b.PriorityEncoder(req)
	b.Output("idx", idx)
	b.Output("valid", builder.Bus{valid})
	return b.Net
}

// Router builds a lookahead XY mesh router: from current and destination
// coordinates it derives the output direction for this hop and the next
// (EPFL "router" interface, simplified).
func Router(w int) *xag.Network {
	b := builder.New()
	curX := b.Input("cur_x", w)
	curY := b.Input("cur_y", w)
	dstX := b.Input("dst_x", w)
	dstY := b.Input("dst_y", w)
	n := b.Net

	dir := func(cx, cy builder.Bus) builder.Bus {
		eqX := b.EqBus(cx, dstX)
		eqY := b.EqBus(cy, dstY)
		east := b.LtU(cx, dstX, builder.StyleNaive)
		north := b.LtU(cy, dstY, builder.StyleNaive)
		// XY routing: resolve X first, then Y.
		return builder.Bus{
			n.And(eqX.Not(), east),                    // E
			n.And(eqX.Not(), east.Not()),              // W
			n.And(eqX, n.And(eqY.Not(), north)),       // N
			n.And(eqX, n.And(eqY.Not(), north.Not())), // S
			n.And(eqX, eqY),                           // local
		}
	}

	now := dir(curX, curY)
	// Lookahead: coordinates after taking the chosen hop.
	one := b.Const(1, w)
	nextX := b.MuxBusNaive(now[0], b.AddMod(curX, one, builder.StyleNaive), curX)
	decX, _ := b.Sub(curX, one, builder.StyleNaive)
	nextX = b.MuxBusNaive(now[1], decX, nextX)
	nextY := b.MuxBusNaive(now[2], b.AddMod(curY, one, builder.StyleNaive), curY)
	decY, _ := b.Sub(curY, one, builder.StyleNaive)
	nextY = b.MuxBusNaive(now[3], decY, nextY)
	next := dir(nextX, nextY)

	b.Output("dir_now", now)
	b.Output("dir_next", next)
	return b.Net
}

// Voter builds the majority function of n (odd) inputs via a popcount tree
// and comparator (EPFL "voter").
func Voter(n int) *xag.Network {
	b := builder.New()
	in := b.Input("x", n)
	pc := b.Popcount(in, builder.StyleNaive)
	maj := b.LtU(b.Const(uint64(n/2), len(pc)), pc, builder.StyleNaive)
	b.Output("maj", builder.Bus{maj})
	return b.Net
}

// Comparator builds the Table 2 single-output comparators.
func Comparator(w int, signed, orEqual bool) *xag.Network {
	b := builder.New()
	x := b.Input("x", w)
	y := b.Input("y", w)
	var out xag.Lit
	switch {
	case signed && orEqual:
		out = b.LeS(x, y, builder.StyleNaive)
	case signed:
		out = b.LtS(x, y, builder.StyleNaive)
	case orEqual:
		out = b.LeU(x, y, builder.StyleNaive)
	default:
		out = b.LtU(x, y, builder.StyleNaive)
	}
	b.Output("cmp", builder.Bus{out})
	return b.Net
}
