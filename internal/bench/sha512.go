package bench

import (
	"repro/internal/builder"
	"repro/internal/xag"
)

// SHA512Block builds the SHA-512 compression of one padded 1024-bit block
// with the standard IV — an extension benchmark beyond the paper's Table 2
// (64-bit words double the adder chains, so the AND count roughly doubles
// relative to SHA-256). Verified against crypto/sha512 by the tests.
func SHA512Block() *xag.Network {
	b := builder.New()
	m := make([]builder.Bus, 16)
	for i := range m {
		m[i] = b.Input(wordName(i), 64)
	}

	// Round constants: first 64 bits of the fractional parts of the cube
	// roots of the first 80 primes.
	primes := firstPrimes(80)
	k := make([]uint64, 80)
	for i, p := range primes {
		k[i] = fracRootBits64(p, 3)
	}

	rotr := func(x builder.Bus, r int) builder.Bus { return b.RotateRightConst(x, r) }
	shr := func(x builder.Bus, r int) builder.Bus { return b.ShiftRightConst(x, r) }
	xor3 := func(x, y, z builder.Bus) builder.Bus { return b.XorBus(b.XorBus(x, y), z) }

	w := make([]builder.Bus, 80)
	copy(w, m)
	for t := 16; t < 80; t++ {
		s0 := xor3(rotr(w[t-15], 1), rotr(w[t-15], 8), shr(w[t-15], 7))
		s1 := xor3(rotr(w[t-2], 19), rotr(w[t-2], 61), shr(w[t-2], 6))
		w[t] = addW(b, s1, w[t-7], s0, w[t-16])
	}

	iv := []uint64{
		0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
		0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
	}
	h := make([]builder.Bus, 8)
	for i := range h {
		h[i] = b.Const(iv[i], 64)
	}
	a, bb, c, d, e, f, g, hh := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]

	for t := 0; t < 80; t++ {
		sig1 := xor3(rotr(e, 14), rotr(e, 18), rotr(e, 41))
		ch := chNaive(b, e, f, g)
		t1 := addW(b, hh, sig1, ch, b.Const(k[t], 64), w[t])
		sig0 := xor3(rotr(a, 28), rotr(a, 34), rotr(a, 39))
		maj := majNaive(b, a, bb, c)
		t2 := addW(b, sig0, maj)
		hh, g, f, e, d, c, bb, a = g, f, e, addW(b, d, t1), c, bb, a, addW(b, t1, t2)
	}

	cur := []builder.Bus{a, bb, c, d, e, f, g, hh}
	for i := range h {
		b.Output("h"+string(rune('0'+i)), addW(b, h[i], cur[i]))
	}
	return b.Net
}

// fracRootBits64 returns the first 64 fractional bits of p^(1/root),
// reusing the big.Float machinery of the SHA-256 constants.
func fracRootBits64(p, root int) uint64 { return fracRootFrac(p, root, 64) }
