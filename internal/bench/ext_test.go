package bench

import (
	"crypto/sha512"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestSHA512MatchesStdlib verifies the 64-bit-word compression circuit
// against crypto/sha512 on single-block messages (≤ 111 bytes).
func TestSHA512MatchesStdlib(t *testing.T) {
	net := SHA512Block()
	if net.NumPIs() != 1024 {
		t.Fatalf("SHA-512 circuit has %d PIs, want 1024", net.NumPIs())
	}
	rng := rand.New(rand.NewSource(401))
	const vectors = 8
	msgs := make([][]byte, vectors)
	for i := range msgs {
		m := make([]byte, rng.Intn(112))
		rng.Read(m)
		msgs[i] = m
	}
	msgs[0] = []byte("abc")

	in := make([]uint64, net.NumPIs())
	for v, msg := range msgs {
		var block [128]byte
		copy(block[:], msg)
		block[len(msg)] = 0x80
		binary.BigEndian.PutUint64(block[120:], uint64(len(msg))*8)
		for wIdx := 0; wIdx < 16; wIdx++ {
			word := binary.BigEndian.Uint64(block[8*wIdx:])
			for bit := 0; bit < 64; bit++ {
				if word>>uint(bit)&1 == 1 {
					in[wIdx*64+bit] |= 1 << uint(v)
				}
			}
		}
	}
	out := net.Simulate(in)
	for v, msg := range msgs {
		want := sha512.Sum512(msg)
		for o := 0; o < 8; o++ {
			wantWord := binary.BigEndian.Uint64(want[8*o:])
			var got uint64
			for bit := 0; bit < 64; bit++ {
				if out[o*64+bit]>>uint(v)&1 == 1 {
					got |= 1 << uint(bit)
				}
			}
			if got != wantWord {
				t.Fatalf("msg %d (%d bytes): h%d = %016x, want %016x", v, len(msg), o, got, wantWord)
			}
		}
	}
}

// packWords32 loads per-vector 32-bit values into consecutive input buses.
func packWords32(in []uint64, start int, val uint32, vec int) {
	for bit := 0; bit < 32; bit++ {
		if val>>uint(bit)&1 == 1 {
			in[start+bit] |= 1 << uint(vec)
		}
	}
}

func unpackWord32(out []uint64, start, vec int) uint32 {
	var v uint32
	for bit := 0; bit < 32; bit++ {
		if out[start+bit]>>uint(vec)&1 == 1 {
			v |= 1 << uint(bit)
		}
	}
	return v
}

func TestSimon64MatchesModel(t *testing.T) {
	net := Simon64()
	rng := rand.New(rand.NewSource(402))
	const vectors = 32
	in := make([]uint64, net.NumPIs())
	type vec struct {
		x, y uint32
		key  [simonKeyWords]uint32
	}
	vs := make([]vec, vectors)
	for i := range vs {
		vs[i] = vec{x: rng.Uint32(), y: rng.Uint32()}
		for j := range vs[i].key {
			vs[i].key[j] = rng.Uint32()
		}
		packWords32(in, 0, vs[i].x, i)
		packWords32(in, 32, vs[i].y, i)
		for j, k := range vs[i].key {
			packWords32(in, 64+32*j, k, i)
		}
	}
	out := net.Simulate(in)
	for i, v := range vs {
		wx, wy := simonRef(v.x, v.y, v.key)
		if gx, gy := unpackWord32(out, 0, i), unpackWord32(out, 32, i); gx != wx || gy != wy {
			t.Fatalf("vector %d: (%08x,%08x), want (%08x,%08x)", i, gx, gy, wx, wy)
		}
	}
	// Simon's only ANDs are one 32-bit AND layer per round.
	if got := net.NumAnds(); got != simonRounds*simonWordBits {
		t.Fatalf("Simon64 has %d ANDs, want %d", got, simonRounds*simonWordBits)
	}
}

func TestSpeck64MatchesModel(t *testing.T) {
	net := Speck64()
	rng := rand.New(rand.NewSource(403))
	const vectors = 32
	in := make([]uint64, net.NumPIs())
	type vec struct {
		x, y uint32
		key  [speckKeyWords]uint32
	}
	vs := make([]vec, vectors)
	for i := range vs {
		vs[i] = vec{x: rng.Uint32(), y: rng.Uint32()}
		for j := range vs[i].key {
			vs[i].key[j] = rng.Uint32()
		}
		packWords32(in, 0, vs[i].x, i)
		packWords32(in, 32, vs[i].y, i)
		for j, k := range vs[i].key {
			packWords32(in, 64+32*j, k, i)
		}
	}
	out := net.Simulate(in)
	for i, v := range vs {
		wx, wy := speckRef(v.x, v.y, v.key)
		if gx, gy := unpackWord32(out, 0, i), unpackWord32(out, 32, i); gx != wx || gy != wy {
			t.Fatalf("vector %d: (%08x,%08x), want (%08x,%08x)", i, gx, gy, wx, wy)
		}
	}
}

func TestSpeckDiffusion(t *testing.T) {
	key := [speckKeyWords]uint32{0x03020100, 0x0b0a0908, 0x13121110}
	x0, y0 := speckRef(0x74614620, 0x736e6165, key)
	x1, y1 := speckRef(0x74614621, 0x736e6165, key)
	diff := 0
	for v := (uint64(x0^x1) << 32) | uint64(y0^y1); v != 0; v &= v - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("poor diffusion: %d differing bits", diff)
	}
}
