package bench

import (
	"math"
	"math/big"

	"repro/internal/builder"
	"repro/internal/xag"
)

// The hash benchmarks are single-block compression circuits with the
// standard initial values baked in: the circuit input is one padded 512-bit
// message block (as 16 32-bit words m0..m15 in the hash's native word
// order), the output is the digest. The package tests verify each circuit
// bit-for-bit against crypto/md5, crypto/sha1 and crypto/sha256.
//
// Boolean choice/majority functions and all adders use the naive multi-AND
// forms found in the public MPC netlists, leaving the optimizer the same
// reductions the paper reports (Ch and Maj collapse to 1-2 ANDs, 32-bit
// additions approach 31 ANDs).

func inputWords(b *builder.B, n int) []builder.Bus {
	ws := make([]builder.Bus, n)
	for i := range ws {
		ws[i] = b.Input(wordName(i), 32)
	}
	return ws
}

func wordName(i int) string {
	return "m" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// chNaive returns (x∧y) ∨ (¬x∧z) bitwise — 3 ANDs per bit before
// optimization, 1 after.
func chNaive(b *builder.B, x, y, z builder.Bus) builder.Bus {
	out := make(builder.Bus, len(x))
	for i := range out {
		out[i] = b.MuxNaive(x[i], y[i], z[i])
	}
	return out
}

// majNaive returns the bitwise majority in or-of-ands form — 5 ANDs per bit
// before optimization, 1 after.
func majNaive(b *builder.B, x, y, z builder.Bus) builder.Bus {
	out := make(builder.Bus, len(x))
	for i := range out {
		ab := b.Net.And(x[i], y[i])
		ac := b.Net.And(x[i], z[i])
		bc := b.Net.And(y[i], z[i])
		out[i] = b.Net.Or(b.Net.Or(ab, ac), bc)
	}
	return out
}

func parity3(b *builder.B, x, y, z builder.Bus) builder.Bus {
	return b.XorBus(b.XorBus(x, y), z)
}

func addW(b *builder.B, xs ...builder.Bus) builder.Bus {
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = b.AddMod(acc, x, builder.StyleNaive)
	}
	return acc
}

// MD5Block builds the MD5 compression of one padded block with the standard
// IV (RFC 1321).
func MD5Block() *xag.Network {
	b := builder.New()
	m := inputWords(b, 16)

	k := make([]uint64, 64)
	for i := range k {
		k[i] = uint64(uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * 4294967296)))
	}
	shifts := [4][4]int{
		{7, 12, 17, 22}, {5, 9, 14, 20}, {4, 11, 16, 23}, {6, 10, 15, 21},
	}

	a := b.Const(0x67452301, 32)
	bb := b.Const(0xefcdab89, 32)
	c := b.Const(0x98badcfe, 32)
	d := b.Const(0x10325476, 32)
	a0, b0, c0, d0 := a, bb, c, d

	for i := 0; i < 64; i++ {
		var f builder.Bus
		var g int
		switch {
		case i < 16:
			f = chNaive(b, bb, c, d) // F = (B∧C)∨(¬B∧D)
			g = i
		case i < 32:
			f = chNaive(b, d, bb, c) // G = (D∧B)∨(¬D∧C)
			g = (5*i + 1) % 16
		case i < 48:
			f = parity3(b, bb, c, d)
			g = (3*i + 5) % 16
		default:
			// I = C ⊕ (B ∨ ¬D)
			f = make(builder.Bus, 32)
			for j := range f {
				f[j] = b.Net.Xor(c[j], b.Net.Or(bb[j], d[j].Not()))
			}
			g = (7 * i) % 16
		}
		sum := addW(b, a, f, b.Const(k[i], 32), m[g])
		rot := b.RotateLeftConst(sum, shifts[i/16][i%4])
		a, d, c, bb = d, c, bb, addW(b, bb, rot)
	}

	b.Output("h0", addW(b, a0, a))
	b.Output("h1", addW(b, b0, bb))
	b.Output("h2", addW(b, c0, c))
	b.Output("h3", addW(b, d0, d))
	return b.Net
}

// SHA1Block builds the SHA-1 compression of one padded block with the
// standard IV (FIPS 180-4).
func SHA1Block() *xag.Network {
	b := builder.New()
	m := inputWords(b, 16)

	w := make([]builder.Bus, 80)
	copy(w, m)
	for t := 16; t < 80; t++ {
		x := b.XorBus(b.XorBus(w[t-3], w[t-8]), b.XorBus(w[t-14], w[t-16]))
		w[t] = b.RotateLeftConst(x, 1)
	}

	a := b.Const(0x67452301, 32)
	bb := b.Const(0xefcdab89, 32)
	c := b.Const(0x98badcfe, 32)
	d := b.Const(0x10325476, 32)
	e := b.Const(0xc3d2e1f0, 32)
	a0, b0, c0, d0, e0 := a, bb, c, d, e

	for t := 0; t < 80; t++ {
		var f builder.Bus
		var k uint64
		switch {
		case t < 20:
			f, k = chNaive(b, bb, c, d), 0x5a827999
		case t < 40:
			f, k = parity3(b, bb, c, d), 0x6ed9eba1
		case t < 60:
			f, k = majNaive(b, bb, c, d), 0x8f1bbcdc
		default:
			f, k = parity3(b, bb, c, d), 0xca62c1d6
		}
		tmp := addW(b, b.RotateLeftConst(a, 5), f, e, b.Const(k, 32), w[t])
		e, d, c, bb, a = d, c, b.RotateLeftConst(bb, 30), a, tmp
	}

	for i, pair := range []struct {
		init, cur builder.Bus
	}{{a0, a}, {b0, bb}, {c0, c}, {d0, d}, {e0, e}} {
		b.Output("h"+string(rune('0'+i)), addW(b, pair.init, pair.cur))
	}
	return b.Net
}

// sha256K returns the 64 round constants: the first 32 bits of the
// fractional parts of the cube roots of the first 64 primes, computed with
// big.Float so no table needs to be transcribed.
func sha256K() []uint64 {
	primes := firstPrimes(64)
	k := make([]uint64, 64)
	for i, p := range primes {
		k[i] = fracRootBits(p, 3)
	}
	return k
}

func firstPrimes(n int) []int {
	var out []int
	for c := 2; len(out) < n; c++ {
		prime := true
		for d := 2; d*d <= c; d++ {
			if c%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			out = append(out, c)
		}
	}
	return out
}

// fracRootBits returns the first 32 fractional bits of p^(1/root).
func fracRootBits(p, root int) uint64 { return fracRootFrac(p, root, 32) }

// fracRootFrac returns the first `bits` fractional bits of p^(1/root).
func fracRootFrac(p, root, bits int) uint64 {
	const prec = 192
	x := new(big.Float).SetPrec(prec).SetInt64(int64(p))
	// Newton iteration for the root-th root: y ← y − (y^r − x)/(r·y^(r−1)).
	y := new(big.Float).SetPrec(prec).SetFloat64(math.Pow(float64(p), 1/float64(root)))
	r := new(big.Float).SetPrec(prec).SetInt64(int64(root))
	for iter := 0; iter < 64; iter++ {
		yr1 := new(big.Float).SetPrec(prec).SetInt64(1) // y^(r−1)
		for j := 0; j < root-1; j++ {
			yr1.Mul(yr1, y)
		}
		yr := new(big.Float).SetPrec(prec).Mul(yr1, y) // y^r
		num := new(big.Float).SetPrec(prec).Sub(yr, x)
		den := new(big.Float).SetPrec(prec).Mul(r, yr1)
		delta := new(big.Float).SetPrec(prec).Quo(num, den)
		y.Sub(y, delta)
	}
	// frac(y) · 2^bits, truncated.
	intPart, _ := y.Int(nil)
	frac := new(big.Float).SetPrec(prec).Sub(y, new(big.Float).SetPrec(prec).SetInt(intPart))
	scale := new(big.Float).SetPrec(prec).SetInt64(1)
	for i := 0; i < bits; i++ {
		scale.Mul(scale, big.NewFloat(2))
	}
	frac.Mul(frac, scale)
	out, _ := frac.Int(nil)
	return out.Uint64()
}

// SHA256Round builds a single SHA-256 compression round: the eight working
// variables a..h and one message-schedule word enter as primary inputs, the
// first round constant K[0] is baked in, and the updated variables come out.
// One round isolates the Ch/Maj/Σ structure whose multiplicative depth is
// dominated by the T1 and T2 carry chains, which makes it the natural
// depth-optimization benchmark next to the pure adders.
func SHA256Round() *xag.Network {
	b := builder.New()
	vars := make([]builder.Bus, 8)
	for i := range vars {
		vars[i] = b.Input("v"+string(rune('0'+i)), 32)
	}
	w := b.Input("w", 32)
	k0 := sha256K()[0]

	rotr := func(x builder.Bus, r int) builder.Bus { return b.RotateRightConst(x, r) }
	xor3 := func(x, y, z builder.Bus) builder.Bus { return b.XorBus(b.XorBus(x, y), z) }

	a, bb, c, d, e, f, g, hh := vars[0], vars[1], vars[2], vars[3], vars[4], vars[5], vars[6], vars[7]
	sig1 := xor3(rotr(e, 6), rotr(e, 11), rotr(e, 25))
	ch := chNaive(b, e, f, g)
	t1 := addW(b, hh, sig1, ch, b.Const(k0, 32), w)
	sig0 := xor3(rotr(a, 2), rotr(a, 13), rotr(a, 22))
	maj := majNaive(b, a, bb, c)
	t2 := addW(b, sig0, maj)
	hh, g, f, e, d, c, bb, a = g, f, e, addW(b, d, t1), c, bb, a, addW(b, t1, t2)

	for i, out := range []builder.Bus{a, bb, c, d, e, f, g, hh} {
		b.Output("v"+string(rune('0'+i)), out)
	}
	return b.Net
}

// SHA256Block builds the SHA-256 compression of one padded block with the
// standard IV (FIPS 180-4).
func SHA256Block() *xag.Network {
	b := builder.New()
	m := inputWords(b, 16)
	k := sha256K()

	rotr := func(x builder.Bus, r int) builder.Bus { return b.RotateRightConst(x, r) }
	shr := func(x builder.Bus, r int) builder.Bus { return b.ShiftRightConst(x, r) }
	xor3 := func(x, y, z builder.Bus) builder.Bus { return b.XorBus(b.XorBus(x, y), z) }

	w := make([]builder.Bus, 64)
	copy(w, m)
	for t := 16; t < 64; t++ {
		s0 := xor3(rotr(w[t-15], 7), rotr(w[t-15], 18), shr(w[t-15], 3))
		s1 := xor3(rotr(w[t-2], 17), rotr(w[t-2], 19), shr(w[t-2], 10))
		w[t] = addW(b, s1, w[t-7], s0, w[t-16])
	}

	iv := []uint64{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	h := make([]builder.Bus, 8)
	for i := range h {
		h[i] = b.Const(iv[i], 32)
	}
	a, bb, c, d, e, f, g, hh := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]

	for t := 0; t < 64; t++ {
		sig1 := xor3(rotr(e, 6), rotr(e, 11), rotr(e, 25))
		ch := chNaive(b, e, f, g)
		t1 := addW(b, hh, sig1, ch, b.Const(k[t], 32), w[t])
		sig0 := xor3(rotr(a, 2), rotr(a, 13), rotr(a, 22))
		maj := majNaive(b, a, bb, c)
		t2 := addW(b, sig0, maj)
		hh, g, f, e, d, c, bb, a = g, f, e, addW(b, d, t1), c, bb, a, addW(b, t1, t2)
	}

	cur := []builder.Bus{a, bb, c, d, e, f, g, hh}
	for i := range h {
		b.Output("h"+string(rune('0'+i)), addW(b, h[i], cur[i]))
	}
	return b.Net
}
