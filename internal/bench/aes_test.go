package bench

import (
	"crypto/aes"
	"math/rand"
	"testing"

	"repro/internal/builder"
)

func TestSBoxKnownValues(t *testing.T) {
	p := towerSetup()
	known := map[int]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}
	for in, want := range known {
		if p.sbox[in] != want {
			t.Fatalf("sbox[%02x] = %02x, want %02x", in, p.sbox[in], want)
		}
	}
}

func TestSBoxCircuitExhaustive(t *testing.T) {
	p := towerSetup()
	b := builder.New()
	in := b.Input("in", 8)
	b.Output("out", SBox(b, byteBus(in)))
	if got := b.Net.NumAnds(); got != 36 {
		t.Fatalf("S-box circuit has %d ANDs, want 36", got)
	}
	for base := 0; base < 256; base += 64 {
		vecs := make([]map[string]uint64, 64)
		for k := range vecs {
			vecs[k] = map[string]uint64{"in": uint64(base + k)}
		}
		out := b.Net.Simulate(b.Pack(vecs))
		for k := range vecs {
			got := b.Unpack(out, "out", k)
			if got != uint64(p.sbox[base+k]) {
				t.Fatalf("sbox circuit(%02x) = %02x, want %02x", base+k, got, p.sbox[base+k])
			}
		}
	}
}

// packAES packs byte arrays into the circuit's bit layout (byte j at bits
// 8j..8j+7, LSB first).
func packAES(dst []uint64, start int, data []byte, vec int) {
	for j, by := range data {
		for i := 0; i < 8; i++ {
			if by>>uint(i)&1 == 1 {
				dst[start+8*j+i] |= 1 << uint(vec)
			}
		}
	}
}

func unpackAES(src []uint64, start, n, vec int) []byte {
	out := make([]byte, n)
	for j := range out {
		for i := 0; i < 8; i++ {
			if src[start+8*j+i]>>uint(vec)&1 == 1 {
				out[j] |= 1 << uint(i)
			}
		}
	}
	return out
}

func TestAES128MatchesStdlib(t *testing.T) {
	net := AES128(false)
	if net.NumPIs() != 256 {
		t.Fatalf("AES (no key expansion) has %d PIs, want 256", net.NumPIs())
	}
	rng := rand.New(rand.NewSource(201))
	const vectors = 16
	in := make([]uint64, net.NumPIs())
	var pts, keys [vectors][16]byte
	for v := 0; v < vectors; v++ {
		rng.Read(pts[v][:])
		rng.Read(keys[v][:])
		packAES(in, 0, pts[v][:], v)
		packAES(in, 128, keys[v][:], v)
	}
	out := net.Simulate(in)
	for v := 0; v < vectors; v++ {
		got := unpackAES(out, 0, 16, v)
		c, err := aes.NewCipher(keys[v][:])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		c.Encrypt(want, pts[v][:])
		if string(got) != string(want) {
			t.Fatalf("vector %d: ct = %x, want %x", v, got, want)
		}
	}
}

// softExpandKey mirrors the AES-128 key schedule using the software S-box.
func softExpandKey(key [16]byte) [11][16]byte {
	p := towerSetup()
	rcon := aesRcon()
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		tmp := w[i-1]
		if i%4 == 0 {
			tmp = [4]byte{p.sbox[tmp[1]], p.sbox[tmp[2]], p.sbox[tmp[3]], p.sbox[tmp[0]]}
			tmp[0] ^= rcon[i/4]
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ tmp[j]
		}
	}
	var rks [11][16]byte
	for r := 0; r <= 10; r++ {
		for c := 0; c < 4; c++ {
			copy(rks[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return rks
}

func TestAES128ExpandedKeysMatchesStdlib(t *testing.T) {
	net := AES128(true)
	if net.NumPIs() != 128+11*128 {
		t.Fatalf("AES (expanded keys) has %d PIs, want 1536", net.NumPIs())
	}
	rng := rand.New(rand.NewSource(202))
	const vectors = 8
	in := make([]uint64, net.NumPIs())
	var pts, keys [vectors][16]byte
	for v := 0; v < vectors; v++ {
		rng.Read(pts[v][:])
		rng.Read(keys[v][:])
		packAES(in, 0, pts[v][:], v)
		rks := softExpandKey(keys[v])
		for r := 0; r <= 10; r++ {
			packAES(in, 128+128*r, rks[r][:], v)
		}
	}
	out := net.Simulate(in)
	for v := 0; v < vectors; v++ {
		got := unpackAES(out, 0, 16, v)
		c, err := aes.NewCipher(keys[v][:])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		c.Encrypt(want, pts[v][:])
		if string(got) != string(want) {
			t.Fatalf("vector %d: ct = %x, want %x", v, got, want)
		}
	}
}

func TestAESAndCounts(t *testing.T) {
	// 10 rounds × 16 S-boxes × 36 ANDs = 5760 with expanded keys;
	// the in-circuit key schedule adds 40 S-boxes (1440 more).
	if got := AES128(true).NumAnds(); got != 5760 {
		t.Fatalf("AES (expanded keys) = %d ANDs, want 5760", got)
	}
	if got := AES128(false).NumAnds(); got != 7200 {
		t.Fatalf("AES (no key expansion) = %d ANDs, want 7200", got)
	}
}
