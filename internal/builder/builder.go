// Package builder provides a word-level construction layer on top of XAGs:
// named multi-bit buses, ripple adders, subtractors, multipliers,
// comparators, shifters, rotators, mux trees, decoders and popcounts. The
// benchmark generators in internal/bench assemble the paper's circuits
// (EPFL suite, MPC/FHE suite) out of these primitives.
//
// Buses are little-endian: bus[0] is the least significant bit. Primary
// inputs and outputs declared through Input and Output are named "name[i]"
// so simulation harnesses can recover the word layout from the PI/PO names.
package builder

import (
	"fmt"

	"repro/internal/xag"
)

// Bus is a little-endian vector of literals (index 0 = LSB).
type Bus []xag.Lit

// Style selects the gate-level implementation of the arithmetic primitives.
type Style int

const (
	// StyleNaive uses textbook AND-OR logic: the 3-AND full adder
	// (carry = ab + c(a⊕b) with OR via De Morgan) and the 3-AND mux. This
	// mirrors the un-optimized netlists of the EPFL benchmarks, leaving the
	// MC headroom the optimizer is supposed to find.
	StyleNaive Style = iota
)

type span struct{ start, width int }

// B accumulates a network under construction.
type B struct {
	Net *xag.Network

	inputs  map[string]span // input bus name → PI index range
	outputs map[string]span // output bus name → PO index range
}

// New returns a builder over a fresh network.
func New() *B {
	return &B{
		Net:     xag.New(),
		inputs:  make(map[string]span),
		outputs: make(map[string]span),
	}
}

// Input declares a w-bit input bus; bit i becomes the PI "name[i]".
func (b *B) Input(name string, w int) Bus {
	if _, dup := b.inputs[name]; dup {
		panic("builder: duplicate input bus " + name)
	}
	b.inputs[name] = span{start: b.Net.NumPIs(), width: w}
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = b.Net.AddPI(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Output declares bus as a named output; bit i becomes the PO "name[i]".
func (b *B) Output(name string, bus Bus) {
	if _, dup := b.outputs[name]; dup {
		panic("builder: duplicate output bus " + name)
	}
	b.outputs[name] = span{start: b.Net.NumPOs(), width: len(bus)}
	for i, l := range bus {
		b.Net.AddPO(l, fmt.Sprintf("%s[%d]", name, i))
	}
}

// Const returns the w-bit constant bus for v (truncated to w bits).
func (b *B) Const(v uint64, w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = xag.Const0
		if v>>uint(i)&1 == 1 {
			bus[i] = xag.Const1
		}
	}
	return bus
}

// Pack converts per-vector input assignments (bus name → value) into the
// bit-parallel word layout of Net.Simulate: up to 64 vectors, one bit lane
// per vector.
func (b *B) Pack(vecs []map[string]uint64) []uint64 {
	in := make([]uint64, b.Net.NumPIs())
	for k, vec := range vecs {
		for name, val := range vec {
			sp, ok := b.inputs[name]
			if !ok {
				panic("builder: Pack: unknown input bus " + name)
			}
			for i := 0; i < sp.width; i++ {
				if val>>uint(i)&1 == 1 {
					in[sp.start+i] |= 1 << uint(k)
				}
			}
		}
	}
	return in
}

// Unpack extracts the value of output bus name for vector lane vec from a
// Net.Simulate result.
func (b *B) Unpack(out []uint64, name string, vec int) uint64 {
	sp, ok := b.outputs[name]
	if !ok {
		panic("builder: Unpack: unknown output bus " + name)
	}
	var v uint64
	for i := 0; i < sp.width; i++ {
		if out[sp.start+i]>>uint(vec)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

func sameWidth(op string, x, y Bus) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("builder: %s: width mismatch %d vs %d", op, len(x), len(y)))
	}
}

// XorBus returns the bitwise XOR of two equal-width buses.
func (b *B) XorBus(x, y Bus) Bus {
	sameWidth("XorBus", x, y)
	out := make(Bus, len(x))
	for i := range out {
		out[i] = b.Net.Xor(x[i], y[i])
	}
	return out
}

// AndBus returns the bitwise AND of two equal-width buses.
func (b *B) AndBus(x, y Bus) Bus {
	sameWidth("AndBus", x, y)
	out := make(Bus, len(x))
	for i := range out {
		out[i] = b.Net.And(x[i], y[i])
	}
	return out
}

// EqBus returns a single literal that is 1 iff the two buses are equal.
func (b *B) EqBus(x, y Bus) xag.Lit {
	sameWidth("EqBus", x, y)
	out := xag.Const1
	for i := range x {
		out = b.Net.And(out, b.Net.Xor(x[i], y[i]).Not())
	}
	return out
}

// MuxNaive returns s ? t : e built from AND-OR logic (3 AND gates), the
// textbook mux of the EPFL netlists.
func (b *B) MuxNaive(s, t, e xag.Lit) xag.Lit {
	return b.Net.Or(b.Net.And(s, t), b.Net.And(s.Not(), e))
}

// MuxBusNaive muxes two equal-width buses bitwise with MuxNaive.
func (b *B) MuxBusNaive(s xag.Lit, t, e Bus) Bus {
	sameWidth("MuxBusNaive", t, e)
	out := make(Bus, len(t))
	for i := range out {
		out[i] = b.MuxNaive(s, t[i], e[i])
	}
	return out
}

// fullAdder returns (sum, carry) of a+b+c in the given style.
func (b *B) fullAdder(a, c, cin xag.Lit, style Style) (xag.Lit, xag.Lit) {
	_ = style // only StyleNaive for now
	axc := b.Net.Xor(a, c)
	sum := b.Net.Xor(axc, cin)
	carry := b.Net.Or(b.Net.And(a, c), b.Net.And(cin, axc))
	return sum, carry
}

// Add returns the w-bit sum and the carry-out of two equal-width buses
// (ripple-carry).
func (b *B) Add(x, y Bus, style Style) (Bus, xag.Lit) {
	sameWidth("Add", x, y)
	sum := make(Bus, len(x))
	carry := xag.Const0
	for i := range x {
		sum[i], carry = b.fullAdder(x[i], y[i], carry, style)
	}
	return sum, carry
}

// AddMod returns the w-bit sum modulo 2^w.
func (b *B) AddMod(x, y Bus, style Style) Bus {
	sum, _ := b.Add(x, y, style)
	return sum
}

// Sub returns x−y (two's complement, width w) and the no-borrow flag, which
// is 1 iff x ≥ y (the carry-out of x + ¬y + 1).
func (b *B) Sub(x, y Bus, style Style) (Bus, xag.Lit) {
	sameWidth("Sub", x, y)
	diff := make(Bus, len(x))
	carry := xag.Const1
	for i := range x {
		diff[i], carry = b.fullAdder(x[i], y[i].Not(), carry, style)
	}
	return diff, carry
}

// SubConst returns the constant c minus the bus, modulo 2^w.
func (b *B) SubConst(c uint64, x Bus) Bus {
	diff, _ := b.Sub(b.Const(c, len(x)), x, StyleNaive)
	return diff
}

// Neg returns the two's-complement negation of x.
func (b *B) Neg(x Bus, style Style) Bus {
	diff, _ := b.Sub(b.Const(0, len(x)), x, style)
	return diff
}

// Mul returns the full len(x)+len(y)-bit product (shift-and-add schoolbook
// multiplier).
func (b *B) Mul(x, y Bus, style Style) Bus {
	w := len(x) + len(y)
	acc := b.Const(0, w)
	for j, yb := range y {
		partial := b.Const(0, w)
		for i, xb := range x {
			partial[i+j] = b.Net.And(xb, yb)
		}
		acc = b.AddMod(acc, partial, style)
	}
	return acc
}

// LtU returns 1 iff x < y (unsigned).
func (b *B) LtU(x, y Bus, style Style) xag.Lit {
	_, noBorrow := b.Sub(x, y, style)
	return noBorrow.Not()
}

// LeU returns 1 iff x ≤ y (unsigned).
func (b *B) LeU(x, y Bus, style Style) xag.Lit {
	_, noBorrow := b.Sub(y, x, style)
	return noBorrow
}

// toUnsignedOrder flips the sign bit, mapping signed order onto unsigned.
func toUnsignedOrder(x Bus) Bus {
	out := append(Bus{}, x...)
	out[len(out)-1] = out[len(out)-1].Not()
	return out
}

// LtS returns 1 iff x < y as two's-complement signed values.
func (b *B) LtS(x, y Bus, style Style) xag.Lit {
	return b.LtU(toUnsignedOrder(x), toUnsignedOrder(y), style)
}

// LeS returns 1 iff x ≤ y as two's-complement signed values.
func (b *B) LeS(x, y Bus, style Style) xag.Lit {
	return b.LeU(toUnsignedOrder(x), toUnsignedOrder(y), style)
}

func normRot(k, w int) int {
	k %= w
	if k < 0 {
		k += w
	}
	return k
}

// RotateLeftConst rotates the bus left (toward the MSB) by k positions:
// out[i] = x[(i−k) mod w], matching bits.RotateLeft on the packed value.
func (b *B) RotateLeftConst(x Bus, k int) Bus {
	w := len(x)
	k = normRot(k, w)
	return append(append(Bus{}, x[w-k:]...), x[:w-k]...)
}

// RotateRightConst rotates the bus right by k positions.
func (b *B) RotateRightConst(x Bus, k int) Bus {
	return b.RotateLeftConst(x, len(x)-normRot(k, len(x)))
}

// ShiftRightConst shifts right by k, filling with zeros.
func (b *B) ShiftRightConst(x Bus, k int) Bus {
	return b.shiftRight(x, k, xag.Const0)
}

// ShiftRightArith shifts right by k, filling with the sign bit.
func (b *B) ShiftRightArith(x Bus, k int) Bus {
	return b.shiftRight(x, k, x[len(x)-1])
}

func (b *B) shiftRight(x Bus, k int, fill xag.Lit) Bus {
	out := make(Bus, len(x))
	for i := range out {
		if i+k < len(x) {
			out[i] = x[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// shiftLeftConst shifts left by k, filling with zeros.
func (b *B) shiftLeftConst(x Bus, k int) Bus {
	out := make(Bus, len(x))
	for i := range out {
		if i-k >= 0 {
			out[i] = x[i-k]
		} else {
			out[i] = xag.Const0
		}
	}
	return out
}

// Barrel shifts x by the variable amount amt (staged naive muxes): left with
// zero fill when right is false, else right with zero (arith false) or sign
// (arith true) fill.
func (b *B) Barrel(x Bus, amt Bus, right, arith bool) Bus {
	cur := append(Bus{}, x...)
	for s, bit := range amt {
		sh := 1 << uint(s)
		var shifted Bus
		switch {
		case !right:
			shifted = b.shiftLeftConst(cur, sh)
		case arith:
			shifted = b.ShiftRightArith(cur, sh)
		default:
			shifted = b.ShiftRightConst(cur, sh)
		}
		cur = b.MuxBusNaive(bit, shifted, cur)
	}
	return cur
}

// Decoder returns the 2^w one-hot decode of sel: line j is 1 iff sel == j.
func (b *B) Decoder(sel Bus) []xag.Lit {
	lines := []xag.Lit{xag.Const1}
	for _, s := range sel {
		next := make([]xag.Lit, 2*len(lines))
		for j, l := range lines {
			next[j] = b.Net.And(l, s.Not())
			next[j+len(lines)] = b.Net.And(l, s)
		}
		lines = next
	}
	return lines
}

// PriorityEncoder returns the index of the lowest set bit of req and a valid
// flag (0 when req is all-zero). The index bus is ⌈log2(w)⌉ bits wide.
func (b *B) PriorityEncoder(req Bus) (Bus, xag.Lit) {
	w := len(req)
	logw := 1
	for 1<<uint(logw) < w {
		logw++
	}
	grants := make([]xag.Lit, w)
	taken := xag.Const0
	for i, r := range req {
		grants[i] = b.Net.And(r, taken.Not())
		taken = b.Net.Or(taken, r)
	}
	idx := make(Bus, logw)
	for bit := range idx {
		acc := xag.Const0
		for i, g := range grants {
			if i>>uint(bit)&1 == 1 {
				acc = b.Net.Or(acc, g)
			}
		}
		idx[bit] = acc
	}
	return idx, taken
}

// Popcount returns the number of set bits of in as a bus (pairwise adder
// tree).
func (b *B) Popcount(in Bus, style Style) Bus {
	if len(in) == 0 {
		return Bus{xag.Const0}
	}
	level := make([]Bus, len(in))
	for i, bit := range in {
		level[i] = Bus{bit}
	}
	for len(level) > 1 {
		var next []Bus
		for i := 0; i+1 < len(level); i += 2 {
			x, y := level[i], level[i+1]
			w := len(x)
			if len(y) > w {
				w = len(y)
			}
			sum, carry := b.Add(b.zext(x, w), b.zext(y, w), style)
			next = append(next, append(sum, carry))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// zext zero-extends a bus to width w.
func (b *B) zext(x Bus, w int) Bus {
	out := append(Bus{}, x...)
	for len(out) < w {
		out = append(out, xag.Const0)
	}
	return out
}
