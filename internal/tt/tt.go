// Package tt implements truth tables for Boolean functions of up to six
// variables, stored in a single uint64.
//
// The minterm convention is the usual one: bit m of the table (for
// 0 ≤ m < 2^n) holds f(x) where the i-th input variable x_i takes the value
// of bit i of m. For n < 6 only the low 2^n bits are significant; all
// operations keep the unused high bits at zero so that tables compare equal
// with ==.
package tt

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxVars is the largest number of variables a T can represent.
const MaxVars = 6

// T is a truth table over N variables (0 ≤ N ≤ 6).
type T struct {
	Bits uint64
	N    int
}

// varMasks[i] is the truth table of the projection x_i over six variables.
var varMasks = [MaxVars]uint64{
	0xaaaaaaaaaaaaaaaa,
	0xcccccccccccccccc,
	0xf0f0f0f0f0f0f0f0,
	0xff00ff00ff00ff00,
	0xffff0000ffff0000,
	0xffffffff00000000,
}

// Mask returns the bit mask covering the 2^n significant bits of an n-variable
// table.
func Mask(n int) uint64 {
	if n >= MaxVars {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// New returns an n-variable table with the given bits, masked to the
// significant region.
func New(bits uint64, n int) T {
	checkN(n)
	return T{Bits: bits & Mask(n), N: n}
}

func checkN(n int) {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("tt: invalid variable count %d", n))
	}
}

// Const0 returns the n-variable constant-false table.
func Const0(n int) T { checkN(n); return T{0, n} }

// Const1 returns the n-variable constant-true table.
func Const1(n int) T { checkN(n); return T{Mask(n), n} }

// Var returns the projection table of variable i over n variables.
func Var(i, n int) T {
	checkN(n)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tt: variable %d out of range for %d variables", i, n))
	}
	return T{varMasks[i] & Mask(n), n}
}

// Size returns the number of minterms, 2^N.
func (t T) Size() int { return 1 << uint(t.N) }

// Get returns the value of the function on minterm m.
func (t T) Get(m int) bool { return t.Bits>>(uint(m))&1 == 1 }

// Set returns a copy of t with minterm m set to v.
func (t T) Set(m int, v bool) T {
	if v {
		t.Bits |= 1 << uint(m)
	} else {
		t.Bits &^= 1 << uint(m)
	}
	return t
}

// Not returns the complement of t.
func (t T) Not() T { return T{^t.Bits & Mask(t.N), t.N} }

// And returns t ∧ u. The tables must have the same variable count.
func (t T) And(u T) T { t.check(u); return T{t.Bits & u.Bits, t.N} }

// Or returns t ∨ u.
func (t T) Or(u T) T { t.check(u); return T{t.Bits | u.Bits, t.N} }

// Xor returns t ⊕ u.
func (t T) Xor(u T) T { t.check(u); return T{t.Bits ^ u.Bits, t.N} }

func (t T) check(u T) {
	if t.N != u.N {
		panic(fmt.Sprintf("tt: mixing %d- and %d-variable tables", t.N, u.N))
	}
}

// IsConst0 reports whether t is the constant-false function.
func (t T) IsConst0() bool { return t.Bits == 0 }

// IsConst1 reports whether t is the constant-true function.
func (t T) IsConst1() bool { return t.Bits == Mask(t.N) }

// CountOnes returns the number of satisfying minterms.
func (t T) CountOnes() int { return bits.OnesCount64(t.Bits) }

// Cofactor returns the cofactor of t with variable i fixed to v. The result
// no longer depends on x_i but keeps the same variable count.
func (t T) Cofactor(i int, v bool) T {
	m := varMasks[i]
	var half uint64
	if v {
		half = t.Bits & m
		half |= half >> (1 << uint(i))
	} else {
		half = t.Bits &^ m
		half |= half << (1 << uint(i))
	}
	return T{half & Mask(t.N), t.N}
}

// DependsOn reports whether the function depends on variable i.
func (t T) DependsOn(i int) bool {
	m := varMasks[i]
	return (t.Bits&m)>>(1<<uint(i)) != t.Bits&^m
}

// SupportMask returns a bit mask of the variables the function depends on.
func (t T) SupportMask() uint {
	var s uint
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			s |= 1 << uint(i)
		}
	}
	return s
}

// SupportSize returns the number of variables the function depends on.
func (t T) SupportSize() int { return bits.OnesCount(t.SupportMask()) }

// Shrink removes don't-care variables, compacting the support to the low
// variable indices. It returns the shrunk table and, for each new variable
// index, the original variable it came from.
func (t T) Shrink() (T, []int) {
	var fromOrig []int
	cur := t
	for i := 0; i < cur.N; i++ {
		if cur.DependsOn(i) {
			fromOrig = append(fromOrig, i)
		}
	}
	if len(fromOrig) == t.N {
		return t, fromOrig
	}
	// Move the supporting variables down to positions 0..k-1 in order.
	for newPos, origPos := range fromOrig {
		for p := origPos; p > newPos; p-- {
			cur = cur.SwapAdjacent(p - 1)
		}
		// Shifting a variable down displaces the ones between newPos and
		// origPos up by one; later entries of fromOrig are unaffected in
		// value because they are strictly larger than origPos.
	}
	res := T{cur.Bits & Mask(len(fromOrig)), len(fromOrig)}
	return res, fromOrig
}

// SwapAdjacent returns the table with variables i and i+1 exchanged.
func (t T) SwapAdjacent(i int) T {
	if i < 0 || i+1 >= MaxVars {
		panic("tt: SwapAdjacent out of range")
	}
	lo, hi := varMasks[i], varMasks[i+1]
	keep := t.Bits &^ (lo ^ hi) // minterms where bits i and i+1 agree
	up := t.Bits & lo &^ hi     // x_i=1, x_{i+1}=0: move up
	dn := t.Bits & hi &^ lo     // x_i=0, x_{i+1}=1: move down
	sh := uint(1 << uint(i))    // distance between the two minterm groups
	return T{keep | up<<sh | dn>>sh, t.N}
}

// SwapVars returns the table with variables i and j exchanged.
func (t T) SwapVars(i, j int) T {
	if i == j {
		return t
	}
	if i > j {
		i, j = j, i
	}
	cur := t
	for p := i; p < j; p++ {
		cur = cur.SwapAdjacent(p)
	}
	for p := j - 2; p >= i; p-- {
		cur = cur.SwapAdjacent(p)
	}
	return cur
}

// FlipVar returns g(x) = f(x_0, …, ¬x_i, …).
func (t T) FlipVar(i int) T {
	m := varMasks[i] & Mask(t.N)
	sh := uint(1 << uint(i))
	return T{(t.Bits&m)>>sh | (t.Bits&^m)<<sh&Mask(t.N), t.N}
}

// TranslateVar returns g(x) = f(x with x_i replaced by x_i ⊕ x_j), the
// "translational" affine operation. i and j must differ.
//
// Word-parallel: on the x_j = 1 half of the table the operation is exactly
// FlipVar(i), on the x_j = 0 half it is the identity, and because i ≠ j the
// flip's 2^i-bit shift never crosses an x_j boundary, so the two halves can
// be masked together directly.
func (t T) TranslateVar(i, j int) T {
	if i == j {
		panic("tt: TranslateVar requires distinct variables")
	}
	mj := varMasks[j]
	mi := varMasks[i]
	sh := uint(1) << uint(i)
	flipped := (t.Bits&mi)>>sh | (t.Bits&^mi)<<sh
	return T{(t.Bits&^mj | flipped&mj) & Mask(t.N), t.N}
}

// XorVar returns g(x) = f(x) ⊕ x_i, the "disjoint translational" operation.
func (t T) XorVar(i int) T { return t.Xor(Var(i, t.N)) }

// Permute returns the table of g(x) = f(y) where y_{p[i]} = x_i; that is,
// variable i of the result plays the role of variable p[i] of f. p must be a
// permutation of 0..n-1.
//
// Word-parallel: the permutation is realized as a sequence of at most n−1
// variable swaps (each a chain of word-parallel adjacent swaps) instead of an
// O(2ⁿ·n) per-minterm bit assembly.
func (t T) Permute(p []int) T {
	if len(p) != t.N {
		panic("tt: permutation length mismatch")
	}
	// pos[v] is the index where original variable v currently sits; at[i] is
	// the original variable currently sitting at index i.
	var pos, at [MaxVars]int
	for i := 0; i < t.N; i++ {
		pos[i], at[i] = i, i
	}
	out := t
	for i := 0; i < t.N; i++ {
		want := p[i] // the original variable that must end up at index i
		j := pos[want]
		if j == i {
			continue
		}
		out = out.SwapVars(i, j)
		other := at[i]
		at[i], at[j] = want, other
		pos[want], pos[other] = i, j
	}
	return out
}

// ApplyLinear returns g(x) = f(A·x ⊕ b) where A is given by columns: col[i]
// is the image of basis vector e_i, i.e. (A·x)_k = ⊕_i x_i·col[i]_k.
//
// Invertible maps — the only kind affine classification produces — are
// decomposed by Gaussian elimination into elementary column operations, each
// of which is a word-parallel swap or translation on the table; singular maps
// fall back to the per-minterm reference loop.
func (t T) ApplyLinear(col []uint, b uint) T {
	if len(col) != t.N {
		panic("tt: column count mismatch")
	}
	n := t.N
	var work [MaxVars]uint
	copy(work[:n], col)
	// Reduce A to the identity by right-multiplying elementary matrices:
	// A·F₁·…·F_m = I, so A = F_m·…·F₁ (each F is an involution over F₂) and
	// f∘A applies the recorded operations to f in reverse order.
	type elemOp struct {
		swap bool
		i, j int
	}
	var ops [MaxVars * (MaxVars + 1)]elemOp // ≤ n swaps + n·(n−1) translations
	nops := 0
	for p := 0; p < n; p++ {
		q := p
		for q < n && work[q]>>uint(p)&1 == 0 {
			q++
		}
		if q == n {
			return t.applyLinearGeneric(col, b) // singular map
		}
		if q != p {
			work[p], work[q] = work[q], work[p]
			ops[nops] = elemOp{swap: true, i: p, j: q}
			nops++
		}
		for k := 0; k < n; k++ {
			if k != p && work[k]>>uint(p)&1 == 1 {
				work[k] ^= work[p]
				// Column k ^= column p is right-multiplication by
				// I + e_p·e_kᵀ, i.e. x_p ← x_p ⊕ x_k on arguments.
				ops[nops] = elemOp{i: p, j: k}
				nops++
			}
		}
	}
	// g = (f ∘ ⊕b) ∘ A: translate by b first, then the linear part.
	out := t
	for i := 0; i < n; i++ {
		if b>>uint(i)&1 == 1 {
			out = out.FlipVar(i)
		}
	}
	for k := nops - 1; k >= 0; k-- {
		if ops[k].swap {
			out = out.SwapVars(ops[k].i, ops[k].j)
		} else {
			out = out.TranslateVar(ops[k].i, ops[k].j)
		}
	}
	return out
}

// applyLinearGeneric is the per-minterm reference implementation of
// ApplyLinear, used for singular maps (and by tests as the oracle).
func (t T) applyLinearGeneric(col []uint, b uint) T {
	var out uint64
	size := t.Size()
	for m := 0; m < size; m++ {
		src := b
		for i := 0; i < t.N; i++ {
			if m>>uint(i)&1 == 1 {
				src ^= col[i]
			}
		}
		out |= (t.Bits >> uint(src) & 1) << uint(m)
	}
	return T{out, t.N}
}

// Linear returns the truth table of the (pure) linear function
// x ↦ ⟨mask, x⟩ = ⊕_{i ∈ mask} x_i over n variables.
func Linear(mask uint, n int) T {
	checkN(n)
	out := Const0(n)
	for i := 0; i < n; i++ {
		if mask>>uint(i)&1 == 1 {
			out = out.Xor(Var(i, n))
		}
	}
	return out
}

// IsAffine reports whether t is an affine function, and if so returns the
// linear mask and constant such that t(x) = ⟨mask, x⟩ ⊕ c.
func (t T) IsAffine() (mask uint, c bool, ok bool) {
	c = t.Get(0)
	for i := 0; i < t.N; i++ {
		if t.Get(1<<uint(i)) != c {
			mask |= 1 << uint(i)
		}
	}
	cand := Linear(mask, t.N)
	if c {
		cand = cand.Not()
	}
	return mask, c, cand == t
}

// Extend returns the same function viewed over n ≥ t.N variables; the added
// variables are don't cares.
func (t T) Extend(n int) T {
	checkN(n)
	if n < t.N {
		panic("tt: Extend to fewer variables")
	}
	bitsV := t.Bits
	for i := t.N; i < n; i++ {
		bitsV |= bitsV << (1 << uint(i))
	}
	return T{bitsV & Mask(n), n}
}

// String renders the table as a hexadecimal literal of 2^N bits (at least one
// digit), e.g. the 3-variable majority is "e8".
func (t T) String() string {
	digits := t.Size() / 4
	if digits == 0 {
		digits = 1
	}
	s := strconv.FormatUint(t.Bits, 16)
	if len(s) < digits {
		s = strings.Repeat("0", digits-len(s)) + s
	}
	return s
}

// Parse parses a hexadecimal truth table literal over n variables.
func Parse(s string, n int) (T, error) {
	checkN(n)
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return T{}, fmt.Errorf("tt: parse %q: %v", s, err)
	}
	if v&^Mask(n) != 0 {
		return T{}, fmt.Errorf("tt: literal %q does not fit %d variables", s, n)
	}
	return T{v, n}, nil
}

// Eval evaluates the function on the assignment given by the bits of m.
func (t T) Eval(m uint) bool { return t.Bits>>uint(m)&1 == 1 }

// RemapExpand re-expresses an m-variable table over n ≥ m variables, feeding
// old variable i from new variable pos[i]. The pos entries must be distinct
// and < n.
func (t T) RemapExpand(pos []int, n int) T {
	checkN(n)
	if len(pos) != t.N {
		panic("tt: RemapExpand position count mismatch")
	}
	// Fast path for strictly increasing positions — the only shape cut
	// merging produces (leaf lists are sorted and merged cuts are sorted
	// supersets). Lift the table over n variables and float each variable up
	// to its target with word-parallel adjacent swaps, highest first, so
	// every move crosses only don't-care variables: O(n²) shifts instead of
	// O(2ⁿ·m) per-minterm bit assembly.
	if increasingBelow(pos, n) {
		out := t.Extend(n)
		for i := len(pos) - 1; i >= 0; i-- {
			for p := i; p < pos[i]; p++ {
				out = out.SwapAdjacent(p)
			}
		}
		return out
	}
	var out uint64
	size := 1 << uint(n)
	for m := 0; m < size; m++ {
		src := 0
		for i, p := range pos {
			src |= m >> uint(p) & 1 << uint(i)
		}
		out |= t.Bits >> uint(src) & 1 << uint(m)
	}
	return T{out, n}
}

// increasingBelow reports whether pos is strictly increasing with all
// entries in [0, n) — the precondition of RemapExpand's swap-chain path.
func increasingBelow(pos []int, n int) bool {
	prev := -1
	for _, p := range pos {
		if p <= prev || p >= n {
			return false
		}
		prev = p
	}
	return true
}

// ANF returns the algebraic normal form of t as a bit vector: bit m is set
// iff the monomial ∏_{i ∈ m} x_i appears in the polynomial (Möbius
// transform).
func (t T) ANF() uint64 {
	a := t.Bits
	for i := 0; i < t.N; i++ {
		a ^= (a &^ varMasks[i]) << (1 << uint(i))
	}
	return a & Mask(t.N)
}

// Degree returns the algebraic degree of t: the largest number of variables
// in any monomial of its ANF. The constant-zero function has degree 0.
func (t T) Degree() int {
	a := t.ANF()
	deg := 0
	for m := 0; a != 0; a >>= 1 {
		if a&1 == 1 && bits.OnesCount(uint(m)) > deg {
			deg = bits.OnesCount(uint(m))
		}
		m++
	}
	return deg
}
