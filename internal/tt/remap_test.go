package tt

import (
	"math/rand"
	"testing"
)

// remapExpandRef is the original per-minterm implementation of RemapExpand,
// kept as the oracle for the word-parallel swap-chain fast path.
func remapExpandRef(t T, pos []int, n int) T {
	var out uint64
	size := 1 << uint(n)
	for m := 0; m < size; m++ {
		src := 0
		for i, p := range pos {
			src |= m >> uint(p) & 1 << uint(i)
		}
		out |= t.Bits >> uint(src) & 1 << uint(m)
	}
	return T{out, n}
}

// increasingPositions enumerates all strictly increasing k-subsets of 0..n-1.
func increasingPositions(k, n int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for p := start; p < n; p++ {
			rec(p+1, append(cur, p))
		}
	}
	rec(0, nil)
	return out
}

func TestRemapExpandMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= MaxVars; n++ {
		for k := 0; k <= n; k++ {
			for _, pos := range increasingPositions(k, n) {
				for trial := 0; trial < 8; trial++ {
					tab := New(rng.Uint64(), k)
					got := tab.RemapExpand(pos, n)
					want := remapExpandRef(tab, pos, n)
					if got != want {
						t.Fatalf("RemapExpand(%v, pos=%v, n=%d) = %v, want %v",
							tab, pos, n, got, want)
					}
				}
			}
		}
	}
}

// Non-increasing positions must keep working through the generic path.
func TestRemapExpandPermutedPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(MaxVars-1)
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:k]
		tab := New(rng.Uint64(), k)
		got := tab.RemapExpand(perm, n)
		want := remapExpandRef(tab, perm, n)
		if got != want {
			t.Fatalf("RemapExpand(%v, pos=%v, n=%d) = %v, want %v", tab, perm, n, got, want)
		}
	}
}

func TestRemapExpandAllocs(t *testing.T) {
	tab := New(0xe8, 3)
	pos := []int{1, 3, 5}
	allocs := testing.AllocsPerRun(100, func() {
		_ = tab.RemapExpand(pos, 6)
	})
	if allocs != 0 {
		t.Fatalf("RemapExpand allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkRemapExpandIncreasing(b *testing.B) {
	tab := New(0x6996, 4)
	pos := []int{0, 2, 3, 5}
	for i := 0; i < b.N; i++ {
		_ = tab.RemapExpand(pos, 6)
	}
}
