package tt

import "math/bits"

// Semi-canonical form under input permutation, input complementation, and
// output complementation — the cheap subgroup of the affine group that the
// permuted/complemented cut-function variants produced by arithmetic networks
// live in. Classifying one representative per semi-canonical class and
// replaying the recorded renaming is how the two-level classification cache
// in mcdb turns those variants into cache hits without re-running the
// spectral search.
//
// The normal form is defined by three properties of the result c:
//
//	(1) c has at most 2^(n-1) ones (output polarity),
//	(2) for every variable, |c_{x_i=0}| ≤ |c_{x_i=1}| (input polarity),
//	(3) the per-variable keys |c_{x_i=0}| are ascending in i (variable order),
//
// with every tie explored and the numerically smallest truth table among the
// admissible images chosen. The admissible set — all permuted/complemented
// images of t satisfying (1)–(3) — depends only on t's orbit under the
// subgroup, so the minimum (the semi-canonical form) is orbit-invariant by
// construction: SemiCanonical(Q(t)) == SemiCanonical(t) for any input
// permutation/complementation Q. Functions whose ties would make the
// admissible set larger than semiCanonMaxCands are rejected (ok=false); the
// tie structure is itself orbit-invariant, so rejection is too.

// semiCanonMaxCands bounds the tie enumeration. Highly symmetric functions
// (every variable interchangeable, balanced everywhere) exceed it and fall
// back to direct classification; typical cut functions have one or two
// admissible images.
const semiCanonMaxCands = 64

// SemiCanonical returns the semi-canonical form of t together with the
// renaming that produced it:
//
//	canon(x) = t(σ(x) ⊕ a) ⊕ d,  σ(x)_{perm[i]} = x_i,
//
// where a is inCompl and d is outCompl — equivalently, canon is obtained by
// complementing the output (outCompl), complementing the inputs in inCompl,
// and then moving variable perm[i] to position i. ok is false when the tie
// enumeration would exceed semiCanonMaxCands; the decision is invariant
// across the orbit.
func (t T) SemiCanonical() (canon T, perm [MaxVars]int, inCompl uint, outCompl bool, ok bool) {
	n := t.N
	size := t.Size()

	// (1) Output polarity: at most half the minterms set, both on a tie.
	ones := t.CountOnes()
	var pols []bool
	switch {
	case 2*ones > size:
		pols = []bool{true}
	case 2*ones < size:
		pols = []bool{false}
	default:
		pols = []bool{false, true}
	}

	best := T{}
	haveBest := false
	var bestPerm [MaxVars]int
	var bestIn uint
	var bestOut bool

	for _, d := range pols {
		g := t
		if d {
			g = g.Not()
		}

		// (2) Input polarity per variable: flip so the x_i=0 cofactor has no
		// more ones than the x_i=1 cofactor; ties keep both choices.
		// flipFixed is the forced choice, tieMask the ambiguous variables.
		var flipFixed, tieMask uint
		var key [MaxVars]int
		for i := 0; i < n; i++ {
			c0 := g.Cofactor(i, false).CountOnes()
			c1 := g.Cofactor(i, true).CountOnes()
			switch {
			case c1 < c0:
				flipFixed |= 1 << uint(i)
				key[i] = c1
			case c0 < c1:
				key[i] = c0
			default:
				if g.DependsOn(i) {
					tieMask |= 1 << uint(i)
				}
				key[i] = c0
			}
		}

		// (3) Variable order: ascending key; equal-key groups contribute all
		// their orderings.
		order := make([]int, n)
		for i := range order[:n] {
			order[i] = i
		}
		for i := 1; i < n; i++ { // insertion sort by (key, index): deterministic base order
			for j := i; j > 0 && key[order[j]] < key[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}

		// Candidate count check before enumerating.
		cands := 1 << uint(bits.OnesCount(tieMask))
		for s := 0; s < n; {
			e := s + 1
			for e < n && key[order[e]] == key[order[s]] {
				e++
			}
			for k := 2; k <= e-s; k++ {
				cands *= k
			}
			if cands > semiCanonMaxCands {
				return T{}, perm, 0, false, false
			}
			s = e
		}
		if len(pols)*cands > semiCanonMaxCands {
			return T{}, perm, 0, false, false
		}

		// Enumerate flip combinations over the tied variables.
		tieVars := make([]int, 0, MaxVars)
		for i := 0; i < n; i++ {
			if tieMask>>uint(i)&1 == 1 {
				tieVars = append(tieVars, i)
			}
		}
		for fc := 0; fc < 1<<uint(len(tieVars)); fc++ {
			a := flipFixed
			for bi, v := range tieVars {
				if fc>>uint(bi)&1 == 1 {
					a |= 1 << uint(v)
				}
			}
			g2 := g
			for i := 0; i < n; i++ {
				if a>>uint(i)&1 == 1 {
					g2 = g2.FlipVar(i)
				}
			}
			// Enumerate orderings within equal-key groups.
			p := make([]int, n)
			copy(p, order)
			enumerateGroupOrders(p, key[:n], 0, func(p []int) {
				cand := g2.Permute(p)
				if !haveBest || cand.Bits < best.Bits {
					haveBest = true
					best = cand
					copy(bestPerm[:n], p)
					bestIn = a
					bestOut = d
				}
			})
		}
	}
	return best, bestPerm, bestIn, bestOut, true
}

// enumerateGroupOrders calls visit with every permutation of p that keeps the
// key sequence sorted: within each run of equal keys all orderings are
// generated, across runs the order is fixed. p is reused between calls;
// visit must not retain it.
func enumerateGroupOrders(p []int, key []int, start int, visit func([]int)) {
	n := len(p)
	if start >= n {
		visit(p)
		return
	}
	end := start + 1
	for end < n && key[p[end]] == key[p[start]] {
		end++
	}
	permuteRange(p, start, end, func() {
		enumerateGroupOrders(p, key, end, visit)
	})
}

// permuteRange generates all permutations of p[start:end] in place, restoring
// the original order before returning.
func permuteRange(p []int, start, end int, visit func()) {
	if end-start <= 1 {
		visit()
		return
	}
	for i := start; i < end; i++ {
		p[start], p[i] = p[i], p[start]
		permuteRange(p, start+1, end, visit)
		p[start], p[i] = p[i], p[start]
	}
}
