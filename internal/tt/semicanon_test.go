package tt

import (
	"math/rand"
	"testing"
)

// applyRenaming evaluates t(σ(x) ⊕ a) ⊕ d with σ(x)_{perm[i]} = x_i by brute
// force — the reference for what SemiCanonical's recorded renaming means.
func applyRenaming(t T, perm [MaxVars]int, inCompl uint, outCompl bool) T {
	out := Const0(t.N)
	for m := 0; m < t.Size(); m++ {
		var src uint
		for i := 0; i < t.N; i++ {
			if m>>uint(i)&1 == 1 {
				src |= 1 << uint(perm[i])
			}
		}
		v := t.Eval(src^inCompl) != outCompl
		if v {
			out.Bits |= 1 << uint(m)
		}
	}
	return out
}

// randomRenaming applies a random input permutation + input/output
// complementation to t.
func randomRenaming(rng *rand.Rand, t T) T {
	p := rng.Perm(t.N)
	out := t.Permute(p)
	for i := 0; i < t.N; i++ {
		if rng.Intn(2) == 1 {
			out = out.FlipVar(i)
		}
	}
	if rng.Intn(2) == 1 {
		out = out.Not()
	}
	return out
}

func TestSemiCanonicalReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= MaxVars; n++ {
		for trial := 0; trial < 200; trial++ {
			f := T{rng.Uint64() & Mask(n), n}
			canon, perm, inCompl, outCompl, ok := f.SemiCanonical()
			if !ok {
				continue
			}
			if got := applyRenaming(f, perm, inCompl, outCompl); got != canon {
				t.Fatalf("n=%d f=%#x: recorded renaming gives %#x, canon %#x",
					n, f.Bits, got.Bits, canon.Bits)
			}
			if 2*canon.CountOnes() > canon.Size() {
				t.Fatalf("n=%d f=%#x: canon %#x has majority ones", n, f.Bits, canon.Bits)
			}
		}
	}
}

func TestSemiCanonicalOrbitInvariantExhaustive(t *testing.T) {
	// For every 3-variable function, every renaming of it must map to the
	// same semi-canonical form (or be rejected alongside it).
	const n = 3
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for bits := uint64(0); bits < 1<<(1<<n); bits++ {
		f := T{bits, n}
		canon, _, _, _, ok := f.SemiCanonical()
		for _, p := range perms {
			for a := uint(0); a < 1<<n; a++ {
				for _, d := range []bool{false, true} {
					g := f.Permute(p)
					for i := 0; i < n; i++ {
						if a>>uint(i)&1 == 1 {
							g = g.FlipVar(i)
						}
					}
					if d {
						g = g.Not()
					}
					gc, _, _, _, gok := g.SemiCanonical()
					if gok != ok {
						t.Fatalf("f=%#x g=%#x: keyable %v vs %v", f.Bits, g.Bits, ok, gok)
					}
					if ok && gc != canon {
						t.Fatalf("f=%#x g=%#x: canon %#x vs %#x", f.Bits, g.Bits, canon.Bits, gc.Bits)
					}
				}
			}
		}
	}
}

func TestApplyLinearMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= MaxVars; n++ {
		for trial := 0; trial < 300; trial++ {
			f := T{rng.Uint64() & Mask(n), n}
			col := make([]uint, n)
			for i := range col {
				col[i] = uint(rng.Intn(1 << uint(n))) // singular maps included
			}
			b := uint(rng.Intn(1 << uint(n)))
			if got, want := f.ApplyLinear(col, b), f.applyLinearGeneric(col, b); got != want {
				t.Fatalf("n=%d f=%#x col=%v b=%#x: ApplyLinear %#x, generic %#x",
					n, f.Bits, col, b, got.Bits, want.Bits)
			}
		}
	}
}

func TestPermuteMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= MaxVars; n++ {
		for trial := 0; trial < 200; trial++ {
			f := T{rng.Uint64() & Mask(n), n}
			p := rng.Perm(n)
			want := Const0(n)
			for m := 0; m < f.Size(); m++ {
				var src uint
				for i := 0; i < n; i++ {
					if m>>uint(i)&1 == 1 {
						src |= 1 << uint(p[i])
					}
				}
				if f.Eval(src) {
					want.Bits |= 1 << uint(m)
				}
			}
			if got := f.Permute(p); got != want {
				t.Fatalf("n=%d f=%#x p=%v: Permute %#x, reference %#x",
					n, f.Bits, p, got.Bits, want.Bits)
			}
		}
	}
}

func FuzzSemiCanonical(f *testing.F) {
	f.Add(uint64(0xe8), uint8(3), int64(1))
	f.Add(uint64(0x6996), uint8(4), int64(2))
	f.Add(uint64(0x1ee1866996696ee8), uint8(6), int64(3))
	f.Fuzz(func(t *testing.T, bits uint64, nv uint8, seed int64) {
		n := int(nv % (MaxVars + 1))
		fn := T{bits & Mask(n), n}
		rng := rand.New(rand.NewSource(seed))
		canon, perm, inCompl, outCompl, ok := fn.SemiCanonical()
		if ok {
			if got := applyRenaming(fn, perm, inCompl, outCompl); got != canon {
				t.Fatalf("renaming mismatch: f=%#x canon=%#x got=%#x", fn.Bits, canon.Bits, got.Bits)
			}
		}
		g := randomRenaming(rng, fn)
		gc, _, _, _, gok := g.SemiCanonical()
		if gok != ok {
			t.Fatalf("keyability not orbit-invariant: f=%#x (%v) g=%#x (%v)", fn.Bits, ok, g.Bits, gok)
		}
		if ok && gc != canon {
			t.Fatalf("key not orbit-invariant: f=%#x→%#x g=%#x→%#x", fn.Bits, canon.Bits, g.Bits, gc.Bits)
		}
	})
}
