package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// eval recomputes t on minterm m bit by bit from an explicit evaluation of
// the expression the table is supposed to represent.
func evalMaj3(m int) bool {
	a, b, c := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
	cnt := 0
	for _, v := range []bool{a, b, c} {
		if v {
			cnt++
		}
	}
	return cnt >= 2
}

func TestVarProjections(t *testing.T) {
	for n := 1; n <= MaxVars; n++ {
		for i := 0; i < n; i++ {
			v := Var(i, n)
			for m := 0; m < 1<<uint(n); m++ {
				want := m>>uint(i)&1 == 1
				if v.Get(m) != want {
					t.Fatalf("Var(%d,%d).Get(%d) = %v, want %v", i, n, m, v.Get(m), want)
				}
			}
		}
	}
}

func TestMajorityTable(t *testing.T) {
	a, b, c := Var(0, 3), Var(1, 3), Var(2, 3)
	maj := a.And(b).Or(a.And(c)).Or(b.And(c))
	if maj.String() != "e8" {
		t.Fatalf("maj3 = %s, want e8", maj)
	}
	for m := 0; m < 8; m++ {
		if maj.Get(m) != evalMaj3(m) {
			t.Fatalf("maj3(%d) mismatch", m)
		}
	}
	// The XOR form x1x2 ⊕ x1x3 ⊕ x2x3 must agree.
	alt := a.And(b).Xor(a.And(c)).Xor(b.And(c))
	if alt != maj {
		t.Fatalf("xor form %s != or form %s", alt, maj)
	}
}

func TestConstAndNot(t *testing.T) {
	for n := 0; n <= MaxVars; n++ {
		if Const0(n).Not() != Const1(n) {
			t.Fatalf("n=%d: ¬0 != 1", n)
		}
		if !Const0(n).IsConst0() || !Const1(n).IsConst1() {
			t.Fatalf("n=%d: const predicates wrong", n)
		}
		if Const1(n).CountOnes() != 1<<uint(n) {
			t.Fatalf("n=%d: CountOnes(1) = %d", n, Const1(n).CountOnes())
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= MaxVars; n++ {
		for trial := 0; trial < 50; trial++ {
			f := New(rng.Uint64(), n)
			for i := 0; i < n; i++ {
				f0, f1 := f.Cofactor(i, false), f.Cofactor(i, true)
				if f0.DependsOn(i) || f1.DependsOn(i) {
					t.Fatalf("cofactor still depends on var %d", i)
				}
				xi := Var(i, n)
				re := xi.Not().And(f0).Or(xi.And(f1))
				if re != f {
					t.Fatalf("Shannon expansion failed: n=%d i=%d f=%s", n, i, f)
				}
			}
		}
	}
}

func TestDependsOnAndSupport(t *testing.T) {
	f := Var(0, 4).And(Var(2, 4)) // depends on x0, x2 only
	if got := f.SupportMask(); got != 0b0101 {
		t.Fatalf("support mask = %04b, want 0101", got)
	}
	if f.SupportSize() != 2 {
		t.Fatalf("support size = %d, want 2", f.SupportSize())
	}
}

func TestShrink(t *testing.T) {
	// x1 ∧ x3 over 5 variables shrinks to x0 ∧ x1 over 2 variables.
	f := Var(1, 5).And(Var(3, 5))
	g, from := f.Shrink()
	if g.N != 2 {
		t.Fatalf("shrunk N = %d, want 2", g.N)
	}
	if len(from) != 2 || from[0] != 1 || from[1] != 3 {
		t.Fatalf("from = %v, want [1 3]", from)
	}
	if g != Var(0, 2).And(Var(1, 2)) {
		t.Fatalf("shrunk table = %s, want 8", g)
	}
	// Shrinking must preserve values under the variable mapping.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := New(rng.Uint64(), n)
		g, from := f.Shrink()
		for m := 0; m < f.Size(); m++ {
			var gm uint
			for newI, origI := range from {
				gm |= uint(m) >> uint(origI) & 1 << uint(newI)
			}
			if g.Eval(gm) != f.Get(m) {
				t.Fatalf("shrink mismatch: f=%s n=%d m=%d from=%v", f, n, m, from)
			}
		}
	}
}

func TestSwapVars(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(MaxVars-1)
		f := New(rng.Uint64(), n)
		i, j := rng.Intn(n), rng.Intn(n)
		g := f.SwapVars(i, j)
		for m := 0; m < f.Size(); m++ {
			bi, bj := m>>uint(i)&1, m>>uint(j)&1
			src := m &^ (1<<uint(i) | 1<<uint(j))
			src |= bi<<uint(j) | bj<<uint(i)
			if g.Get(m) != f.Get(src) {
				t.Fatalf("swap(%d,%d) wrong at m=%d (n=%d, f=%s)", i, j, m, n, f)
			}
		}
		if g.SwapVars(i, j) != f {
			t.Fatalf("swap not involutive")
		}
	}
}

func TestFlipVar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := New(rng.Uint64(), n)
		i := rng.Intn(n)
		g := f.FlipVar(i)
		for m := 0; m < f.Size(); m++ {
			if g.Get(m) != f.Get(m^1<<uint(i)) {
				t.Fatalf("flip(%d) wrong at m=%d", i, m)
			}
		}
		if g.FlipVar(i) != f {
			t.Fatalf("flip not involutive")
		}
	}
}

func TestTranslateVar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(MaxVars-1)
		f := New(rng.Uint64(), n)
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		g := f.TranslateVar(i, j)
		for m := 0; m < f.Size(); m++ {
			// g(x) = f(x with x_i := x_i ⊕ x_j)
			src := m ^ (m >> uint(j) & 1 << uint(i))
			if g.Get(m) != f.Get(src) {
				t.Fatalf("translate(%d,%d) wrong at m=%d", i, j, m)
			}
		}
		if g.TranslateVar(i, j) != f {
			t.Fatalf("translate not involutive")
		}
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := New(rng.Uint64(), n)
		p := rng.Perm(n)
		g := f.Permute(p)
		for m := 0; m < f.Size(); m++ {
			src := 0
			for i := 0; i < n; i++ {
				src |= m >> uint(i) & 1 << uint(p[i])
			}
			if g.Get(m) != f.Get(src) {
				t.Fatalf("permute %v wrong at m=%d", p, m)
			}
		}
	}
}

func TestApplyLinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 1; n <= MaxVars; n++ {
		f := New(rng.Uint64(), n)
		col := make([]uint, n)
		for i := range col {
			col[i] = 1 << uint(i)
		}
		if f.ApplyLinear(col, 0) != f {
			t.Fatalf("identity ApplyLinear changed table")
		}
		// b offset is an XOR of input complements.
		g := f.ApplyLinear(col, 1)
		if g != f.FlipVar(0) {
			t.Fatalf("offset ApplyLinear != FlipVar")
		}
	}
}

func TestApplyLinearMatchesElementary(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(MaxVars-1)
		f := New(rng.Uint64(), n)
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		// The transvection x_i ← x_i ⊕ x_j corresponds to A with
		// col[j] = e_j ⊕ e_i (f reads input i as x_i ⊕ x_j: the source
		// index is m ^ (m_j << i), i.e. flipping input j also feeds i).
		col := make([]uint, n)
		for k := range col {
			col[k] = 1 << uint(k)
		}
		col[j] ^= 1 << uint(i)
		if f.ApplyLinear(col, 0) != f.TranslateVar(i, j) {
			t.Fatalf("ApplyLinear transvection != TranslateVar(%d,%d)", i, j)
		}
	}
}

func TestLinearAndIsAffine(t *testing.T) {
	for n := 0; n <= 4; n++ {
		for mask := uint(0); mask < 1<<uint(n); mask++ {
			for c := 0; c < 2; c++ {
				f := Linear(mask, n)
				if c == 1 {
					f = f.Not()
				}
				gm, gc, ok := f.IsAffine()
				if !ok || gm != mask || gc != (c == 1) {
					t.Fatalf("IsAffine(%s) = (%b,%v,%v), want (%b,%v,true)", f, gm, gc, ok, mask, c == 1)
				}
			}
		}
	}
	if _, _, ok := New(0xe8, 3).IsAffine(); ok {
		t.Fatalf("maj3 reported affine")
	}
	if _, _, ok := New(0x88, 3).IsAffine(); ok {
		t.Fatalf("and2 reported affine")
	}
}

func TestExtend(t *testing.T) {
	f := New(0x8, 2) // AND
	g := f.Extend(4)
	for m := 0; m < 16; m++ {
		if g.Get(m) != f.Get(m&3) {
			t.Fatalf("extend wrong at %d", m)
		}
	}
	if g.SupportMask() != 0b0011 {
		t.Fatalf("extend support mask %04b", g.SupportMask())
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(MaxVars + 1)
		f := New(rng.Uint64(), n)
		g, err := Parse(f.String(), n)
		if err != nil {
			t.Fatalf("parse(%q): %v", f.String(), err)
		}
		if g != f {
			t.Fatalf("round trip %s -> %s", f, g)
		}
	}
	if _, err := Parse("1ff", 3); err == nil {
		t.Fatalf("expected overflow error")
	}
	if _, err := Parse("zz", 3); err == nil {
		t.Fatalf("expected syntax error")
	}
}

func TestQuickXorProperties(t *testing.T) {
	// ⊕ is associative/commutative with identity 0 and self-inverse.
	f := func(a, b, c uint64) bool {
		x, y, z := New(a, 6), New(b, 6), New(c, 6)
		return x.Xor(y).Xor(z) == x.Xor(y.Xor(z)) &&
			x.Xor(y) == y.Xor(x) &&
			x.Xor(Const0(6)) == x &&
			x.Xor(x) == Const0(6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a, 6), New(b, 6)
		return x.And(y).Not() == x.Not().Or(y.Not()) &&
			x.Or(y).Not() == x.Not().And(y.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndXorDistribution(t *testing.T) {
	// x ∧ (y ⊕ z) = (x∧y) ⊕ (x∧z): the GF(2) distributive law the whole
	// paper rests on.
	f := func(a, b, c uint64) bool {
		x, y, z := New(a, 6), New(b, 6), New(c, 6)
		return x.And(y.Xor(z)) == x.And(y).Xor(x.And(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestANFAndDegree(t *testing.T) {
	cases := []struct {
		f   T
		deg int
	}{
		{Const0(4), 0},
		{Const1(4), 0},
		{Var(2, 4), 1},
		{Linear(0b1111, 4), 1},
		{Var(0, 4).And(Var(1, 4)), 2},
		{New(0xe8, 3), 2},   // majority: x1x2⊕x1x3⊕x2x3
		{New(0x80, 3), 3},   // x0x1x2
		{New(0x8000, 4), 4}, // x0x1x2x3
		{Var(0, 4).And(Var(1, 4)).Xor(Var(2, 4).And(Var(3, 4))), 2},
	}
	for _, c := range cases {
		if got := c.f.Degree(); got != c.deg {
			t.Fatalf("Degree(%s) = %d, want %d", c.f, got, c.deg)
		}
	}
	// ANF of majority: monomials 011, 101, 110.
	if got := New(0xe8, 3).ANF(); got != 1<<3|1<<5|1<<6 {
		t.Fatalf("ANF(maj3) = %b", got)
	}
	// Round trip: rebuild the function from its ANF monomials.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(MaxVars)
		f := New(rng.Uint64(), n)
		a := f.ANF()
		re := Const0(n)
		for m := 0; m < f.Size(); m++ {
			if a>>uint(m)&1 == 0 {
				continue
			}
			term := Const1(n)
			for i := 0; i < n; i++ {
				if m>>uint(i)&1 == 1 {
					term = term.And(Var(i, n))
				}
			}
			re = re.Xor(term)
		}
		if re != f {
			t.Fatalf("ANF round trip failed for %s (n=%d)", f, n)
		}
	}
}
