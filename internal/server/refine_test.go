package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/mcdb"
	"repro/internal/tt"
)

// TestAdminRefine runs one refinement pass over a warm database through the
// HTTP surface and checks the report, the dbinfo section, and the metrics
// all agree.
func TestAdminRefine(t *testing.T) {
	db := mcdb.New(mcdb.Options{})
	db.Lookup(tt.New(0xe8, 3))   // majority: MC 1
	db.Lookup(tt.New(0x6996, 4)) // 4-input parity chain class
	db.Lookup(tt.New(0x1ee1, 4))
	s, ts := newTestServer(t, func(cfg *Config) { cfg.DB = db })

	// Before any pass, dbinfo carries no refine section at all.
	var info DBInfoResponse
	getJSON(t, ts, "/admin/dbinfo", &info)
	if info.Refine != nil {
		t.Fatalf("refine section before any pass: %+v", info.Refine)
	}

	resp, body := postJSON(t, ts, "/admin/refine", RefineRequest{Reprove: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine: got %d\n%s", resp.StatusCode, body)
	}
	var rep RefineResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("refine response: %v\n%s", err, body)
	}
	if rep.Attempted == 0 || rep.Proven == 0 {
		t.Fatalf("refine did no work: %+v", rep)
	}
	if rep.Rejected != 0 || rep.Improved != 0 {
		t.Fatalf("refining exhaustively-proven entries changed them: %+v", rep)
	}

	getJSON(t, ts, "/admin/dbinfo", &info)
	if info.Refine == nil || info.Refine.Runs != 1 || info.Refine.LastReport == nil {
		t.Fatalf("dbinfo refine section after one pass: %+v", info.Refine)
	}
	if info.Refine.LastReport.Proven != rep.Proven {
		t.Fatalf("dbinfo last report %+v, pass reported %+v", info.Refine.LastReport, rep.RefineReport)
	}
	if got := metricValue(t, s, "mcserved_refine_runs_total"); got != 1 {
		t.Fatalf("mcserved_refine_runs_total = %v, want 1", got)
	}
	if got := metricValue(t, s, "mcdb_refine_proven_total"); got != float64(rep.Proven) {
		t.Fatalf("mcdb_refine_proven_total = %v, want %d", got, rep.Proven)
	}

	// An empty body means defaults: with everything proven above, the second
	// pass finds no candidates.
	resp, body = postJSON(t, ts, "/admin/refine", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default refine: got %d\n%s", resp.StatusCode, body)
	}
	var rep2 RefineResponse
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Candidates != 0 {
		t.Fatalf("second pass still had %d candidates", rep2.Candidates)
	}
}

// TestAdminRefineValidation drives the request-shape errors.
func TestAdminRefineValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body any
		code ErrorCode
	}{
		{"negative budget", RefineRequest{Budget: -1}, CodeInvalidOption},
		{"negative worst_n", RefineRequest{WorstN: -3}, CodeInvalidOption},
		{"unknown field", map[string]any{"budgets": 5}, CodeInvalidRequest},
		{"wrong type", map[string]any{"budget": "lots"}, CodeInvalidRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/admin/refine", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400\n%s", tc.name, resp.StatusCode, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%v)", tc.name, e.Error.Code, tc.code, err)
		}
	}
}

// TestAdminRefineBusy proves the endpoint sheds instead of queueing when a
// pass is already running.
func TestAdminRefineBusy(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.refineMu.Lock()
	defer s.refineMu.Unlock()
	resp, body := postJSON(t, ts, "/admin/refine", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("busy refine: got %d, want 409\n%s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeRefineBusy {
		t.Fatalf("busy refine code %q, want %q (%v)", e.Error.Code, CodeRefineBusy, err)
	}
}

// TestStartRefinerDisabled checks the no-op paths: without a budget (or
// without an interval) no background loop starts and dbinfo stays clean.
func TestStartRefinerDisabled(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.StartRefiner(t.Context(), 0, 1000)
	s.StartRefiner(t.Context(), 1, 0)
	if s.refineBG.Load() {
		t.Fatal("disabled refiner flagged as background-enabled")
	}
	var info DBInfoResponse
	getJSON(t, ts, "/admin/dbinfo", &info)
	if info.Refine != nil {
		t.Fatalf("refine section with refiner disabled: %+v", info.Refine)
	}
	if got := metricValue(t, s, "mcserved_refine_background"); got != 0 {
		t.Fatalf("mcserved_refine_background = %v, want 0", got)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
