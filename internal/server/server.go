// Package server implements mcserved: a long-running HTTP service wrapping
// the mcc optimization engine. One process holds one warm synthesis database
// (mcdb) and one metrics registry; every request is optimized against them,
// so the classification cache — the dominant cost of a cold run — is paid
// once per process instead of once per invocation.
//
// Endpoints (schemas, error codes, and semantics in API.md):
//
//	POST   /v1/optimize        optimize a Bristol or JSON gate-list network
//	POST   /v1/optimize/batch  optimize an array of envelopes, per-item status
//	POST   /v1/jobs            submit an async optimization, 202 + job id
//	GET    /v1/jobs/{id}       poll a job; DELETE cancels it
//	POST   /admin/snapshot     checkpoint the durable store (and result cache) now
//	POST   /admin/reload       merge a validated snapshot file into the live DB
//	POST   /admin/refine       run one SAT refinement pass over the warm DB now
//	GET    /admin/dbinfo       database and durability statistics
//	GET    /metrics            Prometheus text exposition of the shared registry
//	GET    /healthz            liveness (always 200 while the process serves)
//	GET    /readyz             readiness (503 until warm-up finishes or while draining)
//
// Concurrency model: a bounded worker pool of Config.Workers optimizations
// runs at once; up to Config.QueueDepth further requests wait for a slot.
// Beyond that the server sheds load with 429 and a Retry-After header —
// backpressure, not unbounded queueing. Each request carries a context
// deadline threaded through MinimizeMCContext; an expired deadline yields a
// clean 504 with no goroutine left behind. BeginDrain/Drain stop admission
// (503) and wait for in-flight work, which is how the daemon handles
// SIGTERM.
//
// Every unit of work — sync request, batch item, job — flows through the
// content-addressed result cache (internal/rescache): a request whose
// canonical (network, cost model, options) address is cached is answered
// byte-identically to the cold response without touching the engine or the
// admission queue, and a thundering herd on one uncached address runs the
// optimization once. The X-MC-Cache response header says which path served
// each response (miss, hit, coalesced).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/metrics"
	"repro/internal/rescache"
	"repro/internal/xag"
	"repro/mcc"
)

// Config configures a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers bounds how many optimizations run concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot (default 64). Requests beyond Workers+QueueDepth get 429.
	QueueDepth int
	// MaxPayloadBytes bounds the request body (default 32 MiB); larger
	// bodies get 413.
	MaxPayloadBytes int64
	// DefaultDeadline applies when a request sets none (default 60s);
	// MaxDeadline caps what a request may ask for (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxRequestWorkers caps the per-request engine worker count (default 4):
	// the pool already provides cross-request parallelism, so a single
	// request must not fan out over the whole machine.
	MaxRequestWorkers int

	// CacheEntries bounds the result cache entry count (default 4096);
	// negative disables the cache (and with it singleflight coalescing).
	// CacheBytes bounds its resident bytes (default 256 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxBatchItems caps how many envelopes one batch request may carry
	// (default 64).
	MaxBatchItems int
	// MaxJobs bounds the async job table (default 1024); submissions beyond
	// it shed with 429. JobTTL is how long a finished job stays pollable
	// (default 10m).
	MaxJobs int
	JobTTL  time.Duration

	// Registry receives every metric (server, engine, and database); a
	// private registry is created when nil. See Server.Registry.
	Registry *metrics.Registry
	// DB is the process-wide synthesis database; a fresh one is created when
	// nil. See Server.DB.
	DB *mcdb.DB
	// Store, when set, is the durable snapshot/journal store behind DB. It
	// enables the admin snapshot endpoint and the background snapshotter
	// (StartSnapshotter); its metrics land on Registry.
	Store *mcdb.Store
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxPayloadBytes <= 0 {
		c.MaxPayloadBytes = 32 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxRequestWorkers <= 0 {
		c.MaxRequestWorkers = 4
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.DB == nil {
		c.DB = mcdb.New(mcdb.Options{})
	}
	return c
}

// serverMetrics is the server-level instrument set; engine (mcc_*) and
// database (mcdb_*) metrics land on the same registry via WithMetrics and
// RegisterMetrics.
type serverMetrics struct {
	requests       *metrics.CounterVec // by status code
	inflight       *metrics.Gauge
	queueRejects   *metrics.Counter
	deadlineExpiry *metrics.Counter
	clientCancels  *metrics.Counter
	verifyFailures *metrics.Counter
	panics         *metrics.Counter
	duration       *metrics.Histogram
	queueWait      *metrics.Histogram
	payloadBytes   *metrics.Histogram
	ready          *metrics.Gauge
	draining       *metrics.Gauge

	jobsSubmitted *metrics.Counter
	jobsCompleted *metrics.CounterVec // by outcome
	jobsEvicted   *metrics.Counter
}

// Server is the resident optimization service. Create one with New, mount
// Handler on an http.Server, and call BeginDrain/Drain on shutdown.
type Server struct {
	cfg Config
	met serverMetrics

	sem      chan struct{} // worker slots
	pending  atomic.Int64  // admitted requests (queued + running)
	running  atomic.Int64  // requests holding a worker slot
	draining atomic.Bool
	ready    atomic.Bool

	// cache is the content-addressed result cache; nil when disabled
	// (Config.CacheEntries < 0), in which case every request computes.
	cache *rescache.Cache
	// jobs is the bounded async job table behind /v1/jobs.
	jobs *jobTable

	// refineMu serializes SAT refinement passes (admin and background);
	// refineRuns/refineBG/lastRefine feed /admin/dbinfo and the
	// mcserved_refine_* metrics. See refine.go.
	refineMu   sync.Mutex
	refineRuns atomic.Int64
	refineBG   atomic.Bool
	lastRefine atomic.Pointer[refineRun]

	deprecationOnce sync.Once

	// beforeOptimize, when non-nil, runs on the worker goroutine after slot
	// acquisition and before the engine starts — a test seam for exercising
	// queue saturation, deadlines, and drain without timing races.
	beforeOptimize func()
}

// New returns a server over cfg. The server starts ready; a caller that
// wants warm-up gating calls SetReady(false), warms the database (Warmup),
// and then SetReady(true).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.Workers)}
	s.ready.Store(true)
	if cfg.CacheEntries >= 0 {
		s.cache = rescache.New(cfg.CacheEntries, cfg.CacheBytes)
	}
	s.jobs = newJobTable(cfg.MaxJobs, cfg.JobTTL)

	r := cfg.Registry
	s.met = serverMetrics{
		requests:       r.CounterVec("mcserved_requests_total", "Optimize requests by HTTP status code.", "code"),
		inflight:       r.Gauge("mcserved_requests_inflight", "Optimize requests currently holding a worker slot."),
		queueRejects:   r.Counter("mcserved_queue_rejections_total", "Requests shed with 429 because the queue was full."),
		deadlineExpiry: r.Counter("mcserved_deadline_timeouts_total", "Requests that hit their deadline (504), queued or running."),
		clientCancels:  r.Counter("mcserved_client_cancels_total", "Requests abandoned by the client before completion."),
		verifyFailures: r.Counter("mcserved_verify_failures_total", "Requests whose verification miter rolled a round back (500)."),
		panics:         r.Counter("mcserved_panics_total", "Requests aborted by a recovered panic (500); the daemon keeps serving."),
		duration:       r.Histogram("mcserved_request_duration_seconds", "End-to-end optimize request duration.", nil),
		queueWait:      r.Histogram("mcserved_queue_wait_seconds", "Time spent waiting for a worker slot.", metrics.ExpBuckets(0.001, 4, 10)),
		payloadBytes:   r.Histogram("mcserved_payload_bytes", "Optimize request body size.", metrics.ExpBuckets(64, 4, 12)),
		ready:          r.Gauge("mcserved_ready", "1 when the server passes readiness, 0 otherwise."),
		draining:       r.Gauge("mcserved_draining", "1 while the server drains for shutdown."),

		jobsSubmitted: r.Counter("mcserved_jobs_submitted_total", "Async jobs accepted by POST /v1/jobs."),
		jobsCompleted: r.CounterVec("mcserved_jobs_completed_total", "Async jobs finished, by outcome.", "outcome"),
		jobsEvicted:   r.Counter("mcserved_jobs_evicted_total", "Finished jobs dropped by TTL expiry."),
	}
	s.jobs.evicted = func() { s.met.jobsEvicted.Inc() }
	r.GaugeFunc("mcserved_jobs_active", "Async jobs queued or running.",
		func() float64 { return float64(s.jobs.active()) })
	r.GaugeFunc("mcserved_jobs_table", "Jobs held in the table, any state.",
		func() float64 { return float64(s.jobs.size()) })
	if s.cache != nil {
		s.cache.RegisterMetrics(r)
	}
	r.GaugeFunc("mcserved_queue_depth", "Admitted requests waiting for a worker slot.",
		func() float64 { return float64(s.pending.Load() - s.running.Load()) })
	r.Gauge("mcserved_queue_limit", "Maximum queued requests before load shedding.").
		Set(float64(cfg.QueueDepth))
	r.Gauge("mcserved_worker_slots", "Size of the optimization worker pool.").
		Set(float64(cfg.Workers))
	r.CounterFunc("mcserved_refine_runs_total",
		"SAT refinement passes completed (admin-triggered and background).",
		func() float64 { return float64(s.refineRuns.Load()) })
	r.GaugeFunc("mcserved_refine_background",
		"1 when the background refiner loop is enabled.",
		func() float64 {
			if s.refineBG.Load() {
				return 1
			}
			return 0
		})
	s.met.ready.Set(1)
	cfg.DB.RegisterMetrics(r)
	if cfg.Store != nil {
		cfg.Store.RegisterMetrics(r)
	}
	return s
}

// Registry returns the registry all server, engine, and database metrics
// land on.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// DB returns the process-wide synthesis database.
func (s *Server) DB() *mcdb.DB { return s.cfg.DB }

// Cache returns the result cache, or nil when disabled. The daemon uses it
// to load/save the cache snapshot around restarts.
func (s *Server) Cache() *rescache.Cache { return s.cache }

// SetReady flips the readiness probe; New starts ready.
func (s *Server) SetReady(ok bool) {
	s.ready.Store(ok)
	if ok {
		s.met.ready.Set(1)
	} else {
		s.met.ready.Set(0)
	}
}

// Warmup optimizes net against the shared database, pre-paying its
// classification cache before real traffic arrives, then marks the server
// ready. Honors ctx.
func (s *Server) Warmup(ctx context.Context, net *xag.Network) {
	start := time.Now()
	res := mcc.Optimize(ctx, net,
		mcc.WithDB(s.cfg.DB),
		mcc.WithMetrics(s.cfg.Registry),
		mcc.WithWorkers(s.cfg.MaxRequestWorkers),
	)
	s.logf("server: warm-up done in %v (%d classes cached)", time.Since(start).Round(time.Millisecond), s.cfg.DB.NumClasses())
	_ = res
	s.SetReady(true)
}

// BeginDrain stops admitting optimize requests (they get 503) and flips
// readiness, so load balancers stop routing here. In-flight and queued
// requests keep running.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.met.draining.Set(1)
		s.SetReady(false)
		s.logf("server: draining")
	}
}

// Drain calls BeginDrain and then blocks until every admitted request has
// finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d requests still in flight: %w", s.pending.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/optimize/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("POST /admin/reload", s.handleAdminReload)
	mux.HandleFunc("POST /admin/refine", s.handleAdminRefine)
	mux.HandleFunc("GET /admin/dbinfo", s.handleAdminDBInfo)
	mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		switch {
		case s.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !s.ready.Load():
			http.Error(w, "warming up", http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
		}
	})
	return mux
}

// RequestOptions are the per-request optimization knobs of POST /v1/optimize.
// In a JSON envelope they live under "options"; with a raw Bristol body they
// arrive as query parameters (cost, rounds, verify, workers, k, zero-gain,
// incremental, deadline).
type RequestOptions struct {
	Cost        string `json:"cost,omitempty"` // mc (default) | size | depth
	MaxRounds   int    `json:"max_rounds,omitempty"`
	Verify      bool   `json:"verify,omitempty"`
	Workers     int    `json:"workers,omitempty"`  // capped by Config.MaxRequestWorkers
	CutSize     int    `json:"cut_size,omitempty"` // 2..6, default 6
	ZeroGain    bool   `json:"zero_gain,omitempty"`
	Incremental *bool  `json:"incremental,omitempty"` // default true
	DeadlineMS  int    `json:"deadline_ms,omitempty"` // capped by Config.MaxDeadline

	// SequentialCommit forces the commit stage onto the single-threaded
	// reference pass. The optimized network is byte-identical either way;
	// the option exists for bisecting suspected determinism bugs against
	// live traffic (see API.md).
	SequentialCommit bool `json:"sequential_commit,omitempty"`
}

// OptimizeRequest is the JSON envelope of POST /v1/optimize. Exactly one of
// Bristol and Network must be set.
type OptimizeRequest struct {
	Bristol string         `json:"bristol,omitempty"`
	Network *NetworkJSON   `json:"network,omitempty"`
	Options RequestOptions `json:"options"`
}

// Report is the structured outcome of one optimize request.
type Report struct {
	ANDBefore         int             `json:"and_before"`
	ANDAfter          int             `json:"and_after"`
	XORBefore         int             `json:"xor_before"`
	XORAfter          int             `json:"xor_after"`
	ANDDepthBefore    int             `json:"and_depth_before"`
	ANDDepthAfter     int             `json:"and_depth_after"`
	Rounds            int             `json:"rounds"`
	Replacements      int             `json:"replacements"`
	Converged         bool            `json:"converged"`
	Cost              string          `json:"cost"`
	Degraded          *DegradedReport `json:"degraded,omitempty"`
	ClassCacheHitRate float64         `json:"class_cache_hit_rate"`
	DurationMS        float64         `json:"duration_ms"`
}

// DegradedReport mirrors the engine's contained-fault counters when any
// fired during the request.
type DegradedReport struct {
	RejectedRewrites          int `json:"rejected_rewrites,omitempty"`
	InvalidEntries            int `json:"invalid_db_entries,omitempty"`
	IncompleteClassifications int `json:"incomplete_classifications,omitempty"`
	RecoveredPanics           int `json:"recovered_panics,omitempty"`
	RolledBackRounds          int `json:"rolled_back_rounds,omitempty"`
}

// OptimizeResponse is the JSON response of POST /v1/optimize. The optimized
// network comes back in the encoding the request used: Bristol text for a
// Bristol request, a JSON gate list for a gate-list request.
type OptimizeResponse struct {
	Report  Report       `json:"report"`
	Bristol string       `json:"bristol,omitempty"`
	Network *NetworkJSON `json:"network,omitempty"`
}

// readBody reads the (bounded) request body, mapping overflow to the
// payload_too_large code.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxPayloadBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, errf(http.StatusRequestEntityTooLarge, CodePayloadTooLarge, "", "request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "", "reading body: %v", err)
	}
	s.met.payloadBytes.Observe(float64(len(body)))
	return body, nil
}

// handleOptimize is POST /v1/optimize: decode, consult the cache, compute
// on a miss under the request deadline, respond.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.failf(w, http.StatusServiceUnavailable, CodeDraining, "", "server is draining")
		return
	}
	body, apiErr := s.readBody(w, r)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	dr, apiErr := s.decodeSync(r, body)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}

	// The deadline covers queue wait plus optimization: a request that
	// queues past its deadline is as dead as one that optimizes past it.
	// Cache hits return long before it matters.
	ctx, cancel := context.WithTimeout(r.Context(), dr.opts.deadline(s.cfg))
	defer cancel()

	// Per-request panic isolation: whatever goes wrong inside this one
	// optimization — an engine bug beyond the per-node containment, a
	// corrupted entry slipping past a check, an encoding failure — is
	// confined to this request. The worker recovers, the caller gets a 500,
	// the daemon keeps serving. A panic inside a coalesced computation
	// resurfaces on the leader's stack (followers get an error), so this
	// recover still sees it.
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			s.logf("server: request aborted by panic: %v", rec)
			s.failf(w, http.StatusInternalServerError, CodeInternal, "", "internal error: request aborted")
		}
	}()

	res, out, err := s.optimizeOne(ctx, dr, false)
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			s.fail(w, ae)
			return
		}
		s.finishCanceled(w, ctx, r)
		return
	}
	s.met.duration.Observe(time.Since(start).Seconds())
	s.writeOptimizeResponse(w, r, res, dr, out)
}

// optimizeOne runs one decoded request through the result cache; on a miss
// it runs the full admission → queue → engine path exactly once per herd.
// The returned error is either an *apiError or a context error (the
// caller's deadline or cancellation). preAdmitted marks work that already
// holds an admission slot (async jobs claim theirs at submission).
func (s *Server) optimizeOne(ctx context.Context, dr *decodedRequest, preAdmitted bool) (*rescache.Result, rescache.Outcome, error) {
	compute := func() (*rescache.Result, bool, error) {
		return s.computeResult(ctx, dr, preAdmitted)
	}
	if s.cache == nil {
		res, _, err := compute()
		return res, rescache.Miss, err
	}
	return s.cache.Do(ctx, cacheKey(dr.net, dr.opts), compute)
}

// computeResult is the cold path: claim admission, wait for a worker slot,
// run the engine, freeze the result. The bool result reports whether the
// result is cacheable — degraded runs are served but never cached, so a
// contained fault can't poison the address for every future caller.
func (s *Server) computeResult(ctx context.Context, dr *decodedRequest, preAdmitted bool) (*rescache.Result, bool, error) {
	start := time.Now()
	// Admission: one CAS claims a queue-or-worker slot; beyond the bound the
	// request is shed immediately — the queue cannot grow without limit.
	// The whole coalesced herd shares the leader's slot (and its rejection).
	if !preAdmitted {
		if !s.admit() {
			s.met.queueRejects.Inc()
			return nil, false, errf(http.StatusTooManyRequests, CodeQueueFull, "",
				"queue full (%d running, %d queued)", s.cfg.Workers, s.cfg.QueueDepth)
		}
		defer s.pending.Add(-1)
	}

	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.queueWait.Observe(time.Since(queued).Seconds())
		return nil, false, ctx.Err()
	}
	s.met.queueWait.Observe(time.Since(queued).Seconds())
	s.running.Add(1)
	s.met.inflight.Inc()
	defer func() {
		s.met.inflight.Dec()
		s.running.Add(-1)
		<-s.sem
	}()

	if s.beforeOptimize != nil {
		s.beforeOptimize()
	}
	// Fault-injection point: tests panic here to prove per-request isolation
	// (500 for this request, subsequent requests on the same daemon succeed).
	faultinject.Inject(faultinject.PointServerRequest, nil)

	opts := dr.opts
	mopts := []mcc.Option{
		mcc.WithDB(s.cfg.DB),
		mcc.WithMetrics(s.cfg.Registry),
		mcc.WithCost(dr.model),
		mcc.WithWorkers(opts.Workers),
		mcc.WithMaxRounds(opts.MaxRounds),
		mcc.WithVerify(opts.Verify),
		mcc.WithZeroGain(opts.ZeroGain),
		mcc.WithSequentialCommit(opts.SequentialCommit),
	}
	if opts.CutSize != 0 {
		mopts = append(mopts, mcc.WithCutSize(opts.CutSize))
	}
	if opts.Incremental != nil {
		mopts = append(mopts, mcc.WithIncremental(*opts.Incremental))
	}
	before := dr.net.CountGates()
	res := mcc.Optimize(ctx, dr.net, mopts...)

	var verr *mcc.VerifyError
	switch {
	case errors.As(res.Err, &verr):
		s.met.verifyFailures.Inc()
		return nil, false, errf(http.StatusInternalServerError, CodeVerifyFailed, "", "verification failed: %v", verr)
	case res.Interrupted:
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, false, errf(http.StatusInternalServerError, CodeInternal, "", "optimization interrupted: %v", res.Err)
	}

	after := res.Network.CountGates()
	rep := Report{
		ANDBefore:         before.And,
		ANDAfter:          after.And,
		XORBefore:         before.Xor,
		XORAfter:          after.Xor,
		ANDDepthBefore:    before.AndDepth,
		ANDDepthAfter:     after.AndDepth,
		Rounds:            len(res.Rounds),
		Converged:         res.Converged,
		Cost:              opts.Cost,
		ClassCacheHitRate: s.cfg.DB.Stats().ClassHitRate(),
		DurationMS:        float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, rd := range res.Rounds {
		rep.Replacements += rd.Replacements
	}
	if d := res.Degraded; d.Total() > 0 {
		rep.Degraded = &DegradedReport{
			RejectedRewrites:          d.RejectedRewrites,
			InvalidEntries:            d.InvalidEntries,
			IncompleteClassifications: d.IncompleteClassifications,
			RecoveredPanics:           d.RecoveredPanics,
			RolledBackRounds:          d.RolledBackRounds,
		}
	}
	frozen, err := buildResult(rep, res.Network)
	if err != nil {
		return nil, false, errf(http.StatusInternalServerError, CodeInternal, "", "%v", err)
	}
	// Incomplete classifications are routine deterministic skips (the
	// canonizer's iteration limit fires on the same cuts every run), so a
	// result degraded only by them caches like a clean one. Any other
	// containment event — recovered panic, invalid DB entry, rejected
	// rewrite, rolled-back round — reflects transient state: serve the
	// result but do not store it.
	store := res.Degraded.Total() == res.Degraded.IncompleteClassifications
	return frozen, store, nil
}

// finishCanceled classifies a context-terminated request: an expired
// deadline is the caller's 504; a vanished client is just counted.
func (s *Server) finishCanceled(w http.ResponseWriter, ctx context.Context, r *http.Request) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil {
		s.met.deadlineExpiry.Inc()
		s.failf(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "", "deadline exceeded")
		return
	}
	s.met.clientCancels.Inc()
	// The client is gone; the status code is bookkeeping only.
	s.met.requests.With("499").Inc()
}

// admit claims one of the Workers+QueueDepth admission slots, or reports
// that the server is saturated.
func (s *Server) admit() bool {
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	for {
		p := s.pending.Load()
		if p >= limit {
			return false
		}
		if s.pending.CompareAndSwap(p, p+1) {
			return true
		}
	}
}
