// Package server implements mcserved: a long-running HTTP service wrapping
// the mcc optimization engine. One process holds one warm synthesis database
// (mcdb) and one metrics registry; every request is optimized against them,
// so the classification cache — the dominant cost of a cold run — is paid
// once per process instead of once per invocation.
//
// Endpoints:
//
//	POST /v1/optimize     optimize a Bristol or JSON gate-list network
//	POST /admin/snapshot  checkpoint the durable store now
//	POST /admin/reload    merge a validated snapshot file into the live DB
//	GET  /admin/dbinfo    database and durability statistics
//	GET  /metrics         Prometheus text exposition of the shared registry
//	GET  /healthz         liveness (always 200 while the process serves)
//	GET  /readyz          readiness (503 until warm-up finishes or while draining)
//
// Concurrency model: a bounded worker pool of Config.Workers optimizations
// runs at once; up to Config.QueueDepth further requests wait for a slot.
// Beyond that the server sheds load with 429 and a Retry-After header —
// backpressure, not unbounded queueing. Each request carries a context
// deadline threaded through MinimizeMCContext; an expired deadline yields a
// clean 504 with no goroutine left behind. BeginDrain/Drain stop admission
// (503) and wait for in-flight work, which is how the daemon handles
// SIGTERM.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/metrics"
	"repro/internal/xag"
	"repro/mcc"
)

// Config configures a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers bounds how many optimizations run concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot (default 64). Requests beyond Workers+QueueDepth get 429.
	QueueDepth int
	// MaxPayloadBytes bounds the request body (default 32 MiB); larger
	// bodies get 413.
	MaxPayloadBytes int64
	// DefaultDeadline applies when a request sets none (default 60s);
	// MaxDeadline caps what a request may ask for (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxRequestWorkers caps the per-request engine worker count (default 4):
	// the pool already provides cross-request parallelism, so a single
	// request must not fan out over the whole machine.
	MaxRequestWorkers int

	// Registry receives every metric (server, engine, and database); a
	// private registry is created when nil. See Server.Registry.
	Registry *metrics.Registry
	// DB is the process-wide synthesis database; a fresh one is created when
	// nil. See Server.DB.
	DB *mcdb.DB
	// Store, when set, is the durable snapshot/journal store behind DB. It
	// enables the admin snapshot endpoint and the background snapshotter
	// (StartSnapshotter); its metrics land on Registry.
	Store *mcdb.Store
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxPayloadBytes <= 0 {
		c.MaxPayloadBytes = 32 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxRequestWorkers <= 0 {
		c.MaxRequestWorkers = 4
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.DB == nil {
		c.DB = mcdb.New(mcdb.Options{})
	}
	return c
}

// serverMetrics is the server-level instrument set; engine (mcc_*) and
// database (mcdb_*) metrics land on the same registry via WithMetrics and
// RegisterMetrics.
type serverMetrics struct {
	requests       *metrics.CounterVec // by status code
	inflight       *metrics.Gauge
	queueRejects   *metrics.Counter
	deadlineExpiry *metrics.Counter
	clientCancels  *metrics.Counter
	verifyFailures *metrics.Counter
	panics         *metrics.Counter
	duration       *metrics.Histogram
	queueWait      *metrics.Histogram
	payloadBytes   *metrics.Histogram
	ready          *metrics.Gauge
	draining       *metrics.Gauge
}

// Server is the resident optimization service. Create one with New, mount
// Handler on an http.Server, and call BeginDrain/Drain on shutdown.
type Server struct {
	cfg Config
	met serverMetrics

	sem      chan struct{} // worker slots
	pending  atomic.Int64  // admitted requests (queued + running)
	running  atomic.Int64  // requests holding a worker slot
	draining atomic.Bool
	ready    atomic.Bool

	// beforeOptimize, when non-nil, runs on the worker goroutine after slot
	// acquisition and before the engine starts — a test seam for exercising
	// queue saturation, deadlines, and drain without timing races.
	beforeOptimize func()
}

// New returns a server over cfg. The server starts ready; a caller that
// wants warm-up gating calls SetReady(false), warms the database (Warmup),
// and then SetReady(true).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.Workers)}
	s.ready.Store(true)

	r := cfg.Registry
	s.met = serverMetrics{
		requests:       r.CounterVec("mcserved_requests_total", "Optimize requests by HTTP status code.", "code"),
		inflight:       r.Gauge("mcserved_requests_inflight", "Optimize requests currently holding a worker slot."),
		queueRejects:   r.Counter("mcserved_queue_rejections_total", "Requests shed with 429 because the queue was full."),
		deadlineExpiry: r.Counter("mcserved_deadline_timeouts_total", "Requests that hit their deadline (504), queued or running."),
		clientCancels:  r.Counter("mcserved_client_cancels_total", "Requests abandoned by the client before completion."),
		verifyFailures: r.Counter("mcserved_verify_failures_total", "Requests whose verification miter rolled a round back (500)."),
		panics:         r.Counter("mcserved_panics_total", "Requests aborted by a recovered panic (500); the daemon keeps serving."),
		duration:       r.Histogram("mcserved_request_duration_seconds", "End-to-end optimize request duration.", nil),
		queueWait:      r.Histogram("mcserved_queue_wait_seconds", "Time spent waiting for a worker slot.", metrics.ExpBuckets(0.001, 4, 10)),
		payloadBytes:   r.Histogram("mcserved_payload_bytes", "Optimize request body size.", metrics.ExpBuckets(64, 4, 12)),
		ready:          r.Gauge("mcserved_ready", "1 when the server passes readiness, 0 otherwise."),
		draining:       r.Gauge("mcserved_draining", "1 while the server drains for shutdown."),
	}
	r.GaugeFunc("mcserved_queue_depth", "Admitted requests waiting for a worker slot.",
		func() float64 { return float64(s.pending.Load() - s.running.Load()) })
	r.Gauge("mcserved_queue_limit", "Maximum queued requests before load shedding.").
		Set(float64(cfg.QueueDepth))
	r.Gauge("mcserved_worker_slots", "Size of the optimization worker pool.").
		Set(float64(cfg.Workers))
	s.met.ready.Set(1)
	cfg.DB.RegisterMetrics(r)
	if cfg.Store != nil {
		cfg.Store.RegisterMetrics(r)
	}
	return s
}

// Registry returns the registry all server, engine, and database metrics
// land on.
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// DB returns the process-wide synthesis database.
func (s *Server) DB() *mcdb.DB { return s.cfg.DB }

// SetReady flips the readiness probe; New starts ready.
func (s *Server) SetReady(ok bool) {
	s.ready.Store(ok)
	if ok {
		s.met.ready.Set(1)
	} else {
		s.met.ready.Set(0)
	}
}

// Warmup optimizes net against the shared database, pre-paying its
// classification cache before real traffic arrives, then marks the server
// ready. Honors ctx.
func (s *Server) Warmup(ctx context.Context, net *xag.Network) {
	start := time.Now()
	res := mcc.Optimize(ctx, net,
		mcc.WithDB(s.cfg.DB),
		mcc.WithMetrics(s.cfg.Registry),
		mcc.WithWorkers(s.cfg.MaxRequestWorkers),
	)
	s.logf("server: warm-up done in %v (%d classes cached)", time.Since(start).Round(time.Millisecond), s.cfg.DB.NumClasses())
	_ = res
	s.SetReady(true)
}

// BeginDrain stops admitting optimize requests (they get 503) and flips
// readiness, so load balancers stop routing here. In-flight and queued
// requests keep running.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.met.draining.Set(1)
		s.SetReady(false)
		s.logf("server: draining")
	}
}

// Drain calls BeginDrain and then blocks until every admitted request has
// finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d requests still in flight: %w", s.pending.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("POST /admin/reload", s.handleAdminReload)
	mux.HandleFunc("GET /admin/dbinfo", s.handleAdminDBInfo)
	mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		switch {
		case s.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !s.ready.Load():
			http.Error(w, "warming up", http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
		}
	})
	return mux
}

// RequestOptions are the per-request optimization knobs of POST /v1/optimize.
// In a JSON envelope they live under "options"; with a raw Bristol body they
// arrive as query parameters (cost, rounds, verify, workers, k, zero-gain,
// incremental, deadline).
type RequestOptions struct {
	Cost        string `json:"cost,omitempty"` // mc (default) | size | depth
	MaxRounds   int    `json:"max_rounds,omitempty"`
	Verify      bool   `json:"verify,omitempty"`
	Workers     int    `json:"workers,omitempty"`  // capped by Config.MaxRequestWorkers
	CutSize     int    `json:"cut_size,omitempty"` // 2..6, default 6
	ZeroGain    bool   `json:"zero_gain,omitempty"`
	Incremental *bool  `json:"incremental,omitempty"` // default true
	DeadlineMS  int    `json:"deadline_ms,omitempty"` // capped by Config.MaxDeadline
}

// OptimizeRequest is the JSON envelope of POST /v1/optimize. Exactly one of
// Bristol and Network must be set.
type OptimizeRequest struct {
	Bristol string         `json:"bristol,omitempty"`
	Network *NetworkJSON   `json:"network,omitempty"`
	Options RequestOptions `json:"options"`
}

// Report is the structured outcome of one optimize request.
type Report struct {
	ANDBefore         int             `json:"and_before"`
	ANDAfter          int             `json:"and_after"`
	XORBefore         int             `json:"xor_before"`
	XORAfter          int             `json:"xor_after"`
	ANDDepthBefore    int             `json:"and_depth_before"`
	ANDDepthAfter     int             `json:"and_depth_after"`
	Rounds            int             `json:"rounds"`
	Replacements      int             `json:"replacements"`
	Converged         bool            `json:"converged"`
	Cost              string          `json:"cost"`
	Degraded          *DegradedReport `json:"degraded,omitempty"`
	ClassCacheHitRate float64         `json:"class_cache_hit_rate"`
	DurationMS        float64         `json:"duration_ms"`
}

// DegradedReport mirrors the engine's contained-fault counters when any
// fired during the request.
type DegradedReport struct {
	RejectedRewrites          int `json:"rejected_rewrites,omitempty"`
	InvalidEntries            int `json:"invalid_db_entries,omitempty"`
	IncompleteClassifications int `json:"incomplete_classifications,omitempty"`
	RecoveredPanics           int `json:"recovered_panics,omitempty"`
	RolledBackRounds          int `json:"rolled_back_rounds,omitempty"`
}

// OptimizeResponse is the JSON response of POST /v1/optimize. The optimized
// network comes back in the encoding the request used: Bristol text for a
// Bristol request, a JSON gate list for a gate-list request.
type OptimizeResponse struct {
	Report  Report       `json:"report"`
	Bristol string       `json:"bristol,omitempty"`
	Network *NetworkJSON `json:"network,omitempty"`
}

type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// fail counts and writes one JSON error response.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.met.requests.With(strconv.Itoa(code)).Inc()
	msg := fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg, Status: code})
}

// parseRequest reads the body and decodes network + options. A JSON
// Content-Type selects the envelope; anything else is a raw Bristol circuit
// with options in the query string.
func (s *Server) parseRequest(r *http.Request, body []byte) (*xag.Network, RequestOptions, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var req OptimizeRequest
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, RequestOptions{}, fmt.Errorf("request json: %v", err)
		}
		switch {
		case req.Bristol != "" && req.Network != nil:
			return nil, RequestOptions{}, errors.New(`request sets both "bristol" and "network"`)
		case req.Bristol != "":
			net, err := xag.ReadBristol(strings.NewReader(req.Bristol))
			if err != nil {
				return nil, RequestOptions{}, err
			}
			return net, req.Options, nil
		case req.Network != nil:
			net, err := req.Network.Build()
			if err != nil {
				return nil, RequestOptions{}, err
			}
			return net, req.Options, nil
		default:
			return nil, RequestOptions{}, errors.New(`request needs "bristol" or "network"`)
		}
	}

	opts, err := optionsFromQuery(r)
	if err != nil {
		return nil, RequestOptions{}, err
	}
	net, err := xag.ReadBristol(strings.NewReader(string(body)))
	if err != nil {
		return nil, RequestOptions{}, err
	}
	return net, opts, nil
}

// optionsFromQuery maps query parameters onto RequestOptions for raw
// Bristol requests.
func optionsFromQuery(r *http.Request) (RequestOptions, error) {
	q := r.URL.Query()
	var o RequestOptions
	o.Cost = q.Get("cost")
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("query %s: bad integer %q", name, v)
		}
		*dst = n
		return nil
	}
	boolParam := func(name string) (bool, bool, error) {
		v := q.Get(name)
		if v == "" {
			return false, false, nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return false, false, fmt.Errorf("query %s: bad boolean %q", name, v)
		}
		return b, true, nil
	}
	if err := intParam("rounds", &o.MaxRounds); err != nil {
		return o, err
	}
	if err := intParam("workers", &o.Workers); err != nil {
		return o, err
	}
	if err := intParam("k", &o.CutSize); err != nil {
		return o, err
	}
	if b, ok, err := boolParam("verify"); err != nil {
		return o, err
	} else if ok {
		o.Verify = b
	}
	if b, ok, err := boolParam("zero-gain"); err != nil {
		return o, err
	} else if ok {
		o.ZeroGain = b
	}
	if b, ok, err := boolParam("incremental"); err != nil {
		return o, err
	} else if ok {
		o.Incremental = &b
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return o, fmt.Errorf("query deadline: bad duration %q", v)
		}
		o.DeadlineMS = int(d / time.Millisecond)
	}
	return o, nil
}

// validate range-checks the options the way mcopt does at its flag
// boundary, and resolves the cost model.
func (o *RequestOptions) validate(cfg Config) (cost.Model, error) {
	if o.Cost == "" {
		o.Cost = "mc"
	}
	model, err := cost.FromName(o.Cost)
	if err != nil {
		return nil, err
	}
	switch {
	case o.MaxRounds < 0:
		return nil, fmt.Errorf("max_rounds must not be negative, got %d", o.MaxRounds)
	case o.Workers < 0:
		return nil, fmt.Errorf("workers must not be negative, got %d", o.Workers)
	case o.CutSize != 0 && (o.CutSize < 2 || o.CutSize > 6):
		return nil, fmt.Errorf("cut_size must be in 2..6, got %d", o.CutSize)
	case o.DeadlineMS < 0:
		return nil, fmt.Errorf("deadline must not be negative, got %dms", o.DeadlineMS)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers > cfg.MaxRequestWorkers {
		o.Workers = cfg.MaxRequestWorkers
	}
	return model, nil
}

// deadline resolves the request deadline under the configured cap.
func (o RequestOptions) deadline(cfg Config) time.Duration {
	d := time.Duration(o.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = cfg.DefaultDeadline
	}
	if d > cfg.MaxDeadline {
		d = cfg.MaxDeadline
	}
	return d
}

// handleOptimize is POST /v1/optimize: parse, admit, wait for a worker
// slot, optimize under the request deadline, respond.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxPayloadBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	s.met.payloadBytes.Observe(float64(len(body)))

	net, opts, err := s.parseRequest(r, body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	model, err := opts.validate(s.cfg)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission: one CAS claims a queue-or-worker slot; beyond the bound the
	// request is shed immediately — the queue cannot grow without limit.
	if !s.admit() {
		s.met.queueRejects.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "queue full (%d running, %d queued)", s.cfg.Workers, s.cfg.QueueDepth)
		return
	}
	defer s.pending.Add(-1)

	// The deadline covers queue wait plus optimization: a request that
	// queues past its deadline is as dead as one that optimizes past it.
	ctx, cancel := context.WithTimeout(r.Context(), opts.deadline(s.cfg))
	defer cancel()

	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.queueWait.Observe(time.Since(queued).Seconds())
		s.finishCanceled(w, ctx, r)
		return
	}
	s.met.queueWait.Observe(time.Since(queued).Seconds())
	s.running.Add(1)
	s.met.inflight.Inc()
	defer func() {
		s.met.inflight.Dec()
		s.running.Add(-1)
		<-s.sem
	}()

	if s.beforeOptimize != nil {
		s.beforeOptimize()
	}

	// Per-request panic isolation: whatever goes wrong inside this one
	// optimization — an engine bug beyond the per-node containment, a
	// corrupted entry slipping past a check, an encoding failure — is
	// confined to this request. The worker recovers, the caller gets a 500,
	// the daemon keeps serving. The net/http recovery above us would also
	// keep the process alive, but it kills the connection without a
	// response and without a metric.
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			s.logf("server: request aborted by panic: %v", rec)
			s.fail(w, http.StatusInternalServerError, "internal error: request aborted")
		}
	}()
	// Fault-injection point: tests panic here to prove the isolation above
	// (500 for this request, subsequent requests on the same daemon succeed).
	faultinject.Inject(faultinject.PointServerRequest, nil)

	mopts := []mcc.Option{
		mcc.WithDB(s.cfg.DB),
		mcc.WithMetrics(s.cfg.Registry),
		mcc.WithCost(model),
		mcc.WithWorkers(opts.Workers),
		mcc.WithMaxRounds(opts.MaxRounds),
		mcc.WithVerify(opts.Verify),
		mcc.WithZeroGain(opts.ZeroGain),
	}
	if opts.CutSize != 0 {
		mopts = append(mopts, mcc.WithCutSize(opts.CutSize))
	}
	if opts.Incremental != nil {
		mopts = append(mopts, mcc.WithIncremental(*opts.Incremental))
	}
	before := net.CountGates()
	res := mcc.Optimize(ctx, net, mopts...)

	var verr *mcc.VerifyError
	switch {
	case errors.As(res.Err, &verr):
		s.met.verifyFailures.Inc()
		s.fail(w, http.StatusInternalServerError, "verification failed: %v", verr)
		return
	case res.Interrupted:
		s.finishCanceled(w, ctx, r)
		return
	}

	after := res.Network.CountGates()
	rep := Report{
		ANDBefore:         before.And,
		ANDAfter:          after.And,
		XORBefore:         before.Xor,
		XORAfter:          after.Xor,
		ANDDepthBefore:    before.AndDepth,
		ANDDepthAfter:     after.AndDepth,
		Rounds:            len(res.Rounds),
		Converged:         res.Converged,
		Cost:              opts.Cost,
		ClassCacheHitRate: s.cfg.DB.Stats().ClassHitRate(),
		DurationMS:        float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, rd := range res.Rounds {
		rep.Replacements += rd.Replacements
	}
	if d := res.Degraded; d.Total() > 0 {
		rep.Degraded = &DegradedReport{
			RejectedRewrites:          d.RejectedRewrites,
			InvalidEntries:            d.InvalidEntries,
			IncompleteClassifications: d.IncompleteClassifications,
			RecoveredPanics:           d.RecoveredPanics,
			RolledBackRounds:          d.RolledBackRounds,
		}
	}

	s.met.requests.With("200").Inc()
	s.met.duration.Observe(time.Since(start).Seconds())

	// Raw-Bristol callers that ask for text/plain get the bare circuit (easy
	// to diff against mcopt output); everyone else gets the JSON envelope.
	if accept := r.Header.Get("Accept"); strings.HasPrefix(accept, "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-MC-And-Before", strconv.Itoa(rep.ANDBefore))
		w.Header().Set("X-MC-And-After", strconv.Itoa(rep.ANDAfter))
		w.Header().Set("X-MC-And-Depth-After", strconv.Itoa(rep.ANDDepthAfter))
		w.Header().Set("X-MC-Rounds", strconv.Itoa(rep.Rounds))
		if err := res.Network.WriteBristol(w); err != nil {
			s.logf("server: writing bristol response: %v", err)
		}
		return
	}

	resp := OptimizeResponse{Report: rep}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") && isJSONNetworkRequest(body) {
		resp.Network = EncodeNetworkJSON(res.Network)
	} else {
		var b strings.Builder
		if err := res.Network.WriteBristol(&b); err != nil {
			s.fail(w, http.StatusInternalServerError, "encoding response: %v", err)
			return
		}
		resp.Bristol = b.String()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("server: writing response: %v", err)
	}
}

// finishCanceled classifies a context-terminated request: an expired
// deadline is the caller's 504; a vanished client is just counted.
func (s *Server) finishCanceled(w http.ResponseWriter, ctx context.Context, r *http.Request) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil {
		s.met.deadlineExpiry.Inc()
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded")
		return
	}
	s.met.clientCancels.Inc()
	// The client is gone; the status code is bookkeeping only.
	s.met.requests.With("499").Inc()
}

// admit claims one of the Workers+QueueDepth admission slots, or reports
// that the server is saturated.
func (s *Server) admit() bool {
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	for {
		p := s.pending.Load()
		if p >= limit {
			return false
		}
		if s.pending.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// isJSONNetworkRequest reports whether the (already-validated) JSON envelope
// carried a gate-list network rather than Bristol text, to mirror the
// encoding in the response.
func isJSONNetworkRequest(body []byte) bool {
	var probe struct {
		Network json.RawMessage `json:"network"`
	}
	return json.Unmarshal(body, &probe) == nil && len(probe.Network) > 0
}
