package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchItems = 2 })
	valid, err := json.Marshal(OptimizeRequest{Bristol: benchBristol(t, "decoder")})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body any
		want int
		code ErrorCode
	}{
		{"no items", BatchRequest{}, http.StatusBadRequest, CodeInvalidRequest},
		{"empty items", BatchRequest{Items: []json.RawMessage{}}, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown field", map[string]any{"items": []any{}, "mode": "fast"}, http.StatusBadRequest, CodeInvalidRequest},
		{"too many items", BatchRequest{Items: []json.RawMessage{valid, valid, valid}}, http.StatusBadRequest, CodeBatchTooLarge},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/v1/optimize/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != tc.code {
			t.Errorf("%s: error = %s, want code %s", tc.name, body, tc.code)
		}
	}
}

// TestBatchItemIsolation mixes good and bad items: the bad items carry their
// own sync-equivalent status and error while their neighbors succeed.
func TestBatchItemIsolation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	good, err := json.Marshal(OptimizeRequest{Bristol: benchBristol(t, "decoder")})
	if err != nil {
		t.Fatal(err)
	}
	items := []json.RawMessage{
		good,
		json.RawMessage(`{"bristol": "not a circuit"}`),
		json.RawMessage(`{"turbo": true}`),
		good,
	}
	resp, body := postJSON(t, ts, "/v1/optimize/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(br.Items), len(items))
	}
	wantCodes := []ErrorCode{"", CodeInvalidNetwork, CodeUnknownField, ""}
	for i, item := range br.Items {
		if wantCodes[i] == "" {
			if item.Status != http.StatusOK || item.Error != nil || len(item.Result) == 0 {
				t.Errorf("item %d: status %d error %+v, want clean 200", i, item.Status, item.Error)
			}
			continue
		}
		if item.Status != http.StatusBadRequest || item.Error == nil || item.Error.Code != wantCodes[i] {
			t.Errorf("item %d: status %d error %+v, want 400 %s", i, item.Status, item.Error, wantCodes[i])
		}
		if len(item.Result) != 0 {
			t.Errorf("item %d: failed item carries a result", i)
		}
	}
}
