package server

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xag"
)

// randomNetwork builds a random XAG for round-trip checks.
func randomNetwork(rng *rand.Rand, pis, gates, pos int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, pis+gates)
	for i := 0; i < pis; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < gates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < pos; i++ {
		n.AddPO(lits[len(lits)-1-i].NotIf(rng.Intn(2) == 0), "")
	}
	return n
}

func simulateEqual(t *testing.T, a, b *xag.Network, rng *rand.Rand) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface changed: %d/%d PIs, %d/%d POs",
			a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
	}
	in := make([]uint64, a.NumPIs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	wa, wb := a.Simulate(in), b.Simulate(in)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("PO %d differs", i)
		}
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(rng, 5, 30, 3)
		data, err := json.Marshal(EncodeNetworkJSON(n))
		if err != nil {
			t.Fatal(err)
		}
		m, err := DecodeNetworkJSON(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, data)
		}
		simulateEqual(t, n, m, rng)
		ca, cb := n.CountGates(), m.CountGates()
		if ca.And != cb.And || ca.Xor != cb.Xor {
			t.Fatalf("trial %d: gate counts changed: %+v -> %+v", trial, ca, cb)
		}
	}
}

func TestNetworkJSONConstantsAndComplements(t *testing.T) {
	// out0 = NOT(a AND b); out1 = const true; out2 = a. Exercises complement
	// bits on gates and outputs plus wire 0 (constant false).
	src := `{"inputs": 2, "gates": [{"op": "and", "a": 2, "b": 4}], "outputs": [7, 1, 2]}`
	n, err := DecodeNetworkJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		a, b := m&1 == 1, m&2 == 2
		out := n.EvalBools([]bool{a, b})
		if out[0] != !(a && b) || out[1] != true || out[2] != a {
			t.Fatalf("eval(%02b) = %v", m, out)
		}
	}
}

func TestDecodeNetworkJSONErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"not json", "3 6\n3 1 1 1\n1 1\n"},
		{"unknown field", `{"inputs": 1, "gatez": [], "outputs": []}`},
		{"trailing data", `{"inputs": 1, "gates": [], "outputs": [2]}{"inputs": 1}`},
		{"negative inputs", `{"inputs": -1, "gates": [], "outputs": []}`},
		{"implausible inputs", `{"inputs": 1048577, "gates": [], "outputs": []}`},
		{"unknown op", `{"inputs": 2, "gates": [{"op": "NAND", "a": 2, "b": 4}], "outputs": [6]}`},
		{"negative literal", `{"inputs": 2, "gates": [{"op": "AND", "a": -2, "b": 4}], "outputs": [6]}`},
		{"forward reference", `{"inputs": 2, "gates": [{"op": "AND", "a": 8, "b": 4}], "outputs": [6]}`},
		{"output out of range", `{"inputs": 2, "gates": [{"op": "AND", "a": 2, "b": 4}], "outputs": [8]}`},
		{"negative output", `{"inputs": 2, "gates": [{"op": "AND", "a": 2, "b": 4}], "outputs": [-1]}`},
	}
	for _, tc := range cases {
		net, err := DecodeNetworkJSON([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: accepted malformed input (got %d PIs)", tc.name, net.NumPIs())
			continue
		}
		if err.Error() == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

// FuzzDecodeNetworkJSON throws arbitrary bytes at the JSON gate-list decoder
// and checks that every accepted network survives an encode/decode round trip
// unchanged. Seeds include the Bristol fuzz corpus — structured non-JSON
// garbage the decoder must reject without panicking.
func FuzzDecodeNetworkJSON(f *testing.F) {
	f.Add([]byte(`{"inputs": 2, "gates": [{"op": "AND", "a": 2, "b": 4}], "outputs": [6]}`))
	f.Add([]byte(`{"inputs": 3, "gates": [{"op": "xor", "a": 2, "b": 5}, {"op": "AND", "a": 8, "b": 6}], "outputs": [11, 0]}`))
	f.Add([]byte(`{"inputs": 0, "gates": [], "outputs": [0, 1]}`))
	f.Add([]byte(`{"inputs": 2, "gates": [{"op": "AND", "a": 99, "b": 4}], "outputs": [6]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"inputs": 1e9}`))
	// Bristol corpus: valid and near-valid circuits in the *other* wire
	// format, which must never be mistaken for a gate list.
	seeds, _ := filepath.Glob(filepath.Join("..", "xag", "testdata", "fuzz", "FuzzReadBristol", "*"))
	for _, path := range seeds {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNetworkJSON(data)
		if err != nil {
			return
		}
		// Accepted input: the network must re-encode to a decodable,
		// simulation-identical gate list.
		out, err := json.Marshal(EncodeNetworkJSON(n))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		m, err := DecodeNetworkJSON(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nfirst: %q\nre-encoded: %s", err, data, out)
		}
		if m.NumPIs() != n.NumPIs() || m.NumPOs() != n.NumPOs() {
			t.Fatalf("interface changed across round trip")
		}
		in := make([]uint64, n.NumPIs())
		for i := range in {
			in[i] = 0xA5A5_5A5A_F00F_0FF0 * uint64(i+1)
		}
		wa, wb := n.Simulate(in), m.Simulate(in)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("PO %d differs after round trip", i)
			}
		}
	})
}
