package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"repro/internal/mcdb"
)

// TestCacheHitByteIdentity is the tentpole acceptance check: a repeated
// identical POST /v1/optimize is served from the cache — byte-identical
// body, X-MC-Cache: hit, the hit counter increments, and no new engine run
// or rewriting round happens.
func TestCacheHitByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, nil)
	circuit := benchBristol(t, "decoder")

	// Use the JSON envelope so no Deprecation header muddies the comparison.
	resp1, body1 := postJSON(t, ts, "/v1/optimize", OptimizeRequest{Bristol: circuit})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-MC-Cache"); got != "miss" {
		t.Fatalf("first request X-MC-Cache = %q, want miss", got)
	}
	runsAfterFirst := metricValue(t, s, "mcc_runs_total")
	roundsAfterFirst := metricValue(t, s, "mcc_rounds_total")

	resp2, body2 := postJSON(t, ts, "/v1/optimize", OptimizeRequest{Bristol: circuit})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-MC-Cache"); got != "hit" {
		t.Fatalf("second request X-MC-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit body differs from miss body:\n%s\nvs\n%s", body1, body2)
	}
	if got := metricValue(t, s, "mcserved_cache_hits_total"); got != 1 {
		t.Errorf("mcserved_cache_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, s, "mcserved_cache_misses_total"); got < 1 {
		t.Errorf("mcserved_cache_misses_total = %v, want >= 1", got)
	}
	if got := metricValue(t, s, "mcc_runs_total"); got != runsAfterFirst {
		t.Errorf("cache hit started a new engine run: mcc_runs_total %v -> %v", runsAfterFirst, got)
	}
	if got := metricValue(t, s, "mcc_rounds_total"); got != roundsAfterFirst {
		t.Errorf("cache hit executed engine rounds: mcc_rounds_total %v -> %v", roundsAfterFirst, got)
	}
	if got := metricValue(t, s, "mcserved_cache_hit_rate"); got <= 0 || got > 1 {
		t.Errorf("mcserved_cache_hit_rate = %v, want in (0, 1]", got)
	}

	// Text responses are served from the same frozen result.
	respT, bodyT := postBristol(t, ts, circuit, "", map[string]string{"Accept": "text/plain"})
	if respT.StatusCode != http.StatusOK {
		t.Fatalf("text request: %d: %s", respT.StatusCode, bodyT)
	}
	if got := respT.Header.Get("X-MC-Cache"); got != "hit" {
		t.Errorf("text request X-MC-Cache = %q, want hit", got)
	}
	var jr struct {
		Bristol string `json:"bristol"`
	}
	if err := json.Unmarshal(body1, &jr); err != nil {
		t.Fatal(err)
	}
	if string(bodyT) != jr.Bristol {
		t.Error("text/plain body differs from the bristol field of the JSON body")
	}
}

// TestCacheKeyRespectsOptions checks that requests differing in an
// engine-visible option do not share a cache entry, while options that
// cannot change the output (workers, deadline) do.
func TestCacheKeyRespectsOptions(t *testing.T) {
	s, ts := newTestServer(t, nil)
	circuit := benchBristol(t, "decoder")

	post := func(o RequestOptions) string {
		t.Helper()
		resp, body := postJSON(t, ts, "/v1/optimize", OptimizeRequest{Bristol: circuit, Options: o})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-MC-Cache")
	}

	if got := post(RequestOptions{MaxRounds: 1}); got != "miss" {
		t.Fatalf("rounds=1: X-MC-Cache = %q, want miss", got)
	}
	if got := post(RequestOptions{MaxRounds: 2}); got != "miss" {
		t.Errorf("rounds=2 shares the rounds=1 entry: X-MC-Cache = %q, want miss", got)
	}
	// workers and deadline are excluded from the key: the engine's output is
	// byte-identical across worker counts, and the deadline only bounds
	// latency.
	if got := post(RequestOptions{MaxRounds: 2, Workers: 3, DeadlineMS: 60000}); got != "hit" {
		t.Errorf("workers/deadline variant missed: X-MC-Cache = %q, want hit", got)
	}
	if got := metricValue(t, s, "mcserved_cache_misses_total"); got != 2 {
		t.Errorf("mcserved_cache_misses_total = %v, want 2", got)
	}
}

// TestCacheDisabled proves CacheEntries < 0 switches the cache off: every
// request computes and reports a miss.
func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.CacheEntries = -1 })
	if s.Cache() != nil {
		t.Fatal("cache present despite CacheEntries < 0")
	}
	circuit := benchBristol(t, "decoder")
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts, "/v1/optimize", OptimizeRequest{Bristol: circuit})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-MC-Cache"); got != "miss" {
			t.Errorf("request %d: X-MC-Cache = %q, want miss", i, got)
		}
	}
	if got := metricValue(t, s, "mcc_runs_total"); got != 2 {
		t.Errorf("mcc_runs_total = %v, want 2 (no caching)", got)
	}
}

// TestBatchMatchesSyncBytes submits a two-item batch and checks each item's
// result carries exactly the bytes the equivalent sync request returns, and
// that a repeated batch is served entirely from cache.
func TestBatchMatchesSyncBytes(t *testing.T) {
	_, ts := newTestServer(t, nil)
	dec := benchBristol(t, "decoder")
	add := benchBristol(t, "adder-32")

	syncBody := func(env OptimizeRequest) []byte {
		t.Helper()
		resp, body := postJSON(t, ts, "/v1/optimize", env)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sync optimize: %d: %s", resp.StatusCode, body)
		}
		return body
	}
	envs := []OptimizeRequest{
		{Bristol: dec},
		{Bristol: add, Options: RequestOptions{MaxRounds: 1}},
	}
	want := [][]byte{syncBody(envs[0]), syncBody(envs[1])}

	items := make([]json.RawMessage, len(envs))
	for i, env := range envs {
		b, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = b
	}
	resp, body := postJSON(t, ts, "/v1/optimize/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch response: %v\n%s", err, body)
	}
	if len(br.Items) != len(envs) {
		t.Fatalf("batch returned %d items, want %d", len(br.Items), len(envs))
	}
	for i, item := range br.Items {
		if item.Status != http.StatusOK || item.Error != nil {
			t.Fatalf("item %d: status %d, error %+v", i, item.Status, item.Error)
		}
		if item.Cache != "hit" {
			t.Errorf("item %d: cache %q, want hit (sync requests warmed it)", i, item.Cache)
		}
		// The sync body ends in the newline the handler writes; the batch
		// wire format embeds the same bytes as a JSON value without it.
		if got := append(bytes.Clone(item.Result), '\n'); !bytes.Equal(got, want[i]) {
			t.Errorf("item %d result differs from sync body:\n%s\nvs\n%s", i, item.Result, want[i])
		}
	}
}

// TestJobMatchesSyncBytes runs the same envelope sync and as an async job
// and checks the polled result carries the exact sync body bytes.
func TestJobMatchesSyncBytes(t *testing.T) {
	_, ts := newTestServer(t, nil)
	env := OptimizeRequest{Bristol: benchBristol(t, "decoder")}

	respS, syncBody := postJSON(t, ts, "/v1/optimize", env)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("sync optimize: %d: %s", respS.StatusCode, syncBody)
	}

	resp, body := postJSON(t, ts, "/v1/jobs", env)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: %d: %s", resp.StatusCode, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	jr := pollJob(t, ts, sub.Job.ID, JobDone)
	if jr.Error != nil {
		t.Fatalf("job failed: %+v", jr.Error)
	}
	if jr.Job.Cache != "hit" {
		t.Errorf("job cache %q, want hit (sync request warmed it)", jr.Job.Cache)
	}
	if got := append(bytes.Clone(jr.Result), '\n'); !bytes.Equal(got, syncBody) {
		t.Errorf("job result differs from sync body:\n%s\nvs\n%s", jr.Result, syncBody)
	}
}

// TestCachePersistsAcrossRestart drives the durability path end to end:
// admin snapshot persists the cache next to the store, and a second server
// over the same directory serves the same request as a hit without a single
// engine run.
func TestCachePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	circuit := benchBristol(t, "decoder")
	env := OptimizeRequest{Bristol: circuit}

	db1 := mcdb.New(mcdb.Options{})
	store1, _, err := mcdb.OpenStore(dir, db1)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, func(c *Config) {
		c.DB = db1
		c.Store = store1
	})
	resp, body1 := postJSON(t, ts1, "/v1/optimize", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d: %s", resp.StatusCode, body1)
	}

	// Admin snapshot persists both the store and the result cache.
	resp, body := postJSON(t, ts1, "/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d: %s", resp.StatusCode, body)
	}
	var snap SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheEntries != 1 {
		t.Fatalf("snapshot persisted %d cache entries, want 1", snap.CacheEntries)
	}
	if _, err := os.Stat(s1.CacheSnapshotPath()); err != nil {
		t.Fatalf("cache snapshot file missing: %v", err)
	}
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh server over the same directory loads the cache and
	// serves the same request without computing.
	db2 := mcdb.New(mcdb.Options{})
	store2, _, err := mcdb.OpenStore(dir, db2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	s2, ts2 := newTestServer(t, func(c *Config) {
		c.DB = db2
		c.Store = store2
	})
	rep, err := s2.LoadCache()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Quarantined != 0 {
		t.Fatalf("cache load = %+v, want 1 loaded clean", rep)
	}

	resp, body2 := postJSON(t, ts2, "/v1/optimize", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize after restart: %d: %s", resp.StatusCode, body2)
	}
	if got := resp.Header.Get("X-MC-Cache"); got != "hit" {
		t.Fatalf("request after restart: X-MC-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("body after restart differs:\n%s\nvs\n%s", body1, body2)
	}
	// The engine never ran on the restarted server: no miss was recorded
	// (and mcc_* counters were never even registered).
	if got := metricValue(t, s2, "mcserved_cache_misses_total"); got != 0 {
		t.Errorf("restarted server recorded %v cache misses for a persisted result", got)
	}
	if got := metricValue(t, s2, "mcserved_cache_hits_total"); got != 1 {
		t.Errorf("mcserved_cache_hits_total = %v after restart, want 1", got)
	}
}
