package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/tt"
)

// TestPanicIsolation proves the per-request recover: a panic injected into
// one request yields a 500 and a metric bump, and the same daemon serves the
// next request normally.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, nil)
	circuit := benchBristol(t, "decoder")

	faultinject.Set(faultinject.PointServerRequest, faultinject.PanicHook("injected request panic"))
	resp, body := postBristol(t, ts, circuit, "", nil)
	faultinject.Clear(faultinject.PointServerRequest)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: got %d, want 500\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "request aborted") {
		t.Fatalf("panicking request body: %s", body)
	}
	if got := metricValue(t, s, "mcserved_panics_total"); got != 1 {
		t.Fatalf("mcserved_panics_total = %v, want 1", got)
	}

	// The daemon keeps serving: same process, same handler, clean request.
	resp2, body2 := postBristol(t, ts, circuit, "", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: got %d, want 200\n%s", resp2.StatusCode, body2)
	}
	if got := metricValue(t, s, "mcserved_panics_total"); got != 1 {
		t.Fatalf("clean request bumped mcserved_panics_total to %v", got)
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, v any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, body.Bytes()
}

func TestAdminSnapshotRequiresStore(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts, "/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("snapshot without store: got %d, want 412\n%s", resp.StatusCode, body)
	}
}

func TestAdminSnapshotAndDBInfo(t *testing.T) {
	dir := t.TempDir()
	db := mcdb.New(mcdb.Options{})
	store, _, err := mcdb.OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.DB = db
		cfg.Store = store
	})

	// One real optimization populates the database through the service path.
	if resp, body := postBristol(t, ts, benchBristol(t, "decoder"), "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: got %d\n%s", resp.StatusCode, body)
	}

	resp, body := postJSON(t, ts, "/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: got %d\n%s", resp.StatusCode, body)
	}
	var snap SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot response: %v\n%s", err, body)
	}
	if snap.Entries != db.NumEntries() || snap.Entries == 0 {
		t.Fatalf("snapshot reported %d entries, DB has %d", snap.Entries, db.NumEntries())
	}
	if _, err := os.Stat(filepath.Join(dir, mcdb.SnapshotName)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	resp, body = postJSON(t, ts, "/admin/dbinfo", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST dbinfo: got %d, want 405", resp.StatusCode)
	}
	getResp, err := ts.Client().Get(ts.URL + "/admin/dbinfo")
	if err != nil {
		t.Fatal(err)
	}
	var info DBInfoResponse
	err = json.NewDecoder(getResp.Body).Decode(&info)
	getResp.Body.Close()
	if err != nil || getResp.StatusCode != http.StatusOK {
		t.Fatalf("dbinfo: %d, %v", getResp.StatusCode, err)
	}
	if info.Entries != db.NumEntries() || info.Store == nil || info.Store.Snapshots != 1 {
		t.Fatalf("dbinfo = %+v, want %d entries and 1 snapshot", info, db.NumEntries())
	}
	if got := metricValue(t, s, "mcdb_snapshots_total"); got != 1 {
		t.Fatalf("mcdb_snapshots_total = %v, want 1", got)
	}
}

func TestAdminReload(t *testing.T) {
	// A donor database saves a snapshot that a running server then merges.
	donor := mcdb.New(mcdb.Options{})
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 12; i++ {
		donor.Lookup(tt.New(rng.Uint64(), 1+rng.Intn(5)))
	}
	path := filepath.Join(t.TempDir(), "donor.snap")
	n, err := donor.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts, "/admin/reload", ReloadRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: got %d\n%s", resp.StatusCode, body)
	}
	var rep ReloadResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != n || rep.Quarantined != 0 {
		t.Fatalf("reload = %+v, want %d loaded clean", rep, n)
	}
	if s.DB().NumEntries() != n {
		t.Fatalf("live DB has %d entries after reload, want %d", s.DB().NumEntries(), n)
	}

	// Missing file is the caller's 404.
	resp, _ = postJSON(t, ts, "/admin/reload", ReloadRequest{Path: path + ".nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload missing file: got %d, want 404", resp.StatusCode)
	}

	// An unreadable file is rejected wholesale without touching the live DB.
	junk := filepath.Join(t.TempDir(), "junk.snap")
	if err := os.WriteFile(junk, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts, "/admin/reload", ReloadRequest{Path: junk})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("reload junk: got %d, want 422\n%s", resp.StatusCode, body)
	}
	if s.DB().NumEntries() != n {
		t.Fatalf("failed reload changed the live DB: %d entries, want %d", s.DB().NumEntries(), n)
	}

	// Bad request bodies.
	resp, _ = postJSON(t, ts, "/admin/reload", ReloadRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload empty path: got %d, want 400", resp.StatusCode)
	}
}
