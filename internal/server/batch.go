package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// Batch serving. POST /v1/optimize/batch takes an array of the same
// envelopes POST /v1/optimize takes, runs them in order, and reports
// per-item status — one malformed or shed item never fails its neighbors.
// Each item passes through the same decoder, cache, admission accounting,
// and deadline handling as a sync request, and a successful item's "result"
// carries byte-for-byte the JSON body a sync request for that envelope
// would have returned. Items run sequentially on the submitting
// connection: the worker pool provides cross-request parallelism, and a
// deliberately simple in-order loop keeps one batch from monopolizing it —
// fleet callers that want parallelism submit jobs.

// BatchRequest is the body of POST /v1/optimize/batch.
type BatchRequest struct {
	// Items are optimize envelopes, each with its own network and options.
	Items []json.RawMessage `json:"items"`
}

// BatchItemResult is one item's outcome. Exactly one of Result and Error is
// set.
type BatchItemResult struct {
	// Status is the HTTP status this item would have received as a sync
	// request.
	Status int `json:"status"`
	// Cache is the cache outcome (miss, hit, coalesced) of a 200 item.
	Cache string `json:"cache,omitempty"`
	// Result is the exact sync-response JSON body for this envelope.
	Result json.RawMessage `json:"result,omitempty"`
	Error  *ErrorBody      `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/optimize/batch. Items line up
// index-for-index with the request.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// handleBatch is POST /v1/optimize/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.failf(w, http.StatusServiceUnavailable, CodeDraining, "", "server is draining")
		return
	}
	body, apiErr := s.readBody(w, r)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failf(w, http.StatusBadRequest, CodeInvalidRequest, "", "request json: %v", err)
		return
	}
	if len(req.Items) == 0 {
		s.failf(w, http.StatusBadRequest, CodeInvalidRequest, "items", "batch needs at least one item")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.failf(w, http.StatusBadRequest, CodeBatchTooLarge, "items",
			"batch of %d items exceeds the limit of %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}

	resp := BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	for i, raw := range req.Items {
		resp.Items[i] = s.runBatchItem(r.Context(), raw)
		if r.Context().Err() != nil {
			// The client is gone; finish bookkeeping but stop burning
			// workers on remaining items.
			s.met.clientCancels.Inc()
			s.met.requests.With("499").Inc()
			return
		}
	}

	w.Header().Set("Content-Type", "application/json")
	s.met.requests.With("200").Inc()
	s.met.duration.Observe(time.Since(start).Seconds())
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("server: writing batch response: %v", err)
	}
}

// runBatchItem runs one envelope through decode → cache → compute with
// per-item deadline and panic isolation, mapping the outcome to the status
// a sync request would have gotten.
func (s *Server) runBatchItem(reqCtx context.Context, raw json.RawMessage) (item BatchItemResult) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			s.logf("server: batch item aborted by panic: %v", rec)
			item = BatchItemResult{
				Status: http.StatusInternalServerError,
				Error:  &ErrorBody{Code: CodeInternal, Message: "internal error: request aborted"},
			}
		}
	}()

	dr, apiErr := s.decodeEnvelope(raw)
	if apiErr != nil {
		return BatchItemResult{Status: apiErr.status, Error: &apiErr.body}
	}
	ctx, cancel := context.WithTimeout(reqCtx, dr.opts.deadline(s.cfg))
	defer cancel()

	res, out, err := s.optimizeOne(ctx, dr, false)
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return BatchItemResult{Status: ae.status, Error: &ae.body}
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && reqCtx.Err() == nil {
			s.met.deadlineExpiry.Inc()
			return BatchItemResult{
				Status: http.StatusGatewayTimeout,
				Error:  &ErrorBody{Code: CodeDeadlineExceeded, Message: "deadline exceeded"},
			}
		}
		return BatchItemResult{
			Status: 499,
			Error:  &ErrorBody{Code: CodeInternal, Message: "client canceled"},
		}
	}
	return BatchItemResult{
		Status: http.StatusOK,
		Cache:  out.String(),
		Result: renderJSONBody(res, dr.wantNetJSON),
	}
}
