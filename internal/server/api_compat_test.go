package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// API-compat fixtures. Each file under testdata/api is one recorded
// request/expectation pair replayed against a fresh server; CI runs the set
// as its api-compat job. Fixtures pin the externally observable contract —
// status codes, error codes, headers, response shape — not engine output,
// so they stay golden across optimizer improvements.
type apiFixture struct {
	Request struct {
		Method      string `json:"method"`
		Path        string `json:"path"`
		ContentType string `json:"content_type,omitempty"`
		Accept      string `json:"accept,omitempty"`
		// Body is the literal request body. BenchBody instead sends the
		// Bristol text of the named benchmark circuit; EnvelopeBench wraps
		// that text in a {"bristol": ...} JSON envelope.
		Body          string `json:"body,omitempty"`
		BenchBody     string `json:"bench_body,omitempty"`
		EnvelopeBench string `json:"envelope_bench,omitempty"`
	} `json:"request"`
	Want struct {
		Status     int       `json:"status"`
		ErrorCode  ErrorCode `json:"error_code,omitempty"`
		ErrorField string    `json:"error_field,omitempty"`
		// Headers maps header name to expected value; "*" asserts presence
		// with any value.
		Headers map[string]string `json:"headers,omitempty"`
		// JSONKeys are top-level keys the response object must contain.
		JSONKeys []string `json:"json_keys,omitempty"`
		// BodyContains are substrings the raw body must contain.
		BodyContains []string `json:"body_contains,omitempty"`
	} `json:"want"`
}

func TestAPICompatFixtures(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "api", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no api fixtures under testdata/api")
	}
	_, ts := newTestServer(t, nil)

	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			dec := json.NewDecoder(strings.NewReader(string(raw)))
			dec.DisallowUnknownFields()
			var fx apiFixture
			if err := dec.Decode(&fx); err != nil {
				t.Fatalf("fixture %s: %v", path, err)
			}

			body := fx.Request.Body
			switch {
			case fx.Request.BenchBody != "":
				body = benchBristol(t, fx.Request.BenchBody)
			case fx.Request.EnvelopeBench != "":
				b, err := json.Marshal(OptimizeRequest{Bristol: benchBristol(t, fx.Request.EnvelopeBench)})
				if err != nil {
					t.Fatal(err)
				}
				body = string(b)
			}
			req, err := http.NewRequest(fx.Request.Method, ts.URL+fx.Request.Path, strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if fx.Request.ContentType != "" {
				req.Header.Set("Content-Type", fx.Request.ContentType)
			}
			if fx.Request.Accept != "" {
				req.Header.Set("Accept", fx.Request.Accept)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(resp.Body)
			resp.Body.Close()

			if resp.StatusCode != fx.Want.Status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, fx.Want.Status, got)
			}
			for name, want := range fx.Want.Headers {
				v := resp.Header.Get(name)
				if want == "*" && v == "" {
					t.Errorf("header %s missing", name)
				} else if want != "*" && v != want {
					t.Errorf("header %s = %q, want %q", name, v, want)
				}
			}
			if fx.Want.ErrorCode != "" {
				var er errorResponse
				if err := json.Unmarshal(got, &er); err != nil {
					t.Fatalf("error body not JSON: %v: %s", err, got)
				}
				if er.Error.Code != fx.Want.ErrorCode || er.Error.Field != fx.Want.ErrorField {
					t.Errorf("error = %+v, want code %s field %q", er.Error, fx.Want.ErrorCode, fx.Want.ErrorField)
				}
				if er.Error.Message == "" {
					t.Error("error without message")
				}
			}
			if len(fx.Want.JSONKeys) > 0 {
				var obj map[string]json.RawMessage
				if err := json.Unmarshal(got, &obj); err != nil {
					t.Fatalf("body not a JSON object: %v: %s", err, got)
				}
				for _, k := range fx.Want.JSONKeys {
					if _, ok := obj[k]; !ok {
						t.Errorf("response missing key %q: %s", k, got)
					}
				}
			}
			for _, sub := range fx.Want.BodyContains {
				if !strings.Contains(string(got), sub) {
					t.Errorf("body does not contain %q: %s", sub, got)
				}
			}
		})
	}
}
