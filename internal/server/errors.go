package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Error taxonomy. Every v1 and admin endpoint fails with one JSON shape:
//
//	{"error":{"code":"queue_full","message":"...","field":"..."}}
//
// The code is the machine-readable contract — clients branch on it, not on
// message text — and field names the request field (or query parameter)
// that caused a validation failure. API.md documents every code with its
// HTTP status.

// ErrorCode enumerates the machine-readable failure codes.
type ErrorCode string

const (
	// CodeInvalidRequest: the body is not a decodable request at all
	// (malformed JSON, missing network, both encodings at once).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeUnknownField: the request carries a field or query parameter the
	// schema does not define. Rejected rather than ignored so typos fail
	// loudly instead of silently running with defaults.
	CodeUnknownField ErrorCode = "unknown_field"
	// CodeInvalidOption: a recognized option has an out-of-range or
	// unparsable value; "field" says which.
	CodeInvalidOption ErrorCode = "invalid_option"
	// CodeInvalidNetwork: the circuit itself does not parse or validate.
	CodeInvalidNetwork ErrorCode = "invalid_network"
	// CodePayloadTooLarge: the body exceeds Config.MaxPayloadBytes.
	CodePayloadTooLarge ErrorCode = "payload_too_large"
	// CodeBatchTooLarge: more batch items than Config.MaxBatchItems.
	CodeBatchTooLarge ErrorCode = "batch_too_large"
	// CodeQueueFull: admission shed the request (or job table full);
	// retryable, see Retry-After.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDeadlineExceeded: the request deadline expired while queued or
	// optimizing.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeVerifyFailed: the verification miter rejected the result; nothing
	// unsound was returned.
	CodeVerifyFailed ErrorCode = "verify_failed"
	// CodeDraining: the server is shutting down and admits no new work.
	CodeDraining ErrorCode = "draining"
	// CodeJobNotFound: no job with that id (unknown, expired, or evicted).
	CodeJobNotFound ErrorCode = "job_not_found"
	// CodeStoreNotConfigured: an admin durability endpoint was called on a
	// daemon running without -data-dir.
	CodeStoreNotConfigured ErrorCode = "store_not_configured"
	// CodeSnapshotNotFound: admin reload pointed at a missing file.
	CodeSnapshotNotFound ErrorCode = "snapshot_not_found"
	// CodeSnapshotUnreadable: admin reload pointed at a file whose header
	// cannot be trusted.
	CodeSnapshotUnreadable ErrorCode = "snapshot_unreadable"
	// CodeRefineBusy: a refinement pass is already running; retry later.
	CodeRefineBusy ErrorCode = "refine_busy"
	// CodeInternal: a server-side failure; the message is diagnostic only.
	CodeInternal ErrorCode = "internal"
)

// ErrorBody is the wire form of one error.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Field   string    `json:"field,omitempty"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// apiError threads (status, code, field, message) through internal return
// paths; it satisfies error so it can cross the cache's singleflight
// boundary intact.
type apiError struct {
	status int
	body   ErrorBody
}

func (e *apiError) Error() string { return string(e.body.Code) + ": " + e.body.Message }

// errf builds an apiError. field may be "" for errors not tied to one field.
func errf(status int, code ErrorCode, field, format string, args ...any) *apiError {
	return &apiError{
		status: status,
		body:   ErrorBody{Code: code, Message: fmt.Sprintf(format, args...), Field: field},
	}
}

// fail counts and writes one structured error response.
func (s *Server) fail(w http.ResponseWriter, e *apiError) {
	s.met.requests.With(strconv.Itoa(e.status)).Inc()
	if e.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: e.body})
}

// failf is fail with an inline errf.
func (s *Server) failf(w http.ResponseWriter, status int, code ErrorCode, field, format string, args ...any) {
	s.fail(w, errf(status, code, field, format, args...))
}
