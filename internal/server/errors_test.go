package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// allErrorCodes is the complete taxonomy. TestErrorTaxonomy renders every
// code through the shared failure writer; adding a code without extending
// this table fails the test.
var allErrorCodes = []struct {
	code   ErrorCode
	status int
	field  string
}{
	{CodeInvalidRequest, http.StatusBadRequest, ""},
	{CodeUnknownField, http.StatusBadRequest, "turbo"},
	{CodeInvalidOption, http.StatusBadRequest, "cost"},
	{CodeInvalidNetwork, http.StatusBadRequest, "bristol"},
	{CodePayloadTooLarge, http.StatusRequestEntityTooLarge, ""},
	{CodeBatchTooLarge, http.StatusBadRequest, "items"},
	{CodeQueueFull, http.StatusTooManyRequests, ""},
	{CodeDeadlineExceeded, http.StatusGatewayTimeout, ""},
	{CodeVerifyFailed, http.StatusInternalServerError, ""},
	{CodeDraining, http.StatusServiceUnavailable, ""},
	{CodeJobNotFound, http.StatusNotFound, ""},
	{CodeStoreNotConfigured, http.StatusPreconditionFailed, ""},
	{CodeSnapshotNotFound, http.StatusNotFound, "path"},
	{CodeSnapshotUnreadable, http.StatusUnprocessableEntity, "path"},
	{CodeInternal, http.StatusInternalServerError, ""},
}

// TestErrorTaxonomy checks that every declared error code renders as the
// machine-readable {"error":{"code","message","field"}} envelope with the
// right status, and that 429s carry Retry-After.
func TestErrorTaxonomy(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for _, tc := range allErrorCodes {
		rec := httptest.NewRecorder()
		s.fail(rec, errf(tc.status, tc.code, tc.field, "synthetic %s", tc.code))

		if rec.Code != tc.status {
			t.Errorf("%s: wrote status %d, want %d", tc.code, rec.Code, tc.status)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.code, ct)
		}
		if tc.status == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", tc.code)
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: body not JSON: %v: %s", tc.code, err, rec.Body)
			continue
		}
		if er.Error.Code != tc.code || er.Error.Message == "" || er.Error.Field != tc.field {
			t.Errorf("%s: rendered %+v, want code %s field %q and a message", tc.code, er.Error, tc.code, tc.field)
		}
	}
}

// TestErrorTaxonomyLive drives each externally-reachable code through a real
// HTTP request, so the mapping from condition to code is pinned end to end.
// (queue_full, deadline_exceeded, verify_failed, and internal are exercised
// by TestQueueFullSheds, TestDeadlineExpiresCleanly, and TestPanicIsolation;
// snapshot codes by TestAdminReload.)
func TestErrorTaxonomyLive(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxBatchItems = 1 })
	circuit := benchBristol(t, "decoder")

	check := func(name string, resp *http.Response, body []byte, status int, code ErrorCode) {
		t.Helper()
		if resp.StatusCode != status {
			t.Errorf("%s: status %d, want %d: %s", name, resp.StatusCode, status, body)
			return
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != code {
			t.Errorf("%s: body %s, want code %s", name, body, code)
		}
	}

	resp, body := postBristol(t, ts, "junk", "", nil)
	check("invalid_network", resp, body, http.StatusBadRequest, CodeInvalidNetwork)

	resp, body = postBristol(t, ts, circuit, "?nope=1", nil)
	check("unknown_field", resp, body, http.StatusBadRequest, CodeUnknownField)

	resp, body = postBristol(t, ts, circuit, "?cost=wat", nil)
	check("invalid_option", resp, body, http.StatusBadRequest, CodeInvalidOption)

	resp, body = postJSON(t, ts, "/v1/optimize", map[string]any{})
	check("invalid_request", resp, body, http.StatusBadRequest, CodeInvalidRequest)

	two, _ := json.Marshal(OptimizeRequest{Bristol: circuit})
	resp, body = postJSON(t, ts, "/v1/optimize/batch", BatchRequest{Items: []json.RawMessage{two, two}})
	check("batch_too_large", resp, body, http.StatusBadRequest, CodeBatchTooLarge)

	getResp, err := ts.Client().Get(ts.URL + "/v1/jobs/missing")
	if err != nil {
		t.Fatal(err)
	}
	gBody, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	check("job_not_found", getResp, gBody, http.StatusNotFound, CodeJobNotFound)

	resp, body = postJSON(t, ts, "/admin/snapshot", struct{}{})
	check("store_not_configured", resp, body, http.StatusPreconditionFailed, CodeStoreNotConfigured)

	s.draining.Store(true)
	resp, body = postBristol(t, ts, circuit, "", nil)
	check("draining", resp, body, http.StatusServiceUnavailable, CodeDraining)
	s.draining.Store(false)
}
