package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/rescache"
	"repro/internal/xag"
)

// Content addressing for requests. The cache key covers exactly what can
// change the result bytes: the canonical network structure
// (xag.CanonicalHash) and every result-affecting effective option. Two
// options are deliberately excluded:
//
//   - workers: the engine's output is byte-identical across worker counts
//     (pinned since PR 2 and re-pinned by the golden suite), so parallelism
//     is an execution detail, not part of the result's identity;
//   - deadline: it decides whether a result is produced, never which one.
//
// Cost model and the remaining options are folded in normalized to their
// effective values (cut_size 0 → 6, incremental nil → true), so "defaults
// spelled out" and "defaults omitted" address the same entry.

// cacheKeyMagic domain-separates request keys from bare network hashes.
var cacheKeyMagic = [8]byte{'M', 'C', 'R', 'E', 'Q', 'K', '0', '1'}

func cacheKey(net *xag.Network, o RequestOptions) rescache.Key {
	nh := net.CanonicalHash()
	h := sha256.New()
	h.Write(cacheKeyMagic[:])
	h.Write(nh[:])
	h.Write([]byte(o.Cost))
	var b [7]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(o.MaxRounds))
	cut := o.CutSize
	if cut == 0 {
		cut = 6
	}
	b[4] = byte(cut)
	var flags byte
	if o.Verify {
		flags |= 1
	}
	if o.ZeroGain {
		flags |= 2
	}
	if o.Incremental == nil || *o.Incremental {
		flags |= 4
	}
	// sequential_commit is deliberately part of the key even though both
	// arms produce byte-identical networks: the option exists to bisect
	// suspected determinism bugs, and serving its result from the other
	// arm's cache entry would make the comparison vacuous.
	if o.SequentialCommit {
		flags |= 8
	}
	b[5] = flags
	b[6] = 0 // reserved
	h.Write(b[:])
	var k rescache.Key
	h.Sum(k[:0])
	return k
}

// buildResult freezes one finished optimization into the fully-rendered
// form the cache stores: report JSON, Bristol text, and the dense JSON gate
// list, plus the ints the text/plain headers need. Every response a hit can
// produce is rendered here, once, from the live network — hits never
// re-encode anything, which is what makes them byte-identical to the cold
// response by construction.
func buildResult(rep Report, net *xag.Network) (*rescache.Result, error) {
	repJSON, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("encoding report: %w", err)
	}
	var bristol bytes.Buffer
	if err := net.WriteBristol(&bristol); err != nil {
		return nil, fmt.Errorf("encoding bristol: %w", err)
	}
	netJSON, err := json.Marshal(EncodeNetworkJSON(net))
	if err != nil {
		return nil, fmt.Errorf("encoding network json: %w", err)
	}
	return &rescache.Result{
		Report:        repJSON,
		Bristol:       bristol.Bytes(),
		NetJSON:       netJSON,
		ANDBefore:     rep.ANDBefore,
		ANDAfter:      rep.ANDAfter,
		ANDDepthAfter: rep.ANDDepthAfter,
		Rounds:        rep.Rounds,
	}, nil
}

// renderJSONBody assembles the response body from a frozen result. Batch
// items and finished jobs embed exactly these bytes, so the item-by-item
// byte-identity guarantee holds across all three surfaces. The trailing
// newline matches json.Encoder framing.
func renderJSONBody(res *rescache.Result, wantNetJSON bool) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"report":`)
	buf.Write(res.Report)
	if wantNetJSON {
		buf.WriteString(`,"network":`)
		buf.Write(res.NetJSON)
	} else {
		buf.WriteString(`,"bristol":`)
		b, _ := json.Marshal(string(res.Bristol)) // a string never fails to marshal
		buf.Write(b)
	}
	buf.WriteString("}\n")
	return buf.Bytes()
}

// writeOptimizeResponse writes the 200 response for one result, honoring
// the caller's Accept preference and tagging cache provenance.
func (s *Server) writeOptimizeResponse(w http.ResponseWriter, r *http.Request, res *rescache.Result, dr *decodedRequest, out rescache.Outcome) {
	w.Header().Set("X-MC-Cache", out.String())
	if dr.deprecated {
		w.Header().Set("Deprecation", "true")
		s.deprecationOnce.Do(func() {
			s.logf("server: query-string options are deprecated; send a JSON envelope (see API.md)")
		})
	}
	s.met.requests.With("200").Inc()

	if accept := r.Header.Get("Accept"); len(accept) >= 10 && accept[:10] == "text/plain" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-MC-And-Before", strconv.Itoa(res.ANDBefore))
		w.Header().Set("X-MC-And-After", strconv.Itoa(res.ANDAfter))
		w.Header().Set("X-MC-And-Depth-After", strconv.Itoa(res.ANDDepthAfter))
		w.Header().Set("X-MC-Rounds", strconv.Itoa(res.Rounds))
		if _, err := w.Write(res.Bristol); err != nil {
			s.logf("server: writing bristol response: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(renderJSONBody(res, dr.wantNetJSON)); err != nil {
		s.logf("server: writing response: %v", err)
	}
}
