package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"os"
	"time"

	"repro/internal/mcdb"
)

// Admin endpoints make one daemon's warm database a fleet-shareable,
// crash-safe asset:
//
//	POST /admin/snapshot  checkpoint the durable store now (requires -data-dir)
//	POST /admin/reload    merge a validated snapshot file into the live DB
//	GET  /admin/dbinfo    database + durability statistics
//
// Reload validates every record (checksum, structural invariants, functional
// verification) before admission and quarantines what fails, so hot-swapping
// a snapshot produced by another replica can degrade a response's cache hit
// rate but can never corrupt a result. Both POST endpoints run between
// requests from the engine's point of view: the database serializes
// admission internally, and entries are immutable once stored.

// SnapshotResponse is the JSON body of POST /admin/snapshot.
type SnapshotResponse struct {
	Path       string  `json:"path"`
	Entries    int     `json:"entries"`
	Retired    int     `json:"retired_journals"`
	DurationMS float64 `json:"duration_ms"`
}

// ReloadRequest is the JSON body of POST /admin/reload.
type ReloadRequest struct {
	// Path of the snapshot (or legacy gob) file to merge into the live
	// database.
	Path string `json:"path"`
}

// ReloadResponse is the JSON body of POST /admin/reload.
type ReloadResponse struct {
	Loaded      int      `json:"loaded"`
	Quarantined int      `json:"quarantined"`
	Truncated   bool     `json:"truncated,omitempty"`
	Problems    []string `json:"problems,omitempty"`
}

// DBInfoResponse is the JSON body of GET /admin/dbinfo.
type DBInfoResponse struct {
	Entries int        `json:"entries"`
	Classes int        `json:"classes"`
	Stats   mcdb.Stats `json:"stats"`
	Store   *mcdb.Info `json:"store,omitempty"`
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Store == nil {
		s.fail(w, http.StatusPreconditionFailed, "no durable store configured (start with -data-dir)")
		return
	}
	info, err := s.cfg.Store.Snapshot()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.logf("server: snapshot: %d entries to %s in %v", info.Entries, info.Path, info.Duration.Round(time.Millisecond))
	s.met.requests.With("200").Inc()
	writeJSON(w, SnapshotResponse{
		Path:       info.Path,
		Entries:    info.Entries,
		Retired:    info.Retired,
		DurationMS: float64(info.Duration.Microseconds()) / 1000,
	})
}

func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "request json: %v", err)
		return
	}
	if req.Path == "" {
		s.fail(w, http.StatusBadRequest, `request needs "path"`)
		return
	}
	rep, err := s.cfg.DB.LoadFile(req.Path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, mcdb.ErrUnreadable):
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case err != nil:
		s.fail(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	s.logf("server: reload: %d entries merged from %s (%d quarantined)", rep.Loaded, req.Path, rep.Quarantined)
	s.met.requests.With("200").Inc()
	writeJSON(w, ReloadResponse{
		Loaded:      rep.Loaded,
		Quarantined: rep.Quarantined,
		Truncated:   rep.Truncated,
		Problems:    rep.Problems,
	})
}

func (s *Server) handleAdminDBInfo(w http.ResponseWriter, _ *http.Request) {
	resp := DBInfoResponse{
		Entries: s.cfg.DB.NumEntries(),
		Classes: s.cfg.DB.NumClasses(),
		Stats:   s.cfg.DB.Stats(),
	}
	if s.cfg.Store != nil {
		info := s.cfg.Store.Info()
		resp.Store = &info
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// StartSnapshotter runs a background checkpoint loop until ctx is canceled:
// every interval (jittered ±50% so a fleet restarted together does not
// checkpoint in lockstep) it snapshots the durable store, skipping rounds
// where the journal holds nothing new. No-op without a configured store.
func (s *Server) StartSnapshotter(ctx context.Context, interval time.Duration) {
	if s.cfg.Store == nil || interval <= 0 {
		return
	}
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		timer := time.NewTimer(jitter(rng, interval))
		defer timer.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
			if s.cfg.Store.Info().JournalRecords == 0 {
				timer.Reset(jitter(rng, interval))
				continue // nothing new since the last checkpoint
			}
			if info, err := s.cfg.Store.Snapshot(); err != nil {
				s.logf("server: background snapshot failed: %v", err)
			} else {
				s.logf("server: background snapshot: %d entries in %v", info.Entries, info.Duration.Round(time.Millisecond))
			}
			timer.Reset(jitter(rng, interval))
		}
	}()
}

// jitter returns a duration uniform in [interval/2, 3·interval/2).
func jitter(rng *rand.Rand, interval time.Duration) time.Duration {
	return interval/2 + time.Duration(rng.Int63n(int64(interval)))
}
