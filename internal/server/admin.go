package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/mcdb"
	"repro/internal/rescache"
)

// Admin endpoints make one daemon's warm database a fleet-shareable,
// crash-safe asset:
//
//	POST /admin/snapshot  checkpoint the durable store now (requires -data-dir)
//	POST /admin/reload    merge a validated snapshot file into the live DB
//	POST /admin/refine    run one SAT refinement pass now (refine.go)
//	GET  /admin/dbinfo    database + durability statistics
//
// Reload validates every record (checksum, structural invariants, functional
// verification) before admission and quarantines what fails, so hot-swapping
// a snapshot produced by another replica can degrade a response's cache hit
// rate but can never corrupt a result. Both POST endpoints run between
// requests from the engine's point of view: the database serializes
// admission internally, and entries are immutable once stored.
//
// A snapshot also persists the result cache (rescache.snap in the store
// directory) whenever one is enabled, so a restarted daemon serves its hot
// circuits from the first request.

// SnapshotResponse is the JSON body of POST /admin/snapshot.
type SnapshotResponse struct {
	Path       string  `json:"path"`
	Entries    int     `json:"entries"`
	Retired    int     `json:"retired_journals"`
	DurationMS float64 `json:"duration_ms"`
	// CacheEntries counts the result-cache entries written alongside the
	// store snapshot (absent when the cache is disabled).
	CacheEntries int `json:"cache_entries,omitempty"`
}

// ReloadRequest is the JSON body of POST /admin/reload.
type ReloadRequest struct {
	// Path of the snapshot (or legacy gob) file to merge into the live
	// database.
	Path string `json:"path"`
}

// ReloadResponse is the JSON body of POST /admin/reload.
type ReloadResponse struct {
	Loaded      int      `json:"loaded"`
	Quarantined int      `json:"quarantined"`
	Truncated   bool     `json:"truncated,omitempty"`
	Problems    []string `json:"problems,omitempty"`
}

// DBInfoResponse is the JSON body of GET /admin/dbinfo.
type DBInfoResponse struct {
	Entries int        `json:"entries"`
	Classes int        `json:"classes"`
	Stats   mcdb.Stats `json:"stats"`
	Store   *mcdb.Info `json:"store,omitempty"`
	// Cache reports the result cache counters (absent when disabled).
	Cache *rescache.Stats `json:"cache,omitempty"`
	// Refine reports SAT-refiner activity (absent until the refiner has run
	// or the background loop is enabled). See refine.go.
	Refine *RefineInfo `json:"refine,omitempty"`
}

// CacheSnapshotPath returns where the result cache persists, or "" when
// either the cache or the durable store is absent.
func (s *Server) CacheSnapshotPath() string {
	if s.cache == nil || s.cfg.Store == nil {
		return ""
	}
	return filepath.Join(s.cfg.Store.Dir(), rescache.SnapshotName)
}

// SaveCache persists the result cache next to the store snapshot. No-op
// (nil) without a cache and store.
func (s *Server) SaveCache() (int, error) {
	path := s.CacheSnapshotPath()
	if path == "" {
		return 0, nil
	}
	if err := s.cache.SaveFile(path); err != nil {
		return 0, err
	}
	return s.cache.Len(), nil
}

// LoadCache merges a previously-saved result cache snapshot; damaged
// records are quarantined, a missing file is a cold start. No-op without a
// cache and store.
func (s *Server) LoadCache() (mcdb.LoadReport, error) {
	path := s.CacheSnapshotPath()
	if path == "" {
		return mcdb.LoadReport{}, nil
	}
	return s.cache.LoadFile(path)
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Store == nil {
		s.failf(w, http.StatusPreconditionFailed, CodeStoreNotConfigured, "", "no durable store configured (start with -data-dir)")
		return
	}
	info, err := s.cfg.Store.Snapshot()
	if err != nil {
		s.failf(w, http.StatusInternalServerError, CodeInternal, "", "snapshot: %v", err)
		return
	}
	cacheEntries, err := s.SaveCache()
	if err != nil {
		s.failf(w, http.StatusInternalServerError, CodeInternal, "", "cache snapshot: %v", err)
		return
	}
	s.logf("server: snapshot: %d entries to %s in %v (%d cached results)",
		info.Entries, info.Path, info.Duration.Round(time.Millisecond), cacheEntries)
	s.met.requests.With("200").Inc()
	writeJSON(w, SnapshotResponse{
		Path:         info.Path,
		Entries:      info.Entries,
		Retired:      info.Retired,
		DurationMS:   float64(info.Duration.Microseconds()) / 1000,
		CacheEntries: cacheEntries,
	})
}

func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failf(w, http.StatusBadRequest, CodeInvalidRequest, "", "request json: %v", err)
		return
	}
	if req.Path == "" {
		s.failf(w, http.StatusBadRequest, CodeInvalidRequest, "path", `request needs "path"`)
		return
	}
	rep, err := s.cfg.DB.LoadFile(req.Path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.failf(w, http.StatusNotFound, CodeSnapshotNotFound, "path", "%v", err)
		return
	case errors.Is(err, mcdb.ErrUnreadable):
		s.failf(w, http.StatusUnprocessableEntity, CodeSnapshotUnreadable, "path", "%v", err)
		return
	case err != nil:
		s.failf(w, http.StatusInternalServerError, CodeInternal, "", "reload: %v", err)
		return
	}
	s.logf("server: reload: %d entries merged from %s (%d quarantined)", rep.Loaded, req.Path, rep.Quarantined)
	s.met.requests.With("200").Inc()
	writeJSON(w, ReloadResponse{
		Loaded:      rep.Loaded,
		Quarantined: rep.Quarantined,
		Truncated:   rep.Truncated,
		Problems:    rep.Problems,
	})
}

func (s *Server) handleAdminDBInfo(w http.ResponseWriter, _ *http.Request) {
	resp := DBInfoResponse{
		Entries: s.cfg.DB.NumEntries(),
		Classes: s.cfg.DB.NumClasses(),
		Stats:   s.cfg.DB.Stats(),
	}
	if s.cfg.Store != nil {
		info := s.cfg.Store.Info()
		resp.Store = &info
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	resp.Refine = s.refineInfo()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// StartSnapshotter runs a background checkpoint loop until ctx is canceled:
// every interval (jittered ±50% so a fleet restarted together does not
// checkpoint in lockstep) it snapshots the durable store and the result
// cache, skipping each when nothing changed since the last round. No-op
// without a configured store.
func (s *Server) StartSnapshotter(ctx context.Context, interval time.Duration) {
	if s.cfg.Store == nil || interval <= 0 {
		return
	}
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		timer := time.NewTimer(jitter(rng, interval))
		defer timer.Stop()
		var lastCachePuts atomic.Int64
		for {
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
			if s.cfg.Store.Info().JournalRecords > 0 {
				if info, err := s.cfg.Store.Snapshot(); err != nil {
					s.logf("server: background snapshot failed: %v", err)
				} else {
					s.logf("server: background snapshot: %d entries in %v", info.Entries, info.Duration.Round(time.Millisecond))
				}
			}
			if s.cache != nil {
				if puts := s.cache.Stats().Puts; puts != lastCachePuts.Load() {
					if n, err := s.SaveCache(); err != nil {
						s.logf("server: background cache snapshot failed: %v", err)
					} else if n > 0 || puts > 0 {
						lastCachePuts.Store(puts)
						s.logf("server: background cache snapshot: %d results", n)
					}
				}
			}
			timer.Reset(jitter(rng, interval))
		}
	}()
}

// jitter returns a duration uniform in [interval/2, 3·interval/2).
func jitter(rng *rand.Rand, interval time.Duration) time.Duration {
	return interval/2 + time.Duration(rng.Int63n(int64(interval)))
}
