package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/mcc"
)

// newTestServer starts a Server over httptest with test-friendly defaults;
// mutate cfg via mod before construction.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:         2,
		QueueDepth:      8,
		DefaultDeadline: 30 * time.Second,
		Registry:        metrics.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func benchBristol(t *testing.T, name string) string {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	var buf bytes.Buffer
	if err := b.Build().WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postBristol(t *testing.T, ts *httptest.Server, circuit, query string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/optimize"+query, strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// directOptimize runs the same circuit through mcc.Optimize with the options
// the server would use, against a fresh private database — the reference the
// service must match byte for byte.
func directOptimize(t *testing.T, circuit string, workers, rounds int) string {
	t.Helper()
	net, err := mcc.ReadBristol(strings.NewReader(circuit))
	if err != nil {
		t.Fatal(err)
	}
	res := mcc.Optimize(context.Background(), net,
		mcc.WithWorkers(workers),
		mcc.WithMaxRounds(rounds),
	)
	if res.Err != nil {
		t.Fatalf("direct optimize: %v", res.Err)
	}
	var buf bytes.Buffer
	if err := res.Network.WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestOptimizeMatchesDirect is the service's core contract: a storm of
// concurrent requests against one shared warm database must return networks
// byte-identical to what a direct, cold mcc.Optimize run produces. This is
// the determinism pin — results may not depend on database warmth, request
// interleaving, or worker count.
func TestOptimizeMatchesDirect(t *testing.T) {
	// The whole storm must be admitted: this test pins determinism, not load
	// shedding, so the queue is sized above the request count.
	_, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 64 })

	circuits := []string{"adder-32", "cmp-32-unsigned-lt", "xy-router", "decoder"}
	type job struct {
		name, circuit, want string
		workers             int
	}
	var jobs []job
	for _, name := range circuits {
		circuit := benchBristol(t, name)
		for _, w := range []int{1, 4} {
			jobs = append(jobs, job{name, circuit, directOptimize(t, circuit, w, 2), w})
		}
	}

	// Three concurrent passes over every (circuit, workers) pair: later
	// passes hit a database warmed by earlier ones and must not notice.
	var wg sync.WaitGroup
	errc := make(chan error, 3*len(jobs))
	for pass := 0; pass < 3; pass++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				req, err := http.NewRequest("POST",
					fmt.Sprintf("%s/v1/optimize?rounds=2&workers=%d", ts.URL, j.workers),
					strings.NewReader(j.circuit))
				if err != nil {
					errc <- err
					return
				}
				req.Header.Set("Accept", "text/plain")
				resp, err := ts.Client().Do(req)
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s/w%d: status %d: %s", j.name, j.workers, resp.StatusCode, body)
					return
				}
				if string(body) != j.want {
					errc <- fmt.Errorf("%s/w%d: served network differs from direct mcc.Optimize", j.name, j.workers)
				}
			}(j)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestOptimizeReportHeaders checks the text/plain response's X-MC-* headers
// against the report of an equivalent JSON request.
func TestOptimizeReportHeaders(t *testing.T) {
	_, ts := newTestServer(t, nil)
	circuit := benchBristol(t, "adder-32")

	resp, _ := postBristol(t, ts, circuit, "?rounds=2", map[string]string{"Accept": "text/plain"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, h := range []string{"X-Mc-And-Before", "X-Mc-And-After", "X-Mc-And-Depth-After", "X-Mc-Rounds"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("missing header %s", h)
		}
	}

	resp2, body := postBristol(t, ts, circuit, "?rounds=2", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Header.Get("X-Mc-And-After"), fmt.Sprint(or.Report.ANDAfter); got != want {
		t.Errorf("X-MC-And-After = %s, JSON report says %s", got, want)
	}
	if or.Report.ANDAfter > or.Report.ANDBefore {
		t.Errorf("optimization increased AND count: %d -> %d", or.Report.ANDBefore, or.Report.ANDAfter)
	}
	if or.Bristol == "" {
		t.Error("JSON response missing bristol network")
	}
}

// TestOptimizeJSONNetwork round-trips a JSON gate-list request: the response
// must come back in the same encoding and compute the same function.
func TestOptimizeJSONNetwork(t *testing.T) {
	_, ts := newTestServer(t, nil)
	b, _ := bench.ByName("cmp-32-unsigned-lt")
	orig := b.Build()
	payload, err := json.Marshal(OptimizeRequest{
		Network: EncodeNetworkJSON(orig),
		Options: RequestOptions{MaxRounds: 2, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBristol(t, ts, string(payload), "", map[string]string{"Content-Type": "application/json"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.Network == nil {
		t.Fatalf("gate-list request answered without a gate-list network: %s", body)
	}
	if or.Bristol != "" {
		t.Error("gate-list response also carries bristol")
	}
	opt, err := or.Network.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := make([]uint64, orig.NumPIs())
	for i := range in {
		in[i] = 0x0123_4567_89AB_CDEF * uint64(2*i+1)
	}
	wa, wb := orig.Simulate(in), opt.Simulate(in)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("PO %d differs between original and optimized", i)
		}
	}
	if or.Report.ANDAfter > or.Report.ANDBefore {
		t.Errorf("AND count increased: %+v", or.Report)
	}
}

func TestOptimizeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxPayloadBytes = 512 })
	valid := "2 5\n3 1 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 3 2 4 XOR\n"

	cases := []struct {
		name, body, query string
		hdr               map[string]string
		want              int
		code              ErrorCode
	}{
		{"malformed bristol", "not a circuit", "", nil, http.StatusBadRequest, CodeInvalidNetwork},
		{"bad cost model", valid, "?cost=area", nil, http.StatusBadRequest, CodeInvalidOption},
		{"bad rounds", valid, "?rounds=-1", nil, http.StatusBadRequest, CodeInvalidOption},
		{"bad cut size", valid, "?k=9", nil, http.StatusBadRequest, CodeInvalidOption},
		{"bad deadline", valid, "?deadline=soon", nil, http.StatusBadRequest, CodeInvalidOption},
		{"bad boolean", valid, "?verify=perhaps", nil, http.StatusBadRequest, CodeInvalidOption},
		{"unknown query param", valid, "?turbo=1", nil, http.StatusBadRequest, CodeUnknownField},
		{"json without network", `{"options": {}}`, "", map[string]string{"Content-Type": "application/json"}, http.StatusBadRequest, CodeInvalidRequest},
		{"json with both encodings", `{"bristol": "x", "network": {"inputs": 0}}`, "", map[string]string{"Content-Type": "application/json"}, http.StatusBadRequest, CodeInvalidRequest},
		{"json unknown field", `{"bristol": "x", "nonsense": 1}`, "", map[string]string{"Content-Type": "application/json"}, http.StatusBadRequest, CodeUnknownField},
		{"oversized payload", valid + strings.Repeat("#", 1024), "", nil, http.StatusRequestEntityTooLarge, CodePayloadTooLarge},
	}
	for _, tc := range cases {
		resp, body := postBristol(t, ts, tc.body, tc.query, tc.hdr)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error.Code == "" || er.Error.Message == "" {
			t.Errorf("%s: error response not structured JSON: %s", tc.name, body)
			continue
		}
		if er.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, er.Error.Code, tc.code, body)
		}
	}
}

// TestQueueFullSheds saturates a Workers=1, QueueDepth=1 server with blocked
// requests and checks that the next one is shed with 429 + Retry-After
// instead of queueing without bound.
func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	s.beforeOptimize = func() {
		started <- struct{}{}
		<-release
	}
	circuit := benchBristol(t, "decoder")

	// First request occupies the worker slot; second occupies the queue slot.
	// Distinct rounds values give each request its own cache key so the
	// result cache cannot coalesce them onto one flight.
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(rounds int) {
			defer wg.Done()
			resp, _ := postBristol(t, ts, circuit, fmt.Sprintf("?rounds=%d", rounds), nil)
			codes <- resp.StatusCode
		}(i + 1)
	}
	// Wait until the first request is provably running (inside the seam).
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the engine")
	}
	// Wait until the second is provably queued (pending=2 = workers+queue).
	for deadline := time.Now().Add(10 * time.Second); s.pending.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Saturated: the third request must be shed immediately.
	resp, body := postBristol(t, ts, circuit, "?rounds=3", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
	if got := metricValue(t, s, "mcserved_queue_rejections_total"); got < 1 {
		t.Errorf("mcserved_queue_rejections_total = %v, want >= 1", got)
	}
}

// TestDeadlineExpiresCleanly parks a request behind a blocked worker with a
// short deadline: it must get a clean 504 and leave no goroutine behind.
func TestDeadlineExpiresCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
	})
	s.beforeOptimize = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	circuit := benchBristol(t, "decoder")

	done := make(chan int, 1)
	go func() {
		resp, _ := postBristol(t, ts, circuit, "", nil)
		done <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocker request never reached the engine")
	}

	// This request queues behind the blocker and times out waiting.
	resp, body := postBristol(t, ts, circuit, "?deadline=50ms", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request returned %d, want 504: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, s, "mcserved_deadline_timeouts_total"); got < 1 {
		t.Errorf("mcserved_deadline_timeouts_total = %v, want >= 1", got)
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("blocker request finished with %d, want 200", code)
	}
	ts.Close()

	// No goroutine may outlive its request. Poll: the HTTP machinery needs a
	// moment to wind down.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain checks the SIGTERM path: BeginDrain rejects new work with
// 503 while the in-flight request completes with 200, and Drain returns once
// it does.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, nil)
	s.beforeOptimize = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	circuit := benchBristol(t, "decoder")

	done := make(chan int, 1)
	go func() {
		resp, _ := postBristol(t, ts, circuit, "", nil)
		done <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never reached the engine")
	}

	s.BeginDrain()
	resp, _ := postBristol(t, ts, circuit, "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted a request: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server still ready: %d", resp.StatusCode)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, nil)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz = %d", got)
	}
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while warming = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz while warming = %d, want 200", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("readyz after warm-up = %d", got)
	}
}

// TestMetricsEndpoint optimizes once and checks that the scrape carries
// server, engine, and database metrics with live values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	circuit := benchBristol(t, "adder-32")
	if resp, body := postBristol(t, ts, circuit, "?rounds=2", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`mcserved_requests_total{code="200"} 1`,
		"# TYPE mcserved_request_duration_seconds histogram",
		"mcserved_worker_slots 2",
		"mcserved_ready 1",
		"mcc_runs_total 1",
		"mcc_rounds_total",
		"mcdb_classifications_total",
		"mcdb_class_cache_hit_rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(text, "NaN") {
		t.Error("metrics output contains NaN")
	}
}

// metricValue reads one untyped sample back out of the registry's text
// exposition — the same path a Prometheus scrape takes.
func metricValue(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := s.Registry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
