package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/xag"
)

// One versioned request schema. Every way of submitting work — sync JSON
// envelope, raw Bristol with query parameters, batch items, async jobs —
// decodes through decodeEnvelope/decodeSync into the same decodedRequest,
// so there is exactly one place options are parsed, defaulted, validated,
// and range-checked. Unknown JSON fields and unknown query parameters are
// rejected with CodeUnknownField rather than ignored. The query-parameter
// form survives for existing raw-Bristol callers but is deprecated: it
// tags the response with a "Deprecation: true" header and logs one line
// per process.

// decodedRequest is one fully-decoded, validated unit of optimization work.
type decodedRequest struct {
	net   *xag.Network
	opts  RequestOptions
	model cost.Model
	// wantNetJSON: the caller sent a JSON gate list, so the response should
	// carry one too.
	wantNetJSON bool
	// deprecated: options arrived in the query string.
	deprecated bool
}

// decodeEnvelope decodes and validates a JSON envelope — the schema shared
// verbatim by POST /v1/optimize (JSON), each batch item, and job
// submission.
func (s *Server) decodeEnvelope(body []byte) (*decodedRequest, *apiError) {
	var req OptimizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := CodeInvalidRequest
		if strings.Contains(err.Error(), "unknown field") {
			code = CodeUnknownField
		}
		return nil, errf(http.StatusBadRequest, code, "", "request json: %v", err)
	}
	dr := &decodedRequest{opts: req.Options}
	switch {
	case req.Bristol != "" && req.Network != nil:
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "", `request sets both "bristol" and "network"`)
	case req.Bristol != "":
		net, err := xag.ReadBristol(strings.NewReader(req.Bristol))
		if err != nil {
			return nil, errf(http.StatusBadRequest, CodeInvalidNetwork, "bristol", "%v", err)
		}
		dr.net = net
	case req.Network != nil:
		net, err := req.Network.Build()
		if err != nil {
			return nil, errf(http.StatusBadRequest, CodeInvalidNetwork, "network", "%v", err)
		}
		dr.net = net
		dr.wantNetJSON = true
	default:
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "", `request needs "bristol" or "network"`)
	}
	if apiErr := dr.finish(s.cfg); apiErr != nil {
		return nil, apiErr
	}
	return dr, nil
}

// decodeSync decodes a POST /v1/optimize body: a JSON Content-Type selects
// the envelope, anything else is raw Bristol text with options in the
// (deprecated) query string.
func (s *Server) decodeSync(r *http.Request, body []byte) (*decodedRequest, *apiError) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		return s.decodeEnvelope(body)
	}
	opts, deprecated, apiErr := optionsFromQuery(r)
	if apiErr != nil {
		return nil, apiErr
	}
	net, err := xag.ReadBristol(bytes.NewReader(body))
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidNetwork, "bristol", "%v", err)
	}
	dr := &decodedRequest{net: net, opts: opts, deprecated: deprecated}
	if apiErr := dr.finish(s.cfg); apiErr != nil {
		return nil, apiErr
	}
	return dr, nil
}

// finish applies defaults, range-checks every option the way mcopt does at
// its flag boundary, and resolves the cost model.
func (dr *decodedRequest) finish(cfg Config) *apiError {
	o := &dr.opts
	if o.Cost == "" {
		o.Cost = "mc"
	}
	model, err := cost.FromName(o.Cost)
	if err != nil {
		return errf(http.StatusBadRequest, CodeInvalidOption, "cost", "%v", err)
	}
	switch {
	case o.MaxRounds < 0:
		return errf(http.StatusBadRequest, CodeInvalidOption, "max_rounds", "max_rounds must not be negative, got %d", o.MaxRounds)
	case o.Workers < 0:
		return errf(http.StatusBadRequest, CodeInvalidOption, "workers", "workers must not be negative, got %d", o.Workers)
	case o.CutSize != 0 && (o.CutSize < 2 || o.CutSize > 6):
		return errf(http.StatusBadRequest, CodeInvalidOption, "cut_size", "cut_size must be in 2..6, got %d", o.CutSize)
	case o.DeadlineMS < 0:
		return errf(http.StatusBadRequest, CodeInvalidOption, "deadline_ms", "deadline must not be negative, got %dms", o.DeadlineMS)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers > cfg.MaxRequestWorkers {
		o.Workers = cfg.MaxRequestWorkers
	}
	dr.model = model
	return nil
}

// queryParams maps each legacy query parameter onto its RequestOptions
// field; anything else in the query string is an unknown field.
var queryParams = map[string]func(o *RequestOptions, v string) error{
	"cost":    func(o *RequestOptions, v string) error { o.Cost = v; return nil },
	"rounds":  func(o *RequestOptions, v string) error { return setInt(&o.MaxRounds, v) },
	"workers": func(o *RequestOptions, v string) error { return setInt(&o.Workers, v) },
	"k":       func(o *RequestOptions, v string) error { return setInt(&o.CutSize, v) },
	"verify":  func(o *RequestOptions, v string) error { return setBool(&o.Verify, v) },
	"zero-gain": func(o *RequestOptions, v string) error {
		return setBool(&o.ZeroGain, v)
	},
	"seq-commit": func(o *RequestOptions, v string) error {
		return setBool(&o.SequentialCommit, v)
	},
	"incremental": func(o *RequestOptions, v string) error {
		var b bool
		if err := setBool(&b, v); err != nil {
			return err
		}
		o.Incremental = &b
		return nil
	},
	"deadline": func(o *RequestOptions, v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		o.DeadlineMS = int(d / time.Millisecond)
		return nil
	},
}

func setInt(dst *int, v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func setBool(dst *bool, v string) error {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return err
	}
	*dst = b
	return nil
}

// optionsFromQuery maps query parameters onto RequestOptions for raw
// Bristol requests. deprecated reports whether any parameter was present —
// the bare legacy form with no options draws no warning.
func optionsFromQuery(r *http.Request) (RequestOptions, bool, *apiError) {
	var o RequestOptions
	q := r.URL.Query()
	deprecated := false
	for name, vals := range q {
		set, ok := queryParams[name]
		if !ok {
			return o, false, errf(http.StatusBadRequest, CodeUnknownField, name, "unknown query parameter %q", name)
		}
		deprecated = true
		for _, v := range vals {
			if err := set(&o, v); err != nil {
				return o, false, errf(http.StatusBadRequest, CodeInvalidOption, name, "query %s: %v", name, err)
			}
		}
	}
	return o, deprecated, nil
}

// deadline resolves the request deadline under the configured cap.
func (o RequestOptions) deadline(cfg Config) time.Duration {
	d := time.Duration(o.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = cfg.DefaultDeadline
	}
	if d > cfg.MaxDeadline {
		d = cfg.MaxDeadline
	}
	return d
}
