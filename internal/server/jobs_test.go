package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pollJob GETs /v1/jobs/{id} until the job reaches want (or any terminal
// state), failing the test on timeout.
func pollJob(t *testing.T, ts *httptest.Server, id string, want JobStatus) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("poll job %s: %d, %v", id, resp.StatusCode, err)
		}
		switch jr.Job.Status {
		case want:
			return jr
		case JobDone, JobFailed, JobCanceled:
			t.Fatalf("job %s finished %s, want %s (%+v)", id, jr.Job.Status, want, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, jr.Job.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, nil)
	env := OptimizeRequest{Bristol: benchBristol(t, "decoder")}

	resp, body := postJSON(t, ts, "/v1/jobs", env)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.ID == "" || sub.Job.CreatedUnixMS == 0 {
		t.Fatalf("submit response missing id or timestamp: %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.Job.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, sub.Job.ID)
	}

	jr := pollJob(t, ts, sub.Job.ID, JobDone)
	if jr.Error != nil || len(jr.Result) == 0 {
		t.Fatalf("done job: error %+v, result %d bytes", jr.Error, len(jr.Result))
	}
	if jr.Job.FinishedUnixMS == 0 {
		t.Error("done job missing finished timestamp")
	}
	var rep struct {
		Report Report `json:"report"`
	}
	if err := json.Unmarshal(jr.Result, &rep); err != nil {
		t.Fatalf("job result not an optimize body: %v\n%s", err, jr.Result)
	}
	if rep.Report.ANDAfter == 0 && rep.Report.ANDBefore == 0 {
		t.Errorf("job report looks empty: %+v", rep.Report)
	}

	if got := metricValue(t, s, "mcserved_jobs_submitted_total"); got != 1 {
		t.Errorf("mcserved_jobs_submitted_total = %v, want 1", got)
	}
	if got := metricValue(t, s, `mcserved_jobs_completed_total{outcome="done"}`); got != 1 {
		t.Errorf(`mcserved_jobs_completed_total{outcome="done"} = %v, want 1`, got)
	}
}

// TestJobValidationIsSynchronous proves malformed envelopes fail the submit
// with 400 rather than becoming failed jobs.
func TestJobValidationIsSynchronous(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts, "/v1/jobs", map[string]any{"nonsense": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad submit: %d, want 400: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != CodeUnknownField {
		t.Fatalf("bad submit error = %s, want code %s", body, CodeUnknownField)
	}
	if s.jobs.size() != 0 {
		t.Errorf("rejected submit left %d jobs in the table", s.jobs.size())
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	decErr := json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || decErr != nil || er.Error.Code != CodeJobNotFound {
		t.Fatalf("unknown job: %d, %v, %+v; want 404 %s", resp.StatusCode, decErr, er.Error, CodeJobNotFound)
	}
}

// TestJobCancel blocks a running job on the test seam, cancels it over the
// API, and checks it finishes canceled (not failed) once released.
func TestJobCancel(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, nil)
	s.beforeOptimize = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}

	resp, body := postJSON(t, ts, "/v1/jobs", OptimizeRequest{Bristol: benchBristol(t, "decoder")})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached the engine")
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", delResp.StatusCode)
	}

	// Unblock the seam so the compute path can observe the dead context.
	close(release)
	jr := pollJob(t, ts, sub.Job.ID, JobCanceled)
	if jr.Error != nil || len(jr.Result) != 0 {
		t.Fatalf("canceled job carries error %+v / %d result bytes", jr.Error, len(jr.Result))
	}
	if got := metricValue(t, s, `mcserved_jobs_completed_total{outcome="canceled"}`); got != 1 {
		t.Errorf(`mcserved_jobs_completed_total{outcome="canceled"} = %v, want 1`, got)
	}
}

// TestJobTableFullSheds fills a MaxJobs=1 table with a blocked job and
// checks the next submission sheds with 429/queue_full.
func TestJobTableFullSheds(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) { c.MaxJobs = 1 })
	s.beforeOptimize = func() { <-release }
	defer close(release)

	env := OptimizeRequest{Bristol: benchBristol(t, "decoder")}
	if resp, body := postJSON(t, ts, "/v1/jobs", env); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts, "/v1/jobs", OptimizeRequest{Bristol: benchBristol(t, "adder-32")})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit to full table: %d, want 429: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != CodeQueueFull || er.Error.Field != "jobs" {
		t.Fatalf("full-table error = %s, want code %s field jobs", body, CodeQueueFull)
	}
	// The shed submission must release its admission slot.
	if got := s.pending.Load(); got != 1 {
		t.Errorf("pending = %d after shed submit, want 1 (the running job)", got)
	}
}

// TestJobTTLEviction proves finished jobs age out of the table and
// subsequent polls 404.
func TestJobTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.JobTTL = 10 * time.Millisecond })
	resp, body := postJSON(t, ts, "/v1/jobs", OptimizeRequest{Bristol: benchBristol(t, "decoder")})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts, sub.Job.ID, JobDone)

	time.Sleep(30 * time.Millisecond)
	resp2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	decErr := json.NewDecoder(resp2.Body).Decode(&er)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound || decErr != nil || er.Error.Code != CodeJobNotFound {
		t.Fatalf("expired job: %d %+v, want 404 %s", resp2.StatusCode, er.Error, CodeJobNotFound)
	}
	if got := metricValue(t, s, "mcserved_jobs_evicted_total"); got != 1 {
		t.Errorf("mcserved_jobs_evicted_total = %v, want 1", got)
	}
	if s.jobs.size() != 0 {
		t.Errorf("job table still holds %d entries", s.jobs.size())
	}
}
