package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/mcdb"
)

// The SAT refiner (mcdb/refine.go, DESIGN.md §16) runs inside the daemon in
// two ways: POST /admin/refine triggers one pass on demand, and StartRefiner
// runs low-intensity passes in the background so a long-lived warm database
// tightens itself toward proven-optimal entries. Passes serialize on
// refineMu — the refiner never holds db.mu while solving, so request traffic
// is unaffected; at most one solver works per daemon.

// RefineRequest is the optional JSON body of POST /admin/refine. A missing
// or empty body runs with defaults.
type RefineRequest struct {
	// Budget is the conflict budget per SAT query (0: server default).
	Budget int64 `json:"budget,omitempty"`
	// WorstN refines only the N widest-gap entries (0: all candidates).
	WorstN int `json:"worst_n,omitempty"`
	// Reprove re-derives proofs for entries already proven optimal.
	Reprove bool `json:"reprove,omitempty"`
}

// RefineResponse is the JSON body of POST /admin/refine.
type RefineResponse struct {
	mcdb.RefineReport
	DurationMS float64 `json:"duration_ms"`
}

// RefineInfo is the refiner section of GET /admin/dbinfo.
type RefineInfo struct {
	// Runs counts completed passes, admin-triggered and background alike.
	Runs int64 `json:"runs_total"`
	// Background reports whether StartRefiner is active.
	Background bool `json:"background"`
	// LastReport is the most recent pass's outcome.
	LastReport *mcdb.RefineReport `json:"last_report,omitempty"`
	// LastRun is when that pass finished.
	LastRun time.Time `json:"last_run,omitzero"`
}

// refineRun records one finished pass for /admin/dbinfo.
type refineRun struct {
	report mcdb.RefineReport
	at     time.Time
}

// refineInfo assembles the dbinfo section; nil when the refiner has never
// run and no background loop is active, so old clients see no new field.
func (s *Server) refineInfo() *RefineInfo {
	runs := s.refineRuns.Load()
	bg := s.refineBG.Load()
	if runs == 0 && !bg {
		return nil
	}
	info := &RefineInfo{Runs: runs, Background: bg}
	if last := s.lastRefine.Load(); last != nil {
		rep := last.report
		info.LastReport = &rep
		info.LastRun = last.at
	}
	return info
}

// refine runs one serialized pass and records it. Concurrent callers queue
// on refineMu; the HTTP handler avoids queueing via TryLock instead.
func (s *Server) refine(ctx context.Context, opts mcdb.RefineOptions) (mcdb.RefineReport, time.Duration) {
	s.refineMu.Lock()
	defer s.refineMu.Unlock()
	return s.refineLocked(ctx, opts)
}

func (s *Server) refineLocked(ctx context.Context, opts mcdb.RefineOptions) (mcdb.RefineReport, time.Duration) {
	start := time.Now()
	rep := s.cfg.DB.Refine(ctx, opts)
	d := time.Since(start)
	s.refineRuns.Add(1)
	s.lastRefine.Store(&refineRun{report: rep, at: time.Now()})
	s.logf("server: refine: %d/%d entries improved (%d ANDs saved), %d proven, %d unknown, %d rejected in %v",
		rep.Improved, rep.Attempted, rep.AndsSaved, rep.Proven, rep.Unknown, rep.Rejected,
		d.Round(time.Millisecond))
	return rep, d
}

func (s *Server) handleAdminRefine(w http.ResponseWriter, r *http.Request) {
	var req RefineRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.failf(w, http.StatusBadRequest, CodeInvalidRequest, "", "request json: %v", err)
		return
	}
	if req.Budget < 0 {
		s.failf(w, http.StatusBadRequest, CodeInvalidOption, "budget", "budget must not be negative")
		return
	}
	if req.WorstN < 0 {
		s.failf(w, http.StatusBadRequest, CodeInvalidOption, "worst_n", "worst_n must not be negative")
		return
	}
	if !s.refineMu.TryLock() {
		s.failf(w, http.StatusConflict, CodeRefineBusy, "", "a refinement pass is already running")
		return
	}
	defer s.refineMu.Unlock()
	rep, d := s.refineLocked(r.Context(),
		mcdb.RefineOptions{Budget: req.Budget, WorstN: req.WorstN, Reprove: req.Reprove})
	s.met.requests.With("200").Inc()
	writeJSON(w, RefineResponse{
		RefineReport: rep,
		DurationMS:   float64(d.Microseconds()) / 1000,
	})
}

// StartRefiner runs background refinement passes until ctx is canceled:
// every interval (jittered ±50%, like the snapshotter) it refines with the
// given per-query conflict budget. A budget or interval ≤ 0 disables the
// loop — the daemon exposes that as -refine-budget 0. Each pass skips
// entries already proven optimal, so a fully-refined database makes the
// loop a cheap no-op.
func (s *Server) StartRefiner(ctx context.Context, interval time.Duration, budget int64) {
	if interval <= 0 || budget <= 0 {
		return
	}
	s.refineBG.Store(true)
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		timer := time.NewTimer(jitter(rng, interval))
		defer timer.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
			s.refine(ctx, mcdb.RefineOptions{Budget: budget})
			timer.Reset(jitter(rng, interval))
		}
	}()
}
