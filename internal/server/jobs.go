package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/rescache"
)

// Async jobs. POST /v1/jobs validates the envelope synchronously (bad
// requests fail with 400 immediately, never as a failed job), claims an
// admission slot — jobs share the same CAS admission bound as sync traffic,
// so a fleet of async submissions cannot outrun the worker pool — and
// returns 202 with a job id. The optimization runs on its own goroutine
// under the job's deadline, detached from the submitting connection.
// GET /v1/jobs/{id} polls; DELETE cancels. The table is bounded: MaxJobs
// entries, finished jobs evicted JobTTL after completion (swept lazily), a
// full table sheds submissions with 429/queue_full.
//
// Because a job holds its admission slot from submission to completion, the
// drain path's pending==0 condition covers running jobs: SIGTERM waits for
// them like any in-flight request.

// JobStatus enumerates the lifecycle states of an async job.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

type job struct {
	id     string
	cancel context.CancelFunc

	mu        sync.Mutex
	status    JobStatus
	created   time.Time
	finished  time.Time // zero while queued/running
	outcome   rescache.Outcome
	result    *rescache.Result
	wantJSON  bool
	failErr   *ErrorBody
	failState int // HTTP status of the failure
}

// JobView is the wire form of a job in submission and poll responses.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Cache reports how the result was produced (miss, hit, coalesced);
	// only present once done.
	Cache string `json:"cache,omitempty"`
	// CreatedUnixMS / FinishedUnixMS timestamp the lifecycle.
	CreatedUnixMS  int64 `json:"created_unix_ms"`
	FinishedUnixMS int64 `json:"finished_unix_ms,omitempty"`
}

// JobResponse is the body of POST /v1/jobs, GET /v1/jobs/{id}, and
// DELETE /v1/jobs/{id}. Result carries the exact bytes a sync request for
// the same envelope would have returned; Error carries the failure of a
// failed job.
type JobResponse struct {
	Job    JobView         `json:"job"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *ErrorBody      `json:"error,omitempty"`
}

type jobTable struct {
	mu      sync.Mutex
	m       map[string]*job
	max     int
	ttl     time.Duration
	evicted func() // metrics hook, set once at server construction
}

func newJobTable(max int, ttl time.Duration) *jobTable {
	return &jobTable{m: map[string]*job{}, max: max, ttl: ttl}
}

// sweep drops finished jobs past their TTL. Callers hold t.mu.
func (t *jobTable) sweepLocked(now time.Time) {
	for id, j := range t.m {
		j.mu.Lock()
		expired := !j.finished.IsZero() && now.Sub(j.finished) > t.ttl
		j.mu.Unlock()
		if expired {
			delete(t.m, id)
			if t.evicted != nil {
				t.evicted()
			}
		}
	}
}

// add registers a new job, or reports table saturation.
func (t *jobTable) add(j *job) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	if len(t.m) >= t.max {
		return false
	}
	t.m[j.id] = j
	return true
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	return t.m[id]
}

func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *jobTable) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, j := range t.m {
		j.mu.Lock()
		if j.status == JobQueued || j.status == JobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:            j.id,
		Status:        j.status,
		CreatedUnixMS: j.created.UnixMilli(),
	}
	if !j.finished.IsZero() {
		v.FinishedUnixMS = j.finished.UnixMilli()
	}
	if j.status == JobDone {
		v.Cache = j.outcome.String()
	}
	return v
}

// handleJobSubmit is POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.failf(w, http.StatusServiceUnavailable, CodeDraining, "", "server is draining")
		return
	}
	body, apiErr := s.readBody(w, r)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}
	dr, apiErr := s.decodeEnvelope(body)
	if apiErr != nil {
		s.fail(w, apiErr)
		return
	}

	// Claim the admission slot now, while the submitter is still on the
	// line: saturation is a synchronous 429, not a failed job discovered by
	// polling.
	if !s.admit() {
		s.met.queueRejects.Inc()
		s.failf(w, http.StatusTooManyRequests, CodeQueueFull, "",
			"queue full (%d running, %d queued)", s.cfg.Workers, s.cfg.QueueDepth)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), dr.opts.deadline(s.cfg))
	j := &job{
		id:       newJobID(),
		cancel:   cancel,
		status:   JobQueued,
		created:  time.Now(),
		wantJSON: dr.wantNetJSON,
	}
	if !s.jobs.add(j) {
		s.pending.Add(-1)
		cancel()
		s.failf(w, http.StatusTooManyRequests, CodeQueueFull, "jobs",
			"job table full (%d jobs)", s.cfg.MaxJobs)
		return
	}
	s.met.jobsSubmitted.Inc()

	go s.runJob(ctx, j, dr)

	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	s.met.requests.With("202").Inc()
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(JobResponse{Job: j.view()})
}

// runJob executes one admitted job to completion on its own goroutine.
func (s *Server) runJob(ctx context.Context, j *job, dr *decodedRequest) {
	defer s.pending.Add(-1)
	defer j.cancel()
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			s.logf("server: job %s aborted by panic: %v", j.id, rec)
			j.finish(JobFailed, 0, nil, &ErrorBody{Code: CodeInternal, Message: "internal error: request aborted"}, http.StatusInternalServerError)
			s.met.jobsCompleted.With(string(JobFailed)).Inc()
		}
	}()

	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()

	res, out, err := s.optimizeOne(ctx, dr, true)
	switch {
	case err == nil:
		j.finish(JobDone, out, res, nil, 0)
		s.met.jobsCompleted.With(string(JobDone)).Inc()
	default:
		var ae *apiError
		status := JobFailed
		switch {
		case errors.As(err, &ae):
			j.finish(JobFailed, 0, nil, &ae.body, ae.status)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.deadlineExpiry.Inc()
			j.finish(JobFailed, 0, nil,
				&ErrorBody{Code: CodeDeadlineExceeded, Message: "deadline exceeded"}, http.StatusGatewayTimeout)
		default: // canceled via DELETE
			status = JobCanceled
			j.finish(JobCanceled, 0, nil, nil, 0)
		}
		s.met.jobsCompleted.With(string(status)).Inc()
	}
}

func (j *job) finish(st JobStatus, out rescache.Outcome, res *rescache.Result, e *ErrorBody, httpStatus int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = st
	j.finished = time.Now()
	j.outcome = out
	j.result = res
	j.failErr = e
	j.failState = httpStatus
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.failf(w, http.StatusNotFound, CodeJobNotFound, "", "no job %q (unknown, expired, or evicted)", r.PathValue("id"))
		return
	}
	resp := JobResponse{Job: j.view()}
	j.mu.Lock()
	if j.status == JobDone {
		resp.Result = renderJSONBody(j.result, j.wantJSON)
	}
	if j.failErr != nil {
		resp.Error = j.failErr
	}
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	s.met.requests.With("200").Inc()
	_ = json.NewEncoder(w).Encode(resp)
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
// Canceling a finished job is a no-op; the response reports the state the
// job ended in either way.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.failf(w, http.StatusNotFound, CodeJobNotFound, "", "no job %q (unknown, expired, or evicted)", r.PathValue("id"))
		return
	}
	j.cancel()
	w.Header().Set("Content-Type", "application/json")
	s.met.requests.With("200").Inc()
	_ = json.NewEncoder(w).Encode(JobResponse{Job: j.view()})
}
