package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/xag"
)

// JSON gate-list network format. The service accepts it as an alternative to
// Bristol fashion for callers that already hold a structured netlist:
//
//	{
//	  "inputs": 3,
//	  "gates": [
//	    {"op": "AND", "a": 2, "b": 4},
//	    {"op": "XOR", "a": 8, "b": 6}
//	  ],
//	  "outputs": [10]
//	}
//
// Wires are numbered densely: wire 0 is the constant false, wires 1..inputs
// are the primary inputs, and gate i (0-based) drives wire inputs+1+i. A
// literal is 2*wire, +1 when complemented — so NOT gates never appear; the
// complement rides on the literal. Gates may only reference wires already
// defined (inputs or earlier gates), which makes every well-formed gate list
// trivially acyclic.
type NetworkJSON struct {
	Inputs  int        `json:"inputs"`
	Gates   []GateJSON `json:"gates"`
	Outputs []int      `json:"outputs"`
}

// GateJSON is one two-input gate of a JSON gate list.
type GateJSON struct {
	Op string `json:"op"` // "AND" or "XOR" (case-insensitive)
	A  int    `json:"a"`  // literal: 2*wire + complement bit
	B  int    `json:"b"`
}

// Decoder guards: a gate list is rejected outright when it declares more
// inputs or gates than any plausible circuit, before allocating for it.
const (
	maxJSONInputs = 1 << 20
	maxJSONGates  = 1 << 24
)

// DecodeNetworkJSON parses and validates a JSON gate list into a network.
// Unknown fields, trailing data, out-of-range literals, forward references,
// and unknown ops are all rejected with descriptive errors.
func DecodeNetworkJSON(data []byte) (*xag.Network, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var nj NetworkJSON
	if err := dec.Decode(&nj); err != nil {
		return nil, fmt.Errorf("server: network json: %v", err)
	}
	// A second document after the first is corruption, same as Bristol
	// trailing data.
	if dec.More() {
		return nil, fmt.Errorf("server: network json: trailing data after network object")
	}
	return nj.Build()
}

// Build validates the gate list and constructs the network.
func (nj *NetworkJSON) Build() (*xag.Network, error) {
	if nj.Inputs < 0 || nj.Inputs > maxJSONInputs {
		return nil, fmt.Errorf("server: network json: implausible input count %d", nj.Inputs)
	}
	if len(nj.Gates) > maxJSONGates {
		return nil, fmt.Errorf("server: network json: implausible gate count %d", len(nj.Gates))
	}

	net := xag.New()
	// wires[w] is the literal driving wire w; parallel to the format's dense
	// numbering. Strashing inside And/Xor may alias two wires to one node —
	// that is fine, the numbering is positional, not structural.
	wires := make([]xag.Lit, 1, 1+nj.Inputs+len(nj.Gates))
	wires[0] = xag.Const0
	for i := 0; i < nj.Inputs; i++ {
		wires = append(wires, net.AddPI(fmt.Sprintf("w%d", i+1)))
	}

	// resolve maps an external literal to an internal one, accepting only
	// wires defined so far.
	resolve := func(lit int, what string, g int) (xag.Lit, error) {
		if lit < 0 {
			return 0, fmt.Errorf("server: network json: gate %d: negative literal %d (%s)", g, lit, what)
		}
		w := lit / 2
		if w >= len(wires) {
			return 0, fmt.Errorf("server: network json: gate %d: literal %d (%s) references undefined wire %d", g, lit, what, w)
		}
		return wires[w].NotIf(lit%2 == 1), nil
	}

	for g, gate := range nj.Gates {
		a, err := resolve(gate.A, "a", g)
		if err != nil {
			return nil, err
		}
		b, err := resolve(gate.B, "b", g)
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(gate.Op) {
		case "AND":
			wires = append(wires, net.And(a, b))
		case "XOR":
			wires = append(wires, net.Xor(a, b))
		default:
			return nil, fmt.Errorf("server: network json: gate %d: unknown op %q (want AND or XOR)", g, gate.Op)
		}
	}

	for i, lit := range nj.Outputs {
		if lit < 0 || lit/2 >= len(wires) {
			return nil, fmt.Errorf("server: network json: output %d: literal %d out of range", i, lit)
		}
		net.AddPO(wires[lit/2].NotIf(lit%2 == 1), fmt.Sprintf("o%d", i))
	}
	return net, nil
}

// EncodeNetworkJSON renders a network as a JSON gate list in the same dense
// wire numbering DecodeNetworkJSON accepts, so decode(encode(n)) rebuilds a
// structurally identical circuit.
func EncodeNetworkJSON(net *xag.Network) *NetworkJSON {
	nj := &NetworkJSON{Inputs: net.NumPIs(), Outputs: make([]int, 0, net.NumPOs())}

	// litOf maps an internal literal to the external numbering. PIs occupy
	// wires 1..n in PI order; live gates follow in topological order.
	wireOf := make(map[int]int) // node id -> external wire
	for i := 0; i < net.NumPIs(); i++ {
		wireOf[net.PI(i).Node()] = 1 + i
	}
	litOf := func(l xag.Lit) int {
		l = net.Resolve(l)
		if l.Node() == 0 { // constant node
			return 2*0 + boolBit(l.Compl())
		}
		return 2*wireOf[l.Node()] + boolBit(l.Compl())
	}

	next := 1 + net.NumPIs()
	for _, id := range net.LiveNodes() {
		if !net.IsGate(id) {
			continue
		}
		f0, f1 := net.Fanins(id)
		op := "AND"
		if net.Kind(id) == xag.KindXor {
			op = "XOR"
		}
		// Fanins are emitted before fanouts (LiveNodes is topological), so
		// both literals are already numbered.
		nj.Gates = append(nj.Gates, GateJSON{Op: op, A: litOf(f0), B: litOf(f1)})
		wireOf[id] = next
		next++
	}
	for i := 0; i < net.NumPOs(); i++ {
		nj.Outputs = append(nj.Outputs, litOf(net.PO(i)))
	}
	return nj
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
