package cost

import (
	"testing"

	"repro/internal/xag"
)

func TestFromName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "mc"}, {"mc", "mc"}, {"size", "size"}, {"depth", "depth"},
	} {
		m, err := FromName(tc.in)
		if err != nil {
			t.Fatalf("FromName(%q): %v", tc.in, err)
		}
		if m.Name() != tc.want {
			t.Fatalf("FromName(%q).Name() = %q, want %q", tc.in, m.Name(), tc.want)
		}
	}
	if _, err := FromName("latency"); err == nil {
		t.Fatal("FromName accepted an unknown model")
	}
}

// TestMCGainMatchesLegacySemantics pins the MC model to the exact gain and
// tiebreak formula of the pre-refactor engine — the Bristol determinism
// tests depend on it.
func TestMCGainMatchesLegacySemantics(t *testing.T) {
	m := MC()
	g, tie := m.Gain(Costs{Ands: 5, Xors: 3}, Costs{Ands: 2, Xors: 7})
	if g != 3 || tie != 4 {
		t.Fatalf("MC gain = (%d, %d), want (3, 4)", g, tie)
	}
	// Constant substitution: new cone is empty.
	g, tie = m.Gain(Costs{Ands: 4, Xors: 2}, Costs{})
	if g != 4 || tie != -2 {
		t.Fatalf("MC constant gain = (%d, %d), want (4, -2)", g, tie)
	}
	if m.NeedsDepth() {
		t.Fatal("MC model must not require depth tracking")
	}
	if m.Weight(xag.KindAnd) != 1 || m.Weight(xag.KindXor) != 0 {
		t.Fatal("MC weights: AND=1, XOR=0")
	}
}

func TestSizeGain(t *testing.T) {
	m := Size()
	g, _ := m.Gain(Costs{Ands: 2, Xors: 5}, Costs{Ands: 3, Xors: 1})
	if g != 3 {
		t.Fatalf("size gain = %d, want 3", g)
	}
	if m.Weight(xag.KindXor) != 1 {
		t.Fatal("size weights every gate 1")
	}
	if !m.Improved(xag.Counts{And: 3, Xor: 3}, xag.Counts{And: 4, Xor: 1}) {
		t.Fatal("size improvement is AND+XOR")
	}
}

func TestDepthGainLexicographic(t *testing.T) {
	m := Depth()
	// A depth reduction outranks any AND increase the clamp allows.
	deep, _ := m.Gain(Costs{Ands: 1, Xors: 0, Depth: 5}, Costs{Ands: 120, Xors: 0, Depth: 4})
	if deep <= 0 {
		t.Fatalf("depth reduction rejected: gain %d", deep)
	}
	flatter, _ := m.Gain(Costs{Ands: 10, Depth: 5}, Costs{Ands: 1, Depth: 5})
	if flatter <= 0 {
		t.Fatalf("depth-neutral AND reduction rejected: gain %d", flatter)
	}
	if flatter >= deep {
		t.Fatalf("AND tiebreak (%d) outranked depth gain (%d)", flatter, deep)
	}
	// Depth increase is never profitable, whatever the AND gain.
	worse, _ := m.Gain(Costs{Ands: 200, Depth: 3}, Costs{Ands: 1, Depth: 4})
	if worse >= 0 {
		t.Fatalf("depth increase scored gain %d", worse)
	}
	if !m.NeedsDepth() {
		t.Fatal("depth model requires depth tracking")
	}
}

func TestDepthImprovedAndTiebreak(t *testing.T) {
	m := Depth()
	if !m.Improved(xag.Counts{And: 10, AndDepth: 5}, xag.Counts{And: 12, AndDepth: 4}) {
		t.Fatal("depth decrease must count as improvement")
	}
	if !m.Improved(xag.Counts{And: 10, AndDepth: 5}, xag.Counts{And: 9, AndDepth: 5}) {
		t.Fatal("AND decrease at equal depth must count as improvement")
	}
	if m.Improved(xag.Counts{And: 10, AndDepth: 5}, xag.Counts{And: 2, AndDepth: 6}) {
		t.Fatal("deeper network is never an improvement")
	}
}

func TestBetterEntrySelection(t *testing.T) {
	shallow := Impl{Ands: 4, Xors: 6, Depth: 2}
	small := Impl{Ands: 3, Xors: 2, Depth: 3}
	if !Depth().Better(shallow, small) {
		t.Fatal("depth model must prefer the shallower implementation")
	}
	if !MC().Better(small, shallow) {
		t.Fatal("MC model must prefer the smaller implementation")
	}
}

func TestCutRank(t *testing.T) {
	if r := MC().CutRank([]int{9, 1}); r != 0 {
		t.Fatalf("MC cut rank = %d, want 0 (keep default order)", r)
	}
	if r := Depth().CutRank([]int{2, 7, 3}); r != 7 {
		t.Fatalf("depth cut rank = %d, want max leaf depth 7", r)
	}
}
