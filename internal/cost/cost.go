// Package cost defines the pluggable cost-model layer of the rewriting
// engine: the objective a run optimizes for, expressed as a small interface
// instead of ad-hoc branching on an enum.
//
// Three models ship with the repository:
//
//   - MC minimizes the AND count — the multiplicative complexity of the
//     paper (DAC 2019), and the default.
//   - Size minimizes AND+XOR count alike, the classical size baseline the
//     paper compares against.
//   - Depth minimizes the multiplicative depth (the longest chain of AND
//     gates from any input to any output), with AND count as tiebreak. This
//     is the objective of Haener & Soeken, "Lowering the T-depth of Quantum
//     Circuits By Reducing the Multiplicative Depth Of Logic Networks":
//     multiplicative depth dominates FHE noise growth and the T-depth of
//     fault-tolerant quantum circuits.
//
// The engine consults the model at every decision point that used to branch
// on the old core.Cost enum: ranking candidate cuts during enumeration,
// scoring a replacement's gain against the maximum fanout-free cone,
// selecting among several stored database implementations of one affine
// class, and deciding whether a round improved the network. New objectives
// (weighted gates, depth×size products) only need a new Model — no engine
// surgery.
package cost

import (
	"fmt"

	"repro/internal/xag"
)

// Costs is the cost vector of one cone of logic: the gates it contains and
// the multiplicative depth at its root. The engine fills Depth only for
// models that report NeedsDepth; other models must not read it.
type Costs struct {
	Ands int // AND gates in the cone
	Xors int // XOR gates in the cone
	// Depth is the multiplicative depth at the cone's root (AND gates on
	// the longest input-to-root path, counting logic above the cone too).
	Depth int
}

// Impl summarizes one stored database implementation of a function class,
// for model-driven selection when several circuits realize the class.
type Impl struct {
	Ands  int // AND steps of the stored circuit
	Xors  int // worst-case XOR gates of a materialization
	Depth int // multiplicative depth of the stored circuit (inputs at 0)
}

// Model is one optimization objective. Implementations must be immutable
// and safe for concurrent use: the engine shares one model across all
// workers of a round.
type Model interface {
	// Name returns the CLI-facing identifier ("mc", "size", "depth").
	Name() string

	// Weight returns the cost weight one gate of the given kind contributes
	// to a network under this model (e.g. 1/0 for MC, 1/1 for Size).
	// Depth-style models weight the gates that extend critical paths.
	Weight(kind xag.Kind) int

	// Gain scores replacing a cone costing old with an implementation
	// costing new. The engine maximizes gain; tie orders candidates with
	// equal gain (lower is better). A replacement is applied only when its
	// gain is positive (or zero, with AllowZeroGain).
	Gain(old, new Costs) (gain, tie int)

	// Improved reports whether a rewriting round's output improves on its
	// input under this model; the convergence loop stops when it returns
	// false.
	Improved(before, after xag.Counts) bool

	// NeedsDepth reports whether the model requires per-node multiplicative
	// depth tracking (Costs.Depth, Impl.Depth) to evaluate gains. The
	// engine only pays for depth maintenance when this is true.
	NeedsDepth() bool

	// Better reports whether stored implementation a should be preferred
	// over b when several database circuits realize the same class.
	Better(a, b Impl) bool

	// CutRank returns a pruning priority for a candidate cut whose leaves
	// sit at the given multiplicative depths: lower ranks are kept
	// preferentially when the per-node cut budget overflows. Models that do
	// not care return a constant, which keeps the enumerator's default
	// (size, leaf-order) ranking bit-identical.
	CutRank(leafDepths []int) int
}

// MC returns the multiplicative-complexity model: minimize AND gates, break
// ties by XOR delta. This is the paper's objective and the default
// throughout the repository.
func MC() Model { return mcModel{} }

// Size returns the generic size model: AND and XOR gates count alike, the
// baseline the paper's tables compare against.
func Size() Model { return sizeModel{} }

// Depth returns the multiplicative-depth model: minimize the AND depth at
// the root, with AND-count reduction as tiebreak. Depth-neutral rewrites
// that reduce the AND count are also accepted, so a converged depth run
// never has more AND gates than it needs for its depth.
func Depth() Model { return depthModel{} }

// Models returns the built-in models in presentation order.
func Models() []Model { return []Model{MC(), Size(), Depth()} }

// FromName resolves a CLI name ("mc", "size", "depth"; "" defaults to
// "mc") to its model.
func FromName(name string) (Model, error) {
	switch name {
	case "", "mc":
		return MC(), nil
	case "size":
		return Size(), nil
	case "depth":
		return Depth(), nil
	}
	return nil, fmt.Errorf("cost: unknown model %q (want mc, size, or depth)", name)
}

type mcModel struct{}

func (mcModel) Name() string { return "mc" }

func (mcModel) Weight(kind xag.Kind) int {
	if kind == xag.KindAnd {
		return 1
	}
	return 0
}

func (mcModel) Gain(old, new Costs) (int, int) {
	return old.Ands - new.Ands, new.Xors - old.Xors
}

func (mcModel) Improved(before, after xag.Counts) bool {
	return after.And < before.And
}

func (mcModel) NeedsDepth() bool { return false }

func (mcModel) Better(a, b Impl) bool {
	if a.Ands != b.Ands {
		return a.Ands < b.Ands
	}
	return a.Xors < b.Xors
}

func (mcModel) CutRank([]int) int { return 0 }

type sizeModel struct{}

func (sizeModel) Name() string { return "size" }

func (sizeModel) Weight(xag.Kind) int { return 1 }

func (sizeModel) Gain(old, new Costs) (int, int) {
	return (old.Ands + old.Xors) - (new.Ands + new.Xors), new.Xors - old.Xors
}

func (sizeModel) Improved(before, after xag.Counts) bool {
	return after.And+after.Xor < before.And+before.Xor
}

func (sizeModel) NeedsDepth() bool { return false }

func (sizeModel) Better(a, b Impl) bool {
	return a.Ands+a.Xors < b.Ands+b.Xors
}

func (sizeModel) CutRank([]int) int { return 0 }

// depthGainScale separates the depth term of the composite depth gain from
// its AND-count tiebreak term; the AND term is clamped below the scale so
// the comparison stays lexicographic: any depth reduction outranks any
// AND-count change, and among equal depth deltas more AND reduction wins.
const (
	depthGainScale = 256
	depthAndClamp  = depthGainScale/2 - 1
)

type depthModel struct{}

func (depthModel) Name() string { return "depth" }

func (depthModel) Weight(kind xag.Kind) int {
	if kind == xag.KindAnd {
		return 1
	}
	return 0
}

func (depthModel) Gain(old, new Costs) (int, int) {
	and := old.Ands - new.Ands
	if and > depthAndClamp {
		and = depthAndClamp
	} else if and < -depthAndClamp {
		and = -depthAndClamp
	}
	return (old.Depth-new.Depth)*depthGainScale + and, new.Xors - old.Xors
}

func (depthModel) Improved(before, after xag.Counts) bool {
	if after.AndDepth != before.AndDepth {
		return after.AndDepth < before.AndDepth
	}
	return after.And < before.And
}

func (depthModel) NeedsDepth() bool { return true }

func (depthModel) Better(a, b Impl) bool {
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.Ands != b.Ands {
		return a.Ands < b.Ands
	}
	return a.Xors < b.Xors
}

func (depthModel) CutRank(leafDepths []int) int {
	rank := 0
	for _, d := range leafDepths {
		if d > rank {
			rank = d
		}
	}
	return rank
}
