package core

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/cut"
	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/tt"
	"repro/internal/xag"
)

// Engine is a rewriting engine with an owner for its cache state: the
// database (classification cache + representative circuits) lives for the
// engine's lifetime, so every round — and every subsequent network pushed
// through the same engine — reuses prior classifications. Engines created
// with Workers > 1 run the classification stage of each round on a bounded
// worker pool; the committed result is bit-identical for any worker count.
//
// A round is a three-stage pipeline:
//
//  1. enumerate: k-feasible priority cuts for every node (level-parallel);
//  2. classify: workers shard the nodes, shrink each cut function,
//     affine-classify it and fetch the representative circuit from the
//     shared database — the expensive, embarrassingly parallel part. No
//     worker touches the network; each writes only its own result slots.
//  3. commit: an id-order pass re-validates every candidate's gain against
//     the evolving network (MFFC, leaf liveness), applies the winners, and
//     runs the always-on per-replacement truth-table check. With Workers >
//     1 the pass is conflict-gated (parcommit.go): a parallel predictor
//     evaluates every node against the round-start network and records its
//     read footprint, a partitioner colors the predicted rewrites into
//     non-overlapping batches for the metrics, and the id-order scan then
//     skips exactly the nodes proven untouched by earlier commits,
//     re-running everything else — so the committed network is byte-for-
//     byte the sequential result.
//
// Because stage 2 computes pure per-cut facts (deterministic classification
// and synthesis results keyed by truth table) and stage 3 commits in
// node-id order, the committed network never depends on worker scheduling.
//
// An Engine itself must be used from one goroutine at a time (the
// parallelism lives inside Round); the database it owns may be shared.
type Engine struct {
	db   *mcdb.DB
	opts Options
	deg  Degradation
	met  engineMetrics

	logMu sync.Mutex // serializes Options.Logf calls from workers

	// Scratch for the engine-goroutine side of the commit stage; the
	// parallel commit predictor gives each worker its own commitScratch.
	sc commitScratch
}

// commitScratch bundles the reusable buffers of candidate re-validation —
// MFFC cone buffers, a leaf-id buffer, TFI-walk stamps, and a region
// staging slice — so evaluating a node's candidates allocates nothing. A
// commitScratch belongs to one goroutine.
type commitScratch struct {
	cone      xag.ConeScratch
	leafBuf   []int
	tfi       xag.TFIScratch
	regionTmp []int32
}

// NewEngine returns an engine over db (one is created when nil) with the
// given options. MaxRounds and Verify are ignored here — they belong to the
// Minimize convergence loop; Round always performs exactly one pass.
func NewEngine(db *mcdb.DB, opts Options) *Engine {
	opts = opts.withDefaults()
	if db == nil {
		db = mcdb.New(opts.DBOptions)
	}
	e := &Engine{db: db, opts: opts, met: newEngineMetrics(opts.Metrics)}
	if opts.Metrics != nil {
		db.RegisterMetrics(opts.Metrics)
	}
	return e
}

// DB returns the engine's database (shared classification and entry cache).
func (e *Engine) DB() *mcdb.DB { return e.db }

// Degraded returns the fault counters accumulated over all rounds run so
// far on this engine.
func (e *Engine) Degraded() Degradation { return e.deg }

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf == nil {
		return
	}
	e.logMu.Lock()
	defer e.logMu.Unlock()
	e.opts.Logf(format, args...)
}

// Round performs one rewriting pass (Algorithm 1) over all gates of the
// network and returns the cleaned-up result. The input must be compact
// (freshly built or Cleanup'ed); it is consumed by the call. A non-nil
// error reports cancellation; the returned network is still valid and
// reflects the replacements committed before the interruption.
func (e *Engine) Round(ctx context.Context, net *xag.Network) (*xag.Network, RoundStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Round is a stateless one-pass API: callers may feed unrelated networks
	// in sequence, so no cross-round state is kept (nil incState).
	degBefore := e.deg
	out, stats, err := e.round(ctx, net, &e.deg, nil)
	e.met.observeDegradation(e.deg.sub(degBefore))
	return out, stats, err
}

// prepared is the precomputed, network-independent part of one cut's
// replacement candidate: everything stage 2 can decide from the cut
// function alone. Gain and leaf liveness are deliberately absent — they
// depend on the evolving network and are re-validated at commit time.
type prepared struct {
	cut      int      // index into the node's cut list
	constant *xag.Lit // non-nil when the cut function is constant
	want     tt.T     // shrunk cut function (after fault injection)
	leaves   []xag.Lit
	entry    *mcdb.Entry
	tr       spectral.Transform
	newAnds  int
	newXors  int
}

// round runs one three-stage pass. When inc is non-nil the round consumes
// inc's seeds (cut lists and classifications of nodes untouched by the
// previous round) and refills inc with seeds for the next round; a nil inc
// is a stateless full round. The committed result is bit-identical either
// way: seeds are reused only when provably equal to a fresh recomputation.
func (e *Engine) round(ctx context.Context, net *xag.Network, deg *Degradation, inc *incState) (*xag.Network, RoundStats, error) {
	start := time.Now()
	stats := RoundStats{Before: net.CountGates()}
	var (
		cuts   *cut.Set
		prep   [][]prepared
		depths []int // round-start depth snapshot (depth-ranked models only)
	)
	finish := func(err error) (*xag.Network, RoundStats, error) {
		out, oldToNew := net.CleanupMap()
		if inc != nil {
			if err == nil {
				e.carryState(inc, net, out, oldToNew, cuts, prep, depths)
			} else {
				inc.valid = false // interrupted round: drop the seeds
			}
		}
		stats.After = out.CountGates()
		stats.Duration = time.Since(start)
		// Interrupted rounds count too: their committed rewrites are real.
		e.met.observeRound(stats)
		return out, stats, err
	}

	params := cut.Params{K: e.opts.CutSize, Limit: e.opts.CutLimit}
	if e.opts.Cost.NeedsDepth() {
		// Fill every depth cache up front: afterwards concurrent AndDepth
		// reads are pure, so the rank callback is safe inside the
		// level-parallel enumeration workers.
		net.EnsureDepths()
		model := e.opts.Cost
		params.Rank = func(leaves []int) int {
			ds := make([]int, len(leaves))
			for i, id := range leaves {
				ds[i] = net.AndDepth(id)
			}
			return model.CutRank(ds)
		}
		if inc != nil {
			// Snapshot the depths the ranks are computed from: next round's
			// reuse must prove each seed leaf still ranks identically.
			depths = make([]int, net.NumNodes())
			for i := range depths {
				depths[i] = -1
			}
			for _, id := range net.LiveNodes() {
				depths[id] = net.AndDepth(id)
			}
		}
	}
	var seed *cut.Seed
	var seedPrep [][]prepared
	if inc != nil && inc.valid {
		leafOK := inc.leafOK
		if params.Rank != nil {
			// Ranked enumeration: a leaf is only safe if its depth — the
			// rank input — matches the snapshot the seed was pruned with.
			leafOK = make([]bool, len(inc.leafOK))
			for id := range leafOK {
				leafOK[id] = inc.leafOK[id] && inc.depth != nil && id < len(inc.depth) &&
					inc.depth[id] == net.AndDepth(id)
			}
		}
		seed = &cut.Seed{Cuts: inc.cuts, LeafOK: leafOK}
		seedPrep = inc.prep
	}

	var enumerated int
	var changed []bool
	var err error
	stageStart := time.Now()
	pprof.Do(ctx, pprof.Labels("stage", "enumerate"), func(ctx context.Context) {
		cuts, changed, enumerated, err = cut.EnumerateIncremental(ctx, net, params, e.opts.Workers, seed)
	})
	stats.EnumerateTime = time.Since(stageStart)
	if err != nil {
		return finish(err)
	}
	order := net.LiveNodes()
	for _, id := range order {
		if net.IsGate(id) {
			stats.Gates++
		}
	}
	stats.Enumerated = enumerated

	// A classification seed survives iff the node's cut list provably did
	// not change this round (the prepared entries are pure functions of the
	// list and the immutable per-class database state).
	var seedOK []bool
	if seedPrep != nil {
		seedOK = make([]bool, len(inc.prepOK))
		for id := range seedOK {
			seedOK[id] = inc.prepOK[id] && id < len(changed) && !changed[id]
		}
	}

	var memo *prepMemo
	if inc != nil {
		memo = inc.memo
	}
	var classified int
	stageStart = time.Now()
	pprof.Do(ctx, pprof.Labels("stage", "classify"), func(ctx context.Context) {
		prep, classified, err = e.classifyStage(ctx, net, order, cuts, seedPrep, seedOK, memo, deg)
	})
	stats.ClassifyTime = time.Since(stageStart)
	if err != nil {
		// Canceled before anything was committed: the network is unchanged.
		return finish(err)
	}
	stats.Classified = classified

	// Track which nodes the commits touch, so carryState can tell clean
	// cones (reusable) from dirty ones.
	net.BeginDirtyEpoch()
	stageStart = time.Now()
	pprof.Do(ctx, pprof.Labels("stage", "commit"), func(ctx context.Context) {
		if e.parCommitEligible(order) {
			err = e.commitStageParallel(ctx, net, order, cuts, prep, &stats, deg)
		} else {
			err = e.commitStage(ctx, net, order, cuts, prep, &stats, deg)
		}
	})
	stats.CommitTime = time.Since(stageStart)
	return finish(err)
}

// classifyStage runs stage 2: workers pull chunks of node indices from a
// shared counter, classify every cut function of their nodes against the database,
// and record the replacement candidates in their node's slot (indexed by
// node id) of the result slice. Nodes whose seedOK entry is set adopt the
// previous round's candidates verbatim instead of being reclassified; with a
// non-nil memo (incremental Minimize), repeated cut functions replay their
// memoized classification instead of hitting the database again. The
// returned count is the number of gates that performed at least one real
// database classification this round (seed adoptions and fully memo-served
// nodes are excluded). Workers read only immutable state (the compact
// network, the cut set, the concurrent database), so no locks are needed
// beyond the database's and the memo's own.
// classifyChunk is how many order slots a classify worker claims per fetch:
// batching the shared-counter traffic keeps workers streaming through their
// own cache-warm run of nodes instead of interleaving per node.
const classifyChunk = 32

// prepKey is the worker-local memo key: a shrunk cut function packed into 9
// bytes (truth-table word plus variable count). Distinct from tt.T only in
// layout — the narrower key keeps the per-worker maps compact and their
// hashing cheap on the classify fast path.
type prepKey struct {
	bits uint64
	n    int8
}

// localPrepPool recycles the worker-local classification maps across rounds
// and engines. Maps are returned cleared; pooling preserves their grown
// bucket arrays, so warm rounds skip the per-worker map growth entirely.
var localPrepPool = sync.Pool{
	New: func() interface{} { return make(map[prepKey]*memoPrep, 4*classifyChunk) },
}

func (e *Engine) classifyStage(ctx context.Context, net *xag.Network, order []int, cuts *cut.Set, seedPrep [][]prepared, seedOK []bool, memo *prepMemo, deg *Degradation) ([][]prepared, int, error) {
	prep := make([][]prepared, net.NumNodes())
	workers := e.opts.Workers
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		next       atomic.Int64
		classified atomic.Int64
		degMu      sync.Mutex
		wg         sync.WaitGroup
		canceled   atomic.Bool
	)
	work := func() {
		defer wg.Done()
		var local Degradation
		defer func() {
			degMu.Lock()
			deg.add(local)
			degMu.Unlock()
		}()
		// Worker-local classification cache: repeated cut functions within
		// this worker's stream are served without touching the sharded memo
		// or the database's striped class cache. Pure traffic amortization —
		// values entering it are the canonical memo/database verdicts, and
		// the fresh accounting is unchanged (a local hit replays a function
		// this worker already classified, which the shared memo would have
		// answered too). Keyed by the packed (bits, n) pair and recycled
		// through a pool so steady-state rounds reuse grown hash buckets
		// instead of re-growing a fresh map per worker per round.
		localPrep := localPrepPool.Get().(map[prepKey]*memoPrep)
		defer func() {
			for k := range localPrep {
				delete(localPrep, k)
			}
			localPrepPool.Put(localPrep)
		}()
		for {
			base := int(next.Add(classifyChunk)) - classifyChunk
			if base >= len(order) {
				return
			}
			if ctx.Err() != nil {
				canceled.Store(true)
				return
			}
			for _, id := range order[base:min(base+classifyChunk, len(order))] {
				if !net.IsGate(id) {
					continue
				}
				if seedOK != nil && id < len(seedOK) && seedOK[id] {
					prep[id] = seedPrep[id]
					continue
				}
				p, fresh := e.prepareNode(id, cuts.For(id), memo, localPrep, &local)
				prep[id] = p
				if memo == nil || fresh {
					classified.Add(1)
				}
			}
		}
	}
	if workers == 1 {
		// Run inline: single-worker rounds stay goroutine-free, which keeps
		// stack traces and profiles of sequential runs trivial to read.
		wg.Add(1)
		work()
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go work()
		}
		wg.Wait()
	}
	if canceled.Load() || ctx.Err() != nil {
		return nil, 0, ctx.Err()
	}
	return prep, int(classified.Load()), nil
}

// prepareNode computes the replacement candidates of one node. With a
// non-nil memo, cut functions classified earlier in the same Minimize call
// replay their memoized database verdict instead of repeating the lookup;
// the non-nil worker-local cache short-circuits both the memo's sharded
// locks and the database's striped class cache for functions this worker
// already resolved. fresh reports whether at least one cut actually went to
// the database. A panic in cut evaluation, classification, or synthesis is
// recovered and counted — one poisoned node cannot take down the worker
// pool.
func (e *Engine) prepareNode(id int, cuts []cut.Cut, memo *prepMemo, localPrep map[prepKey]*memoPrep, deg *Degradation) (out []prepared, fresh bool) {
	defer func() {
		if r := recover(); r != nil {
			deg.RecoveredPanics++
			e.logf("core: node %d: recovered panic in classification: %v", id, r)
			out = nil
		}
	}()
	if len(cuts) > 0 {
		out = make([]prepared, 0, len(cuts))
	}
	// One backing array for every cut's leaf literals: candidates reference
	// disjoint sub-slices, so the node costs one allocation instead of one
	// per cut.
	var leafArena []xag.Lit
	for ci := range cuts {
		c := &cuts[ci]
		if c.Size() < 2 {
			continue // trivial cut
		}
		// Work on the support of the cut function only.
		sh, from := c.Table.Shrink()
		// Fault-injection point: tests flip truth-table bits here to prove
		// the end-of-round miter catches an internally-consistent wrong
		// rewrite. Fires inside workers; the registry serializes hooks.
		faultinject.Inject(faultinject.PointCutFunction, &sh)
		if sh.N == 0 {
			lit := xag.Const0
			if sh.IsConst1() {
				lit = xag.Const1
			}
			out = append(out, prepared{cut: ci, constant: &lit})
			continue
		}

		lk := prepKey{sh.Bits, int8(sh.N)}
		mp := localPrep[lk]
		if mp == nil && memo != nil {
			mp, _ = memo.get(sh)
		}
		if mp == nil {
			fresh = true
			// Model-driven entry selection: the database may hold several
			// circuits per class (an MC-optimal one, a shallower one); the
			// model picks. For the MC model this is exactly the old Lookup.
			entry, res := e.db.LookupModel(sh, e.opts.Cost)
			mp = &memoPrep{entry: entry, tr: res.Tr, incomplete: !res.Complete}
			switch {
			case mp.incomplete && !e.opts.UseIncomplete:
				// Skipped below; the entry is never consulted, so its
				// validity is irrelevant.
			case entry.Validate() != nil:
				mp.invalid = true
				e.logf("core: node %d: invalid database entry: %v", id, entry.Validate())
			default:
				mp.newAnds = entry.MC()
				mp.newXors = entry.XorCost() + res.Tr.XorCost()
			}
			if memo != nil {
				mp = memo.put(sh, mp)
			}
		}
		localPrep[lk] = mp
		// Replay the verdict. Degradation counters stay per-cut (a memo hit
		// on a bad function still counts), matching the memo-free path; only
		// the log line is emitted once per function instead of per node.
		if mp.incomplete && !e.opts.UseIncomplete {
			deg.IncompleteClassifications++
			continue
		}
		if mp.invalid {
			deg.InvalidEntries++
			continue
		}
		if leafArena == nil {
			leafArena = make([]xag.Lit, 0, tt.MaxVars*len(cuts))
		}
		base := len(leafArena)
		for _, origVar := range from {
			leafArena = append(leafArena, xag.MakeLit(c.Leaf(origVar), false))
		}
		leaves := leafArena[base:len(leafArena):len(leafArena)]
		out = append(out, prepared{
			cut:     ci,
			want:    sh,
			leaves:  leaves,
			entry:   mp.entry,
			tr:      mp.tr,
			newAnds: mp.newAnds,
			newXors: mp.newXors,
		})
	}
	return out, fresh
}

// commitStage runs stage 3: the deterministic sequential pass that turns
// candidates into substitutions. It mirrors the original single-threaded
// algorithm exactly — same node order, same gain formula, same tie-breaks,
// same guards — so the result is bit-identical to a sequential run.
func (e *Engine) commitStage(ctx context.Context, net *xag.Network, order []int, cuts *cut.Set, prep [][]prepared, stats *RoundStats, deg *Degradation) error {
	for step, id := range order {
		if step%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if e.opts.MaxRewritesPerRound > 0 && stats.Replacements >= e.opts.MaxRewritesPerRound {
			break
		}
		if !net.IsGate(id) {
			continue
		}
		if net.Resolve(xag.MakeLit(id, false)).Node() != id {
			continue // already replaced in this round
		}
		if net.Ref(id) == 0 {
			continue // died as part of an earlier replacement
		}
		if e.commitNodeProtected(net, id, cuts.For(id), prep[id], deg) {
			stats.Replacements++
		}
	}
	return nil
}

// commitNodeProtected isolates one node's commit: a panic anywhere in gain
// evaluation or realization is recovered, counted, and treated as "no
// replacement".
func (e *Engine) commitNodeProtected(net *xag.Network, id int, cuts []cut.Cut, prep []prepared, deg *Degradation) (applied bool) {
	defer func() {
		if r := recover(); r != nil {
			deg.RecoveredPanics++
			e.logf("core: node %d: recovered panic: %v", id, r)
			applied = false
		}
	}()
	// Fault-injection point: tests panic or delay here to exercise the
	// recovery and cancellation paths.
	faultinject.Inject(faultinject.PointNode, id)
	return e.commitNode(net, id, cuts, prep, deg)
}

// commitNode re-validates the node's prepared candidates against the
// current network state, picks the most profitable one (steps 1–9 of
// Algorithm 1), and applies it. It reports whether the node was
// substituted.
func (e *Engine) commitNode(net *xag.Network, id int, cuts []cut.Cut, prep []prepared, deg *Degradation) bool {
	best := e.bestReplacement(net, id, cuts, prep, &e.sc, nil)
	return e.applyReplacement(net, id, best, deg)
}

// bestReplacement re-validates the node's prepared candidates against the
// current network state and picks the most profitable one, or nil when no
// candidate survives re-validation. It is a pure read of the network plus
// scratch reuse — no substitution, logging, or counter update happens here,
// which is what lets the parallel commit predictor run it speculatively.
//
// When rec is non-nil, every node id whose refs/repl state the evaluation
// reads (or may read — dead leaves cut the scan short, so the full leaf
// sets are a superset) is recorded: the node itself, each candidate's cut
// leaves, and the MFFC interior plus fanout boundary of live candidates.
// That set is the read footprint of the parallel commit's conflict check
// and must stay complete; see DESIGN.md §14 before touching what the loop
// reads.
func (e *Engine) bestReplacement(net *xag.Network, id int, cuts []cut.Cut, prep []prepared, sc *commitScratch, rec *regionRec) *replacement {
	model := e.opts.Cost
	needsDepth := model.NeedsDepth()
	if rec != nil {
		rec.add(id)
	}
	var best *replacement
	consider := func(r *replacement) {
		if best == nil || r.gain > best.gain ||
			(r.gain == best.gain && r.tie < best.tie) {
			best = r
		}
	}
	for pi := range prep {
		p := &prep[pi]
		c := &cuts[p.cut]
		// Cut leaves must still be current, live nodes: earlier
		// substitutions in this round may have retired or killed them, and
		// realizing a cut on a dead leaf would silently resurrect its whole
		// cone.
		live := true
		for i := 0; i < c.Size(); i++ {
			leaf := c.Leaf(i)
			if rec != nil {
				rec.add(leaf)
			}
			if net.Resolve(xag.MakeLit(leaf, false)).Node() != leaf {
				live = false
				break
			}
			if net.IsGate(leaf) && net.Ref(leaf) == 0 {
				live = false
				break
			}
		}
		if !live {
			continue
		}

		// Re-validated cost of the cone the replacement would retire, against
		// the evolving network; models that don't need depth never pay for it.
		sc.leafBuf = c.AppendLeaves(sc.leafBuf[:0])
		var oldAnds, oldXors int
		if rec != nil {
			oldAnds, oldXors, sc.regionTmp = net.MFFCRegionScratch(id, sc.leafBuf, &sc.cone, sc.regionTmp[:0])
			for _, t := range sc.regionTmp {
				rec.add(int(t))
			}
		} else {
			oldAnds, oldXors = net.MFFCScratch(id, sc.leafBuf, &sc.cone)
		}
		old := cost.Costs{Ands: oldAnds, Xors: oldXors}
		if needsDepth {
			old.Depth = net.AndDepth(id)
		}
		if p.constant != nil {
			gain, tie := model.Gain(old, cost.Costs{})
			consider(&replacement{gain: gain, tie: tie, constant: p.constant})
			continue
		}
		neu := cost.Costs{Ands: p.newAnds, Xors: p.newXors}
		if needsDepth {
			// The depth the realized root would have, from the entry's step
			// structure and the current depths of the (shrunk-support) leaf
			// literals. An upper bound: strashing may reuse shallower gates.
			leafDepths := make([]int, len(p.leaves))
			for i, l := range p.leaves {
				leafDepths[i] = net.AndDepth(l.Node())
			}
			neu.Depth = mcdb.RealizedAndDepth(p.entry, p.tr, leafDepths)
		}
		gain, tie := model.Gain(old, neu)
		entry, tr, leaves := p.entry, p.tr, p.leaves
		consider(&replacement{
			gain:    gain,
			tie:     tie,
			realize: func() xag.Lit { return mcdb.Realize(net, entry, tr, leaves) },
			want:    p.want,
			leaves:  leaves,
		})
	}
	if best == nil {
		return nil
	}
	if best.gain < 0 || (best.gain == 0 && !e.opts.AllowZeroGain) {
		return nil
	}
	return best
}

// applyReplacement realizes and substitutes the chosen candidate (nil means
// "no profitable candidate" and is a no-op). It reports whether the node
// was substituted. Realization happens even when the feedback or
// truth-table check then rejects the candidate — the dangling nodes it
// creates die in the end-of-round Cleanup but are observable within the
// round, which is why the parallel commit re-runs (never replays) every
// node whose footprint a prior commit touched.
func (e *Engine) applyReplacement(net *xag.Network, id int, best *replacement, deg *Degradation) bool {
	if best == nil {
		return false
	}
	if best.constant != nil {
		net.Substitute(id, *best.constant)
		return true
	}
	lit := best.realize()
	if net.InTFIScratch(lit, id, &e.sc.tfi) {
		return false // replacement would feed back into the node's cone
	}
	// Always-on per-replacement verification: the realized circuit must
	// compute the cut function over its leaves. A mismatch means the
	// database, classifier, or realization produced a wrong circuit — the
	// substitution is discarded (its dangling nodes die in the end-of-round
	// Cleanup) and counted, so a sick database degrades optimization
	// quality, never correctness.
	if got := functionOf(net, lit, best.leaves); got != best.want {
		deg.RejectedRewrites++
		e.logf("core: node %d: rejected rewrite computing %s, want %s", id, got, best.want)
		return false
	}
	net.Substitute(id, lit)
	return true
}

// Minimize runs rewriting rounds until convergence (or Options.MaxRounds),
// honoring cancellation and the Options.Verify end-of-round miter, and
// returns the optimized network. The input network is not modified.
// Degradation counters accumulate on the engine across calls; the Result
// carries a snapshot.
func (e *Engine) Minimize(ctx context.Context, n *xag.Network) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	e.db.SetContext(ctx)
	defer e.db.SetContext(nil)

	res := Result{DB: e.db}
	e.met.runs.Inc()
	net := n.Cleanup()
	var ref *xag.Network
	if e.opts.Verify {
		ref = n.Cleanup() // immutable snapshot of the input for the miter
	}
	degBefore := e.deg
	// Cross-round incremental state, local to this Minimize call: later
	// rounds reuse the cut lists and classifications of nodes whose cones
	// the previous round left untouched. Purely a performance feature — see
	// DESIGN.md §10 for the reuse-validity invariant.
	var inc *incState
	if !e.opts.NoIncremental {
		inc = &incState{memo: newPrepMemo()}
	}
	for round := 0; e.opts.MaxRounds == 0 || round < e.opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res.Interrupted = true
			res.Err = err
			break
		}
		var prev *xag.Network
		if e.opts.Verify {
			prev = net.Cleanup() // rollback point: the round consumes net
		}
		var stats RoundStats
		var roundErr error
		net, stats, roundErr = e.round(ctx, net, &e.deg, inc)
		res.Rounds = append(res.Rounds, stats)

		if e.opts.Verify {
			if verr := sim.Equal(ref, net, e.opts.VerifyRounds, e.opts.VerifySeed); verr != nil {
				e.deg.RolledBackRounds++
				e.logf("core: round %d rolled back: %v", len(res.Rounds), verr)
				net = prev
				if inc != nil {
					inc.valid = false // seeds describe the rolled-back network
				}
				res.Err = &VerifyError{Round: len(res.Rounds), Cause: verr}
				break
			}
		}
		if roundErr != nil { // canceled mid-round; partial round already checked
			res.Interrupted = true
			res.Err = roundErr
			break
		}
		if !e.opts.Cost.Improved(stats.Before, stats.After) {
			res.Converged = true
			break
		}
	}
	res.Network = net
	res.Degraded = e.deg.sub(degBefore)
	e.met.observeDegradation(res.Degraded)
	if res.Interrupted {
		e.met.interrupted.Inc()
	}
	if res.Converged {
		e.met.converged.Inc()
	}
	return res
}
