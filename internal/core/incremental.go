package core

import (
	"math"
	"sync"

	"repro/internal/cut"
	"repro/internal/mcdb"
	"repro/internal/spectral"
	"repro/internal/tt"
	"repro/internal/xag"
)

// prepMemo caches the database-derived part of one cut function's
// classification for the lifetime of one Minimize call: entry selection,
// transform, costs, and the degradation verdicts. Within a Minimize the
// per-class database state is append-stable (a class front is synthesized on
// first lookup and never changes afterwards), so the memoized value is
// exactly what a fresh LookupModel would return — replaying it preserves
// bit-identical commits while skipping the lookup's lock, Pareto scan, and
// validation for every repeated function. The memo is sharded like the
// database's own classification cache so classify workers rarely contend.
type prepMemo struct {
	shards [16]prepMemoShard
}

type prepMemoShard struct {
	mu sync.RWMutex
	m  map[tt.T]*memoPrep
}

// memoPrep is one memoized classification. Exactly one of the three shapes
// holds: skip (incomplete or invalid — the cut contributes no candidate),
// constant (sh.N == 0 handled before the memo), or a usable entry.
type memoPrep struct {
	entry      *mcdb.Entry
	tr         spectral.Transform
	newAnds    int
	newXors    int
	incomplete bool // counted as IncompleteClassifications when skipped
	invalid    bool // counted as InvalidEntries
}

func newPrepMemo() *prepMemo {
	pm := &prepMemo{}
	for i := range pm.shards {
		pm.shards[i].m = make(map[tt.T]*memoPrep)
	}
	return pm
}

func (pm *prepMemo) shardOf(f tt.T) *prepMemoShard {
	h := (f.Bits ^ uint64(f.N)<<57) * 0x9e3779b97f4a7c15
	return &pm.shards[h>>60&15]
}

func (pm *prepMemo) get(f tt.T) (*memoPrep, bool) {
	s := pm.shardOf(f)
	s.mu.RLock()
	mp, ok := s.m[f]
	s.mu.RUnlock()
	return mp, ok
}

// put stores mp under f; first insert wins so every reader observes one
// canonical value (concurrent computations of the same function return
// identical data anyway — the value is deterministic).
func (pm *prepMemo) put(f tt.T, mp *memoPrep) *memoPrep {
	s := pm.shardOf(f)
	s.mu.Lock()
	if prev, ok := s.m[f]; ok {
		s.mu.Unlock()
		return prev
	}
	s.m[f] = mp
	s.mu.Unlock()
	return mp
}

// incState carries per-node facts from one Minimize round into the next:
// candidate cut lists and prepared classifications of nodes the previous
// round's commits left locally untouched, plus the leaf-validity data the
// next round needs to decide which seeds are provably reusable. It is a
// pure cache — a seed is consumed only when reusing it is proven identical
// to recomputing it (DESIGN.md §10), so seeded rounds commit bit-identical
// networks. Invalidated (valid=false) after an interrupted or rolled-back
// round; the next round then runs the full pipeline and refills it.
type incState struct {
	valid  bool
	cuts   *cut.Set     // seed cut lists, indexed by next round's node ids
	prep   [][]prepared // seed classifications, same indexing
	prepOK []bool       // prepOK[id]: prep seed present for id
	leafOK []bool       // leafOK[id]: id's renumbering was order-preserving
	depth  []int        // round-start depth by new id (-1 absent); nil unless ranked

	// memo is the Minimize-lifetime classification memo (see prepMemo). It
	// survives rollbacks and interruptions — its values are keyed by cut
	// function, not network structure, so they stay correct when the seeds
	// above are invalidated.
	memo *prepMemo
}

// carryState distills the finished round into seeds for the next one.
//
// old is the pre-Cleanup network after the commit stage, out its compacted
// image, m the old→new literal map from CleanupMap, cuts/prep the round's
// enumeration and classification results (indexed by old ids), and depths
// the round-start depth snapshot (nil for models without depth ranking).
//
// A gate's cut list is carried only when it can still describe the same
// structure in out:
//
//   - the gate is locally clean — not created or substituted this round,
//     and both stored fanin edges still resolve to themselves — so the node
//     and its immediate wiring are unchanged;
//   - the gate's image is a gate of the same kind whose fanins are the
//     images of the old fanins (in either order), and each fanin kept its
//     gate/input nature — deep substitutions can violate any of these even
//     for a locally clean gate: equal fanin images can collapse the gate, a
//     fanin gate can fold onto an input;
//   - the gate and every leaf of every kept cut survived Cleanup, so the
//     lists renumber into the new id space without losing a variable.
//
// Complemented images are allowed: the rebuild's XOR normalization floats
// complements toward the outputs, so one local substitution can flip the
// images of a whole XOR cone above it without changing its structure.
// TransformLeaves rewrites the tables for the flipped polarities (each
// carried table is the image node's function over the image leaves), which
// keeps the cut seeds valid. Classification seeds cannot cross a polarity
// flip — their truth tables, transforms, and XOR costs are tied to the
// exact unflipped functions — so prep is carried only for fully
// uncomplemented gates.
//
// Whether a carried seed may then be consumed without recomputation is the
// next round's decision (cut.EnumerateIncremental): it requires the fanin
// lists to be unchanged and every candidate leaf to pass leafOK — the
// order-preservation flag computed here (new id above every earlier and
// below every later pre-epoch survivor's, so all leaf-id comparisons inside
// merge, prune tie-breaks, and subsumption come out the same) — plus, for
// ranked runs, an unchanged depth. Seeds that fail are simply recomputed
// and compared, which costs time, never correctness.
func (e *Engine) carryState(inc *incState, old, out *xag.Network, m []xag.Lit, cuts *cut.Set, prep [][]prepared, depths []int) {
	inc.valid = false
	inc.cuts, inc.prep, inc.prepOK, inc.leafOK, inc.depth = nil, nil, nil, nil, nil
	defer func() {
		if r := recover(); r != nil {
			inc.valid = false
			inc.cuts, inc.prep, inc.prepOK, inc.leafOK, inc.depth = nil, nil, nil, nil, nil
			e.logf("core: incremental reuse disabled this round after panic: %v", r)
		}
	}()

	numOld := old.NumNodes()
	numNew := out.NumNodes()
	base := old.DirtyCreatedBase() // nodes with id >= base were created this round

	// Survivors: pre-epoch nodes that kept a node image (of either polarity)
	// across Cleanup, in ascending old-id order. Only their images can serve
	// as seed leaves — seed lists were enumerated at round start, before any
	// node of this epoch existed — so nodes created by the round's commits
	// (which Cleanup renumbers into the middle of the id space) are excluded
	// from the order universe: their scrambled placement is irrelevant to
	// every comparison a seeded re-merge can perform.
	imgNode := make([]int32, numOld)
	for i := range imgNode {
		imgNode[i] = -1
	}
	imgNode[0] = 0
	surv := make([]int, 0, numNew)
	surv = append(surv, 0)
	for id := 1; id < numOld && id < len(m); id++ {
		if m[id] == xag.NullLit {
			continue
		}
		imgNode[id] = int32(m[id].Node())
		if id < base {
			surv = append(surv, id)
		}
	}

	// leafOK (by new id): pre-epoch survivors whose renumbering preserves id
	// order against all other pre-epoch survivors — new id above every
	// earlier survivor's (prefix max) and below every later one's (suffix
	// min). The strict inequalities also reject two old nodes folding onto
	// one image node (equal in the new space, distinct in the old).
	leafOK := make([]bool, numNew)
	pre := make([]bool, len(surv))
	maxBefore := int32(-1)
	for i, id := range surv {
		pre[i] = imgNode[id] > maxBefore
		if imgNode[id] > maxBefore {
			maxBefore = imgNode[id]
		}
	}
	minAfter := int32(math.MaxInt32)
	for i := len(surv) - 1; i >= 0; i-- {
		id := surv[i]
		if nid := imgNode[id]; pre[i] && nid < minAfter {
			leafOK[nid] = true
		}
		if imgNode[id] < minAfter {
			minAfter = imgNode[id]
		}
	}

	var seedDepth []int
	if depths != nil {
		seedDepth = make([]int, numNew)
		for i := range seedDepth {
			seedDepth[i] = -1
		}
		for _, id := range surv {
			if id < len(depths) {
				seedDepth[imgNode[id]] = depths[id] // AND-depth is polarity-invariant
			}
		}
	}

	slots := make([][]cut.Cut, numNew)
	nextPrep := make([][]prepared, numNew)
	prepOK := make([]bool, numNew)
	poisoned := make([]bool, numNew)
	for _, id := range old.LiveNodes() {
		if !old.IsGate(id) {
			continue
		}
		img := m[id]
		if img == xag.NullLit {
			continue
		}
		if old.NodeDirty(id) {
			continue
		}
		f0, f1 := old.Fanins(id)
		if old.Resolve(f0) != f0 || old.Resolve(f1) != f1 {
			continue // a fanin was substituted: the local structure changed
		}
		// The gate's new incarnation must be wired exactly as the old one
		// under the image map: same kind, fanins pointing at the fanins' own
		// image nodes (in either order — the rebuild's normalization may
		// swap them), each fanin keeping its gate/input nature. Fanin
		// complements need no check: the carried tables are functions of the
		// image node over the image leaves, which absorbs every interior
		// polarity the normalization floated around.
		nid := int(img.Node())
		n0, n1 := imgNode[f0.Node()], imgNode[f1.Node()]
		if n0 < 0 || n1 < 0 ||
			!out.IsGate(nid) || out.Kind(nid) != old.Kind(id) ||
			old.IsGate(f0.Node()) != out.IsGate(int(n0)) ||
			old.IsGate(f1.Node()) != out.IsGate(int(n1)) {
			continue
		}
		g0, g1 := out.Fanins(nid)
		if !(g0.Node() == int(n0) && g1.Node() == int(n1) ||
			g0.Node() == int(n1) && g1.Node() == int(n0)) {
			continue
		}
		// Two old gates mapping onto one new slot means the slot's seed
		// would be ambiguous — drop it entirely (vanishingly rare: it takes
		// distinct old structures whose images strash-fold together).
		if poisoned[nid] || slots[nid] != nil {
			slots[nid], nextPrep[nid], prepOK[nid] = nil, nil, false
			poisoned[nid] = true
			continue
		}
		cs := cuts.For(id)
		renumberable := true
		flipped := img.Compl()
		for ci := range cs {
			c := &cs[ci]
			for k := 0; k < c.Size(); k++ {
				l := c.Leaf(k)
				if imgNode[l] < 0 {
					renumberable = false
					break
				}
				if m[l].Compl() {
					flipped = true
				}
			}
			if !renumberable {
				break
			}
		}
		if !renumberable {
			continue // a cut leaf died in Cleanup: the list cannot carry over
		}

		// Renumber the cached facts in place into the new id space, flipping
		// table polarities where Cleanup complemented an image. Leaf order
		// inside a cut — and hence the variable alignment — is preserved
		// whenever the next round actually consumes the seed (leafOK guards
		// it); a garbled list merely fails that round's equality check and
		// is recomputed.
		cut.TransformLeaves(cs, func(l int) (int, bool) { return int(imgNode[l]), m[l].Compl() }, img.Compl())
		slots[nid] = cs
		if !flipped {
			pp := prep[id]
			for pi := range pp {
				for li, l := range pp[pi].leaves {
					pp[pi].leaves[li] = xag.MakeLit(int(imgNode[l.Node()]), l.Compl())
				}
			}
			nextPrep[nid] = pp
			prepOK[nid] = true
		}
	}

	inc.cuts = cut.NewSetFrom(slots)
	inc.prep = nextPrep
	inc.prepOK = prepOK
	inc.leafOK = leafOK
	inc.depth = seedDepth
	inc.valid = true
}
