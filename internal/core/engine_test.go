package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/builder"
	"repro/internal/xag"
)

// md5Style builds a small MD5-flavored mixing network out of builder
// primitives: two rounds of F(b,c,d) = (b∧c) ∨ (¬b∧d) mixed into a rotating
// accumulator with modular adds. Big enough to exercise many distinct cut
// classes, small enough to optimize in a unit test.
func md5Style(w int) *xag.Network {
	b := builder.New()
	a := b.Input("a", w)
	bb := b.Input("b", w)
	c := b.Input("c", w)
	d := b.Input("d", w)
	for round := 0; round < 2; round++ {
		f := make(builder.Bus, w)
		for i := 0; i < w; i++ {
			f[i] = b.MuxNaive(bb[i], c[i], d[i]) // MD5's F as a mux
		}
		sum := b.AddMod(a, f, builder.StyleNaive)
		sum = b.AddMod(sum, b.Const(0xd76aa478&(1<<uint(w)-1), w), builder.StyleNaive)
		rot := b.RotateLeftConst(sum, 3+round*4)
		newB := b.AddMod(bb, rot, builder.StyleNaive)
		a, bb, c, d = d, newB, bb, c
	}
	b.Output("a", a)
	b.Output("b", bb)
	return b.Net.Cleanup()
}

// bristol renders a network in Bristol format for byte-exact comparison.
func bristol(t *testing.T, n *xag.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the engine's core contract: for every worker
// count the committed network is bit-identical — same node ids, same
// literals, same Bristol serialization — to the sequential run.
func TestParallelDeterminism(t *testing.T) {
	nets := map[string]func() *xag.Network{
		"adder-16":  func() *xag.Network { return rippleAdder(16) },
		"md5-style": func() *xag.Network { return md5Style(8) },
	}
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 3; i++ {
		seed := rng.Int63()
		nets["random"] = func() *xag.Network {
			return randomNetwork(rand.New(rand.NewSource(seed)), 8, 120)
		}
		for name, build := range nets {
			ref := MinimizeMC(build(), Options{Workers: 1})
			refB := bristol(t, ref.Network)
			for _, workers := range []int{2, 8} {
				got := MinimizeMC(build(), Options{Workers: workers})
				if got.Final().And != ref.Final().And {
					t.Fatalf("%s: workers=%d AND count %d, want %d",
						name, workers, got.Final().And, ref.Final().And)
				}
				if !bytes.Equal(bristol(t, got.Network), refB) {
					t.Fatalf("%s: workers=%d network differs from sequential run", name, workers)
				}
			}
		}
	}
}

// TestParallelEquivalence checks that parallel runs remain functionally
// correct (not merely self-consistent) on random networks.
func TestParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 4; trial++ {
		n := randomNetwork(rng, 8, 150)
		res := MinimizeMC(n, Options{Workers: 8})
		equalOnRandom(t, n, res.Network, 8, 52)
	}
}

// TestClassCacheHitRate: ISSUE acceptance — after the first round the
// shared classification cache answers most lookups (>50% hit rate on a
// structure-heavy adder, whose stages all share a handful of classes).
// Measured on the full path: in incremental mode (the default) the
// per-Minimize classification memo intercepts repeated functions before
// they reach the database at all, which this test checks separately.
func TestClassCacheHitRate(t *testing.T) {
	res := MinimizeMC(rippleAdder(32), Options{Workers: 4, NoIncremental: true})
	s := res.DB.Stats()
	if s.Classified+s.ClassCacheHits == 0 {
		t.Fatalf("no classifications recorded")
	}
	if rate := s.ClassHitRate(); rate <= 0.5 {
		t.Fatalf("class cache hit rate %.2f, want > 0.5 (hits=%d misses=%d)",
			rate, s.ClassCacheHits, s.Classified)
	}
	full := s.Classified + s.ClassCacheHits

	// The incremental memo must strictly reduce database traffic: the same
	// optimization with reuse on performs fewer lookups (each distinct cut
	// function goes to the database once per Minimize, not once per cut).
	inc := MinimizeMC(rippleAdder(32), Options{Workers: 4})
	si := inc.DB.Stats()
	if got := si.Classified + si.ClassCacheHits; got >= full {
		t.Fatalf("incremental run performed %d database lookups, full run %d — memo not effective", got, full)
	}
}

// TestEngineReuseAcrossNetworks: one engine optimizing two networks reuses
// its database — the second run's classifications hit the warm cache.
func TestEngineReuseAcrossNetworks(t *testing.T) {
	eng := NewEngine(nil, Options{})
	if r := eng.Minimize(context.Background(), rippleAdder(8)); r.Err != nil {
		t.Fatal(r.Err)
	}
	before := eng.DB().Stats()
	if r := eng.Minimize(context.Background(), rippleAdder(8)); r.Err != nil {
		t.Fatal(r.Err)
	}
	after := eng.DB().Stats()
	if after.Classified != before.Classified {
		t.Fatalf("second run re-classified %d functions; the warm cache should answer all",
			after.Classified-before.Classified)
	}
	if after.ClassCacheHits <= before.ClassCacheHits {
		t.Fatalf("second run recorded no cache hits")
	}
}

// TestEngineRoundDeterministic: two fresh engines produce byte-identical
// networks and identical stats for the same input round. (This replaces the
// old comparison against the retired RewriteRound shim.)
func TestEngineRoundDeterministic(t *testing.T) {
	aNet, aStats, err := NewEngine(nil, Options{}).Round(context.Background(), rippleAdder(8))
	if err != nil {
		t.Fatal(err)
	}
	bNet, bStats, err := NewEngine(nil, Options{}).Round(context.Background(), rippleAdder(8))
	if err != nil {
		t.Fatal(err)
	}
	if aStats.Replacements != bStats.Replacements || aStats.After != bStats.After {
		t.Fatalf("stats differ across engines: %+v vs %+v", aStats, bStats)
	}
	if !bytes.Equal(bristol(t, aNet), bristol(t, bNet)) {
		t.Fatalf("networks differ across engines")
	}
}

// TestEngineRoundCancellation: a pre-canceled context leaves the network
// untouched and surfaces the context error.
func TestEngineRoundCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := rippleAdder(8)
	want := in.CountGates()
	eng := NewEngine(nil, Options{Workers: 4})
	out, stats, err := eng.Round(ctx, in)
	if err == nil {
		t.Fatalf("canceled round returned no error")
	}
	if stats.Replacements != 0 {
		t.Fatalf("canceled round committed %d replacements", stats.Replacements)
	}
	if got := out.CountGates(); got != want {
		t.Fatalf("canceled round changed the network: %+v -> %+v", want, got)
	}
}

// TestEngineDegradationAccumulates: Engine.Degraded sums over rounds while
// each Minimize result reports only its own slice.
func TestEngineDegradationAccumulates(t *testing.T) {
	eng := NewEngine(nil, Options{UseIncomplete: false})
	r1 := eng.Minimize(context.Background(), md5Style(6))
	r2 := eng.Minimize(context.Background(), rippleAdder(6))
	want := r1.Degraded.Total() + r2.Degraded.Total()
	if got := eng.Degraded().Total(); got != want {
		t.Fatalf("engine accumulated %d degradation events, want %d", got, want)
	}
}
