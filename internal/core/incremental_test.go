package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/xag"
)

// TestIncrementalMatchesFull is the incremental engine's core contract:
// Minimize with cross-round reuse commits a bit-identical network — same
// node ids, same Bristol serialization — as the full recomputation, for
// every cost model and worker count.
func TestIncrementalMatchesFull(t *testing.T) {
	models := map[string]Cost{
		"mc":    cost.MC(),
		"size":  cost.Size(),
		"depth": cost.Depth(),
	}
	nets := map[string]func() *xag.Network{
		"adder-16":  func() *xag.Network { return rippleAdder(16) },
		"md5-style": func() *xag.Network { return md5Style(8) },
	}
	for name, build := range nets {
		for mName, model := range models {
			ref := MinimizeMC(build(), Options{Workers: 1, Cost: model, NoIncremental: true})
			refB := bristol(t, ref.Network)
			for _, workers := range []int{1, 4} {
				got := MinimizeMC(build(), Options{Workers: workers, Cost: model})
				if !bytes.Equal(bristol(t, got.Network), refB) {
					t.Fatalf("%s/%s: incremental workers=%d network differs from full sequential run",
						name, mName, workers)
				}
				if len(got.Rounds) != len(ref.Rounds) {
					t.Fatalf("%s/%s: incremental ran %d rounds, full ran %d",
						name, mName, len(got.Rounds), len(ref.Rounds))
				}
			}
		}
	}
}

// TestIncrementalMatchesFullRandom drives the same contract through random
// networks, whose irregular structure exercises renumbering, constant
// folding, and partial-reuse paths the structured circuits miss.
func TestIncrementalMatchesFullRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		seed := rng.Int63()
		build := func() *xag.Network {
			return randomNetwork(rand.New(rand.NewSource(seed)), 8, 150)
		}
		ref := MinimizeMC(build(), Options{Workers: 1, NoIncremental: true})
		refB := bristol(t, ref.Network)
		for _, workers := range []int{1, 4} {
			got := MinimizeMC(build(), Options{Workers: workers})
			if !bytes.Equal(bristol(t, got.Network), refB) {
				t.Fatalf("trial %d (seed %d): incremental workers=%d differs from full run",
					trial, seed, workers)
			}
		}
		// Functional sanity on top of byte identity.
		equalOnRandom(t, build(), ref.Network, 8, seed)
	}
}

// TestIncrementalReuseRate: on an adder, rounds after the first re-classify
// fewer than 20% of the gates (most cut functions repeat, and clean cones
// adopt last round's candidates outright), and re-enumeration falls well
// below a full pass once the network goes quiet. The enumeration bound is
// deliberately looser than the classification bound: an adder is a single
// carry chain, so every active round's replacements span the whole id range
// and their dead MFFC interiors invalidate most deep cuts above them —
// measured churn on this circuit is 60–85% in active rounds and <50% only
// in quiet ones (see DESIGN.md §10 for the analysis).
func TestIncrementalReuseRate(t *testing.T) {
	res := MinimizeMC(rippleAdder(64), Options{Workers: 4})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("expected at least 2 rounds, got %d", len(res.Rounds))
	}
	var reEnum, reGates int
	for i, r := range res.Rounds {
		t.Logf("round %d: gates=%d enumerated=%d classified=%d replacements=%d",
			i+1, r.Gates, r.Enumerated, r.Classified, r.Replacements)
		if i == 0 {
			if r.Enumerated != r.Gates {
				t.Fatalf("round 1 must enumerate everything: enumerated=%d gates=%d",
					r.Enumerated, r.Gates)
			}
			if r.Classified > r.Gates {
				t.Fatalf("round 1 classified %d of %d gates", r.Classified, r.Gates)
			}
			continue
		}
		reEnum += r.Enumerated
		reGates += r.Gates
		if r.Enumerated > r.Gates {
			t.Errorf("round %d re-enumerated %d of %d gates", i+1, r.Enumerated, r.Gates)
		}
		if 5*r.Classified >= r.Gates {
			t.Errorf("round %d re-classified %d of %d gates, want < 20%%", i+1, r.Classified, r.Gates)
		}
	}
	// Across all rounds after the first, a meaningful share of enumeration
	// must have been reused (not a full recompute every round).
	if 10*reEnum >= 9*reGates {
		t.Errorf("rounds >= 2 re-enumerated %d of %d gates, want < 90%%", reEnum, reGates)
	}
	// A quiet round — one following a round that committed no replacements —
	// must show deep enumeration reuse: nothing changed, so almost every cut
	// list carries over verbatim.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i-1].Replacements == 0 && 2*res.Rounds[i].Enumerated > res.Rounds[i].Gates {
			t.Errorf("quiet round %d re-enumerated %d of %d gates, want <= 50%%",
				i+1, res.Rounds[i].Enumerated, res.Rounds[i].Gates)
		}
	}
}

// TestNoIncrementalRecomputesEverything: the escape hatch really disables
// reuse — every round is a full pass.
func TestNoIncrementalRecomputesEverything(t *testing.T) {
	res := MinimizeMC(rippleAdder(32), Options{Workers: 2, NoIncremental: true})
	for i, r := range res.Rounds {
		if r.Enumerated != r.Gates || r.Classified != r.Gates {
			t.Fatalf("round %d: enumerated=%d classified=%d, want both == gates=%d",
				i+1, r.Enumerated, r.Classified, r.Gates)
		}
	}
}

// TestIncrementalWithVerifyRollback: a rolled-back round must invalidate
// the carried seeds; here Verify is simply on and passing, checking the
// two features compose (the rollback path itself is exercised by the
// fault-injection tests, which run with incremental defaults).
func TestIncrementalWithVerifyRollback(t *testing.T) {
	for _, noInc := range []bool{false, true} {
		res := MinimizeMC(md5Style(8), Options{Workers: 2, Verify: true, NoIncremental: noInc})
		if res.Err != nil {
			t.Fatalf("noInc=%v: %v", noInc, res.Err)
		}
	}
}

// TestRoundStatsAccounting: Enumerated + seeded slots cover all gates in
// every round.
func TestRoundStatsAccounting(t *testing.T) {
	res := MinimizeMC(rippleAdder(24), Options{Workers: 1})
	for i, r := range res.Rounds {
		if r.Enumerated < 0 || r.Enumerated > r.Gates || r.Classified > r.Gates {
			t.Fatalf("round %d: implausible stats %+v", i+1, r)
		}
	}
	// The stringification below keeps the fields from being optimized into
	// the void if the struct changes shape; it also documents the layout.
	_ = fmt.Sprintf("%+v", res.Rounds[0])
}
