package core

// Conflict-gated parallel commit (DESIGN.md §14).
//
// The commit stage is the engine's Amdahl ceiling: enumerate and classify
// fan out over workers, but commits must land in node-id order against an
// evolving network to keep the result byte-identical across worker counts.
// The expensive part of each commit step, however, is not the substitution
// — it is re-validating every candidate (leaf liveness, MFFC cost, gain)
// against the current network. This file moves exactly that work onto
// workers:
//
//  1. predict (parallel): every node's candidates are evaluated against the
//     round-start network — which is compact and immutable until the first
//     commit, so the evaluation is a pure read — recording the verdict
//     ("would this node rewrite?") and the read footprint: every node id
//     whose refs/repl state the evaluation consulted.
//
//  2. partition: predicted rewrites are greedily colored into conflict-free
//     batches — two rewrites share a batch iff their footprints are
//     disjoint. The partition feeds the mcc_commit_batches_total /
//     mcc_commit_batch_size instruments; it is the measure of available
//     commit parallelism.
//
//  3. execute (sequential scan, parallel effect): the id-order pass runs
//     with write capture armed on the network, so the set of pre-existing
//     nodes mutated by applied rewrites is known at every step. A node
//     predicted not to rewrite whose footprint no commit has touched is
//     finalized without re-evaluation — its sequential outcome is already
//     proven. Every other node (predicted rewrites, conflicted or
//     unpredictable nodes) re-runs the unmodified sequential step.
//
// Byte-identity is therefore structural, not empirical: the executor never
// trusts a prediction that later writes could have invalidated, and the
// work it skips is work the sequential pass would have done to conclude
// "no change". Substitutions themselves stay on the scan goroutine — node
// creation funnels through the shared structural-hash table, so applying
// even footprint-disjoint rewrites concurrently would race on the strash,
// the node arena, and the depth epoch; serializing only the accepted
// substitutions keeps the contended state single-writer while the per-node
// validation cost (the bulk of the stage on rewrite-sparse rounds) scales
// with workers.
//
// The parallel path is skipped — falling back to the reference pass — for
// depth-aware cost models (a depth read reaches arbitrarily deep into the
// TFI, so footprints would cover the network) and while a PointNode
// fault-injection hook is armed (skipping nodes would change how often the
// hook fires, which is exactly what the resilience tests count).

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/cut"
	"repro/internal/faultinject"
	"repro/internal/xag"
)

// parCommitMinLive is the minimum live-node count for the parallel commit:
// below it the prediction fan-out costs more than the pass it accelerates.
const parCommitMinLive = 64

// parCommitChunk is how many order slots an eval worker claims per fetch,
// amortizing the shared-counter traffic over a run of nodes.
const parCommitChunk = 16

// parCommitEligible reports whether this round's commit stage can use the
// conflict-gated parallel path.
func (e *Engine) parCommitEligible(order []int) bool {
	return e.opts.Workers > 1 &&
		!e.opts.SequentialCommit &&
		!e.opts.Cost.NeedsDepth() &&
		len(order) >= parCommitMinLive &&
		!faultinject.Armed(faultinject.PointNode)
}

// commitVerdict is the predictor's output for one node: whether the node
// would rewrite against the round-start network, and the read footprint
// that conclusion depends on. A nil footprint marks an unpredictable node
// (the predictor panicked) that must re-run sequentially.
type commitVerdict struct {
	attempt bool
	fp      []int32
}

// regionRec deduplicates the node ids a candidate evaluation reads,
// building the footprint in first-read order.
type regionRec struct {
	rs  xag.RegionStamp
	ids []int32
}

func (r *regionRec) reset(n int) {
	r.rs.Reset(n)
	r.ids = r.ids[:0]
}

func (r *regionRec) add(id int) {
	if r.rs.Add(id) {
		r.ids = append(r.ids, int32(id))
	}
}

// int32Arena block-allocates footprint slices so a worker's thousands of
// small footprints cost a handful of allocations instead of one each.
type int32Arena struct{ cur []int32 }

func (a *int32Arena) copy(src []int32) []int32 {
	if cap(a.cur)-len(a.cur) < len(src) {
		size := 1 << 14
		if len(src) > size {
			size = len(src)
		}
		a.cur = make([]int32, 0, size)
	}
	base := len(a.cur)
	a.cur = append(a.cur, src...)
	return a.cur[base:len(a.cur):len(a.cur)]
}

// predictNode evaluates one node's candidates against the (immutable,
// compact) round-start network. It must have no observable side effects:
// no logging, no degradation counting, no network mutation — a panic is
// swallowed into the conservative "unpredictable" verdict and the
// sequential re-run recovers, counts, and logs it for real.
func (e *Engine) predictNode(net *xag.Network, id int, cuts []cut.Cut, prep []prepared, sc *commitScratch, rec *regionRec, arena *int32Arena) (v commitVerdict) {
	defer func() {
		if recover() != nil {
			v = commitVerdict{attempt: true, fp: nil}
		}
	}()
	rec.reset(net.NumNodes())
	best := e.bestReplacement(net, id, cuts, prep, sc, rec)
	return commitVerdict{attempt: best != nil, fp: arena.copy(rec.ids)}
}

// evalCommitStage runs the prediction pass: workers claim chunks of the
// node order and fill the per-id verdict table. Workers read only the
// compact round-start network and write only their own verdict slots.
func (e *Engine) evalCommitStage(ctx context.Context, net *xag.Network, order []int, cuts *cut.Set, prep [][]prepared) ([]commitVerdict, error) {
	verdicts := make([]commitVerdict, net.NumNodes())
	workers := e.opts.Workers
	if workers > (len(order)+parCommitChunk-1)/parCommitChunk {
		workers = (len(order) + parCommitChunk - 1) / parCommitChunk
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		canceled atomic.Bool
	)
	work := func() {
		defer wg.Done()
		var sc commitScratch
		var rec regionRec
		var arena int32Arena
		for {
			base := int(next.Add(parCommitChunk)) - parCommitChunk
			if base >= len(order) {
				return
			}
			if ctx.Err() != nil {
				canceled.Store(true)
				return
			}
			end := min(base+parCommitChunk, len(order))
			for _, id := range order[base:end] {
				if !net.IsGate(id) {
					continue
				}
				verdicts[id] = e.predictNode(net, id, cuts.For(id), prep[id], &sc, &rec, &arena)
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go work()
	}
	wg.Wait()
	if canceled.Load() || ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return verdicts, nil
}

// partitionAttempts greedily colors the predicted rewrites into
// conflict-free batches in node-id order: each rewrite takes the lowest
// batch whose members' footprints it does not intersect, tracked as a
// per-node 64-bit batch membership mask. Batches beyond 63 collapse into
// the last lane (an all-conflict chain on a 64+-rewrite round — the
// degenerate case is still well-formed, just coarsely counted). Returns the
// batch count and per-batch sizes.
func partitionAttempts(numNodes int, order []int, verdicts []commitVerdict) (batches int, sizes []int) {
	var claimed []uint64
	for _, id := range order {
		v := verdicts[id]
		if !v.attempt || v.fp == nil {
			continue
		}
		if claimed == nil {
			claimed = make([]uint64, numNodes)
		}
		var used uint64
		for _, t := range v.fp {
			used |= claimed[t]
		}
		b := bits.TrailingZeros64(^used)
		if b > 63 {
			b = 63
		}
		for _, t := range v.fp {
			claimed[t] |= 1 << uint(b)
		}
		for len(sizes) <= b {
			sizes = append(sizes, 0)
		}
		sizes[b]++
	}
	return len(sizes), sizes
}

// footprintClean reports whether no captured write hit the footprint.
func footprintClean(ws *xag.RegionStamp, fp []int32) bool {
	for _, id := range fp {
		if ws.Has(int(id)) {
			return false
		}
	}
	return true
}

// commitStageParallel is the conflict-gated commit pass. It walks the same
// node order as commitStage with the same guards, budget, and cancellation
// stride, but skips — without re-evaluation — every node whose predicted
// "no rewrite" verdict is proven still valid: no commit so far has written
// into the node's read footprint. All other nodes run the unmodified
// sequential step, so the committed network is byte-identical to
// commitStage for every worker count.
func (e *Engine) commitStageParallel(ctx context.Context, net *xag.Network, order []int, cuts *cut.Set, prep [][]prepared, stats *RoundStats, deg *Degradation) error {
	verdicts, err := e.evalCommitStage(ctx, net, order, cuts, prep)
	if err != nil {
		return err
	}
	batches, sizes := partitionAttempts(net.NumNodes(), order, verdicts)
	stats.CommitBatches = batches
	e.met.observeCommitPartition(sizes)

	var ws xag.RegionStamp
	ws.Reset(net.NumNodes())
	net.BeginWriteCapture(&ws)
	defer net.EndWriteCapture()
	for step, id := range order {
		if step%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if e.opts.MaxRewritesPerRound > 0 && stats.Replacements >= e.opts.MaxRewritesPerRound {
			break
		}
		if !net.IsGate(id) {
			continue
		}
		v := verdicts[id]
		if !v.attempt && v.fp != nil {
			if footprintClean(&ws, v.fp) {
				stats.CommitSkipped++
				continue
			}
			stats.CommitConflicts++
		}
		if net.Resolve(xag.MakeLit(id, false)).Node() != id {
			continue // already replaced in this round
		}
		if net.Ref(id) == 0 {
			continue // died as part of an earlier replacement
		}
		if e.commitNodeProtected(net, id, cuts.For(id), prep[id], deg) {
			stats.Replacements++
		}
	}
	return nil
}
