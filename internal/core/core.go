// Package core implements the paper's contribution: cut rewriting of
// XOR-AND graphs to minimize the number of AND gates (the multiplicative
// complexity of the network).
//
// For every gate, k-feasible cuts (k ≤ 6) are enumerated; each cut function
// is classified up to affine equivalence, the multiplicative-complexity-
// optimal circuit of its class representative is fetched from the database,
// and the cut is replaced when doing so reduces the AND count of the
// network. The gain is evaluated DAG-aware against the maximum fanout-free
// cone of the root, as in DAG-aware AIG rewriting. Rounds repeat until no
// further improvement ("repeat until convergence" in the paper's tables).
//
// The same engine doubles as the generic size baseline (cost.Size()): with a
// unit cost for AND and XOR gates it mimics a classical size optimizer,
// which is exactly the comparison point of the paper's experiments.
//
// # Verification and resilience
//
// In the paper's MPC/FHE setting a single wrong rewrite silently breaks a
// cryptographic circuit, so the engine is defensive in depth:
//
//   - every accepted replacement is re-simulated over its cut leaves and
//     rejected (with a counter) if it does not compute the cut function;
//   - Options.Verify adds an end-of-round random-simulation miter against a
//     snapshot of the input network; a failing round is rolled back and
//     reported as a structured *VerifyError;
//   - a panic while processing one node is recovered, logged, and counted —
//     the node is skipped and the run continues;
//   - MinimizeMCContext honors context cancellation at round, node, cut-
//     enumeration and database-search granularity, returning a valid
//     partially-optimized network promptly.
//
// Degradation events are counted in Result.Degraded so callers can alert on
// a sick database or classifier instead of silently losing optimization
// quality.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cost"
	"repro/internal/mcdb"
	"repro/internal/metrics"
	"repro/internal/tt"
	"repro/internal/xag"
)

// Cost selects the gain metric of the rewriting engine. It is an alias of
// cost.Model: the engine consults the model at every decision point —
// ranking cuts, selecting database entries, scoring replacement gains, and
// testing round-over-round improvement.
type Cost = cost.Model

// Options configures the optimizer.
type Options struct {
	CutSize  int // maximum cut size K (2..6, default 6)
	CutLimit int // priority cuts per node (default 12, as in the paper)

	Cost          Cost // gain model (nil = cost.MC(), the paper's objective)
	AllowZeroGain bool // also apply replacements with zero gain

	// UseIncomplete applies rewrites whose classification hit the iteration
	// limit. The paper omits such functions; defaults to false.
	UseIncomplete bool

	// VerifyRewrites is retained for compatibility; the per-replacement
	// truth-table check it used to enable is now always on (mismatches are
	// rejected and counted in Result.Degraded rather than committed).
	VerifyRewrites bool

	// Verify runs an end-of-round equivalence miter (exhaustive for narrow
	// interfaces, 64-bit-parallel random simulation otherwise) against a
	// snapshot of the input network. A failing round is rolled back and the
	// run stops with Result.Err set to a *VerifyError.
	Verify bool
	// VerifyRounds is the number of 64-pattern random-simulation rounds of
	// the miter (default 8; ignored when the check is exhaustive).
	VerifyRounds int
	// VerifySeed seeds the miter's pattern generator (0 = fixed default).
	VerifySeed uint64

	MaxRounds int // bound for MinimizeMC (0 = run until convergence)

	// MaxRewritesPerRound caps the replacements applied per round
	// (0 = unlimited) — a budget knob for latency-bounded callers.
	MaxRewritesPerRound int

	// Workers bounds the worker pool of the parallel cut-enumeration,
	// classification, and commit-prediction stages of each round
	// (0 = GOMAXPROCS, 1 = fully sequential). The committed network is
	// bit-identical for every value: commits land in node-id order
	// regardless, and the parallel commit only skips nodes proven to be
	// no-ops (see DESIGN.md §14).
	Workers int

	// SequentialCommit forces the commit stage of every round onto the
	// single-threaded reference pass even when Workers > 1. The committed
	// network is byte-identical either way — the parallel commit is
	// conflict-gated precisely so it cannot diverge — so this switch exists
	// for bisecting suspected determinism bugs in production and for
	// measuring the parallel commit's contribution, not for correctness.
	SequentialCommit bool

	// NoIncremental disables the cross-round reuse of cut lists and
	// classifications inside Minimize; every round then re-runs the full
	// enumerate→classify pipeline over all nodes. Incremental reuse (the
	// default) is purely a performance feature: a cached per-node fact is
	// reused only when provably identical to a fresh recomputation (see
	// DESIGN.md §10), so the optimized network is bit-identical either way
	// for every cost model and worker count.
	NoIncremental bool

	// Logf, when set, receives one line per degradation event (rejected
	// rewrite, invalid database entry, recovered panic, rolled-back round).
	Logf func(format string, args ...any)

	// Metrics, when set, receives the engine's live counters (rounds,
	// rewrites, AND gates removed, every degradation class) and the
	// database's activity counters under the mcc_* and mcdb_* names; see
	// DESIGN.md §11 for the inventory. Instruments are registered
	// get-or-create, so any number of engines may share one registry.
	Metrics *metrics.Registry

	DB        *mcdb.DB     // database to use; one is created when nil
	DBOptions mcdb.Options // options for the created database
}

func (o Options) withDefaults() Options {
	if o.Cost == nil {
		o.Cost = cost.MC()
	}
	if o.CutSize == 0 {
		o.CutSize = 6
	}
	if o.CutLimit == 0 {
		o.CutLimit = 12
	}
	if o.VerifyRounds == 0 {
		o.VerifyRounds = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// RoundStats reports one rewriting round.
type RoundStats struct {
	Replacements int
	Before       xag.Counts
	After        xag.Counts
	Duration     time.Duration

	// Gates is the number of live gates at the start of the round;
	// Enumerated and Classified count how many of them had their cuts and
	// classifications computed this round (the rest were reused from the
	// previous round). A full round has Enumerated == Classified == Gates;
	// with incremental reuse (the Minimize default) later rounds recompute
	// only the dirty region.
	Gates      int
	Enumerated int
	Classified int

	// Per-stage wall-clock of the round's pipeline (enumerate → classify →
	// commit); Duration additionally covers cleanup and seed carry-over.
	EnumerateTime time.Duration
	ClassifyTime  time.Duration
	CommitTime    time.Duration

	// Parallel-commit observability, all zero when the round used the
	// sequential commit pass: CommitBatches counts the conflict-free
	// batches the partitioner formed from predicted rewrites, CommitSkipped
	// the nodes finalized by the predictor's clean-footprint proof without
	// re-evaluation, and CommitConflicts the nodes re-evaluated because an
	// earlier commit wrote into their read footprint.
	CommitBatches   int
	CommitSkipped   int
	CommitConflicts int
}

// Degradation counts the defensive events of a run: each counter is one
// class of fault that was contained instead of corrupting the result.
type Degradation struct {
	// RejectedRewrites counts replacements discarded because the realized
	// circuit did not compute the cut function (a database or classifier
	// fault caught by the per-replacement truth-table check).
	RejectedRewrites int
	// InvalidEntries counts database entries that failed structural
	// validation; their cuts were skipped.
	InvalidEntries int
	// IncompleteClassifications counts cuts skipped because the spectral
	// classification hit its iteration limit (and UseIncomplete was off).
	IncompleteClassifications int
	// RecoveredPanics counts per-node panics that were recovered; the node
	// was skipped and the round continued.
	RecoveredPanics int
	// RolledBackRounds counts rounds undone by the end-of-round miter.
	RolledBackRounds int
}

// Total returns the sum of all degradation counters.
func (d Degradation) Total() int {
	return d.RejectedRewrites + d.InvalidEntries + d.IncompleteClassifications +
		d.RecoveredPanics + d.RolledBackRounds
}

func (d *Degradation) add(o Degradation) {
	d.RejectedRewrites += o.RejectedRewrites
	d.InvalidEntries += o.InvalidEntries
	d.IncompleteClassifications += o.IncompleteClassifications
	d.RecoveredPanics += o.RecoveredPanics
	d.RolledBackRounds += o.RolledBackRounds
}

func (d Degradation) sub(o Degradation) Degradation {
	return Degradation{
		RejectedRewrites:          d.RejectedRewrites - o.RejectedRewrites,
		InvalidEntries:            d.InvalidEntries - o.InvalidEntries,
		IncompleteClassifications: d.IncompleteClassifications - o.IncompleteClassifications,
		RecoveredPanics:           d.RecoveredPanics - o.RecoveredPanics,
		RolledBackRounds:          d.RolledBackRounds - o.RolledBackRounds,
	}
}

// VerifyError reports that the end-of-round miter found the optimized
// network inequivalent to the input snapshot. The offending round has been
// rolled back: Result.Network is the last state that passed verification.
type VerifyError struct {
	Round int   // 1-based index of the rolled-back round
	Cause error // typically a *sim.Counterexample
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("core: round %d failed verification and was rolled back: %v", e.Round, e.Cause)
}

func (e *VerifyError) Unwrap() error { return e.Cause }

// Result is the outcome of MinimizeMC.
type Result struct {
	Network   *xag.Network
	Rounds    []RoundStats
	Converged bool
	DB        *mcdb.DB

	// Interrupted is true when the run stopped early because its context
	// was canceled; Network is still a valid (partially optimized) circuit.
	Interrupted bool
	// Err is non-nil when the run ended abnormally: a *VerifyError after a
	// rolled-back round, or the context's error after cancellation.
	Err error
	// Degraded counts faults contained during the run.
	Degraded Degradation
}

// Initial returns the gate counts before the first round.
func (r Result) Initial() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[0].Before
}

// Final returns the gate counts after the last round.
func (r Result) Final() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[len(r.Rounds)-1].After
}

// MinimizeMC runs rewriting rounds until convergence (or MaxRounds) and
// returns the optimized network. The input network is not modified.
func MinimizeMC(n *xag.Network, opts Options) Result {
	return MinimizeMCContext(context.Background(), n, opts)
}

// MinimizeMCContext is MinimizeMC with cancellation: deadlines and cancel
// signals are honored between rounds, between nodes within a round, inside
// cut enumeration, and inside database synthesis searches. A canceled run
// returns promptly with Interrupted set and a valid network reflecting the
// rewrites applied so far (each individually equivalence-checked, and
// miter-checked when Verify is on).
func MinimizeMCContext(ctx context.Context, n *xag.Network, opts Options) Result {
	return NewEngine(opts.DB, opts).Minimize(ctx, n)
}

// ctxCheckStride bounds how many nodes are processed between cancellation
// checks inside a round.
const ctxCheckStride = 64

// replacement is a profitable rewrite candidate for one node. gain and tie
// come from the cost model: the engine maximizes gain, with lower tie values
// breaking gain ties (for the MC model, tie is the XOR delta — exactly the
// pre-model engine's ordering).
type replacement struct {
	gain     int
	tie      int
	realize  func() xag.Lit
	constant *xag.Lit // non-nil for a constant substitution

	// for the per-replacement truth-table check
	want   tt.T
	leaves []xag.Lit
}

// functionOf evaluates the function of lit as a truth table over the given
// leaf literals. The cone of lit must be bounded by the leaves.
func functionOf(net *xag.Network, lit xag.Lit, leaves []xag.Lit) tt.T {
	n := len(leaves)
	memo := map[int]tt.T{0: tt.Const0(n)}
	for i, l := range leaves {
		memo[l.Node()] = tt.Var(i, n).Xor(constIf(l.Compl(), n))
	}
	var eval func(id int) tt.T
	eval = func(id int) tt.T {
		if t, ok := memo[id]; ok {
			return t
		}
		if !net.IsGate(id) {
			panic("core: functionOf cone escapes its leaves")
		}
		f0, f1 := net.Fanins(id)
		a := eval(f0.Node()).Xor(constIf(f0.Compl(), n))
		b := eval(f1.Node()).Xor(constIf(f1.Compl(), n))
		var t tt.T
		if net.Kind(id) == xag.KindAnd {
			t = a.And(b)
		} else {
			t = a.Xor(b)
		}
		memo[id] = t
		return t
	}
	out := eval(net.Resolve(lit).Node())
	return out.Xor(constIf(net.Resolve(lit).Compl(), n))
}

func constIf(c bool, n int) tt.T {
	if c {
		return tt.Const1(n)
	}
	return tt.Const0(n)
}
