// Package core implements the paper's contribution: cut rewriting of
// XOR-AND graphs to minimize the number of AND gates (the multiplicative
// complexity of the network).
//
// For every gate, k-feasible cuts (k ≤ 6) are enumerated; each cut function
// is classified up to affine equivalence, the multiplicative-complexity-
// optimal circuit of its class representative is fetched from the database,
// and the cut is replaced when doing so reduces the AND count of the
// network. The gain is evaluated DAG-aware against the maximum fanout-free
// cone of the root, as in DAG-aware AIG rewriting. Rounds repeat until no
// further improvement ("repeat until convergence" in the paper's tables).
//
// The same engine doubles as the generic size baseline (CostSize): with a
// unit cost for AND and XOR gates it mimics a classical size optimizer,
// which is exactly the comparison point of the paper's experiments.
//
// # Verification and resilience
//
// In the paper's MPC/FHE setting a single wrong rewrite silently breaks a
// cryptographic circuit, so the engine is defensive in depth:
//
//   - every accepted replacement is re-simulated over its cut leaves and
//     rejected (with a counter) if it does not compute the cut function;
//   - Options.Verify adds an end-of-round random-simulation miter against a
//     snapshot of the input network; a failing round is rolled back and
//     reported as a structured *VerifyError;
//   - a panic while processing one node is recovered, logged, and counted —
//     the node is skipped and the run continues;
//   - MinimizeMCContext honors context cancellation at round, node, cut-
//     enumeration and database-search granularity, returning a valid
//     partially-optimized network promptly.
//
// Degradation events are counted in Result.Degraded so callers can alert on
// a sick database or classifier instead of silently losing optimization
// quality.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cut"
	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/sim"
	"repro/internal/tt"
	"repro/internal/xag"
)

// Cost selects the gain metric of the rewriting engine.
type Cost int

const (
	// CostMC counts only AND gates — multiplicative complexity (the paper's
	// objective).
	CostMC Cost = iota
	// CostSize counts AND and XOR gates alike — a generic size optimizer
	// used as the baseline.
	CostSize
)

// Options configures the optimizer.
type Options struct {
	CutSize  int // maximum cut size K (2..6, default 6)
	CutLimit int // priority cuts per node (default 12, as in the paper)

	Cost          Cost // gain metric (default CostMC)
	AllowZeroGain bool // also apply replacements with zero gain

	// UseIncomplete applies rewrites whose classification hit the iteration
	// limit. The paper omits such functions; defaults to false.
	UseIncomplete bool

	// VerifyRewrites is retained for compatibility; the per-replacement
	// truth-table check it used to enable is now always on (mismatches are
	// rejected and counted in Result.Degraded rather than committed).
	VerifyRewrites bool

	// Verify runs an end-of-round equivalence miter (exhaustive for narrow
	// interfaces, 64-bit-parallel random simulation otherwise) against a
	// snapshot of the input network. A failing round is rolled back and the
	// run stops with Result.Err set to a *VerifyError.
	Verify bool
	// VerifyRounds is the number of 64-pattern random-simulation rounds of
	// the miter (default 8; ignored when the check is exhaustive).
	VerifyRounds int
	// VerifySeed seeds the miter's pattern generator (0 = fixed default).
	VerifySeed uint64

	MaxRounds int // bound for MinimizeMC (0 = run until convergence)

	// MaxRewritesPerRound caps the replacements applied per round
	// (0 = unlimited) — a budget knob for latency-bounded callers.
	MaxRewritesPerRound int

	// Logf, when set, receives one line per degradation event (rejected
	// rewrite, invalid database entry, recovered panic, rolled-back round).
	Logf func(format string, args ...any)

	DB        *mcdb.DB     // database to use; one is created when nil
	DBOptions mcdb.Options // options for the created database
}

func (o Options) withDefaults() Options {
	if o.CutSize == 0 {
		o.CutSize = 6
	}
	if o.CutLimit == 0 {
		o.CutLimit = 12
	}
	if o.VerifyRounds == 0 {
		o.VerifyRounds = 8
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RoundStats reports one rewriting round.
type RoundStats struct {
	Replacements int
	Before       xag.Counts
	After        xag.Counts
	Duration     time.Duration
}

// Degradation counts the defensive events of a run: each counter is one
// class of fault that was contained instead of corrupting the result.
type Degradation struct {
	// RejectedRewrites counts replacements discarded because the realized
	// circuit did not compute the cut function (a database or classifier
	// fault caught by the per-replacement truth-table check).
	RejectedRewrites int
	// InvalidEntries counts database entries that failed structural
	// validation; their cuts were skipped.
	InvalidEntries int
	// IncompleteClassifications counts cuts skipped because the spectral
	// classification hit its iteration limit (and UseIncomplete was off).
	IncompleteClassifications int
	// RecoveredPanics counts per-node panics that were recovered; the node
	// was skipped and the round continued.
	RecoveredPanics int
	// RolledBackRounds counts rounds undone by the end-of-round miter.
	RolledBackRounds int
}

// Total returns the sum of all degradation counters.
func (d Degradation) Total() int {
	return d.RejectedRewrites + d.InvalidEntries + d.IncompleteClassifications +
		d.RecoveredPanics + d.RolledBackRounds
}

// VerifyError reports that the end-of-round miter found the optimized
// network inequivalent to the input snapshot. The offending round has been
// rolled back: Result.Network is the last state that passed verification.
type VerifyError struct {
	Round int   // 1-based index of the rolled-back round
	Cause error // typically a *sim.Counterexample
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("core: round %d failed verification and was rolled back: %v", e.Round, e.Cause)
}

func (e *VerifyError) Unwrap() error { return e.Cause }

// Result is the outcome of MinimizeMC.
type Result struct {
	Network   *xag.Network
	Rounds    []RoundStats
	Converged bool
	DB        *mcdb.DB

	// Interrupted is true when the run stopped early because its context
	// was canceled; Network is still a valid (partially optimized) circuit.
	Interrupted bool
	// Err is non-nil when the run ended abnormally: a *VerifyError after a
	// rolled-back round, or the context's error after cancellation.
	Err error
	// Degraded counts faults contained during the run.
	Degraded Degradation
}

// Initial returns the gate counts before the first round.
func (r Result) Initial() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[0].Before
}

// Final returns the gate counts after the last round.
func (r Result) Final() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[len(r.Rounds)-1].After
}

// MinimizeMC runs rewriting rounds until convergence (or MaxRounds) and
// returns the optimized network. The input network is not modified.
func MinimizeMC(n *xag.Network, opts Options) Result {
	return MinimizeMCContext(context.Background(), n, opts)
}

// MinimizeMCContext is MinimizeMC with cancellation: deadlines and cancel
// signals are honored between rounds, between nodes within a round, inside
// cut enumeration, and inside database synthesis searches. A canceled run
// returns promptly with Interrupted set and a valid network reflecting the
// rewrites applied so far (each individually equivalence-checked, and
// miter-checked when Verify is on).
func MinimizeMCContext(ctx context.Context, n *xag.Network, opts Options) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	db := opts.DB
	if db == nil {
		db = mcdb.New(opts.DBOptions)
	}
	db.SetContext(ctx)
	defer db.SetContext(nil)

	res := Result{DB: db}
	net := n.Cleanup()
	var ref *xag.Network
	if opts.Verify {
		ref = n.Cleanup() // immutable snapshot of the input for the miter
	}
	for round := 0; opts.MaxRounds == 0 || round < opts.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			res.Interrupted = true
			res.Err = err
			break
		}
		var prev *xag.Network
		if opts.Verify {
			prev = net.Cleanup() // rollback point: rewriteRound consumes net
		}
		var stats RoundStats
		var roundErr error
		net, stats, roundErr = rewriteRound(ctx, net, db, opts, &res.Degraded)
		res.Rounds = append(res.Rounds, stats)

		if opts.Verify {
			if verr := sim.Equal(ref, net, opts.VerifyRounds, opts.VerifySeed); verr != nil {
				res.Degraded.RolledBackRounds++
				opts.logf("core: round %d rolled back: %v", len(res.Rounds), verr)
				net = prev
				res.Err = &VerifyError{Round: len(res.Rounds), Cause: verr}
				break
			}
		}
		if roundErr != nil { // canceled mid-round; partial round already checked
			res.Interrupted = true
			res.Err = roundErr
			break
		}
		if !improved(stats, opts.Cost) {
			res.Converged = true
			break
		}
	}
	res.Network = net
	return res
}

func improved(s RoundStats, cost Cost) bool {
	if cost == CostSize {
		return s.After.And+s.After.Xor < s.Before.And+s.Before.Xor
	}
	return s.After.And < s.Before.And
}

// RewriteRound performs one pass of Algorithm 1 over all gates of the
// network and returns the cleaned-up result. The input must be compact
// (freshly built or Cleanup'ed); it is consumed by the call.
func RewriteRound(net *xag.Network, db *mcdb.DB, opts Options) (*xag.Network, RoundStats) {
	var deg Degradation
	out, stats, _ := rewriteRound(context.Background(), net, db, opts.withDefaults(), &deg)
	return out, stats
}

// ctxCheckStride bounds how many nodes are processed between cancellation
// checks inside a round.
const ctxCheckStride = 64

func rewriteRound(ctx context.Context, net *xag.Network, db *mcdb.DB, opts Options, deg *Degradation) (*xag.Network, RoundStats, error) {
	start := time.Now()
	stats := RoundStats{Before: net.CountGates()}
	finish := func(err error) (*xag.Network, RoundStats, error) {
		out := net.Cleanup()
		stats.After = out.CountGates()
		stats.Duration = time.Since(start)
		return out, stats, err
	}

	cuts, err := cut.EnumerateContext(ctx, net, cut.Params{K: opts.CutSize, Limit: opts.CutLimit})
	if err != nil {
		return finish(err)
	}
	for step, id := range net.LiveNodes() {
		if step%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return finish(err)
			}
		}
		if opts.MaxRewritesPerRound > 0 && stats.Replacements >= opts.MaxRewritesPerRound {
			break
		}
		if !net.IsGate(id) {
			continue
		}
		if net.Resolve(xag.MakeLit(id, false)).Node() != id {
			continue // already replaced in this round
		}
		if net.Ref(id) == 0 {
			continue // died as part of an earlier replacement
		}
		if applyBestCutProtected(net, db, opts, id, cuts.Cuts[id], deg) {
			stats.Replacements++
		}
	}
	return finish(nil)
}

// replacement is a profitable rewrite candidate for one node.
type replacement struct {
	gain     int
	xorDelta int
	realize  func() xag.Lit
	constant *xag.Lit // non-nil for a constant substitution

	// for the per-replacement truth-table check
	want   tt.T
	leaves []xag.Lit
}

// applyBestCutProtected isolates one node's rewrite: a panic anywhere in
// cut evaluation, database synthesis, or realization is recovered, counted,
// and treated as "no replacement" — one poisoned node cannot abort the run.
func applyBestCutProtected(net *xag.Network, db *mcdb.DB, opts Options, id int, cuts []cut.Cut, deg *Degradation) (applied bool) {
	defer func() {
		if r := recover(); r != nil {
			deg.RecoveredPanics++
			opts.logf("core: node %d: recovered panic: %v", id, r)
			applied = false
		}
	}()
	// Fault-injection point: tests panic or delay here to exercise the
	// recovery and cancellation paths.
	faultinject.Inject(faultinject.PointNode, id)
	return applyBestCut(net, db, opts, id, cuts, deg)
}

// applyBestCut evaluates all cuts of a node and applies the most profitable
// replacement, if any. It reports whether the node was substituted.
func applyBestCut(net *xag.Network, db *mcdb.DB, opts Options, id int, cuts []cut.Cut, deg *Degradation) bool {
	var best *replacement
	for ci := range cuts {
		c := &cuts[ci]
		if c.Size() < 2 {
			continue // trivial cut
		}
		if r := evaluateCut(net, db, opts, id, c, deg); r != nil {
			if best == nil || r.gain > best.gain ||
				(r.gain == best.gain && r.xorDelta < best.xorDelta) {
				best = r
			}
		}
	}
	if best == nil {
		return false
	}
	if best.gain < 0 || (best.gain == 0 && !opts.AllowZeroGain) {
		return false
	}
	if best.constant != nil {
		net.Substitute(id, *best.constant)
		return true
	}
	lit := best.realize()
	if net.InTFI(lit, id) {
		return false // replacement would feed back into the node's cone
	}
	// Always-on per-replacement verification: the realized circuit must
	// compute the cut function over its leaves. A mismatch means the
	// database, classifier, or realization produced a wrong circuit — the
	// substitution is discarded (its dangling nodes die in the end-of-round
	// Cleanup) and counted, so a sick database degrades optimization
	// quality, never correctness.
	if got := functionOf(net, lit, best.leaves); got != best.want {
		deg.RejectedRewrites++
		opts.logf("core: node %d: rejected rewrite computing %s, want %s", id, got, best.want)
		return false
	}
	net.Substitute(id, lit)
	return true
}

// functionOf evaluates the function of lit as a truth table over the given
// leaf literals. The cone of lit must be bounded by the leaves.
func functionOf(net *xag.Network, lit xag.Lit, leaves []xag.Lit) tt.T {
	n := len(leaves)
	memo := map[int]tt.T{0: tt.Const0(n)}
	for i, l := range leaves {
		memo[l.Node()] = tt.Var(i, n).Xor(constIf(l.Compl(), n))
	}
	var eval func(id int) tt.T
	eval = func(id int) tt.T {
		if t, ok := memo[id]; ok {
			return t
		}
		if !net.IsGate(id) {
			panic("core: functionOf cone escapes its leaves")
		}
		f0, f1 := net.Fanins(id)
		a := eval(f0.Node()).Xor(constIf(f0.Compl(), n))
		b := eval(f1.Node()).Xor(constIf(f1.Compl(), n))
		var t tt.T
		if net.Kind(id) == xag.KindAnd {
			t = a.And(b)
		} else {
			t = a.Xor(b)
		}
		memo[id] = t
		return t
	}
	out := eval(net.Resolve(lit).Node())
	return out.Xor(constIf(net.Resolve(lit).Compl(), n))
}

func constIf(c bool, n int) tt.T {
	if c {
		return tt.Const1(n)
	}
	return tt.Const0(n)
}

// evaluateCut computes the replacement candidate of one cut (steps 1–9 of
// Algorithm 1) without modifying the network.
func evaluateCut(net *xag.Network, db *mcdb.DB, opts Options, id int, c *cut.Cut, deg *Degradation) *replacement {
	// Cut leaves must still be current, live nodes: earlier substitutions in
	// this round may have retired or killed them, and realizing a cut on a
	// dead leaf would silently resurrect its whole cone.
	for i := 0; i < c.Size(); i++ {
		leaf := c.Leaf(i)
		if net.Resolve(xag.MakeLit(leaf, false)).Node() != leaf {
			return nil
		}
		if net.IsGate(leaf) && net.Ref(leaf) == 0 {
			return nil
		}
	}

	oldAnds, oldXors := net.MFFC(id, c.LeafSet())

	// Work on the support of the cut function only.
	sh, from := c.Table.Shrink()
	// Fault-injection point: tests flip truth-table bits here to prove the
	// end-of-round miter catches an internally-consistent wrong rewrite.
	faultinject.Inject(faultinject.PointCutFunction, &sh)
	if sh.N == 0 {
		lit := xag.Const0
		if sh.IsConst1() {
			lit = xag.Const1
		}
		return &replacement{gain: oldAnds, xorDelta: -oldXors, constant: &lit}
	}
	leaves := make([]xag.Lit, sh.N)
	for i, origVar := range from {
		leaves[i] = xag.MakeLit(c.Leaf(origVar), false)
	}

	entry, res := db.Lookup(sh)
	if !res.Complete && !opts.UseIncomplete {
		deg.IncompleteClassifications++
		return nil
	}
	if err := entry.Validate(); err != nil {
		deg.InvalidEntries++
		opts.logf("core: node %d: invalid database entry: %v", id, err)
		return nil
	}

	newAnds := entry.MC()
	newXors := entry.XorCost() + res.Tr.XorCost()
	gain := oldAnds - newAnds
	if opts.Cost == CostSize {
		gain = (oldAnds + oldXors) - (newAnds + newXors)
	}
	tr := res.Tr
	return &replacement{
		gain:     gain,
		xorDelta: newXors - oldXors,
		realize:  func() xag.Lit { return mcdb.Realize(net, entry, tr, leaves) },
		want:     sh,
		leaves:   leaves,
	}
}
