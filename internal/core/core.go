// Package core implements the paper's contribution: cut rewriting of
// XOR-AND graphs to minimize the number of AND gates (the multiplicative
// complexity of the network).
//
// For every gate, k-feasible cuts (k ≤ 6) are enumerated; each cut function
// is classified up to affine equivalence, the multiplicative-complexity-
// optimal circuit of its class representative is fetched from the database,
// and the cut is replaced when doing so reduces the AND count of the
// network. The gain is evaluated DAG-aware against the maximum fanout-free
// cone of the root, as in DAG-aware AIG rewriting. Rounds repeat until no
// further improvement ("repeat until convergence" in the paper's tables).
//
// The same engine doubles as the generic size baseline (CostSize): with a
// unit cost for AND and XOR gates it mimics a classical size optimizer,
// which is exactly the comparison point of the paper's experiments.
package core

import (
	"fmt"
	"time"

	"repro/internal/cut"
	"repro/internal/mcdb"
	"repro/internal/tt"
	"repro/internal/xag"
)

// Cost selects the gain metric of the rewriting engine.
type Cost int

const (
	// CostMC counts only AND gates — multiplicative complexity (the paper's
	// objective).
	CostMC Cost = iota
	// CostSize counts AND and XOR gates alike — a generic size optimizer
	// used as the baseline.
	CostSize
)

// Options configures the optimizer.
type Options struct {
	CutSize  int // maximum cut size K (2..6, default 6)
	CutLimit int // priority cuts per node (default 12, as in the paper)

	Cost          Cost // gain metric (default CostMC)
	AllowZeroGain bool // also apply replacements with zero gain

	// UseIncomplete applies rewrites whose classification hit the iteration
	// limit. The paper omits such functions; defaults to false.
	UseIncomplete bool

	// VerifyRewrites recomputes the function of every accepted replacement
	// over its cut leaves and panics on mismatch — a paranoid mode used by
	// the test suite.
	VerifyRewrites bool

	MaxRounds int // bound for MinimizeMC (0 = run until convergence)

	DB        *mcdb.DB     // database to use; one is created when nil
	DBOptions mcdb.Options // options for the created database
}

func (o Options) withDefaults() Options {
	if o.CutSize == 0 {
		o.CutSize = 6
	}
	if o.CutLimit == 0 {
		o.CutLimit = 12
	}
	return o
}

// RoundStats reports one rewriting round.
type RoundStats struct {
	Replacements int
	Before       xag.Counts
	After        xag.Counts
	Duration     time.Duration
}

// Result is the outcome of MinimizeMC.
type Result struct {
	Network   *xag.Network
	Rounds    []RoundStats
	Converged bool
	DB        *mcdb.DB
}

// Initial returns the gate counts before the first round.
func (r Result) Initial() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[0].Before
}

// Final returns the gate counts after the last round.
func (r Result) Final() xag.Counts {
	if len(r.Rounds) == 0 {
		return xag.Counts{}
	}
	return r.Rounds[len(r.Rounds)-1].After
}

// MinimizeMC runs rewriting rounds until convergence (or MaxRounds) and
// returns the optimized network. The input network is not modified.
func MinimizeMC(n *xag.Network, opts Options) Result {
	opts = opts.withDefaults()
	db := opts.DB
	if db == nil {
		db = mcdb.New(opts.DBOptions)
	}
	res := Result{DB: db}
	net := n.Cleanup()
	for round := 0; opts.MaxRounds == 0 || round < opts.MaxRounds; round++ {
		var stats RoundStats
		net, stats = RewriteRound(net, db, opts)
		res.Rounds = append(res.Rounds, stats)
		if !improved(stats, opts.Cost) {
			res.Converged = true
			break
		}
	}
	res.Network = net
	return res
}

func improved(s RoundStats, cost Cost) bool {
	if cost == CostSize {
		return s.After.And+s.After.Xor < s.Before.And+s.Before.Xor
	}
	return s.After.And < s.Before.And
}

// RewriteRound performs one pass of Algorithm 1 over all gates of the
// network and returns the cleaned-up result. The input must be compact
// (freshly built or Cleanup'ed); it is consumed by the call.
func RewriteRound(net *xag.Network, db *mcdb.DB, opts Options) (*xag.Network, RoundStats) {
	opts = opts.withDefaults()
	start := time.Now()
	stats := RoundStats{Before: net.CountGates()}

	cuts := cut.Enumerate(net, cut.Params{K: opts.CutSize, Limit: opts.CutLimit})
	for _, id := range net.LiveNodes() {
		if !net.IsGate(id) {
			continue
		}
		if net.Resolve(xag.MakeLit(id, false)).Node() != id {
			continue // already replaced in this round
		}
		if net.Ref(id) == 0 {
			continue // died as part of an earlier replacement
		}
		if applyBestCut(net, db, opts, id, cuts.Cuts[id]) {
			stats.Replacements++
		}
	}

	out := net.Cleanup()
	stats.After = out.CountGates()
	stats.Duration = time.Since(start)
	return out, stats
}

// replacement is a profitable rewrite candidate for one node.
type replacement struct {
	gain     int
	xorDelta int
	realize  func() xag.Lit
	constant *xag.Lit // non-nil for a constant substitution

	// for VerifyRewrites
	want   tt.T
	leaves []xag.Lit
}

// applyBestCut evaluates all cuts of a node and applies the most profitable
// replacement, if any. It reports whether the node was substituted.
func applyBestCut(net *xag.Network, db *mcdb.DB, opts Options, id int, cuts []cut.Cut) bool {
	var best *replacement
	for ci := range cuts {
		c := &cuts[ci]
		if c.Size() < 2 {
			continue // trivial cut
		}
		if r := evaluateCut(net, db, opts, id, c); r != nil {
			if best == nil || r.gain > best.gain ||
				(r.gain == best.gain && r.xorDelta < best.xorDelta) {
				best = r
			}
		}
	}
	if best == nil {
		return false
	}
	if best.gain < 0 || (best.gain == 0 && !opts.AllowZeroGain) {
		return false
	}
	if best.constant != nil {
		net.Substitute(id, *best.constant)
		return true
	}
	lit := best.realize()
	if net.InTFI(lit, id) {
		return false // replacement would feed back into the node's cone
	}
	if opts.VerifyRewrites {
		if got := functionOf(net, lit, best.leaves); got != best.want {
			panic(fmt.Sprintf("core: rewrite of node %d computes %s, want %s", id, got, best.want))
		}
	}
	net.Substitute(id, lit)
	return true
}

// functionOf evaluates the function of lit as a truth table over the given
// leaf literals. The cone of lit must be bounded by the leaves.
func functionOf(net *xag.Network, lit xag.Lit, leaves []xag.Lit) tt.T {
	n := len(leaves)
	memo := map[int]tt.T{0: tt.Const0(n)}
	for i, l := range leaves {
		memo[l.Node()] = tt.Var(i, n).Xor(constIf(l.Compl(), n))
	}
	var eval func(id int) tt.T
	eval = func(id int) tt.T {
		if t, ok := memo[id]; ok {
			return t
		}
		if !net.IsGate(id) {
			panic("core: functionOf cone escapes its leaves")
		}
		f0, f1 := net.Fanins(id)
		a := eval(f0.Node()).Xor(constIf(f0.Compl(), n))
		b := eval(f1.Node()).Xor(constIf(f1.Compl(), n))
		var t tt.T
		if net.Kind(id) == xag.KindAnd {
			t = a.And(b)
		} else {
			t = a.Xor(b)
		}
		memo[id] = t
		return t
	}
	out := eval(net.Resolve(lit).Node())
	return out.Xor(constIf(net.Resolve(lit).Compl(), n))
}

func constIf(c bool, n int) tt.T {
	if c {
		return tt.Const1(n)
	}
	return tt.Const0(n)
}

// evaluateCut computes the replacement candidate of one cut (steps 1–9 of
// Algorithm 1) without modifying the network.
func evaluateCut(net *xag.Network, db *mcdb.DB, opts Options, id int, c *cut.Cut) *replacement {
	// Cut leaves must still be current, live nodes: earlier substitutions in
	// this round may have retired or killed them, and realizing a cut on a
	// dead leaf would silently resurrect its whole cone.
	for i := 0; i < c.Size(); i++ {
		leaf := c.Leaf(i)
		if net.Resolve(xag.MakeLit(leaf, false)).Node() != leaf {
			return nil
		}
		if net.IsGate(leaf) && net.Ref(leaf) == 0 {
			return nil
		}
	}

	oldAnds, oldXors := net.MFFC(id, c.LeafSet())

	// Work on the support of the cut function only.
	sh, from := c.Table.Shrink()
	if sh.N == 0 {
		lit := xag.Const0
		if sh.IsConst1() {
			lit = xag.Const1
		}
		return &replacement{gain: oldAnds, xorDelta: -oldXors, constant: &lit}
	}
	leaves := make([]xag.Lit, sh.N)
	for i, origVar := range from {
		leaves[i] = xag.MakeLit(c.Leaf(origVar), false)
	}

	entry, res := db.Lookup(sh)
	if !res.Complete && !opts.UseIncomplete {
		return nil
	}

	newAnds := entry.MC()
	newXors := entry.XorCost() + res.Tr.XorCost()
	gain := oldAnds - newAnds
	if opts.Cost == CostSize {
		gain = (oldAnds + oldXors) - (newAnds + newXors)
	}
	tr := res.Tr
	return &replacement{
		gain:     gain,
		xorDelta: newXors - oldXors,
		realize:  func() xag.Lit { return mcdb.Realize(net, entry, tr, leaves) },
		want:     sh,
		leaves:   leaves,
	}
}
