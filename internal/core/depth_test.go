package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/xag"
)

// TestDepthModelReducesAndDepth is the ISSUE acceptance check at the engine
// level: the depth model strictly reduces the multiplicative depth of a
// naive ripple-carry adder without blowing up the AND count (≤ 10% over the
// depth-run's starting point), and the result stays equivalent.
func TestDepthModelReducesAndDepth(t *testing.T) {
	n := rippleAdder(16)
	before := n.CountGates()
	res := MinimizeMC(n, Options{Cost: cost.Depth()})
	after := res.Final()
	if after.AndDepth >= before.AndDepth {
		t.Fatalf("depth model did not reduce AND depth: %d -> %d", before.AndDepth, after.AndDepth)
	}
	if limit := before.And + before.And/10; after.And > limit {
		t.Fatalf("depth model grew AND count past 10%%: %d -> %d", before.And, after.And)
	}
	equalOnRandom(t, n, res.Network, 8, 61)
}

// TestDepthModelNeverWorseOnRandom: depth runs must never report a deeper
// network than they started with, and must stay equivalent.
func TestDepthModelNeverWorseOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 4; trial++ {
		n := randomNetwork(rng, 7, 120)
		before := n.CountGates()
		res := MinimizeMC(n, Options{Cost: cost.Depth()})
		if after := res.Final(); after.AndDepth > before.AndDepth {
			t.Fatalf("trial %d: AND depth grew %d -> %d", trial, before.AndDepth, after.AndDepth)
		}
		equalOnRandom(t, n, res.Network, 8, 62)
	}
}

// TestDepthModelParallelDeterminism extends the engine's determinism
// contract to the depth model: bit-identical committed networks for every
// worker count, even though depth ranking reorders cut pruning.
func TestDepthModelParallelDeterminism(t *testing.T) {
	nets := map[string]func() *xag.Network{
		"adder-16":  func() *xag.Network { return rippleAdder(16) },
		"md5-style": func() *xag.Network { return md5Style(8) },
	}
	for name, build := range nets {
		ref := MinimizeMC(build(), Options{Workers: 1, Cost: cost.Depth()})
		refB := bristol(t, ref.Network)
		for _, workers := range []int{2, 8} {
			got := MinimizeMC(build(), Options{Workers: workers, Cost: cost.Depth()})
			if !bytes.Equal(bristol(t, got.Network), refB) {
				t.Fatalf("%s: workers=%d depth-model network differs from sequential run", name, workers)
			}
		}
	}
}

// TestNilCostDefaultsToMC: a zero Options value must behave exactly like an
// explicit MC model — the compatibility contract of the Cost refactor.
func TestNilCostDefaultsToMC(t *testing.T) {
	ref := MinimizeMC(rippleAdder(12), Options{Cost: cost.MC()})
	got := MinimizeMC(rippleAdder(12), Options{})
	if !bytes.Equal(bristol(t, got.Network), bristol(t, ref.Network)) {
		t.Fatalf("nil-Cost run differs from explicit MC run")
	}
}
