package core

import (
	"repro/internal/metrics"
)

// engineMetrics is the engine's instrument set on the registry passed via
// Options.Metrics. Instruments from a nil registry are valid no-op-rendered
// counters, so the engine increments unconditionally.
type engineMetrics struct {
	runs        *metrics.Counter
	interrupted *metrics.Counter
	converged   *metrics.Counter
	rounds      *metrics.Counter
	rewrites    *metrics.Counter
	andsRemoved *metrics.Counter

	rejectedRewrites *metrics.Counter
	invalidEntries   *metrics.Counter
	incompleteClass  *metrics.Counter
	recoveredPanics  *metrics.Counter
	rolledBackRounds *metrics.Counter

	commitBatches   *metrics.Counter
	commitConflicts *metrics.Counter
	commitSkips     *metrics.Counter
	commitBatchSize *metrics.Histogram
}

// newEngineMetrics registers (or re-binds) the engine counters on r. The
// names are shared by every engine on the registry: the counters describe
// the process-wide optimization activity, which is exactly what a resident
// service wants to scrape.
func newEngineMetrics(r *metrics.Registry) engineMetrics {
	return engineMetrics{
		runs:        r.Counter("mcc_runs_total", "Optimization runs started (Engine.Minimize calls)."),
		interrupted: r.Counter("mcc_runs_interrupted_total", "Runs stopped early by context cancellation or deadline."),
		converged:   r.Counter("mcc_runs_converged_total", "Runs that reached cost-model convergence."),
		rounds:      r.Counter("mcc_rounds_total", "Rewriting rounds executed."),
		rewrites:    r.Counter("mcc_rewrites_total", "Cut replacements committed."),
		andsRemoved: r.Counter("mcc_and_gates_removed_total", "AND gates removed by committed rounds (positive deltas only)."),

		rejectedRewrites: r.Counter("mcc_rejected_rewrites_total", "Replacements discarded by the per-rewrite truth-table check."),
		invalidEntries:   r.Counter("mcc_invalid_db_entries_total", "Database entries that failed structural validation."),
		incompleteClass:  r.Counter("mcc_incomplete_classifications_total", "Cuts skipped because classification hit its iteration limit."),
		recoveredPanics:  r.Counter("mcc_recovered_panics_total", "Per-node panics recovered during rewriting."),
		rolledBackRounds: r.Counter("mcc_rolled_back_rounds_total", "Rounds rolled back by the end-of-round verification miter."),

		commitBatches:   r.Counter("mcc_commit_batches_total", "Conflict-free batches the parallel commit partitioner formed from predicted rewrites."),
		commitConflicts: r.Counter("mcc_commit_conflicts_total", "Commit-stage nodes re-evaluated because an earlier commit wrote into their read footprint."),
		commitSkips:     r.Counter("mcc_commit_parallel_skips_total", "Commit-stage nodes finalized by the parallel predictor's clean-footprint proof without re-evaluation."),
		commitBatchSize: r.Histogram("mcc_commit_batch_size", "Predicted rewrites per conflict-free commit batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
	}
}

// observeRound records one completed round.
func (m *engineMetrics) observeRound(stats RoundStats) {
	m.rounds.Inc()
	m.rewrites.Add(int64(stats.Replacements))
	if d := stats.Before.And - stats.After.And; d > 0 {
		m.andsRemoved.Add(int64(d))
	}
	m.commitBatches.Add(int64(stats.CommitBatches))
	m.commitConflicts.Add(int64(stats.CommitConflicts))
	m.commitSkips.Add(int64(stats.CommitSkipped))
}

// observeCommitPartition records the batch-size distribution of one
// parallel-commit partition.
func (m *engineMetrics) observeCommitPartition(sizes []int) {
	for _, s := range sizes {
		if s > 0 {
			m.commitBatchSize.Observe(float64(s))
		}
	}
}

// observeDegradation records the degradation delta of a run (or of one
// stateless Round call).
func (m *engineMetrics) observeDegradation(d Degradation) {
	m.rejectedRewrites.Add(int64(d.RejectedRewrites))
	m.invalidEntries.Add(int64(d.InvalidEntries))
	m.incompleteClass.Add(int64(d.IncompleteClassifications))
	m.recoveredPanics.Add(int64(d.RecoveredPanics))
	m.rolledBackRounds.Add(int64(d.RolledBackRounds))
}
