package core

import (
	"bytes"
	"testing"

	"repro/internal/xag"
)

// fp builds a commitVerdict footprint from plain ints.
func fp(ids ...int32) []int32 { return ids }

// TestPartitionAttempts pins the greedy coloring: disjoint footprints share
// a batch, a shared node — even just a common cut leaf — splits them, and
// an all-conflict set degenerates into one batch per rewrite.
func TestPartitionAttempts(t *testing.T) {
	mk := func(n int) []commitVerdict { return make([]commitVerdict, n) }

	// Disjoint MFFCs, disjoint leaves: one batch of three.
	v := mk(40)
	v[10] = commitVerdict{attempt: true, fp: fp(10, 1, 2)}
	v[20] = commitVerdict{attempt: true, fp: fp(20, 3, 4)}
	v[30] = commitVerdict{attempt: true, fp: fp(30, 5, 6)}
	if batches, sizes := partitionAttempts(40, []int{10, 20, 30}, v); batches != 1 || sizes[0] != 3 {
		t.Fatalf("disjoint rewrites: batches=%d sizes=%v, want one batch of 3", batches, sizes)
	}

	// Overlapping footprints that share only a leaf (node 5): the MFFCs
	// are disjoint but a commit bumps the shared leaf's refs, so they must
	// not land in one batch.
	v = mk(40)
	v[10] = commitVerdict{attempt: true, fp: fp(10, 1, 5)}
	v[20] = commitVerdict{attempt: true, fp: fp(20, 2, 5)}
	if batches, sizes := partitionAttempts(40, []int{10, 20}, v); batches != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("leaf-sharing rewrites: batches=%d sizes=%v, want 2×1", batches, sizes)
	}

	// Every candidate conflicts with every other (common node 7): the
	// partition degenerates to one batch per rewrite — sequential order.
	v = mk(50)
	order := []int{10, 20, 30, 40}
	for _, id := range order {
		v[id] = commitVerdict{attempt: true, fp: fp(int32(id), 7)}
	}
	if batches, _ := partitionAttempts(50, order, v); batches != len(order) {
		t.Fatalf("all-conflict chain: batches=%d, want %d", batches, len(order))
	}

	// Unpredictable (nil-footprint) and non-attempt nodes stay out.
	v = mk(40)
	v[10] = commitVerdict{attempt: true, fp: nil}
	v[20] = commitVerdict{attempt: false, fp: fp(20)}
	if batches, _ := partitionAttempts(40, []int{10, 20}, v); batches != 0 {
		t.Fatalf("nil-footprint/non-attempt partitioned: batches=%d, want 0", batches)
	}

	// Batch lanes beyond 63 collapse into the last lane without losing
	// rewrites.
	v = mk(80)
	order = order[:0]
	for i := 0; i < 70; i++ {
		v[i] = commitVerdict{attempt: true, fp: fp(int32(i), 79)}
		order = append(order, i)
	}
	batches, sizes := partitionAttempts(80, order, v)
	if batches != 64 {
		t.Fatalf("70-deep conflict chain: batches=%d, want 64 (overflow lane)", batches)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 70 {
		t.Fatalf("partition lost rewrites: %d of 70 accounted", total)
	}
}

// sharedLeafAdders builds n disjoint full-adder cones that all share one
// carry-in PI: every cone rewrites (3 ANDs → 1), the MFFCs are disjoint,
// and the only footprint overlap is the shared leaf.
func sharedLeafAdders(n int) *xag.Network {
	net := xag.New()
	cin := net.AddPI("cin")
	for i := 0; i < n; i++ {
		a, b := net.AddPI(""), net.AddPI("")
		ab := net.Xor(a, b)
		net.AddPO(net.Xor(ab, cin), "")
		net.AddPO(net.Or(net.And(a, b), net.And(cin, ab)), "")
	}
	return net
}

// disjointAdders is sharedLeafAdders without the sharing: fully independent
// cones whose rewrites are provably conflict-free.
func disjointAdders(n int) *xag.Network {
	net := xag.New()
	for i := 0; i < n; i++ {
		a, b, cin := net.AddPI(""), net.AddPI(""), net.AddPI("")
		ab := net.Xor(a, b)
		net.AddPO(net.Xor(ab, cin), "")
		net.AddPO(net.Or(net.And(a, b), net.And(cin, ab)), "")
	}
	return net
}

// runBoth optimizes the same construction with the parallel and the
// sequential commit and fails unless the Bristol serializations are
// byte-identical. It returns the parallel run for stat assertions.
func runBoth(t *testing.T, build func() *xag.Network, opts Options) Result {
	t.Helper()
	opts.Workers = 4
	opts.SequentialCommit = false
	par := MinimizeMC(build(), opts)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	opts.SequentialCommit = true
	seq := MinimizeMC(build(), opts)
	if seq.Err != nil {
		t.Fatal(seq.Err)
	}
	if !bytes.Equal(bristol(t, par.Network), bristol(t, seq.Network)) {
		t.Fatalf("parallel commit output differs from sequential commit")
	}
	refOpts := opts
	refOpts.Workers = 1
	refOpts.SequentialCommit = false
	ref := MinimizeMC(build(), refOpts)
	if !bytes.Equal(bristol(t, par.Network), bristol(t, ref.Network)) {
		t.Fatalf("parallel commit output differs from workers=1 reference")
	}
	return par
}

// TestParallelCommitSharedLeaf: disjoint MFFCs sharing one leaf commit
// byte-identically, and the partitioner reports the conflict (the shared
// leaf's refs are written by each commit, so the rewrites cannot share a
// batch).
func TestParallelCommitSharedLeaf(t *testing.T) {
	res := runBoth(t, func() *xag.Network { return sharedLeafAdders(24) }, Options{})
	r := res.Rounds[0]
	if r.CommitBatches < 2 {
		t.Errorf("leaf-sharing rewrites formed %d batches, want ≥ 2", r.CommitBatches)
	}
	if res.Final().And >= res.Initial().And {
		t.Errorf("no optimization happened: %d → %d ANDs", res.Initial().And, res.Final().And)
	}
}

// TestParallelCommitDisjointCones: independent rewrites land in one batch
// and the non-rewriting remainder is finalized by the clean-footprint
// proof.
func TestParallelCommitDisjointCones(t *testing.T) {
	res := runBoth(t, func() *xag.Network { return disjointAdders(24) }, Options{})
	r := res.Rounds[0]
	if r.CommitBatches != 1 {
		t.Errorf("disjoint rewrites formed %d batches, want exactly 1", r.CommitBatches)
	}
	if r.CommitSkipped == 0 {
		t.Errorf("no node was finalized by the clean-footprint proof")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Replacements == 0 && last.CommitSkipped != last.Gates {
		t.Errorf("convergence round skipped %d of %d gates, want all", last.CommitSkipped, last.Gates)
	}
}

// TestParallelCommitPORoot: a rewrite whose root feeds a primary output
// directly — the footprint covers the PO node — commits byte-identically.
func TestParallelCommitPORoot(t *testing.T) {
	res := runBoth(t, func() *xag.Network { return disjointAdders(24) }, Options{})
	// The cout cones root at PO-referenced OR gates; their rewrite is what
	// removes ANDs, so a shrinking AND count proves PO-rooted commits ran.
	if res.Final().And >= res.Initial().And {
		t.Fatalf("PO-rooted rewrites did not commit: %d → %d ANDs", res.Initial().And, res.Final().And)
	}
}

// TestParallelCommitConflictChain: a ripple-carry adder's carry chain makes
// later rewrites read regions that earlier commits wrote — the scan must
// re-evaluate them (conflicts observed) and still match the sequential
// bytes.
func TestParallelCommitConflictChain(t *testing.T) {
	res := runBoth(t, func() *xag.Network { return rippleAdder(32) }, Options{})
	conflicts := 0
	for _, r := range res.Rounds {
		conflicts += r.CommitConflicts
	}
	if conflicts == 0 {
		t.Errorf("carry-chain run observed no commit conflicts")
	}
}

// TestParallelCommitBudget: MaxRewritesPerRound interacts identically with
// both commit passes — the budget break happens at the same id-order point.
func TestParallelCommitBudget(t *testing.T) {
	res := runBoth(t, func() *xag.Network { return rippleAdder(32) }, Options{MaxRewritesPerRound: 5, MaxRounds: 2})
	for i, r := range res.Rounds {
		if r.Replacements > 5 {
			t.Fatalf("round %d exceeded budget: %d replacements", i+1, r.Replacements)
		}
	}
}

// TestSequentialCommitStatsZero: the reference pass reports no parallel
// commit activity, so dashboards can tell the passes apart.
func TestSequentialCommitStatsZero(t *testing.T) {
	res := MinimizeMC(rippleAdder(16), Options{Workers: 4, SequentialCommit: true, MaxRounds: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	r := res.Rounds[0]
	if r.CommitBatches != 0 || r.CommitSkipped != 0 || r.CommitConflicts != 0 {
		t.Fatalf("sequential pass reported parallel stats: %+v", r)
	}
}
