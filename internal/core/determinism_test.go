package core

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/xag"
)

// TestIncrementalDeterminismLarge is the regression gate for incremental
// rewriting on the ISSUE's reference circuits: for adder-64 and
// sha-256-round, every combination of cost model (mc, size, depth) and
// worker count (1, 4) must commit a Bristol serialization byte-identical to
// the full-recompute sequential reference. One database is shared per
// circuit/model pair — warmth must not change results either.
func TestIncrementalDeterminismLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second matrix; run without -short")
	}
	nets := []struct {
		name  string
		build func() *xag.Network
	}{
		{"adder-64", func() *xag.Network { return bench.Adder(64) }},
		{"sha-256-round", func() *xag.Network { return bench.SHA256Round() }},
	}
	models := []struct {
		name  string
		model Cost
	}{
		{"mc", cost.MC()},
		{"size", cost.Size()},
		{"depth", cost.Depth()},
	}
	for _, n := range nets {
		for _, m := range models {
			t.Run(n.name+"/"+m.name, func(t *testing.T) {
				ref := MinimizeMC(n.build(), Options{Workers: 1, Cost: m.model, NoIncremental: true})
				if ref.Err != nil {
					t.Fatal(ref.Err)
				}
				refB := bristol(t, ref.Network)
				for _, workers := range []int{1, 4} {
					got := MinimizeMC(n.build(), Options{Workers: workers, Cost: m.model, DB: ref.DB})
					if got.Err != nil {
						t.Fatal(got.Err)
					}
					if !bytes.Equal(bristol(t, got.Network), refB) {
						t.Errorf("workers=%d: incremental network differs from full sequential reference", workers)
					}
					if len(got.Rounds) != len(ref.Rounds) {
						t.Errorf("workers=%d: incremental ran %d rounds, full ran %d",
							workers, len(got.Rounds), len(ref.Rounds))
					}
				}
				// The SequentialCommit escape hatch must be a pure
				// no-op on the result: same bytes whether the commit
				// stage is conflict-gated parallel or the reference pass.
				seq := MinimizeMC(n.build(), Options{Workers: 4, Cost: m.model, DB: ref.DB, SequentialCommit: true})
				if seq.Err != nil {
					t.Fatal(seq.Err)
				}
				if !bytes.Equal(bristol(t, seq.Network), refB) {
					t.Errorf("workers=4 SequentialCommit: network differs from reference")
				}
			})
		}
	}
}
