package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/tt"
)

// These tests drive the fault-injection points of the pipeline and assert
// the tentpole guarantee: a corrupted database entry, a flipped truth-table
// bit, or a panicking node either gets rejected or yields a structured
// error — never a functionally wrong network.

func TestCorruptedDBEntryIsRejected(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	// Complement the output mask of every entry the first time it passes
	// through Lookup: the realized circuit then computes the complement of
	// the cut function, which the per-replacement check must catch.
	corrupted := make(map[*mcdb.Entry]bool)
	faultinject.Set(faultinject.PointDBEntry, func(p any) {
		e := p.(*mcdb.Entry)
		if !corrupted[e] {
			corrupted[e] = true
			e.Out ^= 1
		}
	})

	n := rippleAdder(8)
	res := MinimizeMC(n, Options{})
	if faultinject.Fired(faultinject.PointDBEntry) == 0 {
		t.Fatal("injection point never fired")
	}
	if res.Degraded.RejectedRewrites == 0 {
		t.Fatal("no rewrite was rejected despite corrupted entries")
	}
	equalOnRandom(t, n, res.Network, 4, 101)
}

func TestFlippedCutFunctionRollsBackRound(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	// Complement every cut function after it is computed. The complement has
	// the same multiplicative complexity, so the optimizer applies exactly
	// the rewrites it would normally apply — each internally consistent with
	// the corrupted table and therefore invisible to the per-replacement
	// check. Only the end-of-round miter can catch this class of fault.
	faultinject.Set(faultinject.PointCutFunction, func(p any) {
		f := p.(*tt.T)
		*f = f.Not()
	})

	n := rippleAdder(8)
	res := MinimizeMC(n, Options{Verify: true})
	var verr *VerifyError
	if !errors.As(res.Err, &verr) {
		t.Fatalf("want *VerifyError, got %v", res.Err)
	}
	if verr.Round != 1 {
		t.Fatalf("want round 1 rolled back, got %d", verr.Round)
	}
	if res.Degraded.RolledBackRounds != 1 {
		t.Fatalf("RolledBackRounds = %d, want 1", res.Degraded.RolledBackRounds)
	}
	// The rolled-back result is the (valid) input, not the corrupted round.
	if got, want := res.Network.CountGates(), n.CountGates(); got != want {
		t.Fatalf("rollback did not restore the input: %+v != %+v", got, want)
	}
	equalOnRandom(t, n, res.Network, 4, 102)
}

func TestInjectedPanicIsRecovered(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	faultinject.Set(faultinject.PointNode, faultinject.PanicHook("injected"))

	n := rippleAdder(8)
	res := MinimizeMC(n, Options{Verify: true})
	if res.Degraded.RecoveredPanics == 0 {
		t.Fatal("no panic was recovered")
	}
	if res.Err != nil {
		t.Fatalf("recovered panics must not fail the run: %v", res.Err)
	}
	if got, want := res.Network.CountGates(), n.CountGates(); got != want {
		t.Fatalf("panicking nodes were rewritten anyway: %+v != %+v", got, want)
	}
	equalOnRandom(t, n, res.Network, 4, 103)
}

func TestSelectivePanicSkipsOnlyThatNode(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	// Poison one specific node: the run must still optimize the rest.
	n := rippleAdder(8)
	victim := -1
	for _, id := range n.LiveNodes() {
		if n.IsGate(id) {
			victim = id
			break
		}
	}
	faultinject.Set(faultinject.PointNode, func(p any) {
		if p.(int) == victim {
			panic("poisoned node")
		}
	})

	res := MinimizeMC(n, Options{Verify: true})
	if res.Degraded.RecoveredPanics == 0 {
		t.Fatal("victim node never panicked")
	}
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.Network.NumAnds() >= n.NumAnds() {
		t.Fatalf("optimization made no progress: %d ANDs", res.Network.NumAnds())
	}
	equalOnRandom(t, n, res.Network, 4, 104)
}

func TestCanceledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	n := rippleAdder(8)
	res := MinimizeMCContext(ctx, n, Options{Verify: true})
	if !res.Interrupted {
		t.Fatal("run on a canceled context not marked Interrupted")
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if res.Network == nil {
		t.Fatal("canceled run returned no network")
	}
	equalOnRandom(t, n, res.Network, 4, 105)
}

func TestMidRunCancellationKeepsNetworkValid(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	// Slow every node down so a short deadline expires mid-round; the result
	// must be a valid, equivalence-checked, partially optimized network.
	faultinject.Set(faultinject.PointNode, faultinject.DelayHook(2*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	n := rippleAdder(16)
	start := time.Now()
	res := MinimizeMCContext(ctx, n, Options{Verify: true})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation was not prompt: took %v", elapsed)
	}
	if !res.Interrupted {
		t.Fatal("deadline expiry not marked Interrupted")
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", res.Err)
	}
	equalOnRandom(t, n, res.Network, 4, 106)
}

func TestMaxRewritesPerRoundCapsWork(t *testing.T) {
	n := rippleAdder(8)
	res := MinimizeMC(n, Options{MaxRewritesPerRound: 1, MaxRounds: 1})
	if len(res.Rounds) != 1 {
		t.Fatalf("want 1 round, got %d", len(res.Rounds))
	}
	if got := res.Rounds[0].Replacements; got > 1 {
		t.Fatalf("round applied %d replacements, budget was 1", got)
	}
	equalOnRandom(t, n, res.Network, 4, 107)
}

func TestVerifyPassesOnHealthyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 4; trial++ {
		n := randomNetwork(rng, 7, 80)
		res := MinimizeMC(n, Options{Verify: true})
		if res.Err != nil {
			t.Fatalf("trial %d: healthy run failed verification: %v", trial, res.Err)
		}
		// IncompleteClassifications is expected on random functions (the
		// classifier's iteration limit); the fault counters must stay zero.
		d := res.Degraded
		if d.RejectedRewrites != 0 || d.InvalidEntries != 0 ||
			d.RecoveredPanics != 0 || d.RolledBackRounds != 0 {
			t.Fatalf("trial %d: healthy run degraded: %+v", trial, d)
		}
		equalOnRandom(t, n, res.Network, 3, int64(700+trial))
	}
}

func TestDegradationLogging(t *testing.T) {
	t.Cleanup(faultinject.Reset)

	faultinject.Set(faultinject.PointNode, faultinject.PanicHook("boom"))
	var lines int
	res := MinimizeMC(rippleAdder(4), Options{
		MaxRounds: 1,
		Logf:      func(string, ...any) { lines++ },
	})
	if res.Degraded.RecoveredPanics == 0 {
		t.Fatal("no panic recovered")
	}
	if lines == 0 {
		t.Fatal("degradation events were not logged")
	}
}
