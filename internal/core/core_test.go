package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/xag"
)

// fullAdder builds the paper's Fig. 1 full adder (3 ANDs, 2 XORs).
func fullAdder() *xag.Network {
	n := xag.New()
	a, b, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(a, b)
	n.AddPO(n.Xor(ab, cin), "sum")
	n.AddPO(n.Or(n.And(a, b), n.And(cin, ab)), "cout")
	return n
}

// rippleAdder builds a w-bit ripple-carry adder with a 3-AND majority per
// stage — deliberately naive, so the optimizer has work to do.
func rippleAdder(w int) *xag.Network {
	n := xag.New()
	as := make([]xag.Lit, w)
	bs := make([]xag.Lit, w)
	for i := range as {
		as[i] = n.AddPI("")
	}
	for i := range bs {
		bs[i] = n.AddPI("")
	}
	carry := xag.Const0
	for i := 0; i < w; i++ {
		n.AddPO(n.Xor(n.Xor(as[i], bs[i]), carry), "")
		carry = n.Or(n.Or(n.And(as[i], bs[i]), n.And(as[i], carry)), n.And(bs[i], carry))
	}
	n.AddPO(carry, "cout")
	return n
}

// equalOnRandom checks functional equivalence of two networks with the same
// interface on 64·rounds random patterns.
func equalOnRandom(t *testing.T, a, b *xag.Network, rounds int, seed int64) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface mismatch: %d/%d PIs, %d/%d POs",
			a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		in := make([]uint64, a.NumPIs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		oa, ob := a.Simulate(in), b.Simulate(in)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("round %d: PO %d differs", r, i)
			}
		}
	}
}

func TestFullAdderMC1(t *testing.T) {
	n := fullAdder()
	res := MinimizeMC(n, Options{})
	if got := res.Network.NumAnds(); got != 1 {
		t.Fatalf("full adder optimized to %d ANDs, want 1 (paper Example 3.1)", got)
	}
	equalOnRandom(t, n, res.Network, 4, 1)
	if !res.Converged {
		t.Fatalf("optimization did not converge")
	}
}

func TestRippleAdderReachesOneAndPerBit(t *testing.T) {
	// The paper reports the w-bit adder optimized down to w AND gates,
	// which is the known optimum (Boyar & Peralta).
	for _, w := range []int{4, 8} {
		n := rippleAdder(w)
		before := n.NumAnds()
		res := MinimizeMC(n, Options{})
		got := res.Network.NumAnds()
		if got != w {
			t.Fatalf("w=%d: optimized to %d ANDs, want %d (before: %d)", w, got, w, before)
		}
		equalOnRandom(t, n, res.Network, 4, 2)
	}
}

func TestRandomNetworksPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := randomNetwork(rng, 8, 120)
		res := MinimizeMC(n, Options{MaxRounds: 3})
		if res.Network.NumAnds() > n.NumAnds() {
			t.Fatalf("trial %d: AND count increased %d → %d",
				trial, n.NumAnds(), res.Network.NumAnds())
		}
		equalOnRandom(t, n, res.Network, 4, int64(100+trial))
	}
}

func TestZeroGainPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		n := randomNetwork(rng, 6, 60)
		res := MinimizeMC(n, Options{AllowZeroGain: true, MaxRounds: 2})
		equalOnRandom(t, n, res.Network, 4, int64(200+trial))
	}
}

func TestCostSizeBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n := randomNetwork(rng, 7, 100)
		res := MinimizeMC(n, Options{Cost: cost.Size(), MaxRounds: 4})
		before := n.CountGates()
		after := res.Network.CountGates()
		if after.And+after.Xor > before.And+before.Xor {
			t.Fatalf("trial %d: size increased %d → %d",
				trial, before.And+before.Xor, after.And+after.Xor)
		}
		equalOnRandom(t, n, res.Network, 4, int64(300+trial))
	}
}

func TestSmallCutSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := randomNetwork(rng, 8, 120)
	for _, k := range []int{3, 4, 5} {
		res := MinimizeMC(n, Options{CutSize: k, MaxRounds: 2})
		equalOnRandom(t, n, res.Network, 3, int64(400+k))
	}
}

func TestStatsAreRecorded(t *testing.T) {
	n := rippleAdder(4)
	res := MinimizeMC(n, Options{})
	if len(res.Rounds) == 0 {
		t.Fatalf("no rounds recorded")
	}
	if res.Rounds[0].Replacements == 0 {
		t.Fatalf("first round made no replacements on a naive adder")
	}
	if res.Initial().And != n.NumAnds() {
		t.Fatalf("Initial() = %d, want %d", res.Initial().And, n.NumAnds())
	}
	if res.Final().And != res.Network.NumAnds() {
		t.Fatalf("Final() = %d, want %d", res.Final().And, res.Network.NumAnds())
	}
}

// randomNetwork builds a connected random XAG.
func randomNetwork(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(3) != 0 { // bias towards ANDs to give the rewriter room
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 4 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}

func TestVerifyRewritesMode(t *testing.T) {
	// The paranoid mode recomputes every replacement's function; it must
	// pass silently on valid rewrites.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 6; trial++ {
		n := randomNetwork(rng, 7, 80)
		res := MinimizeMC(n, Options{VerifyRewrites: true, MaxRounds: 2})
		equalOnRandom(t, n, res.Network, 3, int64(500+trial))
	}
	adder := rippleAdder(8)
	res := MinimizeMC(adder, Options{VerifyRewrites: true})
	if res.Network.NumAnds() != 8 {
		t.Fatalf("verified run changed the result: %d ANDs", res.Network.NumAnds())
	}
}
