package metrics

import (
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/prometheus.golden")

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("lost increments: %d, want %d", got, goroutines*perG)
	}
	// The registry hands back the same instrument on re-registration.
	if r.Counter("test_total", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "")
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Inc()
				g.Dec()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(2*goroutines*perG); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_code_total", "", "code")
	codes := []string{"200", "429", "504"}
	const goroutines, perG = 12, 5_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code := codes[i%len(codes)]
			for j := 0; j < perG; j++ {
				v.With(code).Inc()
			}
		}(i)
	}
	wg.Wait()
	for _, code := range codes {
		if got, want := v.With(code).Value(), int64(goroutines/len(codes)*perG); got != want {
			t.Fatalf("code %s: %d, want %d", code, got, want)
		}
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bound lands in that bound's bucket, one ulp above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("test_hist", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, math.Nextafter(1, 2), 2, 4.999, 5, 6, 1e9} {
		h.Observe(v)
	}
	var b strings.Builder
	h.render(&b, "test_hist")
	got := b.String()
	want := strings.Join([]string{
		`test_hist_bucket{le="1"} 2`,    // 0.5, 1
		`test_hist_bucket{le="2"} 4`,    // + 1+ulp, 2
		`test_hist_bucket{le="5"} 6`,    // + 4.999, 5
		`test_hist_bucket{le="+Inf"} 8`, // + 6, 1e9
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("bucket lines:\n%s\nwant prefix:\n%s", got, want)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("test_hist", "", []float64{10, 100})
	const goroutines, perG = 16, 5_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(float64(j % 200))
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d (striped observations lost)", got, want)
	}
	// Each goroutine observes 0..199 repeatedly: the sum is exact in float64.
	want := float64(goroutines) * float64(perG/200) * (199 * 200 / 2)
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if got[i] != want {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
	for _, bad := range [][3]float64{{0, 2, 4}, {1, 1, 4}, {1, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v) did not panic", bad)
				}
			}()
			ExpBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Gauge("b", "").Set(3)
	r.CounterVec("c_total", "", "code").With("200").Inc()
	r.Histogram("d", "", nil).Observe(1)
	r.CounterFunc("e_total", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered output: %q", b.String())
	}
}

func TestRegistrationConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type conflict did not panic")
			}
		}()
		r.Gauge("x_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name did not panic")
			}
		}()
		r.Counter("bad name", "")
	}()
	// Func re-registration under an existing name keeps the first binding.
	r.CounterFunc("x_total", "", func() float64 { return 99 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_total 0") {
		t.Fatalf("re-registration replaced the counter:\n%s", b.String())
	}
}

// TestPrometheusTextGolden pins the full exposition format — HELP/TYPE
// preambles, label quoting, histogram buckets, value formatting — against
// testdata/prometheus.golden. Regenerate with -update.
func TestPrometheusTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mc_runs_total", "Optimization runs.").Add(42)
	g := r.Gauge("mc_ready", "1 when ready.")
	g.Set(1)
	r.Gauge("mc_fraction", "A fractional gauge.").Set(0.625)
	v := r.CounterVec("mc_requests_total", "Requests by code.", "code")
	v.With("200").Add(7)
	v.With("429").Inc()
	v.With("504").Inc()
	r.CounterFunc("mc_live_total", "Function-backed counter.", func() float64 { return 13 })
	r.GaugeFunc("mc_live_ratio", "Function-backed gauge.", func() float64 { return 0.5 })
	h := r.Histogram("mc_duration_seconds", "Durations.", []float64{0.1, 1, 10})
	// Dyadic values: their float64 sum is exact regardless of which stripes
	// they land on, so the rendered _sum is stable.
	for _, s := range []float64{0.0625, 0.125, 0.5, 2, 20} {
		h.Observe(s)
	}
	r.Counter("mc_unhelped_total", "") // no HELP line

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const path = "testdata/prometheus.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}
