// Package metrics is a small, dependency-free metrics registry: counters,
// gauges, and histograms with atomic (and, for histograms, striped)
// implementations, rendered in the Prometheus text exposition format.
//
// The package exists so the optimization engine, the synthesis database, and
// the mcserved daemon share one observable surface instead of ad-hoc stats
// snapshots. It deliberately implements only what this repository needs:
//
//   - get-or-create registration: asking a registry twice for the same
//     counter returns the same instrument, so independent subsystems (every
//     engine run, every server handler) can look their instruments up by
//     name without coordinating;
//   - nil-safety: every constructor on a nil *Registry returns a working,
//     unregistered instrument, so instrumented code threads an optional
//     registry through without guarding each increment;
//   - function-backed instruments (CounterFunc, GaugeFunc) that read an
//     existing atomic snapshot at scrape time, which is how the mcdb
//     database exposes its live counters without double bookkeeping.
//
// Instruments are safe for concurrent use; registries are safe for
// concurrent registration and rendering.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can render. Instruments append one or more
// complete exposition lines (without the HELP/TYPE preamble) to b.
type metric interface {
	typeName() string // "counter", "gauge", "histogram"
	render(b *strings.Builder, name string)
}

// family is one registered metric name with its help text and instrument.
type family struct {
	name string
	help string
	m    metric
}

// Registry holds named instruments and renders them. The zero value is not
// usable; call NewRegistry. All methods are safe on a nil *Registry: they
// return working instruments that are simply not registered anywhere.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family // registration order, the render order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register returns the existing instrument under name if its type matches,
// or installs the one built by mk. A type conflict panics: it is a
// programming error (two subsystems claiming one name for different things),
// not a runtime condition.
func (r *Registry) register(name, help, typ string, mk func() metric) metric {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.m.typeName() != typ {
			panic(fmt.Sprintf("metrics: %s already registered as a %s, not a %s",
				name, f.m.typeName(), typ))
		}
		return f.m
	}
	f := &family{name: name, help: help, m: mk()}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f.m
}

// Counter registers (or returns the existing) monotonically increasing
// counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, help, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, help, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at render
// time — the bridge for subsystems that already keep an atomic count (the
// mcdb stats). fn must be monotonic and safe for concurrent calls. If name
// is already registered the existing binding is kept, so re-registering a
// shared database on the same registry is a no-op.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", func() metric { return funcMetric{typ: "counter", fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
// If name is already registered the existing binding is kept.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", func() metric { return funcMetric{typ: "gauge", fn: fn} })
}

// CounterVec registers (or returns the existing) counter family partitioned
// by the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	mk := func() *CounterVec {
		return &CounterVec{labels: labels, children: make(map[string]*vecChild)}
	}
	if r == nil {
		return mk()
	}
	v := r.register(name, help, "counter", func() metric { return mk() }).(*CounterVec)
	if len(v.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %s re-registered with different labels", name))
	}
	return v
}

// Histogram registers (or returns the existing) histogram under name with
// the given upper bucket bounds (ascending; the +Inf bucket is implicit).
// A nil buckets slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s: histogram buckets must be strictly ascending", name))
		}
	}
	if r == nil {
		return newHistogram(buckets)
	}
	h := r.register(name, help, "histogram", func() metric { return newHistogram(buckets) }).(*Histogram)
	return h
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WriteText(w interface{ WriteString(string) (int, error) }) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteString(" ")
			b.WriteString(f.help)
			b.WriteString("\n")
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteString(" ")
		b.WriteString(f.m.typeName())
		b.WriteString("\n")
		f.m.render(&b, f.name)
	}
	_, err := w.WriteString(b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		_ = r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// formatValue renders a sample value the way Prometheus text format expects:
// integers without a decimal point, everything else in shortest-round-trip
// form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must not be negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: counter cannot decrease")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) typeName() string { return "counter" }

func (c *Counter) render(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(" ")
	b.WriteString(strconv.FormatInt(c.v.Load(), 10))
	b.WriteString("\n")
}

// Gauge is a value that can go up and down. The value is stored as float64
// bits and updated with compare-and-swap, so Add is lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) typeName() string { return "gauge" }

func (g *Gauge) render(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(" ")
	b.WriteString(formatValue(g.Value()))
	b.WriteString("\n")
}

// funcMetric reads its value from a callback at render time.
type funcMetric struct {
	typ string
	fn  func() float64
}

func (f funcMetric) typeName() string { return f.typ }

func (f funcMetric) render(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(" ")
	b.WriteString(formatValue(f.fn()))
	b.WriteString("\n")
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// With returns the counter for the given label values (one per label name,
// in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: counter vec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return &ch.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok := v.children[key]; ok {
		return &ch.c
	}
	ch = &vecChild{values: append([]string(nil), values...)}
	v.children[key] = ch
	return &ch.c
}

func (v *CounterVec) typeName() string { return "counter" }

func (v *CounterVec) render(b *strings.Builder, name string) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		ch := v.children[k]
		v.mu.RUnlock()
		b.WriteString(name)
		b.WriteString("{")
		for i, lname := range v.labels {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(lname)
			b.WriteString("=")
			b.WriteString(strconv.Quote(ch.values[i]))
		}
		b.WriteString("} ")
		b.WriteString(strconv.FormatInt(ch.c.Value(), 10))
		b.WriteString("\n")
	}
}

// histStripes bounds histogram write contention: observations scatter over
// this many independent bucket arrays, merged only at render time. 8 stripes
// keep the footprint small while removing the single-cacheline hotspot a
// shared array would be under the server's worker pool.
const histStripes = 8

// Histogram samples observations into cumulative buckets. Observations are
// striped: each Observe picks a stripe with a cheap thread-local random
// draw and touches only that stripe's atomics.
type Histogram struct {
	bounds  []float64
	stripes [histStripes]histStripe
}

type histStripe struct {
	counts  []atomic.Int64 // one per bound; +Inf is counts[len(bounds)]
	sumBits atomic.Uint64
	_       [5]uint64 // pad stripes apart to avoid false sharing of sumBits
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// DefBuckets returns the default duration-oriented bucket bounds, in
// seconds (5ms to ~80s).
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 20, 40, 80}
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	s := &h.stripes[rand.Uint32N(histStripes)]
	// Binary search for the first bound >= v; equal values belong to the
	// bucket (Prometheus buckets are "less than or equal").
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.counts[lo].Add(1)
	for {
		old := s.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// snapshot merges the stripes into per-bucket counts, a total count, and the
// sum of all observations.
func (h *Histogram) snapshot() (counts []int64, total int64, sum float64) {
	counts = make([]int64, len(h.bounds)+1)
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range counts {
			counts[j] += s.counts[j].Load()
		}
		sum += math.Float64frombits(s.sumBits.Load())
	}
	for _, c := range counts {
		total += c
	}
	return counts, total, sum
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	_, total, _ := h.snapshot()
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	_, _, sum := h.snapshot()
	return sum
}

func (h *Histogram) typeName() string { return "histogram" }

func (h *Histogram) render(b *strings.Builder, name string) {
	counts, total, sum := h.snapshot()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		b.WriteString(name)
		b.WriteString(`_bucket{le="`)
		b.WriteString(formatValue(bound))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteString("\n")
	}
	b.WriteString(name)
	b.WriteString(`_bucket{le="+Inf"} `)
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteString("\n")
	b.WriteString(name)
	b.WriteString("_sum ")
	b.WriteString(formatValue(sum))
	b.WriteString("\n")
	b.WriteString(name)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteString("\n")
}
