package tables

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/mcdb"
)

func TestRunOneAdder32(t *testing.T) {
	b, ok := bench.ByName("adder-32")
	if !ok {
		t.Fatal("adder-32 missing from registry")
	}
	row, err := RunOne(b, Options{}, mcdb.New(mcdb.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if row.InitAnd != 94 {
		t.Fatalf("initial ANDs = %d, want 94", row.InitAnd)
	}
	if row.ConvAnd != 32 {
		t.Fatalf("converged ANDs = %d, want 32 (the known optimum)", row.ConvAnd)
	}
	if row.R1And >= row.InitAnd {
		t.Fatalf("one round did not improve: %d -> %d", row.InitAnd, row.R1And)
	}
	if !row.Converged {
		t.Fatalf("run did not converge")
	}
	if got := row.ConvImpr(); got < 0.6 || got > 0.7 {
		t.Fatalf("improvement = %.2f, want ≈ 0.66", got)
	}
}

func TestRunWithBaseline(t *testing.T) {
	b, _ := bench.ByName("coding-cavlc")
	rows, err := Run([]bench.Benchmark{b}, Options{Baseline: true, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].ConvAnd > rows[0].InitAnd {
		t.Fatalf("AND count increased")
	}
}

func TestGroupGeomeans(t *testing.T) {
	rows := []Row{
		{Group: bench.GroupArith, InitAnd: 100, R1And: 50, ConvAnd: 25},
		{Group: bench.GroupArith, InitAnd: 100, R1And: 100, ConvAnd: 100},
	}
	gm := GroupGeomeans(rows)
	m := gm[bench.GroupArith]
	// geomean(0.5, 1.0) ≈ 0.7071; geomean(0.25, 1.0) = 0.5.
	if m[0] < 0.70 || m[0] > 0.71 {
		t.Fatalf("one-round geomean = %v", m[0])
	}
	if m[1] < 0.49 || m[1] > 0.51 {
		t.Fatalf("converged geomean = %v", m[1])
	}
}

func TestFormatContainsPaperColumns(t *testing.T) {
	rows := []Row{{
		Name: "demo", Group: bench.GroupMPC, PIs: 4, POs: 1,
		InitAnd: 10, InitXor: 5, R1And: 7, R1Xor: 9, ConvAnd: 5, ConvXor: 12,
		Rounds: 3, Converged: true,
	}}
	s := Format("Demo table", rows)
	for _, want := range []string{"One round", "Repeat until convergence", "Initial", "demo", "geomean"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatNoImprovementRow(t *testing.T) {
	rows := []Row{{
		Name: "stuck", Group: bench.GroupCipher, PIs: 4, POs: 1,
		InitAnd: 10, InitXor: 0, R1And: 10, R1Xor: 0, ConvAnd: 10, ConvXor: 0,
		Rounds: 1,
	}}
	s := Format("t", rows)
	if !strings.Contains(s, "//") {
		t.Fatalf("unimproved benchmark should render // like the paper:\n%s", s)
	}
}

func TestSortByGroup(t *testing.T) {
	rows := []Row{
		{Name: "c", Group: bench.GroupMPC},
		{Name: "a", Group: bench.GroupArith},
		{Name: "b", Group: bench.GroupControl},
	}
	SortByGroup(rows)
	if rows[0].Name != "a" || rows[1].Name != "b" || rows[2].Name != "c" {
		t.Fatalf("wrong order: %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
}
