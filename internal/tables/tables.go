// Package tables regenerates the paper's experimental tables: for each
// benchmark it reports the initial AND/XOR counts, the counts after one
// rewriting round, and the counts after repeating until convergence,
// together with runtimes, per-benchmark improvements and the per-group
// normalized geometric means — the exact columns of Tables 1 and 2.
package tables

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mcdb"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/xag"
)

// Row is one line of a result table.
type Row struct {
	Name  string
	Group bench.Group

	PIs, POs int

	InitAnd, InitXor, InitDepth int

	R1And, R1Xor int
	R1Time       time.Duration

	ConvAnd, ConvXor, ConvDepth int
	ConvTime                    time.Duration
	Rounds                      int
	Converged                   bool
}

// R1Impr returns the one-round AND improvement fraction.
func (r Row) R1Impr() float64 { return impr(r.InitAnd, r.R1And) }

// ConvImpr returns the AND improvement fraction at convergence.
func (r Row) ConvImpr() float64 { return impr(r.InitAnd, r.ConvAnd) }

func impr(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}

// Options configures a table run.
type Options struct {
	// Baseline applies the generic size optimizer before measuring the
	// initial counts, as the paper does for the EPFL suite (Table 1). The
	// Table 2 netlists are used as-is.
	Baseline bool
	// MaxRounds caps the convergence loop (0 = run until no improvement,
	// like the paper).
	MaxRounds int
	// Core options (cut size, cut limit, …). The DB is shared across all
	// benchmarks of a run, mirroring the paper's reusable XAG_DB.
	Core core.Options
}

// RunOne optimizes a single benchmark and fills its row. It returns an
// error — and no row — when the optimized network fails the equivalence
// check against the original: an optimizer bug must never produce a table
// silently.
func RunOne(b bench.Benchmark, opts Options, db *mcdb.DB) (Row, error) {
	net := b.Build()
	if opts.Baseline {
		net = opt.SizeOptimize(net, opt.Options{})
	}
	row := Row{Name: b.Name, Group: b.Group, PIs: net.NumPIs(), POs: net.NumPOs()}
	c := net.CountGates()
	row.InitAnd, row.InitXor, row.InitDepth = c.And, c.Xor, c.AndDepth

	coreOpts := opts.Core
	coreOpts.DB = db
	coreOpts.MaxRounds = opts.MaxRounds
	res := core.MinimizeMC(net, coreOpts)

	if len(res.Rounds) > 0 {
		r1 := res.Rounds[0]
		row.R1And, row.R1Xor, row.R1Time = r1.After.And, r1.After.Xor, r1.Duration
	}
	fin := res.Network.CountGates()
	row.ConvAnd, row.ConvXor, row.ConvDepth = fin.And, fin.Xor, fin.AndDepth
	for _, r := range res.Rounds {
		row.ConvTime += r.Duration
	}
	row.Rounds = len(res.Rounds)
	row.Converged = res.Converged
	if res.Err != nil {
		return Row{}, fmt.Errorf("tables: %s: %w", b.Name, res.Err)
	}
	if err := verifyEquivalent(b, net, res.Network); err != nil {
		return Row{}, err
	}
	return row, nil
}

// verifyEquivalent checks the optimized network against the original
// (exhaustively when narrow enough, by random simulation otherwise).
func verifyEquivalent(b bench.Benchmark, before, after *xag.Network) error {
	if err := sim.Equal(before, after, 4, 0); err != nil {
		return fmt.Errorf("tables: %s: %w", b.Name, err)
	}
	return nil
}

// Run optimizes a benchmark list with a shared database. The first
// verification failure aborts the run; rows completed so far are returned
// alongside the error.
func Run(benchmarks []bench.Benchmark, opts Options) ([]Row, error) {
	db := opts.Core.DB
	if db == nil {
		db = mcdb.New(opts.Core.DBOptions)
	}
	rows := make([]Row, 0, len(benchmarks))
	for _, b := range benchmarks {
		row, err := RunOne(b, opts, db)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GroupGeomeans returns, per group, the normalized geometric mean of the
// one-round and converged AND ratios (the paper's summary rows).
func GroupGeomeans(rows []Row) map[bench.Group][2]float64 {
	type acc struct {
		logR1, logConv float64
		n              int
	}
	accs := map[bench.Group]*acc{}
	for _, r := range rows {
		if r.InitAnd == 0 {
			continue
		}
		a := accs[r.Group]
		if a == nil {
			a = &acc{}
			accs[r.Group] = a
		}
		a.logR1 += math.Log(float64(r.R1And) / float64(r.InitAnd))
		a.logConv += math.Log(float64(r.ConvAnd) / float64(r.InitAnd))
		a.n++
	}
	out := map[bench.Group][2]float64{}
	for g, a := range accs {
		out[g] = [2]float64{
			math.Exp(a.logR1 / float64(a.n)),
			math.Exp(a.logConv / float64(a.n)),
		}
	}
	return out
}

// Format renders rows in the layout of the paper's tables.
func Format(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-24s %5s %5s | %8s %8s %6s | %8s %8s %9s %6s | %8s %8s %9s %6s %7s %7s\n",
		"Name", "PIs", "POs", "AND", "XOR", "depth",
		"AND", "XOR", "time", "impr.",
		"AND", "XOR", "time", "impr.", "rounds", "depth")
	fmt.Fprintf(&sb, "%-24s %5s %5s | %24s | %34s | %s\n",
		"", "", "", "Initial", "One round", "Repeat until convergence")
	groups := []bench.Group{}
	seen := map[bench.Group]bool{}
	for _, r := range rows {
		if !seen[r.Group] {
			seen[r.Group] = true
			groups = append(groups, r.Group)
		}
	}
	gm := GroupGeomeans(rows)
	for _, g := range groups {
		for _, r := range rows {
			if r.Group != g {
				continue
			}
			conv := fmt.Sprintf("%8d %8d %9s %5.0f%% %7d %7d",
				r.ConvAnd, r.ConvXor, shortDur(r.ConvTime), 100*r.ConvImpr(), r.Rounds, r.ConvDepth)
			if r.Rounds <= 1 && r.R1And == r.InitAnd {
				conv = fmt.Sprintf("%8s %8s %9s %5.0f%% %7d %7s", "//", "//", "", 0.0, r.Rounds, "//")
			}
			fmt.Fprintf(&sb, "%-24s %5d %5d | %8d %8d %6d | %8d %8d %9s %5.0f%% | %s\n",
				r.Name, r.PIs, r.POs, r.InitAnd, r.InitXor, r.InitDepth,
				r.R1And, r.R1Xor, shortDur(r.R1Time), 100*r.R1Impr(), conv)
		}
		m := gm[g]
		fmt.Fprintf(&sb, "%-24s %11s | %24s | %8.2f %24s | %8.2f\n",
			"geomean ("+string(g)+")", "", "1.00", m[0], "", m[1])
	}
	return sb.String()
}

func shortDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

// SortByGroup orders rows for presentation, keeping the registry order
// within each group.
func SortByGroup(rows []Row) {
	order := map[bench.Group]int{
		bench.GroupArith: 0, bench.GroupControl: 1,
		bench.GroupCipher: 2, bench.GroupHash: 3, bench.GroupMPC: 4,
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return order[rows[i].Group] < order[rows[j].Group]
	})
}
