package xoropt

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/xag"
)

func TestSharedLinearSubexpression(t *testing.T) {
	// Three outputs all containing a⊕b⊕c: naive trees use 6 XORs, the
	// factored form needs 4 (t = a⊕b, u = t⊕c, plus one per extra output).
	n := xag.New()
	a, b, c, d, e := n.AddPI("a"), n.AddPI("b"), n.AddPI("c"), n.AddPI("d"), n.AddPI("e")
	n.AddPO(n.Xor(n.Xor(a, b), c), "y0")
	n.AddPO(n.Xor(n.Xor(a, b), n.Xor(c, d)), "y1")
	n.AddPO(n.Xor(n.Xor(c, a), n.Xor(b, e)), "y2")
	before := n.NumXors()

	o := Optimize(n)
	if err := sim.ExhaustiveEqual(n, o); err != nil {
		t.Fatal(err)
	}
	if got := o.NumXors(); got > before || got > 4 {
		t.Fatalf("XORs %d -> %d, want ≤ 4", before, got)
	}
}

func TestAndCountUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := randomNetwork(rng, 8, 150)
		o := Optimize(n)
		if err := sim.Equal(n, o, 4, uint64(trial+1)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if o.NumAnds() > n.NumAnds() {
			// Rebuilding may merge structurally equal ANDs (count drops),
			// but must never add one.
			t.Fatalf("trial %d: AND count increased %d -> %d", trial, n.NumAnds(), o.NumAnds())
		}
		if o.NumXors() > n.NumXors() {
			t.Fatalf("trial %d: XOR count increased %d -> %d", trial, n.NumXors(), o.NumXors())
		}
	}
}

func TestPureLinearNetwork(t *testing.T) {
	// A dense linear map: 8 outputs over 8 inputs, each a random parity.
	rng := rand.New(rand.NewSource(2))
	n := xag.New()
	ins := make([]xag.Lit, 8)
	for i := range ins {
		ins[i] = n.AddPI("")
	}
	for o := 0; o < 8; o++ {
		acc := xag.Const0
		mask := rng.Intn(255) + 1
		for i := range ins {
			if mask>>uint(i)&1 == 1 {
				acc = n.Xor(acc, ins[i])
			}
		}
		n.AddPO(acc, "")
	}
	o := Optimize(n)
	if err := sim.ExhaustiveEqual(n, o); err != nil {
		t.Fatal(err)
	}
	if o.NumXors() > n.NumXors() {
		t.Fatalf("XOR count increased %d -> %d", n.NumXors(), o.NumXors())
	}
}

func TestGreedyCSEKnownCase(t *testing.T) {
	// Rows {0,1,2}, {0,1,3}, {0,1}: pair (0,1) occurs three times.
	rows := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 1}}
	newCols := greedyCSE(rows, 4)
	if len(newCols) != 1 || newCols[0] != [2]int{0, 1} {
		t.Fatalf("newCols = %v, want [(0,1)]", newCols)
	}
	// Every row now references column 4 instead of 0 and 1.
	for i, row := range rows {
		for _, c := range row {
			if c == 0 || c == 1 {
				t.Fatalf("row %d still has an extracted column: %v", i, row)
			}
		}
	}
}

func TestNoXorNetworkUntouched(t *testing.T) {
	n := xag.New()
	a, b := n.AddPI("a"), n.AddPI("b")
	n.AddPO(n.And(a, b), "y")
	o := Optimize(n)
	if err := sim.ExhaustiveEqual(n, o); err != nil {
		t.Fatal(err)
	}
	if o.NumAnds() != 1 || o.NumXors() != 0 {
		t.Fatalf("unexpected counts: %+v", o.CountGates())
	}
}

func randomNetwork(rng *rand.Rand, nPIs, nGates int) *xag.Network {
	n := xag.New()
	lits := make([]xag.Lit, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, n.AddPI(""))
	}
	for i := 0; i < nGates; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		if rng.Intn(3) == 0 {
			lits = append(lits, n.And(a, b))
		} else {
			lits = append(lits, n.Xor(a, b))
		}
	}
	for i := 0; i < 4 && i < len(lits); i++ {
		n.AddPO(lits[len(lits)-1-i], "")
	}
	return n.Cleanup()
}
