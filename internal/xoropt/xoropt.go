// Package xoropt reduces the XOR count of an XAG without touching its AND
// gates. The paper's optimizer deliberately lets XORs grow (they are free
// in its cost model) and points to dedicated XOR-minimization techniques
// for the linear parts; this package implements the classical greedy
// common-subexpression elimination of Paar for exactly that purpose:
//
//  1. The network is partitioned into maximal XOR-only blocks: connected
//     XOR trees whose leaves are PIs or AND outputs.
//  2. Each block output is a linear combination (a set of leaves) of the
//     surrounding non-linear logic.
//  3. The most frequent leaf pair across all combinations is replaced by a
//     fresh intermediate signal, repeatedly, until no pair occurs twice —
//     Paar's greedy heuristic for minimizing the XOR count of linear maps.
//  4. The rebuilt blocks replace the original trees.
//
// The AND count — the multiplicative complexity the core optimizer
// minimizes — never increases: only XOR-only cones are rewritten (structural
// hashing during the rebuild can even merge previously distinct ANDs).
package xoropt

import (
	"sort"

	"repro/internal/xag"
)

// Optimize returns a copy of the network with its linear (XOR-only) blocks
// rebuilt by greedy common-subexpression elimination.
func Optimize(n *xag.Network) *xag.Network {
	n = n.Cleanup()
	live := n.LiveNodes()

	// Block outputs: XOR nodes consumed by an AND gate or a PO.
	outputs := map[int]bool{}
	markIfXor := func(l xag.Lit) {
		if n.IsGate(l.Node()) && n.Kind(l.Node()) == xag.KindXor {
			outputs[l.Node()] = true
		}
	}
	for _, id := range live {
		if n.IsGate(id) && n.Kind(id) == xag.KindAnd {
			f0, f1 := n.Fanins(id)
			markIfXor(f0)
			markIfXor(f1)
		}
	}
	for i := 0; i < n.NumPOs(); i++ {
		markIfXor(n.PO(i))
	}

	// Express every block output as the XOR of a set of leaves (PIs, AND
	// outputs, or other block outputs).
	var outputList []int
	for _, id := range live {
		if outputs[id] {
			outputList = append(outputList, id)
		}
	}
	sort.Ints(outputList)

	var expand func(id int, acc map[int]bool)
	expand = func(id int, acc map[int]bool) {
		f0, f1 := n.Fanins(id)
		for _, f := range [2]xag.Lit{f0, f1} {
			fid := f.Node()
			// Stored XOR fanins are never complemented (normalization), so
			// parity bookkeeping is not needed here.
			if n.IsGate(fid) && n.Kind(fid) == xag.KindXor && !outputs[fid] {
				expand(fid, acc)
				continue
			}
			if acc[fid] { // x ⊕ x = 0
				delete(acc, fid)
			} else {
				acc[fid] = true
			}
		}
	}

	leafIdx := map[int]int{}
	var leafOrder []int
	rows := make([][]int, len(outputList)) // sorted column indices per output
	for i, id := range outputList {
		acc := map[int]bool{}
		expand(id, acc)
		for l := range acc {
			if _, ok := leafIdx[l]; !ok {
				leafIdx[l] = len(leafOrder)
				leafOrder = append(leafOrder, l)
			}
			rows[i] = append(rows[i], leafIdx[l])
		}
		sort.Ints(rows[i])
	}

	newCols := greedyCSE(rows, len(leafOrder))

	// Rebuild: PIs and AND gates are copied, linear blocks re-synthesized
	// from the factored rows.
	out := xag.New()
	oldToNew := make(map[int]xag.Lit, len(live))
	oldToNew[0] = xag.Const0
	for i := 0; i < n.NumPIs(); i++ {
		oldToNew[n.PI(i).Node()] = out.AddPI(n.PIName(i))
	}
	comboOf := map[int]int{}
	for i, id := range outputList {
		comboOf[id] = i
	}

	colLits := make([]xag.Lit, len(leafOrder)+len(newCols))
	colDone := make([]bool, len(colLits))
	var buildNode func(id int) xag.Lit
	var colLit func(c int) xag.Lit
	colLit = func(c int) xag.Lit {
		if colDone[c] {
			return colLits[c]
		}
		var l xag.Lit
		if c < len(leafOrder) {
			l = buildNode(leafOrder[c])
		} else {
			p := newCols[c-len(leafOrder)]
			l = out.Xor(colLit(p[0]), colLit(p[1]))
		}
		colLits[c] = l
		colDone[c] = true
		return l
	}
	buildNode = func(id int) xag.Lit {
		if l, ok := oldToNew[id]; ok {
			return l
		}
		if ci, ok := comboOf[id]; ok {
			acc := xag.Const0
			for _, c := range rows[ci] {
				acc = out.Xor(acc, colLit(c))
			}
			oldToNew[id] = acc
			return acc
		}
		f0, f1 := n.Fanins(id)
		a := buildNode(f0.Node()).NotIf(f0.Compl())
		b := buildNode(f1.Node()).NotIf(f1.Compl())
		var l xag.Lit
		if n.Kind(id) == xag.KindAnd {
			l = out.And(a, b)
		} else {
			l = out.Xor(a, b)
		}
		oldToNew[id] = l
		return l
	}
	for i := 0; i < n.NumPOs(); i++ {
		po := n.PO(i)
		out.AddPO(buildNode(po.Node()).NotIf(po.Compl()), n.POName(i))
	}
	return out.Cleanup()
}

// greedyCSE runs Paar's greedy pair extraction on sparse rows of column
// indices, mutating rows in place. It returns the extracted pairs; pair i
// defines column nCols+i as the XOR of its two (possibly also extracted)
// columns.
func greedyCSE(rows [][]int, nCols int) [][2]int {
	var newCols [][2]int
	type pairKey struct{ a, b int }
	for {
		counts := map[pairKey]int{}
		var best pairKey
		bestCnt := 1
		for _, row := range rows {
			for i := 0; i < len(row); i++ {
				for j := i + 1; j < len(row); j++ {
					k := pairKey{row[i], row[j]}
					counts[k]++
					if counts[k] > bestCnt {
						bestCnt = counts[k]
						best = k
					}
				}
			}
		}
		if bestCnt < 2 {
			return newCols
		}
		newCol := nCols + len(newCols)
		newCols = append(newCols, [2]int{best.a, best.b})
		for r, row := range rows {
			ia := sort.SearchInts(row, best.a)
			ib := sort.SearchInts(row, best.b)
			if ia >= len(row) || row[ia] != best.a || ib >= len(row) || row[ib] != best.b {
				continue
			}
			filtered := row[:0]
			for _, c := range row {
				if c != best.a && c != best.b {
					filtered = append(filtered, c)
				}
			}
			rows[r] = append(filtered, newCol) // newCol sorts last by construction
		}
	}
}
