// Package profiling wires the standard Go profilers to command-line flags:
// one Config carries the -cpuprofile, -memprofile, and -trace destinations,
// Start activates whichever are set, and the returned stop function flushes
// and closes them. Commands combine this with the engine's runtime/pprof
// stage labels ("stage" = enumerate | classify | commit), so a captured
// profile can be filtered per pipeline stage:
//
//	go tool pprof -tagfocus stage=classify cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the profile destinations; empty fields are disabled.
type Config struct {
	CPUProfile string // gzipped pprof CPU profile
	MemProfile string // heap allocation profile, written at stop
	Trace      string // runtime execution trace
}

// Enabled reports whether any destination is set.
func (c Config) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Start begins the configured profiles and returns a stop function that
// ends them and writes the deferred ones (the heap profile is captured at
// stop time, after a GC, so it reflects live memory of the measured work).
// On error nothing is left running: profiles started before the failing one
// are stopped and their files closed.
func (c Config) Start() (stop func() error, err error) {
	var (
		cpuFile  *os.File
		traceF   *os.File
		undoList []func()
	)
	undo := func() {
		for i := len(undoList) - 1; i >= 0; i-- {
			undoList[i]()
		}
	}

	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		undoList = append(undoList, func() { cpuFile.Close() })
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			undo()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		undoList = append(undoList, pprof.StopCPUProfile)
	}
	if c.Trace != "" {
		traceF, err = os.Create(c.Trace)
		if err != nil {
			undo()
			return nil, fmt.Errorf("trace: %w", err)
		}
		undoList = append(undoList, func() { traceF.Close() })
		if err := trace.Start(traceF); err != nil {
			undo()
			return nil, fmt.Errorf("trace: %w", err)
		}
		undoList = append(undoList, trace.Stop)
	}

	return func() error {
		var firstErr error
		if c.CPUProfile != "" {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if c.Trace != "" {
			trace.Stop()
			if err := traceF.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("trace: %w", err)
			}
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
			} else {
				runtime.GC() // materialize the final live-heap state
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
			}
		}
		return firstErr
	}, nil
}
