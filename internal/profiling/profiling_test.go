package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledConfig(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProfiles(t *testing.T) {
	dir := t.TempDir()
	c := Config{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	if !c.Enabled() {
		t.Fatal("config with all destinations reports disabled")
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the trace has events.
	s := 0
	for i := 0; i < 1000; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{c.CPUProfile, c.MemProfile, c.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

func TestBadDestination(t *testing.T) {
	c := Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start with an uncreatable destination succeeded")
	}
}

// TestTraceFailureUnwindsCPU: when the trace destination fails after the CPU
// profile already started, Start must stop the CPU profile again — a second
// Start would otherwise fail with "cpu profiling already in use".
func TestTraceFailureUnwindsCPU(t *testing.T) {
	dir := t.TempDir()
	c := Config{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		Trace:      filepath.Join(dir, "no", "such", "dir", "trace.out"),
	}
	if _, err := c.Start(); err == nil {
		t.Fatal("Start with an uncreatable trace destination succeeded")
	}
	ok := Config{CPUProfile: filepath.Join(dir, "cpu2.out")}
	stop, err := ok.Start()
	if err != nil {
		t.Fatalf("CPU profiling was not unwound: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
