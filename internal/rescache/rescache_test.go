package rescache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

func keyOf(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[2] = byte(i >> 16)
	return k
}

func resOf(i int) *Result {
	return &Result{
		Report:        []byte(fmt.Sprintf(`{"rounds":%d}`, i)),
		Bristol:       []byte(fmt.Sprintf("1 3\n2 1 1\n1 1\n\n2 1 0 1 %d AND\n", i)),
		NetJSON:       []byte(fmt.Sprintf(`{"inputs":%d}`, i)),
		ANDBefore:     i + 1,
		ANDAfter:      i,
		ANDDepthAfter: 1,
		Rounds:        1,
	}
}

func TestPutGetPromotes(t *testing.T) {
	c := New(64, 1<<20)
	k := keyOf(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, resOf(1))
	got, ok := c.Get(k)
	if !ok || string(got.Report) != `{"rounds":1}` {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	// Replacing in place updates bytes, not entries.
	c.Put(k, resOf(2))
	if st := c.Stats(); st.Entries != 1 || st.Puts != 2 {
		t.Fatalf("after replace: %+v", st)
	}
	if got, _ := c.Get(k); string(got.Report) != `{"rounds":2}` {
		t.Fatalf("replace did not take: %s", got.Report)
	}
}

// TestEntryBoundEviction: keys land in one shard; pushing past the
// per-shard entry budget evicts the least recently used, and a Get refresh
// protects its entry.
func TestEntryBoundEviction(t *testing.T) {
	c := New(4 * numShards, 1<<30) // 4 entries per shard
	shardKey := func(i int) Key {
		k := keyOf(i)
		k[0] = 0 // all in shard 0
		k[3] = byte(i)
		return k
	}
	for i := 0; i < 4; i++ {
		c.Put(shardKey(i), resOf(i))
	}
	// Refresh key 0 so key 1 is now the LRU tail.
	if _, ok := c.Get(shardKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Put(shardKey(4), resOf(4))
	if _, ok := c.Get(shardKey(1)); ok {
		t.Fatal("LRU tail survived past the entry budget")
	}
	if _, ok := c.Get(shardKey(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestByteBoundEviction: the byte budget evicts independently of the entry
// budget, and a single result larger than a shard's budget is not cached.
func TestByteBoundEviction(t *testing.T) {
	c := New(1<<20, 1024*numShards) // 1 KiB per shard
	big := &Result{Report: []byte(`{}`), Bristol: bytes.Repeat([]byte("x"), 600)}
	k0, k1 := keyOf(0), keyOf(0)
	k1[3] = 1
	c.Put(k0, big)
	c.Put(k1, big) // 2×(600+2+64) > 1024 → k0 evicted
	if _, ok := c.Get(k0); ok {
		t.Fatal("byte budget did not evict")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("newest entry evicted instead of oldest")
	}

	huge := &Result{Report: []byte(`{}`), Bristol: bytes.Repeat([]byte("x"), 2048)}
	kh := keyOf(7)
	c.Put(kh, huge)
	if _, ok := c.Get(kh); ok {
		t.Fatal("oversize result was cached")
	}
}

// TestDoCoalesces: a herd of callers on one key runs compute exactly once;
// one caller reports Miss, the rest Hit or Coalesced, all get the same
// result object.
func TestDoCoalesces(t *testing.T) {
	c := New(64, 1<<20)
	var computes atomic.Int32
	gate := make(chan struct{})
	const herd = 16
	var wg sync.WaitGroup
	outcomes := make([]Outcome, herd)
	results := make([]*Result, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, out, err := c.Do(context.Background(), keyOf(1), func() (*Result, bool, error) {
				<-gate
				computes.Add(1)
				return resOf(42), true, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			outcomes[i], results[i] = out, r
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the herd pile onto the flight
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i, out := range outcomes {
		if out == Miss {
			misses++
		}
		if string(results[i].Report) != string(results[0].Report) {
			t.Fatalf("caller %d got a different result", i)
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers computed, want 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != herd-1 {
		t.Fatalf("stats after herd: %+v", st)
	}
}

// TestDoErrorPropagates: a leader failure (not its own cancellation) is the
// herd's failure — followers do not serialize through repeated computes.
func TestDoErrorPropagates(t *testing.T) {
	c := New(64, 1<<20)
	boom := errors.New("queue full")
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), keyOf(2), func() (*Result, bool, error) {
				<-gate
				computes.Add(1)
				return nil, false, boom
			})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d error = %v, want boom", i, err)
		}
	}
	if _, ok := c.Get(keyOf(2)); ok {
		t.Fatal("failed compute was cached")
	}
}

// TestDoLeaderCanceledFollowerRetries: when the leader dies of its own
// context, a follower with a live context takes over as the new leader
// instead of inheriting the cancellation.
func TestDoLeaderCanceledFollowerRetries(t *testing.T) {
	c := New(64, 1<<20)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var order atomic.Int32

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(leaderCtx, keyOf(3), func() (*Result, bool, error) {
			close(started)
			<-leaderCtx.Done()
			order.Add(1)
			return nil, false, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader error = %v, want canceled", err)
		}
	}()

	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, out, err := c.Do(context.Background(), keyOf(3), func() (*Result, bool, error) {
			return resOf(9), true, nil
		})
		if err != nil || string(r.Report) != `{"rounds":9}` {
			t.Errorf("follower: %v, %v", r, err)
		}
		if out != Miss {
			t.Errorf("follower outcome = %v, want Miss (took over as leader)", out)
		}
	}()
	time.Sleep(20 * time.Millisecond) // follower is parked on the flight
	cancelLeader()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never recovered from the canceled leader")
	}
	wg.Wait()
}

// TestDoFollowerOwnDeadline: a parked follower honors its own deadline even
// while the leader keeps computing.
func TestDoFollowerOwnDeadline(t *testing.T) {
	c := New(64, 1<<20)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), keyOf(4), func() (*Result, bool, error) {
			close(started)
			<-release
			return resOf(1), true, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, keyOf(4), func() (*Result, bool, error) {
		t.Error("follower must not compute")
		return nil, false, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower error = %v, want deadline exceeded", err)
	}
	close(release)
	wg.Wait()
}

// TestDoStoreFalseNotCached: compute can deliver a result to the herd while
// declining to cache it (degraded runs).
func TestDoStoreFalseNotCached(t *testing.T) {
	c := New(64, 1<<20)
	r, out, err := c.Do(context.Background(), keyOf(5), func() (*Result, bool, error) {
		return resOf(1), false, nil
	})
	if err != nil || out != Miss || r == nil {
		t.Fatalf("Do = %v, %v, %v", r, out, err)
	}
	if _, ok := c.Get(keyOf(5)); ok {
		t.Fatal("store=false result was cached")
	}
}

// TestDoPanicUnblocksFollowers: a panicking compute must not strand parked
// followers; the panic still reaches the leader's stack.
func TestDoPanicUnblocksFollowers(t *testing.T) {
	c := New(64, 1<<20)
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		c.Do(context.Background(), keyOf(6), func() (*Result, bool, error) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			panic("boom")
		})
	}()
	<-started
	_, _, err := c.Do(context.Background(), keyOf(6), func() (*Result, bool, error) {
		return resOf(1), true, nil
	})
	// The follower either inherits the flight error or retries and computes.
	if err != nil && err.Error() != "rescache: compute panicked" {
		t.Fatalf("follower error = %v", err)
	}
	wg.Wait()
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotName)
	c := New(64, 1<<20)
	for i := 0; i < 10; i++ {
		c.Put(keyOf(i), resOf(i))
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	c2 := New(64, 1<<20)
	rep, err := c2.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 10 || rep.Quarantined != 0 || rep.Truncated {
		t.Fatalf("load report: %+v", rep)
	}
	for i := 0; i < 10; i++ {
		got, ok := c2.Get(keyOf(i))
		if !ok {
			t.Fatalf("entry %d missing after reload", i)
		}
		want := resOf(i)
		if !bytes.Equal(got.Report, want.Report) || !bytes.Equal(got.Bristol, want.Bristol) ||
			!bytes.Equal(got.NetJSON, want.NetJSON) || got.ANDAfter != want.ANDAfter ||
			got.ANDBefore != want.ANDBefore || got.ANDDepthAfter != want.ANDDepthAfter ||
			got.Rounds != want.Rounds {
			t.Fatalf("entry %d differs after reload: %+v vs %+v", i, got, want)
		}
	}
}

func TestLoadMissingFileIsCold(t *testing.T) {
	c := New(64, 1<<20)
	rep, err := c.LoadFile(filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil || rep.Loaded != 0 {
		t.Fatalf("missing file: %+v, %v", rep, err)
	}
}

// TestLoadQuarantinesCorruptRecord: a flipped byte in one record loses that
// record and nothing else.
func TestLoadQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotName)
	c := New(64, 1<<20)
	for i := 0; i < 5; i++ {
		c.Put(keyOf(i), resOf(i))
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerLen+8+16] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New(64, 1<<20)
	rep, err := c2.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 4 || rep.Quarantined != 1 {
		t.Fatalf("load report after corruption: %+v", rep)
	}
}

// TestLoadTruncatedTail: a torn tail keeps every record before it.
func TestLoadTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotName)
	c := New(64, 1<<20)
	for i := 0; i < 5; i++ {
		c.Put(keyOf(i), resOf(i))
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := New(64, 1<<20)
	rep, err := c2.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 4 || !rep.Truncated {
		t.Fatalf("load report after truncation: %+v", rep)
	}
}

func TestLoadRejectsBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(path, []byte("not a snapshot at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(64, 1<<20)
	if _, err := c.LoadFile(path); !errors.Is(err, ErrUnreadable) {
		t.Fatalf("bad header error = %v, want ErrUnreadable", err)
	}
}

func TestRegisterMetrics(t *testing.T) {
	c := New(64, 1<<20)
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"mcserved_cache_hits_total", "mcserved_cache_misses_total",
		"mcserved_cache_coalesced_total", "mcserved_cache_evictions_total",
		"mcserved_cache_entries", "mcserved_cache_bytes", "mcserved_cache_hit_rate",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("scrape missing %s", name)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("NaN")) {
		t.Fatalf("scrape contains NaN before any traffic:\n%s", out)
	}

	c.Do(context.Background(), keyOf(1), func() (*Result, bool, error) { return resOf(1), true, nil })
	c.Do(context.Background(), keyOf(1), func() (*Result, bool, error) { return resOf(1), true, nil })
	buf.Reset()
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("mcserved_cache_hit_rate 0.5")) {
		t.Fatalf("hit rate not 0.5 after one miss + one hit:\n%s", buf.String())
	}
}
