package rescache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/mcdb"
)

// Snapshot persistence. The on-disk format mirrors the mcdb snapshot layer
// byte for byte in spirit: a 24-byte checksummed header followed by
// CRC32C-framed records (written through mcdb.WriteRecord/ReadRecord), the
// whole file replaced atomically via mcdb.WriteFileAtomic. Loading applies
// the same quarantine-don't-fail policy as DB recovery — a record that
// fails its checksum or decodes inconsistently is counted and skipped,
// never trusted and never fatal, because every cache entry is rebuildable
// from traffic.
//
// The cache is deliberately snapshot-only: there is no journal. The mcdb
// WAL exists because losing a synthesized classification costs an expensive
// resynthesis proof; losing a cached response costs one recomputation that
// byte-identical determinism makes exactly reproducible. Snapshots are cut
// by the admin snapshot endpoint, the background snapshotter, and the final
// drain.

// SnapshotName is the cache snapshot's filename inside a store directory.
const SnapshotName = "rescache.snap"

const (
	persistVersion = 1
	headerLen      = 24

	// maxRecordLen bounds one framed record. A record carries a rendered
	// response (Bristol + JSON forms), which for the 32 MiB request payload
	// cap can legitimately reach tens of MiB.
	maxRecordLen = 128 << 20
)

var persistMagic = [8]byte{'M', 'C', 'R', 'C', 'S', 'N', 'P', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrUnreadable reports a snapshot whose header is missing or corrupt —
// nothing in the file can be trusted.
var ErrUnreadable = errors.New("rescache: unreadable snapshot")

// encodeResult flattens one (key, result) pair into a record payload.
func encodeResult(k Key, r *Result) []byte {
	n := 32 + 4*4 + 4 + len(r.Report) + 4 + len(r.Bristol) + 4 + len(r.NetJSON)
	b := make([]byte, 0, n)
	b = append(b, k[:]...)
	var u [4]byte
	putU32 := func(v int) {
		binary.LittleEndian.PutUint32(u[:], uint32(v))
		b = append(b, u[:]...)
	}
	putU32(r.ANDBefore)
	putU32(r.ANDAfter)
	putU32(r.ANDDepthAfter)
	putU32(r.Rounds)
	for _, blob := range [][]byte{r.Report, r.Bristol, r.NetJSON} {
		putU32(len(blob))
		b = append(b, blob...)
	}
	return b
}

func decodeResult(b []byte) (Key, *Result, error) {
	var k Key
	if len(b) < 32+4*4+3*4 {
		return k, nil, fmt.Errorf("payload of %d bytes is shorter than the fixed header", len(b))
	}
	copy(k[:], b[:32])
	off := 32
	u32 := func() int {
		v := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		return v
	}
	r := &Result{
		ANDBefore:     u32(),
		ANDAfter:      u32(),
		ANDDepthAfter: u32(),
		Rounds:        u32(),
	}
	for _, dst := range []*[]byte{&r.Report, &r.Bristol, &r.NetJSON} {
		if off+4 > len(b) {
			return k, nil, fmt.Errorf("truncated blob length at offset %d", off)
		}
		n := u32()
		if n < 0 || off+n > len(b) {
			return k, nil, fmt.Errorf("blob of %d bytes overruns payload at offset %d", n, off)
		}
		*dst = append([]byte(nil), b[off:off+n]...)
		off += n
	}
	if off != len(b) {
		return k, nil, fmt.Errorf("%d trailing bytes after blobs", len(b)-off)
	}
	if len(r.Report) == 0 || len(r.Bristol) == 0 {
		return k, nil, errors.New("record missing report or circuit bytes")
	}
	return k, r, nil
}

// Save streams the cache in snapshot format and returns the entry count.
// Entries are copied out shard by shard under each shard's lock; results
// are immutable once inserted, so sharing the slices is safe. (Named Save
// rather than WriteTo: the entry-count return intentionally differs from
// the io.WriterTo contract.)
func (c *Cache) Save(w io.Writer) (int, error) {
	type pair struct {
		k Key
		r *Result
	}
	var all []pair
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.lru.Front(); e != nil; e = e.Next() {
			ent := e.Value.(*entry)
			all = append(all, pair{ent.key, ent.res})
		}
		s.mu.Unlock()
	}

	var hdr [headerLen]byte
	copy(hdr[:8], persistMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], persistVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(all)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	for i, p := range all {
		if err := mcdb.WriteRecord(w, encodeResult(p.k, p.r)); err != nil {
			return i, err
		}
	}
	return len(all), nil
}

// SaveFile atomically writes the cache snapshot to path.
func (c *Cache) SaveFile(path string) error {
	return mcdb.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := c.Save(w)
		return err
	})
}

// LoadFrom merges a snapshot stream into the cache with
// quarantine-don't-fail semantics: damaged records are skipped and counted
// in the report, a torn tail stops reading but keeps everything before it,
// and only an unreadable header is an error.
func (c *Cache) LoadFrom(r io.Reader) (mcdb.LoadReport, error) {
	var rep mcdb.LoadReport
	br := bufio.NewReader(r)

	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return rep, fmt.Errorf("%w: short header: %v", ErrUnreadable, err)
	}
	if [8]byte(hdr[:8]) != persistMagic {
		return rep, fmt.Errorf("%w: bad magic", ErrUnreadable)
	}
	if got, want := crc32.Checksum(hdr[:20], crcTable), binary.LittleEndian.Uint32(hdr[20:]); got != want {
		return rep, fmt.Errorf("%w: header checksum mismatch", ErrUnreadable)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != persistVersion {
		return rep, fmt.Errorf("%w: unsupported version %d", ErrUnreadable, v)
	}
	declared := int(binary.LittleEndian.Uint32(hdr[12:]))

	for i := 0; ; i++ {
		payload, recErr, err := mcdb.ReadRecord(br, maxRecordLen)
		if err == io.EOF {
			if i < declared {
				rep.Truncated = true
			}
			return rep, nil
		}
		if err != nil {
			rep.Truncated = true
			return rep, nil
		}
		if recErr != nil {
			rep.Quarantined++
			continue
		}
		k, res, decErr := decodeResult(payload)
		if decErr != nil {
			rep.Quarantined++
			continue
		}
		c.Put(k, res)
		rep.Loaded++
	}
}

// LoadFile merges the snapshot at path into the cache. A missing file is
// not an error — a cold cache is the normal first-boot state — and is
// reported as zero entries loaded.
func (c *Cache) LoadFile(path string) (mcdb.LoadReport, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return mcdb.LoadReport{}, nil
	}
	if err != nil {
		return mcdb.LoadReport{}, err
	}
	defer f.Close()
	return c.LoadFrom(f)
}
