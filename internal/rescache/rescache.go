// Package rescache is the content-addressed result cache behind mcserved.
//
// The serving workloads this system targets (MPC, FHE, masking) optimize
// the same handful of crypto circuits over and over; byte-identical
// determinism (DESIGN.md §8/§10) makes a cached result provably
// interchangeable with a fresh run, so request-level caching is free result
// quality at fleet scale. The cache maps a 256-bit content address — a
// canonical hash of (network structure, cost model, effective options),
// computed by the server — to the frozen, fully-rendered result bytes.
//
// Three properties matter at serving scale and shape the design:
//
//   - Bounded: a sharded LRU capped on both entry count and resident bytes,
//     so one burst of huge circuits cannot evict the working set or OOM the
//     daemon. Shards are locked independently; the hot path takes one
//     per-shard mutex.
//
//   - Coalesced: a thundering herd on the same SHA-256 round does ONE
//     optimization. Do() elects a leader per key; followers wait on the
//     leader's flight bounded by their own context, and a follower whose
//     leader was canceled (but whose own context is live) retries and may
//     become the new leader.
//
//   - Durable: SaveFile/LoadFile persist the table through the same
//     CRC-framed, atomic-replace machinery as the mcdb snapshot layer, with
//     the same quarantine-don't-fail recovery — a damaged record is skipped
//     and counted, never trusted and never fatal. The cache is rebuildable
//     from traffic, so it is snapshot-only: no journal, losing the tail
//     since the last snapshot costs recomputation, not correctness.
package rescache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Key is the 256-bit content address of a (network, cost model, options)
// request. The server computes it from xag.CanonicalHash plus the
// normalized effective options; the cache treats it as opaque.
type Key [32]byte

// Result holds one fully-rendered optimization result. Every byte a
// response can contain is frozen at insert time — the report JSON, the
// Bristol text, the dense JSON gate list, and the header ints — so a hit
// replays the cold response byte-for-byte with no re-encoding and no
// dependence on live engine state.
type Result struct {
	Report  []byte // report object, raw JSON
	Bristol []byte // optimized circuit, Bristol text
	NetJSON []byte // optimized circuit, dense JSON gate list

	ANDBefore     int
	ANDAfter      int
	ANDDepthAfter int
	Rounds        int
}

// size is the accounting footprint charged against the byte budget.
func (r *Result) size() int64 {
	return int64(len(r.Report) + len(r.Bristol) + len(r.NetJSON) + 64)
}

// Outcome says how Do produced its result.
type Outcome int

const (
	// Miss: this caller ran the computation.
	Miss Outcome = iota
	// Hit: served from the table without computing.
	Hit
	// Coalesced: waited on another caller's in-flight computation.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

const numShards = 16

type entry struct {
	key Key
	res *Result
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]*list.Element
	lru   *list.List // front = most recent
	bytes int64      // resident result bytes in this shard
}

type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// Cache is a bounded, sharded, coalescing result cache. The zero value is
// not usable; call New.
type Cache struct {
	shards       [numShards]shard
	entriesShard int   // per-shard entry budget
	bytesShard   int64 // per-shard byte budget

	flightMu sync.Mutex
	flights  map[Key]*flight

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
	bytes     atomic.Int64
	puts      atomic.Int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Coalesced, Evictions int64
	Entries, Bytes                     int64
	Puts                               int64
}

// New builds a cache bounded at maxEntries entries and maxBytes resident
// result bytes (both spread across the shards). Non-positive bounds get
// serving-scale defaults: 4096 entries, 256 MiB.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	c := &Cache{
		entriesShard: (maxEntries + numShards - 1) / numShards,
		bytesShard:   (maxBytes + numShards - 1) / numShards,
		flights:      map[Key]*flight{},
	}
	if c.entriesShard < 1 {
		c.entriesShard = 1
	}
	for i := range c.shards {
		c.shards[i].m = map[Key]*list.Element{}
		c.shards[i].lru = list.New()
	}
	return c
}

func (c *Cache) shardOf(k Key) *shard { return &c.shards[k[0]&(numShards-1)] }

// Get returns the cached result for k, promoting it to most-recent. It does
// not touch the hit/miss counters — Do owns outcome accounting.
func (c *Cache) Get(k Key) (*Result, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// Put inserts (or replaces) the result for k and evicts from the shard's
// LRU tail until both budgets hold. A result bigger than a whole shard's
// byte budget is not cached at all — it would only evict the working set to
// hold one entry that is cheaper to recompute than to keep.
func (c *Cache) Put(k Key, r *Result) {
	sz := r.size()
	if sz > c.bytesShard {
		return
	}
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		old := el.Value.(*entry)
		s.bytes += sz - old.res.size()
		c.bytes.Add(sz - old.res.size())
		old.res = r
		s.lru.MoveToFront(el)
		c.puts.Add(1)
		return
	}
	s.m[k] = s.lru.PushFront(&entry{key: k, res: r})
	s.bytes += sz
	c.entries.Add(1)
	c.bytes.Add(sz)
	c.puts.Add(1)

	for s.lru.Len() > c.entriesShard || s.bytes > c.bytesShard {
		tail := s.lru.Back()
		if tail == nil || tail == s.lru.Front() {
			break
		}
		victim := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.m, victim.key)
		s.bytes -= victim.res.size()
		c.entries.Add(-1)
		c.bytes.Add(-victim.res.size())
		c.evictions.Add(1)
	}
}

// errFlightCanceled marks a leader that died of its own context, not of the
// computation: followers with live contexts retry instead of failing.
var errFlightCanceled = errors.New("rescache: flight leader canceled")

// Do returns the result for k, computing it at most once per herd. The
// first caller for an uncached key becomes the leader and runs compute;
// concurrent callers for the same key wait on the leader's flight, bounded
// by their own ctx. compute reports whether its result should be stored
// (the server declines to cache degraded or interrupted runs) — an
// unstored result is still delivered to every waiter of this flight.
//
// If the leader fails because its own context was canceled or expired,
// followers whose contexts are still live loop back: they re-check the
// table and may become the next leader. Any other leader error is the
// herd's error — a circuit that sheds or fails should shed the whole herd,
// not serialize it through repeated failures.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (*Result, bool, error)) (*Result, Outcome, error) {
	for {
		if r, ok := c.Get(k); ok {
			c.hits.Add(1)
			return r, Hit, nil
		}

		c.flightMu.Lock()
		if f, ok := c.flights[k]; ok {
			c.flightMu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					c.coalesced.Add(1)
					return f.res, Coalesced, nil
				}
				if errors.Is(f.err, errFlightCanceled) && ctx.Err() == nil {
					continue
				}
				if errors.Is(f.err, errFlightCanceled) {
					return nil, Coalesced, ctx.Err()
				}
				return nil, Coalesced, f.err
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[k] = f
		c.flightMu.Unlock()

		res, store, err := func() (res *Result, store bool, err error) {
			defer func() {
				if p := recover(); p != nil {
					// Never strand followers on a poisoned flight; surface
					// the panic to the leader's own stack after unblocking
					// them.
					c.finishFlight(k, f, nil, errors.New("rescache: compute panicked"))
					panic(p)
				}
			}()
			return compute()
		}()
		if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// The leader's own deadline/cancel killed the computation; that
			// says nothing about the key for anyone else.
			c.finishFlight(k, f, nil, errFlightCanceled)
			return nil, Miss, err
		}
		if err != nil {
			c.finishFlight(k, f, nil, err)
			return nil, Miss, err
		}
		if store {
			c.Put(k, res)
		}
		c.misses.Add(1)
		c.finishFlight(k, f, res, nil)
		return res, Miss, nil
	}
}

func (c *Cache) finishFlight(k Key, f *flight, res *Result, err error) {
	f.res, f.err = res, err
	c.flightMu.Lock()
	delete(c.flights, k)
	c.flightMu.Unlock()
	close(f.done)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		Puts:      c.puts.Load(),
	}
}

// Len returns the live entry count.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// RegisterMetrics exposes the cache on r under the mcserved_cache_* names
// documented in DESIGN.md §13. Func-backed instruments read the live
// atomics at scrape time. The hit-rate gauge counts coalesced waits as
// hits — the herd did not recompute — and reports 0 (never NaN) before any
// traffic.
func (c *Cache) RegisterMetrics(r *metrics.Registry) {
	if r == nil || c == nil {
		return
	}
	r.CounterFunc("mcserved_cache_hits_total", "Requests served from the result cache.",
		func() float64 { return float64(c.hits.Load()) })
	r.CounterFunc("mcserved_cache_misses_total", "Requests that ran the optimizer.",
		func() float64 { return float64(c.misses.Load()) })
	r.CounterFunc("mcserved_cache_coalesced_total", "Requests that waited on another caller's in-flight computation.",
		func() float64 { return float64(c.coalesced.Load()) })
	r.CounterFunc("mcserved_cache_evictions_total", "Entries evicted by the LRU bounds.",
		func() float64 { return float64(c.evictions.Load()) })
	r.GaugeFunc("mcserved_cache_entries", "Live result cache entries.",
		func() float64 { return float64(c.entries.Load()) })
	r.GaugeFunc("mcserved_cache_bytes", "Resident result cache bytes.",
		func() float64 { return float64(c.bytes.Load()) })
	r.GaugeFunc("mcserved_cache_hit_rate", "Fraction of requests served without recomputing (hits+coalesced over all).",
		func() float64 {
			h := c.hits.Load() + c.coalesced.Load()
			total := h + c.misses.Load()
			if total == 0 {
				return 0
			}
			return float64(h) / float64(total)
		})
}
