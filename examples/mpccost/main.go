// mpccost walks the Table 2 arithmetic benchmarks and prints the MPC/FHE
// cost metrics the paper motivates: AND count (communication in GMW,
// ciphertexts in garbled circuits with free XOR) and multiplicative depth
// (noise growth in levelled FHE). Each circuit is optimized twice — once
// under the default MC model, once under the Depth model — to show the
// trade the cost-model layer exposes: the MC run minimizes garbled-circuit
// bytes, the Depth run minimizes the FHE noise budget.
//
//	go run ./examples/mpccost
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/mcc"
)

func main() {
	names := []string{
		"adder-32", "adder-64",
		"cmp-32-unsigned-lt", "cmp-32-unsigned-lteq",
		"cmp-32-signed-lt", "cmp-32-signed-lteq",
	}
	db := mcc.NewDB()
	fmt.Printf("%-22s | %7s %7s | %9s %9s | %s\n",
		"benchmark", "AND", "depth", "GC bytes", "opt", "optimized, per model (N@D)")
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			panic("unknown benchmark " + name)
		}
		before := b.Build().CountGates()
		start := time.Now()

		// MC model: fewest AND gates, the garbled-circuit / GMW objective.
		mc := optimize(b, mcc.WithDB(db))
		// Depth model: shortest AND chains, the levelled-FHE objective.
		dep := optimize(b, mcc.WithDB(db), mcc.WithCost(mcc.Depth()))

		// Half-gates garbling: 2 ciphertexts of 16 bytes per AND; XOR free.
		fmt.Printf("%-22s | %7d %7d | %9d %9d | MC %d@%d, Depth %d@%d   (%v)\n",
			name, before.And, before.AndDepth,
			32*before.And, 32*mc.And,
			mc.And, mc.AndDepth, dep.And, dep.AndDepth,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nGC bytes = half-gates garbled circuit size (32 B per AND, XOR free).")
	fmt.Println("N@D      = N AND gates at multiplicative depth D (depth drives FHE noise).")
}

func optimize(b bench.Benchmark, opts ...mcc.Option) mcc.Counts {
	res := mcc.Optimize(context.Background(), b.Build(), opts...)
	if res.Err != nil {
		fmt.Println("optimization failed:", res.Err)
		os.Exit(1)
	}
	return res.Final()
}
