// mpccost walks the Table 2 arithmetic benchmarks and prints the MPC/FHE
// cost metrics the paper motivates: AND count (communication in GMW,
// ciphertexts in garbled circuits with free XOR) and multiplicative depth
// (noise growth in levelled FHE).
//
//	go run ./examples/mpccost
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mcdb"
)

func main() {
	names := []string{
		"adder-32", "adder-64", "mult-32x32",
		"cmp-32-unsigned-lt", "cmp-32-unsigned-lteq",
		"cmp-32-signed-lt", "cmp-32-signed-lteq",
	}
	db := mcdb.New(mcdb.Options{})
	fmt.Printf("%-22s | %9s %9s | %9s %9s | %8s %8s\n",
		"benchmark", "AND", "opt AND", "GC bytes", "opt", "MC-depth", "opt")
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			panic("unknown benchmark " + name)
		}
		net := b.Build()
		before := net.CountGates()
		start := time.Now()
		res := core.MinimizeMC(net, core.Options{DB: db})
		after := res.Network.CountGates()
		// Half-gates garbling: 2 ciphertexts of 16 bytes per AND; XOR free.
		fmt.Printf("%-22s | %9d %9d | %9d %9d | %8d %8d   (%v)\n",
			name, before.And, after.And,
			32*before.And, 32*after.And,
			before.AndDepth, after.AndDepth,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nGC bytes = half-gates garbled circuit size (32 B per AND, XOR free).")
	fmt.Println("MC-depth = multiplicative depth, the FHE noise budget driver.")
}
